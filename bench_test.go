// Benchmarks regenerating the paper's evaluation (§3), one per table and
// figure, plus ablations for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Table 3   → BenchmarkXMarkPathfinder / BenchmarkXMarkBaseline
// Figure 4  → BenchmarkFigure4Scaling (Pathfinder across instance sizes)
// §3.1      → BenchmarkStorageOverhead (ratio reported as a metric)
// Figure 5  → BenchmarkCompile (plan construction, ops/plan metric)
// Ablations → BenchmarkStaircaseVsNaive, BenchmarkOptimizerOnOff,
//
//	BenchmarkJoinRecognitionOnOff, BenchmarkMILRoundTrip
//
// The harness in cmd/xmarkbench produces the paper-formatted reports; the
// benchmarks here make the same measurements available to `go test`.
package pathfinder_test

import (
	"fmt"
	"sync"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/mil"
	"pathfinder/internal/navdom"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// benchSFs are the instance sizes exercised by `go test -bench`. They are
// two factor-10 steps of the paper's ladder scaled to CI time budgets; use
// cmd/xmarkbench for the full three-decade sweep.
var benchSFs = []float64{0.002, 0.02}

var (
	docCacheMu sync.Mutex
	docCache   = map[float64]string{}
)

func xmarkDoc(sf float64) string {
	docCacheMu.Lock()
	defer docCacheMu.Unlock()
	if d, ok := docCache[sf]; ok {
		return d
	}
	d := xmark.GenerateString(sf)
	docCache[sf] = d
	return d
}

var benchOpts = xqcore.Options{ContextDoc: "xmark.xml"}

func loadEngine(b *testing.B, sf float64) *engine.Engine {
	b.Helper()
	eng := engine.New(xenc.NewStore())
	if _, err := eng.Store.LoadDocumentString("xmark.xml", xmarkDoc(sf)); err != nil {
		b.Fatal(err)
	}
	return eng
}

func loadDB(b *testing.B, sf float64) *navdom.DB {
	b.Helper()
	db := navdom.NewDB()
	if _, err := db.LoadString("xmark.xml", xmarkDoc(sf)); err != nil {
		b.Fatal(err)
	}
	db.AddValueIndex("buyer", "person")
	db.AddValueIndex("profile", "income")
	return db
}

// BenchmarkXMarkPathfinder is Table 3's Pathfinder column: the full
// pipeline (compile → optimize → evaluate → serialize) per query and size.
func BenchmarkXMarkPathfinder(b *testing.B) {
	for q := 1; q <= xmark.NumQueries; q++ {
		for _, sf := range benchSFs {
			b.Run(fmt.Sprintf("Q%02d/sf=%g", q, sf), func(b *testing.B) {
				eng := loadEngine(b, sf)
				query := xmark.Query(q)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					plan, _, err := core.CompileQuery(query, benchOpts)
					if err != nil {
						b.Fatal(err)
					}
					if plan, err = opt.Optimize(plan); err != nil {
						b.Fatal(err)
					}
					res, err := eng.Eval(plan)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := serialize.Result(eng.Store, res); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkXMarkBaseline is Table 3's X-Hive column: the navigational
// interpreter with the paper's value-index tuning.
func BenchmarkXMarkBaseline(b *testing.B) {
	for q := 1; q <= xmark.NumQueries; q++ {
		for _, sf := range benchSFs {
			b.Run(fmt.Sprintf("Q%02d/sf=%g", q, sf), func(b *testing.B) {
				db := loadDB(b, sf)
				query := xmark.Query(q)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := navdom.NewInterp(db).Run(query, benchOpts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure4Scaling measures Pathfinder across the size ladder for a
// representative query mix: path (Q1), recursive axes (Q6), equi-join
// (Q8), and theta-join (Q11, the paper's quadratic case).
func BenchmarkFigure4Scaling(b *testing.B) {
	for _, q := range []int{1, 6, 8, 11} {
		for _, sf := range benchSFs {
			b.Run(fmt.Sprintf("Q%02d/sf=%g", q, sf), func(b *testing.B) {
				eng := loadEngine(b, sf)
				plan, _, err := core.CompileQuery(xmark.Query(q), benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				if plan, err = opt.Optimize(plan); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Eval(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStorageOverhead measures document shredding (load) and reports
// the §3.1 encoded-bytes / XML-bytes ratio.
func BenchmarkStorageOverhead(b *testing.B) {
	for _, sf := range benchSFs {
		b.Run(fmt.Sprintf("sf=%g", sf), func(b *testing.B) {
			doc := xmarkDoc(sf)
			b.SetBytes(int64(len(doc)))
			var ratio float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store := xenc.NewStore()
				if _, err := store.LoadDocumentString("xmark.xml", doc); err != nil {
					b.Fatal(err)
				}
				ratio = float64(store.Report().Total()) / float64(len(doc))
			}
			b.ReportMetric(100*ratio, "%encoded/xml")
		})
	}
}

// BenchmarkStaircaseVsNaive ablates the staircase join: the same
// recursive-axis query (Q6/Q7 territory) with tree-aware pruning/skipping
// versus the context-at-a-time region queries of a tree-unaware RDBMS,
// versus the node-at-a-time navigational interpreter. The partitioned
// mode runs the prune/skip staircase split across context-range morsels
// (the intra-operator parallel path) for the morsel-overhead comparison.
func BenchmarkStaircaseVsNaive(b *testing.B) {
	const query = `count(/site//description) + count(//text()/ancestor::item)`
	for _, sf := range benchSFs {
		plan, _, err := core.CompileQuery(query, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []string{"staircase", "partitioned", "naive"} {
			b.Run(fmt.Sprintf("%s/sf=%g", mode, sf), func(b *testing.B) {
				var eng *engine.Engine
				switch mode {
				case "partitioned":
					eng = engine.NewWithConfig(xenc.NewStore(), engine.Config{MorselRows: 1024})
					if _, err := eng.Store.LoadDocumentString("xmark.xml", xmarkDoc(sf)); err != nil {
						b.Fatal(err)
					}
				default:
					eng = loadEngine(b, sf)
					eng.Staircase = mode == "staircase"
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Eval(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("navdom/sf=%g", sf), func(b *testing.B) {
			db := loadDB(b, sf)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := navdom.NewInterp(db).Run(query, benchOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizerOnOff ablates the peephole optimizer [5] on the
// join-heavy Q8 plan.
func BenchmarkOptimizerOnOff(b *testing.B) {
	for _, optimize := range []bool{true, false} {
		mode := "optimized"
		if !optimize {
			mode = "raw"
		}
		for _, sf := range benchSFs {
			b.Run(fmt.Sprintf("%s/sf=%g", mode, sf), func(b *testing.B) {
				eng := loadEngine(b, sf)
				plan, _, err := core.CompileQuery(xmark.Query(8), benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				if optimize {
					if plan, err = opt.Optimize(plan); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(algebra.CountOps(plan)), "ops/plan")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Eval(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkJoinRecognitionOnOff contrasts the compiler's unnested Q8 plan
// against the naively lifted nested loop the paper's join recognition [3]
// avoids (expressed by blocking the rewrite with a both-sided predicate).
func BenchmarkJoinRecognitionOnOff(b *testing.B) {
	recognized := xmark.Query(8)
	// Wrapping the comparison so that one side references both loop
	// variables defeats the pattern matcher: the generic lifted plan
	// materializes the |people| × |closed_auctions| product. The query is
	// semantically identical to Q8.
	blocked := `for $p in /site/people/person
	 let $a := for $t in /site/closed_auctions/closed_auction
	           where (if ($t/buyer/@person = $p/@id) then 1 else ()) = 1
	           return $t
	 return <item person="{$p/name/text()}">{count($a)}</item>`
	for _, mode := range []struct{ name, query string }{
		{"join", recognized}, {"lifted-nested-loop", blocked},
	} {
		for _, sf := range benchSFs {
			b.Run(fmt.Sprintf("%s/sf=%g", mode.name, sf), func(b *testing.B) {
				eng := loadEngine(b, sf)
				plan, _, err := core.CompileQuery(mode.query, benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				if plan, err = opt.Optimize(plan); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Eval(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompile measures the front end alone: parse → normalize →
// loop-lift → optimize, reporting plan sizes (the paper quotes ~120
// operators for Q8 before optimization).
func BenchmarkCompile(b *testing.B) {
	for _, q := range []int{1, 8, 10, 20} {
		b.Run(fmt.Sprintf("Q%02d", q), func(b *testing.B) {
			query := xmark.Query(q)
			var ops int
			for i := 0; i < b.N; i++ {
				plan, _, err := core.CompileQuery(query, benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				if plan, err = opt.Optimize(plan); err != nil {
					b.Fatal(err)
				}
				ops = algebra.CountOps(plan)
			}
			b.ReportMetric(float64(ops), "ops/plan")
		})
	}
}

// BenchmarkMILRoundTrip measures the back-end protocol overhead: emitting
// a compiled plan as a MIL program and parsing it back.
func BenchmarkMILRoundTrip(b *testing.B) {
	plan, _, err := core.CompileQuery(xmark.Query(8), benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		prog, err := mil.Emit(plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mil.Parse(prog); err != nil {
			b.Fatal(err)
		}
	}
}
