# Build/test entry points. `make verify` is the tier-1 gate; `make race`
# is the concurrency tier covering the parallel scheduler and the shared
# stores under the Go race detector.

GO ?= go

.PHONY: build test verify race golden fmt-check pfvet pfvet-sarif fuzz-smoke bench-parallel bench-physical bench-morsel bench-morsel-smoke bench-service bench-store bench-plan bench-plan-smoke bench-fusion bench-fusion-smoke service-smoke store-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: build test

# gofmt cleanliness gate: fails listing the offending files.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Project-specific static analysis (cmd/pfvet). Per-package checks
# (shared-vector mutation, kernel determinism, context polling in row
# loops, by-value sync state, map-order determinism, fused-loop
# allocation) plus the interprocedural suite (lock ordering and
# lock-across-I/O, columnar ownership on publish paths, goroutine
# lifecycle/drain discipline, service-boundary error classification).
# `go run ./cmd/pfvet -rules lockorder,errclass` runs a subset locally.
pfvet:
	$(GO) run ./cmd/pfvet

# Same analysis, also writing a SARIF 2.1.0 log for CI annotation. The
# file is written even when the tree is clean (uploaders want a log per
# run), and the exit status still fails the build on findings.
pfvet-sarif:
	$(GO) run ./cmd/pfvet -sarif pfvet.sarif

# Short native-fuzzing smoke over the parser, lexer, and document loader:
# runs each target briefly so CI catches shallow panics; long exploratory
# runs stay manual (go test -fuzz=... -fuzztime=5m).
fuzz-smoke:
	$(GO) test ./internal/xquery -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/xquery -fuzz FuzzLex -fuzztime 10s
	$(GO) test ./internal/xenc -fuzz FuzzLoadDocument -fuzztime 10s
	$(GO) test ./internal/service -fuzz FuzzNormalizeQuery -fuzztime 10s

# Race tier: the packages with query-time shared state — the scheduler
# (internal/engine), the column vectors (internal/bat), the string
# pools + fragment registry (internal/xenc), and the concurrent service
# layer (internal/service + the MIL TCP server it embeds).
race:
	$(GO) test -race ./internal/engine/... ./internal/bat/... ./internal/xenc/... ./internal/service/... ./internal/mil/... ./internal/pfstore/...

# Full-repo race run (slower; includes the differential suites).
race-all:
	$(GO) test -race ./...

# Regenerate the pinned XMark query outputs after an intentional change.
golden:
	$(GO) test ./internal/engine -run TestXMarkGolden -update

# Sequential-vs-parallel scheduler comparison; writes BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/xmarkbench -report parallel -sfs 0.1 -workers 8 -v

# Legacy-interpreter-vs-physical-executor comparison; writes
# BENCH_physical.json (doubles as a differential check: every query's
# output is compared byte-for-byte).
bench-physical:
	$(GO) run ./cmd/xmarkbench -report physical -sfs 0.1 -v

# Intra-operator morsel parallelism sweep vs the single-worker physical
# executor; writes BENCH_morsel.json with per-query morsel counts.
# -gomaxprocs 0 keeps the host's setting; raise it explicitly when the
# environment pins GOMAXPROCS below the core count.
bench-morsel:
	$(GO) run ./cmd/xmarkbench -report morsel -sfs 0.1 -gomaxprocs 0 -worker-sweep 2,4,8 -v

# CI smoke: a tiny instance at two workers — catches parallel-path
# regressions (mismatches fail the query cells) without nightly budgets.
bench-morsel-smoke:
	$(GO) run ./cmd/xmarkbench -report morsel -sfs 0.01 -worker-sweep 2 -repeat 2 -morsel-out BENCH_morsel_smoke.json

# Service load benchmark: N clients of mixed point/heavy XMark traffic
# against an in-process service; writes BENCH_service.json with per-class
# throughput and p50/p95/p99 latency. On single-CPU hosts the report is
# cpu_caveat-stamped — the numbers there are time-slicing, not capacity.
bench-service:
	$(GO) run ./cmd/pfload -launch -gen xmark.xml=0.01 -clients 16 -duration 10s -v

# CI smoke for the service path: a real pfserver process (HTTP + TCP),
# pfload driving it briefly, /stats scraped, completions asserted, and a
# graceful TERM shutdown checked.
service-smoke:
	./scripts/service_smoke.sh

# Persistence benchmark: cold shred of auction.xml vs pfstore save +
# reopen, with a differential query check; writes BENCH_store.json
# (cpu_caveat-stamped on single-CPU hosts).
bench-store:
	$(GO) run ./cmd/xmarkbench -report store -sfs 0.1 -v

# Optimizer pipeline benchmark: per-query operator counts and rows
# materialized before/after the staged pipeline (vs the single-shot
# peephole), both plans executed and byte-compared; writes
# BENCH_plan.json (cpu_caveat-stamped on single-CPU hosts).
bench-plan:
	$(GO) run ./cmd/xmarkbench -report plan -sfs 0.1 -v

# CI smoke: a tiny instance — any output mismatch between the peephole
# and pipeline plans, or a pipeline plan larger than its peephole
# counterpart, fails the run.
bench-plan-smoke:
	$(GO) run ./cmd/xmarkbench -report plan -sfs 0.01 -repeat 2 -plan-out BENCH_plan_smoke.json

# Fused-chain executor benchmark: identical optimized plans run with
# fused chains as single vectorized loops vs one kernel at a time,
# outputs byte-compared, rows materialized counted in both modes;
# writes BENCH_fusion.json (cpu_caveat-stamped on single-CPU hosts).
bench-fusion:
	$(GO) run ./cmd/xmarkbench -report fusion -sfs 0.1 -repeat 5 -v

# CI smoke: a tiny instance — any fused/unfused output mismatch, or a
# fused run that materializes more rows than the per-operator run,
# fails the run.
bench-fusion-smoke:
	$(GO) run ./cmd/xmarkbench -report fusion -sfs 0.01 -repeat 2 -fusion-out BENCH_fusion_smoke.json

# CI smoke for the store path: persist a collection through one pfserver,
# restart over the same catalog directory, and assert the second process
# answers collection queries without ever seeing the source XML.
store-smoke:
	./scripts/store_smoke.sh
