# Build/test entry points. `make verify` is the tier-1 gate; `make race`
# is the concurrency tier covering the parallel scheduler and the shared
# stores under the Go race detector.

GO ?= go

.PHONY: build test verify race golden bench-parallel bench-physical

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: build test

# Race tier: the packages with query-time shared state — the scheduler
# (internal/engine), the column vectors (internal/bat), and the string
# pools + fragment registry (internal/xenc).
race:
	$(GO) test -race ./internal/engine/... ./internal/bat/... ./internal/xenc/...

# Full-repo race run (slower; includes the differential suites).
race-all:
	$(GO) test -race ./...

# Regenerate the pinned XMark query outputs after an intentional change.
golden:
	$(GO) test ./internal/engine -run TestXMarkGolden -update

# Sequential-vs-parallel scheduler comparison; writes BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/xmarkbench -report parallel -sfs 0.1 -workers 8 -v

# Legacy-interpreter-vs-physical-executor comparison; writes
# BENCH_physical.json (doubles as a differential check: every query's
# output is compared byte-for-byte).
bench-physical:
	$(GO) run ./cmd/xmarkbench -report physical -sfs 0.1 -v
