#!/bin/sh
# Service-path smoke: boot a real pfserver (HTTP + TCP front doors over a
# tiny XMark instance), drive it with pfload for ~2s, scrape /stats via
# the pfload report and assert non-zero completions, then check the
# graceful SIGTERM drain path end to end.
set -eu

workdir=$(mktemp -d)
log="$workdir/pfserver.log"
report="$workdir/BENCH_service_smoke.json"
srv_pid=""

cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/pfserver" ./cmd/pfserver
go build -o "$workdir/pfload" ./cmd/pfload

"$workdir/pfserver" -listen 127.0.0.1:0 -http 127.0.0.1:0 -gen xmark.xml=0.002 2>"$log" &
srv_pid=$!

# Wait for the readiness line and pick up the bound HTTP address.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^pfserver: http on //p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$srv_pid" 2>/dev/null || { echo "pfserver died:"; cat "$log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "pfserver never became ready:"; cat "$log"; exit 1; }

"$workdir/pfload" -addr "$addr" -clients 4 -duration 2s -min-ok 1 -out "$report"

# The scraped /stats snapshot must show completed queries.
grep -q '"completed": [1-9]' "$report" || {
    echo "no completed queries in /stats snapshot:"; cat "$report"; exit 1; }

# Graceful shutdown: TERM drains and the process exits cleanly.
kill -TERM "$srv_pid"
wait "$srv_pid" || { echo "pfserver exited non-zero after TERM:"; cat "$log"; exit 1; }
srv_pid=""
grep -q "shut down" "$log" || { echo "no graceful shutdown line:"; cat "$log"; exit 1; }

echo "service smoke OK"
