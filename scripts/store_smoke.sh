#!/bin/sh
# Store-path smoke: persist a named collection into a pfstore catalog
# through one pfserver process, restart the server over the same catalog
# directory, and assert the second process — which never saw the source
# XML — answers collection-bound queries through both front doors. This
# is the reopen-without-re-shredding contract, end to end.
set -eu

workdir=$(mktemp -d)
catdir="$workdir/catalog"
log="$workdir/pfserver.log"
srv_pid=""

cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/pfserver" ./cmd/pfserver
go build -o "$workdir/pfshell" ./cmd/pfshell
mkdir -p "$catdir"

start_server() {
    : >"$log"
    "$workdir/pfserver" -listen 127.0.0.1:0 -http 127.0.0.1:0 -store "$catdir" 2>"$log" &
    srv_pid=$!
    i=0
    while [ $i -lt 100 ]; do
        http_addr=$(sed -n 's/^pfserver: http on //p' "$log")
        tcp_addr=$(sed -n 's/^pfserver: listening on //p' "$log")
        [ -n "$http_addr" ] && [ -n "$tcp_addr" ] && return 0
        kill -0 "$srv_pid" 2>/dev/null || { echo "pfserver died:"; cat "$log"; exit 1; }
        sleep 0.1
        i=$((i + 1))
    done
    echo "pfserver never became ready:"; cat "$log"; exit 1
}

stop_server() {
    kill -TERM "$srv_pid"
    wait "$srv_pid" || { echo "pfserver exited non-zero after TERM:"; cat "$log"; exit 1; }
    srv_pid=""
}

# First life: persist a collection over HTTP.
start_server
put=$(curl -fsS -X PUT --data-binary '<crew><member>Ada</member><member>Grace</member></crew>' \
    "http://$http_addr/collections/smoke?doc=a.xml")
echo "$put" | grep -q '"generation": *1' || { echo "unexpected PUT response: $put"; exit 1; }

out=$(curl -fsS -X POST --data-binary 'count(collection("smoke")//member)' \
    "http://$http_addr/query/text?collection=smoke")
[ "$out" = "2" ] || { echo "first-life query returned $out, want 2"; exit 1; }
stop_server

ls "$catdir"/smoke.pfc >/dev/null || { echo "no smoke.pfc in catalog dir"; exit 1; }

# Second life: same catalog directory, no source XML anywhere in sight.
start_server
grep -q 'catalog .*1 collection(s): smoke' "$log" || {
    echo "restarted server did not list the persisted collection:"; cat "$log"; exit 1; }

out=$(curl -fsS -X POST --data-binary 'count(collection("smoke")//member)' \
    "http://$http_addr/query/text?collection=smoke")
[ "$out" = "2" ] || { echo "reopened HTTP query returned $out, want 2"; exit 1; }

out=$("$workdir/pfshell" -addr "$tcp_addr" -collection smoke '/crew/member/text()')
[ "$out" = "AdaGrace" ] || { echo "reopened TCP query returned $out, want AdaGrace"; exit 1; }

# Delete, and the catalog file goes with it.
curl -fsS -X DELETE "http://$http_addr/collections/smoke" >/dev/null
if ls "$catdir"/smoke.pfc >/dev/null 2>&1; then
    echo "smoke.pfc survived DELETE"; exit 1
fi
stop_server

echo "store smoke OK"
