package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Conservative dataflow helpers shared by the suite analyzers:
//
//   - walkLocks drives a linear, branch-aware walk of a function body
//     tracking which shared-identity mutexes are held at each call site
//     (the lockorder and golifecycle analyzers consume its event stream);
//   - origins classifies each local value as freshly allocated or
//     adopted from the caller (the colown analyzer's ownership facts).
//
// The walk is deliberately approximate: statements are visited in source
// order, an if-branch that terminates (returns/branches) does not leak
// its lock effects into the fall-through path, switch/select arms are
// analyzed in isolation, and goroutine bodies and function literals are
// skipped (they run under their own lock context). That is exactly
// enough precision for the lock disciplines this repo uses — guard
// blocks that unlock-and-return, defer-unlock, and unlock-park-relock
// wait loops — without a full CFG.

type lockEventKind int

const (
	evAcquire lockEventKind = iota // a tracked mutex is being locked
	evCall                         // a resolvable call executes with locks held
)

type lockEvent struct {
	kind   lockEventKind
	id     string        // evAcquire: the lock being taken
	callee *types.Func   // evCall: the resolved target
	call   *ast.CallExpr // evCall: the call site
	pos    token.Pos     // event position
	held   []heldLock    // locks held *before* the event, acquisition order
}

type heldLock struct {
	id  string
	pos token.Pos
}

// walkLocks walks fi's body firing f for every acquisition and call.
func (s *suite) walkLocks(fi *funcInfo, f func(lockEvent)) {
	w := &lockWalker{s: s, pi: fi.pi, emit: f}
	w.stmts(fi.decl.Body.List)
}

type lockWalker struct {
	s    *suite
	pi   *pkgInfo
	held []heldLock
	emit func(lockEvent)
}

func (w *lockWalker) snapshot() []heldLock {
	out := make([]heldLock, len(w.held))
	copy(out, w.held)
	return out
}

func (w *lockWalker) restore(saved []heldLock) { w.held = saved }

func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, st := range list {
		w.stmt(st)
	}
}

func (w *lockWalker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		w.stmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.exprCalls(st.Cond)
		saved := w.snapshot()
		w.stmt(st.Body)
		if terminates(st.Body) {
			// The taken branch left the function; the fall-through path
			// still holds what it held before.
			w.restore(saved)
		}
		if st.Else != nil {
			afterBody := w.snapshot()
			w.restore(saved)
			w.stmt(st.Else)
			if terminatesStmt(st.Else) {
				w.restore(afterBody)
			}
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.exprCalls(st.Cond)
		}
		w.stmt(st.Body)
		if st.Post != nil {
			w.stmt(st.Post)
		}
	case *ast.RangeStmt:
		w.exprCalls(st.X)
		w.stmt(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.exprCalls(st.Tag)
		}
		w.isolatedClauses(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.isolatedClauses(st.Body)
	case *ast.SelectStmt:
		w.isolatedClauses(st.Body)
	case *ast.ExprStmt:
		w.exprCalls(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.exprCalls(e)
		}
		for _, e := range st.Lhs {
			w.exprCalls(e)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.exprCalls(e)
		}
	case *ast.SendStmt:
		w.exprCalls(st.Chan)
		w.exprCalls(st.Value)
	case *ast.IncDecStmt:
		w.exprCalls(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.exprCalls(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.DeferStmt:
		// defer mu.Unlock() pins the lock for the rest of the walk —
		// held until function exit, which is what the linear walk
		// already models by never popping it. Other deferred calls run
		// at exit under an unknown lock set; skip them rather than
		// report edges that may not exist.
		if id, isUnlock := w.unlockTarget(st.Call); isUnlock {
			_ = id // stays held: no pop
		}
	case *ast.GoStmt:
		// The spawned body runs concurrently, not under our locks.
	}
}

// isolatedClauses analyzes each case/comm clause from the entry lock
// set and restores it afterwards — which arm runs is unknowable.
func (w *lockWalker) isolatedClauses(body *ast.BlockStmt) {
	entry := w.snapshot()
	for _, cl := range body.List {
		w.restore(copyHeld(entry))
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.exprCalls(e)
			}
			w.stmts(cl.Body)
		case *ast.CommClause:
			if cl.Comm != nil {
				w.stmt(cl.Comm)
			}
			w.stmts(cl.Body)
		}
	}
	w.restore(entry)
}

func copyHeld(h []heldLock) []heldLock {
	out := make([]heldLock, len(h))
	copy(out, h)
	return out
}

// exprCalls processes every call inside e in traversal order, applying
// lock/unlock effects and emitting events. Function literals are skipped.
func (w *lockWalker) exprCalls(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// mutexMethod classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and returns the receiver's shared identity.
func (w *lockWalker) mutexMethod(call *ast.CallExpr) (id, method string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	f, isFunc := w.pi.info.Uses[sel.Sel].(*types.Func)
	if !isFunc {
		return "", "", false
	}
	if !isSyncMethod(f, "Mutex", "Lock", "Unlock") && !isSyncMethod(f, "RWMutex", "Lock", "Unlock", "RLock", "RUnlock") {
		return "", "", false
	}
	return lockID(w.pi, sel.X), f.Name(), true
}

func (w *lockWalker) unlockTarget(call *ast.CallExpr) (string, bool) {
	id, method, ok := w.mutexMethod(call)
	if !ok || (method != "Unlock" && method != "RUnlock") {
		return "", false
	}
	return id, true
}

func (w *lockWalker) call(call *ast.CallExpr) {
	if id, method, ok := w.mutexMethod(call); ok {
		switch method {
		case "Lock", "RLock":
			if id != "" {
				w.emit(lockEvent{kind: evAcquire, id: id, pos: call.Pos(), held: w.snapshot()})
				w.held = append(w.held, heldLock{id: id, pos: call.Pos()})
			}
		case "Unlock", "RUnlock":
			if id != "" {
				for i := len(w.held) - 1; i >= 0; i-- {
					if w.held[i].id == id {
						w.held = append(w.held[:i], w.held[i+1:]...)
						break
					}
				}
			}
		}
		return
	}
	if callee := calleeOf(w.pi, call); callee != nil {
		w.emit(lockEvent{kind: evCall, callee: callee, call: call, pos: call.Pos(), held: w.snapshot()})
	}
}

// terminates reports whether a block always leaves the enclosing scope
// (return, branch, panic, os.Exit) — the guard-block shape whose lock
// effects must not leak into the fall-through path.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return terminatesStmt(b.List[len(b.List)-1])
}

func terminatesStmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(st)
	case *ast.IfStmt:
		if !terminates(st.Body) || st.Else == nil {
			return false
		}
		return terminatesStmt(st.Else)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			switch fun := unparen(call.Fun).(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				return fun.Sel.Name == "Exit" || fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf"
			}
		}
	}
	return false
}

// Origins ---------------------------------------------------------------------

type originKind int

const (
	originAdopted originKind = iota // reached us from outside: parameter, receiver, call result, field read
	originFresh                     // provably allocated here: make, append, composite literal, new
)

// origins classifies every local object in fn. Parameters and receivers
// are adopted; locals take the origin of their initializer, tracked
// through conversions, selector/index reads (root's origin), and range
// statements. Anything a call returns is adopted — inside a publish
// path, values handed back by other functions are presumed shared.
func origins(pi *pkgInfo, fn *ast.FuncDecl) map[types.Object]originKind {
	m := map[types.Object]originKind{}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			for _, name := range field.Names {
				if obj := pi.info.Defs[name]; obj != nil {
					m[obj] = originAdopted
				}
			}
		}
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if obj := pi.info.Defs[name]; obj != nil {
					m[obj] = originAdopted
				}
			}
		}
	}

	var classify func(e ast.Expr) originKind
	classify = func(e ast.Expr) originKind {
		switch e := unparen(e).(type) {
		case *ast.CompositeLit:
			return originFresh
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				return classify(e.X)
			}
		case *ast.CallExpr:
			switch fun := unparen(e.Fun).(type) {
			case *ast.Ident:
				if _, isBuiltin := pi.info.Uses[fun].(*types.Builtin); isBuiltin {
					switch fun.Name {
					case "make", "append", "new":
						return originFresh
					}
				}
			}
			// Conversion of a fresh value stays fresh.
			if len(e.Args) == 1 {
				if tv, ok := pi.info.Types[e.Fun]; ok && tv.IsType() {
					return classify(e.Args[0])
				}
			}
			return originAdopted
		case *ast.Ident:
			if obj := pi.info.Uses[e]; obj != nil {
				if k, ok := m[obj]; ok {
					return k
				}
			}
			return originAdopted
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
			if root := rootIdent(e); root != nil {
				return classify(root)
			}
		}
		return originAdopted
	}

	assign := func(lhs ast.Expr, kind originKind) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pi.info.Defs[id]; obj != nil {
			m[obj] = kind
		} else if obj := pi.info.Uses[id]; obj != nil {
			m[obj] = kind
		}
	}

	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					assign(lhs, classify(n.Rhs[i]))
				}
			} else if len(n.Rhs) == 1 {
				kind := classify(n.Rhs[0])
				for _, lhs := range n.Lhs {
					assign(lhs, kind)
				}
			}
		case *ast.RangeStmt:
			kind := classify(n.X)
			if n.Key != nil {
				assign(n.Key, kind)
			}
			if n.Value != nil {
				assign(n.Value, kind)
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							assign(name, classify(vs.Values[i]))
						} else {
							// var x T — the zero value is ours to build.
							assign(name, originFresh)
						}
					}
				}
			}
		}
		return true
	})
	return m
}

// rootIdent unwraps selector/index/star/slice chains to the base
// identifier, or nil (e.g. a call result being indexed directly).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
