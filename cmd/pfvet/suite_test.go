package main

// The interprocedural suite runs over one fixture package per analyzer,
// each reproducing the historical bug class it encodes (the pre-fix
// Catalog.Put lock-across-Save, the PR 7 reseal race, the PR 6 drain
// race, the raw-error boundary leak) plus negative and allow-suppressed
// shapes. Diagnostics are pinned byte for byte against golden files;
// regenerate with `go test ./cmd/pfvet -run Fixture -update`.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// loadSuiteFixture type-checks testdata/<name> and builds the suite over
// it, rooted at the module root so message paths match CI output.
func loadSuiteFixture(t *testing.T, name string) *suite {
	t.Helper()
	root, module, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root, module)
	if _, err := l.loadDir(filepath.Join("testdata", name), "fixture/"+name); err != nil {
		t.Fatal(err)
	}
	return newSuite(l.fset, root, l.pkgs)
}

// checkGolden compares rendered findings against testdata/golden/<name>.golden.
func checkGolden(t *testing.T, name string, s *suite, fs []finding) {
	t.Helper()
	var lines []string
	for _, f := range fs {
		if rel, err := filepath.Rel(s.root, f.pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.pos.Filename = filepath.ToSlash(rel)
		}
		lines = append(lines, f.String())
	}
	got := strings.Join(lines, "\n") + "\n"
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestLockorderFixture(t *testing.T) {
	s := loadSuiteFixture(t, "lockorder")
	cfg := suiteConfig{lockPkgs: map[string]bool{"fixture/lockorder": true}}
	checkGolden(t, "lockorder", s, s.run(cfg, map[string]bool{"lockorder": true}))
}

func TestColownFixture(t *testing.T) {
	s := loadSuiteFixture(t, "colown")
	cfg := suiteConfig{
		colownCols: map[string]bool{"fixture/colown": true},
		colownPubs: map[string]bool{"NewStoreFromParts": true},
	}
	checkGolden(t, "colown", s, s.run(cfg, map[string]bool{"colown": true}))
}

func TestGolifecycleFixture(t *testing.T) {
	s := loadSuiteFixture(t, "golifecycle")
	cfg := suiteConfig{lifePkgs: map[string]bool{"fixture/golifecycle": true}}
	checkGolden(t, "golifecycle", s, s.run(cfg, map[string]bool{"golifecycle": true}))
}

func TestErrclassFixture(t *testing.T) {
	s := loadSuiteFixture(t, "errclass")
	cfg := suiteConfig{errPkg: "fixture/errclass", errType: "Error"}
	checkGolden(t, "errclass", s, s.run(cfg, map[string]bool{"errclass": true}))
}

// TestRulesFlag pins the -rules contract: unknown names are rejected,
// subsets mask both layers, empty means everything.
func TestRulesFlag(t *testing.T) {
	if _, err := parseRules("lockorder,nosuchrule"); err == nil {
		t.Error("unknown rule must be rejected")
	}
	all, err := parseRules("")
	if err != nil || len(all) != len(packageRules)+len(suiteRules) {
		t.Errorf("empty -rules must enable every rule, got %v (%v)", all, err)
	}
	sub, err := parseRules("lockorder,batmut")
	if err != nil {
		t.Fatal(err)
	}
	if !sub["lockorder"] || !sub["batmut"] || sub["errclass"] || sub["ctxpoll"] {
		t.Errorf("subset mask wrong: %v", sub)
	}
	cs := checksFor("pathfinder/internal/engine").restrict(sub)
	if !cs.batmut || cs.ctxpoll || cs.fusedalloc {
		t.Errorf("restrict must mask per-package checks: %+v", cs)
	}
	if !anySuiteRule(sub) || anySuiteRule(map[string]bool{"batmut": true}) {
		t.Error("anySuiteRule must detect exactly the interprocedural rules")
	}
}

// TestPfvetSelfClean: the analyzer's own package passes its per-package
// checks — pfvet must hold itself to the repo's standards.
func TestPfvetSelfClean(t *testing.T) {
	root, module, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root, module)
	path := module + "/cmd/pfvet"
	pi, err := l.loadDir(filepath.Join(root, "cmd", "pfvet"), path)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range runChecks(l.fset, pi, checksFor(path)) {
		t.Errorf("pfvet is not self-clean: %s", f)
	}
}

// TestRepoSuiteIsClean runs the interprocedural suite over the real tree
// under the production scope — the CI gate for the four new analyzers.
func TestRepoSuiteIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is slow")
	}
	root, module, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root, module)
	paths, err := l.modulePackages()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, module), "/")
		if _, err := l.loadDir(filepath.Join(root, rel), path); err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
	}
	s := newSuite(l.fset, root, l.pkgs)
	rules := map[string]bool{}
	for _, r := range suiteRules {
		rules[r] = true
	}
	for _, f := range s.run(defaultSuiteConfig(module), rules) {
		t.Errorf("%s", f)
	}
}
