package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Stdlib-only package loader: go/parser for syntax, go/types for
// semantics, with a two-way importer — module-internal import paths are
// parsed and type-checked from source recursively, everything else is
// delegated to the compiler's source importer. No go/packages, no
// external driver, so the analyzer runs anywhere the toolchain does.

// pkgInfo is one loaded, type-checked package.
type pkgInfo struct {
	path  string // import path ("pathfinder/internal/bat")
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	fset       *token.FileSet
	moduleRoot string // directory containing go.mod
	moduleName string // module path from go.mod
	std        types.Importer
	pkgs       map[string]*pkgInfo
}

func newLoader(moduleRoot, moduleName string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:       fset,
		moduleRoot: moduleRoot,
		moduleName: moduleName,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*pkgInfo{},
	}
}

// findModule walks up from dir to the enclosing go.mod and returns its
// directory and module path.
func findModule(dir string) (root, name string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		b, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(b), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer for the type-checker's benefit.
func (l *loader) Import(path string) (*types.Package, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi.pkg, nil
	}
	if path == l.moduleName || strings.HasPrefix(path, l.moduleName+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.moduleName), "/")
		pi, err := l.loadDir(filepath.Join(l.moduleRoot, rel), path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the package in dir under the given
// import path. Test files are excluded: pfvet analyzes production code.
func (l *loader) loadDir(dir, path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go source files", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pi := &pkgInfo{path: path, files: files, pkg: pkg, info: info}
	l.pkgs[path] = pi
	return pi, nil
}

// modulePackages lists the import paths of every package under the
// module root, skipping testdata trees and hidden directories.
func (l *loader) modulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if n == "testdata" || (strings.HasPrefix(n, ".") && p != l.moduleRoot) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(l.moduleRoot, dir)
		if err != nil {
			return err
		}
		path := l.moduleName
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != path {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// WalkDir visits files of one directory contiguously, but dedupe
	// defensively in case of interleaving.
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || p != paths[i-1] {
			out = append(out, p)
		}
	}
	return out, nil
}
