// Command pfvet is the repository's source analyzer: project-specific
// correctness checks go vet cannot know about, built on go/ast and
// go/types alone (no analysis framework, no module downloads). It
// type-checks the module from source and enforces two layers.
//
// Per-package checks:
//
//   - batmut: no element writes into shared bat column vectors outside
//     internal/bat (vectors are shared across views, plan-cache hits and
//     scheduler workers)
//   - determinism: no clock or randomness in kernel packages
//   - ctxpoll: context-taking engine functions with nested row loops
//     must poll the context
//   - mutexval: no value receivers on types holding sync state
//   - maporder: no map-iteration-order dependence in optimizer passes
//   - fusedalloc: no allocation or map access in fused lane loops
//
// Interprocedural suite (call graph + dataflow over the whole module):
//
//   - lockorder: mutex acquisition order is acyclic; shared locks are
//     never held across file or network I/O
//   - colown: columnar state adopted on a publish path is cloned, not
//     mutated in place
//   - golifecycle: every goroutine joins or polls cancellation;
//     WaitGroup Add does not race Wait reuse
//   - errclass: every error crossing the service boundary carries the
//     documented status contract
//
// Deliberate exceptions carry a `//pfvet:allow <check> -- reason`
// directive on the same or preceding line.
//
// Usage:
//
//	pfvet                           # analyze the whole module
//	pfvet ./internal/engine         # per-package checks on one package
//	pfvet -rules lockorder,errclass # run a subset
//	pfvet -sarif pfvet.sarif        # also write SARIF for CI annotation
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// suiteRules are the interprocedural analyzers; they always run over the
// whole module (their facts are call-graph-wide even when the findings
// land in one package).
var suiteRules = []string{"lockorder", "colown", "golifecycle", "errclass"}

var packageRules = []string{"batmut", "determinism", "ctxpoll", "mutexval", "maporder", "fusedalloc"}

func main() {
	var (
		rulesFlag = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		sarifFlag = flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
	)
	flag.Parse()

	rules, err := parseRules(*rulesFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
		os.Exit(2)
	}

	root, name, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
		os.Exit(2)
	}
	l := newLoader(root, name)

	var paths []string
	if flag.NArg() > 0 {
		for _, arg := range flag.Args() {
			abs, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
				os.Exit(2)
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				fmt.Fprintf(os.Stderr, "pfvet: %s is outside module %s\n", arg, name)
				os.Exit(2)
			}
			p := name
			if rel != "." {
				p += "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, p)
		}
	} else {
		paths, err = l.modulePackages()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
			os.Exit(2)
		}
	}

	var all []finding
	for _, path := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, name), "/")
		dir := filepath.Join(root, rel)
		pi, err := l.loadDir(dir, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
			os.Exit(2)
		}
		all = append(all, runChecks(l.fset, pi, checksFor(path).restrict(rules))...)
	}

	if anySuiteRule(rules) {
		fs, err := runSuite(l, rules)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}

	sort.Slice(all, func(a, b int) bool {
		if all[a].pos.Filename != all[b].pos.Filename {
			return all[a].pos.Filename < all[b].pos.Filename
		}
		if all[a].pos.Line != all[b].pos.Line {
			return all[a].pos.Line < all[b].pos.Line
		}
		return all[a].check < all[b].check
	})

	if *sarifFlag != "" {
		// SARIF wants original (absolute) paths relativized itself; write
		// before the display pass rewrites filenames.
		b, err := sarifBytes(root, all)
		if err == nil {
			err = os.WriteFile(*sarifFlag, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfvet: sarif: %v\n", err)
			os.Exit(2)
		}
	}

	for _, f := range all {
		if rel, err := filepath.Rel(root, f.pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "pfvet: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

// parseRules validates a -rules subset; empty means every rule.
func parseRules(csv string) (map[string]bool, error) {
	known := map[string]bool{}
	for _, r := range packageRules {
		known[r] = true
	}
	for _, r := range suiteRules {
		known[r] = true
	}
	if csv == "" {
		return known, nil
	}
	out := map[string]bool{}
	for _, r := range strings.Split(csv, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if !known[r] {
			var names []string
			for n := range known {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown rule %q (known: %s)", r, strings.Join(names, ", "))
		}
		out[r] = true
	}
	if len(out) == 0 {
		return known, nil
	}
	return out, nil
}

// restrict masks a checkSet down to the enabled rules.
func (cs checkSet) restrict(rules map[string]bool) checkSet {
	cs.batmut = cs.batmut && rules["batmut"]
	cs.determinism = cs.determinism && rules["determinism"]
	cs.ctxpoll = cs.ctxpoll && rules["ctxpoll"]
	cs.mutexval = cs.mutexval && rules["mutexval"]
	cs.maporder = cs.maporder && rules["maporder"]
	cs.fusedalloc = cs.fusedalloc && rules["fusedalloc"]
	return cs
}

func anySuiteRule(rules map[string]bool) bool {
	for _, r := range suiteRules {
		if rules[r] {
			return true
		}
	}
	return false
}

// runSuite loads every module package, builds the interprocedural suite,
// and runs the enabled analyzers under the production scope.
func runSuite(l *loader, rules map[string]bool) ([]finding, error) {
	paths, err := l.modulePackages()
	if err != nil {
		return nil, err
	}
	for _, path := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.moduleName), "/")
		if _, err := l.loadDir(filepath.Join(l.moduleRoot, rel), path); err != nil {
			return nil, err
		}
	}
	s := newSuite(l.fset, l.moduleRoot, l.pkgs)
	cfg := defaultSuiteConfig(l.moduleName)
	return s.run(cfg, rules), nil
}

// run executes the enabled suite analyzers and applies allow-directive
// suppression package by package.
func (s *suite) run(cfg suiteConfig, rules map[string]bool) []finding {
	var fs []finding
	if rules["lockorder"] {
		fs = append(fs, s.lockorder(cfg)...)
	}
	if rules["colown"] {
		fs = append(fs, s.colown(cfg)...)
	}
	if rules["golifecycle"] {
		fs = append(fs, s.golifecycle(cfg)...)
	}
	if rules["errclass"] {
		fs = append(fs, s.errclass(cfg)...)
	}
	for _, pi := range s.pkgs {
		fs = suppressAllowed(s.fset, pi, fs)
	}
	sort.Slice(fs, func(a, b int) bool {
		if fs[a].pos.Filename != fs[b].pos.Filename {
			return fs[a].pos.Filename < fs[b].pos.Filename
		}
		if fs[a].pos.Line != fs[b].pos.Line {
			return fs[a].pos.Line < fs[b].pos.Line
		}
		return fs[a].check < fs[b].check
	})
	return fs
}
