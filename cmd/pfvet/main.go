// Command pfvet is the repository's source analyzer: project-specific
// correctness checks go vet cannot know about, built on go/ast and
// go/types alone (no analysis framework, no module downloads). It
// type-checks the module from source and enforces:
//
//   - batmut: no element writes into shared bat column vectors outside
//     internal/bat (vectors are shared across views, plan-cache hits and
//     scheduler workers)
//   - determinism: no clock or randomness in kernel packages
//   - ctxpoll: context-taking engine functions with nested row loops
//     must poll the context
//   - mutexval: no value receivers on types holding sync state
//
// Deliberate exceptions carry a `//pfvet:allow <check> -- reason`
// directive on the same or preceding line.
//
// Usage:
//
//	pfvet            # analyze the whole module
//	pfvet ./internal/engine ./cmd/pf
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root, name, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
		os.Exit(2)
	}
	l := newLoader(root, name)

	var paths []string
	if len(os.Args) > 1 {
		for _, arg := range os.Args[1:] {
			abs, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
				os.Exit(2)
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				fmt.Fprintf(os.Stderr, "pfvet: %s is outside module %s\n", arg, name)
				os.Exit(2)
			}
			p := name
			if rel != "." {
				p += "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, p)
		}
	} else {
		paths, err = l.modulePackages()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
			os.Exit(2)
		}
	}

	total := 0
	for _, path := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, name), "/")
		dir := filepath.Join(root, rel)
		pi, err := l.loadDir(dir, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfvet: %v\n", err)
			os.Exit(2)
		}
		for _, f := range runChecks(l.fset, pi, checksFor(path)) {
			rel, err := filepath.Rel(root, f.pos.Filename)
			if err == nil {
				f.pos.Filename = rel
			}
			fmt.Println(f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "pfvet: %d finding(s)\n", total)
		os.Exit(1)
	}
}
