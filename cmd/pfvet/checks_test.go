package main

// The checks run over testdata/fixture, whose `// want <check>` markers
// declare exactly which lines must be flagged — the go vet testing
// idiom, kept stdlib-only.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadFixture(t *testing.T) (*loader, *pkgInfo) {
	t.Helper()
	root, name, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root, name)
	pi, err := l.loadDir(filepath.Join("testdata", "fixture"), "fixture")
	if err != nil {
		t.Fatal(err)
	}
	return l, pi
}

// wantMarkers reads the `// want <check>` annotations of every fixture
// file as a set of "file:line:check" keys.
func wantMarkers(t *testing.T) map[string]bool {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "fixture", "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files: %v", err)
	}
	want := map[string]bool{}
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(b), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, check := range strings.Fields(marker) {
				want[fmt.Sprintf("%s:%d:%s", filepath.Base(path), i+1, check)] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture has no want markers")
	}
	return want
}

func TestChecksAgainstFixture(t *testing.T) {
	l, pi := loadFixture(t)
	all := checkSet{batmut: true, determinism: true, ctxpoll: true, mutexval: true, maporder: true, fusedalloc: true}
	got := map[string]bool{}
	for _, f := range runChecks(l.fset, pi, all) {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.pos.Filename), f.pos.Line, f.check)] = true
	}
	want := wantMarkers(t)
	for k := range want {
		if !got[k] {
			t.Errorf("expected finding %s was not reported", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected finding %s", k)
		}
	}
}

// TestChecksForScoping pins which checks run where: batmut everywhere
// except the bat package itself, determinism in kernel packages only.
func TestChecksForScoping(t *testing.T) {
	bat := checksFor("pathfinder/internal/bat")
	if bat.batmut {
		t.Error("batmut must not run inside internal/bat (vectors are built there)")
	}
	if !bat.determinism {
		t.Error("determinism must cover internal/bat")
	}
	eng := checksFor("pathfinder/internal/engine")
	if !eng.batmut || !eng.determinism || !eng.ctxpoll || !eng.mutexval {
		t.Errorf("engine package must run all checks, got %+v", eng)
	}
	cli := checksFor("pathfinder/cmd/pf")
	if cli.determinism || cli.ctxpoll {
		t.Errorf("cmd packages are not kernel code, got %+v", cli)
	}
	if !cli.batmut || !cli.mutexval {
		t.Errorf("batmut/mutexval are repo-wide, got %+v", cli)
	}
	optPkg := checksFor("pathfinder/internal/opt")
	if !optPkg.maporder {
		t.Error("maporder must cover the optimizer's rewrite passes")
	}
	if eng.maporder || cli.maporder {
		t.Error("maporder is scoped to internal/opt; other packages range maps freely")
	}
	if !eng.fusedalloc {
		t.Error("fusedalloc must cover the engine's fused lane kernels")
	}
	if cli.fusedalloc || optPkg.fusedalloc {
		t.Error("fusedalloc is scoped to internal/engine; only fusedkernel*.go files hold lane loops")
	}
}

// TestRepoIsClean runs pfvet's own checks over the whole module — the
// same gate CI enforces, expressed as a test so `go test ./...` fails
// the moment a kernel regression lands.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is slow")
	}
	root, name, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root, name)
	paths, err := l.modulePackages()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, name), "/")
		pi, err := l.loadDir(filepath.Join(root, rel), path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		for _, f := range runChecks(l.fset, pi, checksFor(path)) {
			t.Errorf("%s", f)
		}
	}
}
