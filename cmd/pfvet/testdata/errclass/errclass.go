// Package errclass is the pfvet errclass fixture: a miniature service
// boundary. Every error an exported function returns must be classified —
// a *Error, a declared sentinel, nil, or the result of a callee whose own
// returns classify. Raw errors escaping exported functions are flagged.
package errclass

import (
	"errors"
	"fmt"
)

// Error is the fixture's classified boundary error.
type Error struct {
	Code string
	Err  error
}

func (e *Error) Error() string { return e.Code + ": " + e.Err.Error() }

// Unwrap returns the raw cause — it IS the contract, not subject to it.
func (e *Error) Unwrap() error { return e.Err }

// ErrMissing is a declared sentinel, part of the documented contract.
var ErrMissing = errors.New("missing")

// Bad returns a raw error straight across the boundary.
func Bad() error { return errors.New("boom") }

// BadVar leaks a raw error through a local variable.
func BadVar(n int) error {
	err := fmt.Errorf("n=%d", n)
	if n > 0 {
		return err
	}
	return nil
}

// Good wraps before returning.
func Good(n int) error {
	if err := work(n); err != nil {
		return &Error{Code: "exec", Err: err}
	}
	return nil
}

// Forward forwards a callee whose returns all classify.
func Forward(n int) error { return Good(n) }

// Lookup returns a declared sentinel.
func Lookup(ok bool) error {
	if !ok {
		return ErrMissing
	}
	return nil
}

// Classify routes through a classifier helper typed *Error.
func Classify(err error) error {
	return classify(err)
}

func classify(err error) *Error { return &Error{Code: "exec", Err: err} }

// session is unexported: its methods are not boundary API; their errors
// only escape through an exported function, which is checked by flow.
type session struct{}

func (s *session) Acquire() error { return errors.New("raw but internal") }

func work(n int) error {
	if n > 1 {
		return errors.New("work failed")
	}
	return nil
}

// Raw carries a deliberate-exception directive.
func Raw() error {
	//pfvet:allow errclass -- fixture: deliberate raw error
	return errors.New("raw")
}
