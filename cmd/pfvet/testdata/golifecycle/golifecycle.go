// Package golifecycle is the pfvet golifecycle fixture: the PR 6 drain
// race in miniature. Every spawned goroutine must show join or
// cancellation evidence, and an Add on a shared WaitGroup whose Wait
// happens elsewhere must hold a mutex — an atomic draining flag alone
// cannot order Add against a Wait that has observed zero.
package golifecycle

import (
	"context"
	"sync"
	"sync/atomic"
)

type pool struct {
	mu       sync.Mutex
	wg       sync.WaitGroup
	draining atomic.Bool
}

// leak spawns a goroutine nothing can stop or wait for.
func (p *pool) leak() {
	go func() {
		for {
			step()
		}
	}()
}

// beginRacy is the pre-fix begin(): the atomic flag check does not order
// the Add against drain's Wait.
func (p *pool) beginRacy() bool {
	if p.draining.Load() {
		return false
	}
	p.wg.Add(1)
	return true
}

// beginSafe is the fix: the mutex orders flag and Add against the drain.
func (p *pool) beginSafe() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining.Load() {
		return false
	}
	p.wg.Add(1)
	return true
}

func (p *pool) drain() {
	p.mu.Lock()
	p.draining.Store(true)
	p.mu.Unlock()
	p.wg.Wait()
}

// watch joins through a channel receive.
func watch(ch chan int) {
	go func() {
		<-ch
	}()
}

// poll is cancelable through its context.
func poll(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// fanout is the local fork/join pool shape: Add and Wait share a stack
// frame, so no reuse is possible.
func fanout() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			step()
		}()
	}
	wg.Wait()
}

// spawnServe delegates: the join discipline lives in the callee.
func (p *pool) spawnServe(c chan int) {
	go serve(c)
}

func serve(c chan int) { <-c }

// beginAllowed carries a deliberate-exception directive.
func (p *pool) beginAllowed() bool {
	if p.draining.Load() {
		return false
	}
	//pfvet:allow golifecycle -- fixture: deliberate suppressed racy Add
	p.wg.Add(1)
	return true
}

func step() {}
