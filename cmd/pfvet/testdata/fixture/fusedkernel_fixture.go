// The fusedalloc corpus: this file's "fusedkernel" name prefix opts it
// into the lane-loop discipline check, mirroring the real fused kernel
// files in internal/engine. Each marked line breaks the discipline; the
// unmarked neighbors are the hoisted/pre-sized legitimate shapes.
package fixture

// laneAppend grows its output mid-loop.
func laneAppend(sel []int32, a []int64) []int64 {
	var out []int64
	for _, lane := range sel {
		out = append(out, a[lane]) // want fusedalloc
	}
	return out
}

// lanePresized writes into a buffer sized before the loop — legitimate.
func lanePresized(sel []int32, a []int64) []int64 {
	out := make([]int64, len(a))
	for _, lane := range sel {
		out[lane] = a[lane]
	}
	return out
}

// laneMapLookup hashes per lane.
func laneMapLookup(sel []int32, byCol map[int32]int64, out []int64) {
	for _, lane := range sel {
		out[lane] = byCol[lane] // want fusedalloc
	}
}

// laneMapStore writes through a map per lane.
func laneMapStore(sel []int32, acc map[int32]int64) {
	for _, lane := range sel {
		acc[lane] = 1 // want fusedalloc
	}
}

// laneHoisted resolves the map lookup once, before the loop — legitimate.
func laneHoisted(sel []int32, byCol map[string][]int64, out []int64) {
	col := byCol["a"]
	for _, lane := range sel {
		out[lane] = col[lane]
	}
}

// nestedLaneAppend: the violation sits in an inner loop; the check must
// not double-report it for the enclosing loop.
func nestedLaneAppend(batches [][]int32, a []int64) []int64 {
	var out []int64
	for _, sel := range batches {
		for _, lane := range sel {
			out = append(out, a[lane]) // want fusedalloc
		}
	}
	return out
}

// setupOutsideLoop allocates before any loop runs — legitimate.
func setupOutsideLoop(byCol map[string][]int64) []int64 {
	out := append([]int64(nil), byCol["a"]...)
	return out
}
