// Package fixture is the pfvet check corpus: each marked line violates
// one check, each unmarked neighbor is the closest legitimate shape.
// The "want"-style markers are asserted by cmd/pfvet's tests.
package fixture

import (
	"context"
	"sort"
	"sync"
	"time"

	"pathfinder/internal/bat"
)

// --- batmut ------------------------------------------------------------------

// mutateShared writes into a column vector it does not own.
func mutateShared(v bat.IntVec) {
	v[0] = 99 // want batmut
}

// mutateSharedCompound's compound assignment and increment also write.
func mutateSharedCompound(v bat.IntVec) {
	v[0] += 2 // want batmut
	v[1]++    // want batmut
}

// buildFresh writes into vectors it just allocated — legitimate.
func buildFresh(n int) bat.IntVec {
	out := make(bat.IntVec, n)
	for i := range out {
		out[i] = int64(i)
	}
	lit := bat.IntVec{0, 0}
	lit[1] = 7
	return out
}

// readShared only reads — legitimate.
func readShared(v bat.IntVec) int64 {
	return v[0]
}

// --- determinism -------------------------------------------------------------

func clockInKernel() time.Time {
	return time.Now() // want determinism
}

func clockAllowed() time.Duration {
	start := time.Now() //pfvet:allow determinism -- fixture: trace timing
	return time.Since(start)
}

// --- ctxpoll -----------------------------------------------------------------

// nestedNoPoll runs a quadratic row loop without ever looking at ctx.
func nestedNoPoll(ctx context.Context, rows [][]int64) int64 { // want ctxpoll
	var sum int64
	for _, r := range rows {
		for _, x := range r {
			sum += x
		}
	}
	return sum
}

// nestedPolls checks the context inside the loop — legitimate.
func nestedPolls(ctx context.Context, rows [][]int64) (int64, error) {
	var sum int64
	for _, r := range rows {
		for _, x := range r {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			sum += x
		}
	}
	return sum, nil
}

// flatLoop has no nested loops, so no polling obligation.
func flatLoop(ctx context.Context, rows []int64) int64 {
	var sum int64
	for _, x := range rows {
		sum += x
	}
	return sum
}

// --- mutexval ----------------------------------------------------------------

type lockedCounter struct {
	mu sync.Mutex
	n  int
}

func (c lockedCounter) Get() int { // want mutexval
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *lockedCounter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

type embedsLock struct {
	inner lockedCounter
}

func (e embedsLock) Peek() int { // want mutexval
	return e.inner.n
}

type plainCounter struct{ n int }

func (p plainCounter) Get() int { return p.n }

// --- maporder ----------------------------------------------------------------

// visitByMap walks rewrite candidates in map order — nondeterministic.
func visitByMap(candidates map[string]int) int {
	total := 0
	for _, v := range candidates { // want maporder
		total += v
	}
	return total
}

// visitSorted collects the keys (an order-free iteration, acknowledged)
// and walks them sorted — the deterministic shape passes must use.
func visitSorted(candidates map[string]int) int {
	names := make([]string, 0, len(candidates))
	//pfvet:allow maporder -- key collection feeds the sort below
	for k := range candidates {
		names = append(names, k)
	}
	sort.Strings(names)
	total := 0
	for _, k := range names {
		total += candidates[k]
	}
	return total
}

// visitSlice ranges over a slice: order is the slice's own.
func visitSlice(ops []int) int {
	total := 0
	for _, v := range ops {
		total += v
	}
	return total
}
