// Package colown is the pfvet colown fixture: the PR 7 reseal race in
// miniature. NewStoreFromParts is the publish point; fragments reaching
// it are adopted from the caller and may already be visible to readers,
// so writes into their columns must be flagged unless the value is
// provably fresh or the write is explicitly allowed.
package colown

// Frag is a columnar fragment; its slices are shared zero-copy between
// store generations.
type Frag struct {
	Size []int32
	ofs  []int32
}

// Store publishes adopted fragments to concurrent readers.
type Store struct {
	frags []*Frag
}

// NewStoreFromParts is the fixture's publish point.
func NewStoreFromParts(frags []*Frag) *Store {
	for _, f := range frags {
		seal(f)
		patch(f)
		sealGated(f)
		_ = rebuild(f)
	}
	return &Store{frags: frags}
}

// seal rewrites the offsets of an adopted fragment — the reseal race.
func seal(f *Frag) {
	f.ofs = make([]int32, len(f.Size)+1)
	for i := range f.ofs {
		f.ofs[i] = 0
	}
}

// patch writes an element of an adopted column.
func patch(f *Frag) {
	f.Size[0] = 0
}

// rebuild clones first: writes into the fresh copy are the legitimate
// clone-then-modify shape.
func rebuild(f *Frag) *Frag {
	clone := &Frag{Size: append([]int32(nil), f.Size...)}
	clone.ofs = make([]int32, len(clone.Size)+1)
	return clone
}

// sealGated is a deliberate exception (the caller gates on emptiness).
func sealGated(f *Frag) {
	//pfvet:allow colown -- fixture: caller gates on len(f.ofs) == 0
	f.ofs = make([]int32, len(f.Size)+1)
}

// Mutate writes adopted state but is unreachable from any publish point,
// so it is outside colown's scope.
func Mutate(f *Frag) {
	f.ofs = nil
}
