// Package lockorder is the pfvet lockorder fixture: each function below
// reproduces one shape the analyzer must flag (the pre-fix Catalog.Put
// global-lock-across-Save, the ABBA cycle, direct and interprocedural
// re-acquisition) or must stay quiet on (per-name dynamic locks,
// guard-block unlock-and-return, unlock-park-relock wait loops).
package lockorder

import (
	"context"
	"os"
	"sync"
)

// Catalog reproduces the pre-fix pfstore shape: one global mutex guarding
// both the in-memory map and the on-disk writes.
type Catalog struct {
	mu    sync.Mutex
	open  map[string][]byte
	locks map[string]*sync.Mutex
}

// Put holds the global lock across file I/O — the shipped bug class.
func (c *Catalog) Put(name string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.open[name] = data
	return os.WriteFile(name, data, 0o644)
}

// PutFixed is the fix: a per-name lock obtained dynamically has no shared
// identity, so holding it across the write stalls nobody else.
func (c *Catalog) PutFixed(name string, data []byte) error {
	l := c.locks[name]
	l.Lock()
	defer l.Unlock()
	return os.WriteFile(name, data, 0o644)
}

// Relock re-acquires the lock it already holds.
func (c *Catalog) Relock() {
	c.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	c.mu.Unlock()
}

// Outer re-acquires through a callee.
func (c *Catalog) Outer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.size()
}

func (c *Catalog) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.open)
}

// AB and BA disagree about which lock comes first: the ABBA deadlock.
var muA, muB sync.Mutex

func AB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	defer muB.Unlock()
}

func BA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	defer muA.Unlock()
}

// Guarded: the unlock inside the terminating guard block must not leak
// into the fall-through path, and the I/O after the final unlock is free.
func (c *Catalog) Guarded(name string) []byte {
	c.mu.Lock()
	b, ok := c.open[name]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	_ = os.WriteFile(name, b, 0o644)
	return b
}

// Park: the admission-queue shape — unlock, park on a channel, relock.
// The relock must not read as a self-deadlock.
func (c *Catalog) Park(ctx context.Context, slot chan struct{}) error {
	c.mu.Lock()
	for len(c.open) > 4 {
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-slot:
		}
		c.mu.Lock()
	}
	c.mu.Unlock()
	return nil
}

// PutAllowed carries a deliberate-exception directive.
func (c *Catalog) PutAllowed(name string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//pfvet:allow lockorder -- fixture: deliberate write under the global lock
	return os.WriteFile(name, data, 0o644)
}
