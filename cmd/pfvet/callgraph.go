package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Interprocedural core shared by the suite analyzers (lockorder, colown,
// golifecycle, errclass): a call graph over the loaded module packages
// plus conservative per-function summaries — which shared-identity locks
// a function may acquire, whether it transitively performs file or
// network I/O, and whether it carries goroutine join/cancellation
// evidence. Everything stays stdlib-only go/ast + go/types, deliberately
// approximate, and tuned the same way the per-function checks are:
// precise enough to pin the bug classes this repo has actually shipped,
// conservative enough to stay quiet elsewhere.

// funcInfo is one declared function or method of a loaded package.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pi   *pkgInfo
	// key names the function for publish-point matching: "Recv.Name" for
	// methods, "Name" for plain functions.
	key string
	// callees lists the statically resolvable calls in the body, in
	// source order. Calls inside `go` bodies are marked: their effects
	// (locks, I/O) happen on another goroutine, not under the caller's
	// locks.
	callees []calleeRef
}

type calleeRef struct {
	obj  *types.Func
	call *ast.CallExpr
	inGo bool
}

// suite is the interprocedural analysis state over a set of packages.
type suite struct {
	fset  *token.FileSet
	root  string // module root, for relative paths in messages
	pkgs  []*pkgInfo
	funcs map[*types.Func]*funcInfo

	// Transitive summaries (fixpoint over the call graph):
	acquires map[*types.Func]map[string]bool // shared lock ids the function may take
	doesIO   map[*types.Func]bool            // reaches a file/network call
	joins    map[*types.Func]bool            // contains join/cancellation evidence
}

// suiteConfig scopes the suite analyzers. The zero value analyzes
// nothing; defaultSuiteConfig pins the real repository's scope, tests
// substitute fixture packages.
type suiteConfig struct {
	lockPkgs map[string]bool // lockorder: packages whose functions are walked
	lifePkgs map[string]bool // golifecycle: packages scanned for goroutines

	colownCols map[string]bool // colown: packages whose named types are columnar
	colownPubs map[string]bool // colown: publish points, "Type.Func" or "Func"

	errPkg  string // errclass: the service-boundary package ("" disables)
	errType string // errclass: the classified error type name in errPkg
}

// defaultSuiteConfig is the production scope: the packages whose shipped
// bugs each analyzer encodes (see the per-analyzer comments).
func defaultSuiteConfig(module string) suiteConfig {
	p := func(rel string) string { return module + "/" + rel }
	set := func(rels ...string) map[string]bool {
		m := map[string]bool{}
		for _, r := range rels {
			m[p(r)] = true
		}
		return m
	}
	return suiteConfig{
		lockPkgs:   set("internal/pfstore", "internal/service", "internal/engine", "internal/mil"),
		lifePkgs:   set("internal/pfstore", "internal/service", "internal/engine", "internal/mil", "internal/xenc", "cmd/pfserver"),
		colownCols: set("internal/xenc", "internal/bat"),
		colownPubs: map[string]bool{
			"NewStoreFromParts": true, // xenc: store cloned around live fragments
			"Catalog.Put":       true, // pfstore: clone-modify-publish of a collection
			"Engine.Lowered":    true, // engine: plan-cache insertion
		},
		errPkg:  p("internal/service"),
		errType: "Error",
	}
}

// newSuite indexes the loaded packages into a call graph and computes
// the transitive summaries.
func newSuite(fset *token.FileSet, root string, pkgs map[string]*pkgInfo) *suite {
	s := &suite{
		fset:     fset,
		root:     root,
		funcs:    map[*types.Func]*funcInfo{},
		acquires: map[*types.Func]map[string]bool{},
		doesIO:   map[*types.Func]bool{},
		joins:    map[*types.Func]bool{},
	}
	var paths []string
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		s.pkgs = append(s.pkgs, pkgs[p])
	}
	for _, pi := range s.pkgs {
		for _, file := range pi.files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pi.info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{obj: obj, decl: fn, pi: pi, key: funcKey(obj)}
				fi.callees = s.scanCallees(pi, fn.Body)
				s.funcs[obj] = fi
			}
		}
	}
	s.summarize()
	return s
}

// funcKey is the publish-point matching name: "Recv.Name" or "Name".
func funcKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

// namedOf unwraps pointers to the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, _ := t.(*types.Named)
	return n
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf statically resolves a call's target, or nil (builtins,
// interface methods resolve to the interface's method object — still
// useful for I/O classification by package).
func calleeOf(pi *pkgInfo, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pi.info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pi.info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// scanCallees walks a body collecting resolvable calls, tagging those
// inside goroutine bodies (their effects are concurrent, not nested).
func (s *suite) scanCallees(pi *pkgInfo, body ast.Node) []calleeRef {
	var out []calleeRef
	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				if lit, ok := m.Call.Fun.(*ast.FuncLit); ok {
					for _, arg := range m.Call.Args {
						walk(arg, inGo)
					}
					walk(lit.Body, true)
				} else {
					if f := calleeOf(pi, m.Call); f != nil {
						out = append(out, calleeRef{obj: f, call: m.Call, inGo: true})
					}
					for _, arg := range m.Call.Args {
						walk(arg, inGo)
					}
				}
				return false
			case *ast.CallExpr:
				if f := calleeOf(pi, m); f != nil {
					out = append(out, calleeRef{obj: f, call: m, inGo: inGo})
				}
			}
			return true
		})
	}
	walk(body, false)
	return out
}

// osNonIO lists the os package's process-introspection helpers that do
// no file or network work; everything else in os counts as I/O.
var osNonIO = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true,
	"ExpandEnv": true, "IsNotExist": true, "IsExist": true,
	"IsPermission": true, "IsTimeout": true, "Exit": true, "Getpid": true,
	"Getppid": true, "Getuid": true, "Geteuid": true, "Getwd": true,
	"Hostname": true, "TempDir": true, "UserHomeDir": true,
	"UserCacheDir": true, "UserConfigDir": true,
}

// isIOFunc reports whether f is a file or network operation — the calls
// a shared lock must never be held across (the pre-fix Catalog.Put held
// the global catalog mutex across a multi-second Save).
func isIOFunc(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "os":
		return !osNonIO[f.Name()]
	case "net", "net/http", "syscall":
		return true
	}
	return false
}

// summarize computes the transitive summaries by fixpoint over the call
// graph. Goroutine-interior calls are excluded: what a spawned goroutine
// locks or writes does not happen under the spawner's locks.
func (s *suite) summarize() {
	// Direct facts first.
	for obj, fi := range s.funcs {
		acq := map[string]bool{}
		s.walkLocks(fi, func(ev lockEvent) {
			if ev.kind == evAcquire {
				acq[ev.id] = true
			}
		})
		s.acquires[obj] = acq
		for _, c := range fi.callees {
			if !c.inGo && isIOFunc(c.obj) {
				s.doesIO[obj] = true
			}
		}
		s.joins[obj] = joinEvidence(fi.pi, fi.decl.Body)
	}
	// Propagate to fixpoint.
	for changed := true; changed; {
		changed = false
		for obj, fi := range s.funcs {
			for _, c := range fi.callees {
				if c.inGo {
					continue
				}
				callee, known := s.funcs[c.obj]
				if !known {
					continue
				}
				for id := range s.acquires[callee.obj] {
					if !s.acquires[obj][id] {
						s.acquires[obj][id] = true
						changed = true
					}
				}
				if s.doesIO[callee.obj] && !s.doesIO[obj] {
					s.doesIO[obj] = true
					changed = true
				}
				if s.joins[callee.obj] && !s.joins[obj] {
					s.joins[obj] = true
					changed = true
				}
			}
		}
	}
}

// joinEvidence reports whether n contains any sign of goroutine
// join/cancellation discipline: a channel operation, a select, a
// WaitGroup Done/Wait, or the use of a context value. Goroutine
// interiors are excluded — a goroutine the body spawns having its own
// discipline says nothing about this one.
func joinEvidence(pi *pkgInfo, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pi.info.Types[m.X]; ok {
				if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := unparen(m.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					if _, isBuiltin := pi.info.Uses[fun].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			case *ast.SelectorExpr:
				if f, ok := pi.info.Uses[fun.Sel].(*types.Func); ok && isSyncMethod(f, "WaitGroup", "Done", "Wait") {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pi.info.Uses[m]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSyncMethod reports whether f is one of the named methods on the
// named sync type (e.g. WaitGroup.Add, Mutex.Lock).
func isSyncMethod(f *types.Func, typeName string, methods ...string) bool {
	if f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOf(sig.Recv().Type())
	if n == nil || n.Obj().Name() != typeName {
		return false
	}
	for _, m := range methods {
		if f.Name() == m {
			return true
		}
	}
	return false
}

// lockID names a shared lock (or WaitGroup) identity: a field of a named
// struct type ("pkgpath#Type.field") or a package-level variable
// ("pkgpath#var"). Locals and dynamically obtained locks (e.g. the
// catalog's per-name mutexes handed out by a sync.Map) have no shared
// identity and return "" — they cannot participate in a global order.
func lockID(pi *pkgInfo, e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pi.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if n := namedOf(sel.Recv()); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "#" + n.Obj().Name() + "." + sel.Obj().Name()
			}
			return ""
		}
		if obj, ok := pi.info.Uses[e.Sel].(*types.Var); ok && isPkgLevel(obj) {
			return obj.Pkg().Path() + "#" + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pi.info.Uses[e].(*types.Var); ok && isPkgLevel(obj) {
			return obj.Pkg().Path() + "#" + obj.Name()
		}
	}
	return ""
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// displayID renders a lock id for diagnostics: the package path shrinks
// to its last element ("pathfinder/internal/pfstore#Catalog.mu" →
// "pfstore.Catalog.mu").
func displayID(id string) string {
	pkg, rest, ok := strings.Cut(id, "#")
	if !ok {
		return id
	}
	return path.Base(pkg) + "." + rest
}

// relPos renders a position relative to the module root (for messages
// that reference a second location).
func (s *suite) relPos(pos token.Pos) string {
	p := s.fset.Position(pos)
	if rel, err := filepath.Rel(s.root, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		p.Filename = filepath.ToSlash(rel)
	}
	return p.Filename + ":" + strconv.Itoa(p.Line)
}
