package main

import (
	"encoding/json"
	"go/token"
	"testing"
)

// TestSarifOutput pins the SARIF shape CI consumes: version, tool name,
// one rule per check, and per-finding ruleId/level/message/location with
// module-relative slash paths.
func TestSarifOutput(t *testing.T) {
	fs := []finding{
		{
			pos:   token.Position{Filename: "/mod/internal/service/service.go", Line: 42},
			check: "errclass",
			msg:   "unclassified error",
		},
		{
			pos:   token.Position{Filename: "/elsewhere/outside.go", Line: 7},
			check: "lockorder",
			msg:   "held across I/O",
		},
	}
	b, err := sarifBytes("/mod", fs)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(b, &log); err != nil {
		t.Fatalf("self-unmarshal: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "pfvet" {
		t.Fatalf("runs/tool malformed: %+v", log.Runs)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(ruleDocs) {
		t.Errorf("rule table has %d entries, want %d", len(log.Runs[0].Tool.Driver.Rules), len(ruleDocs))
	}
	res := log.Runs[0].Results
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if res[0].RuleID != "errclass" || res[0].Level != "error" || res[0].Message.Text != "unclassified error" {
		t.Errorf("result 0 malformed: %+v", res[0])
	}
	loc := res[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/service/service.go" || loc.Region.StartLine != 42 {
		t.Errorf("location 0 malformed: %+v", loc)
	}
	// Paths outside the root stay absolute rather than gaining ../.
	if uri := res[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/outside.go" {
		t.Errorf("outside-root path rewritten to %q", uri)
	}
}

// TestSarifEmpty: a clean run still writes a valid log with an empty
// (non-null) results array — uploaders reject null.
func TestSarifEmpty(t *testing.T) {
	b, err := sarifBytes("/mod", nil)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	runs := raw["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"].([]any)
	if !ok {
		t.Fatalf("results must be an array, got %T", runs[0].(map[string]any)["results"])
	}
	if len(results) != 0 {
		t.Errorf("clean run has %d results", len(results))
	}
}
