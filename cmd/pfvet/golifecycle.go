package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// golifecycle pins the repo's goroutine discipline — every spawned
// goroutine must be joinable or cancelable, and shared WaitGroups must
// not reuse-race. Two rules:
//
//   - every `go` statement's body (or resolvable target, transitively
//     through the call graph) must show join or cancellation evidence: a
//     channel operation, a select, a WaitGroup Done/Wait, or the use of
//     a context value. A goroutine with none of those can neither be
//     waited for nor told to stop — it leaks past Drain and past test
//     teardown.
//   - an Add on a WaitGroup with a shared identity (a struct field or
//     package variable) whose Wait happens elsewhere must hold a mutex
//     at the Add: the WaitGroup reuse rule says Add must not race a Wait
//     that has observed zero, and an atomic-flag check alone cannot
//     order the two — the PR 6 drain race (begin() checked the draining
//     flag, then Add raced BeginDrain/Wait; the fix took drainMu around
//     both, reviewed in PR 6 and encoded here).
//
// Local WaitGroups (the fork/join worker pools of the scheduler, morsel
// teams, and physexec) are exempt from the second rule: their Add and
// Wait sit in one stack frame and cannot interleave with a reuse.
func (s *suite) golifecycle(cfg suiteConfig) []finding {
	var fs []finding

	type addSite struct {
		id      string
		pos     token.Pos
		mutexed bool // some shared mutex is held at the Add
	}
	var adds []addSite
	waits := map[string]bool{} // WaitGroup ids with a Wait anywhere in scope

	for _, fi := range s.sortedFuncs(cfg.lifePkgs) {
		// Rule 1: every spawned goroutine joins or polls cancellation.
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !s.goroutineJoins(fi.pi, g) {
				fs = append(fs, finding{
					pos:   s.fset.Position(g.Pos()),
					check: "golifecycle",
					msg:   "goroutine has no join or cancellation path (no channel op, select, WaitGroup Done, or context use); it cannot be drained or stopped",
				})
			}
			return true
		})

		// Rule 2 data: Add sites with their lock context, Wait sites.
		// The lock walker skips goroutine bodies, so collect Wait sites
		// (and Adds inside goroutines, which run with no caller locks)
		// with a plain scan, and overlay the walker's held-set facts for
		// the synchronous Adds.
		heldAt := map[token.Pos]int{}
		s.walkLocks(fi, func(ev lockEvent) {
			if ev.kind == evCall {
				heldAt[ev.pos] = len(ev.held)
			}
		})
		collectWG(fi.pi, fi.decl.Body, func(id, method string, pos token.Pos) {
			if id == "" {
				return // local WaitGroup: fork/join in one frame
			}
			switch method {
			case "Add":
				adds = append(adds, addSite{id: id, pos: pos, mutexed: heldAt[pos] > 0})
			case "Wait":
				waits[id] = true
			}
		})
	}

	sort.Slice(adds, func(i, j int) bool { return adds[i].pos < adds[j].pos })
	for _, a := range adds {
		if waits[a.id] && !a.mutexed {
			fs = append(fs, finding{
				pos:   s.fset.Position(a.pos),
				check: "golifecycle",
				msg: fmt.Sprintf("%s.Add may race a Wait reuse (Add sites must hold the mutex that orders the drain flag; an atomic flag check alone cannot order Add against Wait-from-zero)",
					displayID(a.id)),
			})
		}
	}
	return fs
}

// goroutineJoins reports whether the spawned goroutine shows join or
// cancellation evidence, directly or through module-internal callees.
func (s *suite) goroutineJoins(pi *pkgInfo, g *ast.GoStmt) bool {
	var body ast.Node
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		body = lit.Body
	} else if f := calleeOf(pi, g.Call); f != nil {
		if fi, ok := s.funcs[f]; ok {
			return s.joins[fi.obj]
		}
		return true // unresolvable external target: stay quiet
	} else {
		return true
	}
	if joinEvidence(pi, body) {
		return true
	}
	// Transitive: the body may delegate (mil's accept loop spawns
	// ServeConn, whose channel discipline lives in the callee).
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeOf(pi, call); f != nil {
			if fi, ok := s.funcs[f]; ok && s.joins[fi.obj] {
				joined = true
			}
		}
		return true
	})
	return joined
}

// collectWG visits every WaitGroup Add/Wait/Done call in n with the
// receiver's shared identity ("" for locals).
func collectWG(pi *pkgInfo, n ast.Node, f func(id, method string, pos token.Pos)) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pi.info.Uses[sel.Sel].(*types.Func)
		if !ok || !isSyncMethod(fn, "WaitGroup", "Add", "Wait", "Done") {
			return true
		}
		f(lockID(pi, sel.X), fn.Name(), call.Pos())
		return true
	})
}
