package main

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// Minimal SARIF 2.1.0 writer so CI can upload the findings as a
// machine-readable artifact and annotate pull requests. Only the subset
// GitHub code scanning consumes is emitted: one run, one rule per check,
// one result per finding with a physical location.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

// ruleDocs describes every check for the SARIF rule table.
var ruleDocs = map[string]string{
	"batmut":      "No element writes into shared bat column vectors outside internal/bat.",
	"determinism": "Kernel packages must not read the clock or a random source.",
	"ctxpoll":     "Context-taking engine functions with nested row loops must poll the context.",
	"mutexval":    "No value receivers on types holding sync state (locks a copy).",
	"maporder":    "Optimizer rewrite passes must not depend on map iteration order.",
	"fusedalloc":  "No allocation or map access inside fused lane loops.",
	"lockorder":   "Mutex acquisition order must be acyclic; shared locks must not be held across I/O.",
	"colown":      "Columnar state adopted on a publish path must be cloned, not mutated in place.",
	"golifecycle": "Every goroutine must join or poll cancellation; WaitGroup Add must not race Wait reuse.",
	"errclass":    "Errors crossing the service boundary must carry the documented status contract.",
}

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string       `json:"id"`
	ShortDesc sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// sarifBytes renders findings as a SARIF log; file paths become
// module-root-relative URIs.
func sarifBytes(root string, fs []finding) ([]byte, error) {
	var ruleIDs []string
	for id := range ruleDocs {
		ruleIDs = append(ruleIDs, id)
	}
	sort.Strings(ruleIDs)
	var rules []sarifRule
	for _, id := range ruleIDs {
		rules = append(rules, sarifRule{ID: id, ShortDesc: sarifMessage{Text: ruleDocs[id]}})
	}
	results := []sarifResult{}
	for _, f := range fs {
		uri := f.pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.check,
			Level:   "error",
			Message: sarifMessage{Text: f.msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.pos.Line},
				},
			}},
		})
	}
	log := sarifLog{
		Version: sarifVersion,
		Schema:  sarifSchema,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pfvet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
