package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// errclass enforces the service boundary's error contract: every error
// an exported function or method of internal/service returns must be
// classified — a *service.Error carrying one of the documented codes
// (the 400/404/429/499/500/503/504 contract the HTTP layer maps), a
// declared package sentinel (ErrNoCatalog → 501), or nil. A raw error
// escaping the boundary reaches a client as an unmapped 500 with no
// code, and reaches operators as an unclassifiable metric — the PR 7
// ForCollection class, where damaged-store errors initially fell through
// to the 404 path because nothing forced them through the classifier.
//
// Classification is checked per return expression, flow-conservatively:
//
//   - nil and values statically typed *Error pass;
//   - package-level sentinel error variables of the boundary package
//     pass (they are part of the documented contract);
//   - a call into another function of the boundary package passes iff
//     that function's own returns all classify (memoized recursion —
//     Query returning run(...)'s result is fine because run only
//     returns classified errors);
//   - a local variable passes iff every assignment to it classifies;
//   - anything else (an engine error, fmt.Errorf, ctx.Err()) is flagged.
func (s *suite) errclass(cfg suiteConfig) []finding {
	if cfg.errPkg == "" {
		return nil
	}
	var pi *pkgInfo
	for _, p := range s.pkgs {
		if p.path == cfg.errPkg {
			pi = p
			break
		}
	}
	if pi == nil {
		return nil
	}
	errTypeObj := pi.pkg.Scope().Lookup(cfg.errType)
	if errTypeObj == nil {
		return nil
	}
	a := &errclassifier{s: s, boundary: pi, errType: errTypeObj.Type(), memo: map[*types.Func]bool{}}

	var fs []finding
	for _, fi := range s.sortedFuncs(map[string]bool{cfg.errPkg: true}) {
		if !ast.IsExported(fi.decl.Name.Name) {
			continue
		}
		// Methods on unexported receivers are not boundary API — their
		// errors only escape through an exported function, where the flow
		// rules check them. Methods on the classified type itself (Error,
		// Unwrap) ARE the contract, not subject to it.
		if sig, ok := fi.obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if n := namedOf(sig.Recv().Type()); n != nil {
				if !ast.IsExported(n.Obj().Name()) || types.Identical(n, errTypeObj.Type()) {
					continue
				}
			}
		}
		for _, ret := range a.unclassifiedReturns(fi) {
			fs = append(fs, finding{
				pos:   s.fset.Position(ret.Pos()),
				check: "errclass",
				msg: fmt.Sprintf("unclassified error crossing the service boundary in %s; wrap it in *%s (or a classifier like AsError) so it maps onto the documented status contract",
					fi.key, cfg.errType),
			})
		}
	}
	return fs
}

type errclassifier struct {
	s        *suite
	boundary *pkgInfo
	errType  types.Type
	memo     map[*types.Func]bool
}

// unclassifiedReturns lists the error-position return expressions of fi
// that fail classification.
func (a *errclassifier) unclassifiedReturns(fi *funcInfo) []ast.Expr {
	var bad []ast.Expr
	a.eachErrorReturn(fi, func(e ast.Expr) {
		if !a.classified(fi, e, 0) {
			bad = append(bad, e)
		}
	})
	return bad
}

// eachErrorReturn visits every return expression sitting in an
// error-typed result position of fi (skipping function literals — their
// returns belong to the literal, not the boundary function).
func (a *errclassifier) eachErrorReturn(fi *funcInfo, visit func(ast.Expr)) {
	results := fi.decl.Type.Results
	if results == nil {
		return
	}
	// Flatten the result types to per-position error-ness.
	var isErr []bool
	for _, field := range results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		errPos := isErrorType(typeOfExprType(fi.pi, field.Type))
		for i := 0; i < n; i++ {
			isErr = append(isErr, errPos)
		}
	}
	anyErr := false
	for _, b := range isErr {
		anyErr = anyErr || b
	}
	if !anyErr {
		return
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				if len(m.Results) == 0 {
					return true // naked return: named results, zero-valued or assigned — out of scope
				}
				if len(m.Results) == 1 && len(isErr) > 1 {
					// return f(...) forwarding all results: classify the call.
					visit(m.Results[0])
					return true
				}
				for i, e := range m.Results {
					if i < len(isErr) && isErr[i] {
						visit(e)
					}
				}
			}
			return true
		})
	}
	walk(fi.decl.Body)
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

func typeOfExprType(pi *pkgInfo, e ast.Expr) types.Type {
	if tv, ok := pi.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// classified reports whether e, returned in an error position, carries
// the boundary contract.
func (a *errclassifier) classified(fi *funcInfo, e ast.Expr, depth int) bool {
	if depth > 20 {
		return false
	}
	e = unparen(e)
	// nil.
	if tv, ok := fi.pi.info.Types[e]; ok && tv.IsNil() {
		return true
	}
	// Statically the classified type (covers &Error{...} literals,
	// classify*/AsError calls, and *Error-typed variables).
	if t := typeOfExprType(fi.pi, e); t != nil && a.isClassifiedType(t) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := fi.pi.info.Uses[e]
		if obj == nil {
			return false
		}
		// Declared sentinel of the boundary package: part of the contract.
		if v, ok := obj.(*types.Var); ok && isPkgLevel(v) && v.Pkg() != nil && v.Pkg().Path() == a.boundary.path {
			return true
		}
		// Local: every assignment to it must classify.
		if v, ok := obj.(*types.Var); ok && !isPkgLevel(v) {
			return a.localClassified(fi, v, depth)
		}
	case *ast.CallExpr:
		if f := calleeOf(fi.pi, e); f != nil {
			return a.calleeClassified(f, depth)
		}
	}
	return false
}

func (a *errclassifier) isClassifiedType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, a.errType)
}

// calleeClassified: a call into the boundary package classifies iff the
// callee's own error returns all classify. Calls leaving the module (or
// the boundary package) do not.
func (a *errclassifier) calleeClassified(f *types.Func, depth int) bool {
	// A callee that returns *Error classifies by type alone.
	if sig, ok := f.Type().(*types.Signature); ok {
		res := sig.Results()
		if res.Len() > 0 && a.isClassifiedType(res.At(res.Len()-1).Type()) {
			return true
		}
	}
	fi, known := a.s.funcs[f]
	if !known || fi.pi.path != a.boundary.path {
		return false
	}
	if v, ok := a.memo[f]; ok {
		return v
	}
	a.memo[f] = true // assume classified on recursion
	ok := true
	a.eachErrorReturn(fi, func(e ast.Expr) {
		if !a.classified(fi, e, depth+1) {
			ok = false
		}
	})
	a.memo[f] = ok
	return ok
}

// localClassified: every assignment reaching the variable must classify.
func (a *errclassifier) localClassified(fi *funcInfo, v *types.Var, depth int) bool {
	assigned := false
	ok := true
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				continue
			}
			obj := fi.pi.info.Defs[id]
			if obj == nil {
				obj = fi.pi.info.Uses[id]
			}
			if obj != v {
				continue
			}
			assigned = true
			var rhs ast.Expr
			if len(as.Lhs) == len(as.Rhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0] // multi-value call: classify the call
			}
			if rhs == nil || !a.classified(fi, rhs, depth+1) {
				ok = false
			}
		}
		return true
	})
	// A declared-but-never-assigned error variable (var err error) is
	// still nil when returned. Assignments through closures or pointers
	// (errors.As) are out of reach; those reach here only for types that
	// didn't already classify statically.
	if !assigned {
		return true
	}
	return ok
}
