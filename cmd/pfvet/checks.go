package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// The six checks. Each guards an invariant the Go type system cannot
// express but the engine's correctness depends on:
//
//   - batmut: column vectors (the named slice types of internal/bat) are
//     shared between views, plan-cache hits, and scheduler workers; an
//     element write outside internal/bat mutates data some other
//     consumer is reading. Writes into locally built buffers are fine.
//   - determinism: kernel results must be reproducible byte for byte —
//     the differential harness and the plan cache both depend on it —
//     so kernel packages may not read the clock or a random source.
//   - ctxpoll: engine row loops can run for seconds on large inputs;
//     a nested loop in a context-taking function that never polls the
//     context turns cancellation and deadlines into dead letters.
//   - mutexval: a method with a value receiver on a type holding a sync
//     primitive locks a copy — the classic silent no-op lock.
//   - maporder: optimizer passes must not depend on map iteration order
//     — Go randomizes it per run, so a pass that visits operators (or
//     picks rewrites) by ranging over a map emits nondeterministic
//     plans. Passes walk the DAG in Topo order or sort map keys first.
//   - fusedalloc: the fused-chain lane kernels (fusedkernel*.go in
//     internal/engine) run once per surviving lane per batch; an append
//     or a map access inside one of their loops turns the branch-free
//     hot loop into an allocator or hash call. Buffers are sized before
//     the loop; lookups are hoisted.
//
// A site that violates a check deliberately carries a
// `//pfvet:allow <check>` directive on the same or the preceding line,
// stating the exception in the code where reviewers see it.

type finding struct {
	pos   token.Position
	check string
	msg   string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.check, f.msg)
}

// checkSet is the per-package configuration of which checks run.
type checkSet struct {
	batmut      bool
	determinism bool
	ctxpoll     bool
	mutexval    bool
	maporder    bool
	fusedalloc  bool
}

// checksFor scopes the checks by import path: batmut and mutexval are
// repo-wide, determinism is for the kernel packages whose output must be
// reproducible, ctxpoll for the engine's row loops, maporder for the
// optimizer's rewrite passes.
func checksFor(path string) checkSet {
	kernel := map[string]bool{
		"pathfinder/internal/bat":      true,
		"pathfinder/internal/engine":   true,
		"pathfinder/internal/physical": true,
		"pathfinder/internal/opt":      true,
	}
	return checkSet{
		batmut:      path != "pathfinder/internal/bat",
		determinism: kernel[path],
		ctxpoll:     path == "pathfinder/internal/engine",
		mutexval:    true,
		maporder:    path == "pathfinder/internal/opt",
		fusedalloc:  path == "pathfinder/internal/engine",
	}
}

// runChecks analyzes one package and returns its findings, with
// allow-directive suppression already applied.
func runChecks(fset *token.FileSet, pi *pkgInfo, cs checkSet) []finding {
	var fs []finding
	if cs.batmut {
		fs = append(fs, checkBatMut(fset, pi)...)
	}
	if cs.determinism {
		fs = append(fs, checkDeterminism(fset, pi)...)
	}
	if cs.ctxpoll {
		fs = append(fs, checkCtxPoll(fset, pi)...)
	}
	if cs.mutexval {
		fs = append(fs, checkMutexVal(fset, pi)...)
	}
	if cs.maporder {
		fs = append(fs, checkMapOrder(fset, pi)...)
	}
	if cs.fusedalloc {
		fs = append(fs, checkFusedAlloc(fset, pi)...)
	}
	fs = suppressAllowed(fset, pi, fs)
	sort.Slice(fs, func(a, b int) bool {
		if fs[a].pos.Filename != fs[b].pos.Filename {
			return fs[a].pos.Filename < fs[b].pos.Filename
		}
		return fs[a].pos.Line < fs[b].pos.Line
	})
	return fs
}

// Allow directives ------------------------------------------------------------

// allowedLines maps file → line → the set of check names a
// `//pfvet:allow` comment on that line acknowledges. A directive
// suppresses findings on its own line and on the following line (the
// usual shape: directive comment above the offending statement).
func suppressAllowed(fset *token.FileSet, pi *pkgInfo, fs []finding) []finding {
	allowed := map[string]map[int]map[string]bool{}
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//pfvet:allow")
				if !ok {
					continue
				}
				rest, _, _ = strings.Cut(rest, "--") // everything after -- is rationale
				pos := fset.Position(c.Pos())
				m := allowed[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					allowed[pos.Filename] = m
				}
				for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ' ' || r == ',' || r == '\t'
				}) {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if m[line] == nil {
							m[line] = map[string]bool{}
						}
						m[line][name] = true
					}
				}
			}
		}
	}
	out := fs[:0]
	for _, f := range fs {
		if allowed[f.pos.Filename][f.pos.Line][f.check] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// batmut ----------------------------------------------------------------------

// isBatVec reports whether t is (a pointer to) a named slice type
// declared in internal/bat — the shared column-vector types.
func isBatVec(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "pathfinder/internal/bat" {
		return false
	}
	_, isSlice := named.Underlying().(*types.Slice)
	return isSlice
}

// freshLocals collects the objects in fn that are provably freshly
// allocated buffers: locals whose value comes from make, append, a
// composite literal, or a conversion of one. Writing into those is
// building a new vector, not mutating a shared one.
func freshLocals(pi *pkgInfo, fn ast.Node) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	var isFreshExpr func(e ast.Expr) bool
	isFreshExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.ParenExpr:
			return isFreshExpr(e.X)
		case *ast.CallExpr:
			switch fun := e.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "make" || fun.Name == "append" {
					return true
				}
			case *ast.SelectorExpr:
				// bat.Ramp(...)-style constructors return fresh vectors;
				// treating every call as fresh would defeat the check, so
				// only conversions and builtins count.
			}
			// Conversion to a bat vector type of a fresh expression.
			if len(e.Args) == 1 && isFreshExpr(e.Args[0]) {
				if tv, ok := pi.info.Types[e.Fun]; ok && tv.IsType() {
					return true
				}
			}
		}
		return false
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || !isFreshExpr(as.Rhs[i]) {
				continue
			}
			if obj := pi.info.Defs[id]; obj != nil {
				fresh[obj] = true
			} else if obj := pi.info.Uses[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

func checkBatMut(fset *token.FileSet, pi *pkgInfo) []finding {
	var fs []finding
	for _, file := range pi.files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fresh := freshLocals(pi, fn)
			flagWrite := func(target ast.Expr) {
				idx, ok := target.(*ast.IndexExpr)
				if !ok {
					return
				}
				tv, ok := pi.info.Types[idx.X]
				if !ok || !isBatVec(tv.Type) {
					return
				}
				if id, ok := idx.X.(*ast.Ident); ok {
					if obj := pi.info.Uses[id]; obj != nil && fresh[obj] {
						return
					}
				}
				fs = append(fs, finding{
					pos:   fset.Position(idx.Pos()),
					check: "batmut",
					msg: fmt.Sprintf("element write into shared column vector (%s) outside internal/bat",
						types.TypeString(tv.Type, nil)),
				})
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						flagWrite(lhs)
					}
				case *ast.IncDecStmt:
					flagWrite(n.X)
				}
				return true
			})
		}
	}
	return fs
}

// determinism -----------------------------------------------------------------

func checkDeterminism(fset *token.FileSet, pi *pkgInfo) []finding {
	var fs []finding
	for _, file := range pi.files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				fs = append(fs, finding{
					pos:   fset.Position(imp.Pos()),
					check: "determinism",
					msg:   fmt.Sprintf("kernel package imports %s; kernel output must be reproducible", path),
				})
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pi.info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if obj.Name() == "Now" || obj.Name() == "Since" {
				fs = append(fs, finding{
					pos:   fset.Position(sel.Pos()),
					check: "determinism",
					msg:   fmt.Sprintf("time.%s in kernel code; results must not depend on the clock", obj.Name()),
				})
			}
			return true
		})
	}
	return fs
}

// ctxpoll ---------------------------------------------------------------------

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkCtxPoll(fset *token.FileSet, pi *pkgInfo) []finding {
	var fs []finding
	for _, file := range pi.files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// The context parameters of this function, as objects.
			ctxObjs := map[types.Object]bool{}
			if fn.Type.Params != nil {
				for _, field := range fn.Type.Params.List {
					for _, name := range field.Names {
						if obj := pi.info.Defs[name]; obj != nil && isContextType(obj.Type()) {
							ctxObjs[obj] = true
						}
					}
				}
			}
			if len(ctxObjs) == 0 {
				continue
			}
			nested := false
			polled := false
			var walkLoops func(n ast.Node, depth int)
			walkLoops = func(n ast.Node, depth int) {
				ast.Inspect(n, func(m ast.Node) bool {
					var body *ast.BlockStmt
					switch m := m.(type) {
					case *ast.ForStmt:
						body = m.Body
					case *ast.RangeStmt:
						body = m.Body
					case *ast.FuncLit:
						return false // closures are their own cancellation story
					default:
						return true
					}
					if depth+1 >= 2 {
						nested = true
					}
					ast.Inspect(body, func(x ast.Node) bool {
						if id, ok := x.(*ast.Ident); ok && ctxObjs[pi.info.Uses[id]] {
							polled = true
						}
						return true
					})
					walkLoops(body, depth+1)
					return false
				})
			}
			walkLoops(fn.Body, 0)
			if nested && !polled {
				fs = append(fs, finding{
					pos:   fset.Position(fn.Pos()),
					check: "ctxpoll",
					msg: fmt.Sprintf("%s takes a context and runs nested row loops but never polls the context inside them",
						fn.Name.Name),
				})
			}
		}
	}
	return fs
}

// mutexval --------------------------------------------------------------------

// holdsSyncState reports whether t transitively contains a sync or
// sync/atomic type by value.
func holdsSyncState(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
		return holdsSyncState(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if holdsSyncState(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsSyncState(t.Elem(), seen)
	}
	return false
}

func checkMutexVal(fset *token.FileSet, pi *pkgInfo) []finding {
	var fs []finding
	scope := pi.pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !holdsSyncState(named, map[types.Type]bool{}) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			recv := m.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			if _, isPtr := recv.Type().(*types.Pointer); isPtr {
				continue
			}
			fs = append(fs, finding{
				pos:   fset.Position(m.Pos()),
				check: "mutexval",
				msg: fmt.Sprintf("method %s.%s has a value receiver but the type holds sync state (locks a copy)",
					name, m.Name()),
			})
		}
	}
	return fs
}

// maporder --------------------------------------------------------------------

// checkMapOrder flags `for ... range m` statements where m is map-typed.
// Go deliberately randomizes map iteration order, so an optimizer pass
// that ranges over a map to visit operators, pick rewrite sites, or emit
// trace output produces different plans on different runs — which the
// plan goldens and the differential tiers would only catch as flakes.
// Deliberately order-free iterations (e.g. collecting keys to sort)
// carry a //pfvet:allow maporder directive.
func checkMapOrder(fset *token.FileSet, pi *pkgInfo) []finding {
	var fs []finding
	for _, file := range pi.files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pi.info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				fs = append(fs, finding{
					pos:   fset.Position(rng.Pos()),
					check: "maporder",
					msg:   "rewrite pass ranges over a map (iteration order is nondeterministic); visit operators in Topo order or sort the keys",
				})
			}
			return true
		})
	}
	return fs
}

// fusedalloc ------------------------------------------------------------------

// checkFusedAlloc pins the lane-kernel inner-loop discipline. It is
// scoped syntactically to the fusedkernel*.go files: those hold only
// the per-lane loops of the fused executor, where every iteration must
// stay a straight read-compute-write over preallocated slices. The two
// flagged shapes are the ones that silently break that:
//
//   - append grows a buffer mid-loop (an amortized allocation, and a
//     hidden copy of everything written so far), and
//   - a map index hashes per lane and may trigger bucket growth.
//
// Both belong before the loop: outputs are sized at chain-compile time,
// lookups are hoisted into locals.
func checkFusedAlloc(fset *token.FileSet, pi *pkgInfo) []finding {
	var fs []finding
	flagged := map[token.Pos]bool{}
	for _, file := range pi.files {
		if !strings.HasPrefix(filepath.Base(fset.Position(file.Pos()).Filename), "fusedkernel") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.CallExpr:
					if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "append" && !flagged[m.Pos()] {
						if _, isBuiltin := pi.info.Uses[id].(*types.Builtin); isBuiltin {
							flagged[m.Pos()] = true
							fs = append(fs, finding{
								pos:   fset.Position(m.Pos()),
								check: "fusedalloc",
								msg:   "append inside a fused lane loop (allocates mid-batch); size the output buffer at chain-compile time",
							})
						}
					}
				case *ast.IndexExpr:
					tv, ok := pi.info.Types[m.X]
					if !ok || flagged[m.Pos()] {
						return true
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						flagged[m.Pos()] = true
						fs = append(fs, finding{
							pos:   fset.Position(m.Pos()),
							check: "fusedalloc",
							msg:   "map access inside a fused lane loop (hashes per lane); hoist the lookup before the loop",
						})
					}
				}
				return true
			})
			return true
		})
	}
	return fs
}
