package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// colown tracks ownership of columnar state — the named types of
// internal/xenc and internal/bat whose backing arrays are shared
// zero-copy between store snapshots, views, and plan-cache hits — along
// the publish paths that hand such state to concurrent readers
// (xenc.NewStoreFromParts, pfstore's Catalog.Put, the engine's
// plan-cache insertion in Lowered).
//
// Within any function reachable from a publish point, a write to a field
// or element of a columnar value the function did not allocate itself is
// flagged: the value was adopted from a caller, which on a publish path
// means it may already be visible to in-flight queries. This is the PR 7
// reseal race class — NewStoreFromParts re-ran sealAttrs on fragments
// adopted from a live store, rewriting the shared attrOfs offsets under
// concurrent readers — caught in review, encoded here.
//
// Writes into provably fresh values (make/composite-literal locals) are
// the legitimate clone-then-modify shape and pass. Deliberately gated
// writes (like the post-fix sealFragments, which only seals fragments
// whose offsets were never built) carry a //pfvet:allow colown directive
// stating the guard.

func (s *suite) colown(cfg suiteConfig) []finding {
	if len(cfg.colownPubs) == 0 {
		return nil
	}
	// Publish-reachable functions: BFS from the publish points over the
	// call graph (synchronous calls only), remembering which roots reach
	// each function.
	roots := map[*types.Func][]string{}
	var queue []*types.Func
	for _, fi := range s.funcs {
		if cfg.colownPubs[fi.key] {
			roots[fi.obj] = []string{fi.key}
			queue = append(queue, fi.obj)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return s.funcs[queue[i]].key < s.funcs[queue[j]].key })
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range s.funcs[cur].callees {
			if c.inGo {
				continue
			}
			callee, known := s.funcs[c.obj]
			if !known {
				continue
			}
			before := len(roots[callee.obj])
			roots[callee.obj] = mergeRoots(roots[callee.obj], roots[cur])
			if len(roots[callee.obj]) > before {
				queue = append(queue, callee.obj)
			}
		}
	}

	// One finding per (function, owner-type.field): the first write site,
	// with the total count — sealAttrs-style helpers write the same field
	// several times and one diagnostic (and one allow) should cover the
	// pattern, not every line.
	type writeGroup struct {
		pos   token.Position
		field string
		fn    *funcInfo
		count int
	}
	groups := map[string]*writeGroup{}
	var order []string

	for _, fi := range s.sortedFuncsReachable(roots) {
		org := origins(fi.pi, fi.decl)
		pubs := roots[fi.obj]
		flag := func(owner ast.Expr, field string, pos token.Pos) {
			ownerType := namedOf(typeOf(fi.pi, owner))
			if ownerType == nil || ownerType.Obj().Pkg() == nil || !cfg.colownCols[ownerType.Obj().Pkg().Path()] {
				return
			}
			root := rootIdent(owner)
			if root == nil {
				return
			}
			obj := fi.pi.info.Uses[root]
			if obj == nil {
				obj = fi.pi.info.Defs[root]
			}
			if obj == nil || org[obj] == originFresh {
				return
			}
			key := fi.key + "#" + ownerType.Obj().Name() + "." + field
			if g, ok := groups[key]; ok {
				g.count++
				return
			}
			groups[key] = &writeGroup{
				pos:   s.fset.Position(pos),
				field: ownerType.Obj().Name() + "." + field,
				fn:    fi,
				count: 1,
			}
			order = append(order, key)
			_ = pubs
		}
		flagWrite := func(target ast.Expr) {
			switch t := unparen(target).(type) {
			case *ast.SelectorExpr:
				// x.f = ... — a field write on a columnar value.
				if sel, ok := fi.pi.info.Selections[t]; ok && sel.Kind() == types.FieldVal {
					flag(t.X, t.Sel.Name, t.Pos())
				}
			case *ast.IndexExpr:
				// x.f[i] = ... or v[i] = ... — an element write into a
				// columnar backing array.
				switch base := unparen(t.X).(type) {
				case *ast.SelectorExpr:
					if sel, ok := fi.pi.info.Selections[base]; ok && sel.Kind() == types.FieldVal {
						flag(base.X, base.Sel.Name, t.Pos())
					}
				case *ast.Ident:
					// A named columnar slice written directly.
					bt := namedOf(typeOf(fi.pi, base))
					if bt == nil || bt.Obj().Pkg() == nil || !cfg.colownCols[bt.Obj().Pkg().Path()] {
						return
					}
					obj := fi.pi.info.Uses[base]
					if obj == nil || org[obj] == originFresh {
						return
					}
					key := fi.key + "#" + bt.Obj().Name() + "[]"
					if g, ok := groups[key]; ok {
						g.count++
						return
					}
					groups[key] = &writeGroup{
						pos:   s.fset.Position(t.Pos()),
						field: bt.Obj().Name() + "[]",
						fn:    fi,
						count: 1,
					}
					order = append(order, key)
				}
			}
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					flagWrite(lhs)
				}
			case *ast.IncDecStmt:
				flagWrite(n.X)
			}
			return true
		})
	}

	var fs []finding
	for _, key := range order {
		g := groups[key]
		pubs := strings.Join(roots[g.fn.obj], ", ")
		sites := ""
		if g.count > 1 {
			sites = fmt.Sprintf(" (%d write sites)", g.count)
		}
		fs = append(fs, finding{
			pos:   g.pos,
			check: "colown",
			msg: fmt.Sprintf("%s writes adopted columnar state %s on the publish path of %s%s; clone before mutating or gate on freshness",
				g.fn.key, g.field, pubs, sites),
		})
	}
	return fs
}

func mergeRoots(dst, src []string) []string {
	have := map[string]bool{}
	for _, r := range dst {
		have[r] = true
	}
	for _, r := range src {
		if !have[r] {
			dst = append(dst, r)
			have[r] = true
		}
	}
	sort.Strings(dst)
	return dst
}

// sortedFuncsReachable orders the reachable functions stably.
func (s *suite) sortedFuncsReachable(roots map[*types.Func][]string) []*funcInfo {
	var out []*funcInfo
	for obj := range roots {
		if fi, ok := s.funcs[obj]; ok {
			out = append(out, fi)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pi.path != out[j].pi.path {
			return out[i].pi.path < out[j].pi.path
		}
		return out[i].decl.Pos() < out[j].decl.Pos()
	})
	return out
}

func typeOf(pi *pkgInfo, e ast.Expr) types.Type {
	if tv, ok := pi.info.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}
