package main

import (
	"fmt"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// lockorder derives the mutex acquisition partial order across the
// packages with query-time shared state and flags the two deadlock-adjacent
// shapes this repo has shipped or nearly shipped:
//
//   - a lock-order cycle: function f takes A then B (directly or through
//     a callee) while function g takes B then A — the classic ABBA
//     deadlock, invisible to the race detector unless both interleavings
//     actually run;
//   - a shared lock held across file or network I/O: the pre-fix
//     Catalog.Put held the global catalog mutex across a multi-second
//     Save, stalling every Collection lookup on the query path (fixed in
//     PR 7's review by moving the write onto per-name locks);
//   - a re-acquisition of a lock already held (direct self-deadlock,
//     possibly through a callee).
//
// Lock identities are type-level: a mutex field of a named struct, or a
// package-level mutex variable. Dynamically obtained locks (the
// catalog's per-name mutexes handed out by a sync.Map) have no shared
// identity and are exempt — holding one of those across I/O is exactly
// the fix the global-lock rule points at.

type lockEdge struct {
	from, to string
	pos      token.Pos // where `to` is taken (or the call that takes it)
	inFunc   string
}

func (s *suite) lockorder(cfg suiteConfig) []finding {
	var fs []finding
	edges := map[[2]string]lockEdge{}
	addEdge := func(from, to string, pos token.Pos, in string) {
		k := [2]string{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = lockEdge{from: from, to: to, pos: pos, inFunc: in}
		}
	}

	for _, fi := range s.sortedFuncs(cfg.lockPkgs) {
		fi := fi
		flaggedIO := map[token.Pos]bool{}
		s.walkLocks(fi, func(ev lockEvent) {
			switch ev.kind {
			case evAcquire:
				for _, h := range ev.held {
					if h.id == ev.id {
						fs = append(fs, finding{
							pos:   s.fset.Position(ev.pos),
							check: "lockorder",
							msg: fmt.Sprintf("%s acquired while already held (self-deadlock; first taken at %s)",
								displayID(ev.id), s.relPos(h.pos)),
						})
						continue
					}
					addEdge(h.id, ev.id, ev.pos, fi.key)
				}
			case evCall:
				callee, known := s.funcs[ev.callee]
				if known {
					for _, h := range ev.held {
						for id := range s.acquires[callee.obj] {
							if id == h.id {
								fs = append(fs, finding{
									pos:   s.fset.Position(ev.pos),
									check: "lockorder",
									msg: fmt.Sprintf("call to %s may re-acquire %s already held here (self-deadlock)",
										callee.key, displayID(h.id)),
								})
								continue
							}
							addEdge(h.id, id, ev.pos, fi.key)
						}
					}
				}
				if len(ev.held) > 0 && !flaggedIO[ev.pos] {
					doesIO := isIOFunc(ev.callee) || (known && s.doesIO[callee.obj])
					if doesIO {
						flaggedIO[ev.pos] = true
						h := ev.held[len(ev.held)-1]
						fs = append(fs, finding{
							pos:   s.fset.Position(ev.pos),
							check: "lockorder",
							msg: fmt.Sprintf("%s held across I/O (%s); move the I/O off the lock or serialize on a narrower per-key lock",
								displayID(h.id), calleeName(ev.callee)),
						})
					}
				}
			}
		})
	}

	fs = append(fs, s.lockCycles(edges)...)
	return fs
}

// calleeName renders a call target for diagnostics: "os.WriteFile",
// "Catalog.Put", or a bare function name.
func calleeName(f *types.Func) string {
	key := funcKey(f)
	if f.Pkg() != nil && !strings.Contains(key, ".") {
		return path.Base(f.Pkg().Path()) + "." + key
	}
	return key
}

// lockCycles finds strongly connected components of the acquisition
// graph and reports each as one finding — any SCC with two or more
// members (or a self-loop, already reported as re-acquisition) means two
// code paths disagree about which lock comes first.
func (s *suite) lockCycles(edges map[[2]string]lockEdge) []finding {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	for n := range adj {
		sort.Strings(adj[n])
	}

	// Iterative Tarjan SCC.
	var (
		index   = map[string]int{}
		low     = map[string]int{}
		onStack = map[string]bool{}
		stack   []string
		counter int
		sccs    [][]string
	)
	var names []string
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	type frame struct {
		node string
		next int
	}
	for _, root := range names {
		if _, seen := index[root]; seen {
			continue
		}
		var call []frame
		call = append(call, frame{node: root})
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.next < len(adj[f.node]) {
				next := adj[f.node][f.next]
				f.next++
				if _, seen := index[next]; !seen {
					index[next], low[next] = counter, counter
					counter++
					stack = append(stack, next)
					onStack[next] = true
					call = append(call, frame{node: next})
				} else if onStack[next] && index[next] < low[f.node] {
					low[f.node] = index[next]
				}
				continue
			}
			// Pop.
			node := f.node
			call = call[:len(call)-1]
			if len(call) > 0 && low[node] < low[call[len(call)-1].node] {
				low[call[len(call)-1].node] = low[node]
			}
			if low[node] == index[node] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == node {
						break
					}
				}
				if len(scc) > 1 {
					sort.Strings(scc)
					sccs = append(sccs, scc)
				}
			}
		}
	}

	var fs []finding
	for _, scc := range sccs {
		in := map[string]bool{}
		for _, n := range scc {
			in[n] = true
		}
		var internal []lockEdge
		for k, e := range edges {
			if in[k[0]] && in[k[1]] {
				internal = append(internal, e)
			}
		}
		sort.Slice(internal, func(i, j int) bool {
			if internal[i].from != internal[j].from {
				return internal[i].from < internal[j].from
			}
			return internal[i].to < internal[j].to
		})
		var parts []string
		for _, e := range internal {
			parts = append(parts, fmt.Sprintf("%s -> %s in %s (%s)",
				displayID(e.from), displayID(e.to), e.inFunc, s.relPos(e.pos)))
		}
		fs = append(fs, finding{
			pos:   s.fset.Position(internal[0].pos),
			check: "lockorder",
			msg:   "lock-order cycle: " + strings.Join(parts, "; "),
		})
	}
	return fs
}

// sortedFuncs returns the functions of the scoped packages in a stable
// (package path, source position) order.
func (s *suite) sortedFuncs(pkgs map[string]bool) []*funcInfo {
	var out []*funcInfo
	for _, fi := range s.funcs {
		if pkgs[fi.pi.path] {
			out = append(out, fi)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pi.path != out[j].pi.path {
			return out[i].pi.path < out[j].pi.path
		}
		return out[i].decl.Pos() < out[j].decl.Pos()
	})
	return out
}
