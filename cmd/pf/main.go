// Command pf is the Pathfinder command line: it compiles an XQuery
// expression through the full stack (parse → XQuery Core → loop-lifted
// relational algebra → optimized plan) and either executes it against
// documents loaded from the filesystem or prints one of the compilation
// stages — the "look under the hood" facilities of the demonstration (§4).
//
// Usage:
//
//	pf [flags] 'query...'
//	pf [flags] -f query.xq
//
// Examples:
//
//	pf -doc auction.xml 'count(//item)'
//	pf -show plan 'for $v in (10,20) return $v + 100'
//	pf -show dot -f q8.xq | dot -Tsvg > plan.svg
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/check"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/mil"
	"pathfinder/internal/opt"
	"pathfinder/internal/pfstore"
	"pathfinder/internal/physical"
	"pathfinder/internal/serialize"
	"pathfinder/internal/sqlgen"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

func main() {
	var (
		docPath     = flag.String("doc", "", "document bound to absolute paths (/site/...)")
		storeDir    = flag.String("store", "", "persistent collection catalog directory (*.pfc files)")
		collection  = flag.String("collection", "", "named collection from -store to query (binds absolute paths and bare fn:collection())")
		queryFile   = flag.String("f", "", "read the query from a file")
		show        = flag.String("show", "result", "what to print: result, trace, explain, core, plan, opt, mil, sql, dot, physical, hist")
		noOpt       = flag.Bool("noopt", false, "skip the optimizer entirely")
		noPipeline  = flag.Bool("no-opt-pipeline", false, "use the legacy single-shot peephole optimizer (no staged pipeline / join graph isolation)")
		naive       = flag.Bool("naive", false, "disable the staircase join (tree-unaware axis evaluation)")
		workers     = flag.Int("workers", engine.EnvWorkers(), "shared worker budget for the DAG scheduler and morsel teams (0 = GOMAXPROCS, 1 = sequential; also via PF_WORKERS)")
		morselRows  = flag.Int("morsel-rows", 0, "morsel granularity for intra-operator parallelism (0 = default, <0 = disable)")
		noFusion    = flag.Bool("no-fusion", false, "run fused operator chains one kernel at a time (executor switch; plans are identical)")
		checkPlans  = flag.Bool("check", false, "validate plan invariants (schema, order/denseness, physical preconditions) before running, and assert them on live intermediates during execution")
		timing      = flag.Bool("time", false, "print compile/execute timings to stderr")
		interactive = flag.Bool("i", false, "interactive mode: read one query per line from stdin")
	)
	flag.Parse()

	cat := openCatalog(*storeDir, *collection)
	if *interactive {
		repl(*docPath, cat, *collection, *naive, *noOpt, *noPipeline, *noFusion, *workers)
		return
	}
	query := ""
	switch {
	case *queryFile != "":
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal("read query: %v", err)
		}
		query = string(b)
	case flag.NArg() > 0:
		query = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: pf [flags] 'query'   (see pf -help)")
		os.Exit(2)
	}

	opts := xqcore.Options{Collection: *collection}
	if *docPath != "" {
		opts.ContextDoc = filepath.Base(*docPath)
	}

	compileStart := time.Now()
	plan, coreExpr, err := core.CompileQuery(query, opts)
	if err != nil {
		fatal("%v", err)
	}
	if *checkPlans {
		if diags := check.Logical(plan); len(diags) > 0 {
			fmt.Fprint(os.Stderr, check.Render(diags))
			fatal("check: %d finding(s) in the compiled plan", len(diags))
		}
	}
	var optTrace string
	if !*noOpt {
		if *noPipeline {
			if plan, err = opt.Peephole(plan); err != nil {
				fatal("optimize: %v", err)
			}
		} else {
			res, err := opt.Pipeline(plan)
			if err != nil {
				fatal("optimize: %v", err)
			}
			plan, optTrace = res.Plan, res.TraceString()
		}
	}
	if *checkPlans {
		if diags := check.Plan(plan); len(diags) > 0 {
			fmt.Fprint(os.Stderr, check.Render(diags))
			fatal("check: %d finding(s) in the final plan", len(diags))
		}
		fmt.Fprintf(os.Stderr, "pf: check ok (%d operators: schema, order/denseness, physical)\n",
			algebra.CountOps(plan))
	}
	compileTime := time.Since(compileStart)

	switch *show {
	case "core":
		fmt.Print(xqcore.Print(coreExpr))
		return
	case "plan":
		fmt.Print(algebra.TreeString(plan))
		fmt.Printf("(%d operators)\n", algebra.CountOps(plan))
		return
	case "opt":
		// The per-pass pipeline trace first — the operator counts each
		// pass went in and came out with — then the final plan.
		if optTrace != "" {
			fmt.Print(optTrace)
			fmt.Println()
		}
		fmt.Print(algebra.TreeString(plan))
		fmt.Printf("(%d operators)\n", algebra.CountOps(plan))
		return
	case "dot":
		fmt.Print(algebra.Dot(plan))
		return
	case "physical":
		fmt.Print(physical.Dot(physical.Lower(plan)))
		return
	case "hist":
		fmt.Println(algebra.HistString(algebra.OpHistogram(plan)))
		return
	case "mil":
		prog, err := mil.Emit(plan)
		if err != nil {
			fatal("emit MIL: %v", err)
		}
		fmt.Print(prog)
		return
	case "sql":
		stmt, err := sqlgen.Emit(plan)
		if err != nil {
			fatal("emit SQL: %v", err)
		}
		fmt.Print(stmt)
		return
	case "result", "trace", "explain":
	default:
		fatal("unknown -show mode %q", *show)
	}

	eng := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: *workers, MorselRows: *morselRows, Check: *checkPlans, NoFusion: *noFusion, Catalog: cat})
	eng.Staircase = !*naive
	// fn:doc loads named documents from the filesystem on demand; the
	// -doc document resolves by its base name or full path.
	eng.Resolve = fileResolver(*docPath)
	eng = bindCollection(eng, *collection)

	execStart := time.Now()
	var res *bat.Table
	switch *show {
	case "trace":
		// Traced execution: print the plan annotated with the row count
		// each operator produced (§4: "Relational plans may be traced to
		// reveal the result computed for any subexpression").
		traced, memo, err := eng.EvalTraced(plan)
		if err != nil {
			fatal("execute: %v", err)
		}
		res = traced
		fmt.Print(algebra.TreeStringAnnotated(plan, func(o *algebra.Op) string {
			if t, ok := memo[o]; ok {
				return fmt.Sprintf("→ %d rows", t.Rows())
			}
			return ""
		}))
		fmt.Println()
	case "explain":
		// Scheduler's-eye view: per operator the rows in/out, the wall
		// time, and which worker of the parallel DAG scheduler ran it.
		traced, tr, err := eng.EvalTrace(context.Background(), plan)
		if err != nil {
			fatal("execute: %v", err)
		}
		res = traced
		fmt.Print(algebra.TreeStringAnnotated(plan, func(o *algebra.Op) string {
			st, ok := tr.Stats[o]
			if !ok {
				return ""
			}
			ann := fmt.Sprintf("→ %d→%d rows, %v, worker %d",
				st.RowsIn, st.RowsOut, st.Wall.Round(time.Microsecond), st.Worker)
			if st.Kernel != "" {
				ann += fmt.Sprintf(", %s, mat %d", st.Kernel, st.RowsMat)
			}
			if st.FusedChain > 0 {
				ann += fmt.Sprintf(", fused #%d [%d/%d]", st.FusedChain, st.FusedPos, st.FusedLen)
			}
			if st.Morsels > 1 {
				ann += fmt.Sprintf(", %d morsels", st.Morsels)
				if st.ParWorkers > 1 {
					ann += fmt.Sprintf(" on %d workers (~%d rows/worker)",
						st.ParWorkers, st.RowsIn/st.ParWorkers)
				}
			}
			return ann
		}))
		phys := physical.Lower(plan)
		fmt.Printf("(%d operators, %d workers, %d pipeline breakers, %d fused chains)\n",
			algebra.CountOps(plan), eng.Workers, phys.Breakers(), len(phys.Chains))
		printFusedChains(phys, tr)
		if optTrace != "" {
			fmt.Print(optTrace)
		}
		fmt.Println()
	default:
		r, err := eng.Eval(plan)
		if err != nil {
			fatal("execute: %v", err)
		}
		res = r
	}
	out, err := serialize.Result(eng.Store, res)
	if err != nil {
		fatal("serialize: %v", err)
	}
	execTime := time.Since(execStart)
	fmt.Println(out)
	if *timing {
		fmt.Fprintf(os.Stderr, "compile %v, execute %v\n", compileTime, execTime)
	}
}

// printFusedChains summarizes each fused chain of the physical plan for
// -show explain: membership, rows in at the head, rows out and rows
// materialized at the boundary. A chain whose members report no fused
// stats ran per operator (fusion off, tiny input, or a replay).
func printFusedChains(phys *physical.Plan, tr *engine.Trace) {
	for _, ch := range phys.Chains {
		kernels := make([]string, len(ch.Nodes))
		for i, nd := range ch.Nodes {
			kernels[i] = nd.Kernel
		}
		head, hok := tr.Stats[ch.Head().Op]
		tail, tok := tr.Stats[ch.Tail().Op]
		if !hok || !tok || tail.FusedChain == 0 {
			fmt.Printf("fused chain #%d: %s (ran per-operator)\n",
				ch.ID, strings.Join(kernels, " → "))
			continue
		}
		fmt.Printf("fused chain #%d: %s — %d rows in, %d out, %d materialized\n",
			ch.ID, strings.Join(kernels, " → "), head.RowsIn, tail.RowsOut, tail.RowsMat)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pf: "+format+"\n", args...)
	os.Exit(1)
}

// openCatalog opens the -store catalog when requested; -collection
// without -store is an error (there is nothing to resolve names against).
func openCatalog(dir, collection string) *pfstore.Catalog {
	if dir == "" {
		if collection != "" {
			fatal("-collection requires -store")
		}
		return nil
	}
	cat, err := pfstore.OpenCatalog(dir)
	if err != nil {
		fatal("%v", err)
	}
	return cat
}

// bindCollection rebinds the engine to the named collection's persisted
// store — the reopen-without-re-shredding path.
func bindCollection(eng *engine.Engine, collection string) *engine.Engine {
	if collection == "" {
		return eng
	}
	bound, _, err := eng.ForCollection(collection)
	if err != nil {
		fatal("%v", err)
	}
	return bound
}

// repl is the demonstration's ad-hoc query loop ("users may as well state
// their own ad hoc queries", §4): the store persists across queries, so
// documents load once and constructed fragments accumulate like in a
// session against a running server.
func repl(docPath string, cat *pfstore.Catalog, collection string, naive, noOpt, noPipeline, noFusion bool, workers int) {
	eng := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: workers, NoFusion: noFusion, Catalog: cat})
	eng.Staircase = !naive
	eng.Resolve = fileResolver(docPath)
	eng = bindCollection(eng, collection)
	opts := xqcore.Options{Collection: collection}
	if docPath != "" {
		opts.ContextDoc = filepath.Base(docPath)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(os.Stderr, "pf> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			fmt.Fprint(os.Stderr, "pf> ")
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		start := time.Now()
		out, err := runOnce(line, eng, opts, noOpt, noPipeline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		} else {
			fmt.Println(out)
			fmt.Fprintf(os.Stderr, "(%v)\n", time.Since(start).Round(time.Microsecond))
		}
		fmt.Fprint(os.Stderr, "pf> ")
	}
}

func runOnce(query string, eng *engine.Engine, opts xqcore.Options, noOpt, noPipeline bool) (string, error) {
	plan, _, err := core.CompileQuery(query, opts)
	if err != nil {
		return "", err
	}
	if !noOpt {
		optimize := opt.Optimize
		if noPipeline {
			optimize = opt.Peephole
		}
		if plan, err = optimize(plan); err != nil {
			return "", err
		}
	}
	res, err := eng.Eval(plan)
	if err != nil {
		return "", err
	}
	return serialize.Result(eng.Store, res)
}

// fileResolver loads fn:doc targets from the filesystem, mapping the -doc
// document's base name onto its path.
func fileResolver(docPath string) func(*xenc.Store, string) (bat.NodeRef, error) {
	return func(store *xenc.Store, uri string) (bat.NodeRef, error) {
		path := uri
		if docPath != "" && (uri == filepath.Base(docPath) || uri == docPath) {
			path = docPath
		}
		f, err := os.Open(path)
		if err != nil {
			return bat.NodeRef{}, fmt.Errorf("fn:doc(%q): %w", uri, err)
		}
		defer f.Close()
		return store.LoadDocument(uri, f)
	}
}
