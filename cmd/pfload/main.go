// Command pfload is the load generator for the query service: N client
// goroutines fire a mixed workload — XMark heavy joins and point lookups
// — at a pfserver HTTP endpoint and report per-class throughput and
// latency percentiles.
//
// Usage:
//
//	pfload -addr 127.0.0.1:8042 -clients 16 -duration 10s
//	pfload -launch -gen xmark.xml=0.01           # self-contained: in-process server
//
// The report is written to -out (default BENCH_service.json) and
// summarized on stdout. On single-CPU hosts the report carries a
// cpu_caveat: client goroutines, the HTTP stack, and the engine's worker
// pool all time-slice one core, so throughput numbers there are not a
// parallelism evaluation.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pathfinder/internal/service"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
)

// The workload. Point lookups are XMark q1 variants (equality selection
// on @id, tiny result); heavies are the join queries (§3.3's hard cases:
// q8/q9 buyer joins, q10 the wide restructuring) whose plans price above
// the service's heavy threshold.
var (
	pointQueries = []string{
		xmark.Query(1),
		`for $b in /site/people/person where $b/@id = "person1" return $b/name/text()`,
		`for $b in /site/people/person where $b/@id = "person2" return $b/emailaddress/text()`,
		`count(/site/regions/*/item)`,
	}
	heavyQueries = []string{
		xmark.Query(8),
		xmark.Query(9),
		xmark.Query(10),
	}
)

// classAgg accumulates one workload class's outcomes across all clients.
type classAgg struct {
	latMs []float64
	codes map[int]int64
}

// ClassReport is the per-class section of BENCH_service.json.
type ClassReport struct {
	Requests      int64            `json:"requests"`
	Errors        int64            `json:"errors"`
	StatusCodes   map[string]int64 `json:"status_codes"`
	ThroughputQPS float64          `json:"throughput_qps"`
	P50Ms         float64          `json:"p50_ms"`
	P95Ms         float64          `json:"p95_ms"`
	P99Ms         float64          `json:"p99_ms"`
	MaxMs         float64          `json:"max_ms"`
}

// Report is BENCH_service.json.
type Report struct {
	Addr          string                 `json:"addr"`
	Launched      bool                   `json:"launched_in_process"`
	Gen           string                 `json:"gen,omitempty"`
	Clients       int                    `json:"clients"`
	DurationSec   float64                `json:"duration_sec"`
	HeavyFrac     float64                `json:"heavy_frac"`
	GOMAXPROCS    int                    `json:"gomaxprocs"`
	NumCPU        int                    `json:"num_cpu"`
	CPUCaveat     string                 `json:"cpu_caveat,omitempty"`
	Classes       map[string]ClassReport `json:"classes"`
	TotalRequests int64                  `json:"total_requests"`
	TotalErrors   int64                  `json:"total_errors"`
	ServerStats   json.RawMessage        `json:"server_stats,omitempty"`
}

// cpuCaveat mirrors the bench package's convention: on a host without
// real parallelism the numbers are time-slicing, not capacity.
func cpuCaveat(gomaxprocs, numCPU int) string {
	switch {
	case gomaxprocs <= 1:
		return fmt.Sprintf("GOMAXPROCS=%d: clients, HTTP stack, and engine workers time-slice; throughput/latency here are not a parallelism evaluation", gomaxprocs)
	case numCPU <= 1:
		return fmt.Sprintf("num_cpu=%d: single-CPU host; throughput/latency reflect time-slicing one core, not service capacity", numCPU)
	}
	return ""
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8042", "pfserver HTTP address to load")
		launch    = flag.Bool("launch", false, "start an in-process service instead of dialing -addr")
		gen       = flag.String("gen", "xmark.xml=0.005", "with -launch: preload uri=sf")
		clients   = flag.Int("clients", 8, "concurrent client goroutines")
		duration  = flag.Duration("duration", 5*time.Second, "how long to drive load")
		heavyFrac = flag.Float64("heavy-frac", 0.125, "fraction of requests drawn from the heavy class")
		timeoutMs = flag.Int64("timeout-ms", 20000, "per-request timeout sent to the server")
		doc       = flag.String("doc", "xmark.xml", "context document bound to absolute paths")
		out       = flag.String("out", "BENCH_service.json", "report file (empty = stdout summary only)")
		minOK     = flag.Int64("min-ok", 0, "exit 1 unless at least this many requests succeeded (smoke assertion)")
		verbose   = flag.Bool("v", false, "per-second progress")
	)
	flag.Parse()

	target := *addr
	if *launch {
		ln, shutdown, err := launchService(*gen)
		if err != nil {
			fatal("launch: %v", err)
		}
		defer shutdown()
		target = ln
	}

	rep := Report{
		Addr:       target,
		Launched:   *launch,
		Clients:    *clients,
		HeavyFrac:  *heavyFrac,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Classes:    map[string]ClassReport{},
	}
	if *launch {
		rep.Gen = *gen
	}
	rep.CPUCaveat = cpuCaveat(rep.GOMAXPROCS, rep.NumCPU)
	if rep.CPUCaveat != "" {
		fmt.Fprintf(os.Stderr, "pfload: WARNING: %s\n", rep.CPUCaveat)
	}

	// Warm the prepared-statement cache (and fail fast on an unreachable
	// server) with one request per query before the clock starts.
	client := &http.Client{Timeout: time.Duration(*timeoutMs+5000) * time.Millisecond}
	for _, q := range append(append([]string{}, pointQueries...), heavyQueries...) {
		if _, _, err := fire(client, target, q, *doc, *timeoutMs); err != nil {
			fatal("warmup against %s: %v", target, err)
		}
	}

	type clientAgg struct {
		point, heavy classAgg
	}
	aggs := make([]clientAgg, *clients)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			a := &aggs[i]
			a.point.codes = map[int]int64{}
			a.heavy.codes = map[int]int64{}
			for time.Now().Before(deadline) {
				agg, q := &a.point, pointQueries[rng.Intn(len(pointQueries))]
				if rng.Float64() < *heavyFrac {
					agg, q = &a.heavy, heavyQueries[rng.Intn(len(heavyQueries))]
				}
				code, ms, err := fire(client, target, q, *doc, *timeoutMs)
				if err != nil {
					agg.codes[-1]++
					continue
				}
				agg.codes[code]++
				if code == http.StatusOK {
					agg.latMs = append(agg.latMs, ms)
				}
			}
		}(i)
	}
	if *verbose {
		go func() {
			for t := range time.Tick(time.Second) {
				if t.After(deadline) {
					return
				}
				fmt.Fprintf(os.Stderr, "pfload: %s elapsed\n", t.Sub(start).Round(time.Second))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep.DurationSec = elapsed.Seconds()

	merge := func(pick func(*clientAgg) *classAgg) classAgg {
		m := classAgg{codes: map[int]int64{}}
		for i := range aggs {
			a := pick(&aggs[i])
			m.latMs = append(m.latMs, a.latMs...)
			for c, n := range a.codes {
				m.codes[c] += n
			}
		}
		return m
	}
	rep.Classes["point"] = summarize(merge(func(a *clientAgg) *classAgg { return &a.point }), elapsed)
	rep.Classes["heavy"] = summarize(merge(func(a *clientAgg) *classAgg { return &a.heavy }), elapsed)
	for _, c := range rep.Classes {
		rep.TotalRequests += c.Requests
		rep.TotalErrors += c.Errors
	}
	rep.ServerStats = scrapeStats(client, target)

	if *out != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fatal("marshal report: %v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "pfload: wrote %s\n", *out)
	}
	printSummary(&rep)

	ok := rep.TotalRequests - rep.TotalErrors
	if ok < *minOK {
		fatal("only %d requests succeeded, -min-ok %d", ok, *minOK)
	}
}

// fire sends one query and returns the HTTP status and latency. A
// transport-level failure (no status) returns err.
func fire(client *http.Client, addr, query, doc string, timeoutMs int64) (int, float64, error) {
	body, err := json.Marshal(map[string]any{
		"query": query, "doc": doc, "timeout_ms": timeoutMs,
	})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	resp, err := client.Post("http://"+addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck — draining for keep-alive
	resp.Body.Close()
	return resp.StatusCode, float64(time.Since(start).Microseconds()) / 1000, nil
}

// summarize folds a merged class into its report row.
func summarize(a classAgg, elapsed time.Duration) ClassReport {
	r := ClassReport{StatusCodes: map[string]int64{}}
	for code, n := range a.codes {
		r.Requests += n
		key := strconv.Itoa(code)
		if code == -1 {
			key = "transport_error"
		}
		r.StatusCodes[key] = n
		if code != http.StatusOK {
			r.Errors += n
		}
	}
	sort.Float64s(a.latMs)
	pct := func(q float64) float64 {
		if len(a.latMs) == 0 {
			return 0
		}
		return a.latMs[int(q*float64(len(a.latMs)-1))]
	}
	r.P50Ms, r.P95Ms, r.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	if n := len(a.latMs); n > 0 {
		r.MaxMs = a.latMs[n-1]
		r.ThroughputQPS = float64(n) / elapsed.Seconds()
	}
	return r
}

// scrapeStats fetches the server's /stats snapshot for the report.
func scrapeStats(client *http.Client, addr string) json.RawMessage {
	resp, err := client.Get("http://" + addr + "/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	return json.RawMessage(buf)
}

// launchService starts an in-process service for self-contained runs.
func launchService(gen string) (addr string, shutdown func(), err error) {
	uri, sfStr, ok := strings.Cut(gen, "=")
	if !ok {
		return "", nil, fmt.Errorf("bad -gen %q (want uri=sf)", gen)
	}
	sf, err := strconv.ParseFloat(sfStr, 64)
	if err != nil || sf <= 0 {
		return "", nil, fmt.Errorf("bad scale factor %q", sfStr)
	}
	store := xenc.NewStore()
	doc := xmark.GenerateString(sf)
	if _, err := store.LoadDocumentString(uri, doc); err != nil {
		return "", nil, err
	}
	fmt.Fprintf(os.Stderr, "pfload: launched in-process service, %s = %d bytes (sf=%g)\n", uri, len(doc), sf)
	svc := service.New(store, service.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln) //nolint:errcheck — closed on shutdown
	return ln.Addr().String(), func() { srv.Close() }, nil
}

func printSummary(rep *Report) {
	fmt.Printf("pfload: %d clients for %.1fs against %s\n", rep.Clients, rep.DurationSec, rep.Addr)
	for _, class := range []string{"point", "heavy"} {
		c := rep.Classes[class]
		fmt.Printf("  %-5s  %6d req  %4d err  %8.1f q/s  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms\n",
			class, c.Requests, c.Errors, c.ThroughputQPS, c.P50Ms, c.P95Ms, c.P99Ms)
	}
	if rep.CPUCaveat != "" {
		fmt.Printf("  caveat: %s\n", rep.CPUCaveat)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pfload: "+format+"\n", args...)
	os.Exit(1)
}
