// Command pfshell is the front-end half of the demonstration setup (§4):
// it compiles XQuery expressions into MIL programs and ships them to a
// running pfserver, printing the serialized results — the Pathfinder
// compiler as a client of the relational back-end.
//
// Usage:
//
//	pfshell -addr 127.0.0.1:4242 'count(doc("xmark.xml")//item)'
//	pfshell -addr 127.0.0.1:4242 -gen xmark.xml=0.01
//	pfshell -addr 127.0.0.1:4242 -collection auction '/site/people/person'
//	echo 'for $i in doc("xmark.xml")//item return $i/name' | pfshell -addr ...
//
// With -collection the query is shipped as source (the XQ command) bound
// to a named collection from the server's -store catalog; without it the
// query is compiled client-side to a MIL program and shipped as a plan.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/mil"
	"pathfinder/internal/opt"
	"pathfinder/internal/xqcore"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:4242", "pfserver address")
		gen     = flag.String("gen", "", "ask the server to generate an instance: uri=sf")
		ctxDoc  = flag.String("doc", "", "document bound to absolute paths")
		coll    = flag.String("collection", "", "named collection from the server's -store catalog; ships the query as source instead of a MIL plan")
		showMIL = flag.Bool("mil", false, "print the shipped MIL program to stderr")
		noOpt   = flag.Bool("noopt", false, "skip the peephole optimizer")
	)
	flag.Parse()

	client, err := mil.Dial(*addr)
	if err != nil {
		fatal("connect: %v", err)
	}
	defer client.Close()

	if *gen != "" {
		uri, sfStr, ok := strings.Cut(*gen, "=")
		if !ok {
			fatal("bad -gen %q (want uri=sf)", *gen)
		}
		if _, err := strconv.ParseFloat(sfStr, 64); err != nil {
			fatal("bad scale factor %q", sfStr)
		}
		msg, err := client.Gen(uri, mustFloat(sfStr))
		if err != nil {
			fatal("GEN: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pfshell: %s\n", msg)
	}

	queries := flag.Args()
	if len(queries) == 0 && *gen == "" {
		// Read one query from stdin.
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var sb strings.Builder
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		if strings.TrimSpace(sb.String()) != "" {
			queries = append(queries, sb.String())
		}
	}

	for _, q := range queries {
		if *coll != "" {
			// Collection-bound queries ship as source: the server compiles
			// them against its catalog, so the plan's surrogates resolve in
			// the collection's own store.
			out, err := client.ExecXQReq(engine.QueryRequest{Query: q, Collection: *coll, ContextDoc: *ctxDoc})
			if err != nil {
				fatal("execute: %v", err)
			}
			fmt.Println(out)
			continue
		}
		plan, _, err := core.CompileQuery(q, xqcore.Options{ContextDoc: *ctxDoc})
		if err != nil {
			fatal("compile: %v", err)
		}
		if !*noOpt {
			if plan, err = opt.Optimize(plan); err != nil {
				fatal("optimize: %v", err)
			}
		}
		prog, err := mil.Emit(plan)
		if err != nil {
			fatal("emit: %v", err)
		}
		if *showMIL {
			fmt.Fprint(os.Stderr, prog)
		}
		out, err := client.ExecMIL(prog)
		if err != nil {
			fatal("execute: %v", err)
		}
		fmt.Println(out)
	}
}

func mustFloat(s string) float64 {
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pfshell: "+format+"\n", args...)
	os.Exit(1)
}
