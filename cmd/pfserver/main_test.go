package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a race-safe stderr sink: run writes from its goroutine
// while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startServer runs the server in a goroutine and waits for readiness.
func startServer(t *testing.T, args ...string) (httpAddr string, sigs chan os.Signal, done chan error, stderr *syncBuffer) {
	t.Helper()
	ready := make(chan [2]string, 1)
	testHookReady = func(tcp, http string) { ready <- [2]string{tcp, http} }
	defer func() { testHookReady = nil }()

	stderr = &syncBuffer{}
	sigs = make(chan os.Signal, 1)
	done = make(chan error, 1)
	go func() { done <- run(args, stderr, sigs) }()

	select {
	case addrs := <-ready:
		return addrs[1], sigs, done, stderr
	case err := <-done:
		t.Fatalf("server exited before ready: %v\nstderr:\n%s", err, stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatalf("server never became ready\nstderr:\n%s", stderr.String())
	}
	return
}

func postQuery(t *testing.T, httpAddr, query string) (int, string) {
	t.Helper()
	resp, err := http.Post("http://"+httpAddr+"/query/text", "application/xquery", strings.NewReader(query))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}

// TestGracefulShutdown covers the drain path: a query in flight when the
// signal arrives completes with 200, run returns nil, and the listeners
// are closed afterwards.
func TestGracefulShutdown(t *testing.T) {
	httpAddr, sigs, done, stderr := startServer(t,
		"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0", "-drain-timeout", "30s")

	// A query slow enough to plausibly still be running when the signal
	// lands (cross product polled by the engine's cancellation stride).
	type result struct {
		status int
		body   string
	}
	resc := make(chan result, 1)
	go func() {
		code, body := postQuery(t, httpAddr, `count(for $x in (1 to 1200) for $y in (1 to 1200) return 1)`)
		resc <- result{code, body}
	}()
	time.Sleep(20 * time.Millisecond)
	sigs <- syscall.SIGTERM

	r := <-resc
	if r.status != http.StatusOK || strings.TrimSpace(r.body) != "1440000" {
		t.Fatalf("in-flight query during drain: status=%d body=%q", r.status, r.body)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run did not return after signal\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "shut down") {
		t.Fatalf("missing shutdown line in stderr:\n%s", stderr.String())
	}
	if _, err := http.Get("http://" + httpAddr + "/healthz"); err == nil {
		t.Fatalf("http listener still accepting after shutdown")
	}
}

// TestSnapshotRoundTrip covers the snapshot file handling: written on
// first boot after preloading, restored on the second boot, and the
// restored store answers queries identically.
func TestSnapshotRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "store.pfsnap")
	query := `count(doc("xmark.xml")/site/regions/*/item)`

	httpAddr, sigs, done, _ := startServer(t,
		"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
		"-gen", "xmark.xml=0.002", "-snapshot", snap)
	code, first := postQuery(t, httpAddr, query)
	if code != http.StatusOK {
		t.Fatalf("query on fresh store: status=%d body=%q", code, first)
	}
	sigs <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}
	fi, err := os.Stat(snap)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not written: %v", err)
	}

	httpAddr, sigs, done, stderr := startServer(t,
		"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0", "-snapshot", snap)
	if !strings.Contains(stderr.String(), "restored store") {
		t.Fatalf("second boot did not restore:\n%s", stderr.String())
	}
	code, second := postQuery(t, httpAddr, query)
	if code != http.StatusOK || second != first {
		t.Fatalf("restored store answered differently: status=%d %q vs %q", code, second, first)
	}
	sigs <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestRunRejectsEmptyConfig pins the nothing-to-serve error.
func TestRunRejectsEmptyConfig(t *testing.T) {
	err := run([]string{"-listen", "", "-http", ""}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "nothing to serve") {
		t.Fatalf("want nothing-to-serve error, got %v", err)
	}
}
