// Command pfserver is the back-end half of the front-end/back-end
// demonstration setup (§4): it plays MonetDB's role, accepting MIL
// programs over TCP and executing them against its document store.
//
// Usage:
//
//	pfserver -listen :4242
//	pfserver -listen :4242 -gen xmark.xml=0.01   # preload an XMark instance
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"pathfinder/internal/engine"
	"pathfinder/internal/mil"
	"pathfinder/internal/xmark"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:4242", "address to listen on")
		gen      = flag.String("gen", "", "preload a generated instance: uri=sf (e.g. xmark.xml=0.01)")
		load     = flag.String("load", "", "preload a document from disk: uri=path")
		snapshot = flag.String("snapshot", "", "persisted store: restored when the file exists, written after preloading otherwise")
		workers  = flag.Int("workers", engine.EnvWorkers(), "parallel scheduler worker pool size (0 = GOMAXPROCS, 1 = sequential; also via PF_WORKERS)")
	)
	flag.Parse()

	srv := mil.NewServer()
	srv.Engine().Workers = *workers
	restored := false
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := srv.Engine().Store.ReadSnapshot(f); err != nil {
				f.Close()
				fatal("restore snapshot: %v", err)
			}
			f.Close()
			restored = true
			fmt.Fprintf(os.Stderr, "pfserver: restored store from %s (%d fragments)\n",
				*snapshot, srv.Engine().Store.FragCount())
		}
	}
	if *gen != "" && !restored {
		uri, sfStr, ok := strings.Cut(*gen, "=")
		if !ok {
			fatal("bad -gen %q (want uri=sf)", *gen)
		}
		sf, err := strconv.ParseFloat(sfStr, 64)
		if err != nil || sf <= 0 {
			fatal("bad scale factor %q", sfStr)
		}
		doc := xmark.GenerateString(sf)
		if _, err := srv.Engine().Store.LoadDocumentString(uri, doc); err != nil {
			fatal("preload: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pfserver: preloaded %s (%d bytes, sf=%g)\n", uri, len(doc), sf)
	}
	if *load != "" && !restored {
		uri, path, ok := strings.Cut(*load, "=")
		if !ok {
			fatal("bad -load %q (want uri=path)", *load)
		}
		f, err := os.Open(path)
		if err != nil {
			fatal("preload: %v", err)
		}
		if _, err := srv.Engine().Store.LoadDocument(uri, f); err != nil {
			fatal("preload: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "pfserver: preloaded %s from %s\n", uri, path)
	}

	if *snapshot != "" && !restored {
		f, err := os.Create(*snapshot)
		if err != nil {
			fatal("write snapshot: %v", err)
		}
		if err := srv.Engine().Store.WriteSnapshot(f); err != nil {
			fatal("write snapshot: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("write snapshot: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pfserver: wrote snapshot %s\n", *snapshot)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "pfserver: listening on %s\n", l.Addr())
	if err := srv.Serve(l); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pfserver: "+format+"\n", args...)
	os.Exit(1)
}
