// Command pfserver is the production face of the engine: the §4
// front-end/back-end demonstration setup grown into a multi-tenant query
// service. One process owns one document store and serves it over two
// front doors sharing one admission-controlled engine:
//
//   - a MIL TCP listener (-listen) speaking the line-framed protocol
//     (LOAD/GEN/MIL/XQ/STORAGE/QUIT) for pfshell and plan-shipping
//     clients, and
//   - an HTTP listener (-http) with JSON and plain-text query endpoints
//     plus /stats and /healthz (see internal/service.Handler for the
//     status-code contract).
//
// SIGINT/SIGTERM drain gracefully: new queries are rejected with 503
// while in-flight ones run to completion (bounded by -drain-timeout),
// then the listeners close.
//
// Usage:
//
//	pfserver -listen :4242 -http :8042
//	pfserver -http :8042 -gen xmark.xml=0.01     # preload an XMark instance
//	pfserver -http :8042 -snapshot store.pfsnap  # persist/restore the store
//	pfserver -http :8042 -store ./collections    # persistent named collections
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pathfinder/internal/engine"
	"pathfinder/internal/pfstore"
	"pathfinder/internal/service"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stderr, sigs); err != nil {
		fmt.Fprintf(os.Stderr, "pfserver: %v\n", err)
		os.Exit(1)
	}
}

// testHookReady, when set, receives the bound listener addresses once both
// front doors are serving — the graceful-shutdown test uses it instead of
// scraping stderr. The smoke script scrapes the stderr lines.
var testHookReady func(tcpAddr, httpAddr string)

// run is main minus process concerns: flags in, classified error out,
// shutdown driven by whatever delivers on sigs. Tests call it directly
// with their own signal channel.
func run(args []string, stderr io.Writer, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("pfserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen       = fs.String("listen", "127.0.0.1:4242", "MIL TCP address to listen on (empty disables)")
		httpAddr     = fs.String("http", "", "HTTP address to listen on (empty disables)")
		gen          = fs.String("gen", "", "preload a generated instance: uri=sf (e.g. xmark.xml=0.01)")
		load         = fs.String("load", "", "preload a document from disk: uri=path")
		snapshot     = fs.String("snapshot", "", "persisted store: restored when the file exists, written after preloading otherwise")
		storeDir     = fs.String("store", "", "persistent collection catalog directory: enables named collections and the /collections endpoints")
		workers      = fs.Int("workers", engine.EnvWorkers(), "parallel scheduler worker pool size (0 = GOMAXPROCS, 1 = sequential; also via PF_WORKERS)")
		maxInFlight  = fs.Int("max-inflight", 0, "admission bound on concurrently executing queries (0 = service default)")
		maxQueue     = fs.Int("max-queue", 0, "admission queue bound; beyond it queries get 429 (0 = service default)")
		reqTimeout   = fs.Duration("request-timeout", 0, "default per-query timeout (0 = service default)")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight queries")
		noPipeline   = fs.Bool("no-opt-pipeline", false, "prepare plans with the legacy single-shot peephole optimizer (no staged pipeline / join graph isolation)")
		noFusion     = fs.Bool("no-fusion", false, "run fused operator chains one kernel at a time (executor switch; plans are identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" && *httpAddr == "" {
		return errors.New("nothing to serve: both -listen and -http are empty")
	}

	store := xenc.NewStore()
	restored, err := restoreSnapshot(store, *snapshot, stderr)
	if err != nil {
		return err
	}
	if !restored {
		if err := preload(store, *gen, *load, stderr); err != nil {
			return err
		}
		if *snapshot != "" {
			if err := writeSnapshot(store, *snapshot); err != nil {
				return fmt.Errorf("write snapshot: %w", err)
			}
			fmt.Fprintf(stderr, "pfserver: wrote snapshot %s\n", *snapshot)
		}
	}

	var cat *pfstore.Catalog
	if *storeDir != "" {
		if cat, err = pfstore.OpenCatalog(*storeDir); err != nil {
			return err
		}
		if infos, err := cat.List(); err == nil && len(infos) > 0 {
			names := make([]string, len(infos))
			for i, info := range infos {
				names[i] = info.Name
			}
			fmt.Fprintf(stderr, "pfserver: catalog %s: %d collection(s): %s\n",
				*storeDir, len(infos), strings.Join(names, ", "))
		}
	}

	svc := service.New(store, service.Config{
		Engine:          engine.Config{Workers: *workers, NoFusion: *noFusion},
		Catalog:         cat,
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		DefaultTimeout:  *reqTimeout,
		LegacyOptimizer: *noPipeline,
	})

	// Both front doors up before the readiness lines print.
	errc := make(chan error, 2)
	var tcpAddr, httpBound string
	milSrv := svc.NewMILServer()
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		tcpAddr = l.Addr().String()
		go func() { errc <- milSrv.Serve(l) }()
	}
	var httpSrv *http.Server
	if *httpAddr != "" {
		l, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			milSrv.Close()
			return err
		}
		httpBound = l.Addr().String()
		httpSrv = &http.Server{Handler: svc.Handler()}
		go func() {
			if err := httpSrv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- err
				return
			}
			errc <- nil
		}()
	}
	if tcpAddr != "" {
		fmt.Fprintf(stderr, "pfserver: listening on %s\n", tcpAddr)
	}
	if httpBound != "" {
		fmt.Fprintf(stderr, "pfserver: http on %s\n", httpBound)
	}
	if testHookReady != nil {
		testHookReady(tcpAddr, httpBound)
	}

	select {
	case sig := <-sigs:
		fmt.Fprintf(stderr, "pfserver: %v: draining\n", sig)
		svc.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if httpSrv != nil {
			// Shutdown stops accepting and waits for active handlers —
			// which svc.Drain below also covers; the ctx bounds both.
			httpSrv.Shutdown(ctx) //nolint:errcheck — drain timeout is reported below
		}
		if err := svc.Drain(ctx); err != nil {
			fmt.Fprintf(stderr, "pfserver: drain timed out, aborting in-flight queries\n")
		}
		milSrv.Close()
		fmt.Fprintf(stderr, "pfserver: shut down\n")
		return nil
	case err := <-errc:
		milSrv.Close()
		return err
	}
}

// restoreSnapshot loads the store from path if the file exists. The file
// is closed on every path via defer.
func restoreSnapshot(store *xenc.Store, path string, stderr io.Writer) (bool, error) {
	if path == "" {
		return false, nil
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := store.ReadSnapshot(f); err != nil {
		return false, fmt.Errorf("restore snapshot: %w", err)
	}
	fmt.Fprintf(stderr, "pfserver: restored store from %s (%d fragments)\n", path, store.FragCount())
	return true, nil
}

// writeSnapshot persists the store; the close error surfaces (a snapshot
// that didn't reach disk is not a snapshot).
func writeSnapshot(store *xenc.Store, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return store.WriteSnapshot(f)
}

// preload applies -gen and -load to a fresh store.
func preload(store *xenc.Store, gen, load string, stderr io.Writer) error {
	if gen != "" {
		uri, sfStr, ok := strings.Cut(gen, "=")
		if !ok {
			return fmt.Errorf("bad -gen %q (want uri=sf)", gen)
		}
		sf, err := strconv.ParseFloat(sfStr, 64)
		if err != nil || sf <= 0 {
			return fmt.Errorf("bad scale factor %q", sfStr)
		}
		doc := xmark.GenerateString(sf)
		if _, err := store.LoadDocumentString(uri, doc); err != nil {
			return fmt.Errorf("preload: %w", err)
		}
		fmt.Fprintf(stderr, "pfserver: preloaded %s (%d bytes, sf=%g)\n", uri, len(doc), sf)
	}
	if load != "" {
		uri, path, ok := strings.Cut(load, "=")
		if !ok {
			return fmt.Errorf("bad -load %q (want uri=path)", load)
		}
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("preload: %w", err)
		}
		defer f.Close()
		if _, err := store.LoadDocument(uri, f); err != nil {
			return fmt.Errorf("preload: %w", err)
		}
		fmt.Fprintf(stderr, "pfserver: preloaded %s from %s\n", uri, path)
	}
	return nil
}
