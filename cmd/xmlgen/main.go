// Command xmlgen generates XMark-style auction documents, standing in for
// the benchmark's original generator [10]. The output is deterministic in
// the scale factor.
//
// Usage:
//
//	xmlgen -sf 0.01 -o auction.xml
//	xmlgen -sf 0.1            # writes to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"pathfinder/internal/xmark"
)

func main() {
	var (
		sf  = flag.Float64("sf", 0.01, "scale factor (1.0 ≈ the original 100 MB instance)")
		out = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if *sf <= 0 {
		fmt.Fprintln(os.Stderr, "xmlgen: scale factor must be positive")
		os.Exit(2)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := xmark.Generate(w, *sf); err != nil {
		fmt.Fprintf(os.Stderr, "xmlgen: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		st, err := os.Stat(*out)
		if err == nil {
			c := xmark.CountsFor(*sf)
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes): %d items, %d people, %d open, %d closed auctions, %d categories\n",
				*out, st.Size(), c.Items, c.People, c.Open, c.Closed, c.Categories)
		}
	}
}
