// Command xmarkbench regenerates the paper's evaluation section: Table 3
// (XMark query times for Pathfinder and the navigational baseline across
// instance sizes), Figure 4 (Pathfinder times normalized to the middle
// size, exposing the linear-vs-quadratic split of §3.4), and the §3.1
// storage-overhead report.
//
// Usage:
//
//	xmarkbench -report table3 -sfs 0.002,0.02,0.2 -budget 30s
//	xmarkbench -report figure4
//	xmarkbench -report storage
//	xmarkbench -report all -queries 8,9,10,11,12
//
// The parallel report compares the sequential evaluator against the
// parallel DAG scheduler and records the speedups as JSON:
//
//	xmarkbench -report parallel -sfs 0.1 -workers 8 -parallel-out BENCH_parallel.json
//
// The physical report compares the legacy sequential interpreter against
// the physical-plan executor (typed kernels + selection vectors + the
// parallel scheduler):
//
//	xmarkbench -report physical -sfs 0.1 -workers 8 -physical-out BENCH_physical.json
//
// The morsel report sweeps intra-operator worker counts against the
// single-worker physical executor, recording per-query morsel counts.
// -gomaxprocs raises runtime.GOMAXPROCS first, since a sweep recorded at
// gomaxprocs=1 hides every parallel speedup:
//
//	xmarkbench -report morsel -sfs 0.1 -gomaxprocs 8 -worker-sweep 2,4,8 -morsel-out BENCH_morsel.json
//
// The store report measures the persistent columnar format: cold shred of
// auction.xml versus pfstore save + reopen, with a differential query
// check on both stores:
//
//	xmarkbench -report store -sfs 0.1 -store-out BENCH_store.json
//
// The plan report measures the staged optimizer pipeline against the
// single-shot peephole: per-query operator counts and rows materialized
// by the physical executor before/after, executing both plans and
// comparing outputs byte-for-byte:
//
//	xmarkbench -report plan -sfs 0.1 -plan-out BENCH_plan.json
//
// The fusion report measures fused-chain execution against per-operator
// execution of the identical optimized plans (the -no-fusion executor
// switch): per-query wall time and rows materialized, outputs compared
// byte-for-byte:
//
//	xmarkbench -report fusion -sfs 0.1 -fusion-out BENCH_fusion.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pathfinder/internal/bench"
	"pathfinder/internal/engine"
)

func main() {
	var (
		report   = flag.String("report", "all", "table3, figure4, storage, csv, parallel, physical, morsel, plan, fusion, store, or all")
		sfsFlag  = flag.String("sfs", "0.002,0.02,0.2", "comma-separated scale factors (parallel report uses the first)")
		queries  = flag.String("queries", "", "comma-separated query numbers (default all 20)")
		budget   = flag.Duration("budget", 30*time.Second, "per-query time budget before DNF")
		baseline = flag.Bool("baseline", true, "run the navigational baseline too")
		optimize = flag.Bool("opt", true, "run plans through the peephole optimizer")
		workers  = flag.Int("workers", engine.EnvWorkers(), "engine worker pool size (0 = GOMAXPROCS; also via PF_WORKERS)")
		parOut   = flag.String("parallel-out", "BENCH_parallel.json", "where -report parallel writes its JSON record")
		physOut  = flag.String("physical-out", "BENCH_physical.json", "where -report physical writes its JSON record")
		repeat   = flag.Int("repeat", 3, "parallel report: timing repetitions (best-of)")
		verbose  = flag.Bool("v", false, "progress output on stderr")

		morselOut  = flag.String("morsel-out", "BENCH_morsel.json", "where -report morsel writes its JSON record")
		sweepFlag  = flag.String("worker-sweep", "", "morsel report: comma-separated worker counts (default 2,4[,GOMAXPROCS])")
		gomaxprocs = flag.Int("gomaxprocs", 0, "raise runtime.GOMAXPROCS before benchmarking (0 = leave as-is)")
		morselRows = flag.Int("morsel-rows", 0, "morsel granularity in rows (0 = engine default)")

		storeOut  = flag.String("store-out", "BENCH_store.json", "where -report store writes its JSON record")
		planOut   = flag.String("plan-out", "BENCH_plan.json", "where -report plan writes its JSON record")
		fusionOut = flag.String("fusion-out", "BENCH_fusion.json", "where -report fusion writes its JSON record")
	)
	flag.Parse()

	var sfs []float64
	for _, s := range strings.Split(*sfsFlag, ",") {
		sf, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || sf <= 0 {
			fatal("bad scale factor %q", s)
		}
		sfs = append(sfs, sf)
	}
	var qs []int
	if *queries != "" {
		for _, s := range strings.Split(*queries, ",") {
			q, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || q < 1 || q > 20 {
				fatal("bad query number %q", s)
			}
			qs = append(qs, q)
		}
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *report == "parallel" {
		res, err := bench.RunParallel(bench.ParallelConfig{
			SF: sfs[0], Queries: qs, Workers: *workers,
			Repeat: *repeat, Optimize: *optimize, Verbose: logf,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(res.ParallelTable())
		payload, err := res.JSON()
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*parOut, append(payload, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *parOut, err)
		}
		fmt.Printf("wrote %s\n", *parOut)
		return
	}

	if *report == "morsel" {
		var sweep []int
		if *sweepFlag != "" {
			for _, s := range strings.Split(*sweepFlag, ",") {
				w, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || w < 1 {
					fatal("bad worker count %q", s)
				}
				sweep = append(sweep, w)
			}
		}
		res, err := bench.RunMorsel(bench.MorselConfig{
			SF: sfs[0], Queries: qs, Sweep: sweep,
			Repeat: *repeat, MorselRows: *morselRows, GOMAXPROCS: *gomaxprocs,
			Optimize: *optimize, Verbose: logf,
		})
		if err != nil {
			fatal("%v", err)
		}
		// Unconditionally on stderr (not just -v): a sweep recorded on a
		// host that cannot overlap morsel teams must not be mistaken for
		// the parallelism evaluation.
		if res.CPUCaveat != "" {
			fmt.Fprintf(os.Stderr, "xmarkbench: WARNING: %s\n", res.CPUCaveat)
		}
		fmt.Println(res.MorselTable())
		payload, err := res.JSON()
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*morselOut, append(payload, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *morselOut, err)
		}
		fmt.Printf("wrote %s\n", *morselOut)
		// The sweep doubles as a differential check: any divergence from
		// the single-worker baseline is a correctness bug, not a perf
		// number, so it fails the run (and with it the CI smoke step).
		for _, c := range res.Baseline {
			if c.Err != "" {
				fatal("Q%d baseline: %s", c.Query, c.Err)
			}
		}
		for _, s := range res.Sweeps {
			for _, c := range s.Queries {
				if c.Err != "" {
					fatal("Q%d workers=%d: %s", c.Query, s.Workers, c.Err)
				}
				if !c.Match {
					fatal("Q%d workers=%d: output differs from single-worker baseline", c.Query, s.Workers)
				}
			}
		}
		return
	}

	if *report == "store" {
		res, err := bench.RunStore(bench.StoreConfig{
			SF: sfs[0], Queries: qs, Repeat: *repeat, Verbose: logf,
		})
		if err != nil {
			fatal("%v", err)
		}
		if res.CPUCaveat != "" {
			fmt.Fprintf(os.Stderr, "xmarkbench: WARNING: %s\n", res.CPUCaveat)
		}
		fmt.Println(res.StoreTable())
		payload, err := res.JSON()
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*storeOut, append(payload, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *storeOut, err)
		}
		fmt.Printf("wrote %s\n", *storeOut)
		// A reopened store that answers differently is a format bug, not a
		// perf number; fail the run so the CI smoke step catches it.
		if !res.Match {
			fatal("reopened store results differ from the fresh shred")
		}
		return
	}

	if *report == "plan" {
		res, err := bench.RunPlan(bench.PlanConfig{
			SF: sfs[0], Queries: qs, Repeat: *repeat, Verbose: logf,
		})
		if err != nil {
			fatal("%v", err)
		}
		if res.CPUCaveat != "" {
			fmt.Fprintf(os.Stderr, "xmarkbench: WARNING: %s\n", res.CPUCaveat)
		}
		fmt.Println(res.PlanTable())
		payload, err := res.JSON()
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*planOut, append(payload, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *planOut, err)
		}
		fmt.Printf("wrote %s\n", *planOut)
		// The report doubles as a differential + regression check: a
		// pipeline plan that errors, answers differently, or grew over
		// the peephole fails the run (and with it the CI smoke step).
		for _, c := range res.Queries {
			if c.Err != "" {
				fatal("Q%d: %s", c.Query, c.Err)
			}
			if !c.Match {
				fatal("Q%d: pipeline plan output differs from peephole plan", c.Query)
			}
			if c.OpsAfter > c.OpsBefore {
				fatal("Q%d: pipeline grew the plan over peephole: %d -> %d", c.Query, c.OpsBefore, c.OpsAfter)
			}
		}
		return
	}

	if *report == "fusion" {
		res, err := bench.RunFusion(bench.FusionConfig{
			SF: sfs[0], Queries: qs, Repeat: *repeat, Verbose: logf,
		})
		if err != nil {
			fatal("%v", err)
		}
		if res.CPUCaveat != "" {
			fmt.Fprintf(os.Stderr, "xmarkbench: WARNING: %s\n", res.CPUCaveat)
		}
		fmt.Println(res.FusionTable())
		payload, err := res.JSON()
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*fusionOut, append(payload, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *fusionOut, err)
		}
		fmt.Printf("wrote %s\n", *fusionOut)
		// The report doubles as a differential + regression check: a fused
		// run that errors, answers differently, or materializes more rows
		// than the per-operator path fails the run (and with it the CI
		// smoke step).
		for _, c := range res.Queries {
			if c.Err != "" {
				fatal("Q%d: %s", c.Query, c.Err)
			}
			if !c.Match {
				fatal("Q%d: fused output differs from per-operator output", c.Query)
			}
			if c.RowsMatFused > c.RowsMatUnfused {
				fatal("Q%d: fusion materialized more rows than per-operator execution: %d > %d",
					c.Query, c.RowsMatFused, c.RowsMatUnfused)
			}
		}
		for _, c := range res.Micro {
			if c.Err != "" {
				fatal("%s: %s", c.Name, c.Err)
			}
			if !c.Match {
				fatal("%s: fused output differs from per-operator output", c.Name)
			}
			if c.RowsMatFused > c.RowsMatUnfused {
				fatal("%s: fusion materialized more rows than per-operator execution: %d > %d",
					c.Name, c.RowsMatFused, c.RowsMatUnfused)
			}
		}
		return
	}

	if *report == "physical" {
		res, err := bench.RunPhysical(bench.ParallelConfig{
			SF: sfs[0], Queries: qs, Workers: *workers,
			Repeat: *repeat, Optimize: *optimize, Verbose: logf,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(res.PhysicalTable())
		payload, err := res.JSON()
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*physOut, append(payload, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *physOut, err)
		}
		fmt.Printf("wrote %s\n", *physOut)
		return
	}

	cfg := bench.Config{
		SFs:          sfs,
		Queries:      qs,
		Budget:       *budget,
		WithBaseline: *baseline,
		Optimize:     *optimize,
		Workers:      *workers,
		Verbose:      nil,
	}
	if *verbose {
		cfg.Verbose = logf
	}

	res, err := bench.Run(cfg)
	if err != nil {
		fatal("%v", err)
	}
	switch *report {
	case "table3":
		fmt.Println(res.Table3())
	case "figure4":
		fmt.Println(res.Figure4())
	case "storage":
		fmt.Println(res.Storage())
	case "csv":
		fmt.Print(res.CSV())
	case "all":
		fmt.Println(res.Storage())
		fmt.Println(res.Table3())
		fmt.Println(res.Figure4())
	default:
		fatal("unknown report %q", *report)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xmarkbench: "+format+"\n", args...)
	os.Exit(1)
}
