package pathfinder_test

// End-to-end tests of the shipped command-line tools: the binaries are
// built once into a temp dir and driven the way a user would drive them
// (xmlgen → pf, pfserver ↔ pfshell).

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "pathfinder-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"pf", "xmlgen", "pfserver", "pfshell", "xmarkbench"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("build %s: %v\n%s", tool, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIXmlgenAndPf(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	doc := filepath.Join(dir, "auction.xml")
	runTool(t, "xmlgen", "-sf", "0.002", "-o", doc)

	if got := strings.TrimSpace(runTool(t, "pf", "-doc", doc, "count(//person)")); got != "60" {
		t.Errorf("pf count = %q", got)
	}
	got := strings.TrimSpace(runTool(t, "pf", "-doc", doc,
		`for $p in /site/people/person where $p/@id = "person0" return $p/name/text()`))
	if got == "" {
		t.Error("person0 lookup returned nothing")
	}
	// Introspection modes produce their artifacts.
	if out := runTool(t, "pf", "-show", "core", "1 + 1"); !strings.Contains(out, "op +") {
		t.Errorf("core mode: %q", out)
	}
	if out := runTool(t, "pf", "-show", "plan", "1 + 1"); !strings.Contains(out, "operators)") {
		t.Errorf("plan mode: %q", out)
	}
	if out := runTool(t, "pf", "-show", "mil", "1 + 1"); !strings.Contains(out, "return v") {
		t.Errorf("mil mode: %q", out)
	}
	if out := runTool(t, "pf", "-show", "sql", "1 + 1"); !strings.HasPrefix(out, "WITH") {
		t.Errorf("sql mode: %q", out)
	}
	if out := runTool(t, "pf", "-show", "dot", "1 + 1"); !strings.Contains(out, "digraph plan") {
		t.Errorf("dot mode: %q", out)
	}
	if out := runTool(t, "pf", "-show", "physical", "1 + 1"); !strings.Contains(out, "digraph physical") ||
		!strings.Contains(out, "scan") {
		t.Errorf("physical mode: %q", out)
	}
	if out := runTool(t, "pf", "-doc", doc, "-show", "explain", "count(//person)"); !strings.Contains(out, "mat ") {
		t.Errorf("explain mode lacks kernel annotations: %q", out)
	}
	if out := runTool(t, "pf", "-doc", doc, "-show", "trace", "count(//person)"); !strings.Contains(out, "rows") {
		t.Errorf("trace mode: %q", out)
	}
	// The naive (tree-unaware) engine agrees with the staircase engine.
	a := runTool(t, "pf", "-doc", doc, "count(//text())")
	b := runTool(t, "pf", "-naive", "-doc", doc, "count(//text())")
	if a != b {
		t.Errorf("naive/staircase disagree: %q vs %q", a, b)
	}
}

func TestCLIServerShell(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildTools(t)
	// Pick a free port.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	srv := exec.Command(filepath.Join(dir, "pfserver"), "-listen", addr, "-gen", "xmark.xml=0.002")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = srv.Process.Kill()
		_ = srv.Wait()
	}()
	// Wait for the listener.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pfserver did not come up")
		}
		time.Sleep(50 * time.Millisecond)
	}

	out := runTool(t, "pfshell", "-addr", addr, `count(doc("xmark.xml")//person)`)
	if strings.TrimSpace(out) != "60" {
		t.Errorf("pfshell result = %q", out)
	}
	out2 := runTool(t, "pfshell", "-addr", addr, "-doc", "xmark.xml",
		`sum(for $p in /site/closed_auctions/closed_auction return 1)`)
	if strings.TrimSpace(out2) != "24" {
		t.Errorf("pfshell sum = %q", out2)
	}
}

func TestCLIInteractiveMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	doc := filepath.Join(dir, "auction.xml")
	runTool(t, "xmlgen", "-sf", "0.002", "-o", doc)
	cmd := exec.Command(filepath.Join(buildTools(t), "pf"), "-i", "-doc", doc)
	cmd.Stdin = strings.NewReader("count(//person)\nbad syntax here(\n1 to 3\nquit\n")
	out, err := cmd.Output() // stderr carries prompts and the error
	if err != nil {
		t.Fatalf("repl: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "60\n1 2 3" {
		t.Errorf("repl output = %q", got)
	}
}

func TestCLIServerSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildTools(t)
	snap := filepath.Join(t.TempDir(), "store.pfdb")

	runServer := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		l.Close()
		srv := exec.Command(filepath.Join(dir, "pfserver"),
			"-listen", addr, "-gen", "xmark.xml=0.002", "-snapshot", snap)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			_ = srv.Process.Kill()
			_ = srv.Wait()
		}()
		deadline := time.Now().Add(10 * time.Second)
		for {
			conn, err := net.Dial("tcp", addr)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("pfserver did not come up")
			}
			time.Sleep(50 * time.Millisecond)
		}
		return strings.TrimSpace(runTool(t, "pfshell", "-addr", addr,
			`count(doc("xmark.xml")//closed_auction)`))
	}

	first := runServer() // generates and writes the snapshot
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	second := runServer() // restores from the snapshot
	if first != second || first != "24" {
		t.Errorf("snapshot round trip: %q vs %q", first, second)
	}
}

func TestCLIXmarkbenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	out := runTool(t, "xmarkbench",
		"-sfs", "0.001", "-queries", "1,6", "-budget", "30s", "-report", "table3")
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "  1 |") {
		t.Errorf("xmarkbench output:\n%s", out)
	}
}
