package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// FusionConfig configures RunFusion.
type FusionConfig struct {
	SF      float64 // XMark scale factor (default 0.1)
	Queries []int   // query numbers (default all 20)
	Repeat  int     // timing repetitions, best-of (default 3)
	Verbose func(format string, args ...any)
}

// FusionCell records one optimized query executed twice on identical
// plans: fused chains run as single vectorized loops ("fused") vs one
// kernel at a time ("unfused", the -no-fusion executor switch).
type FusionCell struct {
	Query  int `json:"query"`
	Chains int `json:"chains"` // fused chains the lowering found in the plan

	// Rows materialized (gathered/copied rather than scanned in place)
	// across all kernels. Chain interiors materialize zero rows in BOTH
	// modes — the per-operator executor already pipelines them as
	// selection-vector views — so these counts verify that fusion never
	// materializes more, while the speedup column carries the payoff.
	RowsMatFused   int64 `json:"rows_mat_fused"`
	RowsMatUnfused int64 `json:"rows_mat_unfused"`

	FusedMillis   float64 `json:"fused_ms"`
	UnfusedMillis float64 `json:"unfused_ms"`
	Speedup       float64 `json:"speedup"` // unfused / fused wall time
	Match         bool    `json:"match"`   // outputs byte-identical
	Err           string  `json:"err,omitempty"`
}

// FusionMicroCell is one range-pipeline microbenchmark: a dense
// integer pipeline dominated by a single filter/map chain, where the
// fused loop's win (no per-operator dispatch, no dead-lane compute, no
// intermediate vector plumbing) is largest relative to total work.
// Rows materialized are equal in both modes — the per-operator path
// already pipelines these chains as selection-vector views and charges
// its gathers at the breaker boundaries, which fusion does not move —
// so the cells pin the "fused never materializes more" invariant and
// the wall-time reduction, not a materialization delta.
type FusionMicroCell struct {
	Name           string  `json:"name"`
	Query          string  `json:"query"`
	Chains         int     `json:"chains"`
	RowsMatFused   int64   `json:"rows_mat_fused"`
	RowsMatUnfused int64   `json:"rows_mat_unfused"`
	FusedMillis    float64 `json:"fused_ms"`
	UnfusedMillis  float64 `json:"unfused_ms"`
	Speedup        float64 `json:"speedup"`
	Match          bool    `json:"match"`
	Err            string  `json:"err,omitempty"`
}

// FusionResults is the content of BENCH_fusion.json.
type FusionResults struct {
	SF         float64           `json:"sf"`
	XMLBytes   int64             `json:"xml_bytes"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	CPUCaveat  string            `json:"cpu_caveat,omitempty"`
	Geomean    float64           `json:"geomean_speedup"`
	Queries    []FusionCell      `json:"queries"`
	Micro      []FusionMicroCell `json:"micro"`
}

// fusionMicro is the pipeline microbenchmark corpus. The row counts
// scale with SF so the smoke run stays fast.
// The sum-wrapped variants return a single number, so serialization —
// identical in both modes — stops diluting the measured ratio.
var fusionMicro = []struct{ name, query string }{
	{"filter-map", "for $i in 1 to %d where $i mod 7 = 0 return $i * 2"},
	{"filter-map-map", "for $i in 1 to %d where $i mod 3 = 0 return ($i * 2) + 1"},
	{"map-filter-map", "for $i in 1 to %d where ($i + 5) mod 4 = 1 return $i - 1"},
	{"sum-filter-map", "sum(for $i in 1 to %d where $i mod 7 = 0 return $i * 2)"},
	{"sum-filter-map-map", "sum(for $i in 1 to %d where $i mod 3 = 0 return ($i * 2) + 1)"},
	{"sum-map-filter-map", "sum(for $i in 1 to %d where ($i + 5) mod 4 = 1 return $i - 1)"},
}

// RunFusion measures what fused-chain execution buys over per-operator
// execution of the identical plans: per-query wall time and rows
// materialized, fusion on vs off, with both outputs compared
// byte-for-byte so the benchmark doubles as a differential check of the
// fused kernels.
func RunFusion(cfg FusionConfig) (*FusionResults, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.1
	}
	if cfg.Queries == nil {
		for n := 1; n <= xmark.NumQueries; n++ {
			cfg.Queries = append(cfg.Queries, n)
		}
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 3
	}
	logf := cfg.Verbose
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("generating XMark instance sf=%g ...", cfg.SF)
	doc := xmark.GenerateString(cfg.SF)
	res := &FusionResults{
		SF: cfg.SF, XMLBytes: int64(len(doc)),
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	res.CPUCaveat = planCPUCaveat(res.NumCPU)
	if res.CPUCaveat != "" {
		logf("caveat: %s", res.CPUCaveat)
	}

	store := xenc.NewStore()
	if _, err := store.LoadDocumentString("xmark.xml", doc); err != nil {
		return nil, fmt.Errorf("sf %g: %w", cfg.SF, err)
	}
	// Both engines share one store: the plans, the data, and the worker
	// budget are identical — the executor switch is the only variable.
	fused := engine.NewWithConfig(store, engine.Config{Workers: 1})
	unfused := engine.NewWithConfig(store, engine.Config{Workers: 1, NoFusion: true})

	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for _, q := range cfg.Queries {
		cell := FusionCell{Query: q}
		plan, _, err := core.CompileQuery(xmark.Query(q), opts)
		if err == nil {
			plan, err = opt.Optimize(plan)
		}
		if err != nil {
			cell.Err = err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}

		unfOut, fusOut, unfD, fusD, err := timeEvalPaired(unfused, fused, plan, cfg.Repeat)
		if err != nil {
			cell.Err = err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		// Rows materialized and chain counts come from instrumented runs;
		// their wall time is not comparable, so timing stays with timeEval.
		if cell.RowsMatUnfused, err = rowsMaterialized(unfused, plan); err != nil {
			cell.Err = "trace unfused: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		var fusedMat int64
		fusedMat, cell.Chains, err = fusedTraceCounts(fused, plan)
		if err != nil {
			cell.Err = "trace fused: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		cell.RowsMatFused = fusedMat
		cell.FusedMillis = float64(fusD.Microseconds()) / 1000
		cell.UnfusedMillis = float64(unfD.Microseconds()) / 1000
		if fusD > 0 {
			cell.Speedup = unfD.Seconds() / fusD.Seconds()
		}
		cell.Match = fusOut == unfOut
		logf("Q%-2d chains=%-2d rowsmat %8d -> %-8d unfused=%7.2fms fused=%7.2fms speedup=%.2fx match=%v",
			q, cell.Chains, cell.RowsMatUnfused, cell.RowsMatFused,
			cell.UnfusedMillis, cell.FusedMillis, cell.Speedup, cell.Match)
		res.Queries = append(res.Queries, cell)
	}
	// Microbenchmarks: document-free range pipelines, sized by SF.
	rows := int(cfg.SF * 3_000_000)
	if rows < 50_000 {
		rows = 50_000
	}
	for _, m := range fusionMicro {
		cell := FusionMicroCell{Name: m.name, Query: fmt.Sprintf(m.query, rows)}
		plan, _, err := core.CompileQuery(cell.Query, xqcore.Options{})
		if err == nil {
			plan, err = opt.Optimize(plan)
		}
		if err != nil {
			cell.Err = err.Error()
			res.Micro = append(res.Micro, cell)
			continue
		}
		unfOut, fusOut, unfD, fusD, err := timeEvalPaired(unfused, fused, plan, cfg.Repeat)
		if err != nil {
			cell.Err = err.Error()
			res.Micro = append(res.Micro, cell)
			continue
		}
		if cell.RowsMatUnfused, err = rowsMaterialized(unfused, plan); err != nil {
			cell.Err = "trace unfused: " + err.Error()
			res.Micro = append(res.Micro, cell)
			continue
		}
		if cell.RowsMatFused, cell.Chains, err = fusedTraceCounts(fused, plan); err != nil {
			cell.Err = "trace fused: " + err.Error()
			res.Micro = append(res.Micro, cell)
			continue
		}
		cell.FusedMillis = float64(fusD.Microseconds()) / 1000
		cell.UnfusedMillis = float64(unfD.Microseconds()) / 1000
		if fusD > 0 {
			cell.Speedup = unfD.Seconds() / fusD.Seconds()
		}
		cell.Match = fusOut == unfOut
		logf("%-15s chains=%-2d rowsmat %8d -> %-8d unfused=%7.2fms fused=%7.2fms speedup=%.2fx match=%v",
			m.name, cell.Chains, cell.RowsMatUnfused, cell.RowsMatFused,
			cell.UnfusedMillis, cell.FusedMillis, cell.Speedup, cell.Match)
		res.Micro = append(res.Micro, cell)
	}
	res.Geomean = fusionGeomean(res.Queries)
	return res, nil
}

// timeEvalPaired times one plan on both engines with the repeats
// interleaved (unfused, fused, unfused, fused, …): a slow phase of the
// host — GC, a noisy-neighbor burst on a shared vCPU — then lands on
// both sides instead of biasing whichever engine was timing. Best-of
// per side; each side's serialized output comes from its first run.
func timeEvalPaired(unfused, fused *engine.Engine, plan *algebra.Op, repeat int) (string, string, time.Duration, time.Duration, error) {
	var unfOut, fusOut string
	unfBest, fusBest := time.Duration(-1), time.Duration(-1)
	for i := 0; i < repeat; i++ {
		uo, ud, err := timeEval(unfused, plan, 1)
		if err != nil {
			return "", "", 0, 0, fmt.Errorf("unfused: %w", err)
		}
		fo, fd, err := timeEval(fused, plan, 1)
		if err != nil {
			return "", "", 0, 0, fmt.Errorf("fused: %w", err)
		}
		if unfBest < 0 || ud < unfBest {
			unfBest = ud
		}
		if fusBest < 0 || fd < fusBest {
			fusBest = fd
		}
		if i == 0 {
			unfOut, fusOut = uo, fo
		}
	}
	return unfOut, fusOut, unfBest, fusBest, nil
}

// fusedTraceCounts executes the plan once instrumented on the fused
// engine and returns the total rows materialized plus the number of
// distinct chains that actually ran fused (summation and set counting
// are order-free, so ranging over the stats map is fine).
func fusedTraceCounts(eng *engine.Engine, plan *algebra.Op) (int64, int, error) {
	_, tr, err := eng.EvalTrace(context.Background(), plan)
	if err != nil {
		return 0, 0, err
	}
	var total int64
	chains := map[int]bool{}
	for _, st := range tr.Stats {
		total += int64(st.RowsMat)
		if st.FusedChain > 0 {
			chains[st.FusedChain] = true
		}
	}
	return total, len(chains), nil
}

// fusionGeomean is the geometric-mean speedup over the error-free,
// matching queries that executed at least one fused chain. Cells with
// no chains (every chain input fit in a single batch and took the
// replay path) run byte-identical executor code on both sides — their
// ratios sample only the host's timing noise, not fusion.
func fusionGeomean(cells []FusionCell) float64 {
	sum, n := 0.0, 0
	for _, c := range cells {
		if c.Err == "" && c.Match && c.Speedup > 0 && c.Chains > 0 {
			sum += math.Log(c.Speedup)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// JSON renders the results as the BENCH_fusion.json payload.
func (r *FusionResults) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FusionTable renders the fused/unfused comparison as a human-readable
// table with per-column totals.
func (r *FusionResults) FusionTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fused-chain execution vs per-operator execution, identical plans (sf=%g, %s XML)\n",
		r.SF, fmtBytes(r.XMLBytes))
	fmt.Fprintf(&sb, "GOMAXPROCS=%d, NumCPU=%d\n\n", r.GOMAXPROCS, r.NumCPU)
	sb.WriteString("  Q  | chains | rowsmat unfused | rowsmat fused | unfused ms | fused ms | speedup | match\n")
	sb.WriteString("-----+--------+-----------------+---------------+------------+----------+---------+------\n")
	var rowsU, rowsF int64
	for _, c := range r.Queries {
		if c.Err != "" {
			fmt.Fprintf(&sb, " %3d | ERR: %s\n", c.Query, c.Err)
			continue
		}
		fmt.Fprintf(&sb, " %3d | %6d | %15d | %13d | %10.2f | %8.2f | %6.2fx | %v\n",
			c.Query, c.Chains, c.RowsMatUnfused, c.RowsMatFused,
			c.UnfusedMillis, c.FusedMillis, c.Speedup, c.Match)
		rowsU += c.RowsMatUnfused
		rowsF += c.RowsMatFused
	}
	if rowsU > 0 {
		if rowsF == rowsU {
			fmt.Fprintf(&sb, "\ntotal rows materialized: %d -> %d (unchanged: gathers sit at breaker boundaries in both modes)\n",
				rowsU, rowsF)
		} else {
			fmt.Fprintf(&sb, "\ntotal rows materialized: %d -> %d (%.1f%% less)\n",
				rowsU, rowsF, 100*float64(rowsU-rowsF)/float64(rowsU))
		}
	}
	fmt.Fprintf(&sb, "geomean speedup (queries that executed fused chains): %.2fx\n", r.Geomean)
	if len(r.Micro) > 0 {
		sb.WriteString("\nrange-pipeline microbenchmarks (chain-dominated plans — fusion's best case):\n")
		sb.WriteString("      name      | chains | rowsmat unfused | rowsmat fused | unfused ms | fused ms | speedup | match\n")
		sb.WriteString("----------------+--------+-----------------+---------------+------------+----------+---------+------\n")
		for _, c := range r.Micro {
			if c.Err != "" {
				fmt.Fprintf(&sb, " %-14s | ERR: %s\n", c.Name, c.Err)
				continue
			}
			fmt.Fprintf(&sb, " %-14s | %6d | %15d | %13d | %10.2f | %8.2f | %6.2fx | %v\n",
				c.Name, c.Chains, c.RowsMatUnfused, c.RowsMatFused,
				c.UnfusedMillis, c.FusedMillis, c.Speedup, c.Match)
		}
	}
	return sb.String()
}
