package bench

import (
	"fmt"
	"math"
	"strings"
)

// Table3 renders the measurements the way the paper's Table 3 does: one
// row per query, per instance size a baseline column ("X-Hive" in the
// paper, navdom here) and a Pathfinder column, in seconds.
func (r *Results) Table3() string {
	var sb strings.Builder
	sb.WriteString("Table 3: query evaluation times (seconds) per XMark instance\n")
	sb.WriteString("         (Nav = navigational baseline, PF = Pathfinder; DNF = exceeded budget)\n\n")
	sb.WriteString("  Q  |")
	for _, inst := range r.Instances {
		fmt.Fprintf(&sb, "  sf=%-7g (%s)   |", inst.SF, fmtBytes(inst.XMLBytes))
	}
	sb.WriteString("\n     |")
	for range r.Instances {
		fmt.Fprintf(&sb, "  %8s  %8s |", "Nav", "PF")
	}
	sb.WriteString("\n")
	sb.WriteString(strings.Repeat("-", 6+len(r.Instances)*23) + "\n")
	for _, q := range r.Cfg.Queries {
		fmt.Fprintf(&sb, " %3d |", q)
		for _, inst := range r.Instances {
			nav := "-"
			if c, ok := inst.Nav[q]; ok {
				nav = c.String()
			}
			pf := "-"
			if c, ok := inst.PF[q]; ok {
				pf = c.String()
			}
			fmt.Fprintf(&sb, "  %8s  %8s |", nav, pf)
		}
		sb.WriteString("\n")
	}
	if r.Cfg.WithBaseline {
		sb.WriteString("\nSpeedups (baseline / Pathfinder) at the largest completed size:\n")
		for _, q := range r.Cfg.Queries {
			for i := len(r.Instances) - 1; i >= 0; i-- {
				inst := r.Instances[i]
				nc, pc := inst.Nav[q], inst.PF[q]
				if nc.DNF && !pc.DNF && pc.Err == "" {
					fmt.Fprintf(&sb, "  Q%-2d sf=%g: baseline DNF, Pathfinder %.3fs\n",
						q, inst.SF, pc.D.Seconds())
					break
				}
				if nc.Err == "" && pc.Err == "" && !nc.DNF && !pc.DNF && pc.D > 0 {
					fmt.Fprintf(&sb, "  Q%-2d sf=%g: %.1fx\n",
						q, inst.SF, nc.D.Seconds()/pc.D.Seconds())
					break
				}
			}
		}
	}
	return sb.String()
}

// Figure4 renders Pathfinder execution times normalized to the reference
// instance (the paper normalizes to the 110 MB instance; we use the middle
// size). A ~10x step per decade of scale factor indicates linear scaling;
// Q11/Q12 show the quadratic growth the paper explains.
func (r *Results) Figure4() string {
	if len(r.Instances) == 0 {
		return "no data"
	}
	ref := r.Instances[len(r.Instances)/2]
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: Pathfinder execution times normalized to sf=%g\n\n", ref.SF)
	sb.WriteString("  Q  |")
	for _, inst := range r.Instances {
		fmt.Fprintf(&sb, " sf=%-8g|", inst.SF)
	}
	sb.WriteString(" scaling\n")
	sb.WriteString(strings.Repeat("-", 6+len(r.Instances)*12+9) + "\n")
	for _, q := range r.Cfg.Queries {
		refCell := ref.PF[q]
		fmt.Fprintf(&sb, " %3d |", q)
		var ratios []float64
		for _, inst := range r.Instances {
			c := inst.PF[q]
			if c.DNF || c.Err != "" || refCell.DNF || refCell.Err != "" || refCell.D == 0 {
				fmt.Fprintf(&sb, " %9s |", c.String())
				continue
			}
			ratio := c.D.Seconds() / refCell.D.Seconds()
			ratios = append(ratios, ratio)
			fmt.Fprintf(&sb, " %9.3f |", ratio)
		}
		fmt.Fprintf(&sb, " %s\n", scalingLabel(r, q, ratios))
	}
	return sb.String()
}

// scalingLabel classifies the growth of a query's run time between the
// two largest completed instances: linear queries grow ~10x per factor-10
// size step, quadratic ones ~100x (§3.4: Q11/Q12). The smallest instances
// are ignored — entity-count floors and fixed compilation costs distort
// them. The threshold sits at the geometric midpoint between linear and
// quadratic growth.
func scalingLabel(r *Results, q int, ratios []float64) string {
	if len(ratios) < 2 {
		return "?"
	}
	last, prev := ratios[len(ratios)-1], ratios[len(ratios)-2]
	if prev <= 0 {
		return "?"
	}
	sfLast := r.Instances[len(r.Instances)-1].SF
	sfPrev := r.Instances[len(r.Instances)-2].SF
	decades := log10(sfLast / sfPrev)
	if decades <= 0 {
		return "?"
	}
	perDecade := pow(last/prev, 1/decades)
	if perDecade < 45 {
		return fmt.Sprintf("~linear (%.0fx/decade)", perDecade)
	}
	return fmt.Sprintf("super-linear (%.0fx/decade)", perDecade)
}

func log10(x float64) float64 { return math.Log10(x) }

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// Storage renders the §3.1 storage-overhead report.
func (r *Results) Storage() string {
	var sb strings.Builder
	sb.WriteString("Storage overhead (§3.1): relational encoding vs serialized XML\n\n")
	sb.WriteString("    sf    |   XML bytes | encoded bytes | ratio | nodes      | load time\n")
	sb.WriteString(strings.Repeat("-", 78) + "\n")
	for _, inst := range r.Instances {
		total := inst.Storage.Total()
		fmt.Fprintf(&sb, " %8g | %11s | %13s | %4.0f%% | %10d | %8.3fs\n",
			inst.SF, fmtBytes(inst.XMLBytes), fmtBytes(total),
			100*float64(total)/float64(inst.XMLBytes),
			inst.Storage.Nodes, inst.LoadPF.Seconds())
	}
	return sb.String()
}

// CSV renders the raw measurements machine-readably (one row per query ×
// size × engine), for external plotting of Table 3 / Figure 4.
func (r *Results) CSV() string {
	var sb strings.Builder
	sb.WriteString("query,sf,engine,seconds,dnf,xml_bytes,encoded_bytes\n")
	for _, inst := range r.Instances {
		for _, q := range r.Cfg.Queries {
			writeRow := func(engine string, c Cell, ok bool) {
				if !ok {
					return
				}
				fmt.Fprintf(&sb, "Q%d,%g,%s,%.6f,%t,%d,%d\n",
					q, inst.SF, engine, c.D.Seconds(), c.DNF,
					inst.XMLBytes, inst.Storage.Total())
			}
			c, ok := inst.PF[q]
			writeRow("pathfinder", c, ok)
			c, ok = inst.Nav[q]
			writeRow("baseline", c, ok)
		}
	}
	return sb.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
