package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/pfstore"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// StoreConfig controls the persistence benchmark: cold shred of an XMark
// instance versus save + reopen through the pfstore columnar format.
type StoreConfig struct {
	SF      float64 // instance size; 0 = 0.1
	Repeat  int     // timing repetitions, best-of; 0 = 3
	Dir     string  // scratch directory for the .pfc file; "" = a temp dir
	Queries []int   // verification queries; nil = {1, 6, 13, 19}
	Verbose func(format string, args ...any)
}

// StoreCheck is one verification query: the same plan evaluated on the
// freshly shredded store and on the reopened one, byte-compared.
type StoreCheck struct {
	Query int    `json:"query"`
	Match bool   `json:"results_match"`
	Err   string `json:"err,omitempty"`
}

// StoreResults is the content of BENCH_store.json.
type StoreResults struct {
	SF         float64      `json:"sf"`
	XMLBytes   int64        `json:"xml_bytes"`
	FileBytes  int64        `json:"file_bytes"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	CPUCaveat  string       `json:"cpu_caveat,omitempty"`
	Repeat     int          `json:"repeat"`
	ShredMs    float64      `json:"shred_ms"`       // cold parse + encode, best-of
	SaveMs     float64      `json:"save_ms"`        // one Save (includes fsync + rename)
	OpenMs     float64      `json:"open_ms"`        // reopen from disk, best-of
	Speedup    float64      `json:"reopen_speedup"` // shred_ms / open_ms
	Queries    []StoreCheck `json:"queries"`
	Match      bool         `json:"results_match"` // every check matched
}

// storeCPUCaveat explains why wall times recorded on this host are noisy,
// or returns "" when they are trustworthy. Unlike the morsel sweep the
// shred-vs-reopen comparison survives a single core — both sides
// time-slice the same CPU, so the ratio stays meaningful — but the
// absolute milliseconds must not be read as dedicated-hardware numbers.
func storeCPUCaveat(numCPU int) string {
	if numCPU <= 1 {
		return fmt.Sprintf("num_cpu=%d: single-CPU host; absolute wall times time-slice one core and are noisier than on dedicated hardware (the shred/reopen ratio remains comparable — both sides share the same core)", numCPU)
	}
	return ""
}

// bestOf runs f n times and returns the fastest wall-clock duration.
func bestOf(n int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// RunStore measures what the persistent store buys: the cost of shredding
// auction.xml from source (the price every cold start pays without a
// catalog) against reopening the same data from a .pfc file. A handful of
// XMark queries then run on both stores and byte-compare, so a fast
// reopen that decoded the wrong columns cannot pass.
func RunStore(cfg StoreConfig) (*StoreResults, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.1
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 3
	}
	if cfg.Queries == nil {
		cfg.Queries = []int{1, 6, 13, 19}
	}
	logf := cfg.Verbose
	if logf == nil {
		logf = func(string, ...any) {}
	}

	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pfstore-bench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	logf("generating XMark instance sf=%g ...", cfg.SF)
	doc := xmark.GenerateString(cfg.SF)
	res := &StoreResults{
		SF: cfg.SF, XMLBytes: int64(len(doc)), Repeat: cfg.Repeat,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	res.CPUCaveat = storeCPUCaveat(res.NumCPU)
	if res.CPUCaveat != "" {
		logf("WARNING: %s", res.CPUCaveat)
	}

	// Cold shred: what a catalog-less server does on every restart.
	var fresh *xenc.Store
	shred, err := bestOf(cfg.Repeat, func() error {
		s := xenc.NewStore()
		if _, err := s.LoadDocumentString("auction.xml", doc); err != nil {
			return err
		}
		fresh = s
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("shred sf %g: %w", cfg.SF, err)
	}
	res.ShredMs = float64(shred.Microseconds()) / 1000
	logf("cold shred  %10.2fms (best of %d)", res.ShredMs, cfg.Repeat)

	// Save once: the write side is paid per PUT, not per restart, so a
	// single timing is informative enough.
	path := filepath.Join(dir, "auction.pfc")
	start := time.Now()
	if err := pfstore.Save(path, fresh, "auction", 1); err != nil {
		return nil, fmt.Errorf("save: %w", err)
	}
	res.SaveMs = float64(time.Since(start).Microseconds()) / 1000
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	res.FileBytes = fi.Size()
	logf("save        %10.2fms (%s on disk)", res.SaveMs, fmtBytes(res.FileBytes))

	// Reopen: what the same restart costs with the catalog in place.
	var reopened *xenc.Store
	open, err := bestOf(cfg.Repeat, func() error {
		s, _, err := pfstore.Open(path)
		if err != nil {
			return err
		}
		reopened = s
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	res.OpenMs = float64(open.Microseconds()) / 1000
	if open > 0 {
		res.Speedup = shred.Seconds() / open.Seconds()
	}
	logf("reopen      %10.2fms (best of %d) -> %.1fx faster than shredding", res.OpenMs, cfg.Repeat, res.Speedup)

	// Differential verification on both stores.
	res.Match = true
	freshEng := engine.NewWithConfig(fresh, engine.Config{Workers: 1, Check: true})
	reopEng := engine.NewWithConfig(reopened, engine.Config{Workers: 1, Check: true})
	for _, q := range cfg.Queries {
		check := StoreCheck{Query: q}
		plan, _, err := core.CompileQuery(xmark.Query(q), xqcore.Options{ContextDoc: "auction.xml"})
		if err == nil {
			plan, err = opt.Optimize(plan)
		}
		if err != nil {
			check.Err = err.Error()
			res.Match = false
			res.Queries = append(res.Queries, check)
			continue
		}
		want, _, wantErr := timeEval(freshEng, plan, 1)
		got, _, gotErr := timeEval(reopEng, plan, 1)
		switch {
		case wantErr != nil || gotErr != nil:
			check.Err = fmt.Sprintf("fresh: %v, reopened: %v", wantErr, gotErr)
		default:
			check.Match = got == want
		}
		if !check.Match {
			res.Match = false
		}
		logf("Q%-2d match=%v", q, check.Match)
		res.Queries = append(res.Queries, check)
	}
	return res, nil
}

// JSON renders the results as the BENCH_store.json payload.
func (r *StoreResults) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// StoreTable renders the measurement as a human-readable summary.
func (r *StoreResults) StoreTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Persistent store: cold shred vs reopen (sf=%g, %s XML, %s on disk)\n",
		r.SF, fmtBytes(r.XMLBytes), fmtBytes(r.FileBytes))
	fmt.Fprintf(&sb, "GOMAXPROCS=%d, NumCPU=%d, best of %d\n", r.GOMAXPROCS, r.NumCPU, r.Repeat)
	if r.CPUCaveat != "" {
		fmt.Fprintf(&sb, "!! %s\n", r.CPUCaveat)
	}
	fmt.Fprintf(&sb, "\n  cold shred (parse + encode) : %10.2f ms\n", r.ShredMs)
	fmt.Fprintf(&sb, "  save (.pfc write + rename)  : %10.2f ms\n", r.SaveMs)
	fmt.Fprintf(&sb, "  reopen (.pfc -> columns)    : %10.2f ms\n", r.OpenMs)
	fmt.Fprintf(&sb, "  reopen speedup              : %10.1f x\n", r.Speedup)
	for _, c := range r.Queries {
		if c.Err != "" {
			fmt.Fprintf(&sb, "  Q%-2d ERR: %s\n", c.Query, c.Err)
			continue
		}
		fmt.Fprintf(&sb, "  Q%-2d results match: %v\n", c.Query, c.Match)
	}
	return sb.String()
}
