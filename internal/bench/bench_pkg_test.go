package bench

import (
	"strings"
	"testing"
	"time"
)

func TestRunTinyBenchmark(t *testing.T) {
	res, err := Run(Config{
		SFs:          []float64{0.001, 0.002},
		Queries:      []int{1, 6, 8, 11},
		Budget:       20 * time.Second,
		WithBaseline: true,
		Optimize:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 2 {
		t.Fatalf("instances = %d", len(res.Instances))
	}
	for _, inst := range res.Instances {
		for _, q := range []int{1, 6, 8, 11} {
			pf := inst.PF[q]
			if pf.Err != "" {
				t.Errorf("sf=%g Q%d pathfinder error: %s", inst.SF, q, pf.Err)
			}
			nav := inst.Nav[q]
			if nav.Err != "" {
				t.Errorf("sf=%g Q%d baseline error: %s", inst.SF, q, nav.Err)
			}
		}
		if inst.Storage.Nodes == 0 || inst.XMLBytes == 0 {
			t.Error("storage report missing")
		}
	}
	t3 := res.Table3()
	for _, want := range []string{"Table 3", "Nav", "PF", " 11 |"} {
		if !strings.Contains(t3, want) {
			t.Errorf("table3 missing %q:\n%s", want, t3)
		}
	}
	f4 := res.Figure4()
	if !strings.Contains(f4, "normalized to sf=0.002") {
		t.Errorf("figure4 reference wrong:\n%s", f4)
	}
	st := res.Storage()
	if !strings.Contains(st, "ratio") {
		t.Errorf("storage report:\n%s", st)
	}
}

func TestDNFPropagation(t *testing.T) {
	// An absurdly small budget forces DNF at the first size and the skip
	// at the second.
	res, err := Run(Config{
		SFs:          []float64{0.002, 0.004},
		Queries:      []int{10},
		Budget:       1 * time.Nanosecond,
		WithBaseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Instances[0].PF[10]
	second := res.Instances[1].PF[10]
	if !first.DNF || !second.DNF {
		t.Errorf("expected DNF at both sizes: %+v %+v", first, second)
	}
	// The second size must have been skipped (recorded with zero time).
	if second.D != 0 {
		t.Errorf("second size should be skipped, ran %v", second.D)
	}
	if s := first.String(); s != "DNF" {
		t.Errorf("cell rendering = %q", s)
	}
}

func TestCSVOutput(t *testing.T) {
	res, err := Run(Config{
		SFs:          []float64{0.001},
		Queries:      []int{1},
		Budget:       30 * time.Second,
		WithBaseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 { // header + pathfinder + baseline
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "query,sf,engine") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(csv, "Q1,0.001,pathfinder,") ||
		!strings.Contains(csv, "Q1,0.001,baseline,") {
		t.Errorf("rows missing:\n%s", csv)
	}
}

func TestCellString(t *testing.T) {
	if (Cell{D: 1500 * time.Millisecond}).String() != "1.500" {
		t.Error("seconds rendering")
	}
	if (Cell{Err: "x"}).String() != "ERR" {
		t.Error("error rendering")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2 << 10: "2.0KB",
		3 << 20: "3.0MB",
		1 << 30: "1.0GB",
	}
	for n, want := range cases {
		if got := fmtBytes(n); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRunMorselTiny(t *testing.T) {
	res, err := RunMorsel(MorselConfig{
		SF:         0.005,
		Queries:    []int{1, 8, 10},
		Sweep:      []int{2},
		Repeat:     1,
		MorselRows: 64, // force splits even on this tiny instance
		Optimize:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Baseline) != 3 || len(res.Sweeps) != 1 {
		t.Fatalf("shape: baseline=%d sweeps=%d", len(res.Baseline), len(res.Sweeps))
	}
	split := 0
	for _, c := range res.Sweeps[0].Queries {
		if c.Err != "" {
			t.Errorf("Q%d: %s", c.Query, c.Err)
			continue
		}
		if !c.Match {
			t.Errorf("Q%d: morsel output differs from baseline", c.Query)
		}
		if c.SplitOps > 0 {
			split++
			if c.Morsels <= c.SplitOps {
				t.Errorf("Q%d: morsels=%d for %d split ops", c.Query, c.Morsels, c.SplitOps)
			}
		}
	}
	if split == 0 {
		t.Error("no query split any operator despite MorselRows=64")
	}
	table := res.MorselTable()
	for _, want := range []string{"workers=2", "geomean", "morsels"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestRunPlanTiny(t *testing.T) {
	res, err := RunPlan(PlanConfig{
		SF:      0.005,
		Queries: []int{1, 8, 10},
		Repeat:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 3 {
		t.Fatalf("shape: %d cells", len(res.Queries))
	}
	for _, c := range res.Queries {
		if c.Err != "" {
			t.Errorf("Q%d: %s", c.Query, c.Err)
			continue
		}
		if !c.Match {
			t.Errorf("Q%d: pipeline output differs from peephole", c.Query)
		}
		if c.OpsAfter >= c.OpsBefore {
			t.Errorf("Q%d: pipeline saved nothing: %d -> %d", c.Query, c.OpsBefore, c.OpsAfter)
		}
		if c.Rounds < 1 {
			t.Errorf("Q%d: trace shows no pipeline rounds", c.Query)
		}
		if c.RowsMatBefore <= 0 || c.RowsMatAfter <= 0 {
			t.Errorf("Q%d: rows-materialized not recorded (%d, %d)", c.Query, c.RowsMatBefore, c.RowsMatAfter)
		}
	}
	table := res.PlanTable()
	for _, want := range []string{"ops before", "rowsmat", "total operators"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
