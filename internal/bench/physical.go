package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// RunPhysical compares the legacy sequential interpreter (the pre-lowering
// recursive evaluator over the logical algebra) against the physical-plan
// executor with the parallel scheduler — the end-to-end win of typed
// kernels + selection-vector late materialization + parallel dispatch.
// The result reuses the ParallelResults schema: seq_ms is the legacy
// baseline, par_ms the physical executor, and both outputs are compared
// byte-for-byte so the benchmark doubles as a differential check.
func RunPhysical(cfg ParallelConfig) (*ParallelResults, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.1
	}
	if cfg.Queries == nil {
		for n := 1; n <= xmark.NumQueries; n++ {
			cfg.Queries = append(cfg.Queries, n)
		}
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	logf := cfg.Verbose
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("generating XMark instance sf=%g ...", cfg.SF)
	doc := xmark.GenerateString(cfg.SF)
	res := &ParallelResults{
		SF: cfg.SF, XMLBytes: int64(len(doc)),
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Workers: cfg.Workers,
	}

	store := xenc.NewStore()
	if _, err := store.LoadDocumentString("xmark.xml", doc); err != nil {
		return nil, fmt.Errorf("sf %g: %w", cfg.SF, err)
	}
	legacyEng := engine.NewWithConfig(store, engine.Config{Workers: 1, Legacy: true})
	physEng := engine.NewWithConfig(store, engine.Config{Workers: cfg.Workers, SeqThreshold: -1})

	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for _, q := range cfg.Queries {
		cell := ParallelCell{Query: q}
		plan, _, err := core.CompileQuery(xmark.Query(q), opts)
		if err == nil && cfg.Optimize {
			plan, err = opt.Optimize(plan)
		}
		if err != nil {
			cell.Err = err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		cell.PlanOps = algebra.CountOps(plan)
		cell.MaxWidth = algebra.MaxWidth(plan)

		legOut, legD, err := timeEval(legacyEng, plan, cfg.Repeat)
		if err != nil {
			cell.Err = "legacy: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		physOut, physD, err := timeEval(physEng, plan, cfg.Repeat)
		if err != nil {
			cell.Err = "physical: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		cell.SeqMillis = float64(legD.Microseconds()) / 1000
		cell.ParMillis = float64(physD.Microseconds()) / 1000
		if physD > 0 {
			cell.Speedup = legD.Seconds() / physD.Seconds()
		}
		cell.Match = legOut == physOut
		logf("Q%-2d ops=%-3d width=%-2d legacy=%7.2fms phys=%7.2fms speedup=%.2fx match=%v",
			q, cell.PlanOps, cell.MaxWidth, cell.SeqMillis, cell.ParMillis, cell.Speedup, cell.Match)
		res.Queries = append(res.Queries, cell)
	}
	return res, nil
}

// Geomean returns the geometric-mean speedup over the error-free queries
// (0 when none completed).
func (r *ParallelResults) Geomean() float64 {
	sum, n := 0.0, 0
	for _, c := range r.Queries {
		if c.Err != "" || c.Speedup <= 0 {
			continue
		}
		sum += math.Log(c.Speedup)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// PhysicalTable renders the legacy-vs-physical comparison as a
// human-readable table.
func (r *ParallelResults) PhysicalTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Physical-plan executor vs legacy sequential interpreter (sf=%g, %s XML)\n",
		r.SF, fmtBytes(r.XMLBytes))
	fmt.Fprintf(&sb, "workers=%d, GOMAXPROCS=%d, NumCPU=%d\n\n", r.Workers, r.GOMAXPROCS, r.NumCPU)
	sb.WriteString("  Q  |  ops | width | legacy ms |  phys ms | speedup | match\n")
	sb.WriteString("-----+------+-------+-----------+----------+---------+------\n")
	for _, c := range r.Queries {
		if c.Err != "" {
			fmt.Fprintf(&sb, " %3d | ERR: %s\n", c.Query, c.Err)
			continue
		}
		fmt.Fprintf(&sb, " %3d | %4d | %5d | %9.2f | %8.2f | %6.2fx | %v\n",
			c.Query, c.PlanOps, c.MaxWidth, c.SeqMillis, c.ParMillis, c.Speedup, c.Match)
	}
	fmt.Fprintf(&sb, "\ngeomean speedup: %.2fx\n", r.Geomean())
	return sb.String()
}
