package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// PlanConfig configures RunPlan.
type PlanConfig struct {
	SF      float64 // XMark scale factor (default 0.1)
	Queries []int   // query numbers (default all 20)
	Repeat  int     // timing repetitions, best-of (default 3)
	Verbose func(format string, args ...any)
}

// PlanCell records one query before and after the staged optimizer
// pipeline: the peephole-optimized plan is "before", the full pipeline
// (normalize → analyze → isolate → properties → cleanup) is "after".
type PlanCell struct {
	Query     int `json:"query"`
	OpsBefore int `json:"ops_before"` // operator count, single-shot peephole
	OpsAfter  int `json:"ops_after"`  // operator count, staged pipeline
	Rounds    int `json:"rounds"`     // fixed-point rounds the pipeline ran

	// Rows materialized (gathered/copied rather than scanned in place)
	// by the physical executor across all kernels of the plan — the
	// execution-side payoff of collapsing numbering towers.
	RowsMatBefore int64 `json:"rows_mat_before"`
	RowsMatAfter  int64 `json:"rows_mat_after"`

	BeforeMillis float64 `json:"before_ms"`
	AfterMillis  float64 `json:"after_ms"`
	Match        bool    `json:"match"` // outputs byte-identical
	Err          string  `json:"err,omitempty"`
}

// PlanResults is the content of BENCH_plan.json.
type PlanResults struct {
	SF         float64    `json:"sf"`
	XMLBytes   int64      `json:"xml_bytes"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	CPUCaveat  string     `json:"cpu_caveat,omitempty"`
	Queries    []PlanCell `json:"queries"`
}

// planCPUCaveat explains why wall times recorded on this host are noisy,
// or returns "" when they are trustworthy. The operator counts and
// rows-materialized columns are exact plan/execution facts and survive
// any host; only the milliseconds need the caveat — on one core both
// plans time-slice the same CPU, so the before/after ratio stays
// comparable but the absolute numbers are not dedicated-hardware ones.
func planCPUCaveat(numCPU int) string {
	if numCPU <= 1 {
		return fmt.Sprintf("num_cpu=%d: single-CPU host; absolute wall times time-slice one core and are noisier than on dedicated hardware (operator counts and rows-materialized are exact; the before/after time ratio remains comparable)", numCPU)
	}
	return ""
}

// RunPlan measures what the staged optimizer pipeline buys over the
// single-shot peephole: per-query operator counts and rows materialized
// by the physical executor, before vs after, with both plans executed
// and their serialized outputs compared byte-for-byte so the benchmark
// doubles as a differential check of the isolation rewrites.
func RunPlan(cfg PlanConfig) (*PlanResults, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.1
	}
	if cfg.Queries == nil {
		for n := 1; n <= xmark.NumQueries; n++ {
			cfg.Queries = append(cfg.Queries, n)
		}
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 3
	}
	logf := cfg.Verbose
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("generating XMark instance sf=%g ...", cfg.SF)
	doc := xmark.GenerateString(cfg.SF)
	res := &PlanResults{
		SF: cfg.SF, XMLBytes: int64(len(doc)),
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	res.CPUCaveat = planCPUCaveat(res.NumCPU)
	if res.CPUCaveat != "" {
		logf("caveat: %s", res.CPUCaveat)
	}

	store := xenc.NewStore()
	if _, err := store.LoadDocumentString("xmark.xml", doc); err != nil {
		return nil, fmt.Errorf("sf %g: %w", cfg.SF, err)
	}
	eng := engine.NewWithConfig(store, engine.Config{Workers: 1})

	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for _, q := range cfg.Queries {
		cell := PlanCell{Query: q}
		plan, _, err := core.CompileQuery(xmark.Query(q), opts)
		if err != nil {
			cell.Err = err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		before, err := opt.Peephole(plan)
		if err != nil {
			cell.Err = "peephole: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		pres, err := opt.Pipeline(plan)
		if err != nil {
			cell.Err = "pipeline: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		cell.OpsBefore = algebra.CountOps(before)
		cell.OpsAfter = algebra.CountOps(pres.Plan)
		for _, s := range pres.Trace {
			if s.Round > cell.Rounds {
				cell.Rounds = s.Round
			}
		}

		befOut, befD, err := timeEval(eng, before, cfg.Repeat)
		if err != nil {
			cell.Err = "exec before: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		aftOut, aftD, err := timeEval(eng, pres.Plan, cfg.Repeat)
		if err != nil {
			cell.Err = "exec after: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		// Rows materialized come from an instrumented (traced) run; its
		// wall time is not comparable, so timing stays with timeEval.
		if cell.RowsMatBefore, err = rowsMaterialized(eng, before); err != nil {
			cell.Err = "trace before: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		if cell.RowsMatAfter, err = rowsMaterialized(eng, pres.Plan); err != nil {
			cell.Err = "trace after: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		cell.BeforeMillis = float64(befD.Microseconds()) / 1000
		cell.AfterMillis = float64(aftD.Microseconds()) / 1000
		cell.Match = befOut == aftOut
		logf("Q%-2d ops %3d -> %-3d rounds=%d rowsmat %8d -> %-8d before=%7.2fms after=%7.2fms match=%v",
			q, cell.OpsBefore, cell.OpsAfter, cell.Rounds,
			cell.RowsMatBefore, cell.RowsMatAfter,
			cell.BeforeMillis, cell.AfterMillis, cell.Match)
		res.Queries = append(res.Queries, cell)
	}
	return res, nil
}

// rowsMaterialized executes the plan once with full instrumentation and
// sums the rows every kernel materialized (summation is order-free, so
// ranging over the stats map is fine).
func rowsMaterialized(eng *engine.Engine, plan *algebra.Op) (int64, error) {
	_, tr, err := eng.EvalTrace(context.Background(), plan)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, st := range tr.Stats {
		total += int64(st.RowsMat)
	}
	return total, nil
}

// JSON renders the results as the BENCH_plan.json payload.
func (r *PlanResults) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// PlanTable renders the before/after comparison as a human-readable
// table with per-column totals.
func (r *PlanResults) PlanTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Staged pipeline vs single-shot peephole plans (sf=%g, %s XML)\n",
		r.SF, fmtBytes(r.XMLBytes))
	fmt.Fprintf(&sb, "GOMAXPROCS=%d, NumCPU=%d\n\n", r.GOMAXPROCS, r.NumCPU)
	sb.WriteString("  Q  | ops before | ops after | saved | rounds | rowsmat before | rowsmat after | before ms | after ms | match\n")
	sb.WriteString("-----+------------+-----------+-------+--------+----------------+---------------+-----------+----------+------\n")
	var opsB, opsA, rowsB, rowsA int64
	for _, c := range r.Queries {
		if c.Err != "" {
			fmt.Fprintf(&sb, " %3d | ERR: %s\n", c.Query, c.Err)
			continue
		}
		fmt.Fprintf(&sb, " %3d | %10d | %9d | %5d | %6d | %14d | %13d | %9.2f | %8.2f | %v\n",
			c.Query, c.OpsBefore, c.OpsAfter, c.OpsBefore-c.OpsAfter, c.Rounds,
			c.RowsMatBefore, c.RowsMatAfter, c.BeforeMillis, c.AfterMillis, c.Match)
		opsB += int64(c.OpsBefore)
		opsA += int64(c.OpsAfter)
		rowsB += c.RowsMatBefore
		rowsA += c.RowsMatAfter
	}
	fmt.Fprintf(&sb, "\ntotal operators: %d -> %d (%d removed)\n", opsB, opsA, opsB-opsA)
	if rowsB > 0 {
		fmt.Fprintf(&sb, "total rows materialized: %d -> %d (%.1f%% less)\n",
			rowsB, rowsA, 100*float64(rowsB-rowsA)/float64(rowsB))
	}
	return sb.String()
}
