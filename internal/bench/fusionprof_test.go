package bench

import (
	"fmt"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

func benchMicroPlan(b *testing.B, q string, noFusion bool) {
	b.Helper()
	plan, _, err := core.CompileQuery(q, xqcore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err = opt.Optimize(plan)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: 1, NoFusion: noFusion})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Eval(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusionMicro(b *testing.B) {
	for _, m := range fusionMicro {
		q := fmt.Sprintf(m.query, 500_000)
		b.Run(m.name+"/fused", func(b *testing.B) { benchMicroPlan(b, q, false) })
		b.Run(m.name+"/unfused", func(b *testing.B) { benchMicroPlan(b, q, true) })
	}
}
