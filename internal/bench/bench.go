// Package bench implements the experiment harness reproducing the paper's
// evaluation (§3): Table 3 (XMark query times, Pathfinder vs the
// navigational baseline, across instance sizes), Figure 4 (execution times
// normalized to a reference size), and the §3.1 storage-overhead numbers.
package bench

import (
	"fmt"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/navdom"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// Config controls an XMark benchmark run.
type Config struct {
	SFs          []float64     // instance sizes (the paper uses factor-10 steps)
	Queries      []int         // query numbers; nil = all 20
	Budget       time.Duration // per-query time budget; exceeding it records DNF
	WithBaseline bool          // also run the navigational baseline
	Optimize     bool          // run plans through the peephole optimizer
	Workers      int           // engine worker pool size; 0 = GOMAXPROCS, 1 = sequential
	Verbose      func(format string, args ...any)
}

// Cell is one measurement.
type Cell struct {
	D   time.Duration
	DNF bool // did not finish within the budget (or was skipped after a smaller size DNFed)
	Err string
}

func (c Cell) String() string {
	if c.Err != "" {
		return "ERR"
	}
	if c.DNF {
		return "DNF"
	}
	return fmt.Sprintf("%.3f", c.D.Seconds())
}

// Instance bundles the per-size measurements.
type Instance struct {
	SF       float64
	XMLBytes int64
	Storage  xenc.StorageReport
	LoadPF   time.Duration
	LoadNav  time.Duration
	PF       map[int]Cell // query → measurement
	Nav      map[int]Cell
}

// Results is a full benchmark run.
type Results struct {
	Cfg       Config
	Instances []*Instance
}

// Run executes the configured benchmark.
func Run(cfg Config) (*Results, error) {
	if cfg.Queries == nil {
		for n := 1; n <= xmark.NumQueries; n++ {
			cfg.Queries = append(cfg.Queries, n)
		}
	}
	if cfg.Budget == 0 {
		cfg.Budget = 10 * time.Second
	}
	logf := cfg.Verbose
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Results{Cfg: cfg}
	opts := xqcore.Options{ContextDoc: "xmark.xml"}

	// DNF propagation: once a query blows its budget at one size, larger
	// sizes are recorded as DNF without running (the harness equivalent of
	// the paper's DNF entries).
	dnfPF := map[int]bool{}
	dnfNav := map[int]bool{}

	for _, sf := range cfg.SFs {
		logf("generating XMark instance sf=%g ...", sf)
		doc := xmark.GenerateString(sf)
		inst := &Instance{SF: sf, XMLBytes: int64(len(doc)),
			PF: map[int]Cell{}, Nav: map[int]Cell{}}

		start := time.Now()
		eng := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: cfg.Workers})
		if _, err := eng.Store.LoadDocumentString("xmark.xml", doc); err != nil {
			return nil, fmt.Errorf("sf %g: %w", sf, err)
		}
		inst.LoadPF = time.Since(start)
		inst.Storage = eng.Store.Report()

		var db *navdom.DB
		if cfg.WithBaseline {
			start = time.Now()
			db = navdom.NewDB()
			if _, err := db.LoadString("xmark.xml", doc); err != nil {
				return nil, fmt.Errorf("sf %g: %w", sf, err)
			}
			// The paper tuned X-Hive with value indices on the
			// buyer/@person and profile/@income paths (§3.2).
			db.AddValueIndex("buyer", "person")
			db.AddValueIndex("profile", "income")
			inst.LoadNav = time.Since(start)
		}

		for _, q := range cfg.Queries {
			query := xmark.Query(q)
			if dnfPF[q] {
				inst.PF[q] = Cell{DNF: true}
			} else {
				cell := runPF(eng, query, opts, cfg.Budget, cfg.Optimize)
				inst.PF[q] = cell
				if cell.DNF {
					dnfPF[q] = true
				}
				logf("sf=%g Q%d pathfinder: %s", sf, q, cell)
			}
			if !cfg.WithBaseline {
				continue
			}
			if dnfNav[q] {
				inst.Nav[q] = Cell{DNF: true}
			} else {
				cell := runNav(db, query, opts, cfg.Budget)
				inst.Nav[q] = cell
				if cell.DNF {
					dnfNav[q] = true
				}
				logf("sf=%g Q%d baseline:   %s", sf, q, cell)
			}
		}
		res.Instances = append(res.Instances, inst)
	}
	return res, nil
}

func runPF(eng *engine.Engine, query string, opts xqcore.Options, budget time.Duration, optimize bool) Cell {
	start := time.Now()
	eng.Deadline = start.Add(budget)
	defer func() { eng.Deadline = time.Time{} }()
	plan, _, err := core.CompileQuery(query, opts)
	if err != nil {
		return Cell{Err: err.Error()}
	}
	if optimize {
		if plan, err = opt.Optimize(plan); err != nil {
			return Cell{Err: err.Error()}
		}
	}
	res, err := eng.Eval(plan)
	if err != nil {
		if time.Now().After(eng.Deadline) {
			return Cell{DNF: true, D: time.Since(start)}
		}
		return Cell{Err: err.Error()}
	}
	if _, err := serialize.Result(eng.Store, res); err != nil {
		return Cell{Err: err.Error()}
	}
	return Cell{D: time.Since(start)}
}

func runNav(db *navdom.DB, query string, opts xqcore.Options, budget time.Duration) Cell {
	start := time.Now()
	ip := navdom.NewInterp(db)
	ip.Deadline = start.Add(budget)
	if _, err := ip.Run(query, opts); err != nil {
		if time.Now().After(ip.Deadline) {
			return Cell{DNF: true, D: time.Since(start)}
		}
		return Cell{Err: err.Error()}
	}
	return Cell{D: time.Since(start)}
}
