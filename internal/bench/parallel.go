package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// ParallelConfig controls a sequential-vs-parallel scheduler comparison
// over the XMark workload.
type ParallelConfig struct {
	SF       float64 // instance size; 0 = 0.1
	Queries  []int   // query numbers; nil = all 20
	Workers  int     // parallel pool size; 0 = GOMAXPROCS
	Repeat   int     // timing repetitions, best-of; 0 = 3
	Optimize bool    // run plans through the peephole optimizer
	Verbose  func(format string, args ...any)
}

// ParallelCell is one query's measurement pair.
type ParallelCell struct {
	Query     int     `json:"query"`
	PlanOps   int     `json:"plan_ops"`
	MaxWidth  int     `json:"max_width"` // widest antichain layer: the plan's parallelism ceiling
	SeqMillis float64 `json:"seq_ms"`
	ParMillis float64 `json:"par_ms"`
	Speedup   float64 `json:"speedup"`
	Match     bool    `json:"results_match"` // differential guard: serialized outputs byte-identical
	Err       string  `json:"err,omitempty"`
}

// ParallelResults is the full comparison run — the content of
// BENCH_parallel.json.
type ParallelResults struct {
	SF         float64        `json:"sf"`
	XMLBytes   int64          `json:"xml_bytes"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Workers    int            `json:"workers"`
	Queries    []ParallelCell `json:"queries"`
}

// RunParallel generates one XMark instance and times every configured
// query twice: on the sequential recursive evaluator (Workers=1) and on
// the parallel DAG scheduler with the fallback disabled. Both results are
// serialized and compared byte-for-byte, so the benchmark doubles as a
// differential check.
func RunParallel(cfg ParallelConfig) (*ParallelResults, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.1
	}
	if cfg.Queries == nil {
		for n := 1; n <= xmark.NumQueries; n++ {
			cfg.Queries = append(cfg.Queries, n)
		}
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	logf := cfg.Verbose
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("generating XMark instance sf=%g ...", cfg.SF)
	doc := xmark.GenerateString(cfg.SF)
	res := &ParallelResults{
		SF: cfg.SF, XMLBytes: int64(len(doc)),
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Workers: cfg.Workers,
	}

	store := xenc.NewStore()
	if _, err := store.LoadDocumentString("xmark.xml", doc); err != nil {
		return nil, fmt.Errorf("sf %g: %w", cfg.SF, err)
	}
	seqEng := engine.NewWithConfig(store, engine.Config{Workers: 1})
	parEng := engine.NewWithConfig(store, engine.Config{Workers: cfg.Workers, SeqThreshold: -1})

	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for _, q := range cfg.Queries {
		cell := ParallelCell{Query: q}
		plan, _, err := core.CompileQuery(xmark.Query(q), opts)
		if err == nil && cfg.Optimize {
			plan, err = opt.Optimize(plan)
		}
		if err != nil {
			cell.Err = err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		cell.PlanOps = algebra.CountOps(plan)
		cell.MaxWidth = algebra.MaxWidth(plan)

		seqOut, seqD, err := timeEval(seqEng, plan, cfg.Repeat)
		if err != nil {
			cell.Err = "sequential: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		parOut, parD, err := timeEval(parEng, plan, cfg.Repeat)
		if err != nil {
			cell.Err = "parallel: " + err.Error()
			res.Queries = append(res.Queries, cell)
			continue
		}
		cell.SeqMillis = float64(seqD.Microseconds()) / 1000
		cell.ParMillis = float64(parD.Microseconds()) / 1000
		if parD > 0 {
			cell.Speedup = seqD.Seconds() / parD.Seconds()
		}
		cell.Match = seqOut == parOut
		logf("Q%-2d ops=%-3d width=%-2d seq=%7.2fms par=%7.2fms speedup=%.2fx match=%v",
			q, cell.PlanOps, cell.MaxWidth, cell.SeqMillis, cell.ParMillis, cell.Speedup, cell.Match)
		res.Queries = append(res.Queries, cell)
	}
	return res, nil
}

// timeEval evaluates the plan repeat times and returns the serialized
// result of the first run plus the best wall time.
func timeEval(eng *engine.Engine, plan *algebra.Op, repeat int) (string, time.Duration, error) {
	var out string
	best := time.Duration(-1)
	for i := 0; i < repeat; i++ {
		start := time.Now()
		t, err := eng.Eval(plan)
		if err != nil {
			return "", 0, err
		}
		s, err := serialize.Result(eng.Store, t)
		if err != nil {
			return "", 0, err
		}
		d := time.Since(start)
		if best < 0 || d < best {
			best = d
		}
		if i == 0 {
			out = s
		}
	}
	return out, best, nil
}

// JSON renders the results as the BENCH_parallel.json payload.
func (r *ParallelResults) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParallelTable renders the comparison as a human-readable table.
func (r *ParallelResults) ParallelTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallel DAG scheduler vs sequential evaluator (sf=%g, %s XML)\n",
		r.SF, fmtBytes(r.XMLBytes))
	fmt.Fprintf(&sb, "workers=%d, GOMAXPROCS=%d, NumCPU=%d\n\n", r.Workers, r.GOMAXPROCS, r.NumCPU)
	sb.WriteString("  Q  |  ops | width |   seq ms |   par ms | speedup | match\n")
	sb.WriteString("-----+------+-------+----------+----------+---------+------\n")
	for _, c := range r.Queries {
		if c.Err != "" {
			fmt.Fprintf(&sb, " %3d | ERR: %s\n", c.Query, c.Err)
			continue
		}
		fmt.Fprintf(&sb, " %3d | %4d | %5d | %8.2f | %8.2f | %6.2fx | %v\n",
			c.Query, c.PlanOps, c.MaxWidth, c.SeqMillis, c.ParMillis, c.Speedup, c.Match)
	}
	return sb.String()
}
