package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// MorselConfig controls the intra-operator parallelism sweep: the same
// physical executor at worker count 1 (the baseline) and at each count in
// Sweep, all over one XMark instance.
type MorselConfig struct {
	SF         float64 // instance size; 0 = 0.1
	Queries    []int   // query numbers; nil = all 20
	Sweep      []int   // worker counts to sweep; nil = {2, 4, GOMAXPROCS}
	Repeat     int     // timing repetitions, best-of; 0 = 3
	MorselRows int     // morsel granularity; 0 = engine default
	GOMAXPROCS int     // when > 0, raise runtime.GOMAXPROCS first
	Optimize   bool    // run plans through the peephole optimizer
	Verbose    func(format string, args ...any)
}

// MorselCell is one query's measurement at one worker count.
type MorselCell struct {
	Query      int     `json:"query"`
	Millis     float64 `json:"ms"`
	Speedup    float64 `json:"speedup"` // vs the single-worker baseline
	Match      bool    `json:"results_match"`
	SplitOps   int     `json:"split_ops"`   // operators that ran as >1 morsel
	Morsels    int     `json:"morsels"`     // total morsels across split operators
	ParWorkers int     `json:"par_workers"` // largest morsel team observed
	Err        string  `json:"err,omitempty"`
}

// MorselSweep is one worker count's full query set.
type MorselSweep struct {
	Workers int          `json:"workers"`
	Queries []MorselCell `json:"queries"`
	Geomean float64      `json:"geomean_speedup"`
}

// MorselBaseCell is the single-worker baseline measurement for one query.
type MorselBaseCell struct {
	Query   int     `json:"query"`
	PlanOps int     `json:"plan_ops"`
	Millis  float64 `json:"ms"`
	Err     string  `json:"err,omitempty"`
}

// MorselResults is the content of BENCH_morsel.json.
type MorselResults struct {
	SF         float64          `json:"sf"`
	XMLBytes   int64            `json:"xml_bytes"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	CPUCaveat  string           `json:"cpu_caveat,omitempty"`
	MorselRows int              `json:"morsel_rows"`
	Baseline   []MorselBaseCell `json:"baseline_workers_1"`
	Sweeps     []MorselSweep    `json:"sweeps"`
}

// cpuCaveat explains why a sweep's speedups are not trustworthy on this
// host, or returns "" when they are. Morsel teams only overlap when the
// scheduler has both the logical processors (GOMAXPROCS) and the physical
// cores (NumCPU) to run them; at 1 of either, every "speedup" measured is
// scheduling noise around 1.0x and the numbers must not be read as the
// parallelism evaluation.
func cpuCaveat(gomaxprocs, numCPU int) string {
	switch {
	case gomaxprocs <= 1:
		return fmt.Sprintf("GOMAXPROCS=%d: morsel teams cannot overlap; speedups here are noise, not evidence (rerun with -gomaxprocs >= 2 on a multi-core host)", gomaxprocs)
	case numCPU <= 1:
		return fmt.Sprintf("num_cpu=%d: single-CPU host; worker teams time-slice one core, so speedups cap near 1.0x (rerun on a multi-core host)", numCPU)
	}
	return ""
}

// RunMorsel times every configured query on the physical executor at one
// worker (morsel parallelism structurally idle: a team of one never
// splits pay-off) and then at each swept worker count, byte-comparing
// every result against the baseline. An untimed traced evaluation per
// (query, workers) records how many operators split and into how many
// morsels — the per-query evidence that the parallel paths actually ran.
func RunMorsel(cfg MorselConfig) (*MorselResults, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.1
	}
	if cfg.Queries == nil {
		for n := 1; n <= xmark.NumQueries; n++ {
			cfg.Queries = append(cfg.Queries, n)
		}
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 3
	}
	if cfg.GOMAXPROCS > 0 {
		runtime.GOMAXPROCS(cfg.GOMAXPROCS)
	}
	if cfg.Sweep == nil {
		cfg.Sweep = []int{2, 4}
		if p := runtime.GOMAXPROCS(0); p > 4 {
			cfg.Sweep = append(cfg.Sweep, p)
		}
	}
	logf := cfg.Verbose
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("generating XMark instance sf=%g ...", cfg.SF)
	doc := xmark.GenerateString(cfg.SF)
	res := &MorselResults{
		SF: cfg.SF, XMLBytes: int64(len(doc)),
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		MorselRows: engine.DefaultMorselRows,
	}
	res.CPUCaveat = cpuCaveat(res.GOMAXPROCS, res.NumCPU)
	if res.CPUCaveat != "" {
		logf("WARNING: %s", res.CPUCaveat)
	}
	if cfg.MorselRows > 0 {
		res.MorselRows = cfg.MorselRows
	}

	store := xenc.NewStore()
	if _, err := store.LoadDocumentString("xmark.xml", doc); err != nil {
		return nil, fmt.Errorf("sf %g: %w", cfg.SF, err)
	}

	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	plans := make(map[int]*algebra.Op, len(cfg.Queries))
	baseOut := make(map[int]string, len(cfg.Queries))
	baseDur := make(map[int]float64, len(cfg.Queries))

	baseEng := engine.NewWithConfig(store, engine.Config{Workers: 1, SeqThreshold: -1, MorselRows: cfg.MorselRows})
	for _, q := range cfg.Queries {
		cell := MorselBaseCell{Query: q}
		plan, _, err := core.CompileQuery(xmark.Query(q), opts)
		if err == nil && cfg.Optimize {
			plan, err = opt.Optimize(plan)
		}
		if err != nil {
			cell.Err = err.Error()
			res.Baseline = append(res.Baseline, cell)
			continue
		}
		plans[q] = plan
		cell.PlanOps = algebra.CountOps(plan)
		out, d, err := timeEval(baseEng, plan, cfg.Repeat)
		if err != nil {
			cell.Err = err.Error()
			res.Baseline = append(res.Baseline, cell)
			continue
		}
		baseOut[q] = out
		cell.Millis = float64(d.Microseconds()) / 1000
		baseDur[q] = d.Seconds()
		logf("Q%-2d workers=1 %8.2fms (baseline)", q, cell.Millis)
		res.Baseline = append(res.Baseline, cell)
	}

	for _, w := range cfg.Sweep {
		sweep := MorselSweep{Workers: w}
		eng := engine.NewWithConfig(store, engine.Config{Workers: w, SeqThreshold: -1, MorselRows: cfg.MorselRows})
		for _, q := range cfg.Queries {
			cell := MorselCell{Query: q}
			plan, ok := plans[q]
			if _, timed := baseDur[q]; !ok || !timed {
				cell.Err = "baseline failed"
				sweep.Queries = append(sweep.Queries, cell)
				continue
			}
			out, d, err := timeEval(eng, plan, cfg.Repeat)
			if err != nil {
				cell.Err = err.Error()
				sweep.Queries = append(sweep.Queries, cell)
				continue
			}
			cell.Millis = float64(d.Microseconds()) / 1000
			if d > 0 {
				cell.Speedup = baseDur[q] / d.Seconds()
			}
			cell.Match = out == baseOut[q]
			// Untimed traced run: per-operator morsel accounting.
			if _, tr, err := eng.EvalTrace(context.Background(), plan); err == nil {
				for _, st := range tr.Stats {
					if st.Morsels > 1 {
						cell.SplitOps++
						cell.Morsels += st.Morsels
						if st.ParWorkers > cell.ParWorkers {
							cell.ParWorkers = st.ParWorkers
						}
					}
				}
			}
			logf("Q%-2d workers=%d %8.2fms speedup=%.2fx split_ops=%d morsels=%d match=%v",
				q, w, cell.Millis, cell.Speedup, cell.SplitOps, cell.Morsels, cell.Match)
			sweep.Queries = append(sweep.Queries, cell)
		}
		sweep.Geomean = morselGeomean(sweep.Queries)
		res.Sweeps = append(res.Sweeps, sweep)
	}
	return res, nil
}

func morselGeomean(cells []MorselCell) float64 {
	sum, n := 0.0, 0
	for _, c := range cells {
		if c.Err != "" || c.Speedup <= 0 {
			continue
		}
		sum += math.Log(c.Speedup)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// JSON renders the results as the BENCH_morsel.json payload.
func (r *MorselResults) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// MorselTable renders the sweep as a human-readable table.
func (r *MorselResults) MorselTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Morsel-driven intra-operator parallelism (sf=%g, %s XML)\n",
		r.SF, fmtBytes(r.XMLBytes))
	fmt.Fprintf(&sb, "GOMAXPROCS=%d, NumCPU=%d, morsel=%d rows\n", r.GOMAXPROCS, r.NumCPU, r.MorselRows)
	if r.CPUCaveat != "" {
		fmt.Fprintf(&sb, "!! %s\n", r.CPUCaveat)
	}
	base := make(map[int]float64, len(r.Baseline))
	for _, c := range r.Baseline {
		base[c.Query] = c.Millis
	}
	for _, s := range r.Sweeps {
		fmt.Fprintf(&sb, "\nworkers=%d\n", s.Workers)
		sb.WriteString("  Q  | base ms  |  par ms  | speedup | split ops | morsels | match\n")
		sb.WriteString("-----+----------+----------+---------+-----------+---------+------\n")
		for _, c := range s.Queries {
			if c.Err != "" {
				fmt.Fprintf(&sb, " %3d | ERR: %s\n", c.Query, c.Err)
				continue
			}
			fmt.Fprintf(&sb, " %3d | %8.2f | %8.2f | %6.2fx | %9d | %7d | %v\n",
				c.Query, base[c.Query], c.Millis, c.Speedup, c.SplitOps, c.Morsels, c.Match)
		}
		fmt.Fprintf(&sb, "geomean speedup: %.2fx\n", s.Geomean)
	}
	return sb.String()
}
