package algebra

// Topology helpers over the plan DAG. Loop-lifted plans share subplans
// aggressively (CSE turns the operator tree into a DAG), and both the
// optimizer's demand analysis and the engine's parallel scheduler need a
// deterministic linearization of that DAG plus the reverse edges (who
// consumes each operator's output).

// Topo returns every distinct operator reachable from root in a
// deterministic bottom-up order: each operator appears after all of its
// inputs (children before parents, root last). Shared subplans appear
// exactly once.
func Topo(root *Op) []*Op {
	var order []*Op
	seen := make(map[*Op]bool)
	var visit func(*Op)
	visit = func(o *Op) {
		if seen[o] {
			return
		}
		seen[o] = true
		for _, in := range o.In {
			visit(in)
		}
		order = append(order, o)
	}
	visit(root)
	return order
}

// TopoDown returns the operators with every operator before its inputs
// (root first) — the traversal order of top-down analyses such as the
// optimizer's column-demand propagation.
func TopoDown(root *Op) []*Op {
	order := Topo(root)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Consumers returns, for every operator in the DAG, the list of operators
// that read its output, with one entry per consuming edge: an operator
// listing the same input twice contributes two entries. Operators feeding
// only the root (or the root itself, which has no consumers) map to nil.
func Consumers(root *Op) map[*Op][]*Op {
	out := make(map[*Op][]*Op)
	for _, o := range Topo(root) {
		for _, in := range o.In {
			out[in] = append(out[in], o)
		}
	}
	return out
}

// MaxWidth returns the size of the largest antichain layer of the DAG
// under the longest-path-from-leaves leveling — a cheap upper-bound proxy
// for how many operators can ever be runnable at once. The scheduler uses
// it to size bookkeeping; plans with MaxWidth 1 are pure chains that gain
// nothing from parallel dispatch.
func MaxWidth(root *Op) int {
	depth := make(map[*Op]int)
	byLevel := make(map[int]int)
	widest := 0
	for _, o := range Topo(root) {
		d := 0
		for _, in := range o.In {
			if depth[in]+1 > d {
				d = depth[in] + 1
			}
		}
		depth[o] = d
		byLevel[d]++
		if byLevel[d] > widest {
			widest = byLevel[d]
		}
	}
	return widest
}
