package algebra

import (
	"fmt"
	"strings"

	"pathfinder/internal/bat"
)

// OpKind enumerates the operators of Table 1 (plus the aggregation and
// document-access operators the compilation rules for fn:count, fn:sum and
// fn:doc require).
type OpKind uint8

// Operators.
const (
	OpLit      OpKind = iota // literal table
	OpProject                // π: projection, renaming, column duplication
	OpSelect                 // σ: keep rows whose (boolean) column is true
	OpUnion                  // ∪̇: disjoint union
	OpDiff                   // \: anti-join on key columns (set difference when keys = full schema)
	OpDistinct               // δ: duplicate elimination over all columns
	OpJoin                   // ⋈: equi-join
	OpSemiJoin               // ⋉: equi-semi-join
	OpCross                  // ×: Cartesian product
	OpRowNum                 // ϱ: dense row numbering per partition, ordered
	OpRowID                  // MonetDB mark: global dense numbering in input order
	OpFun                    // ⊛: per-row function
	OpAggr                   // per-partition aggregate
	OpStep                   // staircase join: XPath location step
	OpDoc                    // fn:doc: URI strings → document nodes
	OpElem                   // ε: element construction
	OpText                   // τ: text node construction
	OpAttrC                  // attribute construction
	OpRoots                  // fn:root per node item
	OpRange                  // integer range: one row per value in [lo, hi]
	OpColl                   // fn:collection: collection names → document node sequences
)

func (k OpKind) String() string {
	names := [...]string{"lit", "project", "select", "union", "diff", "distinct",
		"join", "semijoin", "cross", "rownum", "rowid", "fun", "aggr", "step",
		"doc", "elem", "text", "attr", "roots", "range", "coll"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// ProjPair renames Old to New in a projection (New == Old keeps the name).
type ProjPair struct{ New, Old string }

// OrderSpec orders a row-numbering operator by Col, descending when Desc.
type OrderSpec struct {
	Col  string
	Desc bool
}

// Op is one node of a plan DAG. The parameter fields used depend on Kind;
// constructors validate schemas eagerly so a constructed DAG is always
// well-formed.
type Op struct {
	Kind OpKind
	In   []*Op

	// Parameters (by Kind):
	Lit      *bat.Table  // OpLit
	Proj     []ProjPair  // OpProject
	Col      string      // OpSelect: bool column; OpFun/OpAggr/OpRowNum/OpRowID: result column
	KeyL     []string    // OpJoin/OpSemiJoin/OpDiff: left key columns
	KeyR     []string    // OpJoin/OpSemiJoin/OpDiff: right key columns
	Part     string      // OpRowNum/OpAggr: partition column ("" = single partition)
	Order    []OrderSpec // OpRowNum: ordering
	Fun      FunKind     // OpFun
	Args     []string    // OpFun: argument columns; OpAggr: [0] = aggregated column
	Agg      AggKind     // OpAggr
	Axis     Axis        // OpStep
	Test     KindTest    // OpStep
	Type     SeqType     // OpFun with FunTypeIs
	TypeName string      // OpFun with FunTypeIs: element name restriction
	Sep      string      // OpAggr with AggStrJoin: separator

	schema []string
}

// Schema returns the output column names in order.
func (o *Op) Schema() []string { return o.schema }

// HasCol reports whether the output schema contains col.
func (o *Op) HasCol(col string) bool {
	for _, c := range o.schema {
		if c == col {
			return true
		}
	}
	return false
}

func requireCols(o *Op, who string, cols ...string) error {
	for _, c := range cols {
		if !o.HasCol(c) {
			return fmt.Errorf("%s: input lacks column %q (schema %s)", who, c, strings.Join(o.schema, "|"))
		}
	}
	return nil
}

// Lit wraps a literal table as a plan leaf.
func Lit(t *bat.Table) *Op {
	return &Op{Kind: OpLit, Lit: t, schema: t.Cols()}
}

// LitSeq builds the paper's Figure 2-style literal encoding: a table
// pos|item with pos = 1..n — the compilation of a literal sequence in the
// top-level scope before loop-lifting attaches iter.
func LitSeq(items ...bat.Item) *Op {
	return Lit(bat.MustTable(
		"pos", bat.Ramp(1, len(items)),
		"item", bat.ItemVec(items),
	))
}

// Project applies π. Specs are "name" or "new:old"; a source column may be
// duplicated under several names. π never eliminates duplicate rows.
func Project(in *Op, specs ...string) (*Op, error) {
	pairs := make([]ProjPair, len(specs))
	seen := make(map[string]bool, len(specs))
	schema := make([]string, len(specs))
	for i, s := range specs {
		newName, oldName := s, s
		if j := strings.IndexByte(s, ':'); j >= 0 {
			newName, oldName = s[:j], s[j+1:]
		}
		if err := requireCols(in, "π", oldName); err != nil {
			return nil, err
		}
		if seen[newName] {
			return nil, fmt.Errorf("π: duplicate output column %q", newName)
		}
		seen[newName] = true
		pairs[i] = ProjPair{New: newName, Old: oldName}
		schema[i] = newName
	}
	return &Op{Kind: OpProject, In: []*Op{in}, Proj: pairs, schema: schema}, nil
}

// Select applies σ: rows whose boolean column col is true survive. The
// column is retained (π drops it later if unwanted).
func Select(in *Op, col string) (*Op, error) {
	if err := requireCols(in, "σ", col); err != nil {
		return nil, err
	}
	return &Op{Kind: OpSelect, In: []*Op{in}, Col: col, schema: in.schema}, nil
}

// Union forms the disjoint union of two plans with identical schemas
// (order-insensitive; the output uses the left schema order).
func Union(l, r *Op) (*Op, error) {
	if len(l.schema) != len(r.schema) {
		return nil, fmt.Errorf("∪: schema size mismatch %v vs %v", l.schema, r.schema)
	}
	for _, c := range l.schema {
		if !r.HasCol(c) {
			return nil, fmt.Errorf("∪: right side lacks column %q", c)
		}
	}
	return &Op{Kind: OpUnion, In: []*Op{l, r}, schema: l.schema}, nil
}

// Diff returns the rows of l whose key columns have no match in r
// (an anti-semi-join; with keys spanning the full schema of duplicate-free
// inputs this is the set difference of Table 1).
func Diff(l, r *Op, keyL, keyR []string) (*Op, error) {
	if len(keyL) != len(keyR) || len(keyL) == 0 {
		return nil, fmt.Errorf("\\: need matching key column lists")
	}
	if err := requireCols(l, "\\", keyL...); err != nil {
		return nil, err
	}
	if err := requireCols(r, "\\", keyR...); err != nil {
		return nil, err
	}
	return &Op{Kind: OpDiff, In: []*Op{l, r}, KeyL: keyL, KeyR: keyR, schema: l.schema}, nil
}

// Distinct applies δ over the full schema.
func Distinct(in *Op) *Op {
	return &Op{Kind: OpDistinct, In: []*Op{in}, schema: in.schema}
}

// Join applies the equi-join l ⋈ r on the given key column pairs. Column
// names must be disjoint between the two sides.
func Join(l, r *Op, keyL, keyR []string) (*Op, error) {
	if len(keyL) != len(keyR) || len(keyL) == 0 {
		return nil, fmt.Errorf("⋈: need matching key column lists")
	}
	if err := requireCols(l, "⋈", keyL...); err != nil {
		return nil, err
	}
	if err := requireCols(r, "⋈", keyR...); err != nil {
		return nil, err
	}
	for _, c := range r.schema {
		if l.HasCol(c) {
			return nil, fmt.Errorf("⋈: column %q appears on both sides", c)
		}
	}
	return &Op{Kind: OpJoin, In: []*Op{l, r}, KeyL: keyL, KeyR: keyR,
		schema: append(append([]string{}, l.schema...), r.schema...)}, nil
}

// SemiJoin keeps the rows of l with at least one key match in r.
func SemiJoin(l, r *Op, keyL, keyR []string) (*Op, error) {
	if len(keyL) != len(keyR) || len(keyL) == 0 {
		return nil, fmt.Errorf("⋉: need matching key column lists")
	}
	if err := requireCols(l, "⋉", keyL...); err != nil {
		return nil, err
	}
	if err := requireCols(r, "⋉", keyR...); err != nil {
		return nil, err
	}
	return &Op{Kind: OpSemiJoin, In: []*Op{l, r}, KeyL: keyL, KeyR: keyR, schema: l.schema}, nil
}

// Cross forms the Cartesian product (column names must be disjoint).
func Cross(l, r *Op) (*Op, error) {
	for _, c := range r.schema {
		if l.HasCol(c) {
			return nil, fmt.Errorf("×: column %q appears on both sides", c)
		}
	}
	return &Op{Kind: OpCross, In: []*Op{l, r},
		schema: append(append([]string{}, l.schema...), r.schema...)}, nil
}

// RowNum applies ϱ: a new column numbering rows 1,2,... densely per
// partition, in the order given by the order columns (ties keep the input
// order, making the operator deterministic).
func RowNum(in *Op, newCol string, order []OrderSpec, part string) (*Op, error) {
	if in.HasCol(newCol) {
		return nil, fmt.Errorf("ϱ: output column %q already exists", newCol)
	}
	for _, o := range order {
		if err := requireCols(in, "ϱ", o.Col); err != nil {
			return nil, err
		}
	}
	if part != "" {
		if err := requireCols(in, "ϱ", part); err != nil {
			return nil, err
		}
	}
	return &Op{Kind: OpRowNum, In: []*Op{in}, Col: newCol, Order: order, Part: part,
		schema: append(append([]string{}, in.schema...), newCol)}, nil
}

// RowID numbers rows 1..n in input order — MonetDB's mark operator, the
// no-cost numbering the paper highlights.
func RowID(in *Op, newCol string) (*Op, error) {
	if in.HasCol(newCol) {
		return nil, fmt.Errorf("mark: output column %q already exists", newCol)
	}
	return &Op{Kind: OpRowID, In: []*Op{in}, Col: newCol,
		schema: append(append([]string{}, in.schema...), newCol)}, nil
}

// Fun applies a per-row function to argument columns, producing a new
// column.
func Fun(in *Op, newCol string, fun FunKind, args ...string) (*Op, error) {
	if in.HasCol(newCol) {
		return nil, fmt.Errorf("⊛%s: output column %q already exists", fun, newCol)
	}
	if len(args) != fun.Arity() {
		return nil, fmt.Errorf("⊛%s: got %d args, want %d", fun, len(args), fun.Arity())
	}
	if err := requireCols(in, "⊛"+fun.String(), args...); err != nil {
		return nil, err
	}
	return &Op{Kind: OpFun, In: []*Op{in}, Col: newCol, Fun: fun, Args: args,
		schema: append(append([]string{}, in.schema...), newCol)}, nil
}

// TypeTest builds the FunTypeIs row function testing items against a
// sequence type (element name restricted when tyName != "").
func TypeTest(in *Op, newCol string, ty SeqType, tyName string, arg string) (*Op, error) {
	o, err := Fun(in, newCol, FunTypeIs, arg)
	if err != nil {
		return nil, err
	}
	o.Type, o.TypeName = ty, tyName
	return o, nil
}

// Aggr computes an aggregate per value of the partition column. The output
// schema is part|newCol (or just newCol when part == "", yielding a single
// row). Partitions absent from the input are absent from the output; the
// compiler fills in defaults (e.g. count = 0) via Diff/Union against the
// loop relation.
func Aggr(in *Op, newCol string, agg AggKind, argCol, part string) (*Op, error) {
	if agg != AggCount {
		if err := requireCols(in, agg.String(), argCol); err != nil {
			return nil, err
		}
	}
	schema := []string{newCol}
	if part != "" {
		if err := requireCols(in, agg.String(), part); err != nil {
			return nil, err
		}
		schema = []string{part, newCol}
	}
	args := []string{}
	if agg != AggCount {
		args = []string{argCol}
	}
	return &Op{Kind: OpAggr, In: []*Op{in}, Col: newCol, Agg: agg, Args: args,
		Part: part, schema: schema}, nil
}

// StrJoin builds the string-join aggregate: the string values of argCol,
// concatenated per partition in row order with sep between them.
func StrJoin(in *Op, newCol, argCol, part, sep string) (*Op, error) {
	o, err := Aggr(in, newCol, AggStrJoin, argCol, part)
	if err != nil {
		return nil, err
	}
	o.Sep = sep
	return o, nil
}

// Step applies the staircase join: for each input row, item (a node) is
// stepped along the axis with the node test; the output is the distinct
// set of (iter, item) result pairs in document order per iter.
func Step(in *Op, axis Axis, test KindTest) (*Op, error) {
	if err := requireCols(in, "staircase", "iter", "item"); err != nil {
		return nil, err
	}
	return &Op{Kind: OpStep, In: []*Op{in}, Axis: axis, Test: test,
		schema: []string{"iter", "item"}}, nil
}

// DocOp resolves the URI strings in item to document nodes, replacing the
// item column in place (all other columns pass through).
func DocOp(in *Op) (*Op, error) {
	if err := requireCols(in, "doc", "iter", "item"); err != nil {
		return nil, err
	}
	return &Op{Kind: OpDoc, In: []*Op{in}, schema: in.schema}, nil
}

// Roots maps each node in item to its tree root (fn:root), replacing the
// item column in place.
func Roots(in *Op) (*Op, error) {
	if err := requireCols(in, "roots", "iter", "item"); err != nil {
		return nil, err
	}
	return &Op{Kind: OpRoots, In: []*Op{in}, schema: in.schema}, nil
}

// Range expands each input row into the integer sequence [lo, hi]: output
// iter|pos|item with one row per integer (empty when lo > hi) — the
// compilation of XQuery's `e1 to e2` range expression. KeyL carries the
// lo/hi column names.
func Range(in *Op, loCol, hiCol string) (*Op, error) {
	if err := requireCols(in, "range", "iter", loCol, hiCol); err != nil {
		return nil, err
	}
	return &Op{Kind: OpRange, In: []*Op{in}, KeyL: []string{loCol, hiCol},
		schema: []string{"iter", "pos", "item"}}, nil
}

// CollOp expands each collection name in item into the sequence of
// document nodes of that collection, in shard-manifest order: output
// iter|pos|item with one row per document (like Range, an expanding
// operator whose fan-out is data-dependent). A single-document collection
// behaves exactly like fn:doc with a pos column of 1s.
func CollOp(in *Op) (*Op, error) {
	if err := requireCols(in, "coll", "iter", "item"); err != nil {
		return nil, err
	}
	return &Op{Kind: OpColl, In: []*Op{in}, schema: []string{"iter", "pos", "item"}}, nil
}

// Elem is the ε operator: per iter of qnames (schema iter|item holding tag
// strings, one row per iter), construct an element whose content is the
// iter's slice of content (schema iter|pos|item). Output: iter|item with
// the new element nodes.
func Elem(qnames, content *Op) (*Op, error) {
	if err := requireCols(qnames, "ε", "iter", "item"); err != nil {
		return nil, err
	}
	if err := requireCols(content, "ε", "iter", "pos", "item"); err != nil {
		return nil, err
	}
	return &Op{Kind: OpElem, In: []*Op{qnames, content}, schema: []string{"iter", "item"}}, nil
}

// Text is the τ operator: construct one text node per input row from the
// string in item. Rows with empty strings produce no node.
func Text(in *Op) (*Op, error) {
	if err := requireCols(in, "τ", "iter", "item"); err != nil {
		return nil, err
	}
	return &Op{Kind: OpText, In: []*Op{in}, schema: []string{"iter", "item"}}, nil
}

// AttrC constructs one attribute node per iter from names (iter|item) and
// values (iter|item).
func AttrC(names, values *Op) (*Op, error) {
	if err := requireCols(names, "attr", "iter", "item"); err != nil {
		return nil, err
	}
	if err := requireCols(values, "attr", "iter", "item"); err != nil {
		return nil, err
	}
	return &Op{Kind: OpAttrC, In: []*Op{names, values}, schema: []string{"iter", "item"}}, nil
}

// Unchecked builds an operator node with the given declared schema and no
// constructor validation. The compiler never calls this: it exists for the
// corrupted-plan corpus of internal/check (which needs structurally broken
// DAGs the validating constructors refuse to build) and for plan
// deserializers that re-check via Validate afterwards. Parameter fields
// (Col, KeyL, ...) are set directly on the returned node.
func Unchecked(kind OpKind, schema []string, in ...*Op) *Op {
	return &Op{Kind: kind, In: in, schema: schema}
}

// CountOps returns the number of distinct operator nodes in the DAG —
// the paper quotes plan sizes this way (Q8 compiles to ~120 operators).
func CountOps(root *Op) int {
	seen := make(map[*Op]bool)
	var walk func(*Op)
	walk = func(o *Op) {
		if seen[o] {
			return
		}
		seen[o] = true
		for _, in := range o.In {
			walk(in)
		}
	}
	walk(root)
	return len(seen)
}

// Validate re-checks structural invariants over the whole DAG; the
// optimizer calls this after rewriting.
func Validate(root *Op) error {
	seen := make(map[*Op]bool)
	var walk func(*Op) error
	walk = func(o *Op) error {
		if seen[o] {
			return nil
		}
		seen[o] = true
		for _, in := range o.In {
			if err := walk(in); err != nil {
				return err
			}
		}
		return o.check()
	}
	return walk(root)
}

func (o *Op) check() error {
	switch o.Kind {
	case OpLit:
		if o.Lit == nil {
			return fmt.Errorf("lit: nil table")
		}
	case OpProject:
		for _, p := range o.Proj {
			if !o.In[0].HasCol(p.Old) {
				return fmt.Errorf("π: missing %q", p.Old)
			}
		}
	case OpSelect:
		if !o.In[0].HasCol(o.Col) {
			return fmt.Errorf("σ: missing %q", o.Col)
		}
	case OpJoin, OpSemiJoin, OpDiff:
		for i := range o.KeyL {
			if !o.In[0].HasCol(o.KeyL[i]) || !o.In[1].HasCol(o.KeyR[i]) {
				return fmt.Errorf("%s: bad keys %v=%v", o.Kind, o.KeyL, o.KeyR)
			}
		}
	case OpFun:
		for _, a := range o.Args {
			if !o.In[0].HasCol(a) {
				return fmt.Errorf("⊛: missing %q", a)
			}
		}
	case OpRowNum:
		for _, s := range o.Order {
			if !o.In[0].HasCol(s.Col) {
				return fmt.Errorf("ϱ: missing order column %q", s.Col)
			}
		}
		if o.Part != "" && !o.In[0].HasCol(o.Part) {
			return fmt.Errorf("ϱ: missing partition column %q", o.Part)
		}
	case OpAggr:
		for _, a := range o.Args {
			if !o.In[0].HasCol(a) {
				return fmt.Errorf("%s: missing %q", o.Agg, a)
			}
		}
		if o.Part != "" && !o.In[0].HasCol(o.Part) {
			return fmt.Errorf("%s: missing partition column %q", o.Agg, o.Part)
		}
	case OpRange:
		if len(o.KeyL) != 2 || !o.In[0].HasCol(o.KeyL[0]) || !o.In[0].HasCol(o.KeyL[1]) {
			return fmt.Errorf("range: bad bound columns %v", o.KeyL)
		}
	case OpStep, OpDoc, OpRoots, OpText, OpColl:
		if !o.In[0].HasCol("iter") || !o.In[0].HasCol("item") {
			return fmt.Errorf("%s: input lacks iter|item", o.Kind)
		}
	}
	return nil
}
