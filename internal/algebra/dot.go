package algebra

import (
	"fmt"
	"sort"
	"strings"
)

// Label renders an operator the way the paper draws plans (Figure 5):
// π with its projection list, ϱ with target:order/partition, ⋈ with its
// predicate, ⊛ with its function symbol.
func (o *Op) Label() string {
	switch o.Kind {
	case OpLit:
		return fmt.Sprintf("table %s (%d rows)", strings.Join(o.schema, "|"), o.Lit.Rows())
	case OpProject:
		parts := make([]string, len(o.Proj))
		for i, p := range o.Proj {
			if p.New == p.Old {
				parts[i] = p.New
			} else {
				parts[i] = p.New + ":" + p.Old
			}
		}
		return "π " + strings.Join(parts, ",")
	case OpSelect:
		return "σ " + o.Col
	case OpUnion:
		return "∪"
	case OpDiff:
		return "\\ " + keyStr(o)
	case OpDistinct:
		return "δ"
	case OpJoin:
		return "⋈ " + keyStr(o)
	case OpSemiJoin:
		return "⋉ " + keyStr(o)
	case OpCross:
		return "×"
	case OpRowNum:
		ords := make([]string, len(o.Order))
		for i, s := range o.Order {
			ords[i] = s.Col
			if s.Desc {
				ords[i] += "↓"
			}
		}
		l := fmt.Sprintf("ϱ %s:(%s)", o.Col, strings.Join(ords, ","))
		if o.Part != "" {
			l += "/" + o.Part
		}
		return l
	case OpRowID:
		return fmt.Sprintf("mark %s", o.Col)
	case OpFun:
		return fmt.Sprintf("⊛%s %s:(%s)", o.Fun, o.Col, strings.Join(o.Args, ","))
	case OpAggr:
		arg := ""
		if len(o.Args) > 0 {
			arg = o.Args[0]
		}
		l := fmt.Sprintf("%s %s:(%s)", o.Agg, o.Col, arg)
		if o.Part != "" {
			l += "/" + o.Part
		}
		return l
	case OpStep:
		return fmt.Sprintf("⌐ %s::%s", o.Axis, o.Test)
	case OpDoc:
		return "doc"
	case OpRoots:
		return "root"
	case OpElem:
		return "ε"
	case OpText:
		return "τ"
	case OpAttrC:
		return "attr"
	case OpRange:
		return fmt.Sprintf("range %s..%s", o.KeyL[0], o.KeyL[1])
	case OpColl:
		return "collection"
	}
	return o.Kind.String()
}

func keyStr(o *Op) string {
	parts := make([]string, len(o.KeyL))
	for i := range o.KeyL {
		parts[i] = o.KeyL[i] + "=" + o.KeyR[i]
	}
	return strings.Join(parts, ",")
}

// Dot renders the plan DAG in Graphviz syntax — the "graphical output of
// relational query plans" demo hook.
func Dot(root *Op) string {
	ids := make(map[*Op]int)
	var order []*Op
	var walk func(*Op)
	walk = func(o *Op) {
		if _, ok := ids[o]; ok {
			return
		}
		ids[o] = len(ids)
		order = append(order, o)
		for _, in := range o.In {
			walk(in)
		}
	}
	walk(root)
	var sb strings.Builder
	sb.WriteString("digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, o := range order {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", ids[o], o.Label())
	}
	for _, o := range order {
		for i, in := range o.In {
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%d\"];\n", ids[o], ids[in], i)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// TreeString renders the plan as an indented tree with shared subplans
// printed once and referenced by id; compact form for the CLI's -show plan.
func TreeString(root *Op) string {
	return TreeStringAnnotated(root, nil)
}

// TreeStringAnnotated is TreeString with a per-operator annotation (e.g.
// row counts from a traced evaluation) appended to each label.
func TreeStringAnnotated(root *Op, note func(*Op) string) string {
	shared := make(map[*Op]int)
	var count func(*Op)
	counted := make(map[*Op]bool)
	count = func(o *Op) {
		shared[o]++
		if counted[o] {
			return
		}
		counted[o] = true
		for _, in := range o.In {
			count(in)
		}
	}
	count(root)

	var sb strings.Builder
	printed := make(map[*Op]int)
	nextRef := 1
	var pr func(o *Op, indent int)
	pr = func(o *Op, indent int) {
		pad := strings.Repeat("  ", indent)
		if ref, ok := printed[o]; ok {
			fmt.Fprintf(&sb, "%s^%d\n", pad, ref)
			return
		}
		label := o.Label()
		if note != nil {
			if n := note(o); n != "" {
				label += "   " + n
			}
		}
		if shared[o] > 1 {
			printed[o] = nextRef
			fmt.Fprintf(&sb, "%s[%d] %s\n", pad, nextRef, label)
			nextRef++
		} else {
			fmt.Fprintf(&sb, "%s%s\n", pad, label)
		}
		for _, in := range o.In {
			pr(in, indent+1)
		}
	}
	pr(root, 0)
	return sb.String()
}

// OpHistogram counts operators by kind — used by tests asserting plan
// shapes (e.g. join recognition leaves no × in Q8's optimized plan).
func OpHistogram(root *Op) map[string]int {
	hist := make(map[string]int)
	seen := make(map[*Op]bool)
	var walk func(*Op)
	walk = func(o *Op) {
		if seen[o] {
			return
		}
		seen[o] = true
		hist[o.Kind.String()]++
		for _, in := range o.In {
			walk(in)
		}
	}
	walk(root)
	return hist
}

// HistString renders a histogram deterministically for golden tests.
func HistString(h map[string]int) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, h[k])
	}
	return strings.Join(parts, " ")
}
