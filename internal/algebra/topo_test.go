package algebra

import "testing"

// diamond builds a DAG with one shared leaf consumed by two branches that
// rejoin: leaf → {l, r} → union.
func diamond(t *testing.T) (root, leaf, l, r *Op) {
	t.Helper()
	leaf = LitSeq()
	var err error
	if l, err = Project(leaf, "pos", "item"); err != nil {
		t.Fatal(err)
	}
	if r, err = Project(leaf, "pos", "item"); err != nil {
		t.Fatal(err)
	}
	if root, err = Union(l, r); err != nil {
		t.Fatal(err)
	}
	return root, leaf, l, r
}

func TestTopoOrderAndUniqueness(t *testing.T) {
	root, _, _, _ := diamond(t)
	order := Topo(root)
	if len(order) != 4 {
		t.Fatalf("Topo visited %d operators, diamond has 4", len(order))
	}
	pos := make(map[*Op]int)
	for i, o := range order {
		if _, dup := pos[o]; dup {
			t.Fatalf("operator appears twice in Topo order")
		}
		pos[o] = i
	}
	for _, o := range order {
		for _, in := range o.In {
			if pos[in] >= pos[o] {
				t.Errorf("input ordered at %d, after its consumer at %d", pos[in], pos[o])
			}
		}
	}
	if order[len(order)-1] != root {
		t.Error("root is not last in bottom-up order")
	}
}

func TestTopoDownReverses(t *testing.T) {
	root, leaf, _, _ := diamond(t)
	down := TopoDown(root)
	if down[0] != root {
		t.Error("TopoDown must start at the root")
	}
	if down[len(down)-1] != leaf {
		t.Error("TopoDown must end at the shared leaf")
	}
}

func TestConsumersEdges(t *testing.T) {
	root, leaf, l, r := diamond(t)
	cons := Consumers(root)
	if got := len(cons[leaf]); got != 2 {
		t.Errorf("shared leaf has %d consumers, want 2", got)
	}
	if len(cons[l]) != 1 || cons[l][0] != root {
		t.Errorf("left branch consumers = %v, want just the root", cons[l])
	}
	if len(cons[r]) != 1 || cons[r][0] != root {
		t.Errorf("right branch consumers = %v, want just the root", cons[r])
	}
	if cons[root] != nil {
		t.Error("root must have no consumers")
	}

	// Same input twice → two consuming edges (pending count must be 2).
	dup, err := Union(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Consumers(dup)[l]); got != 2 {
		t.Errorf("doubly-consumed input has %d edges, want 2", got)
	}
}

func TestMaxWidth(t *testing.T) {
	root, _, _, _ := diamond(t)
	if got := MaxWidth(root); got != 2 {
		t.Errorf("diamond MaxWidth = %d, want 2", got)
	}
	// A pure chain has width 1.
	chain, err := Distinct(LitSeq()), error(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxWidth(chain); got != 1 {
		t.Errorf("chain MaxWidth = %d, want 1", got)
	}
}
