package algebra

// Column provenance: for every operator output column, the operator and
// column where its values are produced. Renamings (π), row filters (σ, ⋉,
// \), row extensions (ϱ, mark, ⊛) and the column pass-through of ⋈/× all
// preserve values, so a column's origin reaches back through them to the
// operator that actually computed it — a literal, a numbering operator, a
// function, a step. The join-graph analysis in internal/opt uses this to
// recognize equi-joins whose key columns are loop-lifting scaffolding
// (iter/inner/outer numbering chains) rather than document values.

// Origin identifies where a column's values are produced: the defining
// operator and the column name it carries there.
type Origin struct {
	Op  *Op
	Col string
}

// Provenance computes, for every operator of the DAG rooted at root, the
// origin of each output column. Columns an operator itself defines (a
// literal's columns, ϱ/mark numbering columns, ⊛/aggregate results, the
// item column of a step or constructor) originate at that operator;
// columns that pass through unchanged keep their upstream origin. Where
// a union merges columns with different origins, the union is the origin
// — the values are no longer traceable to one producer.
func Provenance(root *Op) map[*Op]map[string]Origin {
	out := make(map[*Op]map[string]Origin)
	for _, o := range Topo(root) {
		m := make(map[string]Origin, len(o.schema))
		self := func(cols ...string) {
			for _, c := range cols {
				m[c] = Origin{Op: o, Col: c}
			}
		}
		from := func(i int, col string) Origin {
			if i < len(o.In) {
				if po, ok := out[o.In[i]][col]; ok {
					return po
				}
			}
			return Origin{Op: o, Col: col}
		}
		switch o.Kind {
		case OpLit:
			self(o.schema...)
		case OpProject:
			for _, p := range o.Proj {
				m[p.New] = from(0, p.Old)
			}
		case OpSelect, OpDistinct, OpSemiJoin, OpDiff:
			// Row filters: every surviving value is the input's value.
			for _, c := range o.schema {
				m[c] = from(0, c)
			}
		case OpJoin, OpCross:
			// Column pass-through from whichever side provides the column
			// (schemas are disjoint; constructors enforce it).
			for _, c := range o.schema {
				if o.In[0].HasCol(c) {
					m[c] = from(0, c)
				} else {
					m[c] = from(1, c)
				}
			}
		case OpRowNum, OpRowID, OpFun, OpAggr:
			// Extensions: the result column is defined here, the rest pass
			// through. (Aggregates keep only the partition column.)
			for _, c := range o.schema {
				if c == o.Col {
					self(c)
				} else {
					m[c] = from(0, c)
				}
			}
		case OpUnion:
			// A column whose two sides trace to the same origin keeps it;
			// otherwise the union is the merge point.
			for _, c := range o.schema {
				l, r := from(0, c), from(1, c)
				if l == r {
					m[c] = l
				} else {
					self(c)
				}
			}
		default:
			// Steps, document access, and constructors define their item
			// (and pos) columns; iter threads through from the first input.
			for _, c := range o.schema {
				if c == "iter" && len(o.In) > 0 && o.In[0].HasCol("iter") {
					m[c] = from(0, c)
				} else {
					self(c)
				}
			}
		}
		out[o] = m
	}
	return out
}
