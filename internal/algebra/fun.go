package algebra

import "fmt"

// FunKind identifies a per-row operator ⊛ (arithmetic, comparison, Boolean
// connective, string function, or node-level primitive).
type FunKind uint8

// Row functions.
const (
	FunAdd FunKind = iota
	FunSub
	FunMul
	FunDiv
	FunIDiv
	FunMod
	FunNeg

	FunEq // value comparison with numeric promotion
	FunNe
	FunLt
	FunLe
	FunGt
	FunGe

	FunAnd
	FunOr
	FunNot

	FunConcat
	FunContains
	FunStartsWith
	FunStringLength

	FunAtomize  // fn:data on a single item: nodes → untyped string value
	FunString   // fn:string
	FunNumber   // fn:number
	FunBoolWrap // identity on booleans; type error otherwise (guards ebv)

	FunDocBefore // << : document order comparison of two nodes
	FunNodeIs    // is : node identity
	FunTypeIs    // instance-of test against Op.Type
	FunEbvItem   // single-item effective boolean value

	FunSubstring  // fn:substring(s, start)
	FunSubstring3 // fn:substring(s, start, len)
	FunNameOf     // fn:name(node)
)

func (f FunKind) String() string {
	names := map[FunKind]string{
		FunAdd: "+", FunSub: "-", FunMul: "*", FunDiv: "div", FunIDiv: "idiv",
		FunMod: "mod", FunNeg: "neg",
		FunEq: "eq", FunNe: "ne", FunLt: "lt", FunLe: "le", FunGt: "gt", FunGe: "ge",
		FunAnd: "and", FunOr: "or", FunNot: "not",
		FunConcat: "concat", FunContains: "contains", FunStartsWith: "starts-with",
		FunStringLength: "string-length",
		FunAtomize:      "data", FunString: "string", FunNumber: "number", FunBoolWrap: "boolean",
		FunDocBefore: "<<", FunNodeIs: "is", FunTypeIs: "instance-of",
		FunEbvItem:   "ebv",
		FunSubstring: "substring", FunSubstring3: "substring3", FunNameOf: "name",
	}
	if s, ok := names[f]; ok {
		return s
	}
	return fmt.Sprintf("fun(%d)", uint8(f))
}

// Arity returns the number of column arguments the function consumes.
func (f FunKind) Arity() int {
	switch f {
	case FunNeg, FunNot, FunStringLength, FunAtomize, FunString, FunNumber,
		FunBoolWrap, FunTypeIs, FunEbvItem, FunNameOf:
		return 1
	case FunSubstring3:
		return 3
	default:
		return 2
	}
}

// AggKind identifies an aggregate computed per partition.
type AggKind uint8

// Aggregates. Count ignores its argument column.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
	AggStrJoin // concatenate string values, separated by Op.Sep
)

func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggStrJoin:
		return "string-join"
	}
	return fmt.Sprintf("agg(%d)", uint8(a))
}

// SeqType is the lightweight item-type domain used by FunTypeIs (the
// compilation target of typeswitch).
type SeqType uint8

// Type tests.
const (
	TyItem SeqType = iota // any item
	TyNode                // any node
	TyElem                // element(); Op.TypeName restricts the tag
	TyText
	TyAttr
	TyDocNode
	TyAtomic
	TyInteger
	TyDouble
	TyNumeric
	TyString
	TyBoolean
	TyUntyped
)

func (t SeqType) String() string {
	switch t {
	case TyItem:
		return "item()"
	case TyNode:
		return "node()"
	case TyElem:
		return "element()"
	case TyText:
		return "text()"
	case TyAttr:
		return "attribute()"
	case TyDocNode:
		return "document-node()"
	case TyAtomic:
		return "xs:anyAtomicType"
	case TyInteger:
		return "xs:integer"
	case TyDouble:
		return "xs:double"
	case TyNumeric:
		return "numeric"
	case TyString:
		return "xs:string"
	case TyBoolean:
		return "xs:boolean"
	case TyUntyped:
		return "xs:untypedAtomic"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}
