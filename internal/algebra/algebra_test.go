package algebra

import (
	"strings"
	"testing"

	"pathfinder/internal/bat"
)

func litIterItem(t *testing.T) *Op {
	t.Helper()
	return Lit(bat.MustTable(
		"iter", bat.IntVec{1, 2},
		"item", bat.ItemVec{bat.Int(10), bat.Int(20)},
	))
}

func mustOp(o *Op, err error) *Op {
	if err != nil {
		panic(err)
	}
	return o
}

func TestLitSeqSchema(t *testing.T) {
	o := LitSeq(bat.Int(5), bat.Str("x"))
	if got := strings.Join(o.Schema(), "|"); got != "pos|item" {
		t.Errorf("schema = %s", got)
	}
	if o.Lit.Rows() != 2 {
		t.Errorf("rows = %d", o.Lit.Rows())
	}
}

func TestProjectValidation(t *testing.T) {
	in := litIterItem(t)
	p := mustOp(Project(in, "outer:iter", "item", "copy:item"))
	if got := strings.Join(p.Schema(), "|"); got != "outer|item|copy" {
		t.Errorf("schema = %s", got)
	}
	if _, err := Project(in, "missing"); err == nil {
		t.Error("missing source column must fail")
	}
	if _, err := Project(in, "iter", "iter"); err == nil {
		t.Error("duplicate output must fail")
	}
}

func TestSelectValidation(t *testing.T) {
	in := litIterItem(t)
	if _, err := Select(in, "nope"); err == nil {
		t.Error("missing bool column must fail")
	}
	s := mustOp(Select(in, "item"))
	if len(s.Schema()) != 2 {
		t.Error("σ must keep schema")
	}
}

func TestUnionSchemaCheck(t *testing.T) {
	a := litIterItem(t)
	b := Lit(bat.MustTable("item", bat.ItemVec{bat.Int(1)}, "iter", bat.IntVec{9}))
	u := mustOp(Union(a, b))
	if got := strings.Join(u.Schema(), "|"); got != "iter|item" {
		t.Errorf("union schema = %s", got)
	}
	c := Lit(bat.MustTable("x", bat.IntVec{1}))
	if _, err := Union(a, c); err == nil {
		t.Error("schema mismatch must fail")
	}
}

func TestJoinValidation(t *testing.T) {
	a := litIterItem(t)
	b := Lit(bat.MustTable("iter1", bat.IntVec{1}, "item1", bat.ItemVec{bat.Int(5)}))
	j := mustOp(Join(a, b, []string{"iter"}, []string{"iter1"}))
	if got := strings.Join(j.Schema(), "|"); got != "iter|item|iter1|item1" {
		t.Errorf("join schema = %s", got)
	}
	if _, err := Join(a, a, []string{"iter"}, []string{"iter"}); err == nil {
		t.Error("overlapping column names must fail")
	}
	if _, err := Join(a, b, []string{"iter"}, []string{}); err == nil {
		t.Error("empty keys must fail")
	}
	if _, err := Join(a, b, []string{"nope"}, []string{"iter1"}); err == nil {
		t.Error("missing key must fail")
	}
}

func TestCrossValidation(t *testing.T) {
	a := litIterItem(t)
	b := Lit(bat.MustTable("pos", bat.IntVec{1}))
	c := mustOp(Cross(a, b))
	if len(c.Schema()) != 3 {
		t.Error("cross schema")
	}
	if _, err := Cross(a, a); err == nil {
		t.Error("overlap must fail")
	}
}

func TestRowNumValidation(t *testing.T) {
	in := litIterItem(t)
	r := mustOp(RowNum(in, "pos", []OrderSpec{{Col: "item"}}, "iter"))
	if !r.HasCol("pos") {
		t.Error("rownum must add column")
	}
	if _, err := RowNum(in, "iter", nil, ""); err == nil {
		t.Error("existing output column must fail")
	}
	if _, err := RowNum(in, "p", []OrderSpec{{Col: "gone"}}, ""); err == nil {
		t.Error("missing order column must fail")
	}
	if _, err := RowNum(in, "p", nil, "gone"); err == nil {
		t.Error("missing partition column must fail")
	}
}

func TestFunValidation(t *testing.T) {
	in := litIterItem(t)
	f := mustOp(Fun(in, "res", FunAdd, "item", "item"))
	if !f.HasCol("res") {
		t.Error("fun must add column")
	}
	if _, err := Fun(in, "r", FunAdd, "item"); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := Fun(in, "r", FunNot, "gone"); err == nil {
		t.Error("missing arg must fail")
	}
	if _, err := Fun(in, "item", FunNot, "item"); err == nil {
		t.Error("clobbering output must fail")
	}
}

func TestAggrSchema(t *testing.T) {
	in := litIterItem(t)
	a := mustOp(Aggr(in, "cnt", AggCount, "", "iter"))
	if got := strings.Join(a.Schema(), "|"); got != "iter|cnt" {
		t.Errorf("aggr schema = %s", got)
	}
	g := mustOp(Aggr(in, "total", AggSum, "item", ""))
	if got := strings.Join(g.Schema(), "|"); got != "total" {
		t.Errorf("global aggr schema = %s", got)
	}
	if _, err := Aggr(in, "s", AggSum, "gone", ""); err == nil {
		t.Error("missing arg column must fail")
	}
}

func TestStepRequiresIterItem(t *testing.T) {
	in := litIterItem(t)
	s := mustOp(Step(in, Descendant, KindTest{Kind: TestElem, Name: "a"}))
	if got := strings.Join(s.Schema(), "|"); got != "iter|item" {
		t.Errorf("step schema = %s", got)
	}
	bad := Lit(bat.MustTable("x", bat.IntVec{1}))
	if _, err := Step(bad, Child, KindTest{}); err == nil {
		t.Error("step without iter|item must fail")
	}
}

func TestConstructorsSchemas(t *testing.T) {
	names := litIterItem(t)
	content := Lit(bat.MustTable(
		"iter", bat.IntVec{1},
		"pos", bat.IntVec{1},
		"item", bat.ItemVec{bat.Str("x")},
	))
	e := mustOp(Elem(names, content))
	if got := strings.Join(e.Schema(), "|"); got != "iter|item" {
		t.Errorf("elem schema = %s", got)
	}
	if _, err := Elem(names, names); err == nil {
		t.Error("elem content must have pos")
	}
	tx := mustOp(Text(names))
	if len(tx.Schema()) != 2 {
		t.Error("text schema")
	}
	at := mustOp(AttrC(names, names))
	if len(at.Schema()) != 2 {
		t.Error("attr schema")
	}
	d := mustOp(DocOp(names))
	if len(d.Schema()) != 2 {
		t.Error("doc schema")
	}
	r := mustOp(Roots(names))
	if len(r.Schema()) != 2 {
		t.Error("roots schema")
	}
}

func TestDiffAndSemiJoin(t *testing.T) {
	a := litIterItem(t)
	b := Lit(bat.MustTable("oiter", bat.IntVec{1}))
	d := mustOp(Diff(a, b, []string{"iter"}, []string{"oiter"}))
	if got := strings.Join(d.Schema(), "|"); got != "iter|item" {
		t.Errorf("diff schema = %s", got)
	}
	s := mustOp(SemiJoin(a, b, []string{"iter"}, []string{"oiter"}))
	if got := strings.Join(s.Schema(), "|"); got != "iter|item" {
		t.Errorf("semijoin schema = %s", got)
	}
	if _, err := Diff(a, b, nil, nil); err == nil {
		t.Error("diff without keys must fail")
	}
}

// Figure 5 of the paper: the plan for `for $v in (10,20) return $v + 100`
// built by hand out of Table 1 operators — this asserts the algebra layer
// can express the paper's example verbatim.
func buildFigure5(t *testing.T) *Op {
	t.Helper()
	// Literal (10,20) in scope s0 with iter = 1.
	q1 := Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1},
		"pos", bat.IntVec{1, 2},
		"item", bat.ItemVec{bat.Int(10), bat.Int(20)},
	))
	// ϱ inner:(iter,pos) — new iterations for $v.
	rn := mustOp(RowNum(q1, "inner", []OrderSpec{{Col: "iter"}, {Col: "pos"}}, ""))
	// map(inner, outer).
	mapRel := mustOp(Project(rn, "inner", "outer:iter"))
	// $v in scope s1: iter = inner, pos = 1.
	vBind0 := mustOp(Project(rn, "iter:inner", "item"))
	ones := mustOp(Cross(vBind0, Lit(bat.MustTable("pos", bat.IntVec{1}))))
	vBind := mustOp(Project(ones, "iter", "pos", "item"))
	// (100) lifted into s1: loop × {(1,100)}.
	loop := mustOp(Project(mapRel, "iter1:inner"))
	hundred := mustOp(Cross(loop, Lit(bat.MustTable(
		"pos1", bat.IntVec{1}, "item1", bat.ItemVec{bat.Int(100)},
	))))
	// $v + 100: join on iter, ⊕.
	j := mustOp(Join(vBind, hundred, []string{"iter"}, []string{"iter1"}))
	add := mustOp(Fun(j, "res", FunAdd, "item", "item1"))
	body := mustOp(Project(add, "iter", "pos", "item:res"))
	// Back-map to s0.
	back := mustOp(Join(body, mustOp(Project(mapRel, "inner", "outer")),
		[]string{"iter"}, []string{"inner"}))
	renum := mustOp(RowNum(back, "pos1", []OrderSpec{{Col: "iter"}, {Col: "pos"}}, "outer"))
	final := mustOp(Project(renum, "iter:outer", "pos:pos1", "item"))
	return final
}

func TestFigure5PlanConstructs(t *testing.T) {
	final := buildFigure5(t)
	if err := Validate(final); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(final.Schema(), "|"); got != "iter|pos|item" {
		t.Errorf("final schema = %s", got)
	}
	if n := CountOps(final); n < 10 {
		t.Errorf("figure 5 plan has %d ops, expected a DAG of >= 10", n)
	}
}

func TestDotAndTextRendering(t *testing.T) {
	final := buildFigure5(t)
	dot := Dot(final)
	for _, want := range []string{"digraph plan", "π", "ϱ", "⋈", "×", "⊛+"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	txt := TreeString(final)
	if !strings.Contains(txt, "π iter:outer,pos:pos1,item") {
		t.Errorf("text output missing root π, got:\n%s", txt)
	}
	// Shared nodes must be printed once and referenced.
	if !strings.Contains(txt, "^") {
		t.Error("shared map relation should be referenced, not re-printed")
	}
}

func TestOpHistogram(t *testing.T) {
	final := buildFigure5(t)
	h := OpHistogram(final)
	if h["join"] != 2 || h["cross"] != 2 {
		t.Errorf("histogram = %s", HistString(h))
	}
	if HistString(h) == "" {
		t.Error("HistString empty")
	}
}

// Table 1 inventory: every operator of the paper's algebra is expressible.
func TestTable1OperatorInventory(t *testing.T) {
	in := litIterItem(t)
	ops := map[string]func() (*Op, error){
		"π":  func() (*Op, error) { return Project(in, "iter") },
		"σ":  func() (*Op, error) { return Select(in, "item") },
		"∪":  func() (*Op, error) { return Union(in, in) },
		"\\": func() (*Op, error) { return Diff(in, in, []string{"iter"}, []string{"iter"}) },
		"δ":  func() (*Op, error) { return Distinct(in), nil },
		"⋈": func() (*Op, error) {
			r := Lit(bat.MustTable("i2", bat.IntVec{1}))
			return Join(in, r, []string{"iter"}, []string{"i2"})
		},
		"×":         func() (*Op, error) { return Cross(in, Lit(bat.MustTable("z", bat.IntVec{1}))) },
		"ϱ":         func() (*Op, error) { return RowNum(in, "n", nil, "iter") },
		"staircase": func() (*Op, error) { return Step(in, Child, KindTest{Kind: TestNode}) },
		"ε": func() (*Op, error) {
			c := Lit(bat.MustTable("iter", bat.IntVec{}, "pos", bat.IntVec{}, "item", bat.ItemVec{}))
			return Elem(in, c)
		},
		"τ": func() (*Op, error) { return Text(in) },
		"⊛": func() (*Op, error) { return Fun(in, "r", FunMul, "item", "item") },
	}
	for name, build := range ops {
		if _, err := build(); err != nil {
			t.Errorf("operator %s of Table 1 not expressible: %v", name, err)
		}
	}
}

func TestAxisAndTestStrings(t *testing.T) {
	if Descendant.String() != "descendant" || Attribute.String() != "attribute" {
		t.Error("axis names")
	}
	a, err := AxisByName("following-sibling")
	if err != nil || a != FollowingSibling {
		t.Errorf("AxisByName: %v %v", a, err)
	}
	if _, err := AxisByName("bogus"); err == nil {
		t.Error("bogus axis must fail")
	}
	tests := []struct {
		kt   KindTest
		want string
	}{
		{KindTest{Kind: TestElem, Name: "a"}, "a"},
		{KindTest{Kind: TestElem}, "*"},
		{KindTest{Kind: TestText}, "text()"},
		{KindTest{Kind: TestNode}, "node()"},
		{KindTest{Kind: TestAttr, Name: "id"}, "@id"},
		{KindTest{Kind: TestAttr}, "@*"},
	}
	for _, c := range tests {
		if c.kt.String() != c.want {
			t.Errorf("KindTest %v = %q, want %q", c.kt, c.kt.String(), c.want)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	in := litIterItem(t)
	s := mustOp(Select(in, "item"))
	s.Col = "vanished" // corrupt after construction
	if err := Validate(s); err == nil {
		t.Error("Validate must catch dangling column reference")
	}
}

func TestRangeConstructor(t *testing.T) {
	in := Lit(bat.MustTable("iter", bat.IntVec{1}, "lo", bat.IntVec{1}, "hi", bat.IntVec{3}))
	r := mustOp(Range(in, "lo", "hi"))
	if got := strings.Join(r.Schema(), "|"); got != "iter|pos|item" {
		t.Errorf("range schema = %s", got)
	}
	if _, err := Range(in, "lo", "nope"); err == nil {
		t.Error("missing bound column must fail")
	}
	bad := Lit(bat.MustTable("x", bat.IntVec{1}))
	if _, err := Range(bad, "x", "x"); err == nil {
		t.Error("missing iter must fail")
	}
}

func TestLabelsCoverEveryOperator(t *testing.T) {
	in := litIterItem(t)
	content := Lit(bat.MustTable("iter", bat.IntVec{}, "pos", bat.IntVec{}, "item", bat.ItemVec{}))
	rangeIn := Lit(bat.MustTable("iter", bat.IntVec{1}, "lo", bat.IntVec{1}, "hi", bat.IntVec{2}))
	ops := []*Op{
		in,
		mustOp(Project(in, "iter")),
		mustOp(Select(in, "item")),
		mustOp(Union(in, in)),
		mustOp(Diff(in, in, []string{"iter"}, []string{"iter"})),
		Distinct(in),
		mustOp(Join(in, Lit(bat.MustTable("i2", bat.IntVec{1})), []string{"iter"}, []string{"i2"})),
		mustOp(SemiJoin(in, in, []string{"iter"}, []string{"iter"})),
		mustOp(Cross(in, Lit(bat.MustTable("z", bat.IntVec{1})))),
		mustOp(RowNum(in, "n", []OrderSpec{{Col: "item", Desc: true}}, "iter")),
		mustOp(RowID(in, "id")),
		mustOp(Fun(in, "r", FunAdd, "item", "item")),
		mustOp(Aggr(in, "c", AggCount, "", "iter")),
		mustOp(Step(in, Descendant, KindTest{Kind: TestElem, Name: "a"})),
		mustOp(DocOp(in)),
		mustOp(Roots(in)),
		mustOp(Elem(in, content)),
		mustOp(Text(in)),
		mustOp(AttrC(in, in)),
		mustOp(Range(rangeIn, "lo", "hi")),
	}
	for _, o := range ops {
		if l := o.Label(); l == "" || strings.HasPrefix(l, "op(") {
			t.Errorf("%s: label %q", o.Kind, l)
		}
		if o.Kind.String() == "" {
			t.Errorf("kind %d has no name", o.Kind)
		}
	}
}

func TestValidateNewOperatorChecks(t *testing.T) {
	in := litIterItem(t)
	rn := mustOp(RowNum(in, "n", []OrderSpec{{Col: "item"}}, "iter"))
	rn.Part = "gone"
	if err := Validate(rn); err == nil {
		t.Error("corrupt ϱ partition must be caught")
	}
	ag := mustOp(Aggr(in, "s", AggSum, "item", "iter"))
	ag.Args = []string{"gone"}
	if err := Validate(ag); err == nil {
		t.Error("corrupt aggregate argument must be caught")
	}
	rg := mustOp(Range(Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "lo", bat.IntVec{1}, "hi", bat.IntVec{2})), "lo", "hi"))
	rg.KeyL = []string{"lo"}
	if err := Validate(rg); err == nil {
		t.Error("corrupt range bounds must be caught")
	}
}
