// Package algebra defines Pathfinder's target language: the "assembly
// style" relational algebra of Table 1 in the paper. Plans are DAGs of Op
// nodes over named columns; the operator set is deliberately restricted
// (all joins are equi-joins, π never eliminates duplicates, all unions are
// disjoint) because those restrictions are what make the algebra
// efficiently implementable on any relational back-end.
package algebra

import "fmt"

// Axis is an XPath axis, evaluated by the staircase join operator.
type Axis uint8

// XPath axes.
const (
	Child Axis = iota
	Descendant
	DescendantOrSelf
	Parent
	Ancestor
	AncestorOrSelf
	Following
	Preceding
	FollowingSibling
	PrecedingSibling
	Self
	Attribute
)

func (a Axis) String() string {
	switch a {
	case Child:
		return "child"
	case Descendant:
		return "descendant"
	case DescendantOrSelf:
		return "descendant-or-self"
	case Parent:
		return "parent"
	case Ancestor:
		return "ancestor"
	case AncestorOrSelf:
		return "ancestor-or-self"
	case Following:
		return "following"
	case Preceding:
		return "preceding"
	case FollowingSibling:
		return "following-sibling"
	case PrecedingSibling:
		return "preceding-sibling"
	case Self:
		return "self"
	case Attribute:
		return "attribute"
	}
	return fmt.Sprintf("axis(%d)", uint8(a))
}

// AxisByName resolves an axis name as written in a query.
func AxisByName(name string) (Axis, error) {
	for a := Child; a <= Attribute; a++ {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown axis %q", name)
}

// TestKind classifies node tests.
type TestKind uint8

// Node test kinds: name or wildcard element test, text(), node(),
// comment(), and attribute name/wildcard tests.
const (
	TestElem TestKind = iota // element(name) or element(*) when Name == ""
	TestText
	TestNode
	TestComment
	TestAttr // attribute(name) or attribute(*) when Name == ""
)

// KindTest is the ν in a location step e/α::ν.
type KindTest struct {
	Kind TestKind
	Name string // element tag or attribute name; "" matches any
}

func (t KindTest) String() string {
	switch t.Kind {
	case TestElem:
		if t.Name == "" {
			return "*"
		}
		return t.Name
	case TestText:
		return "text()"
	case TestNode:
		return "node()"
	case TestComment:
		return "comment()"
	case TestAttr:
		if t.Name == "" {
			return "@*"
		}
		return "@" + t.Name
	}
	return "?"
}
