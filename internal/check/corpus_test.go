package check_test

// The validator's zero-false-positive guarantee: every plan the compiler
// actually emits — all 20 XMark queries and the Table 2 dialect corpus,
// both before and after optimization — must validate clean at every
// layer. A finding on a legitimate plan means the re-derivation is
// weaker than an invariant the compiler relies on, which would force
// users to ignore the validator.

import (
	"fmt"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/check"
	"pathfinder/internal/core"
	"pathfinder/internal/opt"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// corpusQueries is the Table 2 dialect corpus plus the join/constructor
// shapes the differential tests pin — one query per supported construct.
var corpusQueries = []string{
	`42`,
	`(1, 2)`,
	`let $v := 7 return $v`,
	`let $v := 3 return $v * $v`,
	`for $v in (1,2) return $v + 1`,
	`if (1 < 2) then "a" else "b"`,
	`typeswitch (1.5) case xs:integer return "i" case xs:double return "d" default return "?"`,
	`element {"x"} {"y"}`,
	`text {"z"}`,
	`for $x in (3,1,2) order by $x return $x`,
	`count(/site/child::people/descendant::name)`,
	`(//person)[1] << (//person)[2]`,
	`(//person)[1] is (//person)[1]`,
	`1 + 2 * 3 - 4`,
	`2 lt 3`,
	`1 = 1 and not(2 = 3)`,
	`count(doc("auction.xml"))`,
	`count(root((//name)[1]))`,
	`data((//income)[1]) + 0`,
	`count(fs:distinct-doc-order((//person, //person)))`,
	`count(//person)`,
	`sum((1, 2, 3))`,
	`empty(())`,
	`for $x in ("a","b") return position()`,
	`for $x in ("a","b") return last()`,
	`declare function local:sq($x) { $x * $x }; local:sq(5)`,
	`for $i in 1 to 4 return $i`,
	`count(//person | //price)`,
	`count((//person, //price) intersect //price)`,
	`count((//person, //price) except //price)`,
	`distinct-values((3, 1, 3, 2, 1))`,
	`substring("motor car", 6)`,
	`substring("metadata", 4, 3)`,
	`name((//person)[1])`,
	`name((//person)[1]/@id)`,
	`some $x in (1,2) satisfies $x = 2`,
	`every $x in (1,2) satisfies $x = 2`,
	`string-join(("a","b","c"), "+")`,
	`(//person)[2]/name/text()`,
	`//person[@id = "p3"]/name/text()`,
	`for $x at $i in ("a","b") return $i`,
	`for $p in //person
	 return count(for $t in doc("auction.xml")/site/closed_auctions/closed_auction
	        where $t/buyer/@person = $p/@id return $t)`,
	`for $p in //person order by $p/income return string($p/@id)`,
	`for $i in (1,2) return <n v="{$i}"/>`,
	`<out>{//person[1]/name}</out>`,
}

// checkClean runs every validation layer on one plan and reports findings.
func checkClean(t *testing.T, label string, root *algebra.Op) {
	t.Helper()
	if diags := check.Plan(root); len(diags) > 0 {
		t.Errorf("%s: validator flagged a legitimate plan:\n%s", label, check.Render(diags))
	}
}

func TestCorpusPlansValidate(t *testing.T) {
	opts := xqcore.Options{ContextDoc: "auction.xml"}
	for i, src := range corpusQueries {
		label := fmt.Sprintf("dialect[%d] %.60s", i, src)
		plan, _, err := core.CompileQuery(src, opts)
		if err != nil {
			t.Errorf("%s: compile: %v", label, err)
			continue
		}
		checkClean(t, label+" (pre-opt)", plan)
		optPlan, err := opt.Optimize(plan)
		if err != nil {
			t.Errorf("%s: optimize: %v", label, err)
			continue
		}
		checkClean(t, label+" (post-opt)", optPlan)
	}
}

func TestXMarkPlansValidate(t *testing.T) {
	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for n := 1; n <= xmark.NumQueries; n++ {
		label := fmt.Sprintf("xmark q%02d", n)
		plan, _, err := core.CompileQuery(xmark.Query(n), opts)
		if err != nil {
			t.Errorf("%s: compile: %v", label, err)
			continue
		}
		checkClean(t, label+" (pre-opt)", plan)
		optPlan, err := opt.Optimize(plan)
		if err != nil {
			t.Errorf("%s: optimize: %v", label, err)
			continue
		}
		checkClean(t, label+" (post-opt)", optPlan)
	}
}
