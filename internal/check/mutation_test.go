package check_test

// Mutation corpus: deliberately corrupted plans, one per way an upstream
// pass could lie to a downstream one. Each case must produce at least one
// diagnostic of its invariant class — proving the validator actually
// guards the boundary — and the rendered diagnostics are pinned as
// goldens so a refactor cannot silently weaken a check into vacuity.
//
// Regenerate the goldens after an intentional message change with
//
//	go test ./internal/check -run TestMutation -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/check"
	"pathfinder/internal/opt"
	"pathfinder/internal/physical"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// ints builds an integer column vector.
func ints(vals ...int64) bat.IntVec { return bat.IntVec(vals) }

// lit builds a literal leaf from name/vec pairs, failing the test on a
// malformed table (the corpus corrupts operators, never the bat layer).
func lit(t *testing.T, pairs ...any) *algebra.Op {
	t.Helper()
	tab, err := bat.NewTable(pairs...)
	if err != nil {
		t.Fatal(err)
	}
	return algebra.Lit(tab)
}

// mutation is one corrupted-plan case: build returns the diagnostics of
// the validation layer the corruption targets.
type mutation struct {
	name  string
	class string // invariant class at least one diagnostic must carry
	build func(t *testing.T) []check.Diag
}

var mutations = []mutation{
	// --- schema class: the logical DAG lies about its columns ---------
	{
		name:  "schema_select_missing_column",
		class: "schema",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 2, 3))
			o := algebra.Unchecked(algebra.OpSelect, []string{"iter"}, in)
			o.Col = "pred" // σ over a column no input produces
			return check.Logical(o)
		},
	},
	{
		name:  "schema_project_duplicate_output",
		class: "schema",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 2), "item", ints(10, 20))
			o := algebra.Unchecked(algebra.OpProject, []string{"a", "a"}, in)
			o.Proj = []algebra.ProjPair{{New: "a", Old: "iter"}, {New: "a", Old: "item"}}
			return check.Logical(o)
		},
	},
	{
		name:  "schema_rowid_shadows_column",
		class: "schema",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 2))
			o := algebra.Unchecked(algebra.OpRowID, []string{"iter", "iter"}, in)
			o.Col = "iter" // mark column collides with an existing one
			return check.Logical(o)
		},
	},
	{
		name:  "schema_join_column_collision",
		class: "schema",
		build: func(t *testing.T) []check.Diag {
			l := lit(t, "iter", ints(1, 2), "item", ints(5, 6))
			r := lit(t, "iter2", ints(1, 2), "item", ints(7, 8))
			o := algebra.Unchecked(algebra.OpJoin,
				[]string{"iter", "item", "iter2", "item"}, l, r)
			o.KeyL, o.KeyR = []string{"iter"}, []string{"iter2"}
			return check.Logical(o)
		},
	},
	{
		name:  "schema_declared_drift",
		class: "schema",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 2), "item", ints(3, 4))
			// δ passes its input schema through; the node declares a column
			// that does not exist downstream kernels would index.
			o := algebra.Unchecked(algebra.OpDistinct, []string{"iter", "bogus"}, in)
			return check.Logical(o)
		},
	},
	{
		name:  "schema_union_width_mismatch",
		class: "schema",
		build: func(t *testing.T) []check.Diag {
			l := lit(t, "iter", ints(1), "item", ints(2))
			r := lit(t, "iter", ints(3))
			o := algebra.Unchecked(algebra.OpUnion, []string{"iter", "item"}, l, r)
			return check.Logical(o)
		},
	},
	{
		name:  "structure_join_missing_input",
		class: "structure",
		build: func(t *testing.T) []check.Diag {
			l := lit(t, "iter", ints(1, 2))
			o := algebra.Unchecked(algebra.OpJoin, []string{"iter"}, l)
			o.KeyL, o.KeyR = []string{"iter"}, []string{"iter"}
			return check.Logical(o)
		},
	},
	{
		name:  "type_select_over_int",
		class: "type",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 2), "item", ints(3, 4))
			o := algebra.Unchecked(algebra.OpSelect, []string{"iter", "item"}, in)
			o.Col = "iter" // σ over a column proven integer, never boolean
			return check.Logical(o)
		},
	},

	// --- order class: the optimizer publishes bits it cannot justify ---
	{
		name:  "order_forged_sorted",
		class: "order",
		build: func(t *testing.T) []check.Diag {
			root := lit(t, "item", ints(3, 1, 2))
			props := opt.Properties(root)
			props[root] = opt.Props{Sorted: []string{"item"}}
			return check.Properties(root, props)
		},
	},
	{
		name:  "order_forged_strict",
		class: "order",
		build: func(t *testing.T) []check.Diag {
			root := lit(t, "iter", ints(1, 1, 2))
			props := opt.Properties(root)
			// sorted(iter) is true, but claiming it duplicate-free would
			// license rownum[const1]-style eliminations downstream.
			props[root] = opt.Props{Sorted: []string{"iter"}, Strict: true}
			return check.Properties(root, props)
		},
	},
	{
		name:  "order_missing_props",
		class: "order",
		build: func(t *testing.T) []check.Diag {
			root := lit(t, "iter", ints(1, 2))
			props := opt.Properties(root)
			delete(props, root)
			return check.Properties(root, props)
		},
	},

	// --- decorrelation class: join graph isolation gone wrong ----------
	// The isolation pass splices numbering operators out in place; each
	// case forges one way a buggy splice could lie to the layers below.
	{
		name:  "schema_isolation_dropped_iter",
		class: "schema",
		build: func(t *testing.T) []check.Diag {
			// A decorrelation splice that rewires a projection onto a
			// subplan that no longer produces the iter column the
			// projection still threads — the loop membership is gone.
			in := lit(t, "iter", ints(1, 2), "item", ints(5, 6))
			rn, err := algebra.RowNum(in, "pos", []algebra.OrderSpec{{Col: "item"}}, "iter")
			if err != nil {
				t.Fatal(err)
			}
			pj, err := algebra.Project(rn, "iter", "pos")
			if err != nil {
				t.Fatal(err)
			}
			pj.In[0] = lit(t, "inner", ints(1, 2), "item", ints(5, 6))
			return check.Logical(pj)
		},
	},
	{
		name:  "order_isolation_false_claim",
		class: "order",
		build: func(t *testing.T) []check.Diag {
			// An isolation rewrite is only sound across an N:1 join; here
			// the right key has duplicates, yet the plan claims the left
			// ordering survived strictly — the false order claim that
			// would license removing the order-restoring rownum.
			l := lit(t, "iter", ints(1, 2, 3))
			r := lit(t, "outer", ints(1, 1, 2), "item", ints(7, 8, 9))
			j, err := algebra.Join(l, r, []string{"iter"}, []string{"outer"})
			if err != nil {
				t.Fatal(err)
			}
			props := opt.Properties(j)
			props[j] = opt.Props{Sorted: []string{"iter"}, Strict: true}
			return check.Properties(j, props)
		},
	},
	{
		name:  "schema_isolation_cse_differing_predicates",
		class: "schema",
		build: func(t *testing.T) []check.Diag {
			// Cross-operator CSE that wrongly canonicalizes σ[b] onto the
			// shared σ[a] subplan: the surviving branch only carries a, so
			// the predicate column the other branch selected is gone.
			base := lit(t, "iter", ints(1, 2), "a", ints(1, 0), "b", ints(0, 1))
			sa, err := algebra.Select(base, "a")
			if err != nil {
				t.Fatal(err)
			}
			pa, err := algebra.Project(sa, "iter", "a")
			if err != nil {
				t.Fatal(err)
			}
			sb := algebra.Unchecked(algebra.OpSelect, []string{"iter", "a"}, pa)
			sb.Col = "b"
			return check.Logical(sb)
		},
	},

	// --- dense class: a 1..n claim with a hole in it -------------------
	{
		name:  "dense_forged_column",
		class: "dense",
		build: func(t *testing.T) []check.Diag {
			root := lit(t, "pos", ints(1, 2, 4))
			props := opt.Properties(root)
			props[root] = opt.Props{Sorted: []string{"pos"}, Strict: true, Dense: []string{"pos"}}
			return check.Properties(root, props)
		},
	},

	// --- physical class: kernel choices without their preconditions ----
	{
		name:  "physical_merge_over_unsorted",
		class: "physical",
		build: func(t *testing.T) []check.Diag {
			l := lit(t, "k", ints(3, 1, 2))
			r := lit(t, "j", ints(2, 3, 1))
			join, err := algebra.Join(l, r, []string{"k"}, []string{"j"})
			if err != nil {
				t.Fatal(err)
			}
			p := physical.Lower(join)
			nd := p.ByOp[join]
			nd.Merge, nd.Kernel = true, "merge-join" // skip the hash table anyway
			return check.Physical(p)
		},
	},
	{
		name:  "physical_presorted_over_unsorted",
		class: "physical",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(2, 1, 3), "item", ints(1, 2, 3))
			rn, err := algebra.RowNum(in, "pos", []algebra.OrderSpec{{Col: "iter"}}, "")
			if err != nil {
				t.Fatal(err)
			}
			p := physical.Lower(rn)
			nd := p.ByOp[rn]
			nd.Presorted, nd.Kernel = true, "rownum[presorted]" // skip the sort anyway
			return check.Physical(p)
		},
	},
	{
		name:  "physical_const1_over_nondense",
		class: "physical",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 1, 2), "item", ints(1, 2, 3))
			rn, err := algebra.RowNum(in, "pos", nil, "iter")
			if err != nil {
				t.Fatal(err)
			}
			p := physical.Lower(rn)
			nd := p.ByOp[rn]
			nd.Presorted = false                          // the lowering legitimately chose presorted here
			nd.Const1, nd.Kernel = true, "rownum[const1]" // constant-1 numbering over real groups
			return check.Physical(p)
		},
	},
	{
		name:  "physical_parallel_union",
		class: "physical",
		build: func(t *testing.T) []check.Diag {
			l := lit(t, "iter", ints(1, 2))
			r := lit(t, "iter", ints(3, 4))
			u, err := algebra.Union(l, r)
			if err != nil {
				t.Fatal(err)
			}
			p := physical.Lower(u)
			nd := p.ByOp[u]
			nd.Parallel = true // concat has no order-preserving morsel split
			return check.Physical(p)
		},
	},
	// --- fusion class: forged fused-chain metadata ---------------------
	// Chains are executor metadata: a lying chain makes the fused loop
	// thread a selection vector through an operator that cannot carry it.
	{
		name:  "fusion_breaker_inside_chain",
		class: "fusion",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 2, 2))
			d := algebra.Distinct(in)
			pj, err := algebra.Project(d, "iter")
			if err != nil {
				t.Fatal(err)
			}
			p := physical.Lower(pj)
			// Forge a chain that hides the δ breaker between two members:
			// the fused loop would stream rows through an operator that
			// needs its whole input before it can emit anything.
			p.Chains = append(p.Chains, &physical.FusedChain{
				ID:    len(p.Chains) + 1,
				Nodes: []*physical.Node{p.ByOp[d], p.ByOp[pj]},
			})
			return check.Physical(p)
		},
	},
	{
		name:  "fusion_selection_vector_leak",
		class: "fusion",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 2), "item", ints(3, 4))
			fn, err := algebra.Fun(in, "res", algebra.FunAdd, "iter", "item")
			if err != nil {
				t.Fatal(err)
			}
			p1, err := algebra.Project(fn, "res")
			if err != nil {
				t.Fatal(err)
			}
			p2, err := algebra.Project(fn, "res")
			if err != nil {
				t.Fatal(err)
			}
			u, err := algebra.Union(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			p := physical.Lower(u)
			// Forge a chain whose interior member feeds a second consumer
			// outside the chain: the half-filtered view threaded through
			// the fused loop would leak past the boundary.
			p.Chains = append(p.Chains, &physical.FusedChain{
				ID:    len(p.Chains) + 1,
				Nodes: []*physical.Node{p.ByOp[fn], p.ByOp[p1]},
			})
			return check.Physical(p)
		},
	},
	{
		name:  "fusion_mark_after_filter",
		class: "fusion",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 2), "keep", bat.BoolVec{true, false})
			sel, err := algebra.Select(in, "keep")
			if err != nil {
				t.Fatal(err)
			}
			mk, err := algebra.RowID(sel, "pos")
			if err != nil {
				t.Fatal(err)
			}
			p := physical.Lower(mk)
			// Forge a σ→mark chain: the fused mark numbers rows by chain
			// input position, so a preceding filter makes it number the
			// wrong rows.
			p.Chains = append(p.Chains, &physical.FusedChain{
				ID:    len(p.Chains) + 1,
				Nodes: []*physical.Node{p.ByOp[sel], p.ByOp[mk]},
			})
			return check.Physical(p)
		},
	},
	{
		name:  "physical_root_not_last",
		class: "structure",
		build: func(t *testing.T) []check.Diag {
			in := lit(t, "iter", ints(1, 2))
			d := algebra.Distinct(in)
			p := physical.Lower(d)
			p.Nodes[0], p.Nodes[1] = p.Nodes[1], p.Nodes[0] // break the topological order
			return check.Physical(p)
		},
	},
}

// TestMutationsCaught asserts every corrupted plan yields at least one
// diagnostic of its invariant class, and pins the rendered output.
func TestMutationsCaught(t *testing.T) {
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			diags := m.build(t)
			if len(diags) == 0 {
				t.Fatalf("corrupted plan validated clean")
			}
			found := false
			for _, d := range diags {
				if d.Class == m.class {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no %q diagnostic among:\n%s", m.class, check.Render(diags))
			}
			compareGolden(t, m.name, check.Render(diags))
		})
	}
}

// TestMutationClassCoverage proves the corpus exercises every invariant
// class the validator knows — the acceptance bar for the checker.
func TestMutationClassCoverage(t *testing.T) {
	want := []string{"structure", "schema", "type", "order", "dense", "physical", "fusion"}
	have := map[string]bool{}
	for _, m := range mutations {
		have[m.class] = true
	}
	for _, c := range want {
		if !have[c] {
			t.Errorf("no mutation case targets invariant class %q", c)
		}
	}
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics drifted from golden %s:\n got:\n%s\n want:\n%s",
			path, indent(got), indent(string(want)))
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
