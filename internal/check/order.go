package check

import (
	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Independent re-derivation of order and denseness guarantees. This is
// written against the operator *semantics* (which operators preserve row
// order, which drop or duplicate rows, which append monotone columns) and
// deliberately shares no code with internal/opt's inference — the point
// is that a wrong bit in opt's rules or a rewrite that forgets to
// invalidate a property shows up as a claim this derivation cannot
// justify, instead of as a silently wrong merge-join or eliminated sort.

// guarantee is what the validator can prove about one operator's output:
// the column prefix the rows are sorted by (ascending, lexicographic),
// whether that prefix is duplicate-free, and which columns provably hold
// exactly 1..n in row order.
type guarantee struct {
	sorted []string
	strict bool
	dense  map[string]bool
}

func (g guarantee) sortedOn(cols ...string) bool {
	if hasPrefix(g.sorted, cols) {
		return true
	}
	return len(cols) == 1 && g.dense[cols[0]]
}

func noDense() map[string]bool { return map[string]bool{} }

// rederive computes guarantees for every operator, children first (order
// is algebra.Topo, so inputs are always resolved before consumers).
func rederive(order []*algebra.Op) map[*algebra.Op]guarantee {
	g := make(map[*algebra.Op]guarantee, len(order))
	for _, o := range order {
		g[o] = deriveOp(o, g)
	}
	return g
}

func deriveOp(o *algebra.Op, g map[*algebra.Op]guarantee) guarantee {
	in := func(i int) guarantee {
		if i < len(o.In) {
			if gi, ok := g[o.In[i]]; ok {
				return gi
			}
		}
		return guarantee{dense: noDense()}
	}
	switch o.Kind {
	case algebra.OpLit:
		return scanLiteral(o.Lit)

	case algebra.OpSelect, algebra.OpDistinct, algebra.OpSemiJoin, algebra.OpDiff:
		// Row filters keep surviving rows in input order; removing rows
		// cannot introduce duplicates on a duplicate-free prefix. But a
		// dense 1..n column stops being dense the moment any row drops —
		// conservatively assume one always does.
		c := in(0)
		return guarantee{sorted: c.sorted, strict: c.strict, dense: noDense()}

	case algebra.OpFun, algebra.OpDoc, algebra.OpRoots:
		// Per-row extensions: every row survives in place, so order,
		// strictness and denseness all carry over. (Doc and Roots replace
		// the item column; item-prefixed orderings would not survive, but
		// their input ordering is (iter, ...) in every plan the compiler
		// emits, and the derivation only keeps what the child proved.)
		c := in(0)
		return guarantee{sorted: c.sorted, strict: c.strict, dense: c.dense}

	case algebra.OpProject:
		return deriveProject(o, in(0))

	case algebra.OpRowID:
		// mark appends a strictly increasing column: the output is sorted
		// by (child prefix, mark) and that prefix is a key because the
		// mark column alone already is. Existing rows and dense columns
		// are untouched, and the new column is 1..n by definition.
		c := in(0)
		dense := map[string]bool{o.Col: true}
		for col := range c.dense {
			dense[col] = true
		}
		return guarantee{sorted: append(append([]string{}, c.sorted...), o.Col), strict: true, dense: dense}

	case algebra.OpRowNum:
		// ϱ materializes its output in (partition, order...) order and the
		// numbering increases strictly inside each partition, so
		// (partition, numbering) is a duplicate-free sort prefix. Without
		// partitioning the numbering is the whole relation's 1..n.
		dense := noDense()
		var cols []string
		if o.Part != "" {
			cols = append(cols, o.Part)
		} else {
			dense[o.Col] = true
		}
		return guarantee{sorted: append(cols, o.Col), strict: true, dense: dense}

	case algebra.OpJoin:
		// The kernels stream the left side in order; a left row with
		// several matches repeats, so strictness is generally lost. But if
		// the join key is provably a key of the right input (N:1), each
		// left row appears at most once and the left guarantee survives —
		// minus denseness, since unmatched left rows may still drop.
		l := in(0)
		if rightJoinKeyUnique(o, in(1)) {
			return guarantee{sorted: l.sorted, strict: l.strict, dense: noDense()}
		}
		return guarantee{sorted: l.sorted, dense: noDense()}

	case algebra.OpCross:
		// Left-major product: blocks of equal left rows. Only when the
		// left prefix is duplicate-free (blocks of one left row each) does
		// the right-side ordering extend the sort.
		l, r := in(0), in(1)
		if !l.strict {
			return guarantee{sorted: l.sorted, dense: noDense()}
		}
		return guarantee{
			sorted: append(append([]string{}, l.sorted...), r.sorted...),
			strict: r.strict,
			dense:  noDense(),
		}

	case algebra.OpStep:
		// The staircase join emits (iter, item) duplicate-free, iter-major
		// with items in document order per iter.
		return guarantee{sorted: []string{"iter", "item"}, strict: true, dense: noDense()}

	case algebra.OpAggr:
		// Groups are emitted in first-occurrence order of the partition
		// value; that is sorted (and a key — one row per group) exactly
		// when the input was already partition-major.
		if o.Part != "" {
			c := in(0)
			if len(c.sorted) > 0 && c.sorted[0] == o.Part {
				return guarantee{sorted: []string{o.Part}, strict: true, dense: noDense()}
			}
		}
		return guarantee{dense: noDense()}

	case algebra.OpElem:
		// ε emits one element per iter of the qname input, in iter order.
		return guarantee{sorted: []string{"iter"}, strict: true, dense: noDense()}

	case algebra.OpText, algebra.OpAttrC, algebra.OpRange, algebra.OpColl:
		// Row order follows the first input, but rows may drop (empty
		// strings) or fan out (ranges), so only iter-majorness survives.
		c := in(0)
		if len(c.sorted) > 0 && c.sorted[0] == "iter" {
			return guarantee{sorted: []string{"iter"}, dense: noDense()}
		}
		return guarantee{dense: noDense()}

	case algebra.OpUnion:
		// Concatenation: no guarantee survives across the seam.
		return guarantee{dense: noDense()}
	}
	return guarantee{dense: noDense()}
}

// rightJoinKeyUnique proves the join key is duplicate-free on the right
// input, from the right side's own guarantee: either some key column is
// dense (1..n never repeats), or the right rows are strictly ordered by
// columns all of which are key columns (a key over a subset of the join
// key is a key over the join key).
func rightJoinKeyUnique(o *algebra.Op, r guarantee) bool {
	for _, k := range o.KeyR {
		if r.dense[k] {
			return true
		}
	}
	if !r.strict || len(r.sorted) == 0 {
		return false
	}
	keySet := make(map[string]bool, len(o.KeyR))
	for _, k := range o.KeyR {
		keySet[k] = true
	}
	for _, c := range r.sorted {
		if !keySet[c] {
			return false
		}
	}
	return true
}

// deriveProject maps the child guarantee through a projection. A sorted
// prefix survives as far as its columns are kept (renamed); strictness
// needs the entire prefix to survive. Every alias of a dense column is
// dense — π duplicates columns without touching rows.
func deriveProject(o *algebra.Op, c guarantee) guarantee {
	firstAlias := make(map[string]string, len(o.Proj))
	for _, p := range o.Proj {
		if _, ok := firstAlias[p.Old]; !ok {
			firstAlias[p.Old] = p.New
		}
	}
	var sorted []string
	strict := false
	for i, col := range c.sorted {
		n, kept := firstAlias[col]
		if !kept {
			break
		}
		sorted = append(sorted, n)
		strict = c.strict && i == len(c.sorted)-1
	}
	dense := noDense()
	for _, p := range o.Proj {
		if c.dense[p.Old] {
			dense[p.New] = true
		}
	}
	return guarantee{sorted: sorted, strict: strict, dense: dense}
}

// scanLiteral proves properties of a literal table by looking at the rows
// themselves — the ground truth the rest of the derivation builds on.
func scanLiteral(t *bat.Table) guarantee {
	g := guarantee{dense: noDense()}
	if t == nil {
		return g
	}
	// Longest sorted column prefix, and whether it is duplicate-free.
	for _, col := range t.Cols() {
		cand := append(append([]string{}, g.sorted...), col)
		if !literalSorted(t, cand) {
			break
		}
		g.sorted = cand
	}
	g.strict = len(g.sorted) > 0 && literalStrict(t, g.sorted)
	if t.Rows() > 0 && len(g.sorted) == 0 {
		// A zero-column or unsorted table proves nothing more.
	}
	// Dense columns: integer vectors holding exactly 1..n.
	for _, col := range t.Cols() {
		v := t.MustCol(col)
		iv, ok := v.(bat.IntVec)
		if !ok {
			continue
		}
		dense := true
		for i, x := range iv {
			if x != int64(i)+1 {
				dense = false
				break
			}
		}
		if dense {
			g.dense[col] = true
		}
	}
	// An empty literal is trivially sorted by every prefix; keep the full
	// schema as the proven prefix so claims over empty tables justify.
	if t.Rows() == 0 {
		g.sorted = t.Cols()
		g.strict = len(g.sorted) > 0
		for _, col := range t.Cols() {
			if _, ok := t.MustCol(col).(bat.IntVec); ok {
				g.dense[col] = true
			}
		}
	}
	return g
}

func literalSorted(t *bat.Table, cols []string) bool {
	vecs := make([]bat.Vec, len(cols))
	for i, c := range cols {
		vecs[i] = t.MustCol(c)
	}
	for r := 1; r < t.Rows(); r++ {
		if compareRows(vecs, r-1, r) > 0 {
			return false
		}
	}
	return true
}

func literalStrict(t *bat.Table, cols []string) bool {
	vecs := make([]bat.Vec, len(cols))
	for i, c := range cols {
		vecs[i] = t.MustCol(c)
	}
	for r := 1; r < t.Rows(); r++ {
		if compareRows(vecs, r-1, r) == 0 {
			return false
		}
	}
	return true
}

func compareRows(vecs []bat.Vec, a, b int) int {
	for _, v := range vecs {
		if c := bat.CompareTotal(v.ItemAt(a), v.ItemAt(b)); c != 0 {
			return c
		}
	}
	return 0
}
