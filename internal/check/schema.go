package check

import (
	"fmt"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Schema well-formedness: for every operator the validator recomputes the
// output schema from the inputs' declared schemas and the operator's
// parameters, checks every consumed column against the producing input,
// and compares the result to the schema the node declares. The
// constructors in internal/algebra establish these invariants eagerly;
// this pass re-proves them over whole DAGs, so a rewrite that edits
// nodes in place (or a deserialized plan) cannot smuggle in a schema the
// downstream kernels would misread.

// arityOf is the validator's own record of how many inputs each operator
// kind takes — deliberately not derived from the node's In slice.
func arityOf(k algebra.OpKind) int {
	switch k {
	case algebra.OpLit:
		return 0
	case algebra.OpUnion, algebra.OpDiff, algebra.OpJoin, algebra.OpSemiJoin,
		algebra.OpCross, algebra.OpElem, algebra.OpAttrC:
		return 2
	default:
		return 1
	}
}

func checkArity(w *walker, o *algebra.Op) []Diag {
	var diags []Diag
	if want := arityOf(o.Kind); len(o.In) != want {
		diags = append(diags, Diag{Class: "structure", Op: w.name(o),
			Msg: fmt.Sprintf("has %d input(s), %s takes %d", len(o.In), o.Kind, want)})
	}
	for i, in := range o.In {
		if in == nil {
			diags = append(diags, Diag{Class: "structure", Op: w.name(o),
				Msg: fmt.Sprintf("input %d is nil", i)})
		}
	}
	return diags
}

// checkSchema recomputes o's output schema and verifies both the consumed
// columns and the declared schema.
func checkSchema(w *walker, o *algebra.Op) []Diag {
	var diags []Diag
	need := func(in int, cols ...string) {
		for _, c := range cols {
			if !hasCol(o.In[in].Schema(), c) {
				diags = append(diags, Diag{Class: "schema", Op: w.name(o),
					Msg: fmt.Sprintf("consumes column %q which input %d (%s) does not produce",
						c, in, schemaStr(o.In[in].Schema()))})
			}
		}
	}
	fresh := func(col string) {
		if hasCol(o.In[0].Schema(), col) {
			diags = append(diags, Diag{Class: "schema", Op: w.name(o),
				Msg: fmt.Sprintf("introduces column %q which the input already carries", col)})
		}
	}
	var want []string
	switch o.Kind {
	case algebra.OpLit:
		if o.Lit == nil {
			diags = append(diags, Diag{Class: "structure", Op: w.name(o), Msg: "nil literal table"})
			return diags
		}
		want = o.Lit.Cols()
	case algebra.OpProject:
		seen := make(map[string]bool, len(o.Proj))
		for _, p := range o.Proj {
			need(0, p.Old)
			if seen[p.New] {
				diags = append(diags, Diag{Class: "schema", Op: w.name(o),
					Msg: fmt.Sprintf("duplicate output column %q", p.New)})
			}
			seen[p.New] = true
			want = append(want, p.New)
		}
	case algebra.OpSelect:
		need(0, o.Col)
		want = o.In[0].Schema()
	case algebra.OpUnion:
		l, r := o.In[0].Schema(), o.In[1].Schema()
		if len(l) != len(r) {
			diags = append(diags, Diag{Class: "schema", Op: w.name(o),
				Msg: fmt.Sprintf("input schemas differ in width: %s vs %s", schemaStr(l), schemaStr(r))})
		}
		for _, c := range l {
			if !hasCol(r, c) {
				diags = append(diags, Diag{Class: "schema", Op: w.name(o),
					Msg: fmt.Sprintf("right input lacks column %q", c)})
			}
		}
		want = l
	case algebra.OpDiff, algebra.OpSemiJoin:
		diags = append(diags, checkKeys(w, o)...)
		want = o.In[0].Schema()
	case algebra.OpJoin, algebra.OpCross:
		if o.Kind == algebra.OpJoin {
			diags = append(diags, checkKeys(w, o)...)
		}
		for _, c := range o.In[1].Schema() {
			if hasCol(o.In[0].Schema(), c) {
				diags = append(diags, Diag{Class: "schema", Op: w.name(o),
					Msg: fmt.Sprintf("column %q appears on both sides", c)})
			}
		}
		want = append(append([]string{}, o.In[0].Schema()...), o.In[1].Schema()...)
	case algebra.OpDistinct:
		want = o.In[0].Schema()
	case algebra.OpRowNum:
		for _, s := range o.Order {
			need(0, s.Col)
		}
		if o.Part != "" {
			need(0, o.Part)
		}
		fresh(o.Col)
		want = append(append([]string{}, o.In[0].Schema()...), o.Col)
	case algebra.OpRowID:
		fresh(o.Col)
		want = append(append([]string{}, o.In[0].Schema()...), o.Col)
	case algebra.OpFun:
		need(0, o.Args...)
		fresh(o.Col)
		if len(o.Args) != o.Fun.Arity() {
			diags = append(diags, Diag{Class: "structure", Op: w.name(o),
				Msg: fmt.Sprintf("⊛%s has %d argument(s), wants %d", o.Fun, len(o.Args), o.Fun.Arity())})
		}
		want = append(append([]string{}, o.In[0].Schema()...), o.Col)
	case algebra.OpAggr:
		need(0, o.Args...)
		if o.Part != "" {
			need(0, o.Part)
			want = []string{o.Part, o.Col}
		} else {
			want = []string{o.Col}
		}
	case algebra.OpStep:
		need(0, "iter", "item")
		want = []string{"iter", "item"}
	case algebra.OpDoc, algebra.OpRoots:
		need(0, "iter", "item")
		want = o.In[0].Schema()
	case algebra.OpText:
		need(0, "iter", "item")
		want = []string{"iter", "item"}
	case algebra.OpColl:
		need(0, "iter", "item")
		want = []string{"iter", "pos", "item"}
	case algebra.OpRange:
		if len(o.KeyL) != 2 {
			diags = append(diags, Diag{Class: "structure", Op: w.name(o),
				Msg: fmt.Sprintf("range carries %d bound column(s), wants 2", len(o.KeyL))})
		} else {
			need(0, "iter", o.KeyL[0], o.KeyL[1])
		}
		want = []string{"iter", "pos", "item"}
	case algebra.OpElem:
		need(0, "iter", "item")
		if !hasCol(o.In[1].Schema(), "iter") || !hasCol(o.In[1].Schema(), "pos") || !hasCol(o.In[1].Schema(), "item") {
			diags = append(diags, Diag{Class: "schema", Op: w.name(o),
				Msg: fmt.Sprintf("content input lacks iter|pos|item (has %s)", schemaStr(o.In[1].Schema()))})
		}
		want = []string{"iter", "item"}
	case algebra.OpAttrC:
		need(0, "iter", "item")
		if !hasCol(o.In[1].Schema(), "iter") || !hasCol(o.In[1].Schema(), "item") {
			diags = append(diags, Diag{Class: "schema", Op: w.name(o),
				Msg: fmt.Sprintf("value input lacks iter|item (has %s)", schemaStr(o.In[1].Schema()))})
		}
		want = []string{"iter", "item"}
	default:
		diags = append(diags, Diag{Class: "structure", Op: w.name(o),
			Msg: fmt.Sprintf("unknown operator kind %d", o.Kind)})
		return diags
	}
	if !equalSchemas(o.Schema(), want) {
		diags = append(diags, Diag{Class: "schema", Op: w.name(o),
			Msg: fmt.Sprintf("declares schema %s but computes %s", schemaStr(o.Schema()), schemaStr(want))})
	}
	return diags
}

func checkKeys(w *walker, o *algebra.Op) []Diag {
	var diags []Diag
	if len(o.KeyL) != len(o.KeyR) || len(o.KeyL) == 0 {
		diags = append(diags, Diag{Class: "structure", Op: w.name(o),
			Msg: fmt.Sprintf("key lists %v and %v do not pair up", o.KeyL, o.KeyR)})
		return diags
	}
	for i := range o.KeyL {
		if !hasCol(o.In[0].Schema(), o.KeyL[i]) {
			diags = append(diags, Diag{Class: "schema", Op: w.name(o),
				Msg: fmt.Sprintf("left key %q missing from %s", o.KeyL[i], schemaStr(o.In[0].Schema()))})
		}
		if !hasCol(o.In[1].Schema(), o.KeyR[i]) {
			diags = append(diags, Diag{Class: "schema", Op: w.name(o),
				Msg: fmt.Sprintf("right key %q missing from %s", o.KeyR[i], schemaStr(o.In[1].Schema()))})
		}
	}
	return diags
}

func hasCol(schema []string, col string) bool {
	for _, c := range schema {
		if c == col {
			return true
		}
	}
	return false
}

func equalSchemas(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func schemaStr(s []string) string {
	if len(s) == 0 {
		return "(empty)"
	}
	return strings.Join(s, "|")
}

// Type pass -------------------------------------------------------------------

// colKind is the validator's abstract column type: a physical bat.ColType
// when statically known, kindUnknown otherwise. TItem is "any" — a
// polymorphic column can hold every kind, so it never contradicts a
// consumer. The pass only flags definite contradictions (a σ over a
// column proven integer, fn:root over proven strings), never possibles.
type colKind uint8

const (
	kindUnknown colKind = iota
	kindInt
	kindFloat
	kindStr
	kindBool
	kindNode
	kindAny // TItem: polymorphic, compatible with everything
)

func (k colKind) String() string {
	switch k {
	case kindInt:
		return "int"
	case kindFloat:
		return "dbl"
	case kindStr:
		return "str"
	case kindBool:
		return "bit"
	case kindNode:
		return "node"
	case kindAny:
		return "item"
	}
	return "unknown"
}

func kindOfVec(v bat.Vec) colKind {
	switch v.Type() {
	case bat.TInt:
		return kindInt
	case bat.TFloat:
		return kindFloat
	case bat.TStr:
		return kindStr
	case bat.TBool:
		return kindBool
	case bat.TNode:
		return kindNode
	default:
		return kindAny
	}
}

type typePass struct {
	w    *walker
	memo map[*algebra.Op]map[string]colKind
}

func newTypePass(w *walker) *typePass {
	return &typePass{w: w, memo: make(map[*algebra.Op]map[string]colKind)}
}

func (tp *typePass) kinds(o *algebra.Op) map[string]colKind {
	if m, ok := tp.memo[o]; ok {
		return m
	}
	m := tp.compute(o)
	tp.memo[o] = m
	return m
}

func (tp *typePass) compute(o *algebra.Op) map[string]colKind {
	out := make(map[string]colKind, len(o.Schema()))
	in := func(i int) map[string]colKind {
		if i < len(o.In) && o.In[i] != nil {
			return tp.kinds(o.In[i])
		}
		return nil
	}
	switch o.Kind {
	case algebra.OpLit:
		if o.Lit != nil {
			for _, c := range o.Lit.Cols() {
				out[c] = kindOfVec(o.Lit.MustCol(c))
			}
		}
	case algebra.OpProject:
		child := in(0)
		for _, p := range o.Proj {
			out[p.New] = child[p.Old]
		}
	case algebra.OpSelect, algebra.OpDistinct, algebra.OpSemiJoin, algebra.OpDiff:
		for c, k := range in(0) {
			out[c] = k
		}
	case algebra.OpJoin, algebra.OpCross:
		for c, k := range in(0) {
			out[c] = k
		}
		for c, k := range in(1) {
			out[c] = k
		}
	case algebra.OpUnion:
		l, r := in(0), in(1)
		for c, k := range l {
			if r[c] == k {
				out[c] = k
			} else {
				out[c] = kindAny // concat of mixed types materializes items
			}
		}
	case algebra.OpRowNum, algebra.OpRowID:
		for c, k := range in(0) {
			out[c] = k
		}
		out[o.Col] = kindInt
	case algebra.OpFun:
		for c, k := range in(0) {
			out[c] = k
		}
		out[o.Col] = kindUnknown // per-fun result typing stays runtime's job
	case algebra.OpAggr:
		if o.Part != "" {
			out[o.Part] = in(0)[o.Part]
		}
		switch o.Agg {
		case algebra.AggCount:
			out[o.Col] = kindInt
		case algebra.AggStrJoin:
			out[o.Col] = kindStr
		default:
			out[o.Col] = kindUnknown
		}
	case algebra.OpStep:
		out["iter"] = in(0)["iter"]
		out["item"] = kindNode
	case algebra.OpDoc, algebra.OpRoots:
		for c, k := range in(0) {
			out[c] = k
		}
		out["item"] = kindNode
	case algebra.OpElem, algebra.OpAttrC:
		out["iter"] = in(0)["iter"]
		out["item"] = kindNode
	case algebra.OpText:
		out["iter"] = in(0)["iter"]
		out["item"] = kindNode
	case algebra.OpRange:
		out["iter"] = in(0)["iter"]
		out["pos"] = kindInt
		out["item"] = kindInt
	case algebra.OpColl:
		out["iter"] = in(0)["iter"]
		out["pos"] = kindInt
		out["item"] = kindNode
	}
	return out
}

// check flags consumptions that contradict the inferred producer kind.
func (tp *typePass) check(o *algebra.Op) []Diag {
	var diags []Diag
	flag := func(col string, got colKind, wants string) {
		diags = append(diags, Diag{Class: "type", Op: tp.w.name(o),
			Msg: fmt.Sprintf("consumes column %q as %s but upstream produces %s", col, wants, got)})
	}
	definite := func(k colKind) bool { return k != kindUnknown && k != kindAny }
	switch o.Kind {
	case algebra.OpSelect:
		if k := tp.kinds(o.In[0])[o.Col]; definite(k) && k != kindBool {
			flag(o.Col, k, "boolean")
		}
	case algebra.OpStep, algebra.OpRoots:
		if k := tp.kinds(o.In[0])["item"]; definite(k) && k != kindNode {
			flag("item", k, "node")
		}
	case algebra.OpDoc:
		if k := tp.kinds(o.In[0])["item"]; definite(k) && k != kindStr {
			flag("item", k, "string URI")
		}
	case algebra.OpColl:
		if k := tp.kinds(o.In[0])["item"]; definite(k) && k != kindStr {
			flag("item", k, "collection name string")
		}
	case algebra.OpAggr:
		if len(o.Args) > 0 {
			k := tp.kinds(o.In[0])[o.Args[0]]
			if k == kindNode {
				flag(o.Args[0], k, "atomized value")
			}
			if o.Agg != algebra.AggStrJoin && (k == kindStr || k == kindBool) {
				flag(o.Args[0], k, "numeric")
			}
		}
	case algebra.OpRange:
		if len(o.KeyL) == 2 {
			for _, c := range o.KeyL {
				if k := tp.kinds(o.In[0])[c]; definite(k) && k != kindInt && k != kindFloat {
					flag(c, k, "integer bound")
				}
			}
		}
	}
	return diags
}
