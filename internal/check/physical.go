package check

import (
	"fmt"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/physical"
)

// Physical plan validation: the lowering pass (internal/physical) turns
// property bits into irreversible kernel choices — a merge join that
// skips the hash table, a ϱ that skips its sort, a morsel split that
// assumes an order-preserving decomposition exists. Each choice is a
// claim about the input; this pass re-proves every one from the logical
// DAG, so a corrupted property bit or a lowering bug surfaces as a
// diagnostic instead of a quietly wrong answer (the executor demotes
// some, but not all, of these at runtime).

// Physical validates a lowered plan: structural consistency between the
// physical node graph and the logical DAG, and the justification of
// every kernel choice and execution flag.
func Physical(p *physical.Plan) []Diag {
	var diags []Diag
	if p == nil || p.Root == nil || len(p.Nodes) == 0 {
		return []Diag{{Class: "structure", Op: "#? plan", Msg: "empty physical plan"}}
	}
	w := newWalker(p.Root.Op)
	diags = append(diags, physStructure(w, p)...)
	g := rederive(w.order)
	for _, nd := range p.Nodes {
		if nd.Op == nil {
			continue // reported by physStructure
		}
		diags = append(diags, physNode(w, nd, g)...)
		diags = append(diags, justifyProps(w, nd.Op, nd.Props, g[nd.Op])...)
	}
	diags = append(diags, physChains(w, p)...)
	return diags
}

// physChains re-proves every fused chain the lowering published. The
// executor runs a chain as one loop threading a selection vector from
// the head's input to the tail's boundary, so each claim below is a
// correctness precondition, not a preference: a breaker inside a chain
// would need its whole input before producing a row, a multi-consumer
// interior would hand a half-filtered view to an operator outside the
// chain, and a mark after a filter would number the survivors instead
// of the input positions.
func physChains(w *walker, p *physical.Plan) []Diag {
	var diags []Diag
	isNode := make(map[*physical.Node]bool, len(p.Nodes))
	consumers := make(map[*physical.Node]int, len(p.Nodes))
	for _, nd := range p.Nodes {
		isNode[nd] = true
		for _, c := range nd.In {
			consumers[c]++
		}
	}
	claimedBy := make(map[*physical.Node]int)
	for _, ch := range p.Chains {
		bad := func(o *algebra.Op, msg string, args ...any) {
			op := fmt.Sprintf("#? chain %d", ch.ID)
			if o != nil {
				op = w.name(o)
			}
			diags = append(diags, Diag{Class: "fusion", Op: op, Msg: fmt.Sprintf(msg, args...)})
		}
		if len(ch.Nodes) < 2 {
			bad(nil, "fused chain #%d has %d member(s); fusing buys nothing below 2", ch.ID, len(ch.Nodes))
			continue
		}
		hasFilter := false
		for i, nd := range ch.Nodes {
			if nd == nil || nd.Op == nil {
				bad(nil, "fused chain #%d member %d has no physical node", ch.ID, i)
				continue
			}
			o := nd.Op
			if !isNode[nd] {
				bad(o, "fused chain #%d member is not a node of this plan", ch.ID)
				continue
			}
			if prev, dup := claimedBy[nd]; dup {
				bad(o, "node claimed by fused chains #%d and #%d", prev, ch.ID)
			}
			claimedBy[nd] = ch.ID
			if !chainFusable(nd) {
				bad(o, "pipeline breaker %s (kernel %q) hidden inside fused chain #%d", o.Kind, nd.Kernel, ch.ID)
				continue
			}
			if len(nd.In) != 1 {
				bad(o, "fused chain #%d member has %d inputs (chains are unary pipelines)", ch.ID, len(nd.In))
				continue
			}
			if i > 0 && nd.In[0] != ch.Nodes[i-1] {
				bad(o, "fused chain #%d is not linear: member %d does not consume member %d", ch.ID, i, i-1)
			}
			if i < len(ch.Nodes)-1 && consumers[nd] != 1 {
				bad(o, "interior member of fused chain #%d has %d consumer(s) — the selection vector would leak past the chain boundary", ch.ID, consumers[nd])
			}
			if o.Kind == algebra.OpRowID && hasFilter {
				bad(o, "mark after a filter inside fused chain #%d: mark must number undisturbed input positions", ch.ID)
			}
			if o.Kind == algebra.OpSelect {
				hasFilter = true
			}
		}
	}
	return diags
}

// chainFusable is the validator's own list of chain-eligible kernels,
// mirroring what the fused executor implements (a per-row unary
// operator; ϱ only on its const-1 fast path) — not what
// internal/physical claims.
func chainFusable(nd *physical.Node) bool {
	switch nd.Op.Kind {
	case algebra.OpSelect, algebra.OpProject, algebra.OpFun, algebra.OpRowID:
		return true
	case algebra.OpRowNum:
		return nd.Const1
	}
	return false
}

// physStructure checks the node graph against the logical DAG: one node
// per logical operator, children lowered before parents, input pointers
// agreeing with the logical edges, root last.
func physStructure(w *walker, p *physical.Plan) []Diag {
	var diags []Diag
	pos := make(map[*physical.Node]int, len(p.Nodes))
	seenOp := make(map[*algebra.Op]bool, len(p.Nodes))
	for i, nd := range p.Nodes {
		pos[nd] = i
		if nd.Op == nil {
			diags = append(diags, Diag{Class: "structure", Op: fmt.Sprintf("#%d ?", i),
				Msg: "physical node without a logical operator"})
			continue
		}
		if seenOp[nd.Op] {
			diags = append(diags, Diag{Class: "structure", Op: w.name(nd.Op),
				Msg: "logical operator lowered to more than one physical node"})
		}
		seenOp[nd.Op] = true
		if mapped, ok := p.ByOp[nd.Op]; !ok || mapped != nd {
			diags = append(diags, Diag{Class: "structure", Op: w.name(nd.Op),
				Msg: "ByOp does not map the operator back to its node"})
		}
		if len(nd.In) != len(nd.Op.In) {
			diags = append(diags, Diag{Class: "structure", Op: w.name(nd.Op),
				Msg: fmt.Sprintf("node has %d input(s), logical operator has %d", len(nd.In), len(nd.Op.In))})
			continue
		}
		for k, c := range nd.In {
			if c == nil || c.Op != nd.Op.In[k] {
				diags = append(diags, Diag{Class: "structure", Op: w.name(nd.Op),
					Msg: fmt.Sprintf("input %d does not lower the matching logical input", k)})
				continue
			}
			if cp, ok := pos[c]; !ok || cp >= i {
				diags = append(diags, Diag{Class: "structure", Op: w.name(nd.Op),
					Msg: fmt.Sprintf("input %d is not scheduled before its consumer (topological order broken)", k)})
			}
		}
	}
	if p.Nodes[len(p.Nodes)-1] != p.Root {
		diags = append(diags, Diag{Class: "structure", Op: w.name(p.Root.Op),
			Msg: "root is not the last node in execution order"})
	}
	for _, o := range w.order {
		if !seenOp[o] {
			diags = append(diags, Diag{Class: "structure", Op: w.name(o),
				Msg: "logical operator has no physical node"})
		}
	}
	return diags
}

// physNode re-proves one node's kernel choice and execution flags.
func physNode(w *walker, nd *physical.Node, g map[*algebra.Op]guarantee) []Diag {
	var diags []Diag
	o := nd.Op
	bad := func(msg string, args ...any) {
		diags = append(diags, Diag{Class: "physical", Op: w.name(o), Msg: fmt.Sprintf(msg, args...)})
	}
	gin := func(i int) guarantee {
		if i < len(o.In) {
			return g[o.In[i]]
		}
		return guarantee{dense: noDense()}
	}

	// Merge kernel: single key, both inputs provably sorted on it.
	if nd.Merge {
		if o.Kind != algebra.OpJoin && o.Kind != algebra.OpSemiJoin {
			bad("Merge flag on a %s node", o.Kind)
		} else if len(o.KeyL) != 1 {
			bad("merge kernel over %d key columns (needs exactly 1)", len(o.KeyL))
		} else {
			if !gin(0).sortedOn(o.KeyL[0]) {
				bad("merge kernel requires the left input sorted on %q, which cannot be proven", o.KeyL[0])
			}
			if !gin(1).sortedOn(o.KeyR[0]) {
				bad("merge kernel requires the right input sorted on %q, which cannot be proven", o.KeyR[0])
			}
		}
	}
	if (o.Kind == algebra.OpJoin || o.Kind == algebra.OpSemiJoin) &&
		nd.Merge != strings.HasPrefix(nd.Kernel, "merge-") {
		bad("kernel %q disagrees with Merge=%v", nd.Kernel, nd.Merge)
	}

	// ϱ fast paths: const-1 needs a dense partition column, presorted
	// needs the input provably in (partition, order...) ascending order.
	if nd.Const1 || nd.Presorted {
		if o.Kind != algebra.OpRowNum {
			bad("rownum fast-path flag on a %s node", o.Kind)
		}
	}
	if o.Kind == algebra.OpRowNum {
		if nd.Const1 && nd.Presorted {
			bad("both const1 and presorted set")
		}
		if nd.Const1 && (o.Part == "" || !gin(0).dense[o.Part]) {
			bad("rownum[const1] requires a provably dense partition column %q", o.Part)
		}
		if nd.Presorted {
			var need []string
			if o.Part != "" {
				need = append(need, o.Part)
			}
			for _, s := range o.Order {
				if s.Desc {
					bad("rownum[presorted] over a descending order column %q", s.Col)
				}
				need = append(need, s.Col)
			}
			if !gin(0).sortedOn(need...) {
				bad("rownum[presorted] requires the input sorted on (%s), which cannot be proven",
					strings.Join(need, ","))
			}
		}
		switch {
		case nd.Const1 && nd.Kernel != "rownum[const1]",
			nd.Presorted && nd.Kernel != "rownum[presorted]",
			!nd.Const1 && !nd.Presorted && nd.Kernel != "rownum[sort]":
			bad("kernel %q disagrees with const1=%v presorted=%v", nd.Kernel, nd.Const1, nd.Presorted)
		}
	}

	// Parallel flag: only kernels with an order-preserving morsel
	// decomposition the executor implements may split, and only when the
	// static cardinality bound does not already prove the input tiny.
	if nd.Parallel {
		if !morselSafe(o, nd) {
			bad("Parallel flag on kernel %q, whose decomposition the executor does not implement", nd.Kernel)
		}
		if nd.EstRows >= 0 && nd.EstRows < physical.ParallelMinRows {
			bad("Parallel flag on an operator statically bounded to %d row(s) (< %d)",
				nd.EstRows, physical.ParallelMinRows)
		}
	}

	// Pipeline flag: the view-producing kernels only; a breaker marked
	// pipeline misreports materialization and plan rendering.
	if nd.Pipeline && !pipelineKernel(o.Kind) {
		bad("Pipeline flag on breaker %s", o.Kind)
	}

	if nd.EstRows < -1 {
		bad("EstRows %d is neither unknown (-1) nor a cardinality bound", nd.EstRows)
	}
	return diags
}

// morselSafe is the validator's own list of operators whose kernels admit
// an order-preserving morsel decomposition (stitch per-morsel buffers in
// morsel order, or merge per-morsel partitions). It mirrors what
// internal/engine actually implements, not what internal/physical claims.
func morselSafe(o *algebra.Op, nd *physical.Node) bool {
	switch o.Kind {
	case algebra.OpSelect, algebra.OpFun, algebra.OpDiff, algebra.OpDistinct, algebra.OpStep:
		return true
	case algebra.OpJoin, algebra.OpSemiJoin:
		// Hash build and probe split; the merge kernel is one ordered scan.
		return !nd.Merge
	case algebra.OpAggr:
		// Scalar aggregation is a single fold whose float summation order
		// must not change; only grouped aggregation merges per-morsel.
		return o.Part != ""
	}
	return false
}

func pipelineKernel(k algebra.OpKind) bool {
	switch k {
	case algebra.OpProject, algebra.OpSelect, algebra.OpDiff, algebra.OpSemiJoin,
		algebra.OpRowID, algebra.OpFun, algebra.OpDoc, algebra.OpRoots:
		return true
	}
	return false
}
