// Package check is the static-analysis layer for plans: it re-verifies
// the invariants every stage of the compiler claims and every later stage
// silently relies on. Three trust boundaries are covered:
//
//   - Schema well-formedness of logical DAGs (Logical): every consumed
//     column is produced upstream, declared schemas match what the
//     operator actually computes, and the light type inference flags
//     columns consumed at a kind the producer provably never emits.
//   - Order/denseness soundness (Properties): the sortedness, strictness
//     and denseness bits the optimizer publishes (internal/opt) — the bits
//     that drive rownum elimination and merge-join selection — are
//     cross-checked against an independent conservative re-derivation.
//   - Physical preconditions (Physical): merge-join inputs are provably
//     sorted on the key, rownum[presorted]/[const1] are justified, and
//     Parallel/Pipeline flags appear only on kernels whose morsel
//     decomposition the executor actually implements.
//
// A validator failure means an upstream pass produced a plan whose
// silent assumptions do not hold — the class of bug that yields quietly
// wrong answers, not crashes. `pf -check` runs all three layers;
// the differential tests run them on every compiled plan; the engine's
// Check mode re-asserts the claims on live intermediate tables.
package check

import (
	"fmt"
	"sort"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/opt"
	"pathfinder/internal/physical"
)

// Diag is one validator finding. Op numbers refer to the bottom-up
// topological order of the plan (algebra.Topo), so diagnostics are stable
// across runs and renderable as goldens.
type Diag struct {
	// Class is the invariant family: "structure", "schema", "type",
	// "order", "dense", or "physical".
	Class string
	// Op locates the finding: "#3 join" style, topological index + kind.
	Op string
	// Msg states what claim failed and why.
	Msg string
}

func (d Diag) String() string {
	return fmt.Sprintf("[%s] %s: %s", d.Class, d.Op, d.Msg)
}

// Render formats diagnostics one per line, stably ordered (topological
// index first, then class, then message) — the shape the golden tests pin.
func Render(diags []Diag) string {
	sorted := append([]Diag(nil), diags...)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Op != sorted[b].Op {
			return sorted[a].Op < sorted[b].Op
		}
		if sorted[a].Class != sorted[b].Class {
			return sorted[a].Class < sorted[b].Class
		}
		return sorted[a].Msg < sorted[b].Msg
	})
	var sb strings.Builder
	for _, d := range sorted {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Error folds diagnostics into a single error; nil when the plan is clean.
func Error(diags []Diag) error {
	if len(diags) == 0 {
		return nil
	}
	return fmt.Errorf("plan validation failed (%d finding(s)):\n%s",
		len(diags), strings.TrimRight(Render(diags), "\n"))
}

// walker numbers operators in bottom-up topological order so every
// diagnostic names its operator stably.
type walker struct {
	order []*algebra.Op
	index map[*algebra.Op]int
}

func newWalker(root *algebra.Op) *walker {
	order := algebra.Topo(root)
	index := make(map[*algebra.Op]int, len(order))
	for i, o := range order {
		index[o] = i
	}
	return &walker{order: order, index: index}
}

func (w *walker) name(o *algebra.Op) string {
	if i, ok := w.index[o]; ok {
		return fmt.Sprintf("#%d %s", i, o.Kind)
	}
	return fmt.Sprintf("#? %s", o.Kind)
}

// Logical validates the logical DAG rooted at root: operator arity,
// schema recomputation against the declared schemas, and the light type
// pass. It subsumes algebra.Validate and reports every finding instead of
// stopping at the first.
func Logical(root *algebra.Op) []Diag {
	w := newWalker(root)
	var diags []Diag
	types := newTypePass(w)
	for _, o := range w.order {
		diags = append(diags, checkArity(w, o)...)
		if len(o.In) != arityOf(o.Kind) {
			continue // schema recomputation needs the declared inputs
		}
		diags = append(diags, checkSchema(w, o)...)
		diags = append(diags, types.check(o)...)
	}
	return diags
}

// Properties cross-checks the optimizer's published order/denseness bits
// against the validator's independent re-derivation: every claim must be
// implied by what the conservative analysis can prove. props is the map
// the physical lowering pass consumes (opt.Properties(root)).
func Properties(root *algebra.Op, props map[*algebra.Op]opt.Props) []Diag {
	w := newWalker(root)
	g := rederive(w.order)
	var diags []Diag
	for _, o := range w.order {
		p, ok := props[o]
		if !ok {
			diags = append(diags, Diag{Class: "order", Op: w.name(o),
				Msg: "no properties published for operator"})
			continue
		}
		diags = append(diags, justifyProps(w, o, p, g[o])...)
	}
	return diags
}

// justifyProps verifies one operator's published properties against the
// re-derived guarantee.
func justifyProps(w *walker, o *algebra.Op, p opt.Props, g guarantee) []Diag {
	var diags []Diag
	if len(p.Sorted) > 0 && !hasPrefix(g.sorted, p.Sorted) {
		diags = append(diags, Diag{Class: "order", Op: w.name(o),
			Msg: fmt.Sprintf("claims sorted(%s) but re-derivation proves only sorted(%s)",
				strings.Join(p.Sorted, ","), strings.Join(g.sorted, ","))})
	}
	if p.Strict && len(p.Sorted) > 0 &&
		!(g.strict && len(p.Sorted) == len(g.sorted) && hasPrefix(g.sorted, p.Sorted)) {
		diags = append(diags, Diag{Class: "order", Op: w.name(o),
			Msg: fmt.Sprintf("claims key(%s) but re-derivation cannot prove the prefix duplicate-free",
				strings.Join(p.Sorted, ","))})
	}
	for _, c := range p.Dense {
		if !g.dense[c] {
			diags = append(diags, Diag{Class: "dense", Op: w.name(o),
				Msg: fmt.Sprintf("claims dense(%s) but re-derivation cannot prove 1..n", c)})
		}
	}
	return diags
}

// Plan runs every validation layer over one logical plan: Logical on the
// DAG, Properties against a fresh opt.Properties inference, and Physical
// on a fresh lowering. This is the entry point `pf -check` and the
// differential tests use for plans that came out of the compiler.
func Plan(root *algebra.Op) []Diag {
	diags := Logical(root)
	if len(diags) > 0 {
		// A malformed schema makes property inference meaningless; stop.
		return diags
	}
	diags = append(diags, Properties(root, opt.Properties(root))...)
	diags = append(diags, Physical(physical.Lower(root))...)
	return diags
}

// hasPrefix reports whether want is a prefix of have.
func hasPrefix(have, want []string) bool {
	if len(want) > len(have) {
		return false
	}
	for i, c := range want {
		if have[i] != c {
			return false
		}
	}
	return true
}
