package xmark

import (
	"strings"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/navdom"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

const testSF = 0.002

func TestCountsScaleLinearly(t *testing.T) {
	small := CountsFor(0.1)
	large := CountsFor(1.0)
	if large.Items != 21750 || large.People != 25500 || large.Open != 12000 ||
		large.Closed != 9750 || large.Categories != 1000 {
		t.Errorf("SF1 counts = %+v", large)
	}
	if small.Items != 2175 {
		t.Errorf("SF0.1 items = %d", small.Items)
	}
	tiny := CountsFor(0.0001)
	if tiny.People < 60 || tiny.Items < 36 {
		t.Errorf("floors not applied: %+v", tiny)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateString(testSF)
	b := GenerateString(testSF)
	if a != b {
		t.Fatal("generator is not deterministic")
	}
	if len(a) < 10_000 {
		t.Fatalf("document too small: %d bytes", len(a))
	}
}

func TestGeneratedDocumentParses(t *testing.T) {
	doc := GenerateString(testSF)
	store := xenc.NewStore()
	ref, err := store.LoadDocumentString("xmark.xml", doc)
	if err != nil {
		t.Fatalf("shred: %v", err)
	}
	if err := store.Frag(ref.Frag).Validate(); err != nil {
		t.Fatalf("encoding invariants: %v", err)
	}
	db := navdom.NewDB()
	if _, err := db.LoadString("xmark.xml", doc); err != nil {
		t.Fatalf("DOM parse: %v", err)
	}
}

func TestGeneratedStructureSupportsQueries(t *testing.T) {
	doc := GenerateString(testSF)
	for _, marker := range []string{
		`id="person0"`, `id="item0"`, `id="category0"`, `id="open_auction0"`,
		"<regions>", "<australia>", "<europe>", "<closed_auctions>",
		"<bidder>", "<increase>", "<profile", "income=", "<homepage>",
		"<parlist><listitem><parlist><listitem><text><emph><keyword>",
		"<itemref item=", "<buyer person=", "<interest category=",
		"<catgraph>", "<edge from=",
	} {
		if !strings.Contains(doc, marker) {
			t.Errorf("generated document lacks %q", marker)
		}
	}
}

func TestDocumentSizeScalesLinearly(t *testing.T) {
	// Above the entity floors, document bytes grow linearly with the
	// scale factor (a factor-10 SF step gives roughly 10x the bytes).
	small := len(GenerateString(0.02))
	large := len(GenerateString(0.2))
	ratio := float64(large) / float64(small)
	if ratio < 7 || ratio > 13 {
		t.Errorf("size ratio across one decade = %.1f (want ≈10)", ratio)
	}
}

func TestAllTwentyQueriesPresent(t *testing.T) {
	for n := 1; n <= NumQueries; n++ {
		if Query(n) == "" {
			t.Errorf("query %d missing", n)
		}
	}
}

// TestXMarkDifferential runs all 20 benchmark queries on both engines over
// the same generated instance and requires identical serialized results —
// the integration test tying the whole reproduction together.
func TestXMarkDifferential(t *testing.T) {
	doc := GenerateString(testSF)
	eng := engine.New(xenc.NewStore())
	if _, err := eng.Store.LoadDocumentString("xmark.xml", doc); err != nil {
		t.Fatal(err)
	}
	db := navdom.NewDB()
	if _, err := db.LoadString("xmark.xml", doc); err != nil {
		t.Fatal(err)
	}
	db.AddValueIndex("buyer", "person")
	opt := xqcore.Options{ContextDoc: "xmark.xml"}
	nonEmpty := 0
	for n := 1; n <= NumQueries; n++ {
		rel, errR := core.Run(Query(n), eng, opt)
		nav, errN := navdom.NewInterp(db).Run(Query(n), opt)
		if errR != nil || errN != nil {
			t.Errorf("Q%d: relational err=%v, navigational err=%v", n, errR, errN)
			continue
		}
		if rel != nav {
			la, lb := rel, nav
			if len(la) > 400 {
				la = la[:400] + "..."
			}
			if len(lb) > 400 {
				lb = lb[:400] + "..."
			}
			t.Errorf("Q%d results differ:\n rel = %q\n nav = %q", n, la, lb)
			continue
		}
		if rel != "" {
			nonEmpty++
		}
	}
	if nonEmpty < 16 {
		t.Errorf("only %d/20 queries returned results; the workload is too sparse", nonEmpty)
	}
}

// TestJoinQueriesAreRecognized asserts the compiler's join recognition
// fires for the join queries the paper highlights (Q8–Q12).
func TestJoinQueriesAreRecognized(t *testing.T) {
	opt := xqcore.Options{ContextDoc: "xmark.xml"}
	wantEqui := map[int]int{8: 1, 9: 2, 10: 1}
	wantTheta := map[int]int{11: 1, 12: 1}
	for n := range wantEqui {
		coreExpr, err := xqcore.NormalizeExpr(Query(n), opt)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		_, stats, err := core.CompileWithStats(coreExpr)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if stats.EquiJoins < wantEqui[n] {
			t.Errorf("Q%d: equi-joins = %d, want >= %d (stats %+v)", n, stats.EquiJoins, wantEqui[n], stats)
		}
	}
	for n := range wantTheta {
		coreExpr, err := xqcore.NormalizeExpr(Query(n), opt)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		_, stats, err := core.CompileWithStats(coreExpr)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if stats.ThetaJoins < wantTheta[n] {
			t.Errorf("Q%d: theta-joins = %d, want >= %d (stats %+v)", n, stats.ThetaJoins, wantTheta[n], stats)
		}
	}
}

func TestStorageOverheadBand(t *testing.T) {
	// §3.1: the encoding costs on the order of the serialized document
	// (the paper reports 125–147% for small instances). Our generator and
	// pools land in a broadly similar band; assert sane bounds.
	doc := GenerateString(0.005)
	store := xenc.NewStore()
	if _, err := store.LoadDocumentString("xmark.xml", doc); err != nil {
		t.Fatal(err)
	}
	rep := store.Report()
	ratio := float64(rep.Total()) / float64(len(doc))
	if ratio < 0.3 || ratio > 3.0 {
		t.Errorf("storage ratio = %.2f, outside sane band", ratio)
	}
	if rep.Nodes == 0 || rep.Attrs == 0 {
		t.Error("empty report")
	}
}
