package xmark

// words is the vocabulary the generator draws prose from; the original
// xmlgen samples Shakespeare, we sample a fixed list (including "gold",
// which XMark Q14 searches for).
var words = []string{
	"gold", "silver", "ancient", "auction", "bargain", "bidding", "bright",
	"broken", "brother", "candle", "castle", "charge", "cheap", "china",
	"clock", "copper", "crown", "curious", "daughter", "dealer", "desk",
	"diamond", "dozen", "dragon", "dust", "eager", "early", "empire",
	"estate", "evening", "fairly", "famous", "feather", "fine", "flute",
	"foreign", "fortune", "frame", "garden", "gentle", "glass", "grand",
	"green", "hammer", "handle", "heavy", "hidden", "honest", "horse",
	"hunter", "island", "ivory", "jewel", "keeper", "kingdom", "ladder",
	"lantern", "large", "leather", "letter", "little", "lovely", "market",
	"marble", "master", "merchant", "mirror", "modest", "morning", "museum",
	"narrow", "needle", "noble", "ocean", "offer", "orange", "organ",
	"painted", "palace", "paper", "pearl", "pewter", "piano", "picture",
	"pillow", "pleasant", "pocket", "polished", "porcelain", "pretty",
	"prince", "proper", "purple", "quaint", "quarter", "queen", "quiet",
	"rare", "ribbon", "river", "royal", "rustic", "saddle", "sailor",
	"scarce", "scarlet", "school", "secret", "shadow", "shiny", "simple",
	"sketch", "smooth", "soldier", "splendid", "spring", "stable", "statue",
	"steady", "stone", "street", "summer", "sturdy", "sudden", "sunset",
	"table", "tailor", "temple", "tender", "theatre", "thimble", "timber",
	"trade", "treasure", "trumpet", "velvet", "village", "vintage",
	"violet", "wagon", "walnut", "weather", "willow", "window", "winter",
	"wooden", "worthy", "yellow",
}

// firstNames and lastNames make up person names.
var firstNames = []string{
	"Alice", "Benno", "Carla", "Dario", "Edith", "Farid", "Greta", "Hugo",
	"Ines", "Jonas", "Katja", "Lars", "Mira", "Nils", "Olga", "Pavel",
	"Quinn", "Rosa", "Sven", "Tilda", "Umut", "Vera", "Wim", "Xenia",
	"Yara", "Zeno",
}

var lastNames = []string{
	"Adler", "Brandt", "Conrad", "Dietz", "Engel", "Fischer", "Graf",
	"Hoffmann", "Issel", "Jung", "Krause", "Lang", "Maurer", "Neumann",
	"Otto", "Paulsen", "Quast", "Richter", "Sommer", "Thiel", "Ulrich",
	"Vogel", "Wagner", "Ziegler",
}

var cities = []string{
	"Amsterdam", "Berlin", "Chicago", "Dublin", "Edinburgh", "Florence",
	"Geneva", "Helsinki", "Istanbul", "Johannesburg", "Kyoto", "Lisbon",
	"Madrid", "Nairobi", "Oslo", "Prague", "Quebec", "Rome", "Sydney",
	"Toronto", "Utrecht", "Vienna", "Warsaw", "Zurich",
}

var countries = []string{
	"United States", "Germany", "Netherlands", "France", "Japan",
	"Australia", "Brazil", "Canada", "India", "Kenya", "Norway", "Spain",
}
