package xmark

// The 20 XMark benchmark queries [10], adapted to the dialect of Table 2
// in the paper (predicates expressed through where clauses where the
// original used filter syntax outside the supported subset; document
// access through the context document, which the harness binds to the
// generated instance). Query numbering and intent follow the original
// benchmark:
//
//	Q1        exact match          Q11, Q12  theta-join (value-based)
//	Q2–Q4     ordered access       Q13       reconstruction
//	Q5        casting              Q14       full text
//	Q6, Q7    regular path exprs   Q15, Q16  deep path traversals
//	Q8–Q10    equi-joins           Q17       missing elements
//	                               Q18       user-defined functions
//	                               Q19       sorting
//	                               Q20       aggregation
var queryTexts = map[int]string{
	1: `for $b in /site/people/person
	    where $b/@id = "person0"
	    return $b/name/text()`,

	2: `for $b in /site/open_auctions/open_auction
	    return <increase>{$b/bidder[1]/increase/text()}</increase>`,

	3: `for $b in /site/open_auctions/open_auction
	    where $b/bidder[1]/increase * 2 <= $b/bidder[last()]/increase
	    return <increase first="{$b/bidder[1]/increase/text()}"
	                     last="{$b/bidder[last()]/increase/text()}"/>`,

	4: `for $b in /site/open_auctions/open_auction
	    where some $pr1 in $b/bidder/personref[@person = "person20"],
	          $pr2 in $b/bidder/personref[@person = "person51"]
	          satisfies $pr1 << $pr2
	    return <history>{$b/reserve/text()}</history>`,

	5: `count(for $i in /site/closed_auctions/closed_auction
	          where $i/price >= 40
	          return $i/price)`,

	6: `for $b in /site/regions return count($b//item)`,

	7: `for $p in /site
	    return count($p//description) + count($p//annotation) + count($p//emailaddress)`,

	8: `for $p in /site/people/person
	    let $a := for $t in /site/closed_auctions/closed_auction
	              where $t/buyer/@person = $p/@id
	              return $t
	    return <item person="{$p/name/text()}">{count($a)}</item>`,

	9: `for $p in /site/people/person
	    let $a := for $t in /site/closed_auctions/closed_auction
	              let $n := for $t2 in /site/regions/europe/item
	                        where $t/itemref/@item = $t2/@id
	                        return $t2
	              where $p/@id = $t/buyer/@person
	              return <item>{$n/name/text()}</item>
	    return <person name="{$p/name/text()}">{$a}</person>`,

	10: `for $c in /site/categories/category
	     let $p := for $p2 in /site/people/person
	               where $p2/profile/interest/@category = $c/@id
	               return <personne>
	                        <statistiques>
	                          <sexe>{$p2/profile/gender/text()}</sexe>
	                          <age>{$p2/profile/age/text()}</age>
	                          <education>{$p2/profile/education/text()}</education>
	                          <revenu>{data($p2/profile/@income)}</revenu>
	                        </statistiques>
	                        <coordonnees>
	                          <nom>{$p2/name/text()}</nom>
	                          <rue>{$p2/address/street/text()}</rue>
	                          <ville>{$p2/address/city/text()}</ville>
	                          <pays>{$p2/address/country/text()}</pays>
	                          <email>{$p2/emailaddress/text()}</email>
	                        </coordonnees>
	                      </personne>
	     return <categorie>{$c/name}{$p}</categorie>`,

	11: `for $p in /site/people/person
	     let $l := for $i in /site/open_auctions/open_auction/initial
	               where $p/profile/@income > 5000 * $i
	               return $i
	     return <items name="{$p/name/text()}">{count($l)}</items>`,

	12: `for $p in /site/people/person
	     let $l := for $i in /site/open_auctions/open_auction/initial
	               where $p/profile/@income > 5000 * $i
	               return $i
	     where $p/profile/@income > 50000
	     return <items person="{$p/name/text()}">{count($l)}</items>`,

	13: `for $i in /site/regions/australia/item
	     return <item name="{$i/name/text()}">{$i/description}</item>`,

	14: `for $i in /site//item
	     where contains(string($i/description), "gold")
	     return $i/name/text()`,

	15: `for $a in /site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
	     return <text>{$a}</text>`,

	16: `for $a in /site/closed_auctions/closed_auction
	     where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
	     return <person id="{$a/seller/@person}"/>`,

	17: `for $p in /site/people/person
	     where empty($p/homepage/text())
	     return <person name="{$p/name/text()}"/>`,

	18: `declare function local:convert($v) { 2.20371 * $v };
	     for $i in /site/open_auctions/open_auction
	     return local:convert(zero-or-one($i/reserve))`,

	19: `for $b in /site/regions//item
	     let $k := $b/name/text()
	     order by zero-or-one($b/location) ascending
	     return <item name="{$k}">{$b/location/text()}</item>`,

	20: `<result>
	      <preferred>{count(/site/people/person/profile[@income >= 100000])}</preferred>
	      <standard>{count(/site/people/person/profile[@income < 100000 and @income >= 30000])}</standard>
	      <challenge>{count(/site/people/person/profile[@income < 30000])}</challenge>
	      <na>{count(for $p in /site/people/person
	                 where empty($p/profile/@income)
	                 return $p)}</na>
	     </result>`,
}

// Query returns the text of benchmark query n (1–20).
func Query(n int) string { return queryTexts[n] }

// NumQueries is the size of the benchmark set.
const NumQueries = 20
