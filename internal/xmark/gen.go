// Package xmark is the workload substrate of the reproduction: a
// deterministic stand-in for the XMark benchmark's xmlgen document
// generator [10] plus the twenty benchmark queries, adapted to the XQuery
// dialect of Table 2. Documents follow the auction-site schema
// (site/regions/categories/people/open_auctions/closed_auctions) with
// entity counts linear in the scale factor, so SF 1 corresponds to the
// original generator's ≈100 MB instance and the SF decades of the paper's
// Table 3 map onto proportionally smaller inputs.
package xmark

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Counts are the entity cardinalities for a scale factor.
type Counts struct {
	Items      int
	People     int
	Open       int
	Closed     int
	Categories int
}

// CountsFor scales the XMark SF-1 cardinalities (21750 items, 25500
// persons, 12000 open and 9750 closed auctions, 1000 categories) with
// floors that keep the 20 queries meaningful on tiny instances.
func CountsFor(sf float64) Counts {
	scale := func(base, floor int) int {
		n := int(float64(base) * sf)
		if n < floor {
			return floor
		}
		return n
	}
	return Counts{
		Items:      scale(21750, 36),
		People:     scale(25500, 60),
		Open:       scale(12000, 24),
		Closed:     scale(9750, 24),
		Categories: scale(1000, 6),
	}
}

// regions lists the six continent elements with their share of the items.
var regions = []struct {
	name  string
	share float64
}{
	{"africa", 0.05},
	{"asia", 0.15},
	{"australia", 0.10},
	{"europe", 0.30},
	{"namerica", 0.30},
	{"samerica", 0.10},
}

// Generate writes an auction document for the given scale factor. The
// output is deterministic in sf.
func Generate(w io.Writer, sf float64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	g := &gen{w: bw, r: rand.New(rand.NewSource(int64(sf*1e6) + 42)), c: CountsFor(sf)}
	g.doc()
	if g.err != nil {
		return g.err
	}
	return bw.Flush()
}

// GenerateString is Generate into a string.
func GenerateString(sf float64) string {
	var sb strings.Builder
	_ = Generate(&sb, sf)
	return sb.String()
}

type gen struct {
	w   *bufio.Writer
	r   *rand.Rand
	c   Counts
	err error
}

func (g *gen) printf(format string, args ...any) {
	if g.err != nil {
		return
	}
	if _, err := fmt.Fprintf(g.w, format, args...); err != nil {
		g.err = err
	}
}

func (g *gen) text(minWords, maxWords int) string {
	n := minWords + g.r.Intn(maxWords-minWords+1)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = words[g.r.Intn(len(words))]
	}
	return strings.Join(parts, " ")
}

func (g *gen) name() string {
	return firstNames[g.r.Intn(len(firstNames))] + " " + lastNames[g.r.Intn(len(lastNames))]
}

func (g *gen) date() string {
	return fmt.Sprintf("%02d/%02d/%04d", 1+g.r.Intn(12), 1+g.r.Intn(28), 1998+g.r.Intn(4))
}

func (g *gen) chance(p float64) bool { return g.r.Float64() < p }

func (g *gen) doc() {
	g.printf("<site>\n")
	g.regions()
	g.categories()
	g.catgraph()
	g.people()
	g.openAuctions()
	g.closedAuctions()
	g.printf("</site>\n")
}

// catgraph emits the category-similarity edges of the XMark schema
// (roughly one edge per category, like the original generator).
func (g *gen) catgraph() {
	g.printf("<catgraph>\n")
	for i := 0; i < g.c.Categories; i++ {
		g.printf(`<edge from="category%d" to="category%d"/>`+"\n",
			g.r.Intn(g.c.Categories), g.r.Intn(g.c.Categories))
	}
	g.printf("</catgraph>\n")
}

func (g *gen) regions() {
	g.printf("<regions>\n")
	next := 0
	for i, reg := range regions {
		count := int(float64(g.c.Items) * reg.share)
		if i == len(regions)-1 {
			count = g.c.Items - next // remainder keeps the total exact
		}
		g.printf("<%s>\n", reg.name)
		for j := 0; j < count; j++ {
			g.item(next)
			next++
		}
		g.printf("</%s>\n", reg.name)
	}
	g.printf("</regions>\n")
}

func (g *gen) item(id int) {
	g.printf(`<item id="item%d"`, id)
	if g.chance(0.15) {
		g.printf(` featured="yes"`)
	}
	g.printf(">\n")
	g.printf("<location>%s</location>\n", countries[g.r.Intn(len(countries))])
	g.printf("<quantity>%d</quantity>\n", 1+g.r.Intn(10))
	g.printf("<name>%s</name>\n", g.text(2, 4))
	g.printf("<payment>Creditcard</payment>\n")
	g.printf("<description><text>%s</text></description>\n", g.text(10, 40))
	g.printf("<shipping>Will ship internationally</shipping>\n")
	nCat := 1 + g.r.Intn(3)
	for k := 0; k < nCat; k++ {
		g.printf(`<incategory category="category%d"/>`+"\n", g.r.Intn(g.c.Categories))
	}
	if g.chance(0.6) {
		g.printf("<mailbox>\n")
		for m := g.r.Intn(3); m > 0; m-- {
			g.printf("<mail>\n<from>%s</from>\n<to>%s</to>\n<date>%s</date>\n<text>%s</text>\n</mail>\n",
				g.name(), g.name(), g.date(), g.text(5, 20))
		}
		g.printf("</mailbox>\n")
	}
	g.printf("</item>\n")
}

func (g *gen) categories() {
	g.printf("<categories>\n")
	for i := 0; i < g.c.Categories; i++ {
		g.printf(`<category id="category%d">`+"\n", i)
		g.printf("<name>%s</name>\n", g.text(1, 3))
		g.printf("<description><text>%s</text></description>\n", g.text(5, 20))
		g.printf("</category>\n")
	}
	g.printf("</categories>\n")
}

func (g *gen) people() {
	g.printf("<people>\n")
	for i := 0; i < g.c.People; i++ {
		name := g.name()
		g.printf(`<person id="person%d">`+"\n", i)
		g.printf("<name>%s</name>\n", name)
		g.printf("<emailaddress>mailto:%s@example.com</emailaddress>\n",
			strings.ReplaceAll(strings.ToLower(name), " ", "."))
		if g.chance(0.4) {
			g.printf("<phone>+%d (%d) %d</phone>\n", 1+g.r.Intn(48), 100+g.r.Intn(900), 1000000+g.r.Intn(9000000))
		}
		if g.chance(0.6) {
			g.printf("<address>\n<street>%d %s St</street>\n<city>%s</city>\n<country>%s</country>\n<zipcode>%d</zipcode>\n</address>\n",
				1+g.r.Intn(99), words[g.r.Intn(len(words))],
				cities[g.r.Intn(len(cities))], countries[g.r.Intn(len(countries))],
				10000+g.r.Intn(89999))
		}
		if g.chance(0.5) {
			g.printf("<homepage>http://www.example.com/~person%d</homepage>\n", i)
		}
		if g.chance(0.4) {
			g.printf("<creditcard>%d %d %d %d</creditcard>\n",
				1000+g.r.Intn(9000), 1000+g.r.Intn(9000), 1000+g.r.Intn(9000), 1000+g.r.Intn(9000))
		}
		if g.chance(0.8) {
			g.profile()
		}
		if g.chance(0.3) {
			g.printf("<watches>\n")
			for wn := 1 + g.r.Intn(2); wn > 0; wn-- {
				g.printf(`<watch open_auction="open_auction%d"/>`+"\n", g.r.Intn(g.c.Open))
			}
			g.printf("</watches>\n")
		}
		g.printf("</person>\n")
	}
	g.printf("</people>\n")
}

func (g *gen) profile() {
	if g.chance(0.85) {
		income := 9876.50 + g.r.Float64()*g.r.Float64()*140000
		g.printf(`<profile income="%.2f">`+"\n", income)
	} else {
		g.printf("<profile>\n")
	}
	for in := g.r.Intn(4); in > 0; in-- {
		g.printf(`<interest category="category%d"/>`+"\n", g.r.Intn(g.c.Categories))
	}
	if g.chance(0.4) {
		g.printf("<education>Graduate School</education>\n")
	}
	if g.chance(0.5) {
		g.printf("<gender>%s</gender>\n", pick(g.r, "male", "female"))
	}
	g.printf("<business>%s</business>\n", pick(g.r, "Yes", "No"))
	if g.chance(0.3) {
		g.printf("<age>%d</age>\n", 18+g.r.Intn(60))
	}
	g.printf("</profile>\n")
}

func (g *gen) openAuctions() {
	g.printf("<open_auctions>\n")
	for i := 0; i < g.c.Open; i++ {
		g.printf(`<open_auction id="open_auction%d">`+"\n", i)
		initial := 1.5 + g.r.Float64()*298
		g.printf("<initial>%.2f</initial>\n", initial)
		if g.chance(0.4) {
			g.printf("<reserve>%.2f</reserve>\n", initial*(1.2+g.r.Float64()))
		}
		current := initial
		for bn := g.r.Intn(6); bn > 0; bn-- {
			inc := 1.5 * float64(1+g.r.Intn(8))
			current += inc
			g.printf("<bidder>\n<date>%s</date>\n<time>%02d:%02d:%02d</time>\n", g.date(), g.r.Intn(24), g.r.Intn(60), g.r.Intn(60))
			g.printf(`<personref person="person%d"/>`+"\n", g.r.Intn(g.c.People))
			g.printf("<increase>%.2f</increase>\n</bidder>\n", inc)
		}
		g.printf("<current>%.2f</current>\n", current)
		if g.chance(0.3) {
			g.printf("<privacy>Yes</privacy>\n")
		}
		g.printf(`<itemref item="item%d"/>`+"\n", g.r.Intn(g.c.Items))
		g.printf(`<seller person="person%d"/>`+"\n", g.r.Intn(g.c.People))
		g.printf(`<annotation>`+"\n"+`<author person="person%d"/>`+"\n", g.r.Intn(g.c.People))
		g.printf("<description><text>%s</text></description>\n</annotation>\n", g.text(5, 25))
		g.printf("<quantity>%d</quantity>\n", 1+g.r.Intn(5))
		g.printf("<type>%s</type>\n", pick(g.r, "Regular", "Featured"))
		g.printf("<interval><start>%s</start><end>%s</end></interval>\n", g.date(), g.date())
		g.printf("</open_auction>\n")
	}
	g.printf("</open_auctions>\n")
}

func (g *gen) closedAuctions() {
	g.printf("<closed_auctions>\n")
	for i := 0; i < g.c.Closed; i++ {
		g.printf("<closed_auction>\n")
		g.printf(`<seller person="person%d"/>`+"\n", g.r.Intn(g.c.People))
		g.printf(`<buyer person="person%d"/>`+"\n", g.r.Intn(g.c.People))
		g.printf(`<itemref item="item%d"/>`+"\n", g.r.Intn(g.c.Items))
		g.printf("<price>%.2f</price>\n", 5+g.r.Float64()*295)
		g.printf("<date>%s</date>\n", g.date())
		g.printf("<quantity>%d</quantity>\n", 1+g.r.Intn(5))
		g.printf("<type>%s</type>\n", pick(g.r, "Regular", "Featured"))
		g.printf(`<annotation>`+"\n"+`<author person="person%d"/>`+"\n", g.r.Intn(g.c.People))
		if g.chance(0.12) {
			// The deep prose structure XMark Q15/Q16 navigate.
			g.printf("<description><parlist><listitem><parlist><listitem><text><emph><keyword>%s</keyword></emph> %s</text></listitem></parlist></listitem></parlist></description>\n",
				words[g.r.Intn(len(words))], g.text(3, 10))
		} else {
			g.printf("<description><text>%s</text></description>\n", g.text(5, 25))
		}
		g.printf("</annotation>\n</closed_auction>\n")
	}
	g.printf("</closed_auctions>\n")
}

func pick(r *rand.Rand, a, b string) string {
	if r.Intn(2) == 0 {
		return a
	}
	return b
}
