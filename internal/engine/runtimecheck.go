package engine

import (
	"fmt"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/physical"
)

// Runtime invariant assertions (Config.Check). The static validator
// (internal/check) proves what the plan *claims*; this file re-asserts
// the claims on the live intermediate tables while a query runs, so a
// kernel whose implementation breaks an invariant — an unstable sort, a
// selection vector built out of order, a morsel stitch in the wrong
// order — fails the evaluation loudly instead of feeding a downstream
// merge join garbage.

// CheckMaxRows caps how many rows of each intermediate the runtime check
// walks. The interesting violations (wrong order after a stitch, a hole
// in a dense column) show up in the first rows of the affected region;
// an unbounded walk would turn O(n) kernels into O(n·cols) re-scans.
const CheckMaxRows = 65536

// checkNodeOutput asserts one physical kernel's output against its
// operator's declared schema and the order/denseness bits the plan
// carries for it.
func checkNodeOutput(nd *physical.Node, v *bat.View) error {
	if v == nil {
		return fmt.Errorf("runtime check: kernel produced no view")
	}
	if err := checkSchemaAgainst(v.Base().Cols(), nd.Op); err != nil {
		return err
	}
	n := v.Rows()
	if n > CheckMaxRows {
		n = CheckMaxRows
	}
	p := nd.Props
	if len(p.Sorted) > 0 {
		vecs := make([]bat.Vec, len(p.Sorted))
		for i, c := range p.Sorted {
			vec, err := v.Base().Col(c)
			if err != nil {
				return fmt.Errorf("runtime check: sorted column %q missing: %w", c, err)
			}
			vecs[i] = vec
		}
		for r := 1; r < n; r++ {
			c := compareViewRows(v, vecs, r-1, r)
			if c > 0 {
				return fmt.Errorf("runtime check: %s output not sorted on (%v) at row %d",
					nd.Op.Kind, p.Sorted, r)
			}
			if c == 0 && p.Strict {
				return fmt.Errorf("runtime check: %s output has duplicate key (%v) at row %d",
					nd.Op.Kind, p.Sorted, r)
			}
		}
	}
	for _, c := range p.Dense {
		vec, err := v.Base().Col(c)
		if err != nil {
			return fmt.Errorf("runtime check: dense column %q missing: %w", c, err)
		}
		for r := 0; r < n; r++ {
			it := vec.ItemAt(v.Index(r))
			if it.Kind != bat.KInt || it.I != int64(r)+1 {
				return fmt.Errorf("runtime check: %s column %q claimed dense but row %d holds %s",
					nd.Op.Kind, c, r, it.StringValue())
			}
		}
	}
	return nil
}

// checkSchemaAgainst asserts that the produced column list matches the
// operator's declared schema, name for name and in order — the contract
// every consumer kernel indexes by.
func checkSchemaAgainst(cols []string, o *algebra.Op) error {
	want := o.Schema()
	if len(cols) != len(want) {
		return fmt.Errorf("runtime check: produced %d column(s) %v, schema declares %d %v",
			len(cols), cols, len(want), want)
	}
	for i := range want {
		if cols[i] != want[i] {
			return fmt.Errorf("runtime check: column %d is %q, schema declares %q (%v vs %v)",
				i, cols[i], want[i], cols, want)
		}
	}
	return nil
}

// compareViewRows compares two view rows over the given base vectors.
func compareViewRows(v *bat.View, vecs []bat.Vec, a, b int) int {
	ia, ib := v.Index(a), v.Index(b)
	for _, vec := range vecs {
		if c := bat.CompareTotal(vec.ItemAt(ia), vec.ItemAt(ib)); c != 0 {
			return c
		}
	}
	return 0
}
