package engine

// White-box tests for the Config.Check runtime assertions: corrupted
// plans are injected past the static validator — straight into the
// engine's lowered-plan cache, or as in-place-edited logical nodes — and
// evaluation must fail loudly instead of returning a quietly wrong
// result.

import (
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/opt"
	"pathfinder/internal/physical"
	"pathfinder/internal/xenc"
)

func checkEngine(t *testing.T) *Engine {
	t.Helper()
	return NewWithConfig(xenc.NewStore(), Config{Workers: 1, Check: true})
}

func mustTable(t *testing.T, pairs ...any) *bat.Table {
	t.Helper()
	tab, err := bat.NewTable(pairs...)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestRuntimeCheckForgedSorted plants a lowered plan whose root claims a
// sortedness the data violates; the kernel output scan must refuse it.
func TestRuntimeCheckForgedSorted(t *testing.T) {
	e := checkEngine(t)
	root := algebra.Lit(mustTable(t, "item", bat.IntVec{3, 1, 2}))
	plan := physical.Lower(root)
	plan.Root.Props = opt.Props{Sorted: []string{"item"}}
	e.sh.plans.Store(root, plan)

	_, err := e.Eval(root)
	if err == nil {
		t.Fatal("evaluation accepted a forged sortedness claim")
	}
	if !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("wrong failure: %v", err)
	}
}

// TestRuntimeCheckForgedDense plants a dense (1..n) claim over a column
// with a hole in it.
func TestRuntimeCheckForgedDense(t *testing.T) {
	e := checkEngine(t)
	root := algebra.Lit(mustTable(t, "pos", bat.IntVec{1, 2, 4}))
	plan := physical.Lower(root)
	plan.Root.Props = opt.Props{Sorted: []string{"pos"}, Strict: true, Dense: []string{"pos"}}
	e.sh.plans.Store(root, plan)

	_, err := e.Eval(root)
	if err == nil {
		t.Fatal("evaluation accepted a forged denseness claim")
	}
	if !strings.Contains(err.Error(), "claimed dense") {
		t.Fatalf("wrong failure: %v", err)
	}
}

// TestRuntimeCheckForgedStrict plants a duplicate-free claim over a
// column with duplicates.
func TestRuntimeCheckForgedStrict(t *testing.T) {
	e := checkEngine(t)
	root := algebra.Lit(mustTable(t, "iter", bat.IntVec{1, 1, 2}))
	plan := physical.Lower(root)
	plan.Root.Props = opt.Props{Sorted: []string{"iter"}, Strict: true}
	e.sh.plans.Store(root, plan)

	_, err := e.Eval(root)
	if err == nil {
		t.Fatal("evaluation accepted a forged strictness claim")
	}
	if !strings.Contains(err.Error(), "duplicate key") {
		t.Fatalf("wrong failure: %v", err)
	}
}

// TestRuntimeCheckSchemaDrift evaluates an operator whose declared schema
// does not match what its kernel computes — on both the physical and the
// legacy path, which share the schema assertion.
func TestRuntimeCheckSchemaDrift(t *testing.T) {
	build := func() *algebra.Op {
		in := algebra.Lit(mustTable(t, "iter", bat.IntVec{1, 2}, "item", bat.IntVec{3, 4}))
		return algebra.Unchecked(algebra.OpDistinct, []string{"iter", "bogus"}, in)
	}
	for _, legacy := range []bool{false, true} {
		e := NewWithConfig(xenc.NewStore(), Config{Workers: 1, Check: true, Legacy: legacy})
		_, err := e.Eval(build())
		if err == nil {
			t.Fatalf("legacy=%v: evaluation accepted a drifted schema", legacy)
		}
		if !strings.Contains(err.Error(), "schema declares") {
			t.Fatalf("legacy=%v: wrong failure: %v", legacy, err)
		}
	}
}

// TestRuntimeCheckCleanPlanPasses guards against the assertions
// themselves rejecting a legitimate plan with real properties.
func TestRuntimeCheckCleanPlanPasses(t *testing.T) {
	e := checkEngine(t)
	in := algebra.Lit(mustTable(t, "iter", bat.IntVec{2, 1, 3}, "item", bat.IntVec{1, 2, 3}))
	rn, err := algebra.RowNum(in, "pos", []algebra.OrderSpec{{Col: "iter"}}, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Eval(rn)
	if err != nil {
		t.Fatalf("runtime check rejected a clean plan: %v", err)
	}
	if res.Rows() != 3 {
		t.Fatalf("got %d rows, want 3", res.Rows())
	}
}
