package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"pathfinder/internal/bat"
)

// Morsel-driven intra-operator parallelism (the HyPer execution model):
// a kernel's input selection is carved into fixed-size row ranges
// (morsels) and a small team of goroutines claims them from a shared
// atomic cursor — work stealing in its simplest form, since an idle
// worker always takes the next unclaimed morsel regardless of which
// worker claimed the previous one. Parallelism therefore scales with
// data size, not plan shape: a single long operator chain saturates the
// machine as soon as one operator's input is large.
//
// Both parallelism levels — the DAG scheduler's operator tasks and the
// morsel teams inside an operator — share one worker budget
// (Config.Workers, default GOMAXPROCS). Engine.working counts busy
// workers; an operator host holds one slot for itself while executing
// and a morsel team reserves only the spare slots, so the process never
// runs more than the configured number of CPU-bound goroutines.
//
// Every parallel kernel is order-preserving by construction: morsels
// are claimed in ascending order but each writes to its own slot of a
// per-morsel output array, and the host stitches the slots in morsel
// order. The result is byte-identical to the sequential scan for every
// worker count — the property the differential tests pin down.

// DefaultMorselRows is the morsel granularity: large enough that the
// per-morsel claim (one atomic add) vanishes next to the row work,
// small enough that a skewed morsel cannot leave the team idle long.
const DefaultMorselRows = 16384

// morselRows resolves the engine's morsel size: MorselRows when
// positive, DefaultMorselRows when zero; negative disables morsel
// parallelism entirely (every kernel runs its sequential path).
func (e *Engine) morselRows() int {
	switch {
	case e.MorselRows > 0:
		return e.MorselRows
	case e.MorselRows < 0:
		return 0
	}
	return DefaultMorselRows
}

// reserveWorkers claims up to want spare slots from the shared worker
// budget, returning how many it got (possibly zero — the reservation
// never blocks; an operator that gets no helpers just runs
// sequentially). The caller already holds its own slot.
func (e *Engine) reserveWorkers(want int) int {
	limit := int32(e.workerCount())
	for want > 0 {
		cur := e.sh.working.Load()
		spare := limit - cur
		if spare <= 0 {
			return 0
		}
		n := int32(want)
		if n > spare {
			n = spare
		}
		if e.sh.working.CompareAndSwap(cur, cur+n) {
			return int(n)
		}
	}
	return 0
}

// releaseWorkers returns reserved slots to the budget.
func (e *Engine) releaseWorkers(n int) {
	if n > 0 {
		e.sh.working.Add(-int32(n))
	}
}

// morsels is the per-kernel handle for morsel execution: it decides the
// split (sequential unless the lowering marked the operator Parallel),
// runs the per-morsel closures on the team, and records what happened
// for the evaluation trace.
type morsels struct {
	e   *Engine
	ctx context.Context
	par bool // lowering marked this operator morsel-parallel

	n       int // morsels actually run (0 = kernel never split)
	workers int // team size of the largest run (0 = never split)
}

// split carves n rows into morsels when the operator is parallel and the
// input is big enough to yield at least two; otherwise one covering
// range (possibly empty), which every kernel treats as "run the
// sequential path".
func (m *morsels) split(n int) []bat.Range {
	size := m.e.morselRows()
	if !m.par || size <= 0 || n <= size {
		return []bat.Range{{Lo: 0, Hi: max(n, 0)}}
	}
	return bat.SplitRows(n, size)
}

// run executes fn(i) for every morsel index on the caller plus any spare
// workers it can reserve. Morsels are claimed in ascending order from an
// atomic cursor; on failure the team drains its claimed morsels and the
// error of the lowest-indexed failing morsel wins — the same error the
// sequential scan would have hit first, since every morsel below the
// failing one was claimed before it and runs to completion.
func (m *morsels) run(nm int, fn func(i int) error) error {
	if nm > m.n {
		m.n = nm
	}
	if nm < 2 {
		for i := 0; i < nm; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	extra := m.e.reserveWorkers(nm - 1)
	if extra == 0 {
		for i := 0; i < nm; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	defer m.e.releaseWorkers(extra)
	if extra+1 > m.workers {
		m.workers = extra + 1
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		errs   = make([]error, nm)
		wg     sync.WaitGroup
	)
	work := func() {
		for !failed.Load() {
			i := int(cursor.Add(1) - 1)
			if i >= nm {
				return
			}
			if err := m.ctx.Err(); err != nil {
				errs[i] = err
				failed.Store(true)
				return
			}
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}
	for w := 0; w < extra; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// concatSel stitches per-morsel selection buffers in morsel order.
func concatSel(parts [][]int32) []int32 {
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// concatVecs stitches per-morsel result vectors in morsel order. All
// parts come from the same typed kernel over slices of the same input
// vectors, so they share a physical type and the builder append is the
// typed copy.
func concatVecs(parts []bat.Vec) bat.Vec {
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	b := parts[0].New(total)
	for _, p := range parts {
		for i, n := 0, p.Len(); i < n; i++ {
			b.AppendFrom(p, i)
		}
	}
	return b.Build()
}
