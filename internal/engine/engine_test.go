package engine

import (
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

func must(o *algebra.Op, err error) *algebra.Op {
	if err != nil {
		panic(err)
	}
	return o
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	return New(xenc.NewStore())
}

func evalOn(t *testing.T, e *Engine, o *algebra.Op) *bat.Table {
	t.Helper()
	tb, err := e.Eval(o)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func ints(t *testing.T, tb *bat.Table, col string) []int64 {
	t.Helper()
	v, err := tb.Col(col)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, v.Len())
	for i := range out {
		out[i] = v.ItemAt(i).I
	}
	return out
}

func eqInts(a []int64, b ...int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestProjectSelectFun(t *testing.T) {
	e := newEngine(t)
	lit := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 2, 3},
		"item", bat.ItemVec{bat.Int(5), bat.Int(10), bat.Int(15)},
	))
	ten := must(algebra.Fun(
		must(algebra.Cross(lit, algebra.Lit(bat.MustTable("c", bat.ItemVec{bat.Int(10)})))),
		"big", algebra.FunGt, "item", "c"))
	sel := must(algebra.Select(ten, "big"))
	out := evalOn(t, e, must(algebra.Project(sel, "iter")))
	if !eqInts(ints(t, out, "iter"), 3) {
		t.Errorf("rows = %v", ints(t, out, "iter"))
	}
}

func TestSelectRejectsNonBool(t *testing.T) {
	e := newEngine(t)
	lit := algebra.Lit(bat.MustTable("x", bat.ItemVec{bat.Int(1)}))
	if _, err := e.Eval(must(algebra.Select(lit, "x"))); err == nil {
		t.Error("σ over ints must fail")
	}
}

func TestUnionConcatsAndReorders(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable("a", bat.IntVec{1}, "b", bat.StrVec{"x"}))
	r := algebra.Lit(bat.MustTable("b", bat.StrVec{"y"}, "a", bat.IntVec{2}))
	out := evalOn(t, e, must(algebra.Union(l, r)))
	if !eqInts(ints(t, out, "a"), 1, 2) {
		t.Errorf("a = %v", ints(t, out, "a"))
	}
	if out.MustCol("b").ItemAt(1).S != "y" {
		t.Error("b reorder failed")
	}
}

func TestUnionMixedColumnTypes(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable("v", bat.IntVec{1}))
	r := algebra.Lit(bat.MustTable("v", bat.ItemVec{bat.Str("s")}))
	out := evalOn(t, e, must(algebra.Union(l, r)))
	if out.MustCol("v").ItemAt(0).I != 1 || out.MustCol("v").ItemAt(1).S != "s" {
		t.Error("mixed union content")
	}
}

func TestDiffAntiJoin(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable("iter", bat.IntVec{1, 2, 3, 4}))
	r := algebra.Lit(bat.MustTable("o", bat.IntVec{2, 4}))
	out := evalOn(t, e, must(algebra.Diff(l, r, []string{"iter"}, []string{"o"})))
	if !eqInts(ints(t, out, "iter"), 1, 3) {
		t.Errorf("diff = %v", ints(t, out, "iter"))
	}
}

func TestDistinct(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"a", bat.IntVec{1, 1, 2, 1},
		"b", bat.ItemVec{bat.Str("x"), bat.Str("x"), bat.Str("x"), bat.Str("y")},
	))
	out := evalOn(t, e, algebra.Distinct(l))
	if out.Rows() != 3 {
		t.Errorf("distinct rows = %d", out.Rows())
	}
	// First occurrence kept: order 1x, 2x, 1y.
	if !eqInts(ints(t, out, "a"), 1, 2, 1) {
		t.Errorf("order = %v", ints(t, out, "a"))
	}
}

func TestJoinMatchesAndSemiJoin(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 2, 3},
		"v", bat.ItemVec{bat.Str("a"), bat.Str("b"), bat.Str("a")},
	))
	r := algebra.Lit(bat.MustTable(
		"w", bat.ItemVec{bat.Str("a"), bat.Str("a")},
		"tag", bat.IntVec{10, 20},
	))
	out := evalOn(t, e, must(algebra.Join(l, r, []string{"v"}, []string{"w"})))
	// iter 1 and 3 each match both right rows → 4 rows, left-major order.
	if !eqInts(ints(t, out, "iter"), 1, 1, 3, 3) {
		t.Errorf("join iters = %v", ints(t, out, "iter"))
	}
	if !eqInts(ints(t, out, "tag"), 10, 20, 10, 20) {
		t.Errorf("join tags = %v", ints(t, out, "tag"))
	}
	semi := evalOn(t, e, must(algebra.SemiJoin(l, r, []string{"v"}, []string{"w"})))
	if !eqInts(ints(t, semi, "iter"), 1, 3) {
		t.Errorf("semijoin iters = %v", ints(t, semi, "iter"))
	}
}

func TestJoinNumericPromotionAcrossKeys(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable("k", bat.ItemVec{bat.Int(5)}, "lx", bat.IntVec{1}))
	r := algebra.Lit(bat.MustTable("j", bat.ItemVec{bat.Float(5)}, "rx", bat.IntVec{2}))
	out := evalOn(t, e, must(algebra.Join(l, r, []string{"k"}, []string{"j"})))
	if out.Rows() != 1 {
		t.Error("5 must join with 5.0")
	}
}

func TestCrossOrder(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable("a", bat.IntVec{1, 2}))
	r := algebra.Lit(bat.MustTable("b", bat.IntVec{10, 20}))
	out := evalOn(t, e, must(algebra.Cross(l, r)))
	if !eqInts(ints(t, out, "a"), 1, 1, 2, 2) || !eqInts(ints(t, out, "b"), 10, 20, 10, 20) {
		t.Error("cross must be left-major")
	}
}

func TestRowNumPartitionedOrdered(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{2, 1, 2, 1},
		"key", bat.IntVec{9, 5, 3, 7},
	))
	out := evalOn(t, e, must(algebra.RowNum(l, "pos",
		[]algebra.OrderSpec{{Col: "key"}}, "iter")))
	// Sorted by (iter, key): (1,5)(1,7)(2,3)(2,9) numbered 1,2,1,2.
	if !eqInts(ints(t, out, "pos"), 1, 2, 1, 2) {
		t.Errorf("pos = %v", ints(t, out, "pos"))
	}
	if !eqInts(ints(t, out, "key"), 5, 7, 3, 9) {
		t.Errorf("key order = %v", ints(t, out, "key"))
	}
}

func TestRowNumDescending(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable("k", bat.IntVec{1, 3, 2}))
	out := evalOn(t, e, must(algebra.RowNum(l, "n",
		[]algebra.OrderSpec{{Col: "k", Desc: true}}, "")))
	if !eqInts(ints(t, out, "k"), 3, 2, 1) {
		t.Errorf("desc order = %v", ints(t, out, "k"))
	}
}

func TestRowIDMark(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable("k", bat.IntVec{7, 8, 9}))
	out := evalOn(t, e, must(algebra.RowID(l, "id")))
	if !eqInts(ints(t, out, "id"), 1, 2, 3) {
		t.Errorf("mark = %v", ints(t, out, "id"))
	}
}

func TestAggregates(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1, 2},
		"v", bat.ItemVec{bat.Int(4), bat.Int(6), bat.Int(10)},
	))
	cnt := evalOn(t, e, must(algebra.Aggr(l, "c", algebra.AggCount, "", "iter")))
	if !eqInts(ints(t, cnt, "c"), 2, 1) {
		t.Errorf("count = %v", ints(t, cnt, "c"))
	}
	sum := evalOn(t, e, must(algebra.Aggr(l, "s", algebra.AggSum, "v", "iter")))
	if !eqInts(ints(t, sum, "s"), 10, 10) {
		t.Errorf("sum = %v", ints(t, sum, "s"))
	}
	mx := evalOn(t, e, must(algebra.Aggr(l, "m", algebra.AggMax, "v", "")))
	if mx.Rows() != 1 || mx.MustCol("m").ItemAt(0).I != 10 {
		t.Error("global max")
	}
	avg := evalOn(t, e, must(algebra.Aggr(l, "a", algebra.AggAvg, "v", "")))
	if avg.MustCol("a").ItemAt(0).F != 20.0/3.0 {
		t.Error("avg")
	}
}

func TestAggregateSumPromotesUntyped(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1},
		"v", bat.ItemVec{bat.Untyped("1.5"), bat.Int(2)},
	))
	sum := evalOn(t, e, must(algebra.Aggr(l, "s", algebra.AggSum, "v", "iter")))
	if got := sum.MustCol("s").ItemAt(0).AsFloat(); got != 3.5 {
		t.Errorf("sum = %v", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1},
		"v", bat.ItemVec{bat.Str("abc")},
	))
	if _, err := e.Eval(must(algebra.Aggr(l, "s", algebra.AggSum, "v", "iter"))); err == nil {
		t.Error("sum over non-numeric string must fail")
	}
}

func TestFunArithPromotion(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"a", bat.ItemVec{bat.Int(7), bat.Untyped("2.5"), bat.Int(7)},
		"b", bat.ItemVec{bat.Int(2), bat.Int(2), bat.Float(2)},
	))
	add := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunAdd, "a", "b")))
	r := add.MustCol("r")
	if r.ItemAt(0).Kind != bat.KInt || r.ItemAt(0).I != 9 {
		t.Error("int+int")
	}
	if r.ItemAt(1).Kind != bat.KFloat || r.ItemAt(1).F != 4.5 {
		t.Error("untyped promotes to double")
	}
	if r.ItemAt(2).Kind != bat.KFloat || r.ItemAt(2).F != 9 {
		t.Error("int+double is double")
	}
	div := evalOn(t, e, must(algebra.Fun(l, "q", algebra.FunDiv, "a", "b")))
	if div.MustCol("q").ItemAt(0).F != 3.5 {
		t.Error("div yields double")
	}
	idiv := evalOn(t, e, must(algebra.Fun(l, "i", algebra.FunIDiv, "a", "b")))
	if idiv.MustCol("i").ItemAt(0).I != 3 {
		t.Error("idiv truncates")
	}
	mod := evalOn(t, e, must(algebra.Fun(l, "m", algebra.FunMod, "a", "b")))
	if mod.MustCol("m").ItemAt(0).I != 1 {
		t.Error("mod")
	}
}

func TestFunDivByZero(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"a", bat.ItemVec{bat.Int(1)}, "b", bat.ItemVec{bat.Int(0)},
	))
	if _, err := e.Eval(must(algebra.Fun(l, "r", algebra.FunDiv, "a", "b"))); err == nil {
		t.Error("integer division by zero must fail")
	}
	if _, err := e.Eval(must(algebra.Fun(l, "r", algebra.FunIDiv, "a", "b"))); err == nil {
		t.Error("idiv by zero must fail")
	}
}

func TestFunStringsAndBooleans(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"a", bat.ItemVec{bat.Str("hello gold ring")},
		"b", bat.ItemVec{bat.Str("gold")},
		"t", bat.BoolVec{true},
		"f", bat.BoolVec{false},
	))
	c := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunContains, "a", "b")))
	if !c.MustCol("r").ItemAt(0).B {
		t.Error("contains")
	}
	sw := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunStartsWith, "a", "b")))
	if sw.MustCol("r").ItemAt(0).B {
		t.Error("starts-with")
	}
	cc := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunConcat, "a", "b")))
	if cc.MustCol("r").ItemAt(0).S != "hello gold ringgold" {
		t.Error("concat")
	}
	ln := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunStringLength, "a")))
	if ln.MustCol("r").ItemAt(0).I != 15 {
		t.Error("string-length")
	}
	and := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunAnd, "t", "f")))
	if and.MustCol("r").ItemAt(0).B {
		t.Error("and")
	}
	or := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunOr, "t", "f")))
	if !or.MustCol("r").ItemAt(0).B {
		t.Error("or")
	}
	not := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunNot, "f")))
	if !not.MustCol("r").ItemAt(0).B {
		t.Error("not")
	}
}

func TestFunComparisonErrorsPropagate(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"a", bat.ItemVec{bat.Str("x")}, "b", bat.ItemVec{bat.Int(1)},
	))
	if _, err := e.Eval(must(algebra.Fun(l, "r", algebra.FunLt, "a", "b"))); err == nil {
		t.Error("incomparable types must fail the query")
	}
}

func TestFunNodePrimitives(t *testing.T) {
	e := newEngine(t)
	doc, err := e.Store.LoadDocumentString("d.xml", "<a><b>1</b><c>2</c></a>")
	if err != nil {
		t.Fatal(err)
	}
	b := bat.NodeRef{Frag: doc.Frag, Pre: 2}
	c := bat.NodeRef{Frag: doc.Frag, Pre: 4}
	l := algebra.Lit(bat.MustTable(
		"x", bat.NodeVec{b, b},
		"y", bat.NodeVec{c, b},
	))
	before := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunDocBefore, "x", "y")))
	if !before.MustCol("r").ItemAt(0).B || before.MustCol("r").ItemAt(1).B {
		t.Error("<<")
	}
	is := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunNodeIs, "x", "y")))
	if is.MustCol("r").ItemAt(0).B || !is.MustCol("r").ItemAt(1).B {
		t.Error("is")
	}
	at := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunAtomize, "x")))
	got := at.MustCol("r").ItemAt(0)
	if got.Kind != bat.KUntyped || got.S != "1" {
		t.Errorf("atomize = %v", got)
	}
}

func TestTypeTest(t *testing.T) {
	e := newEngine(t)
	doc, err := e.Store.LoadDocumentString("d.xml", "<a>t</a>")
	if err != nil {
		t.Fatal(err)
	}
	elemRef := bat.NodeRef{Frag: doc.Frag, Pre: 1}
	textRef := bat.NodeRef{Frag: doc.Frag, Pre: 2}
	l := algebra.Lit(bat.MustTable("v", bat.ItemVec{
		bat.Node(elemRef), bat.Node(textRef), bat.Int(1), bat.Str("s"), bat.Bool(true), bat.Untyped("u"),
	}))
	check := func(ty algebra.SeqType, name string, want ...bool) {
		t.Helper()
		o := must(algebra.TypeTest(l, "r", ty, name, "v"))
		out := evalOn(t, e, o)
		for i, w := range want {
			if out.MustCol("r").ItemAt(i).B != w {
				t.Errorf("%s[%d] = %v, want %v", ty, i, !w, w)
			}
		}
	}
	check(algebra.TyNode, "", true, true, false, false, false, false)
	check(algebra.TyElem, "", true, false, false, false, false, false)
	check(algebra.TyElem, "a", true, false, false, false, false, false)
	check(algebra.TyElem, "b", false, false, false, false, false, false)
	check(algebra.TyText, "", false, true, false, false, false, false)
	check(algebra.TyInteger, "", false, false, true, false, false, false)
	check(algebra.TyString, "", false, false, false, true, false, false)
	check(algebra.TyBoolean, "", false, false, false, false, true, false)
	check(algebra.TyUntyped, "", false, false, false, false, false, true)
	check(algebra.TyAtomic, "", false, false, true, true, true, true)
	check(algebra.TyItem, "", true, true, true, true, true, true)
}

func TestDocOpAndResolver(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Store.LoadDocumentString("a.xml", "<r/>"); err != nil {
		t.Fatal(err)
	}
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1},
		"item", bat.ItemVec{bat.Str("a.xml")},
	))
	out := evalOn(t, e, must(algebra.DocOp(l)))
	if out.MustCol("item").ItemAt(0).N.Pre != 0 {
		t.Error("doc node expected")
	}
	// Missing doc without resolver errors.
	l2 := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1},
		"item", bat.ItemVec{bat.Str("missing.xml")},
	))
	if _, err := e.Eval(must(algebra.DocOp(l2))); err == nil {
		t.Error("missing doc must fail")
	}
	// With resolver, it loads.
	e.Resolve = func(s *xenc.Store, uri string) (bat.NodeRef, error) {
		return s.LoadDocumentString(uri, "<loaded/>")
	}
	out2 := evalOn(t, e, must(algebra.DocOp(l2)))
	if e.Store.NameOf(bat.NodeRef{Frag: out2.MustCol("item").ItemAt(0).N.Frag, Pre: 1}) != "loaded" {
		t.Error("resolver load failed")
	}
}

func TestRootsOp(t *testing.T) {
	e := newEngine(t)
	doc, err := e.Store.LoadDocumentString("d.xml", "<a><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1},
		"item", bat.NodeVec{{Frag: doc.Frag, Pre: 2}},
	))
	out := evalOn(t, e, must(algebra.Roots(l)))
	if out.MustCol("item").ItemAt(0).N.Pre != 0 {
		t.Error("root of <b> is the doc node")
	}
}

func TestElemConstruction(t *testing.T) {
	e := newEngine(t)
	doc, err := e.Store.LoadDocumentString("d.xml", "<x><y>inner</y></x>")
	if err != nil {
		t.Fatal(err)
	}
	names := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 2},
		"item", bat.StrVec{"wrap", "wrap"},
	))
	content := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1, 2},
		"pos", bat.IntVec{1, 2, 1},
		"item", bat.ItemVec{
			bat.Int(42), bat.Node(bat.NodeRef{Frag: doc.Frag, Pre: 2}),
			bat.Str("only"),
		},
	))
	out := evalOn(t, e, must(algebra.Elem(names, content)))
	if out.Rows() != 2 {
		t.Fatalf("rows = %d", out.Rows())
	}
	got1 := e.Store.Serialize(out.MustCol("item").ItemAt(0).N)
	if got1 != "<wrap>42<y>inner</y></wrap>" {
		t.Errorf("elem 1 = %q", got1)
	}
	got2 := e.Store.Serialize(out.MustCol("item").ItemAt(1).N)
	if got2 != "<wrap>only</wrap>" {
		t.Errorf("elem 2 = %q", got2)
	}
}

func TestElemAdjacentAtomicsSpaceJoined(t *testing.T) {
	e := newEngine(t)
	names := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "item", bat.StrVec{"r"},
	))
	content := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1, 1},
		"pos", bat.IntVec{1, 2, 3},
		"item", bat.ItemVec{bat.Int(1), bat.Int(2), bat.Str("three")},
	))
	out := evalOn(t, e, must(algebra.Elem(names, content)))
	got := e.Store.Serialize(out.MustCol("item").ItemAt(0).N)
	if got != "<r>1 2 three</r>" {
		t.Errorf("got %q", got)
	}
}

func TestElemWithConstructedAttribute(t *testing.T) {
	e := newEngine(t)
	aNames := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "item", bat.StrVec{"id"},
	))
	aVals := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "item", bat.ItemVec{bat.Int(7)},
	))
	attr := must(algebra.AttrC(aNames, aVals))
	withPos := must(algebra.RowID(attr, "pos"))
	names := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "item", bat.StrVec{"e"},
	))
	out := evalOn(t, e, must(algebra.Elem(names, withPos)))
	got := e.Store.Serialize(out.MustCol("item").ItemAt(0).N)
	if got != `<e id="7"/>` {
		t.Errorf("got %q", got)
	}
}

func TestElemErrors(t *testing.T) {
	e := newEngine(t)
	names := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1}, "item", bat.StrVec{"a", "b"},
	))
	empty := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{}, "pos", bat.IntVec{}, "item", bat.ItemVec{},
	))
	if _, err := e.Eval(must(algebra.Elem(names, empty))); err == nil {
		t.Error("duplicate qname iter must fail")
	}
	orphan := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{5}, "pos", bat.IntVec{1}, "item", bat.ItemVec{bat.Int(1)},
	))
	one := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{7}, "item", bat.StrVec{"a"},
	))
	if _, err := e.Eval(must(algebra.Elem(one, orphan))); err == nil {
		t.Error("content without matching qname iter must fail")
	}
}

func TestTextConstruction(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 2},
		"item", bat.ItemVec{bat.Str("hello"), bat.Str("")},
	))
	out := evalOn(t, e, must(algebra.Text(l)))
	if out.Rows() != 1 {
		t.Fatalf("empty text must construct no node; rows = %d", out.Rows())
	}
	n := out.MustCol("item").ItemAt(0).N
	if e.Store.StringValue(n) != "hello" || e.Store.KindOf(n) != xenc.KindText {
		t.Error("text node content")
	}
}

func TestMemoizationSharesSubplans(t *testing.T) {
	e := newEngine(t)
	// A shared literal feeding both sides of a join must evaluate once;
	// verify via identical result tables (pointer equality through memo).
	shared := algebra.Lit(bat.MustTable("iter", bat.IntVec{1, 2}))
	a := must(algebra.Project(shared, "x:iter"))
	b := must(algebra.Project(shared, "y:iter"))
	j := must(algebra.Join(a, b, []string{"x"}, []string{"y"}))
	out := evalOn(t, e, j)
	if out.Rows() != 2 {
		t.Errorf("rows = %d", out.Rows())
	}
}

func TestSerializeResultEncoding(t *testing.T) {
	// The post-processor contract: a result table iter|pos|item sorted by
	// (iter,pos) serializes per iter. Exercised end-to-end in serialize
	// package; here we check the engine leaves (iter,pos) intact through
	// a rownum round trip.
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1, 2},
		"v", bat.ItemVec{bat.Int(10), bat.Int(5), bat.Int(3)},
	))
	rn := must(algebra.RowNum(l, "pos", []algebra.OrderSpec{{Col: "v"}}, "iter"))
	out := evalOn(t, e, rn)
	if !eqInts(ints(t, out, "pos"), 1, 2, 1) {
		t.Errorf("pos = %v", ints(t, out, "pos"))
	}
	if !eqInts(ints(t, out, "v"), 5, 10, 3) {
		t.Errorf("v = %v", ints(t, out, "v"))
	}
}

func TestRangeOp(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 2, 3},
		"lo", bat.IntVec{1, 5, 4},
		"hi", bat.IntVec{3, 5, 2}, // iter 3 is an empty range
	))
	out := evalOn(t, e, must(algebra.Range(l, "lo", "hi")))
	if !eqInts(ints(t, out, "iter"), 1, 1, 1, 2) {
		t.Errorf("iters = %v", ints(t, out, "iter"))
	}
	if !eqInts(ints(t, out, "item"), 1, 2, 3, 5) {
		t.Errorf("items = %v", ints(t, out, "item"))
	}
	if !eqInts(ints(t, out, "pos"), 1, 2, 3, 1) {
		t.Errorf("pos = %v", ints(t, out, "pos"))
	}
	// Non-integer bounds fail.
	bad := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1},
		"lo", bat.ItemVec{bat.Str("x")},
		"hi", bat.IntVec{3},
	))
	if _, err := e.Eval(must(algebra.Range(bad, "lo", "hi"))); err == nil {
		t.Error("non-integer bounds must fail")
	}
}

func TestSubstringFun(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"s", bat.ItemVec{bat.Str("motor car"), bat.Str("metadata"), bat.Str("12345")},
		"start", bat.ItemVec{bat.Int(6), bat.Int(4), bat.Float(1.5)},
		"len", bat.ItemVec{bat.Int(100), bat.Int(3), bat.Float(2.6)},
	))
	two := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunSubstring, "s", "start")))
	if two.MustCol("r").ItemAt(0).S != " car" {
		t.Errorf("substring 2-arg = %q", two.MustCol("r").ItemAt(0).S)
	}
	three := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunSubstring3, "s", "start", "len")))
	if got := three.MustCol("r").ItemAt(1).S; got != "ada" {
		t.Errorf("substring 3-arg = %q", got)
	}
	// Fractional positions round per the spec: substring("12345", 1.5, 2.6) = "234".
	if got := three.MustCol("r").ItemAt(2).S; got != "234" {
		t.Errorf("fractional substring = %q", got)
	}
}

func TestNameOfFun(t *testing.T) {
	e := newEngine(t)
	doc, err := e.Store.LoadDocumentString("d.xml", `<root attr="v"><child/></root>`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.Store.Frag(doc.Frag)
	lo, _ := f.Attrs(1)
	l := algebra.Lit(bat.MustTable("n", bat.NodeVec{
		{Frag: doc.Frag, Pre: 1},
		{Frag: doc.Frag, Pre: 2},
		{Frag: doc.Frag, Pre: xenc.AttrBase + lo},
	}))
	out := evalOn(t, e, must(algebra.Fun(l, "r", algebra.FunNameOf, "n")))
	r := out.MustCol("r")
	if r.ItemAt(0).S != "root" || r.ItemAt(1).S != "child" || r.ItemAt(2).S != "attr" {
		t.Errorf("names = %q %q %q", r.ItemAt(0).S, r.ItemAt(1).S, r.ItemAt(2).S)
	}
	atomic := algebra.Lit(bat.MustTable("n", bat.ItemVec{bat.Int(1)}))
	if _, err := e.Eval(must(algebra.Fun(atomic, "r", algebra.FunNameOf, "n"))); err == nil {
		t.Error("fn:name over atomic must fail")
	}
}

func TestRowNumSortedFastPathCorrectness(t *testing.T) {
	e := newEngine(t)
	// Already-sorted input takes the no-sort path; result must be
	// identical to the general path.
	sorted := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1, 2, 2},
		"k", bat.IntVec{1, 2, 1, 3},
	))
	out := evalOn(t, e, must(algebra.RowNum(sorted, "n",
		[]algebra.OrderSpec{{Col: "k"}}, "iter")))
	if !eqInts(ints(t, out, "n"), 1, 2, 1, 2) {
		t.Errorf("fast path numbering = %v", ints(t, out, "n"))
	}
}

func TestEvalTraced(t *testing.T) {
	e := newEngine(t)
	lit := algebra.Lit(bat.MustTable("iter", bat.IntVec{1, 2, 3}))
	sel := must(algebra.Fun(
		must(algebra.Cross(lit, algebra.Lit(bat.MustTable("c", bat.IntVec{2})))),
		"big", algebra.FunGt, "iter", "c"))
	root := must(algebra.Select(sel, "big"))
	res, memo, err := e.EvalTraced(root)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 1 {
		t.Errorf("result rows = %d", res.Rows())
	}
	if len(memo) < 4 {
		t.Errorf("trace captured %d operators", len(memo))
	}
	if memo[lit].Rows() != 3 || memo[root].Rows() != 1 {
		t.Error("per-operator row counts wrong")
	}
	// Errors surface with the partial trace.
	bad := must(algebra.Select(lit, "iter")) // σ over ints
	if _, _, err := e.EvalTraced(bad); err == nil {
		t.Error("traced evaluation must propagate errors")
	}
}

func TestDiffOnNonIntKeys(t *testing.T) {
	e := newEngine(t)
	l := algebra.Lit(bat.MustTable(
		"k", bat.ItemVec{bat.Str("a"), bat.Str("b"), bat.Str("c")}))
	r := algebra.Lit(bat.MustTable("j", bat.ItemVec{bat.Str("b")}))
	out := evalOn(t, e, must(algebra.Diff(l, r, []string{"k"}, []string{"j"})))
	if out.Rows() != 2 {
		t.Errorf("string diff rows = %d", out.Rows())
	}
	// Mixed-typed keys go through the generic path too.
	l2 := algebra.Lit(bat.MustTable("k", bat.ItemVec{bat.Int(1), bat.Float(2)}))
	r2 := algebra.Lit(bat.MustTable("j", bat.IntVec{2}))
	out2 := evalOn(t, e, must(algebra.Diff(l2, r2, []string{"k"}, []string{"j"})))
	if out2.Rows() != 1 || out2.MustCol("k").ItemAt(0).I != 1 {
		t.Errorf("numeric-promoted diff: %v", out2)
	}
}

func TestArithErrorsAndEdgeCases(t *testing.T) {
	e := newEngine(t)
	mk := func(a, b bat.Item) *algebra.Op {
		return algebra.Lit(bat.MustTable("a", bat.ItemVec{a}, "b", bat.ItemVec{b}))
	}
	// mod by zero, float mod, neg variants.
	if _, err := e.Eval(must(algebra.Fun(mk(bat.Int(5), bat.Int(0)), "r", algebra.FunMod, "a", "b"))); err == nil {
		t.Error("mod by zero")
	}
	fm := evalOn(t, e, must(algebra.Fun(mk(bat.Float(5.5), bat.Float(2)), "r", algebra.FunMod, "a", "b")))
	if fm.MustCol("r").ItemAt(0).F != 1.5 {
		t.Error("float mod")
	}
	ng := evalOn(t, e, must(algebra.Fun(mk(bat.Float(2.5), bat.Int(0)), "r", algebra.FunNeg, "a")))
	if ng.MustCol("r").ItemAt(0).F != -2.5 {
		t.Error("neg float")
	}
	ngu := evalOn(t, e, must(algebra.Fun(mk(bat.Untyped("3"), bat.Int(0)), "r", algebra.FunNeg, "a")))
	if ngu.MustCol("r").ItemAt(0).F != -3 {
		t.Error("neg untyped")
	}
	if _, err := e.Eval(must(algebra.Fun(mk(bat.Bool(true), bat.Int(0)), "r", algebra.FunNeg, "a"))); err == nil {
		t.Error("neg bool must fail")
	}
	if _, err := e.Eval(must(algebra.Fun(mk(bat.Str("x"), bat.Int(1)), "r", algebra.FunAdd, "a", "b"))); err == nil {
		t.Error("string arithmetic must fail")
	}
	// Node operands to boolean ops fail.
	if _, err := e.Eval(must(algebra.Fun(mk(bat.Int(1), bat.Int(1)), "r", algebra.FunAnd, "a", "b"))); err == nil {
		t.Error("and over ints must fail")
	}
	if _, err := e.Eval(must(algebra.Fun(mk(bat.Int(1), bat.Int(1)), "r", algebra.FunNot, "a"))); err == nil {
		t.Error("not over int must fail")
	}
	if _, err := e.Eval(must(algebra.Fun(mk(bat.Int(1), bat.Int(1)), "r", algebra.FunBoolWrap, "a"))); err == nil {
		t.Error("boolean() over int must fail")
	}
	if _, err := e.Eval(must(algebra.Fun(mk(bat.Int(1), bat.Int(1)), "r", algebra.FunDocBefore, "a", "b"))); err == nil {
		t.Error("<< over atomics must fail")
	}
	if _, err := e.Eval(must(algebra.Fun(mk(bat.Int(1), bat.Int(1)), "r", algebra.FunNodeIs, "a", "b"))); err == nil {
		t.Error("is over atomics must fail")
	}
}

func TestEbvItemFun(t *testing.T) {
	e := newEngine(t)
	doc, err := e.Store.LoadDocumentString("d.xml", "<a/>")
	if err != nil {
		t.Fatal(err)
	}
	l := algebra.Lit(bat.MustTable("v", bat.ItemVec{
		bat.Node(bat.NodeRef{Frag: doc.Frag, Pre: 1}),
		bat.Bool(false), bat.Int(0), bat.Int(7),
		bat.Float(0), bat.Float(1.5),
		bat.Str(""), bat.Str("x"), bat.Untyped(""),
	}))
	out := evalOn(t, e, must(algebra.Fun(l, "b", algebra.FunEbvItem, "v")))
	want := []bool{true, false, false, true, false, true, false, true, false}
	for i, w := range want {
		if out.MustCol("b").ItemAt(i).B != w {
			t.Errorf("ebv[%d] = %v, want %v", i, !w, w)
		}
	}
}

func TestAggregateMinMaxStrings(t *testing.T) {
	e := newEngine(t)
	// min/max over non-numeric items error (XQuery would compare strings;
	// the engine requires numerics per the sum/avg code path — both
	// engines agree, cf. navdom.aggregate).
	l := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1},
		"v", bat.ItemVec{bat.Str("b"), bat.Str("a")},
	))
	if _, err := e.Eval(must(algebra.Aggr(l, "m", algebra.AggMin, "v", "iter"))); err == nil {
		t.Error("min over strings must fail")
	}
	nodeIn := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1},
		"v", bat.ItemVec{bat.Node(bat.NodeRef{})},
	))
	if _, err := e.Eval(must(algebra.Aggr(nodeIn, "m", algebra.AggSum, "v", "iter"))); err == nil {
		t.Error("sum over nodes must fail")
	}
}

func TestFigure3LoopLiftingIntermediates(t *testing.T) {
	// Reproduces the paper's Figure 3 tables for
	// for $v in (10,20), $w in (100,200) return $v + $w
	// built directly in the algebra (the compiler test re-checks this via
	// compilation).
	e := newEngine(t)
	// (a) (10,20) in s0.
	q10 := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1},
		"pos", bat.IntVec{1, 2},
		"item", bat.ItemVec{bat.Int(10), bat.Int(20)},
	))
	// (b) $v in s1: ϱ inner over (iter,pos).
	rn := must(algebra.RowNum(q10, "inner", []algebra.OrderSpec{{Col: "iter"}, {Col: "pos"}}, ""))
	vS1 := evalOn(t, e, rn)
	if !eqInts(ints(t, vS1, "inner"), 1, 2) {
		t.Fatalf("s1 iters = %v", ints(t, vS1, "inner"))
	}
	// (100,200) lifted into s1 then into s2 analogous; spot-check (f) map
	// between s1 and s2 and final back-mapped result (g).
	q100 := algebra.Lit(bat.MustTable(
		"pos", bat.IntVec{1, 2},
		"item", bat.ItemVec{bat.Int(100), bat.Int(200)},
	))
	loop1 := must(algebra.Project(rn, "oiter:inner"))
	lifted := must(algebra.Cross(loop1, q100))
	rn2 := must(algebra.RowNum(lifted, "inner2",
		[]algebra.OrderSpec{{Col: "oiter"}, {Col: "pos"}}, ""))
	mapRel := evalOn(t, e, must(algebra.Project(rn2, "inner:inner2", "outer:oiter")))
	if !eqInts(ints(t, mapRel, "inner"), 1, 2, 3, 4) || !eqInts(ints(t, mapRel, "outer"), 1, 1, 2, 2) {
		t.Fatalf("map(s1,s2) mismatch: inner=%v outer=%v",
			ints(t, mapRel, "inner"), ints(t, mapRel, "outer"))
	}
	// (e) $v + $w in s2: $v lifted via map join, $w bound per inner2.
	vLift := must(algebra.Join(
		must(algebra.Project(rn, "viter:inner", "vitem:item")),
		must(algebra.Project(rn2, "inner2", "oiter", "witem:item")),
		[]string{"viter"}, []string{"oiter"}))
	sum := must(algebra.Fun(vLift, "res", algebra.FunAdd, "vitem", "witem"))
	out := evalOn(t, e, sum)
	got := map[int64]int64{}
	inner := ints(t, out, "inner2")
	for i, r := range ints(t, out, "res") {
		got[inner[i]] = r
	}
	want := map[int64]int64{1: 110, 2: 210, 3: 120, 4: 220}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("s2 iter %d: got %d want %d (figure 3(e))", k, got[k], v)
		}
	}
}
