package engine

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// This file implements the parallel DAG scheduler: the loop-lifting
// compiler emits plans whose independent subplans (the per-branch
// document steps of a join query, the lifted arms of conditionals, the
// aggregates of a constructor's attribute list) share nothing but their
// leaves, and MonetDB's MIL interpreter would happily run them on one
// core. Here each operator becomes a schedulable task: a topological
// pass (algebra.Topo) assigns dependency counts, leaves enter a ready
// queue, and a bounded worker pool drains it, releasing consumers as
// their last input materializes. Every operator is applied exactly once
// per evaluation — the scheduler inherits the DAG memoization of the
// sequential evaluator by construction, since shared subplans are shared
// *algebra.Op pointers and hence single scheduler nodes.

// OpStat is the per-operator instrumentation record the scheduler (and
// the sequential evaluator) attach to a traced evaluation.
type OpStat struct {
	Wall       time.Duration // time spent applying the operator
	RowsIn     int           // total input rows across all inputs
	RowsOut    int           // rows produced
	Worker     int           // worker that ran it (0 on the sequential path)
	Kernel     string        // physical kernel that actually ran ("" on the legacy path)
	RowsMat    int           // rows this kernel materialized (gathered/copied), vs. scanned in place
	Morsels    int           // input morsels the kernel split into (0 = unsplit)
	ParWorkers int           // largest morsel team that ran inside the kernel (0 = sequential)

	// Fused-chain membership: when the operator ran as part of a fused
	// chain, FusedChain is the chain's 1-based id (0 = ran standalone),
	// FusedPos its 1-based position in the chain, FusedLen the chain
	// length. Interior members report their through-chain row counts with
	// zero Wall/RowsMat; the tail carries the chain's wall time, morsel
	// split, and the single boundary materialization.
	FusedChain int
	FusedPos   int
	FusedLen   int
}

// Trace is the full instrumentation record of one evaluation.
type Trace struct {
	mu     sync.Mutex
	Tables map[*algebra.Op]*bat.Table
	Stats  map[*algebra.Op]OpStat
}

func newTrace() *Trace {
	return &Trace{
		Tables: make(map[*algebra.Op]*bat.Table),
		Stats:  make(map[*algebra.Op]OpStat),
	}
}

func (tr *Trace) record(o *algebra.Op, t *bat.Table, st OpStat) {
	tr.mu.Lock()
	tr.Tables[o] = t
	tr.Stats[o] = st
	tr.mu.Unlock()
}

// recordStat stores scheduling statistics without an intermediate table —
// the physical executor defers table capture until after execution so
// trace-forced materialization never distorts RowsMat accounting.
func (tr *Trace) recordStat(o *algebra.Op, st OpStat) {
	tr.mu.Lock()
	tr.Stats[o] = st
	tr.mu.Unlock()
}

// setTable stores an operator's materialized intermediate result.
func (tr *Trace) setTable(o *algebra.Op, t *bat.Table) {
	tr.mu.Lock()
	tr.Tables[o] = t
	tr.mu.Unlock()
}

// workerCount resolves the engine's configured pool size: Workers when
// positive, otherwise GOMAXPROCS.
func (e *Engine) workerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EnvWorkers reads the PF_WORKERS environment variable, the
// binary-agnostic way to size the pool (the --workers flags default to
// it). It returns 0 — "use GOMAXPROCS" — when unset or unparsable.
func EnvWorkers() int {
	s := os.Getenv("PF_WORKERS")
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// schedNode is the scheduler's view of one operator: its inputs and
// consumers as indices into the topological order, and the number of
// inputs still being computed.
type schedNode struct {
	op        *algebra.Op
	in        []int // input indices, one per In edge (duplicates preserved)
	consumers []int // consumer indices, one per consuming edge
	pending   atomic.Int32
}

// evalParallel runs the plan DAG on a bounded worker pool. Results live
// in a slice indexed by topological position; each slot is written by
// exactly one worker before any consumer is released (the release
// happens through an atomic dependency counter followed by a channel
// send, both of which establish the necessary happens-before edges), so
// the memo needs no lock of its own.
func (e *Engine) evalParallel(ctx context.Context, root *algebra.Op, tr *Trace) (*bat.Table, error) {
	order := algebra.Topo(root)
	n := len(order)
	index := make(map[*algebra.Op]int, n)
	for i, o := range order {
		index[o] = i
	}
	nodes := make([]schedNode, n)
	for i, o := range order {
		nd := &nodes[i]
		nd.op = o
		nd.in = make([]int, len(o.In))
		for k, child := range o.In {
			ci := index[child]
			nd.in[k] = ci
			nodes[ci].consumers = append(nodes[ci].consumers, i)
		}
		nd.pending.Store(int32(len(o.In)))
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// ready is buffered to the full node count so completion-time sends
	// never block a worker.
	ready := make(chan int, n)
	for i := range nodes {
		if len(nodes[i].in) == 0 {
			ready <- i
		}
	}

	results := make([]*bat.Table, n)
	var (
		completed atomic.Int32
		done      = make(chan struct{})
		errOnce   sync.Once
		evalErr   error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			evalErr = err
			cancel()
		})
	}

	workers := e.workerCount()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case i := <-ready:
					nd := &nodes[i]
					in := make([]*bat.Table, len(nd.in))
					for k, ci := range nd.in {
						in[k] = results[ci]
					}
					start := time.Now() //pfvet:allow determinism -- trace wall-time only, not query results
					t, err := e.apply(ctx, nd.op, in)
					if err != nil {
						fail(fmt.Errorf("%s: %w", nd.op.Kind, err))
						return
					}
					results[i] = t
					if tr != nil {
						tr.record(nd.op, t, OpStat{
							//pfvet:allow determinism -- trace wall-time only, not query results
							Wall: time.Since(start), RowsIn: rowsIn(in),
							RowsOut: t.Rows(), Worker: worker,
						})
					}
					for _, ci := range nd.consumers {
						if nodes[ci].pending.Add(-1) == 0 {
							ready <- ci
						}
					}
					if int(completed.Add(1)) == n {
						close(done)
					}
				}
			}
		}(w)
	}

	select {
	case <-done:
	case <-ctx.Done():
	}
	cancel()
	wg.Wait()
	if evalErr != nil {
		return nil, evalErr
	}
	if err := ctx.Err(); err != nil && completed.Load() != int32(n) {
		// Cancelled from outside (caller's context or Deadline), not by a
		// worker failure.
		return nil, err
	}
	return results[n-1], nil
}
