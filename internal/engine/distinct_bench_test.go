package engine

import (
	"testing"

	"pathfinder/internal/bat"
)

// The δ boxing fix (distinctIndices): loop-lifted plans apply δ to
// iter/pos/pre key sets almost exclusively, and the old generic path
// boxed every cell into an Item and encoded it through rowKey just to
// build a hash key. The typed path hashes the int vectors directly.
//
//	BenchmarkDistinct/typed-int-2col    vs   BenchmarkDistinct/generic-2col
//
// measure the same data through both paths.

func distinctBenchInput(n int) []bat.Vec {
	iter := make(bat.IntVec, n)
	item := make(bat.IntVec, n)
	for i := range iter {
		iter[i] = int64(i % (n / 4))
		item[i] = int64(i % 97)
	}
	return []bat.Vec{iter, item}
}

// genericDistinctIndices is the pre-refactor δ inner loop: Item boxing +
// rowKey encoding for every row, kept verbatim as the benchmark baseline.
func genericDistinctIndices(vecs []bat.Vec, n int) []int32 {
	seen := make(map[string]struct{}, n)
	var idx []int32
	var buf []byte
	for i := 0; i < n; i++ {
		buf = rowKey(buf[:0], vecs, i)
		if _, ok := seen[string(buf)]; !ok {
			seen[string(buf)] = struct{}{}
			idx = append(idx, int32(i))
		}
	}
	return idx
}

func BenchmarkDistinct(b *testing.B) {
	const n = 100_000
	vecs := distinctBenchInput(n)
	b.Run("typed-int-2col", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx, kernel := distinctIndices(vecs, n, nil, 0)
			if kernel != "distinct[int]" {
				b.Fatalf("kernel = %s", kernel)
			}
			_ = idx
		}
	})
	b.Run("generic-2col", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = genericDistinctIndices(vecs, n)
		}
	})
}

// TestDistinctTypedMatchesGeneric pins the typed paths to the generic
// reference on every arity (1, 2, and the ≥3 byte-packed case).
func TestDistinctTypedMatchesGeneric(t *testing.T) {
	const n = 1000
	a := make(bat.IntVec, n)
	b := make(bat.IntVec, n)
	c := make(bat.IntVec, n)
	for i := 0; i < n; i++ {
		a[i] = int64(i % 7)
		b[i] = int64(i % 13)
		c[i] = int64(i % 3)
	}
	for arity, vecs := range map[int][]bat.Vec{
		1: {a}, 2: {a, b}, 3: {a, b, c},
	} {
		got, kernel := distinctIndices(vecs, n, nil, 0)
		if kernel != "distinct[int]" {
			t.Fatalf("arity %d: kernel = %s", arity, kernel)
		}
		want := genericDistinctIndices(vecs, n)
		if len(got) != len(want) {
			t.Fatalf("arity %d: %d rows vs generic %d", arity, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("arity %d: row %d: %d vs generic %d", arity, i, got[i], want[i])
			}
		}
	}
	// A selection vector restricts and orders the rows considered:
	// values a[500]=3, a[2]=2, a[2]=2, a[9]=2 dedup to rows 500, 2.
	sel := []int32{500, 2, 2, 9}
	got, _ := distinctIndices([]bat.Vec{a}, len(sel), sel, 0)
	if len(got) != 2 || got[0] != 500 || got[1] != 2 {
		t.Fatalf("sel-restricted distinct = %v, want [500 2]", got)
	}
}
