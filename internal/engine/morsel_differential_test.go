package engine_test

// Differential harness for morsel-driven intra-operator parallelism:
// the same corpora as the scheduler differential (all 20 XMark queries
// and the Table 2 dialect corpus), but with MorselRows forced down to a
// handful of rows so that even the sf=0.002 instance splits nearly every
// parallel-eligible kernel into dozens of morsels. Results are
// byte-compared against the sequential engine for worker counts 1, 2,
// and 8 — the ordering guarantee the morsel kernels must uphold is that
// no worker count is observable in the output. The tests live in this
// package so `go test -race ./internal/engine/` doubles as the race tier
// over the work-stealing paths.

import (
	"context"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// morselEngine returns an engine with tiny morsels and the sequential
// fallback disabled: every eligible operator splits, at the given worker
// budget.
func morselEngine(t *testing.T, uri, doc string, workers int) *engine.Engine {
	t.Helper()
	e := engine.NewWithConfig(xenc.NewStore(), engine.Config{
		Workers:      workers,
		SeqThreshold: -1,
		MorselRows:   7,
	})
	if _, err := e.Store.LoadDocumentString(uri, doc); err != nil {
		t.Fatal(err)
	}
	return e
}

var morselWorkerCounts = []int{1, 2, 8}

// TestXMarkMorselDifferential: all 20 XMark queries, plain and optimized
// plans, at workers ∈ {1,2,8} with forced morsel splitting, byte-compared
// against the sequential baseline.
func TestXMarkMorselDifferential(t *testing.T) {
	doc := xmark.GenerateString(diffSF)
	seq := seqEngine(t, "xmark.xml", doc)
	engines := make(map[int]*engine.Engine, len(morselWorkerCounts))
	for _, w := range morselWorkerCounts {
		engines[w] = morselEngine(t, "xmark.xml", doc, w)
	}
	opts := xqcore.Options{ContextDoc: "xmark.xml"}

	for n := 1; n <= xmark.NumQueries; n++ {
		src := xmark.Query(n)
		want, errS := core.Run(src, seq, opts)
		optWant, errOS := runOptimized(t, src, seq, opts)
		if errS != nil || errOS != nil {
			t.Errorf("Q%d: sequential baseline err=%v optimized err=%v", n, errS, errOS)
			continue
		}
		for _, w := range morselWorkerCounts {
			got, err := core.Run(src, engines[w], opts)
			if err != nil {
				t.Errorf("Q%d workers=%d: %v", n, w, err)
				continue
			}
			if got != want {
				t.Errorf("Q%d workers=%d: morsel result differs:\n seq = %.400q\n got = %.400q", n, w, want, got)
			}
			optGot, err := runOptimized(t, src, engines[w], opts)
			if err != nil {
				t.Errorf("Q%d workers=%d optimized: %v", n, w, err)
				continue
			}
			if optGot != optWant {
				t.Errorf("Q%d workers=%d: optimized morsel result differs:\n seq = %.400q\n got = %.400q", n, w, optWant, optGot)
			}
		}
	}
}

// TestDialectMorselDifferential: the Table 2 corpus through the morsel
// engines at every worker count, plain and optimized.
func TestDialectMorselDifferential(t *testing.T) {
	seq := seqEngine(t, "auction.xml", auctionDoc)
	engines := make(map[int]*engine.Engine, len(morselWorkerCounts))
	for _, w := range morselWorkerCounts {
		engines[w] = morselEngine(t, "auction.xml", auctionDoc, w)
	}
	opts := xqcore.Options{ContextDoc: "auction.xml"}

	for _, src := range dialectQueries {
		want, errS := core.Run(src, seq, opts)
		if errS != nil {
			t.Errorf("%s: sequential baseline: %v", src, errS)
			continue
		}
		for _, w := range morselWorkerCounts {
			got, err := core.Run(src, engines[w], opts)
			if err != nil {
				t.Errorf("%s workers=%d: %v", src, w, err)
				continue
			}
			if got != want {
				t.Errorf("%s workers=%d:\n seq = %q\n got = %q", src, w, got, want)
			}
			optGot, err := runOptimized(t, src, engines[w], opts)
			if err != nil {
				t.Errorf("%s workers=%d optimized: %v", src, w, err)
				continue
			}
			if optGot != want {
				t.Errorf("%s workers=%d: optimized drifted:\n plain = %q\n opt = %q", src, w, want, optGot)
			}
		}
	}
}

// TestMorselTraceCounts evaluates a descendant-heavy XMark query with
// tiny morsels and asserts the trace actually recorded split kernels —
// the instrumentation `pf -show explain` surfaces, and the guard that
// the differential tests above genuinely exercised the parallel paths
// rather than silently running sequentially.
func TestMorselTraceCounts(t *testing.T) {
	doc := xmark.GenerateString(diffSF)
	e := morselEngine(t, "xmark.xml", doc, 8)
	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	plan, _, err := core.CompileQuery(xmark.Query(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan, err = opt.Optimize(plan); err != nil {
		t.Fatal(err)
	}
	if _, tr, err := e.EvalTrace(context.Background(), plan); err != nil {
		t.Fatal(err)
	} else {
		split, maxMorsels := 0, 0
		for _, st := range tr.Stats {
			if st.Morsels > 1 {
				split++
				if st.Morsels > maxMorsels {
					maxMorsels = st.Morsels
				}
			}
		}
		if split == 0 {
			t.Fatal("no operator split into morsels despite MorselRows=7")
		}
		t.Logf("%d operators split; largest = %d morsels", split, maxMorsels)
	}
}
