package engine_test

// Differential harness for the parallel DAG scheduler: every XMark query
// and the Table 2 dialect corpus run through (a) the sequential evaluator,
// (b) the parallel scheduler with the fallback disabled, and (c) the
// navigational baseline, and all serialized results must be byte-identical.

import (
	"sync"
	"testing"

	"pathfinder/internal/check"
	"pathfinder/internal/core"
	"pathfinder/internal/corpus"
	"pathfinder/internal/engine"
	"pathfinder/internal/navdom"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

const diffSF = 0.002

// The Table 2 dialect corpus and its document are shared with the
// service-path differential tests (internal/corpus), so both tiers
// difference the same construct set.
const auctionDoc = corpus.AuctionDoc

var dialectQueries = corpus.Dialect

// seqEngine returns an engine pinned to the sequential recursive
// evaluator, with runtime invariant checking on.
func seqEngine(t *testing.T, uri, doc string) *engine.Engine {
	t.Helper()
	e := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: 1, Check: true})
	if _, err := e.Store.LoadDocumentString(uri, doc); err != nil {
		t.Fatal(err)
	}
	return e
}

// parEngine returns an engine forced onto the parallel DAG scheduler:
// worker pool of 8 regardless of GOMAXPROCS, fallback disabled so even
// tiny plans take the concurrent path.
func parEngine(t *testing.T, uri, doc string) *engine.Engine {
	t.Helper()
	e := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: 8, SeqThreshold: -1, Check: true})
	if _, err := e.Store.LoadDocumentString(uri, doc); err != nil {
		t.Fatal(err)
	}
	return e
}

// runOptimized compiles, optimizes, validates, and evaluates on the given
// engine. Every optimized plan passes the full static validator before it
// runs, so a property-inference or lowering regression fails here first.
func runOptimized(t *testing.T, src string, eng *engine.Engine, opts xqcore.Options) (string, error) {
	t.Helper()
	plan, _, err := core.CompileQuery(src, opts)
	if err != nil {
		return "", err
	}
	if plan, err = opt.Optimize(plan); err != nil {
		return "", err
	}
	if err := check.Error(check.Plan(plan)); err != nil {
		return "", err
	}
	res, err := eng.Eval(plan)
	if err != nil {
		return "", err
	}
	return serialize.Result(eng.Store, res)
}

// TestXMarkParallelDifferential runs all 20 XMark queries over the same
// generated instance through the sequential evaluator, the parallel
// scheduler, and the navigational baseline.
func TestXMarkParallelDifferential(t *testing.T) {
	doc := xmark.GenerateString(diffSF)
	seq := seqEngine(t, "xmark.xml", doc)
	par := parEngine(t, "xmark.xml", doc)
	db := navdom.NewDB()
	if _, err := db.LoadString("xmark.xml", doc); err != nil {
		t.Fatal(err)
	}
	db.AddValueIndex("buyer", "person")
	opts := xqcore.Options{ContextDoc: "xmark.xml"}

	for n := 1; n <= xmark.NumQueries; n++ {
		src := xmark.Query(n)
		seqOut, errS := core.Run(src, seq, opts)
		parOut, errP := core.Run(src, par, opts)
		nav, errN := navdom.NewInterp(db).Run(src, opts)
		if errS != nil || errP != nil || errN != nil {
			t.Errorf("Q%d: seq err=%v, par err=%v, nav err=%v", n, errS, errP, errN)
			continue
		}
		if seqOut != parOut {
			t.Errorf("Q%d: parallel result differs from sequential:\n seq = %.400q\n par = %.400q", n, seqOut, parOut)
		}
		if seqOut != nav {
			t.Errorf("Q%d: engines differ from baseline:\n rel = %.400q\n nav = %.400q", n, seqOut, nav)
		}
		// Optimized plans must agree on both evaluators too.
		optSeq, errOS := runOptimized(t, src, seq, opts)
		optPar, errOP := runOptimized(t, src, par, opts)
		if errOS != nil || errOP != nil {
			t.Errorf("Q%d optimized: seq err=%v, par err=%v", n, errOS, errOP)
			continue
		}
		if optSeq != seqOut || optPar != seqOut {
			t.Errorf("Q%d: optimized results drifted:\n plain   = %.400q\n opt seq = %.400q\n opt par = %.400q",
				n, seqOut, optSeq, optPar)
		}
	}
}

// TestDialectParallelDifferential runs the Table 2 corpus through the same
// three evaluation paths over the miniature auction document.
func TestDialectParallelDifferential(t *testing.T) {
	seq := seqEngine(t, "auction.xml", auctionDoc)
	par := parEngine(t, "auction.xml", auctionDoc)
	db := navdom.NewDB()
	if _, err := db.LoadString("auction.xml", auctionDoc); err != nil {
		t.Fatal(err)
	}
	opts := xqcore.Options{ContextDoc: "auction.xml"}

	for _, src := range dialectQueries {
		seqOut, errS := core.Run(src, seq, opts)
		parOut, errP := core.Run(src, par, opts)
		nav, errN := navdom.NewInterp(db).Run(src, opts)
		if errS != nil || errP != nil || errN != nil {
			t.Errorf("%s: seq err=%v, par err=%v, nav err=%v", src, errS, errP, errN)
			continue
		}
		if seqOut != parOut {
			t.Errorf("%s:\n seq = %q\n par = %q", src, seqOut, parOut)
		}
		if seqOut != nav {
			t.Errorf("%s:\n rel = %q\n nav = %q", src, seqOut, nav)
		}
		optPar, err := runOptimized(t, src, par, opts)
		if err != nil {
			t.Errorf("%s: optimized parallel: %v", src, err)
			continue
		}
		if optPar != seqOut {
			t.Errorf("%s: optimized parallel drifted:\n plain = %q\n opt   = %q", src, seqOut, optPar)
		}
	}
}

// TestSharedPlanConcurrentEval evaluates one compiled plan from many
// goroutines against a single shared engine and store. The query
// constructs elements, so every evaluation allocates fragments in the
// shared store — the strongest store-locking stress short of -race.
func TestSharedPlanConcurrentEval(t *testing.T) {
	par := parEngine(t, "auction.xml", auctionDoc)
	opts := xqcore.Options{ContextDoc: "auction.xml"}
	const src = `for $p in //person
	 order by $p/name
	 return <row id="{$p/@id}">{$p/name/text()}</row>`
	plan, _, err := core.CompileQuery(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = opt.Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}

	want, err := func() (string, error) {
		res, err := par.Eval(plan)
		if err != nil {
			return "", err
		}
		return serialize.Result(par.Store, res)
	}()
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	outs := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := par.Eval(plan)
			if err != nil {
				errs[g] = err
				return
			}
			outs[g], errs[g] = serialize.Result(par.Store, res)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if outs[g] != want {
			t.Errorf("goroutine %d: result drifted:\n want %q\n got  %q", g, want, outs[g])
		}
	}
}

// legacyEngine returns an engine pinned to the pre-physical recursive
// interpreter over the logical algebra — the reference semantics the
// physical executor is differenced against.
func legacyEngine(t *testing.T, uri, doc string) *engine.Engine {
	t.Helper()
	e := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: 1, Legacy: true, Check: true})
	if _, err := e.Store.LoadDocumentString(uri, doc); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestXMarkPhysicalDifferential runs all 20 XMark queries through the
// legacy interpreter, the sequential physical executor, and the parallel
// physical executor, requiring byte-identical serialized output — both on
// plain plans (via core.Run) and on optimized plans (where the lowering
// pass actually picks merge/presorted/const1 kernels).
func TestXMarkPhysicalDifferential(t *testing.T) {
	doc := xmark.GenerateString(diffSF)
	leg := legacyEngine(t, "xmark.xml", doc)
	seq := seqEngine(t, "xmark.xml", doc)
	par := parEngine(t, "xmark.xml", doc)
	opts := xqcore.Options{ContextDoc: "xmark.xml"}

	for n := 1; n <= xmark.NumQueries; n++ {
		src := xmark.Query(n)
		legOut, errL := core.Run(src, leg, opts)
		seqOut, errS := core.Run(src, seq, opts)
		parOut, errP := core.Run(src, par, opts)
		if errL != nil || errS != nil || errP != nil {
			t.Errorf("Q%d: legacy err=%v, phys-seq err=%v, phys-par err=%v", n, errL, errS, errP)
			continue
		}
		if seqOut != legOut || parOut != legOut {
			t.Errorf("Q%d: physical output differs from legacy:\n legacy   = %.400q\n phys seq = %.400q\n phys par = %.400q",
				n, legOut, seqOut, parOut)
		}
		optLeg, errOL := runOptimized(t, src, leg, opts)
		optSeq, errOS := runOptimized(t, src, seq, opts)
		optPar, errOP := runOptimized(t, src, par, opts)
		if errOL != nil || errOS != nil || errOP != nil {
			t.Errorf("Q%d optimized: legacy err=%v, phys-seq err=%v, phys-par err=%v", n, errOL, errOS, errOP)
			continue
		}
		if optSeq != optLeg || optPar != optLeg || optLeg != legOut {
			t.Errorf("Q%d: optimized physical drifted:\n legacy   = %.400q\n phys seq = %.400q\n phys par = %.400q",
				n, optLeg, optSeq, optPar)
		}
	}
}

// TestDialectPhysicalDifferential differences the Table 2 corpus between
// the legacy interpreter and both physical executors.
func TestDialectPhysicalDifferential(t *testing.T) {
	leg := legacyEngine(t, "auction.xml", auctionDoc)
	seq := seqEngine(t, "auction.xml", auctionDoc)
	par := parEngine(t, "auction.xml", auctionDoc)
	opts := xqcore.Options{ContextDoc: "auction.xml"}

	for _, src := range dialectQueries {
		legOut, errL := core.Run(src, leg, opts)
		seqOut, errS := core.Run(src, seq, opts)
		parOut, errP := core.Run(src, par, opts)
		if errL != nil || errS != nil || errP != nil {
			t.Errorf("%s: legacy err=%v, phys-seq err=%v, phys-par err=%v", src, errL, errS, errP)
			continue
		}
		if seqOut != legOut || parOut != legOut {
			t.Errorf("%s:\n legacy   = %q\n phys seq = %q\n phys par = %q", src, legOut, seqOut, parOut)
		}
		optLeg, errOL := runOptimized(t, src, leg, opts)
		optSeq, errOS := runOptimized(t, src, seq, opts)
		if errOL != nil || errOS != nil {
			t.Errorf("%s: optimized: legacy err=%v, phys err=%v", src, errOL, errOS)
			continue
		}
		if optSeq != optLeg {
			t.Errorf("%s: optimized physical drifted:\n legacy = %q\n phys   = %q", src, optLeg, optSeq)
		}
	}
}
