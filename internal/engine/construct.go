package engine

import (
	"fmt"
	"strings"

	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

// evalElem implements ε: per iter, construct one element named by the
// qname table (iter|item, one row per iter) with the iter's slice of the
// content table (iter|pos|item) as content. Content items are processed in
// (iter, pos) order: attribute nodes become attributes (and must precede
// other content), nodes are deep-copied, and runs of adjacent atomic items
// merge into a single text node with single-space separators — the XQuery
// constructor content rules.
func (e *Engine) evalElem(qnames, content *bat.Table) (*bat.Table, error) {
	qSorted, err := qnames.SortBy("iter")
	if err != nil {
		return nil, err
	}
	qIter, err := qSorted.Ints("iter")
	if err != nil {
		return nil, err
	}
	qItem, err := qSorted.Col("item")
	if err != nil {
		return nil, err
	}
	sorted, err := content.SortBy("iter", "pos")
	if err != nil {
		return nil, err
	}
	cIter, err := sorted.Ints("iter")
	if err != nil {
		return nil, err
	}
	cItem, err := sorted.Col("item")
	if err != nil {
		return nil, err
	}

	// One fragment holds every element constructed by this operator
	// execution; each iter's element is a separate root tree within it.
	fb := xenc.NewFragBuilder(e.Store)
	outIter := make(bat.IntVec, 0, len(qIter))
	outItem := make(bat.NodeVec, 0, len(qIter))
	roots := make([]int32, 0, len(qIter))

	seen := make(map[int64]bool, len(qIter))
	c := 0
	for qi := 0; qi < len(qIter); qi++ {
		iter := qIter[qi]
		if seen[iter] {
			return nil, fmt.Errorf("ε: multiple element names for iter %d", iter)
		}
		seen[iter] = true
		name := qItem.ItemAt(qi).StringValue()
		if name == "" {
			return nil, fmt.Errorf("ε: empty element name in iter %d", iter)
		}
		root := fb.StartElem(name)
		var pendingText strings.Builder
		pendingAny := false
		flush := func() {
			if pendingAny {
				fb.AddText(pendingText.String())
				pendingText.Reset()
				pendingAny = false
			}
		}
		// Both tables are iter-sorted, so content rows line up with qname
		// rows; a content iter smaller than the current qname iter has no
		// element to live in.
		if c < len(cIter) && cIter[c] < iter {
			return nil, fmt.Errorf("ε: content iter %d has no element name", cIter[c])
		}
		for ; c < len(cIter) && cIter[c] == iter; c++ {
			it := cItem.ItemAt(c)
			if it.Kind == bat.KNode {
				flush()
				if e.Store.KindOf(it.N) == xenc.KindAttr {
					if fb.NextPre() != root+1 {
						return nil, fmt.Errorf("ε: attribute after content in iter %d", iter)
					}
					if err := fb.CopyNode(it.N); err != nil {
						return nil, err
					}
					continue
				}
				if err := fb.CopyNode(it.N); err != nil {
					return nil, err
				}
				continue
			}
			if pendingAny {
				pendingText.WriteByte(' ')
			}
			pendingText.WriteString(it.StringValue())
			pendingAny = true
		}
		flush()
		fb.EndElem()
		roots = append(roots, root)
		outIter = append(outIter, iter)
	}
	if c < len(cIter) {
		return nil, fmt.Errorf("ε: content iter %d has no element name", cIter[c])
	}
	frag, err := fb.Finish()
	if err != nil {
		return nil, err
	}
	for _, r := range roots {
		outItem = append(outItem, bat.NodeRef{Frag: frag, Pre: r})
	}
	return bat.NewTable("iter", outIter, "item", outItem)
}

// evalText implements τ: one text node per row from the item's string
// value. Rows whose string is empty construct no node and are dropped, per
// the text-constructor semantics for empty content.
func (e *Engine) evalText(t *bat.Table) (*bat.Table, error) {
	iters, err := t.Ints("iter")
	if err != nil {
		return nil, err
	}
	items, err := t.Col("item")
	if err != nil {
		return nil, err
	}
	fb := xenc.NewFragBuilder(e.Store)
	outIter := bat.IntVec{}
	var pres []int32
	for i := 0; i < t.Rows(); i++ {
		s := items.ItemAt(i).StringValue()
		if s == "" {
			continue
		}
		pres = append(pres, fb.NextPre())
		fb.AddText(s)
		outIter = append(outIter, iters[i])
	}
	frag, err := fb.Finish()
	if err != nil {
		return nil, err
	}
	outItem := make(bat.NodeVec, len(pres))
	for i, p := range pres {
		outItem[i] = bat.NodeRef{Frag: frag, Pre: p}
	}
	return bat.NewTable("iter", outIter, "item", outItem)
}

// evalAttrC constructs one attribute node per iter: names and values are
// iter|item tables with exactly one row per shared iter. Constructed
// attributes live on hidden owner elements in a private fragment so they
// can be copied into elements (or serialized) like stored attributes.
func (e *Engine) evalAttrC(names, values *bat.Table) (*bat.Table, error) {
	nIter, err := names.Ints("iter")
	if err != nil {
		return nil, err
	}
	nItem, err := names.Col("item")
	if err != nil {
		return nil, err
	}
	vIter, err := values.Ints("iter")
	if err != nil {
		return nil, err
	}
	vItem, err := values.Col("item")
	if err != nil {
		return nil, err
	}
	vals := make(map[int64]string, len(vIter))
	for i := range vIter {
		if _, dup := vals[vIter[i]]; dup {
			return nil, fmt.Errorf("attribute: multiple values for iter %d", vIter[i])
		}
		vals[vIter[i]] = vItem.ItemAt(i).StringValue()
	}
	fb := xenc.NewFragBuilder(e.Store)
	outIter := make(bat.IntVec, 0, len(nIter))
	for i := range nIter {
		name := nItem.ItemAt(i).StringValue()
		if name == "" {
			return nil, fmt.Errorf("attribute: empty name in iter %d", nIter[i])
		}
		val := vals[nIter[i]] // absent value = empty string (empty sequence content)
		fb.StartElem("#attr")
		if err := fb.AddAttr(name, val); err != nil {
			return nil, err
		}
		fb.EndElem()
		outIter = append(outIter, nIter[i])
	}
	frag, err := fb.Finish()
	if err != nil {
		return nil, err
	}
	outItem := make(bat.NodeVec, len(outIter))
	for i := range outItem {
		outItem[i] = bat.NodeRef{Frag: frag, Pre: xenc.AttrBase + int32(i)}
	}
	return bat.NewTable("iter", outIter, "item", outItem)
}
