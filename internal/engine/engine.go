package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/physical"
	"pathfinder/internal/xenc"
)

// Catalog resolves collection names to opened stores — the engine-facing
// face of pfstore.Catalog (an interface here so the engine does not
// depend on the persistence layer). The returned generation changes
// whenever the collection's content is republished; prepared-plan caches
// fold it into their keys.
type Catalog interface {
	Collection(name string) (store *xenc.Store, generation uint64, err error)
}

// Engine evaluates algebra plans. It owns a document store (constructors
// append fragments to it) and an optional resolver that loads documents on
// first fn:doc access.
//
// An engine is a view: the store binding (Store, Collection) is per-view,
// while the scheduler accounting, plan cache, and resolver lock live in a
// shared core. ForStore/ForCollection derive a view over another store in
// a few words of allocation; all views draw from one worker budget and
// one plan cache, so a multi-collection service behaves as a single
// engine for admission control and plan reuse.
type Engine struct {
	Store *xenc.Store

	// Collection names the collection Store holds, "" for an anonymous
	// store (documents loaded directly). fn:collection resolves against
	// it: one evaluation binds to exactly one store, since node refs are
	// store-local surrogate indexes.
	Collection string

	// Cat, when set, resolves collection names for ForCollection — the
	// hook the service and commands install a *pfstore.Catalog into.
	Cat Catalog

	// Resolve is consulted when fn:doc names a document that is not yet
	// loaded; nil means unknown documents are an error.
	Resolve func(store *xenc.Store, uri string) (bat.NodeRef, error)

	// Staircase selects the tree-aware staircase join (true, the paper's
	// configuration) or the naive region-query fallback (false, the
	// ablation baseline).
	Staircase bool

	// Deadline, when non-zero, aborts evaluation with an error once
	// exceeded (propagated through the evaluation context and observed
	// mid-operator in the row loops of ×, ⋈ and range) — the benchmark
	// harness's DNF mechanism.
	Deadline time.Time

	// Workers bounds the parallel DAG scheduler's worker pool. 0 means
	// runtime.GOMAXPROCS(0); 1 forces sequential evaluation.
	Workers int

	// SeqThreshold is the operator count below which plans skip the
	// scheduler and run on the sequential recursive evaluator, so
	// micro-queries pay no synchronization tax. 0 means
	// DefaultSeqThreshold; negative disables the fallback entirely.
	SeqThreshold int

	// MorselRows is the morsel size for intra-operator parallelism:
	// kernels the lowering pass marked Parallel split inputs larger than
	// this into per-morsel work items executed on spare pool workers. 0
	// means DefaultMorselRows; negative disables morsel parallelism.
	MorselRows int

	// NoFusion disables fused-chain execution: every physical operator
	// runs its own kernel even where the lowering identified a fusable
	// chain. Fusion is an executor-time switch, not a lowering switch —
	// plans (and the shared plan cache) are identical either way, the
	// executor just ignores the chain metadata. The escape hatch behind
	// pf/pfserver -no-fusion, and the baseline the fusion benchmark and
	// differential tests compare against.
	NoFusion bool

	// Legacy selects the original recursive interpreter over the logical
	// algebra, bypassing the physical lowering pass. It is kept as the
	// reference semantics for the differential tests and the baseline the
	// physical-plan benchmark measures against.
	Legacy bool

	// Check enables runtime invariant assertions: after every kernel, the
	// output's columns are checked against the operator's declared schema,
	// and the sortedness/strictness/denseness bits the plan carries are
	// spot-checked against the live rows (capped at CheckMaxRows per
	// operator). Evaluation fails loudly instead of producing a quietly
	// wrong answer. Meant for tests and `pf -check`; off in production.
	Check bool

	// sh is the shared core behind every view of this engine; see
	// engineShared.
	sh *engineShared

	// onApply, when set, observes every operator application exactly once
	// per evaluation — the test hook behind the memoization guarantees.
	onApply func(*algebra.Op)
}

// engineShared is the state all views of one engine share: a single
// worker budget, a single in-flight query gauge, one resolver lock, and
// one plan cache. Compiled plans are store-agnostic (name tests resolve
// their surrogates at evaluation time), so the cache safely spans
// collections — callers key their own prepared-statement layers by
// (query, collection, generation) and the engine caches per plan root.
type engineShared struct {
	// working counts the pool workers currently executing an operator —
	// the shared budget between the DAG scheduler and the morsel teams.
	// Operator hosts hold one slot while running a kernel; morsel teams
	// reserve only the spare slots (see reserveWorkers), so both
	// parallelism levels together never exceed workerCount goroutines.
	working atomic.Int32

	// queries counts the evaluations currently in flight — the per-query
	// accounting the service layer's admission control and the idle
	// assertions in the robustness tests build on.
	queries atomic.Int64

	// resolveMu serializes fn:doc cache misses so a document requested by
	// several parallel workers is loaded exactly once.
	resolveMu sync.Mutex

	// plans caches lowered physical plans by logical root, so a plan
	// evaluated many times (REPL, server, benchmark repeats) pays the
	// lowering pass once. Plan DAGs are immutable after optimization;
	// the cache is keyed by root pointer identity.
	plans sync.Map // map[*algebra.Op]*physical.Plan
}

// Config bundles the scheduler knobs for engines built with NewWithConfig.
type Config struct {
	Workers      int     // worker pool size; 0 = GOMAXPROCS
	SeqThreshold int     // sequential-fallback operator count; 0 = DefaultSeqThreshold
	MorselRows   int     // morsel size; 0 = DefaultMorselRows, negative disables
	NoFusion     bool    // disable fused-chain execution (run every kernel standalone)
	Legacy       bool    // run the legacy logical interpreter instead of physical plans
	Check        bool    // assert schema/order/denseness invariants on live intermediates
	Catalog      Catalog // collection-name resolver for ForCollection; nil = no named collections
}

// DefaultSeqThreshold is the plan size below which parallel dispatch is
// not worth the synchronization: the plans of simple path queries stay
// under it, the loop-lifted XMark join queries (~50–120 operators after
// optimization) clear it comfortably.
const DefaultSeqThreshold = 16

// New returns an engine over the given store with the staircase join
// enabled.
func New(store *xenc.Store) *Engine {
	return &Engine{Store: store, Staircase: true, sh: &engineShared{}}
}

// NewWithConfig returns an engine with explicit scheduler configuration.
func NewWithConfig(store *xenc.Store, cfg Config) *Engine {
	e := New(store)
	e.Workers = cfg.Workers
	e.SeqThreshold = cfg.SeqThreshold
	e.MorselRows = cfg.MorselRows
	e.NoFusion = cfg.NoFusion
	e.Legacy = cfg.Legacy
	e.Check = cfg.Check
	e.Cat = cfg.Catalog
	return e
}

// ForStore derives a view of this engine bound to another store: same
// scheduler budget, same plan cache, different data. The view is a few
// words of allocation, cheap enough to mint per request.
func (e *Engine) ForStore(store *xenc.Store, collection string) *Engine {
	if store == e.Store && collection == e.Collection {
		return e
	}
	v := *e
	v.Store = store
	v.Collection = collection
	return &v
}

// ForCollection resolves a collection name through the engine's catalog
// and returns a view bound to it plus the collection's current
// generation. An empty name keeps the engine's own binding (generation
// 0: anonymous stores have no republication counter). A named collection
// always resolves through the catalog — even when it matches the current
// binding — so a republished collection is picked up on the next request.
func (e *Engine) ForCollection(name string) (*Engine, uint64, error) {
	if name == "" {
		return e, 0, nil
	}
	if e.Cat == nil {
		if name == e.Collection {
			return e, 0, nil
		}
		return nil, 0, fmt.Errorf("collection %q: no catalog configured", name)
	}
	store, gen, err := e.Cat.Collection(name)
	if err != nil {
		return nil, 0, err
	}
	return e.ForStore(store, name), gen, nil
}

// Eval evaluates the plan DAG rooted at root. Shared subplans are
// evaluated once per call (the DAG memoization MonetDB gets from MIL
// variable bindings). Independent subplans are dispatched onto a bounded
// worker pool when the plan is large enough to pay for it (see
// EvalContext).
func (e *Engine) Eval(root *algebra.Op) (*bat.Table, error) {
	return e.EvalContext(context.Background(), root)
}

// EvalContext evaluates the plan under a context: cancellation and
// deadline expiry abort the evaluation, and are observed both between
// operators and inside the row loops of the long-running ones. The
// engine's Deadline field, when set, is merged into the context.
func (e *Engine) EvalContext(ctx context.Context, root *algebra.Op) (*bat.Table, error) {
	res, _, err := e.run(ctx, root, false)
	return res, err
}

// EvalTraced evaluates the plan and additionally returns every operator's
// materialized intermediate result — the §4 demo hook that lets plans "be
// traced to reveal the result computed for any subexpression".
func (e *Engine) EvalTraced(root *algebra.Op) (*bat.Table, map[*algebra.Op]*bat.Table, error) {
	res, tr, err := e.run(context.Background(), root, true)
	if err != nil {
		return nil, tr.Tables, err
	}
	return res, tr.Tables, nil
}

// EvalTrace evaluates the plan and returns the full instrumentation
// record: per-operator intermediate tables plus scheduling statistics
// (wall time, rows in/out, worker id). cmd/pf's -show explain mode is
// built on it.
func (e *Engine) EvalTrace(ctx context.Context, root *algebra.Op) (*bat.Table, *Trace, error) {
	return e.run(ctx, root, true)
}

// run picks the evaluation strategy. The default path lowers the logical
// DAG to a physical plan of typed kernels (internal/physical) and
// executes it — sequentially for plans below the fallback threshold or on
// single-worker engines, otherwise on the parallel DAG scheduler. The
// Legacy flag selects the original recursive interpreter over the logical
// algebra instead.
func (e *Engine) run(ctx context.Context, root *algebra.Op, traced bool) (*bat.Table, *Trace, error) {
	e.sh.queries.Add(1)
	defer e.sh.queries.Add(-1)
	if !e.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, e.Deadline)
		defer cancel()
	}
	var tr *Trace
	if traced {
		tr = newTrace()
	}
	if e.Legacy {
		if e.workerCount() <= 1 || algebra.CountOps(root) < e.seqThreshold() {
			res, err := e.evalSequential(ctx, root, tr)
			return res, tr, err
		}
		res, err := e.evalParallel(ctx, root, tr)
		return res, tr, err
	}
	plan := e.Lowered(root)
	if e.workerCount() <= 1 || len(plan.Nodes) < e.seqThreshold() {
		res, err := e.physSequential(ctx, plan, tr)
		return res, tr, err
	}
	res, err := e.physParallel(ctx, plan, tr)
	return res, tr, err
}

// Lowered returns the cached physical plan for root, lowering the logical
// DAG on first use. The service layer uses it as its admission hook: a
// query is priced off the same lowered plan (EstRows, operator count) the
// executor will run, and the lowering cost is paid once per distinct plan
// root no matter how many tenants share it.
func (e *Engine) Lowered(root *algebra.Op) *physical.Plan {
	if cached, ok := e.sh.plans.Load(root); ok {
		return cached.(*physical.Plan)
	}
	plan := physical.Lower(root)
	e.sh.plans.Store(root, plan)
	return plan
}

// ForgetPlan drops the cached lowered plan for root. Callers that cache
// parsed plans themselves (the MIL server's program cache) call this on
// eviction so the physical-plan cache does not pin evicted roots forever.
func (e *Engine) ForgetPlan(root *algebra.Op) { e.sh.plans.Delete(root) }

// ActiveQueries reports how many evaluations are currently in flight on
// this engine — the service layer's per-engine accounting gauge.
func (e *Engine) ActiveQueries() int64 { return e.sh.queries.Load() }

// ActiveWorkers reports how many pool workers are currently executing an
// operator kernel; 0 means the scheduler is idle. The robustness tests
// use it to assert that cancelled and disconnected queries release their
// workers promptly.
func (e *Engine) ActiveWorkers() int { return int(e.sh.working.Load()) }

func (e *Engine) seqThreshold() int {
	switch {
	case e.SeqThreshold == 0:
		return DefaultSeqThreshold
	case e.SeqThreshold < 0:
		return 0
	}
	return e.SeqThreshold
}

// evalSequential is the recursive single-worker evaluator — the fallback
// path for small plans and the reference semantics the differential tests
// compare the scheduler against.
func (e *Engine) evalSequential(ctx context.Context, root *algebra.Op, tr *Trace) (*bat.Table, error) {
	ev := &evaluation{e: e, ctx: ctx, memo: make(map[*algebra.Op]*bat.Table), trace: tr}
	return ev.eval(root)
}

type evaluation struct {
	e     *Engine
	ctx   context.Context
	memo  map[*algebra.Op]*bat.Table
	trace *Trace
}

func (ev *evaluation) eval(o *algebra.Op) (*bat.Table, error) {
	if t, ok := ev.memo[o]; ok {
		return t, nil
	}
	if err := ev.ctx.Err(); err != nil {
		return nil, err
	}
	in := make([]*bat.Table, len(o.In))
	for i, child := range o.In {
		t, err := ev.eval(child)
		if err != nil {
			return nil, err
		}
		in[i] = t
	}
	start := time.Now() //pfvet:allow determinism -- trace wall-time only, not query results
	t, err := ev.e.apply(ev.ctx, o, in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", o.Kind, err)
	}
	if ev.e.Check {
		if err := checkSchemaAgainst(t.Cols(), o); err != nil {
			return nil, fmt.Errorf("%s: %w", o.Kind, err)
		}
	}
	ev.memo[o] = t
	if ev.trace != nil {
		//pfvet:allow determinism -- trace wall-time only, not query results
		ev.trace.record(o, t, OpStat{Wall: time.Since(start), RowsIn: rowsIn(in), RowsOut: t.Rows(), Worker: 0})
	}
	return t, nil
}

func rowsIn(in []*bat.Table) int {
	n := 0
	for _, t := range in {
		n += t.Rows()
	}
	return n
}

func (e *Engine) apply(ctx context.Context, o *algebra.Op, in []*bat.Table) (*bat.Table, error) {
	if e.onApply != nil {
		e.onApply(o)
	}
	switch o.Kind {
	case algebra.OpLit:
		return o.Lit, nil
	case algebra.OpProject:
		specs := make([]string, len(o.Proj))
		for i, p := range o.Proj {
			specs[i] = p.New + ":" + p.Old
		}
		return in[0].Project(specs...)
	case algebra.OpSelect:
		return evalSelect(in[0], o.Col)
	case algebra.OpUnion:
		return evalUnion(in[0], in[1])
	case algebra.OpDiff:
		return evalDiff(in[0], in[1], o.KeyL, o.KeyR)
	case algebra.OpDistinct:
		return evalDistinct(in[0])
	case algebra.OpJoin:
		return evalJoin(ctx, in[0], in[1], o.KeyL, o.KeyR, joinFull)
	case algebra.OpSemiJoin:
		return evalJoin(ctx, in[0], in[1], o.KeyL, o.KeyR, joinSemi)
	case algebra.OpCross:
		return evalCross(ctx, in[0], in[1])
	case algebra.OpRowNum:
		return evalRowNum(in[0], o.Col, o.Order, o.Part)
	case algebra.OpRowID:
		t := in[0].Slice(0, in[0].Rows())
		if err := t.AddCol(o.Col, bat.Ramp(1, in[0].Rows())); err != nil {
			return nil, err
		}
		return t, nil
	case algebra.OpFun:
		return e.evalFun(in[0], o)
	case algebra.OpAggr:
		return evalAggr(in[0], o.Col, o.Agg, o.Args, o.Part, o.Sep)
	case algebra.OpStep:
		return e.evalStep(in[0], o.Axis, o.Test)
	case algebra.OpDoc:
		return e.evalDoc(in[0])
	case algebra.OpRoots:
		return e.evalRoots(in[0])
	case algebra.OpElem:
		return e.evalElem(in[0], in[1])
	case algebra.OpText:
		return e.evalText(in[0])
	case algebra.OpAttrC:
		return e.evalAttrC(in[0], in[1])
	case algebra.OpRange:
		return e.evalRange(ctx, in[0], o.KeyL[0], o.KeyL[1])
	case algebra.OpColl:
		return e.evalColl(in[0])
	}
	return nil, fmt.Errorf("unimplemented operator")
}

// cancelStride is how many rows the long-running row loops (×, ⋈, range
// expansion) process between context checks: frequent enough that a
// deadline or first-error cancellation is observed mid-operator, cheap
// enough to vanish next to the per-row work.
const cancelStride = 4096

// σ ---------------------------------------------------------------------------

func evalSelect(t *bat.Table, col string) (*bat.Table, error) {
	v, err := t.Col(col)
	if err != nil {
		return nil, err
	}
	var idx []int32
	for i := 0; i < t.Rows(); i++ {
		it := v.ItemAt(i)
		if it.Kind != bat.KBool {
			return nil, fmt.Errorf("σ over non-boolean column %q (row %d is %s)", col, i, it.Kind)
		}
		if it.B {
			idx = append(idx, int32(i))
		}
	}
	return t.Gather(idx), nil
}

// ∪ ---------------------------------------------------------------------------

func evalUnion(l, r *bat.Table) (*bat.Table, error) {
	out := &bat.Table{}
	for _, name := range l.Cols() {
		lv := l.MustCol(name)
		rv, err := r.Col(name)
		if err != nil {
			return nil, err
		}
		var merged bat.Vec
		if lv.Type() == rv.Type() {
			b := lv.New(lv.Len() + rv.Len())
			for i := 0; i < lv.Len(); i++ {
				b.AppendFrom(lv, i)
			}
			for i := 0; i < rv.Len(); i++ {
				b.AppendFrom(rv, i)
			}
			merged = b.Build()
		} else {
			iv := make(bat.ItemVec, 0, lv.Len()+rv.Len())
			for i := 0; i < lv.Len(); i++ {
				iv = append(iv, lv.ItemAt(i))
			}
			for i := 0; i < rv.Len(); i++ {
				iv = append(iv, rv.ItemAt(i))
			}
			merged = iv
		}
		if err := out.AddCol(name, merged); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Key hashing -----------------------------------------------------------------

// rowKey encodes the key columns of row i into a compact string usable as
// a hash map key.
func rowKey(buf []byte, vecs []bat.Vec, i int) []byte {
	for _, v := range vecs {
		k := v.ItemAt(i).Key()
		buf = append(buf, byte(k.Kind))
		u := uint64(k.I)
		if k.Kind == bat.KFloat {
			u = math.Float64bits(k.F)
		}
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(u>>s))
		}
		buf = append(buf, k.S...)
		buf = append(buf, 0)
	}
	return buf
}

// \ and δ ----------------------------------------------------------------------

func evalDiff(l, r *bat.Table, keyL, keyR []string) (*bat.Table, error) {
	rv, err := colVecs(r, keyR)
	if err != nil {
		return nil, err
	}
	if len(keyL) == 1 {
		if lInts, ok := mustVec(l, keyL[0]).(bat.IntVec); ok {
			if rInts, ok := rv[0].(bat.IntVec); ok {
				set := make(map[int64]struct{}, len(rInts))
				for _, k := range rInts {
					set[k] = struct{}{}
				}
				var idx []int32
				for i, k := range lInts {
					if _, hit := set[k]; !hit {
						idx = append(idx, int32(i))
					}
				}
				return l.Gather(idx), nil
			}
		}
	}
	set := make(map[string]struct{}, r.Rows())
	var buf []byte
	for i := 0; i < r.Rows(); i++ {
		buf = rowKey(buf[:0], rv, i)
		set[string(buf)] = struct{}{}
	}
	lv, err := colVecs(l, keyL)
	if err != nil {
		return nil, err
	}
	var idx []int32
	for i := 0; i < l.Rows(); i++ {
		buf = rowKey(buf[:0], lv, i)
		if _, ok := set[string(buf)]; !ok {
			idx = append(idx, int32(i))
		}
	}
	return l.Gather(idx), nil
}

func evalDistinct(t *bat.Table) (*bat.Table, error) {
	vecs, err := colVecs(t, t.Cols())
	if err != nil {
		return nil, err
	}
	idx, _ := distinctIndices(vecs, t.Rows(), nil, 0)
	return t.Gather(idx), nil
}

func colVecs(t *bat.Table, names []string) ([]bat.Vec, error) {
	vecs := make([]bat.Vec, len(names))
	for i, n := range names {
		v, err := t.Col(n)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	return vecs, nil
}

// ⋈ and ⋉ -----------------------------------------------------------------------

type joinMode uint8

const (
	joinFull joinMode = iota
	joinSemi
)

func evalJoin(ctx context.Context, l, r *bat.Table, keyL, keyR []string, mode joinMode) (*bat.Table, error) {
	rv, err := colVecs(r, keyR)
	if err != nil {
		return nil, err
	}
	// Fast path for the dominant case: a single dense-integer key (the
	// iter/inner/outer joins loop-lifting emits everywhere).
	if len(keyL) == 1 {
		if lInts, ok := mustVec(l, keyL[0]).(bat.IntVec); ok {
			if rInts, ok := rv[0].(bat.IntVec); ok {
				return intJoin(ctx, l, r, lInts, rInts, mode)
			}
		}
	}
	ht := make(map[string][]int32, r.Rows())
	var buf []byte
	for i := 0; i < r.Rows(); i++ {
		buf = rowKey(buf[:0], rv, i)
		ht[string(buf)] = append(ht[string(buf)], int32(i))
	}
	lv, err := colVecs(l, keyL)
	if err != nil {
		return nil, err
	}
	var lIdx, rIdx []int32
	for i := 0; i < l.Rows(); i++ {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		buf = rowKey(buf[:0], lv, i)
		matches := ht[string(buf)]
		if mode == joinSemi {
			if len(matches) > 0 {
				lIdx = append(lIdx, int32(i))
			}
			continue
		}
		for _, j := range matches {
			lIdx = append(lIdx, int32(i))
			rIdx = append(rIdx, j)
		}
	}
	if mode == joinSemi {
		return l.Gather(lIdx), nil
	}
	out := l.Gather(lIdx)
	rg := r.Gather(rIdx)
	for _, name := range r.Cols() {
		if err := out.AddCol(name, rg.MustCol(name)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func mustVec(t *bat.Table, name string) bat.Vec {
	v, err := t.Col(name)
	if err != nil {
		return nil
	}
	return v
}

// intJoin is the typed hash join over a single integer key column.
func intJoin(ctx context.Context, l, r *bat.Table, lk, rk bat.IntVec, mode joinMode) (*bat.Table, error) {
	ht := make(map[int64][]int32, len(rk))
	for i, k := range rk {
		ht[k] = append(ht[k], int32(i))
	}
	var lIdx, rIdx []int32
	for i, k := range lk {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		matches := ht[k]
		if mode == joinSemi {
			if len(matches) > 0 {
				lIdx = append(lIdx, int32(i))
			}
			continue
		}
		for _, j := range matches {
			lIdx = append(lIdx, int32(i))
			rIdx = append(rIdx, j)
		}
	}
	if mode == joinSemi {
		return l.Gather(lIdx), nil
	}
	out := l.Gather(lIdx)
	rg := r.Gather(rIdx)
	for _, name := range r.Cols() {
		if err := out.AddCol(name, rg.MustCol(name)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// × ------------------------------------------------------------------------------

func evalCross(ctx context.Context, l, r *bat.Table) (*bat.Table, error) {
	nl, nr := l.Rows(), r.Rows()
	lIdx := make([]int32, 0, nl*nr)
	rIdx := make([]int32, 0, nl*nr)
	// The output row loop checks the context by produced rows, not input
	// rows: a single 10⁶×10⁶ product must notice a deadline long before
	// its outer loop advances even once per stride.
	produced := 0
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			if produced%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			produced++
			lIdx = append(lIdx, int32(i))
			rIdx = append(rIdx, int32(j))
		}
	}
	out := l.Gather(lIdx)
	rg := r.Gather(rIdx)
	for _, name := range r.Cols() {
		if err := out.AddCol(name, rg.MustCol(name)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ϱ ------------------------------------------------------------------------------

func evalRowNum(t *bat.Table, newCol string, order []algebra.OrderSpec, part string) (*bat.Table, error) {
	out, _, err := rowNumSort(t, order, part)
	if err != nil {
		return nil, err
	}
	if err := rowNumAttach(out, newCol, part); err != nil {
		return nil, err
	}
	return out, nil
}

// rowNumSort brings t into ϱ's (partition, order...) order and reports
// whether the input was already sorted. Sorted inputs are returned as a
// column-sharing slice (no row copies) — the order-property fast path
// (the paper's [3]): loop-lifting emits many ϱ operators over inputs
// that are already in numbering order, e.g. a freshly stepped iter|item
// table, and a linear scan detects this and skips the sort, the analogue
// of MonetDB's no-cost void numbering.
func rowNumSort(t *bat.Table, order []algebra.OrderSpec, part string) (*bat.Table, bool, error) {
	var partVec bat.Vec
	if part != "" {
		v, err := t.Col(part)
		if err != nil {
			return nil, false, err
		}
		partVec = v
	}
	ordVecs := make([]bat.Vec, len(order))
	for i, o := range order {
		v, err := t.Col(o.Col)
		if err != nil {
			return nil, false, err
		}
		ordVecs[i] = v
	}
	less := func(ia, ib int) int {
		if partVec != nil {
			if c := bat.CompareTotal(partVec.ItemAt(ia), partVec.ItemAt(ib)); c != 0 {
				return c
			}
		}
		for k, o := range order {
			c := bat.CompareTotal(ordVecs[k].ItemAt(ia), ordVecs[k].ItemAt(ib))
			if o.Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
	sorted := true
	for i := 1; i < t.Rows(); i++ {
		if less(i-1, i) > 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return t.Slice(0, t.Rows()), true, nil
	}
	idx := make([]int32, t.Rows())
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(int(idx[a]), int(idx[b])) < 0 })
	return t.Gather(idx), false, nil
}

// rowNumAttach appends ϱ's numbering column to a table already in
// (partition, order...) order, restarting at 1 on every partition change.
func rowNumAttach(out *bat.Table, newCol, part string) error {
	var outPart bat.Vec
	if part != "" {
		outPart = out.MustCol(part)
	}
	nums := make(bat.IntVec, out.Rows())
	var n int64
	for i := range nums {
		if i == 0 || outPart != nil && bat.CompareTotal(
			outPart.ItemAt(i), outPart.ItemAt(i-1)) != 0 {
			n = 0
		}
		n++
		nums[i] = n
	}
	return out.AddCol(newCol, nums)
}

// Aggregates -----------------------------------------------------------------

func evalAggr(t *bat.Table, newCol string, agg algebra.AggKind, args []string, part, sep string) (*bat.Table, error) {
	var argVec bat.Vec
	if len(args) > 0 {
		v, err := t.Col(args[0])
		if err != nil {
			return nil, err
		}
		argVec = v
	}
	if part == "" {
		it, err := aggregate(agg, argVec, allRows(t.Rows()), sep)
		if err != nil {
			return nil, err
		}
		return bat.NewTable(newCol, bat.ItemVec{it})
	}
	partVec, err := t.Col(part)
	if err != nil {
		return nil, err
	}
	groups := make(map[bat.Key][]int32)
	var order []bat.Key
	rep := make(map[bat.Key]bat.Item)
	for i := 0; i < t.Rows(); i++ {
		k := partVec.ItemAt(i).Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
			rep[k] = partVec.ItemAt(i)
		}
		groups[k] = append(groups[k], int32(i))
	}
	partOut := bat.NewVec(partVec.Type(), len(order))
	aggOut := make(bat.ItemVec, 0, len(order))
	for _, k := range order {
		it, err := aggregate(agg, argVec, groups[k], sep)
		if err != nil {
			return nil, err
		}
		partOut.AppendItem(rep[k])
		aggOut = append(aggOut, it)
	}
	return bat.NewTable(part, partOut.Build(), newCol, aggOut)
}

func allRows(n int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

func aggregate(agg algebra.AggKind, arg bat.Vec, rows []int32, sep string) (bat.Item, error) {
	if agg == algebra.AggCount {
		return bat.Int(int64(len(rows))), nil
	}
	if agg == algebra.AggStrJoin {
		var sb strings.Builder
		for i, r := range rows {
			if i > 0 {
				sb.WriteString(sep)
			}
			it := arg.ItemAt(int(r))
			if it.Kind == bat.KNode {
				return bat.Item{}, fmt.Errorf("string-join over node items (stringify first)")
			}
			sb.WriteString(it.StringValue())
		}
		return bat.Str(sb.String()), nil
	}
	if len(rows) == 0 {
		if agg == algebra.AggSum {
			return bat.Int(0), nil
		}
		return bat.Item{}, fmt.Errorf("%s over empty group", agg)
	}
	allInt := true
	var sumI int64
	var sumF float64
	minIt, maxIt := arg.ItemAt(int(rows[0])), arg.ItemAt(int(rows[0]))
	for _, r := range rows {
		it := arg.ItemAt(int(r))
		if it.Kind == bat.KNode {
			return bat.Item{}, fmt.Errorf("%s over node items (atomize first)", agg)
		}
		f := it.AsFloat()
		if f != f { // NaN
			return bat.Item{}, fmt.Errorf("%s: %q is not numeric", agg, it.StringValue())
		}
		if it.Kind != bat.KInt {
			allInt = false
		}
		sumI += it.I
		sumF += f
		if c := bat.CompareTotal(it, minIt); c < 0 {
			minIt = it
		}
		if c := bat.CompareTotal(it, maxIt); c > 0 {
			maxIt = it
		}
	}
	switch agg {
	case algebra.AggSum:
		if allInt {
			return bat.Int(sumI), nil
		}
		return bat.Float(sumF), nil
	case algebra.AggMin:
		return minIt, nil
	case algebra.AggMax:
		return maxIt, nil
	case algebra.AggAvg:
		return bat.Float(sumF / float64(len(rows))), nil
	}
	return bat.Item{}, fmt.Errorf("unknown aggregate")
}

// fn:doc / fn:root ------------------------------------------------------------

func (e *Engine) evalDoc(t *bat.Table) (*bat.Table, error) {
	v, err := t.Col("item")
	if err != nil {
		return nil, err
	}
	out := make(bat.NodeVec, t.Rows())
	for i := 0; i < t.Rows(); i++ {
		uri := v.ItemAt(i).StringValue()
		ref, err := e.Store.Doc(uri)
		if err != nil {
			ref, err = e.resolveDoc(uri)
			if err != nil {
				return nil, err
			}
		}
		out[i] = ref
	}
	return replaceItem(t, out)
}

// resolveDoc loads an unknown document through the resolver, serialized so
// parallel workers hitting the same URI load it exactly once.
func (e *Engine) resolveDoc(uri string) (bat.NodeRef, error) {
	e.sh.resolveMu.Lock()
	defer e.sh.resolveMu.Unlock()
	if ref, err := e.Store.Doc(uri); err == nil {
		return ref, nil
	}
	if e.Resolve == nil {
		return bat.NodeRef{}, fmt.Errorf("fn:doc: document %q not loaded", uri)
	}
	return e.Resolve(e.Store, uri)
}

func (e *Engine) evalRoots(t *bat.Table) (*bat.Table, error) {
	v, err := t.Col("item")
	if err != nil {
		return nil, err
	}
	out := make(bat.NodeVec, t.Rows())
	for i := 0; i < t.Rows(); i++ {
		it := v.ItemAt(i)
		if it.Kind != bat.KNode {
			return nil, fmt.Errorf("fn:root over non-node item")
		}
		out[i] = e.Store.Root(it.N)
	}
	return replaceItem(t, out)
}

// evalColl expands each (iter, name) row into the document sequence of
// the named collection, in shard-manifest (load) order — the fn:collection
// kernel. Node refs are store-local, so one evaluation is bound to exactly
// one store: the name must match the engine's bound collection (or be
// empty, XQuery's "default collection", which is whatever the evaluation
// is bound to). Requests against another collection get their own engine
// view via ForCollection.
func (e *Engine) evalColl(t *bat.Table) (*bat.Table, error) {
	iters, err := t.Ints("iter")
	if err != nil {
		return nil, err
	}
	v, err := t.Col("item")
	if err != nil {
		return nil, err
	}
	var docs []xenc.DocEntry
	outIter := bat.IntVec{}
	outPos := bat.IntVec{}
	outItem := bat.NodeVec{}
	for i := 0; i < t.Rows(); i++ {
		name := v.ItemAt(i).StringValue()
		if name != "" && name != e.Collection {
			if e.Collection == "" {
				return nil, fmt.Errorf("fn:collection: no collection bound to this evaluation (want %q); submit the query against that collection", name)
			}
			return nil, fmt.Errorf("fn:collection: collection %q is not the bound collection %q; submit the query against it", name, e.Collection)
		}
		if docs == nil {
			docs = e.Store.DocsInOrder()
		}
		for k, d := range docs {
			outIter = append(outIter, iters[i])
			outPos = append(outPos, int64(k)+1)
			outItem = append(outItem, d.Root)
		}
	}
	return bat.NewTable("iter", outIter, "pos", outPos, "item", outItem)
}

// evalRange expands each (iter, lo, hi) row into the integer sequence
// lo..hi.
func (e *Engine) evalRange(ctx context.Context, t *bat.Table, loCol, hiCol string) (*bat.Table, error) {
	iters, err := t.Ints("iter")
	if err != nil {
		return nil, err
	}
	lo, err := t.Col(loCol)
	if err != nil {
		return nil, err
	}
	hi, err := t.Col(hiCol)
	if err != nil {
		return nil, err
	}
	outIter := bat.IntVec{}
	outPos := bat.IntVec{}
	outItem := bat.IntVec{}
	for i := 0; i < t.Rows(); i++ {
		l, err1 := lo.ItemAt(i).AsInt()
		h, err2 := hi.ItemAt(i).AsInt()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("range over non-integer bounds")
		}
		if h-l > 50_000_000 {
			return nil, fmt.Errorf("range %d..%d too large", l, h)
		}
		for k := l; k <= h; k++ {
			if len(outItem)%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			outIter = append(outIter, iters[i])
			outPos = append(outPos, k-l+1)
			outItem = append(outItem, k)
		}
	}
	return bat.NewTable("iter", outIter, "pos", outPos, "item", outItem)
}

// replaceItem rebuilds t with the item column substituted, all other
// columns passing through.
func replaceItem(t *bat.Table, item bat.Vec) (*bat.Table, error) {
	out := &bat.Table{}
	for _, name := range t.Cols() {
		v := t.MustCol(name)
		if name == "item" {
			v = item
		}
		if err := out.AddCol(name, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}
