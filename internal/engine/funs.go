package engine

import (
	"fmt"
	"math"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

// evalFun applies a per-row function ⊛, appending the result column. The
// result vector is typed when the function's codomain is fixed (booleans
// for comparisons/logic, strings for fn:string) and polymorphic otherwise.
func (e *Engine) evalFun(t *bat.Table, o *algebra.Op) (*bat.Table, error) {
	args := make([]bat.Vec, len(o.Args))
	for i, a := range o.Args {
		v, err := t.Col(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	n := t.Rows()
	var out bat.Vec
	switch o.Fun {
	case algebra.FunEq, algebra.FunNe, algebra.FunLt, algebra.FunLe,
		algebra.FunGt, algebra.FunGe, algebra.FunAnd, algebra.FunOr,
		algebra.FunNot, algebra.FunContains, algebra.FunStartsWith,
		algebra.FunDocBefore, algebra.FunNodeIs, algebra.FunTypeIs,
		algebra.FunBoolWrap, algebra.FunEbvItem:
		res := make(bat.BoolVec, n)
		for i := 0; i < n; i++ {
			it, err := e.applyFun(o, args, i)
			if err != nil {
				return nil, err
			}
			res[i] = it.B
		}
		out = res
	case algebra.FunString, algebra.FunConcat, algebra.FunSubstring,
		algebra.FunSubstring3, algebra.FunNameOf:
		res := make(bat.StrVec, n)
		for i := 0; i < n; i++ {
			it, err := e.applyFun(o, args, i)
			if err != nil {
				return nil, err
			}
			res[i] = it.S
		}
		out = res
	default:
		res := make(bat.ItemVec, n)
		for i := 0; i < n; i++ {
			it, err := e.applyFun(o, args, i)
			if err != nil {
				return nil, err
			}
			res[i] = it
		}
		out = res
	}
	nt := t.Slice(0, n)
	if err := nt.AddCol(o.Col, out); err != nil {
		return nil, err
	}
	return nt, nil
}

func (e *Engine) applyFun(o *algebra.Op, args []bat.Vec, row int) (bat.Item, error) {
	a := args[0].ItemAt(row)
	var b, c bat.Item
	if len(args) > 1 {
		b = args[1].ItemAt(row)
	}
	if len(args) > 2 {
		c = args[2].ItemAt(row)
	}
	return e.applyFunItems(o, a, b, c)
}

// applyFunItems is the per-item body of ⊛, factored out of applyFun so
// the fused-chain lane kernels can evaluate a function over already
// fetched items. c is only consulted by the three-argument functions
// (fn:substring with length).
func (e *Engine) applyFunItems(o *algebra.Op, a, b, c bat.Item) (bat.Item, error) {
	switch o.Fun {
	case algebra.FunAdd, algebra.FunSub, algebra.FunMul, algebra.FunDiv,
		algebra.FunIDiv, algebra.FunMod:
		return arith(o.Fun, a, b)
	case algebra.FunNeg:
		switch a.Kind {
		case bat.KInt:
			return bat.Int(-a.I), nil
		case bat.KFloat, bat.KUntyped:
			return bat.Float(-a.AsFloat()), nil
		}
		return bat.Item{}, fmt.Errorf("unary minus on %s", a.Kind)

	case algebra.FunEq, algebra.FunNe, algebra.FunLt, algebra.FunLe,
		algebra.FunGt, algebra.FunGe:
		c, err := bat.Compare(a, b)
		if err != nil {
			return bat.Item{}, err
		}
		switch o.Fun {
		case algebra.FunEq:
			return bat.Bool(c == 0), nil
		case algebra.FunNe:
			return bat.Bool(c != 0), nil
		case algebra.FunLt:
			return bat.Bool(c < 0), nil
		case algebra.FunLe:
			return bat.Bool(c <= 0), nil
		case algebra.FunGt:
			return bat.Bool(c > 0), nil
		default:
			return bat.Bool(c >= 0), nil
		}

	case algebra.FunAnd, algebra.FunOr:
		if a.Kind != bat.KBool || b.Kind != bat.KBool {
			return bat.Item{}, fmt.Errorf("%s on %s, %s", o.Fun, a.Kind, b.Kind)
		}
		if o.Fun == algebra.FunAnd {
			return bat.Bool(a.B && b.B), nil
		}
		return bat.Bool(a.B || b.B), nil
	case algebra.FunNot:
		if a.Kind != bat.KBool {
			return bat.Item{}, fmt.Errorf("fn:not on %s", a.Kind)
		}
		return bat.Bool(!a.B), nil
	case algebra.FunBoolWrap:
		if a.Kind != bat.KBool {
			return bat.Item{}, fmt.Errorf("boolean value expected, got %s", a.Kind)
		}
		return a, nil

	case algebra.FunConcat:
		return bat.Str(e.stringOf(a) + e.stringOf(b)), nil
	case algebra.FunContains:
		return bat.Bool(strings.Contains(e.stringOf(a), e.stringOf(b))), nil
	case algebra.FunStartsWith:
		return bat.Bool(strings.HasPrefix(e.stringOf(a), e.stringOf(b))), nil
	case algebra.FunStringLength:
		return bat.Int(int64(len([]rune(e.stringOf(a))))), nil
	case algebra.FunSubstring, algebra.FunSubstring3:
		ln := -1.0
		if o.Fun == algebra.FunSubstring3 {
			ln = c.AsFloat()
		}
		return bat.Str(substring(e.stringOf(a), b.AsFloat(), ln)), nil
	case algebra.FunNameOf:
		if a.Kind != bat.KNode {
			return bat.Item{}, fmt.Errorf("fn:name on non-node item")
		}
		return bat.Str(e.Store.NameOf(a.N)), nil

	case algebra.FunAtomize:
		if a.Kind == bat.KNode {
			return e.Store.Atomize(a.N), nil
		}
		return a, nil
	case algebra.FunString:
		return bat.Str(e.stringOf(a)), nil
	case algebra.FunNumber:
		if a.Kind == bat.KNode {
			a = e.Store.Atomize(a.N)
		}
		return bat.Float(a.AsFloat()), nil

	case algebra.FunDocBefore:
		if a.Kind != bat.KNode || b.Kind != bat.KNode {
			return bat.Item{}, fmt.Errorf("<< on non-nodes")
		}
		return bat.Bool(e.Store.RefBefore(a.N, b.N)), nil
	case algebra.FunNodeIs:
		if a.Kind != bat.KNode || b.Kind != bat.KNode {
			return bat.Item{}, fmt.Errorf("is on non-nodes")
		}
		return bat.Bool(a.N == b.N), nil

	case algebra.FunTypeIs:
		return bat.Bool(e.typeIs(a, o.Type, o.TypeName)), nil

	case algebra.FunEbvItem:
		// Effective boolean value of one item: nodes are true, booleans
		// are themselves, numbers are != 0 (and not NaN), strings and
		// untyped atomics are non-empty.
		switch a.Kind {
		case bat.KNode:
			return bat.Bool(true), nil
		case bat.KBool:
			return a, nil
		case bat.KInt:
			return bat.Bool(a.I != 0), nil
		case bat.KFloat:
			return bat.Bool(a.F != 0 && a.F == a.F), nil
		default:
			return bat.Bool(a.S != ""), nil
		}
	}
	return bat.Item{}, fmt.Errorf("unimplemented function %s", o.Fun)
}

// substring implements fn:substring's rounding semantics over rune
// positions; ln < 0 means "to the end".
func substring(s string, start, ln float64) string {
	runes := []rune(s)
	from := int(math.Round(start))
	to := len(runes) + 1
	if ln >= 0 {
		to = from + int(math.Round(ln))
	}
	if from < 1 {
		from = 1
	}
	if to > len(runes)+1 {
		to = len(runes) + 1
	}
	if from >= to {
		return ""
	}
	return string(runes[from-1 : to-1])
}

func (e *Engine) stringOf(a bat.Item) string {
	if a.Kind == bat.KNode {
		return e.Store.StringValue(a.N)
	}
	return a.StringValue()
}

func (e *Engine) typeIs(a bat.Item, ty algebra.SeqType, tyName string) bool {
	switch ty {
	case algebra.TyItem:
		return true
	case algebra.TyNode:
		return a.Kind == bat.KNode
	case algebra.TyElem:
		if a.Kind != bat.KNode || e.Store.KindOf(a.N) != xenc.KindElem {
			return false
		}
		return tyName == "" || e.Store.NameOf(a.N) == tyName
	case algebra.TyText:
		return a.Kind == bat.KNode && e.Store.KindOf(a.N) == xenc.KindText
	case algebra.TyAttr:
		if a.Kind != bat.KNode || e.Store.KindOf(a.N) != xenc.KindAttr {
			return false
		}
		return tyName == "" || e.Store.NameOf(a.N) == tyName
	case algebra.TyDocNode:
		return a.Kind == bat.KNode && e.Store.KindOf(a.N) == xenc.KindDoc
	case algebra.TyAtomic:
		return a.Kind != bat.KNode
	case algebra.TyInteger:
		return a.Kind == bat.KInt
	case algebra.TyDouble:
		return a.Kind == bat.KFloat
	case algebra.TyNumeric:
		return a.Kind == bat.KInt || a.Kind == bat.KFloat
	case algebra.TyString:
		return a.Kind == bat.KStr
	case algebra.TyBoolean:
		return a.Kind == bat.KBool
	case algebra.TyUntyped:
		return a.Kind == bat.KUntyped
	}
	return false
}

// arith implements the numeric operators with XQuery promotion: untyped
// atomics cast to xs:double, integer op integer stays integral (except
// div), anything involving a double is a double.
func arith(fun algebra.FunKind, a, b bat.Item) (bat.Item, error) {
	af, bf := a.AsFloat(), b.AsFloat()
	if math.IsNaN(af) && !numericKind(a) || math.IsNaN(bf) && !numericKind(b) {
		return bat.Item{}, fmt.Errorf("arithmetic on non-numeric operand (%s, %s)",
			a.StringValue(), b.StringValue())
	}
	bothInt := a.Kind == bat.KInt && b.Kind == bat.KInt
	switch fun {
	case algebra.FunAdd:
		if bothInt {
			return bat.Int(a.I + b.I), nil
		}
		return bat.Float(af + bf), nil
	case algebra.FunSub:
		if bothInt {
			return bat.Int(a.I - b.I), nil
		}
		return bat.Float(af - bf), nil
	case algebra.FunMul:
		if bothInt {
			return bat.Int(a.I * b.I), nil
		}
		return bat.Float(af * bf), nil
	case algebra.FunDiv:
		if bf == 0 && bothInt {
			return bat.Item{}, fmt.Errorf("division by zero")
		}
		return bat.Float(af / bf), nil
	case algebra.FunIDiv:
		if bf == 0 {
			return bat.Item{}, fmt.Errorf("integer division by zero")
		}
		return bat.Int(int64(af / bf)), nil
	case algebra.FunMod:
		if bothInt {
			if b.I == 0 {
				return bat.Item{}, fmt.Errorf("modulo by zero")
			}
			return bat.Int(a.I % b.I), nil
		}
		return bat.Float(math.Mod(af, bf)), nil
	}
	return bat.Item{}, fmt.Errorf("not an arithmetic function: %s", fun)
}

func numericKind(a bat.Item) bool {
	switch a.Kind {
	case bat.KInt, bat.KFloat:
		return true
	case bat.KUntyped, bat.KStr:
		return !math.IsNaN(a.AsFloat())
	}
	return false
}
