package engine

import (
	"pathfinder/internal/bat"
)

// distinctIndices computes δ's surviving row indices — the first
// occurrence of each distinct row, in input order — over the given key
// column vectors. sel restricts (and orders) the rows considered; nil
// means rows off..off+n-1 (off lets a morsel scan its dense range
// without synthesizing a selection vector; it is ignored when sel is
// non-nil). The returned indices are absolute rows of the underlying
// vectors, and the second result names the kernel that ran.
//
// When every key column is a typed int vector the rows hash as native
// integers — single column through a map[int64], pairs through a
// map[[2]int64], wider keys through a fixed-width byte packing — instead
// of boxing every cell into an Item and encoding it through rowKey. The
// loop-lifted plans δ appears in key on iter/pos/pre columns almost
// exclusively, so this path dominates (see BenchmarkDistinct).
func distinctIndices(vecs []bat.Vec, n int, sel []int32, off int) ([]int32, string) {
	row := func(i int) int32 {
		if sel == nil {
			return int32(i + off)
		}
		return sel[i]
	}
	ints := make([]bat.IntVec, 0, len(vecs))
	for _, v := range vecs {
		iv, ok := v.(bat.IntVec)
		if !ok {
			ints = nil
			break
		}
		ints = append(ints, iv)
	}
	idx := make([]int32, 0, n)
	if len(ints) > 0 {
		switch len(ints) {
		case 1:
			seen := make(map[int64]struct{}, n)
			k0 := ints[0]
			for i := 0; i < n; i++ {
				r := row(i)
				k := k0[r]
				if _, ok := seen[k]; !ok {
					seen[k] = struct{}{}
					idx = append(idx, r)
				}
			}
		case 2:
			seen := make(map[[2]int64]struct{}, n)
			k0, k1 := ints[0], ints[1]
			for i := 0; i < n; i++ {
				r := row(i)
				k := [2]int64{k0[r], k1[r]}
				if _, ok := seen[k]; !ok {
					seen[k] = struct{}{}
					idx = append(idx, r)
				}
			}
		default:
			// Fixed-width little-endian packing: 8 bytes per column, no
			// separators needed since every field has the same width.
			seen := make(map[string]struct{}, n)
			buf := make([]byte, 0, 8*len(ints))
			for i := 0; i < n; i++ {
				r := row(i)
				buf = buf[:0]
				for _, iv := range ints {
					u := uint64(iv[r])
					for s := 0; s < 64; s += 8 {
						buf = append(buf, byte(u>>s))
					}
				}
				if _, ok := seen[string(buf)]; !ok {
					seen[string(buf)] = struct{}{}
					idx = append(idx, r)
				}
			}
		}
		return idx, "distinct[int]"
	}
	seen := make(map[string]struct{}, n)
	var buf []byte
	for i := 0; i < n; i++ {
		r := row(i)
		buf = rowKey(buf[:0], vecs, int(r))
		if _, ok := seen[string(buf)]; !ok {
			seen[string(buf)] = struct{}{}
			idx = append(idx, r)
		}
	}
	return idx, "distinct[hash]"
}
