package engine_test

// Differential harness for fused-chain execution: the same corpora as
// the scheduler and morsel differentials (all 20 XMark queries and the
// Table 2 dialect corpus) run with fusion enabled at workers ∈ {1,8}
// and tiny morsels, byte-compared against a -no-fusion baseline. The
// guarantee under test is the tentpole invariant: whether a chain runs
// as one vectorized loop or one kernel at a time must be unobservable
// in the output. The tests live in this package so that
// `go test -race ./internal/engine/` covers the fused morsel teams.

import (
	"context"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/physical"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// fusionEngine returns an engine with fusion live, tiny morsels, and
// the sequential fallback disabled, so fused chains split into morsel
// teams even on the sf=0.002 instance. Runtime checking stays on: every
// chain boundary is schema-verified.
func fusionEngine(t *testing.T, uri, doc string, workers int) *engine.Engine {
	t.Helper()
	e := engine.NewWithConfig(xenc.NewStore(), engine.Config{
		Workers:      workers,
		SeqThreshold: -1,
		MorselRows:   7,
		Check:        true,
	})
	if _, err := e.Store.LoadDocumentString(uri, doc); err != nil {
		t.Fatal(err)
	}
	return e
}

// noFusionEngine is the per-operator baseline: identical plans, fused
// chains executed one kernel at a time.
func noFusionEngine(t *testing.T, uri, doc string) *engine.Engine {
	t.Helper()
	e := engine.NewWithConfig(xenc.NewStore(), engine.Config{
		Workers: 1, Check: true, NoFusion: true,
	})
	if _, err := e.Store.LoadDocumentString(uri, doc); err != nil {
		t.Fatal(err)
	}
	return e
}

var fusionWorkerCounts = []int{1, 8}

// TestXMarkFusionDifferential: all 20 XMark queries, plain and
// optimized, fused at workers ∈ {1,8}, byte-compared against the
// unfused baseline.
func TestXMarkFusionDifferential(t *testing.T) {
	doc := xmark.GenerateString(diffSF)
	base := noFusionEngine(t, "xmark.xml", doc)
	engines := make(map[int]*engine.Engine, len(fusionWorkerCounts))
	for _, w := range fusionWorkerCounts {
		engines[w] = fusionEngine(t, "xmark.xml", doc, w)
	}
	opts := xqcore.Options{ContextDoc: "xmark.xml"}

	for n := 1; n <= xmark.NumQueries; n++ {
		src := xmark.Query(n)
		want, errB := core.Run(src, base, opts)
		optWant, errOB := runOptimized(t, src, base, opts)
		if errB != nil || errOB != nil {
			t.Errorf("Q%d: unfused baseline err=%v optimized err=%v", n, errB, errOB)
			continue
		}
		for _, w := range fusionWorkerCounts {
			got, err := core.Run(src, engines[w], opts)
			if err != nil {
				t.Errorf("Q%d workers=%d: %v", n, w, err)
				continue
			}
			if got != want {
				t.Errorf("Q%d workers=%d: fused result differs:\n unfused = %.400q\n fused   = %.400q", n, w, want, got)
			}
			optGot, err := runOptimized(t, src, engines[w], opts)
			if err != nil {
				t.Errorf("Q%d workers=%d optimized: %v", n, w, err)
				continue
			}
			if optGot != optWant {
				t.Errorf("Q%d workers=%d: optimized fused result differs:\n unfused = %.400q\n fused   = %.400q", n, w, optWant, optGot)
			}
		}
	}
}

// TestDialectFusionDifferential: the Table 2 corpus, fused vs unfused,
// plain and optimized, at every worker count.
func TestDialectFusionDifferential(t *testing.T) {
	base := noFusionEngine(t, "auction.xml", auctionDoc)
	engines := make(map[int]*engine.Engine, len(fusionWorkerCounts))
	for _, w := range fusionWorkerCounts {
		engines[w] = fusionEngine(t, "auction.xml", auctionDoc, w)
	}
	opts := xqcore.Options{ContextDoc: "auction.xml"}

	for _, src := range dialectQueries {
		want, errB := core.Run(src, base, opts)
		if errB != nil {
			t.Errorf("%s: unfused baseline: %v", src, errB)
			continue
		}
		for _, w := range fusionWorkerCounts {
			got, err := core.Run(src, engines[w], opts)
			if err != nil {
				t.Errorf("%s workers=%d: %v", src, w, err)
				continue
			}
			if got != want {
				t.Errorf("%s workers=%d:\n unfused = %q\n fused   = %q", src, w, want, got)
			}
			optGot, err := runOptimized(t, src, engines[w], opts)
			if err != nil {
				t.Errorf("%s workers=%d optimized: %v", src, w, err)
				continue
			}
			if optGot != want {
				t.Errorf("%s workers=%d: optimized fused drifted:\n plain = %q\n opt = %q", src, w, want, optGot)
			}
		}
	}
}

// TestFusionChainsExercised proves the differentials above actually run
// fused code: a range-driven query big enough to clear the FusedMinRows
// gate must record chain membership in its trace, with the interior
// members carrying through-chain row counts and the tail the chain's
// wall time.
func TestFusionChainsExercised(t *testing.T) {
	e := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: 1, Check: true})
	plan, _, err := core.CompileQuery(`for $i in 1 to 10000 where $i mod 7 = 0 return $i * 2`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan, err = opt.Optimize(plan); err != nil {
		t.Fatal(err)
	}
	_, tr, err := e.EvalTrace(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	fused := 0
	for _, st := range tr.Stats {
		if st.FusedChain > 0 {
			fused++
			if st.FusedPos < 1 || st.FusedPos > st.FusedLen || st.FusedLen < 2 {
				t.Errorf("inconsistent chain membership: pos %d of %d", st.FusedPos, st.FusedLen)
			}
		}
	}
	if fused == 0 {
		t.Fatal("no operator ran inside a fused chain; the differential tier is not exercising fusion")
	}
	t.Logf("%d operators ran fused", fused)
}

// fusedChainPlan builds a map→filter→project pipeline over a literal
// wide enough to clear the FusedMinRows gate: exactly one fused chain
// of three members over n rows, half of which survive the filter.
func fusedChainPlan(t *testing.T, n int) (root, mapOp, selOp *algebra.Op) {
	t.Helper()
	a := make(bat.IntVec, n)
	b := make(bat.IntVec, n)
	for i := range a {
		a[i] = int64(i)
		b[i] = int64(i % 2)
	}
	lit := algebra.Lit(bat.MustTable("a", a, "b", b))
	fn, err := algebra.Fun(lit, "p", algebra.FunLt, "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := algebra.Select(fn, "p")
	if err != nil {
		t.Fatal(err)
	}
	pj, err := algebra.Project(sel, "a")
	if err != nil {
		t.Fatal(err)
	}
	return pj, fn, sel
}

// TestFusionTraceAccounting is the regression test for the trace
// materialization fix: tracing forces every chain interior to
// materialize a full table (the -show table contract), and that
// tracing-induced work must be charged to the trace, not to the chain's
// RowsMat. Interior members must report zero Wall and RowsMat even when
// their trace tables hold every row.
func TestFusionTraceAccounting(t *testing.T) {
	n := physical.FusedMinRows * 2
	plan, mapOp, selOp := fusedChainPlan(t, n)

	fused := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: 1, Check: true})
	unfused := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: 1, Check: true, NoFusion: true})

	res, tr, err := fused.EvalTrace(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := unfused.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != want.Rows() {
		t.Fatalf("fused rows %d != unfused rows %d", res.Rows(), want.Rows())
	}

	for name, op := range map[string]*algebra.Op{"map": mapOp, "filter": selOp} {
		st, ok := tr.Stats[op]
		if !ok {
			t.Fatalf("no stat recorded for the %s member", name)
		}
		if st.FusedChain == 0 {
			t.Fatalf("%s member ran outside a chain (pos %d/%d); test premise broken", name, st.FusedPos, st.FusedLen)
		}
		if st.FusedPos == st.FusedLen {
			t.Fatalf("%s member is the chain tail; test premise broken", name)
		}
		if st.RowsMat != 0 {
			t.Errorf("%s interior charged RowsMat=%d; trace-forced materialization leaked into chain accounting", name, st.RowsMat)
		}
		if st.Wall != 0 {
			t.Errorf("%s interior charged Wall=%v; the tail owns the chain's wall time", name, st.Wall)
		}
		tab, ok := tr.Tables[op]
		if !ok || tab == nil {
			t.Fatalf("trace holds no table for the %s member; -show table would go blank", name)
		}
		if tab.Rows() != st.RowsOut {
			t.Errorf("%s trace table has %d rows, stat says %d", name, tab.Rows(), st.RowsOut)
		}
	}
	if st := tr.Stats[plan]; st.FusedChain == 0 || st.FusedPos != st.FusedLen {
		t.Errorf("projection tail not recorded as chain tail: %+v", st)
	}
}

// TestFusionTinyInputAllocations pins the tiny-input fast path: below
// the FusedMinRows gate no chains form, so enabling fusion must not
// cost a single extra allocation — no vector buffers, no selection
// vectors, no unit remapping.
func TestFusionTinyInputAllocations(t *testing.T) {
	plan, _, _ := fusedChainPlan(t, 16)
	fused := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: 1})
	unfused := engine.NewWithConfig(xenc.NewStore(), engine.Config{Workers: 1, NoFusion: true})

	// Warm both paths once (plan-side caches, store state).
	if _, err := fused.Eval(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := unfused.Eval(plan); err != nil {
		t.Fatal(err)
	}

	fusedAllocs := testing.AllocsPerRun(50, func() {
		if _, err := fused.Eval(plan); err != nil {
			t.Fatal(err)
		}
	})
	unfusedAllocs := testing.AllocsPerRun(50, func() {
		if _, err := unfused.Eval(plan); err != nil {
			t.Fatal(err)
		}
	})
	if fusedAllocs > unfusedAllocs {
		t.Errorf("tiny input: fusion-enabled engine allocates more (%v) than -no-fusion (%v); the EstRows gate is not skipping chain setup",
			fusedAllocs, unfusedAllocs)
	}
}
