package engine

import (
	"sort"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Typed comparators for the physical ϱ kernels. The legacy rowNumSort
// boxes two Items and calls CompareTotal for every comparison — during
// the sortedness scan and then O(n log n) more times inside the sort.
// A typed column admits a monomorphic comparator over the raw slice;
// each one reproduces CompareTotal's same-kind behavior exactly
// (integers compare through float64 like the boxed path, nodes by
// (fragment, preorder) document position).

// totalCmp returns a comparator equivalent to CompareTotal over rows of
// one column, specialized to the column's physical type.
func totalCmp(v bat.Vec) func(a, b int) int {
	switch x := v.(type) {
	case bat.IntVec:
		return func(a, b int) int { return cmpF(float64(x[a]), float64(x[b])) }
	case bat.FloatVec:
		return func(a, b int) int { return cmpF(x[a], x[b]) }
	case bat.StrVec:
		return func(a, b int) int { return strings.Compare(x[a], x[b]) }
	case bat.BoolVec:
		return func(a, b int) int {
			bi := func(v bool) int {
				if v {
					return 1
				}
				return 0
			}
			return bi(x[a]) - bi(x[b])
		}
	case bat.NodeVec:
		return func(a, b int) int {
			if x[a].Frag != x[b].Frag {
				return int(x[a].Frag) - int(x[b].Frag)
			}
			return int(x[a].Pre) - int(x[b].Pre)
		}
	default:
		return func(a, b int) int { return bat.CompareTotal(v.ItemAt(a), v.ItemAt(b)) }
	}
}

// physRowNumSort is rowNumSort with typed comparators: same sortedness
// scan, same stable sort, same column-sharing fast path for inputs
// already in (partition, order...) order.
func physRowNumSort(t *bat.Table, order []algebra.OrderSpec, part string) (*bat.Table, bool, error) {
	cmps := make([]func(a, b int) int, 0, len(order)+1)
	descs := make([]bool, 0, len(order)+1)
	if part != "" {
		v, err := t.Col(part)
		if err != nil {
			return nil, false, err
		}
		cmps = append(cmps, totalCmp(v))
		descs = append(descs, false)
	}
	for _, o := range order {
		v, err := t.Col(o.Col)
		if err != nil {
			return nil, false, err
		}
		cmps = append(cmps, totalCmp(v))
		descs = append(descs, o.Desc)
	}
	less := func(ia, ib int) int {
		for k, cmp := range cmps {
			if c := cmp(ia, ib); c != 0 {
				if descs[k] {
					return -c
				}
				return c
			}
		}
		return 0
	}
	sorted := true
	for i := 1; i < t.Rows(); i++ {
		if less(i-1, i) > 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return t.Slice(0, t.Rows()), true, nil
	}
	idx := make([]int32, t.Rows())
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(int(idx[a]), int(idx[b])) < 0 })
	return t.Gather(idx), false, nil
}

// physAggr is the aggregation kernel with typed partitioned grouping:
// an int partition column groups through a float64-keyed map (the same
// numeric normalization Item.Key applies, so group identity — including
// the int/float meet — is unchanged) without boxing a Key per row.
// Group order stays first-occurrence; per-group aggregation reuses the
// shared aggregate() so every diagnostic and promotion rule is the
// legacy one. Non-int partitions fall back to the boxed grouping.
func physAggr(t *bat.Table, newCol string, agg algebra.AggKind, args []string, part, sep string) (*bat.Table, string, error) {
	if part == "" {
		out, err := evalAggr(t, newCol, agg, args, part, sep)
		return out, "", err
	}
	pv, err := t.Col(part)
	if err != nil {
		return nil, "", err
	}
	pInts, ok := pv.(bat.IntVec)
	if !ok {
		out, err := evalAggr(t, newCol, agg, args, part, sep)
		return out, "", err
	}
	var argVec bat.Vec
	if len(args) > 0 {
		if argVec, err = t.Col(args[0]); err != nil {
			return nil, "", err
		}
	}
	n := t.Rows()
	groups := make(map[float64][]int32)
	var order []float64
	rep := make(map[float64]int64)
	for i := 0; i < n; i++ {
		k := float64(pInts[i])
		if _, seen := groups[k]; !seen {
			order = append(order, k)
			rep[k] = pInts[i]
		}
		groups[k] = append(groups[k], int32(i))
	}
	partOut := make(bat.IntVec, 0, len(order))
	aggOut := make(bat.ItemVec, 0, len(order))
	for _, k := range order {
		it, err := aggregate(agg, argVec, groups[k], sep)
		if err != nil {
			return nil, "", err
		}
		partOut = append(partOut, rep[k])
		aggOut = append(aggOut, it)
	}
	out, err := bat.NewTable(part, partOut, newCol, aggOut)
	return out, ":int", err
}

// physAggrMorsel is physAggr with morsel-parallel grouping for the int
// partitioned path: each morsel groups its own row range (group lists in
// input order, group discovery in first-occurrence order), the partial
// groupings merge in morsel order — so the merged group lists and the
// global first-occurrence order are exactly the sequential scan's — and
// the per-group aggregation then fans out across group ranges, each
// group writing its own output slot. Scalar aggregates and non-int
// partitions keep the sequential physAggr (the lowering never marks a
// scalar aggregate Parallel: it is a single fold whose float summation
// order must not change).
func physAggrMorsel(ms *morsels, t *bat.Table, newCol string, agg algebra.AggKind, args []string, part, sep string) (*bat.Table, string, error) {
	ranges := ms.split(t.Rows())
	if part == "" || len(ranges) == 1 {
		return physAggr(t, newCol, agg, args, part, sep)
	}
	pv, err := t.Col(part)
	if err != nil {
		return nil, "", err
	}
	pInts, ok := pv.(bat.IntVec)
	if !ok {
		return physAggr(t, newCol, agg, args, part, sep)
	}
	var argVec bat.Vec
	if len(args) > 0 {
		if argVec, err = t.Col(args[0]); err != nil {
			return nil, "", err
		}
	}
	type grouping struct {
		groups map[float64][]int32
		order  []float64
		rep    map[float64]int64
	}
	parts := make([]grouping, len(ranges))
	if err := ms.run(len(ranges), func(m int) error {
		r := ranges[m]
		g := grouping{groups: make(map[float64][]int32), rep: make(map[float64]int64)}
		for i := r.Lo; i < r.Hi; i++ {
			k := float64(pInts[i])
			if _, seen := g.groups[k]; !seen {
				g.order = append(g.order, k)
				g.rep[k] = pInts[i]
			}
			g.groups[k] = append(g.groups[k], int32(i))
		}
		parts[m] = g
		return nil
	}); err != nil {
		return nil, "", err
	}
	groups, order, rep := parts[0].groups, parts[0].order, parts[0].rep
	for _, p := range parts[1:] {
		for _, k := range p.order {
			if _, seen := groups[k]; !seen {
				order = append(order, k)
				rep[k] = p.rep[k]
			}
			groups[k] = append(groups[k], p.groups[k]...)
		}
	}
	partOut := make(bat.IntVec, len(order))
	aggOut := make(bat.ItemVec, len(order))
	gRanges := ms.split(len(order))
	if err := ms.run(len(gRanges), func(m int) error {
		for gi := gRanges[m].Lo; gi < gRanges[m].Hi; gi++ {
			k := order[gi]
			it, err := aggregate(agg, argVec, groups[k], sep)
			if err != nil {
				return err
			}
			partOut[gi] = rep[k]
			aggOut[gi] = it
		}
		return nil
	}); err != nil {
		return nil, "", err
	}
	out, err := bat.NewTable(part, partOut, newCol, aggOut)
	return out, ":int", err
}

// physRowNumAttach is rowNumAttach with a typed partition-change test.
func physRowNumAttach(out *bat.Table, newCol, part string) error {
	nums := make(bat.IntVec, out.Rows())
	var n int64
	if part == "" {
		for i := range nums {
			nums[i] = int64(i) + 1
		}
		return out.AddCol(newCol, nums)
	}
	cmp := totalCmp(out.MustCol(part))
	for i := range nums {
		if i == 0 || cmp(i, i-1) != 0 {
			n = 0
		}
		n++
		nums[i] = n
	}
	return out.AddCol(newCol, nums)
}
