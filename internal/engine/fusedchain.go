package engine

import (
	"context"
	"fmt"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/physical"
)

// Fused-chain execution (the X100 loop over our selection-vector
// kernels). A physical.FusedChain is a maximal run of pure per-row
// operators — σ, π, ⊛, mark, const-1 ϱ — that the per-operator executor
// would run one kernel at a time, exchanging a bat.View per link and
// paying a full-column gather whenever the previous link narrowed the
// selection. Here the whole chain compiles into a small program
// (compileChain) that a single loop executes over fixed-size batches of
// fusedBatchRows rows: one selection vector of lane indices is carried
// from the chain's input to its boundary, filters narrow it branch-free,
// maps compute only the surviving lanes into per-slot buffers, and the
// result materializes (at most) once when the chain's output crosses to
// the first non-member consumer.
//
// Fidelity contract: the fused loop must be byte-identical to the
// per-operator path, including error text and error order. Any condition
// the lane kernels cannot reproduce exactly — a polymorphic combination
// with no lane kernel, a runtime error whose diagnostic embeds a row
// number, a NaN comparison, a division by zero — abandons the fused run
// and replays the chain per operator from the retained input view
// (replayChain); every member is pure, so the replay observes the
// identical input and reproduces the per-operator behavior exactly.

// fusedBatchRows is the batch size of the fused loop: small enough that
// a batch's lane buffers stay cache-resident, large enough to amortize
// the per-batch step dispatch.
const fusedBatchRows = 1024

// fusedSrc names where a column's values live during the fused loop:
// a base vector of the chain's input (vec != nil), or a per-batch lane
// buffer written by an earlier step (vec == nil, slot buf).
type fusedSrc struct {
	vec bat.Vec
	buf int
}

type fusedStepKind uint8

const (
	stepProject fusedStepKind = iota // compile-time renaming only
	stepFilter
	stepMap
	stepConst1 // ϱ on the dense fast path: the constant 1
	stepMark   // ϱ́: chain-input position + 1
)

// fusedMapKind selects the monomorphic lane kernel of a ⊛ step. The
// dispatch happens once at compile time; the generic kinds fall back to
// the boxed applyFunItems per lane but still write into a typed output
// buffer matching the unfused kernel's result vector type.
type fusedMapKind uint8

const (
	mapNone fusedMapKind = iota
	mapCmpII
	mapCmpIF
	mapCmpFI
	mapCmpFF
	mapCmpSS
	mapAndBB
	mapOrBB
	mapNotB
	mapBoolWrapB
	mapEbvB
	mapEbvN
	mapEbvI
	mapEbvF
	mapEbvS
	mapArithII
	mapCopyI
	mapCopyF
	mapCopyS
	mapCopyB
	mapGenericBool
	mapGenericStr
	mapGenericItem
)

type fusedStep struct {
	nd   *physical.Node
	kind fusedStepKind
	mk   fusedMapKind
	args []fusedSrc
	out  int // lane-buffer slot this step writes; -1 for filter/project
}

type fusedOutCol struct {
	name string
	src  fusedSrc
}

// fusedProg is one chain compiled against one concrete input view.
type fusedProg struct {
	ch       *physical.FusedChain
	steps    []fusedStep
	bufTypes []bat.ColType
	outCols  []fusedOutCol
	// slotCol maps a lane-buffer slot to the output column it becomes
	// (-1: scratch only). In windowed mode that slot's per-batch buffer
	// is a window straight into the output accumulator.
	slotCol   []int
	hasFilter bool
	// viewMode: the chain input is an identity view, so the boundary can
	// stay a view — shared base vectors plus full-length computed
	// columns, with the chain's filters living on as the output
	// selection vector. Nothing materializes.
	viewMode bool
}

// windowed reports whether map steps write output columns in place
// (directly into the morsel's accumulators): always in view mode, and
// in gather mode when no filter compacts lanes away.
func (p *fusedProg) windowed() bool { return p.viewMode || !p.hasFilter }

// compileChain builds the fused program for one chain over one input
// view, or returns nil when some member needs the per-operator path
// (unknown column, duplicate output column, a vector type outside the
// lane kernels' reach). The caller then replays the chain unfused,
// which reproduces the per-operator behavior — including its errors.
func (e *Engine) compileChain(ch *physical.FusedChain, in *bat.View) *fusedProg {
	base := in.Base()
	env := make(map[string]fusedSrc, len(base.Cols()))
	for _, name := range base.Cols() {
		v := base.MustCol(name)
		switch v.(type) {
		case bat.IntVec, bat.FloatVec, bat.StrVec, bat.BoolVec, bat.NodeVec, bat.ItemVec:
		default:
			return nil // a vector impl the lane readers cannot slice
		}
		env[name] = fusedSrc{vec: v}
	}
	prog := &fusedProg{ch: ch, viewMode: in.Sel() == nil}
	addBuf := func(t bat.ColType) int {
		prog.bufTypes = append(prog.bufTypes, t)
		return len(prog.bufTypes) - 1
	}
	srcType := func(s fusedSrc) bat.ColType {
		if s.vec != nil {
			return s.vec.Type()
		}
		return prog.bufTypes[s.buf]
	}
	for _, nd := range ch.Nodes {
		o := nd.Op
		st := fusedStep{nd: nd, out: -1}
		switch o.Kind {
		case algebra.OpProject:
			next := make(map[string]fusedSrc, len(o.Proj))
			for _, pr := range o.Proj {
				src, ok := env[pr.Old]
				if !ok {
					return nil
				}
				if _, dup := next[pr.New]; dup {
					return nil
				}
				next[pr.New] = src
			}
			env = next
			st.kind = stepProject
		case algebra.OpSelect:
			src, ok := env[o.Col]
			if !ok {
				return nil
			}
			st.kind, st.args = stepFilter, []fusedSrc{src}
			prog.hasFilter = true
		case algebra.OpRowNum: // const-1 fast path only (see physical.fusable)
			if _, dup := env[o.Col]; dup {
				return nil
			}
			st.kind = stepConst1
			st.out = addBuf(bat.TInt)
			env[o.Col] = fusedSrc{buf: st.out}
		case algebra.OpRowID:
			if _, dup := env[o.Col]; dup {
				return nil
			}
			st.kind = stepMark
			st.out = addBuf(bat.TInt)
			env[o.Col] = fusedSrc{buf: st.out}
		case algebra.OpFun:
			if _, dup := env[o.Col]; dup {
				return nil
			}
			args := make([]fusedSrc, len(o.Args))
			at := make([]bat.ColType, len(o.Args))
			for i, name := range o.Args {
				src, ok := env[name]
				if !ok {
					return nil
				}
				args[i] = src
				at[i] = srcType(src)
			}
			mk, outT := pickMapKernel(o, at)
			st.kind, st.mk, st.args = stepMap, mk, args
			st.out = addBuf(outT)
			env[o.Col] = fusedSrc{buf: st.out}
		default:
			return nil
		}
		prog.steps = append(prog.steps, st)
	}
	schema := ch.Tail().Op.Schema()
	prog.outCols = make([]fusedOutCol, len(schema))
	prog.slotCol = make([]int, len(prog.bufTypes))
	for i := range prog.slotCol {
		prog.slotCol[i] = -1
	}
	for i, name := range schema {
		src, ok := env[name]
		if !ok {
			return nil
		}
		prog.outCols[i] = fusedOutCol{name: name, src: src}
		if src.vec == nil {
			if prog.slotCol[src.buf] != -1 {
				return nil // one computed slot feeding two output columns
			}
			prog.slotCol[src.buf] = i
		}
	}
	return prog
}

// pickMapKernel chooses the lane kernel for a ⊛ step from the argument
// column types. The output column type must mirror the unfused
// funKernel/evalFun result vector exactly — downstream kernels (and the
// next fused chain) dispatch on it.
func pickMapKernel(o *algebra.Op, at []bat.ColType) (fusedMapKind, bat.ColType) {
	two := len(at) == 2
	switch o.Fun {
	case algebra.FunEq, algebra.FunNe, algebra.FunLt, algebra.FunLe,
		algebra.FunGt, algebra.FunGe:
		if two {
			switch {
			case at[0] == bat.TInt && at[1] == bat.TInt:
				return mapCmpII, bat.TBool
			case at[0] == bat.TInt && at[1] == bat.TFloat:
				return mapCmpIF, bat.TBool
			case at[0] == bat.TFloat && at[1] == bat.TInt:
				return mapCmpFI, bat.TBool
			case at[0] == bat.TFloat && at[1] == bat.TFloat:
				return mapCmpFF, bat.TBool
			case at[0] == bat.TStr && at[1] == bat.TStr:
				return mapCmpSS, bat.TBool
			}
		}
		return mapGenericBool, bat.TBool
	case algebra.FunAnd:
		if two && at[0] == bat.TBool && at[1] == bat.TBool {
			return mapAndBB, bat.TBool
		}
		return mapGenericBool, bat.TBool
	case algebra.FunOr:
		if two && at[0] == bat.TBool && at[1] == bat.TBool {
			return mapOrBB, bat.TBool
		}
		return mapGenericBool, bat.TBool
	case algebra.FunNot:
		if at[0] == bat.TBool {
			return mapNotB, bat.TBool
		}
		return mapGenericBool, bat.TBool
	case algebra.FunBoolWrap:
		if at[0] == bat.TBool {
			return mapBoolWrapB, bat.TBool
		}
		return mapGenericBool, bat.TBool
	case algebra.FunEbvItem:
		switch at[0] {
		case bat.TBool:
			return mapEbvB, bat.TBool
		case bat.TNode:
			return mapEbvN, bat.TBool
		case bat.TInt:
			return mapEbvI, bat.TBool
		case bat.TFloat:
			return mapEbvF, bat.TBool
		case bat.TStr:
			return mapEbvS, bat.TBool
		}
		return mapGenericBool, bat.TBool
	case algebra.FunContains, algebra.FunStartsWith, algebra.FunDocBefore,
		algebra.FunNodeIs, algebra.FunTypeIs:
		return mapGenericBool, bat.TBool
	case algebra.FunAdd, algebra.FunSub, algebra.FunMul, algebra.FunIDiv,
		algebra.FunMod:
		if two && at[0] == bat.TInt && at[1] == bat.TInt {
			return mapArithII, bat.TInt
		}
		return mapGenericItem, bat.TItem
	case algebra.FunDiv:
		if two && at[0] == bat.TInt && at[1] == bat.TInt {
			return mapArithII, bat.TFloat // xs:integer div is a double
		}
		return mapGenericItem, bat.TItem
	case algebra.FunString:
		if at[0] == bat.TStr {
			return mapCopyS, bat.TStr
		}
		return mapGenericStr, bat.TStr
	case algebra.FunConcat, algebra.FunSubstring, algebra.FunSubstring3,
		algebra.FunNameOf:
		return mapGenericStr, bat.TStr
	case algebra.FunAtomize:
		switch at[0] {
		case bat.TInt:
			return mapCopyI, bat.TInt
		case bat.TFloat:
			return mapCopyF, bat.TFloat
		case bat.TStr:
			return mapCopyS, bat.TStr
		case bat.TBool:
			return mapCopyB, bat.TBool
		}
		return mapGenericItem, bat.TItem
	}
	// FunNeg, FunStringLength, FunNumber, ...: the unfused path is the
	// boxed evalFun default class (ItemVec).
	return mapGenericItem, bat.TItem
}

// typedCol is a typed column accumulator/buffer: exactly one slice is
// non-nil, matching typ. Accumulators allocate their full capacity up
// front with length 0 (the backing array is zeroed once) and grow by
// slicing, so window-mode dead lanes read as zero values without any
// per-batch clearing.
type typedCol struct {
	typ bat.ColType
	i   []int64
	f   []float64
	s   []string
	b   []bool
	nd  []bat.NodeRef
	it  []bat.Item
}

func newTypedCol(t bat.ColType, capacity int) *typedCol {
	c := &typedCol{typ: t}
	switch t {
	case bat.TInt:
		c.i = make([]int64, 0, capacity)
	case bat.TFloat:
		c.f = make([]float64, 0, capacity)
	case bat.TStr:
		c.s = make([]string, 0, capacity)
	case bat.TBool:
		c.b = make([]bool, 0, capacity)
	case bat.TNode:
		c.nd = make([]bat.NodeRef, 0, capacity)
	default:
		c.it = make([]bat.Item, 0, capacity)
	}
	return c
}

// scratchCol is a fixed-length batch buffer.
func scratchCol(t bat.ColType, n int) typedCol {
	c := typedCol{typ: t}
	switch t {
	case bat.TInt:
		c.i = make([]int64, n)
	case bat.TFloat:
		c.f = make([]float64, n)
	case bat.TStr:
		c.s = make([]string, n)
	case bat.TBool:
		c.b = make([]bool, n)
	case bat.TNode:
		c.nd = make([]bat.NodeRef, n)
	default:
		c.it = make([]bat.Item, n)
	}
	return c
}

// grow extends the accumulator by n rows (within its preallocated
// capacity) and returns the window over the new rows.
func (c *typedCol) grow(n int) typedCol {
	w := typedCol{typ: c.typ}
	switch c.typ {
	case bat.TInt:
		off := len(c.i)
		c.i = c.i[:off+n]
		w.i = c.i[off : off+n]
	case bat.TFloat:
		off := len(c.f)
		c.f = c.f[:off+n]
		w.f = c.f[off : off+n]
	case bat.TStr:
		off := len(c.s)
		c.s = c.s[:off+n]
		w.s = c.s[off : off+n]
	case bat.TBool:
		off := len(c.b)
		c.b = c.b[:off+n]
		w.b = c.b[off : off+n]
	case bat.TNode:
		off := len(c.nd)
		c.nd = c.nd[:off+n]
		w.nd = c.nd[off : off+n]
	default:
		off := len(c.it)
		c.it = c.it[:off+n]
		w.it = c.it[off : off+n]
	}
	return w
}

// compactInto appends buf's surviving lanes (sel) to the accumulator.
func compactInto(acc *typedCol, buf typedCol, sel []int32) {
	w := acc.grow(len(sel))
	switch acc.typ {
	case bat.TInt:
		for j, lane := range sel {
			w.i[j] = buf.i[lane]
		}
	case bat.TFloat:
		for j, lane := range sel {
			w.f[j] = buf.f[lane]
		}
	case bat.TStr:
		for j, lane := range sel {
			w.s[j] = buf.s[lane]
		}
	case bat.TBool:
		for j, lane := range sel {
			w.b[j] = buf.b[lane]
		}
	case bat.TNode:
		for j, lane := range sel {
			w.nd[j] = buf.nd[lane]
		}
	default:
		for j, lane := range sel {
			w.it[j] = buf.it[lane]
		}
	}
}

// vec converts an accumulator into the bat vector type downstream
// kernels dispatch on.
func (c *typedCol) vec() bat.Vec {
	switch c.typ {
	case bat.TInt:
		return bat.IntVec(c.i)
	case bat.TFloat:
		return bat.FloatVec(c.f)
	case bat.TStr:
		return bat.StrVec(c.s)
	case bat.TBool:
		return bat.BoolVec(c.b)
	case bat.TNode:
		return bat.NodeVec(c.nd)
	default:
		return bat.ItemVec(c.it)
	}
}

func (c *typedCol) rows() int {
	switch c.typ {
	case bat.TInt:
		return len(c.i)
	case bat.TFloat:
		return len(c.f)
	case bat.TStr:
		return len(c.s)
	case bat.TBool:
		return len(c.b)
	case bat.TNode:
		return len(c.nd)
	default:
		return len(c.it)
	}
}

// concatAccs stitches one output column's per-morsel accumulators in
// morsel order.
func concatAccs(parts []*fusedPart, ci int) bat.Vec {
	if len(parts) == 1 {
		return parts[0].accs[ci].vec()
	}
	total := 0
	for _, p := range parts {
		total += p.accs[ci].rows()
	}
	out := newTypedCol(parts[0].accs[ci].typ, total)
	for _, p := range parts {
		a := p.accs[ci]
		w := out.grow(a.rows())
		switch out.typ {
		case bat.TInt:
			copy(w.i, a.i)
		case bat.TFloat:
			copy(w.f, a.f)
		case bat.TStr:
			copy(w.s, a.s)
		case bat.TBool:
			copy(w.b, a.b)
		case bat.TNode:
			copy(w.nd, a.nd)
		default:
			copy(w.it, a.it)
		}
	}
	return out.vec()
}

// fusedRun is one chain execution over one input view.
type fusedRun struct {
	e    *Engine
	prog *fusedProg
	vsel []int32 // the input view's selection vector (nil: identity)
}

// fusedPart is one morsel's output: surviving base-row indices, the
// per-output-column accumulators, and per-step survivor counts.
type fusedPart struct {
	idx     []int32
	accs    []*typedCol
	stepOut []int64
}

// morsel runs the fused loop over one input-row range.
func (r *fusedRun) morsel(ctx context.Context, rg bat.Range) (*fusedPart, error) {
	prog := r.prog
	n := rg.Len()
	part := &fusedPart{
		stepOut: make([]int64, len(prog.steps)),
		accs:    make([]*typedCol, len(prog.outCols)),
	}
	for ci, oc := range prog.outCols {
		if oc.src.vec == nil {
			part.accs[ci] = newTypedCol(prog.bufTypes[oc.src.buf], n)
		}
	}
	if prog.hasFilter {
		part.idx = make([]int32, 0, n)
	}
	windowed := prog.windowed()
	batch := fusedBatchRows
	if n < batch {
		batch = n
	}
	bufs := make([]typedCol, len(prog.bufTypes))
	for si, t := range prog.bufTypes {
		if windowed && prog.slotCol[si] >= 0 {
			continue // per-batch window into the accumulator
		}
		bufs[si] = scratchCol(t, batch)
	}
	bidxArr := make([]int32, batch)
	selArr := make([]int32, batch)
	idn := make([]int32, batch)
	fusedRamp(idn, 0)
	for lo := rg.Lo; lo < rg.Hi; lo += fusedBatchRows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + fusedBatchRows
		if hi > rg.Hi {
			hi = rg.Hi
		}
		bn := hi - lo
		bidx := bidxArr[:bn]
		if r.vsel == nil {
			fusedRamp(bidx, int32(lo))
		} else {
			copy(bidx, r.vsel[lo:hi])
		}
		sel := selArr[:bn]
		fusedRamp(sel, 0)
		k := bn
		if windowed {
			for si := range prog.bufTypes {
				if ci := prog.slotCol[si]; ci >= 0 {
					bufs[si] = part.accs[ci].grow(bn)
				}
			}
		}
		for si := range prog.steps {
			st := &prog.steps[si]
			switch st.kind {
			case stepProject:
				// renaming happened at compile time
			case stepFilter:
				rd := r.reader(st.args[0], bufs, bidx, idn)
				var err error
				k, err = fusedFilter(&rd, sel[:k])
				if err != nil {
					return nil, err
				}
			case stepConst1:
				fusedConst1(bufs[st.out].i, sel[:k])
			case stepMark:
				fusedMark(bufs[st.out].i, sel[:k], int64(lo)+1)
			case stepMap:
				if err := r.runMap(st, bufs, bidx, idn, sel[:k]); err != nil {
					return nil, err
				}
			}
			part.stepOut[si] += int64(k)
		}
		if prog.hasFilter {
			w := part.idx[len(part.idx) : len(part.idx)+k]
			part.idx = part.idx[:len(part.idx)+k]
			for j := 0; j < k; j++ {
				w[j] = bidx[sel[j]]
			}
			if !windowed {
				for ci, oc := range prog.outCols {
					if part.accs[ci] != nil {
						compactInto(part.accs[ci], bufs[oc.src.buf], sel[:k])
					}
				}
			}
		}
	}
	return part, nil
}

// reader builds the lane reader for one source: base vectors index
// through the batch's base-row array, lane buffers through the identity.
func (r *fusedRun) reader(src fusedSrc, bufs []typedCol, bidx, idn []int32) laneRdr {
	if src.vec == nil {
		c := &bufs[src.buf]
		return laneRdr{typ: c.typ, ix: idn, i: c.i, f: c.f, s: c.s, b: c.b, nd: c.nd, it: c.it}
	}
	rd := laneRdr{typ: src.vec.Type(), ix: bidx}
	switch v := src.vec.(type) {
	case bat.IntVec:
		rd.i = v
	case bat.FloatVec:
		rd.f = v
	case bat.StrVec:
		rd.s = v
	case bat.BoolVec:
		rd.b = v
	case bat.NodeVec:
		rd.nd = v
	case bat.ItemVec:
		rd.it = v
	}
	return rd
}

// runMap executes one ⊛ step over the surviving lanes.
func (r *fusedRun) runMap(st *fusedStep, bufs []typedCol, bidx, idn, sel []int32) error {
	a := r.reader(st.args[0], bufs, bidx, idn)
	var b, c *laneRdr
	if len(st.args) > 1 {
		rb := r.reader(st.args[1], bufs, bidx, idn)
		b = &rb
	}
	if len(st.args) > 2 {
		rc := r.reader(st.args[2], bufs, bidx, idn)
		c = &rc
	}
	out := &bufs[st.out]
	switch st.mk {
	case mapCmpII:
		fusedCmpII(st.nd.Op.Fun, a.i, a.ix, b.i, b.ix, sel, out.b)
		return nil
	case mapCmpIF:
		return fusedCmpIF(st.nd.Op.Fun, a.i, a.ix, b.f, b.ix, sel, out.b)
	case mapCmpFI:
		return fusedCmpFI(st.nd.Op.Fun, a.f, a.ix, b.i, b.ix, sel, out.b)
	case mapCmpFF:
		return fusedCmpFF(st.nd.Op.Fun, a.f, a.ix, b.f, b.ix, sel, out.b)
	case mapCmpSS:
		fusedCmpSS(st.nd.Op.Fun, a.s, a.ix, b.s, b.ix, sel, out.b)
		return nil
	case mapAndBB:
		fusedAnd(a.b, a.ix, b.b, b.ix, sel, out.b)
		return nil
	case mapOrBB:
		fusedOr(a.b, a.ix, b.b, b.ix, sel, out.b)
		return nil
	case mapNotB:
		fusedNot(a.b, a.ix, sel, out.b)
		return nil
	case mapBoolWrapB, mapEbvB:
		fusedCopyBool(a.b, a.ix, sel, out.b)
		return nil
	case mapEbvN:
		fusedTrue(sel, out.b)
		return nil
	case mapEbvI:
		fusedEbvInt(a.i, a.ix, sel, out.b)
		return nil
	case mapEbvF:
		fusedEbvFloat(a.f, a.ix, sel, out.b)
		return nil
	case mapEbvS:
		fusedEbvStr(a.s, a.ix, sel, out.b)
		return nil
	case mapArithII:
		return fusedArithII(st.nd.Op.Fun, a.i, a.ix, b.i, b.ix, sel, out)
	case mapCopyI:
		fusedCopyInt(a.i, a.ix, sel, out.i)
		return nil
	case mapCopyF:
		fusedCopyFloat(a.f, a.ix, sel, out.f)
		return nil
	case mapCopyS:
		fusedCopyStr(a.s, a.ix, sel, out.s)
		return nil
	case mapCopyB:
		fusedCopyBool(a.b, a.ix, sel, out.b)
		return nil
	case mapGenericBool:
		return r.e.fusedGenericBool(st.nd.Op, &a, b, c, sel, out.b)
	case mapGenericStr:
		return r.e.fusedGenericStr(st.nd.Op, &a, b, c, sel, out.s)
	default: // mapGenericItem
		return r.e.fusedGenericItem(st.nd.Op, &a, b, c, sel, out.it)
	}
}

// assemble stitches the per-morsel parts into the chain's boundary view
// and reports how many rows materialized.
func (r *fusedRun) assemble(parts []*fusedPart) (*bat.View, int, error) {
	prog := r.prog
	var outIdx []int32
	if prog.hasFilter {
		if len(parts) == 1 {
			outIdx = parts[0].idx
		} else {
			total := 0
			for _, p := range parts {
				total += len(p.idx)
			}
			outIdx = make([]int32, 0, total)
			for _, p := range parts {
				outIdx = append(outIdx, p.idx...)
			}
		}
	} else if !prog.viewMode {
		outIdx = r.vsel
	}
	hasComputed := false
	for _, oc := range prog.outCols {
		if oc.src.vec == nil {
			hasComputed = true
			break
		}
	}
	out := &bat.Table{}
	if prog.viewMode {
		// Boundary stays a view: shared base vectors plus full-length
		// computed columns; survivors live in the selection vector. Dead
		// lanes of computed columns hold zero values — unobservable,
		// since every consumer reads through the view's selection.
		for ci, oc := range prog.outCols {
			vec := oc.src.vec
			if vec == nil {
				vec = concatAccs(parts, ci)
			}
			if err := out.AddCol(oc.name, vec); err != nil {
				return nil, 0, err
			}
		}
		if prog.hasFilter {
			return bat.NewView(out, outIdx), 0, nil
		}
		return bat.ViewOf(out), 0, nil
	}
	if !hasComputed {
		// Pure selection/projection over an already-selected input: the
		// output narrows the shared columns, still zero-copy.
		for _, oc := range prog.outCols {
			if err := out.AddCol(oc.name, oc.src.vec); err != nil {
				return nil, 0, err
			}
		}
		return bat.NewView(out, outIdx), 0, nil
	}
	// Gather mode: the input already had a selection vector and the
	// chain computes columns — the single materialization at the chain
	// boundary.
	for ci, oc := range prog.outCols {
		var vec bat.Vec
		if oc.src.vec != nil {
			vec = oc.src.vec.Gather(outIdx)
		} else {
			vec = concatAccs(parts, ci)
		}
		if err := out.AddCol(oc.name, vec); err != nil {
			return nil, 0, err
		}
	}
	return bat.ViewOf(out), out.Rows(), nil
}

// execChain runs one fused chain as a single loop over its input view.
// Errors return pre-wrapped with the failing member's operator kind —
// callers must not wrap them again.
//
//pfvet:allow ctxpoll -- the row loops live in morsel(), which polls per batch; the nested loops here only sum per-step stats
func (e *Engine) execChain(ctx context.Context, ch *physical.FusedChain, in *bat.View, tr *Trace, worker int) (*bat.View, error) {
	if e.onApply != nil {
		for _, nd := range ch.Nodes {
			e.onApply(nd.Op)
		}
	}
	e.sh.working.Add(1)
	defer e.sh.working.Add(-1)
	// Runtime tiny-input gate: discovery only skips chains whose row
	// estimate is known to be small, so a chain formed under an unknown
	// estimate can still meet a tiny input here. When the whole input
	// fits in a single batch the fused loop amortizes nothing, and its
	// setup (program compilation, morsel split, part assembly) costs
	// more than it saves — run the members through the ordinary
	// kernels instead.
	if in.Rows() < fusedBatchRows {
		return e.replayChain(ctx, ch, in, tr, worker)
	}
	start := time.Now() //pfvet:allow determinism -- trace wall-time only, not query results
	prog := e.compileChain(ch, in)
	if prog == nil {
		return e.replayChain(ctx, ch, in, tr, worker)
	}
	run := &fusedRun{e: e, prog: prog, vsel: in.Sel()}
	ms := &morsels{e: e, ctx: ctx, par: ch.Parallel()}
	ranges := ms.split(in.Rows())
	parts := make([]*fusedPart, len(ranges))
	runErr := ms.run(len(ranges), func(m int) error {
		p, err := run.morsel(ctx, ranges[m])
		if err != nil {
			return err
		}
		parts[m] = p
		return nil
	})
	var view *bat.View
	var mat int
	if runErr == nil {
		view, mat, runErr = run.assemble(parts)
	}
	if runErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// A lane kernel hit a condition whose diagnostic (text, row
		// number, error order) belongs to the per-operator path — a
		// non-boolean filter input, a NaN comparison, a division by
		// zero. Replay the chain unfused from the retained input view:
		// every member is pure, so the replay reproduces the
		// per-operator behavior exactly.
		return e.replayChain(ctx, ch, in, tr, worker)
	}
	tail := ch.Tail()
	if e.Check {
		if err := checkNodeOutput(tail, view); err != nil {
			return nil, fmt.Errorf("%s: %w", tail.Op.Kind, err)
		}
	}
	if tr != nil {
		wall := time.Since(start) //pfvet:allow determinism -- trace wall-time only, not query results
		stepOut := make([]int64, len(prog.steps))
		for _, p := range parts {
			for i, c := range p.stepOut {
				stepOut[i] += c
			}
		}
		prev := in.Rows()
		for i, nd := range ch.Nodes {
			st := OpStat{
				RowsIn: prev, RowsOut: int(stepOut[i]), Worker: worker,
				Kernel:     nd.Kernel,
				FusedChain: ch.ID, FusedPos: i + 1, FusedLen: len(ch.Nodes),
			}
			if i == len(ch.Nodes)-1 {
				st.Wall = wall
				st.RowsMat = mat
				if ms.n > 1 {
					st.Morsels = ms.n
					st.ParWorkers = ms.workers
					if st.ParWorkers == 0 {
						st.ParWorkers = 1
					}
				}
			}
			tr.recordStat(nd.Op, st)
			prev = int(stepOut[i])
		}
	}
	return view, nil
}

// replayChain executes a chain member by member through the ordinary
// kernels — the fallback when compileChain bails or a lane kernel needs
// the per-operator diagnostics. Members record ordinary (unfused) stats.
func (e *Engine) replayChain(ctx context.Context, ch *physical.FusedChain, in *bat.View, tr *Trace, worker int) (*bat.View, error) {
	cur := in
	for _, nd := range ch.Nodes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now() //pfvet:allow determinism -- trace wall-time only, not query results
		ms := &morsels{e: e, ctx: ctx, par: nd.Parallel}
		out, err := e.execKernel(ctx, nd, []*bat.View{cur}, ms)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nd.Op.Kind, err)
		}
		if e.Check {
			if err := checkNodeOutput(nd, out.view); err != nil {
				return nil, fmt.Errorf("%s: %w", nd.Op.Kind, err)
			}
		}
		if tr != nil {
			st := OpStat{
				//pfvet:allow determinism -- trace wall-time only, not query results
				Wall: time.Since(start), RowsIn: cur.Rows(),
				RowsOut: out.view.Rows(), Worker: worker,
				Kernel: out.kernel, RowsMat: out.mat,
			}
			if ms.n > 1 {
				st.Morsels = ms.n
				st.ParWorkers = ms.workers
				if st.ParWorkers == 0 {
					st.ParWorkers = 1
				}
			}
			tr.recordStat(nd.Op, st)
		}
		cur = out.view
	}
	return cur, nil
}
