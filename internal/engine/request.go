package engine

// QueryRequest names a query and the data it runs against — the single
// request shape threaded through the service and MIL layers in place of
// the historical ad-hoc (query, contextDoc) pairs.
//
// Collection selects a named catalog collection; absolute paths and
// fn:collection() bind to it, and the evaluation runs on an engine view
// over that collection's store. ContextDoc is the older single-document
// binding (absolute paths resolve to fn:doc(ContextDoc)); it still works
// for anonymous stores and is ignored when Collection is set.
type QueryRequest struct {
	Query      string // XQuery source text
	Collection string // named collection; "" = the engine's default binding
	ContextDoc string // deprecated: implicit document URI for absolute paths
}

// PlanKey identifies a prepared plan: the (normalized) query text plus
// the identity of the data it was compiled against. Collection identity
// includes the store generation, so republishing a collection changes the
// key and cached plans for the old content miss naturally — callers evict
// stale entries with ForgetPlan. The zero Generation is the anonymous
// (non-catalog) store.
type PlanKey struct {
	Query      string
	Collection string
	Generation uint64
	ContextDoc string
}

// Key derives the prepared-plan cache key for this request against the
// given collection generation. normalized is the whitespace-normalized
// query text (callers normalize so textual variants share one entry).
func (r QueryRequest) Key(normalized string, generation uint64) PlanKey {
	k := PlanKey{Query: normalized, Collection: r.Collection, Generation: generation}
	if r.Collection == "" {
		k.ContextDoc = r.ContextDoc
	}
	return k
}
