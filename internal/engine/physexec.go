package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/physical"
)

// This file executes physical plans (internal/physical). Operators
// exchange bat.View values — a base table plus a selection vector —
// instead of materialized tables: pipeline kernels (filter, project,
// semijoin, antijoin) narrow the selection or the column set without
// copying row data, extension kernels (map, mark, doc, roots) append a
// column to shared base vectors, and only the breakers (join outputs,
// distinct, rownum, concat, and the consumers that need contiguous
// tables: aggr, staircase, constructors, range) gather rows. The plan
// root materializes once at the end.
//
// The kernels are chosen statically by the lowering pass; the executor
// refines the choice at runtime where the static analysis cannot see the
// physical column type (typed int vs. generic item hash paths) and
// reports the kernel actually run through the evaluation trace.

// physOut is one kernel's result: the output view, the kernel that
// actually ran, how many rows it had to materialize (gathered or
// copied — scanned-in-place rows are not counted), and the morsel team
// that ran it (zero when the kernel took its sequential path).
type physOut struct {
	view    *bat.View
	kernel  string
	mat     int
	morsels int // input morsels the kernel split into (0 = unsplit)
	workers int // largest morsel team size (0 = never ran parallel)
}

// execUnit is one schedulable unit of a physical plan: a single node,
// or a whole fused chain (nd is then the chain's tail, whose output is
// the unit's). Chain interiors are not units — their results exist only
// as lanes inside the fused loop.
type execUnit struct {
	nd    *physical.Node
	chain *physical.FusedChain
}

func (u execUnit) inputs() []*physical.Node {
	if u.chain != nil {
		return u.chain.Head().In
	}
	return u.nd.In
}

// planUnits folds the plan's fused chains into execution units. With
// fusion disabled (or no chains discovered) every node is its own unit
// through the identical code path — the tiny-input fast path pays no
// fusion setup cost whatsoever.
func (e *Engine) planUnits(plan *physical.Plan) []execUnit {
	if e.NoFusion || len(plan.Chains) == 0 {
		units := make([]execUnit, len(plan.Nodes))
		for i, nd := range plan.Nodes {
			units[i] = execUnit{nd: nd}
		}
		return units
	}
	interior := make(map[*physical.Node]bool)
	tailOf := make(map[*physical.Node]*physical.FusedChain)
	for _, ch := range plan.Chains {
		for _, nd := range ch.Nodes[:len(ch.Nodes)-1] {
			interior[nd] = true
		}
		tailOf[ch.Tail()] = ch
	}
	units := make([]execUnit, 0, len(plan.Nodes))
	for _, nd := range plan.Nodes {
		if interior[nd] {
			continue
		}
		units = append(units, execUnit{nd: nd, chain: tailOf[nd]})
	}
	return units
}

// physSequential executes the plan units in topological order on the
// calling goroutine — the fallback for small plans and single-worker
// engines.
func (e *Engine) physSequential(ctx context.Context, plan *physical.Plan, tr *Trace) (*bat.Table, error) {
	units := e.planUnits(plan)
	results := make(map[*physical.Node]*bat.View, len(plan.Nodes))
	var chainIn map[*physical.FusedChain]*bat.View
	if tr != nil {
		chainIn = make(map[*physical.FusedChain]*bat.View)
		defer e.fillTraceTables(tr, plan,
			func(nd *physical.Node) *bat.View { return results[nd] },
			func(ch *physical.FusedChain) *bat.View { return chainIn[ch] })
	}
	for _, u := range units {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if u.chain != nil {
			in := results[u.chain.Input()]
			if chainIn != nil {
				chainIn[u.chain] = in
			}
			// execChain errors arrive pre-wrapped with the failing
			// member's operator kind.
			out, err := e.execChain(ctx, u.chain, in, tr, 0)
			if err != nil {
				return nil, err
			}
			results[u.nd] = out
			continue
		}
		nd := u.nd
		in := make([]*bat.View, len(nd.In))
		for i, c := range nd.In {
			in[i] = results[c]
		}
		start := time.Now() //pfvet:allow determinism -- trace wall-time only, not query results
		out, err := e.execNode(ctx, nd, in)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nd.Op.Kind, err)
		}
		results[nd] = out.view
		if tr != nil {
			tr.recordStat(nd.Op, OpStat{
				//pfvet:allow determinism -- trace wall-time only, not query results
				Wall: time.Since(start), RowsIn: viewRowsIn(in),
				RowsOut: out.view.Rows(), Worker: 0,
				Kernel: out.kernel, RowsMat: out.mat,
				Morsels: out.morsels, ParWorkers: out.workers,
			})
		}
	}
	return results[plan.Root].Materialize(), nil
}

// physParallel runs the physical DAG on the bounded worker pool — the
// same scheduling algorithm as the logical evalParallel (topological
// dependency counts, buffered ready queue, first-error cancellation),
// with views instead of tables in the results slots.
func (e *Engine) physParallel(ctx context.Context, plan *physical.Plan, tr *Trace) (*bat.Table, error) {
	units := e.planUnits(plan)
	n := len(units)
	index := make(map[*physical.Node]int, n)
	for i, u := range units {
		index[u.nd] = i
	}
	type pNode struct {
		u         execUnit
		in        []int
		consumers []int
		pending   atomic.Int32
	}
	nodes := make([]pNode, n)
	for i, u := range units {
		p := &nodes[i]
		p.u = u
		ins := u.inputs()
		p.in = make([]int, len(ins))
		for k, c := range ins {
			ci := index[c]
			p.in[k] = ci
			nodes[ci].consumers = append(nodes[ci].consumers, i)
		}
		p.pending.Store(int32(len(ins)))
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ready := make(chan int, n)
	for i := range nodes {
		if len(nodes[i].in) == 0 {
			ready <- i
		}
	}

	results := make([]*bat.View, n)
	// chainIn retains each chain's input view for the trace replay; each
	// slot has a single writer (the worker that runs the chain's unit).
	chainIn := make([]*bat.View, n)
	if tr != nil {
		defer e.fillTraceTables(tr, plan,
			func(nd *physical.Node) *bat.View {
				i, ok := index[nd]
				if !ok {
					return nil // chain interior: no live view
				}
				return results[i]
			},
			func(ch *physical.FusedChain) *bat.View { return chainIn[index[ch.Tail()]] })
	}
	var (
		completed atomic.Int32
		done      = make(chan struct{})
		errOnce   sync.Once
		evalErr   error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			evalErr = err
			cancel()
		})
	}

	workers := e.workerCount()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case i := <-ready:
					p := &nodes[i]
					in := make([]*bat.View, len(p.in))
					for k, ci := range p.in {
						in[k] = results[ci]
					}
					if p.u.chain != nil {
						chainIn[i] = in[0]
						// execChain errors arrive pre-wrapped with the
						// failing member's operator kind.
						v, err := e.execChain(ctx, p.u.chain, in[0], tr, worker)
						if err != nil {
							fail(err)
							return
						}
						results[i] = v
						for _, ci := range p.consumers {
							if nodes[ci].pending.Add(-1) == 0 {
								ready <- ci
							}
						}
						if int(completed.Add(1)) == n {
							close(done)
						}
						continue
					}
					start := time.Now() //pfvet:allow determinism -- trace wall-time only, not query results
					out, err := e.execNode(ctx, p.u.nd, in)
					if err != nil {
						fail(fmt.Errorf("%s: %w", p.u.nd.Op.Kind, err))
						return
					}
					results[i] = out.view
					if tr != nil {
						tr.recordStat(p.u.nd.Op, OpStat{
							//pfvet:allow determinism -- trace wall-time only, not query results
							Wall: time.Since(start), RowsIn: viewRowsIn(in),
							RowsOut: out.view.Rows(), Worker: worker,
							Kernel: out.kernel, RowsMat: out.mat,
							Morsels: out.morsels, ParWorkers: out.workers,
						})
					}
					for _, ci := range p.consumers {
						if nodes[ci].pending.Add(-1) == 0 {
							ready <- ci
						}
					}
					if int(completed.Add(1)) == n {
						close(done)
					}
				}
			}
		}(w)
	}

	select {
	case <-done:
	case <-ctx.Done():
	}
	cancel()
	wg.Wait()
	if evalErr != nil {
		return nil, evalErr
	}
	if err := ctx.Err(); err != nil && completed.Load() != int32(n) {
		return nil, err
	}
	return results[index[plan.Root]].Materialize(), nil
}

func viewRowsIn(in []*bat.View) int {
	n := 0
	for _, v := range in {
		n += v.Rows()
	}
	return n
}

// fillTraceTables materializes the intermediate result of every completed
// node into the trace — deferred until after execution so trace-mode
// materialization never distorts the per-kernel RowsMat accounting.
//
// Fused-chain interiors have no live views (their rows only ever existed
// as lanes inside the fused loop), so when a chain ran fused the trace
// replays its interior per operator from the retained chain-input view.
// The replay happens after every stat is recorded: the materialization
// it forces is attributed to tracing, never to the chain's RowsMat.
func (e *Engine) fillTraceTables(tr *Trace, plan *physical.Plan,
	viewOf func(*physical.Node) *bat.View,
	chainView func(*physical.FusedChain) *bat.View) {
	for _, nd := range plan.Nodes {
		if v := viewOf(nd); v != nil {
			tr.setTable(nd.Op, v.Materialize())
		}
	}
	if chainView == nil {
		return
	}
	for _, ch := range plan.Chains {
		in := chainView(ch)
		if in == nil {
			continue // chain never ran (error upstream) or fusion was off
		}
		cur := in
		for i, nd := range ch.Nodes {
			if i == len(ch.Nodes)-1 {
				break // the tail's view is live and already captured above
			}
			ms := &morsels{e: e, ctx: context.Background(), par: false}
			out, err := e.execKernel(context.Background(), nd, []*bat.View{cur}, ms)
			if err != nil {
				break // best effort: a failing chain traces what it can
			}
			tr.setTable(nd.Op, out.view.Materialize())
			cur = out.view
		}
	}
}

// matCount materializes a view for a kernel that needs a contiguous
// table, charging the gather to this kernel only if it actually happened
// here (identity views and already-materialized shared views are free).
func matCount(v *bat.View) (*bat.Table, int) {
	if v.Materialized() || v.Sel() == nil {
		return v.Materialize(), 0
	}
	t := v.Materialize()
	return t, t.Rows()
}

// execNode runs one physical operator over its input views. The host
// holds one slot of the shared worker budget for itself while the
// kernel runs; kernels the lowering marked Parallel may reserve spare
// slots for a morsel team through the handle.
func (e *Engine) execNode(ctx context.Context, nd *physical.Node, in []*bat.View) (physOut, error) {
	if e.onApply != nil {
		e.onApply(nd.Op)
	}
	e.sh.working.Add(1)
	defer e.sh.working.Add(-1)
	ms := &morsels{e: e, ctx: ctx, par: nd.Parallel}
	out, err := e.execKernel(ctx, nd, in, ms)
	if err != nil {
		return physOut{}, err
	}
	if e.Check {
		if err := checkNodeOutput(nd, out.view); err != nil {
			return physOut{}, err
		}
	}
	if ms.n > 1 {
		out.morsels = ms.n
		out.workers = ms.workers
		if out.workers == 0 {
			out.workers = 1 // split happened but no spare slot was free
		}
	}
	return out, nil
}

// execKernel dispatches to the operator's kernel.
func (e *Engine) execKernel(ctx context.Context, nd *physical.Node, in []*bat.View, ms *morsels) (physOut, error) {
	o := nd.Op
	switch o.Kind {
	case algebra.OpLit:
		return physOut{view: bat.ViewOf(o.Lit), kernel: nd.Kernel}, nil
	case algebra.OpProject:
		specs := make([]string, len(o.Proj))
		for i, p := range o.Proj {
			specs[i] = p.New + ":" + p.Old
		}
		v, err := in[0].Project(specs...)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: v, kernel: nd.Kernel}, nil
	case algebra.OpSelect:
		return physFilter(ms, in[0], o.Col)
	case algebra.OpUnion:
		return physConcat(in[0], in[1])
	case algebra.OpDiff:
		return physAntiJoin(ms, in[0], in[1], o.KeyL, o.KeyR)
	case algebra.OpDistinct:
		return physDistinct(ms, in[0])
	case algebra.OpJoin:
		return physJoin(ctx, ms, nd, in[0], in[1], joinFull)
	case algebra.OpSemiJoin:
		return physJoin(ctx, ms, nd, in[0], in[1], joinSemi)
	case algebra.OpCross:
		lt, lm := matCount(in[0])
		rt, rm := matCount(in[1])
		if t, ok, err := physCrossBroadcast(lt, rt); err != nil {
			return physOut{}, err
		} else if ok {
			return physOut{view: bat.ViewOf(t), kernel: nd.Kernel + ":bcast", mat: lm + rm + t.Rows()}, nil
		}
		t, err := evalCross(ctx, lt, rt)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(t), kernel: nd.Kernel, mat: lm + rm + t.Rows()}, nil
	case algebra.OpRowNum:
		return physRowNum(nd, in[0])
	case algebra.OpRowID:
		t, m := matCount(in[0])
		out := t.Slice(0, t.Rows())
		if err := out.AddCol(o.Col, bat.Ramp(1, t.Rows())); err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m}, nil
	case algebra.OpFun:
		return e.physFun(ms, nd, in[0])
	case algebra.OpAggr:
		t, m := matCount(in[0])
		out, tag, err := physAggrMorsel(ms, t, o.Col, o.Agg, o.Args, o.Part, o.Sep)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel + tag, mat: m}, nil
	case algebra.OpStep:
		t, m := matCount(in[0])
		out, err := e.evalStepMorsel(ms, t, o.Axis, o.Test)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m + out.Rows()}, nil
	case algebra.OpDoc:
		t, m := matCount(in[0])
		out, err := e.evalDoc(t)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m}, nil
	case algebra.OpRoots:
		t, m := matCount(in[0])
		out, err := e.evalRoots(t)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m}, nil
	case algebra.OpElem:
		qt, m1 := matCount(in[0])
		ct, m2 := matCount(in[1])
		out, err := e.evalElem(qt, ct)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m1 + m2}, nil
	case algebra.OpText:
		t, m := matCount(in[0])
		out, err := e.evalText(t)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m}, nil
	case algebra.OpAttrC:
		nt, m1 := matCount(in[0])
		vt, m2 := matCount(in[1])
		out, err := e.evalAttrC(nt, vt)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m1 + m2}, nil
	case algebra.OpRange:
		t, m := matCount(in[0])
		out, err := e.evalRange(ctx, t, o.KeyL[0], o.KeyL[1])
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m + out.Rows()}, nil
	case algebra.OpColl:
		t, m := matCount(in[0])
		out, err := e.evalColl(t)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m + out.Rows()}, nil
	}
	return physOut{}, fmt.Errorf("unimplemented operator")
}

// physFilter is σ as a selection-vector kernel: it narrows the input
// view's selection without touching row data. Boolean columns take the
// typed path (no per-row Item boxing); polymorphic item columns keep the
// legacy per-row kind check and its error message. Both paths are
// embarrassingly morsel-parallel: each morsel filters its own view-row
// range into a private buffer and the buffers concatenate in morsel
// order, reproducing the sequential selection exactly.
func physFilter(ms *morsels, v *bat.View, col string) (physOut, error) {
	c, err := v.Base().Col(col)
	if err != nil {
		return physOut{}, err
	}
	ranges := ms.split(v.Rows())
	parts := make([][]int32, len(ranges))
	kernel := "filter[item]"
	if bv, ok := c.(bat.BoolVec); ok {
		kernel = "filter[bool]"
		sel := v.Sel()
		err = ms.run(len(ranges), func(m int) error {
			r := ranges[m]
			out := make([]int32, 0, r.Len())
			if sel == nil {
				for i := r.Lo; i < r.Hi; i++ {
					if bv[i] {
						out = append(out, int32(i))
					}
				}
			} else {
				for _, i := range sel[r.Lo:r.Hi] {
					if bv[i] {
						out = append(out, i)
					}
				}
			}
			parts[m] = out
			return nil
		})
	} else {
		err = ms.run(len(ranges), func(m int) error {
			r := ranges[m]
			out := make([]int32, 0, r.Len())
			for row := r.Lo; row < r.Hi; row++ {
				i := v.Index(row)
				it := c.ItemAt(i)
				if it.Kind != bat.KBool {
					return fmt.Errorf("σ over non-boolean column %q (row %d is %s)", col, row, it.Kind)
				}
				if it.B {
					out = append(out, int32(i))
				}
			}
			parts[m] = out
			return nil
		})
	}
	if err != nil {
		return physOut{}, err
	}
	return physOut{view: bat.NewView(v.Base(), concatSel(parts)), kernel: kernel}, nil
}

// physConcat is ∪̇: a breaker that appends both inputs' selected rows
// column by column, reading through the views without materializing the
// inputs first.
func physConcat(l, r *bat.View) (physOut, error) {
	lb, rb := l.Base(), r.Base()
	nl, nr := l.Rows(), r.Rows()
	out := &bat.Table{}
	for _, name := range lb.Cols() {
		lv := lb.MustCol(name)
		rv, err := rb.Col(name)
		if err != nil {
			return physOut{}, err
		}
		var merged bat.Vec
		if lv.Type() == rv.Type() {
			b := lv.New(nl + nr)
			for i := 0; i < nl; i++ {
				b.AppendFrom(lv, l.Index(i))
			}
			for i := 0; i < nr; i++ {
				b.AppendFrom(rv, r.Index(i))
			}
			merged = b.Build()
		} else {
			iv := make(bat.ItemVec, 0, nl+nr)
			for i := 0; i < nl; i++ {
				iv = append(iv, lv.ItemAt(l.Index(i)))
			}
			for i := 0; i < nr; i++ {
				iv = append(iv, rv.ItemAt(r.Index(i)))
			}
			merged = iv
		}
		if err := out.AddCol(name, merged); err != nil {
			return physOut{}, err
		}
	}
	return physOut{view: bat.ViewOf(out), kernel: "concat", mat: nl + nr}, nil
}

// physAntiJoin is \ as a selection kernel over the left view: rows whose
// key has no match in the right side survive. Only the right-side key
// set is built; neither input materializes. The probe is morsel-parallel
// over the left view (the set is read-only by then); the build stays
// sequential — \'s right side is the small "already emitted" relation in
// the loop-lifted plans.
func physAntiJoin(ms *morsels, l, r *bat.View, keyL, keyR []string) (physOut, error) {
	lb, rb := l.Base(), r.Base()
	ranges := ms.split(l.Rows())
	parts := make([][]int32, len(ranges))
	if len(keyL) == 1 {
		lv, err := lb.Col(keyL[0])
		if err != nil {
			return physOut{}, err
		}
		rv, err := rb.Col(keyR[0])
		if err != nil {
			return physOut{}, err
		}
		if lk, ok := lv.(bat.IntVec); ok {
			if rk, ok := rv.(bat.IntVec); ok {
				set := make(map[int64]struct{}, r.Rows())
				for i, n := 0, r.Rows(); i < n; i++ {
					set[rk[r.Index(i)]] = struct{}{}
				}
				if err := ms.run(len(ranges), func(m int) error {
					rg := ranges[m]
					sel := make([]int32, 0, rg.Len())
					for i := rg.Lo; i < rg.Hi; i++ {
						bi := l.Index(i)
						if _, hit := set[lk[bi]]; !hit {
							sel = append(sel, int32(bi))
						}
					}
					parts[m] = sel
					return nil
				}); err != nil {
					return physOut{}, err
				}
				return physOut{view: bat.NewView(lb, concatSel(parts)), kernel: "antijoin[int]"}, nil
			}
		}
	}
	rv, err := colVecs(rb, keyR)
	if err != nil {
		return physOut{}, err
	}
	lv, err := colVecs(lb, keyL)
	if err != nil {
		return physOut{}, err
	}
	set := make(map[string]struct{}, r.Rows())
	var buf []byte
	for i, n := 0, r.Rows(); i < n; i++ {
		buf = rowKey(buf[:0], rv, r.Index(i))
		set[string(buf)] = struct{}{}
	}
	if err := ms.run(len(ranges), func(m int) error {
		rg := ranges[m]
		sel := make([]int32, 0, rg.Len())
		var kb []byte // per-morsel key buffer: rowKey scratch must not be shared
		for i := rg.Lo; i < rg.Hi; i++ {
			bi := l.Index(i)
			kb = rowKey(kb[:0], lv, bi)
			if _, ok := set[string(kb)]; !ok {
				sel = append(sel, int32(bi))
			}
		}
		parts[m] = sel
		return nil
	}); err != nil {
		return physOut{}, err
	}
	return physOut{view: bat.NewView(lb, concatSel(parts)), kernel: "antijoin[hash]"}, nil
}

// physDistinct is δ: first occurrence of each distinct row survives, in
// input order. The input is read through the view; the (deduplicated)
// output materializes — δ is a pipeline breaker.
//
// Morsel decomposition: each morsel deduplicates its own row range into
// a private survivor list (keeping first occurrences in input order), and
// a final sequential pass deduplicates the concatenation of the lists.
// Since every morsel keeps its rows in input order and the lists merge
// in morsel order, the merge pass sees candidates in global input order
// and the survivors are exactly the sequential scan's.
func physDistinct(ms *morsels, v *bat.View) (physOut, error) {
	base := v.Base()
	vecs, err := colVecs(base, base.Cols())
	if err != nil {
		return physOut{}, err
	}
	ranges := ms.split(v.Rows())
	if len(ranges) == 1 {
		sel, kernel := distinctIndices(vecs, v.Rows(), v.Sel(), 0)
		out := base.Gather(sel)
		return physOut{view: bat.ViewOf(out), kernel: kernel, mat: out.Rows()}, nil
	}
	parts := make([][]int32, len(ranges))
	vsel := v.Sel()
	if err := ms.run(len(ranges), func(m int) error {
		r := ranges[m]
		if vsel != nil {
			parts[m], _ = distinctIndices(vecs, r.Len(), vsel[r.Lo:r.Hi], 0)
		} else {
			parts[m], _ = distinctIndices(vecs, r.Len(), nil, r.Lo)
		}
		return nil
	}); err != nil {
		return physOut{}, err
	}
	merged := concatSel(parts)
	sel, kernel := distinctIndices(vecs, len(merged), merged, 0)
	out := base.Gather(sel)
	return physOut{view: bat.ViewOf(out), kernel: kernel, mat: out.Rows()}, nil
}

// physJoin dispatches ⋈/⋉ to the statically chosen kernel. A merge node
// whose runtime key columns turn out not to be typed int vectors (or not
// actually sorted) demotes to the hash kernel — correctness never
// depends on the static property being right.
func physJoin(ctx context.Context, ms *morsels, nd *physical.Node, l, r *bat.View, mode joinMode) (physOut, error) {
	o := nd.Op
	if nd.Merge {
		out, ok, err := physMergeJoin(ctx, o, l, r, mode)
		if err != nil {
			return physOut{}, err
		}
		if ok {
			return out, nil
		}
		out, err = physHashJoin(ctx, ms, o, l, r, mode)
		if err != nil {
			return physOut{}, err
		}
		out.kernel += " (demoted)"
		return out, nil
	}
	return physHashJoin(ctx, ms, o, l, r, mode)
}

// intKeysOf extracts a view's int key column in view order; identity
// views return the base vector without copying.
func intKeysOf(v bat.IntVec, view *bat.View) []int64 {
	if view.Sel() == nil {
		return v
	}
	out := make([]int64, view.Rows())
	for i := range out {
		out[i] = v[view.Index(i)]
	}
	return out
}

func ascending(k []int64) bool {
	for i := 1; i < len(k); i++ {
		if k[i] < k[i-1] {
			return false
		}
	}
	return true
}

// physMergeJoin joins two inputs sorted on a single typed int key by
// merging: no hash table, no build side. Output order — left rows in
// order, each paired with its right matches in right order — is
// identical to the hash kernel's, so the two are interchangeable
// byte-for-byte. Returns ok=false (demote to hash) when the key columns
// are not typed int vectors or the static sortedness promise does not
// hold at runtime.
func physMergeJoin(ctx context.Context, o *algebra.Op, l, r *bat.View, mode joinMode) (physOut, bool, error) {
	lb, rb := l.Base(), r.Base()
	lv, err := lb.Col(o.KeyL[0])
	if err != nil {
		return physOut{}, false, err
	}
	rv, err := rb.Col(o.KeyR[0])
	if err != nil {
		return physOut{}, false, err
	}
	lInts, lok := lv.(bat.IntVec)
	rInts, rok := rv.(bat.IntVec)
	if !lok || !rok {
		return physOut{}, false, nil
	}
	lk := intKeysOf(lInts, l)
	rk := intKeysOf(rInts, r)
	if !ascending(lk) || !ascending(rk) {
		return physOut{}, false, nil
	}
	nl, nr := len(lk), len(rk)
	if mode == joinSemi {
		sel := make([]int32, 0, nl)
		i, j := 0, 0
		for i < nl && j < nr {
			switch {
			case lk[i] < rk[j]:
				i++
			case lk[i] > rk[j]:
				j++
			default:
				sel = append(sel, int32(l.Index(i)))
				i++
			}
		}
		return physOut{view: bat.NewView(lb, sel), kernel: "merge-semijoin[int]"}, true, nil
	}
	var lIdx, rIdx []int32
	i, j := 0, 0
	produced := 0
	for i < nl && j < nr {
		switch {
		case lk[i] < rk[j]:
			i++
		case lk[i] > rk[j]:
			j++
		default:
			j2 := j + 1
			for j2 < nr && rk[j2] == rk[j] {
				j2++
			}
			i2 := i + 1
			for i2 < nl && lk[i2] == lk[i] {
				i2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					if produced%cancelStride == 0 {
						if err := ctx.Err(); err != nil {
							return physOut{}, false, err
						}
					}
					produced++
					lIdx = append(lIdx, int32(l.Index(a)))
					rIdx = append(rIdx, int32(r.Index(b)))
				}
			}
			i, j = i2, j2
		}
	}
	out, err := joinGather(lb, rb, lIdx, rIdx)
	if err != nil {
		return physOut{}, false, err
	}
	return physOut{view: bat.ViewOf(out), kernel: "merge-join[int]", mat: len(lIdx)}, true, nil
}

// physHashJoin is the hash ⋈/⋉ kernel over views: the right side's
// selected rows build the hash table (absolute base indices as payload),
// the left side probes in view order. Typed int keys skip Item boxing
// entirely; other keys fall back to the generic encoded-key path. Both
// the build and the probe are morsel-parallel — the build through
// per-morsel partial tables whose per-key match lists merge in morsel
// (= input) order, the probe through per-morsel index buffers stitched
// in input order — so output rows appear exactly as in the sequential
// scan.
func physHashJoin(ctx context.Context, ms *morsels, o *algebra.Op, l, r *bat.View, mode joinMode) (physOut, error) {
	lb, rb := l.Base(), r.Base()
	keyL, keyR := o.KeyL, o.KeyR
	if len(keyL) == 1 {
		lv, err := lb.Col(keyL[0])
		if err != nil {
			return physOut{}, err
		}
		rv, err := rb.Col(keyR[0])
		if err != nil {
			return physOut{}, err
		}
		if lk, ok := lv.(bat.IntVec); ok {
			if rk, ok := rv.(bat.IntVec); ok {
				ht, err := buildIntHash(ms, r, rk)
				if err != nil {
					return physOut{}, err
				}
				return probeHashJoin(ctx, ms, o, l, r, mode, "[int]", func() func(int) []int32 {
					return func(i int) []int32 { return ht[lk[i]] }
				})
			}
		}
	}
	rVecs, err := colVecs(rb, keyR)
	if err != nil {
		return physOut{}, err
	}
	lVecs, err := colVecs(lb, keyL)
	if err != nil {
		return physOut{}, err
	}
	ht, err := buildKeyHash(ms, r, rVecs)
	if err != nil {
		return physOut{}, err
	}
	return probeHashJoin(ctx, ms, o, l, r, mode, "[item]", func() func(int) []int32 {
		var buf []byte // per-probe-morsel scratch: rowKey buffers must not be shared
		return func(i int) []int32 {
			buf = rowKey(buf[:0], lVecs, i)
			return ht[string(buf)]
		}
	})
}

// buildIntHash builds the int-keyed right-side table, morsel-parallel:
// partial tables merge in morsel order, so every per-key match list is
// in right-input order — the order the sequential build produces.
func buildIntHash(ms *morsels, r *bat.View, rk bat.IntVec) (map[int64][]int32, error) {
	ranges := ms.split(r.Rows())
	if len(ranges) == 1 {
		ht := make(map[int64][]int32, r.Rows())
		for j, n := 0, r.Rows(); j < n; j++ {
			bj := int32(r.Index(j))
			ht[rk[bj]] = append(ht[rk[bj]], bj)
		}
		return ht, nil
	}
	parts := make([]map[int64][]int32, len(ranges))
	if err := ms.run(len(ranges), func(m int) error {
		rg := ranges[m]
		ht := make(map[int64][]int32, rg.Len())
		for j := rg.Lo; j < rg.Hi; j++ {
			bj := int32(r.Index(j))
			ht[rk[bj]] = append(ht[rk[bj]], bj)
		}
		parts[m] = ht
		return nil
	}); err != nil {
		return nil, err
	}
	ht := parts[0]
	for _, p := range parts[1:] {
		for k, v := range p {
			ht[k] = append(ht[k], v...)
		}
	}
	return ht, nil
}

// buildKeyHash is buildIntHash for encoded (polymorphic) keys.
func buildKeyHash(ms *morsels, r *bat.View, rVecs []bat.Vec) (map[string][]int32, error) {
	ranges := ms.split(r.Rows())
	if len(ranges) == 1 {
		ht := make(map[string][]int32, r.Rows())
		var buf []byte
		for j, n := 0, r.Rows(); j < n; j++ {
			bj := r.Index(j)
			buf = rowKey(buf[:0], rVecs, bj)
			ht[string(buf)] = append(ht[string(buf)], int32(bj))
		}
		return ht, nil
	}
	parts := make([]map[string][]int32, len(ranges))
	if err := ms.run(len(ranges), func(m int) error {
		rg := ranges[m]
		ht := make(map[string][]int32, rg.Len())
		var buf []byte
		for j := rg.Lo; j < rg.Hi; j++ {
			bj := r.Index(j)
			buf = rowKey(buf[:0], rVecs, bj)
			ht[string(buf)] = append(ht[string(buf)], int32(bj))
		}
		parts[m] = ht
		return nil
	}); err != nil {
		return nil, err
	}
	ht := parts[0]
	for _, p := range parts[1:] {
		for k, v := range p {
			ht[k] = append(ht[k], v...)
		}
	}
	return ht, nil
}

// probeHashJoin streams the left view through a right-side hash table.
// newMatch builds one matcher per morsel — matchers may keep private
// scratch (the encoded-key buffer) but must treat the table as
// read-only. Per-morsel index buffers concatenate in morsel order.
func probeHashJoin(ctx context.Context, ms *morsels, o *algebra.Op, l, r *bat.View, mode joinMode,
	tag string, newMatch func() func(baseRow int) []int32) (physOut, error) {
	lb, rb := l.Base(), r.Base()
	semi := mode == joinSemi
	ranges := ms.split(l.Rows())
	lParts := make([][]int32, len(ranges))
	rParts := make([][]int32, len(ranges))
	if err := ms.run(len(ranges), func(m int) error {
		rg := ranges[m]
		matches := newMatch()
		var lIdx, rIdx []int32
		if semi {
			lIdx = make([]int32, 0, rg.Len())
		}
		for i := rg.Lo; i < rg.Hi; i++ {
			if (i-rg.Lo)%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			bi := l.Index(i)
			mts := matches(bi)
			if semi {
				if len(mts) > 0 {
					lIdx = append(lIdx, int32(bi))
				}
				continue
			}
			for _, bj := range mts {
				lIdx = append(lIdx, int32(bi))
				rIdx = append(rIdx, bj)
			}
		}
		lParts[m], rParts[m] = lIdx, rIdx
		return nil
	}); err != nil {
		return physOut{}, err
	}
	lIdx := concatSel(lParts)
	if semi {
		return physOut{view: bat.NewView(lb, lIdx), kernel: "hash-semijoin" + tag}, nil
	}
	rIdx := concatSel(rParts)
	out, err := joinGather(lb, rb, lIdx, rIdx)
	if err != nil {
		return physOut{}, err
	}
	return physOut{view: bat.ViewOf(out), kernel: "hash-join" + tag, mat: len(lIdx)}, nil
}

// joinGather materializes a full join result from base tables and
// absolute row-index pairs.
func joinGather(lb, rb *bat.Table, lIdx, rIdx []int32) (*bat.Table, error) {
	out := lb.Gather(lIdx)
	rg := rb.Gather(rIdx)
	for _, name := range rb.Cols() {
		if err := out.AddCol(name, rg.MustCol(name)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// physCrossBroadcast handles the × whose one side is a single row — the
// shape loop-lifting produces whenever a literal or an aggregate joins a
// loop relation. The many-row side's columns are shared (no gather);
// only the single row is broadcast, reproducing the exact column types
// and order of the generic nested-product. ok=false means neither side
// is a singleton and the generic kernel must run.
func physCrossBroadcast(lt, rt *bat.Table) (*bat.Table, bool, error) {
	var one, many *bat.Table
	oneLeft := false
	switch {
	case lt.Rows() == 1:
		one, many, oneLeft = lt, rt, true
	case rt.Rows() == 1:
		one, many = rt, lt
	default:
		return nil, false, nil
	}
	n := many.Rows()
	idx := make([]int32, n) // all zero: repeat the single row n times
	out := &bat.Table{}
	addShared := func(t *bat.Table) error {
		for _, name := range t.Cols() {
			if err := out.AddCol(name, t.MustCol(name)); err != nil {
				return err
			}
		}
		return nil
	}
	addBroadcast := func(t *bat.Table) error {
		for _, name := range t.Cols() {
			if err := out.AddCol(name, t.MustCol(name).Gather(idx)); err != nil {
				return err
			}
		}
		return nil
	}
	if oneLeft {
		if err := addBroadcast(one); err != nil {
			return nil, false, err
		}
		if err := addShared(many); err != nil {
			return nil, false, err
		}
	} else {
		if err := addShared(many); err != nil {
			return nil, false, err
		}
		if err := addBroadcast(one); err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

// physRowNum is ϱ with the statically chosen numbering strategy: const-1
// for dense partitions, straight numbering for presorted inputs, and the
// sort kernel (which still detects already-sorted inputs at runtime)
// otherwise.
func physRowNum(nd *physical.Node, v *bat.View) (physOut, error) {
	o := nd.Op
	t, m := matCount(v)
	n := t.Rows()
	if nd.Const1 {
		out := t.Slice(0, n)
		if err := out.AddCol(o.Col, bat.ConstInt(1, n)); err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m}, nil
	}
	if nd.Presorted {
		out := t.Slice(0, n)
		if err := physRowNumAttach(out, o.Col, o.Part); err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(out), kernel: nd.Kernel, mat: m}, nil
	}
	out, wasSorted, err := physRowNumSort(t, o.Order, o.Part)
	if err != nil {
		return physOut{}, err
	}
	if err := physRowNumAttach(out, o.Col, o.Part); err != nil {
		return physOut{}, err
	}
	kernel := "rownum[sort]"
	if wasSorted {
		kernel = "rownum[scan-sorted]"
	} else {
		m += n
	}
	return physOut{view: bat.ViewOf(out), kernel: kernel, mat: m}, nil
}
