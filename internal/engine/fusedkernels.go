package engine

import (
	"errors"
	"math"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Lane kernels of the fused-chain loop (fusedchain.go). Every kernel is
// a straight loop over the surviving lanes of one batch: no allocation,
// no map access, no appends — the cmd/pfvet fusedalloc rule pins that
// invariant for this file. Inputs arrive as raw typed slices plus a
// lane-index array (the batch's base-row indices for chain-input
// columns, the identity for lane buffers); outputs are pre-sized raw
// slices indexed by lane.
//
// Kernels never produce diagnostics of their own: any condition the
// per-operator path reports with an error (a NaN comparison, a division
// by zero, a non-boolean filter input) returns errFusedBail and the
// executor replays the chain unfused, reproducing the exact per-operator
// error text and order.

// errFusedBail aborts a fused run in favor of the per-operator replay.
var errFusedBail = errors.New("fused chain: replay per operator")

// laneRdr reads one source column by lane: exactly one typed slice is
// set (matching typ), and ix maps a lane to its index in that slice.
type laneRdr struct {
	typ bat.ColType
	ix  []int32
	i   []int64
	f   []float64
	s   []string
	b   []bool
	nd  []bat.NodeRef
	it  []bat.Item
}

// item boxes one lane's value — the generic kernels' bridge into the
// boxed applyFunItems semantics.
func (r *laneRdr) item(lane int32) bat.Item {
	j := r.ix[lane]
	switch r.typ {
	case bat.TInt:
		return bat.Int(r.i[j])
	case bat.TFloat:
		return bat.Float(r.f[j])
	case bat.TStr:
		return bat.Str(r.s[j])
	case bat.TBool:
		return bat.Bool(r.b[j])
	case bat.TNode:
		return bat.Node(r.nd[j])
	default:
		return r.it[j]
	}
}

// b2i lets the filter compaction run branch-free: the selection index
// advances by the predicate's value instead of via a taken branch.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// fusedRamp fills dst with base, base+1, ...
func fusedRamp(dst []int32, base int32) {
	for j := range dst {
		dst[j] = base + int32(j)
	}
}

// fusedFilter narrows the selection in place and returns the survivor
// count. Boolean sources compact branch-free; polymorphic item sources
// keep the per-lane kind check (a non-boolean item bails to σ's own
// diagnostic); any other source type is σ over a non-boolean column,
// which errors on its first row per-operator — bail immediately.
func fusedFilter(rd *laneRdr, sel []int32) (int, error) {
	if rd.b != nil {
		return fusedFilterBool(rd.b, rd.ix, sel), nil
	}
	if rd.it == nil {
		if len(sel) > 0 {
			return 0, errFusedBail
		}
		return 0, nil
	}
	return fusedFilterItem(rd.it, rd.ix, sel)
}

func fusedFilterBool(b []bool, ix, sel []int32) int {
	k := 0
	for _, lane := range sel {
		sel[k] = lane
		k += b2i(b[ix[lane]])
	}
	return k
}

func fusedFilterItem(items []bat.Item, ix, sel []int32) (int, error) {
	k := 0
	for _, lane := range sel {
		it := items[ix[lane]]
		if it.Kind != bat.KBool {
			return 0, errFusedBail
		}
		sel[k] = lane
		k += b2i(it.B)
	}
	return k, nil
}

// fusedConst1 is ϱ's dense fast path: every partition is a singleton.
func fusedConst1(dst []int64, sel []int32) {
	for _, lane := range sel {
		dst[lane] = 1
	}
}

// fusedMark numbers rows by chain-input position: base is the 1-based
// position of the batch's first lane. Chain discovery guarantees no
// filter runs before a mark, so every lane is still at its input
// position.
func fusedMark(dst []int64, sel []int32, base int64) {
	for _, lane := range sel {
		dst[lane] = base + int64(lane)
	}
}

// Comparison kernels: int×int promotes through float64 exactly like the
// boxed bat.Compare; mixed int/float and float×float bail on NaN (the
// per-operator kernel raises a diagnostic there); string pairs compare
// lexically.

func fusedCmpII(fun algebra.FunKind, a []int64, aix []int32, b []int64, bix []int32, sel []int32, out []bool) {
	for _, lane := range sel {
		out[lane] = cmpToBool(fun, cmpF(float64(a[aix[lane]]), float64(b[bix[lane]])))
	}
}

func fusedCmpIF(fun algebra.FunKind, a []int64, aix []int32, b []float64, bix []int32, sel []int32, out []bool) error {
	for _, lane := range sel {
		bv := b[bix[lane]]
		if math.IsNaN(bv) {
			return errFusedBail
		}
		out[lane] = cmpToBool(fun, cmpF(float64(a[aix[lane]]), bv))
	}
	return nil
}

func fusedCmpFI(fun algebra.FunKind, a []float64, aix []int32, b []int64, bix []int32, sel []int32, out []bool) error {
	for _, lane := range sel {
		av := a[aix[lane]]
		if math.IsNaN(av) {
			return errFusedBail
		}
		out[lane] = cmpToBool(fun, cmpF(av, float64(b[bix[lane]])))
	}
	return nil
}

func fusedCmpFF(fun algebra.FunKind, a []float64, aix []int32, b []float64, bix []int32, sel []int32, out []bool) error {
	for _, lane := range sel {
		av, bv := a[aix[lane]], b[bix[lane]]
		if math.IsNaN(av) || math.IsNaN(bv) {
			return errFusedBail
		}
		out[lane] = cmpToBool(fun, cmpF(av, bv))
	}
	return nil
}

func fusedCmpSS(fun algebra.FunKind, a []string, aix []int32, b []string, bix []int32, sel []int32, out []bool) {
	for _, lane := range sel {
		out[lane] = cmpToBool(fun, strings.Compare(a[aix[lane]], b[bix[lane]]))
	}
}

// Boolean kernels.

func fusedAnd(a []bool, aix []int32, b []bool, bix []int32, sel []int32, out []bool) {
	for _, lane := range sel {
		out[lane] = a[aix[lane]] && b[bix[lane]]
	}
}

func fusedOr(a []bool, aix []int32, b []bool, bix []int32, sel []int32, out []bool) {
	for _, lane := range sel {
		out[lane] = a[aix[lane]] || b[bix[lane]]
	}
}

func fusedNot(a []bool, aix []int32, sel []int32, out []bool) {
	for _, lane := range sel {
		out[lane] = !a[aix[lane]]
	}
}

// Effective-boolean-value kernels, one per source type (nodes are
// always true; the boolean case is a copy).

func fusedTrue(sel []int32, out []bool) {
	for _, lane := range sel {
		out[lane] = true
	}
}

func fusedEbvInt(a []int64, aix []int32, sel []int32, out []bool) {
	for _, lane := range sel {
		out[lane] = a[aix[lane]] != 0
	}
}

func fusedEbvFloat(a []float64, aix []int32, sel []int32, out []bool) {
	for _, lane := range sel {
		v := a[aix[lane]]
		out[lane] = v != 0 && v == v
	}
}

func fusedEbvStr(a []string, aix []int32, sel []int32, out []bool) {
	for _, lane := range sel {
		out[lane] = a[aix[lane]] != ""
	}
}

// Identity copies (fn:boolean over booleans, fn:data over atomics,
// fn:string over strings).

func fusedCopyInt(a []int64, aix []int32, sel []int32, out []int64) {
	for _, lane := range sel {
		out[lane] = a[aix[lane]]
	}
}

func fusedCopyFloat(a []float64, aix []int32, sel []int32, out []float64) {
	for _, lane := range sel {
		out[lane] = a[aix[lane]]
	}
}

func fusedCopyStr(a []string, aix []int32, sel []int32, out []string) {
	for _, lane := range sel {
		out[lane] = a[aix[lane]]
	}
}

func fusedCopyBool(a []bool, aix []int32, sel []int32, out []bool) {
	for _, lane := range sel {
		out[lane] = a[aix[lane]]
	}
}

// fusedArithII is int×int arithmetic with the function-kind dispatch
// hoisted out of the lane loop. Division by zero bails — the
// per-operator kernel owns the diagnostic. Div writes the float output
// slot (xs:integer div is a double), IDiv keeps arithKernel's float64
// round trip bit for bit.
func fusedArithII(fun algebra.FunKind, a []int64, aix []int32, b []int64, bix []int32, sel []int32, out *typedCol) error {
	switch fun {
	case algebra.FunAdd:
		o := out.i
		for _, lane := range sel {
			o[lane] = a[aix[lane]] + b[bix[lane]]
		}
	case algebra.FunSub:
		o := out.i
		for _, lane := range sel {
			o[lane] = a[aix[lane]] - b[bix[lane]]
		}
	case algebra.FunMul:
		o := out.i
		for _, lane := range sel {
			o[lane] = a[aix[lane]] * b[bix[lane]]
		}
	case algebra.FunDiv:
		o := out.f
		for _, lane := range sel {
			bv := b[bix[lane]]
			if bv == 0 {
				return errFusedBail
			}
			o[lane] = float64(a[aix[lane]]) / float64(bv)
		}
	case algebra.FunIDiv:
		o := out.i
		for _, lane := range sel {
			bv := b[bix[lane]]
			if bv == 0 {
				return errFusedBail
			}
			o[lane] = int64(float64(a[aix[lane]]) / float64(bv))
		}
	case algebra.FunMod:
		o := out.i
		for _, lane := range sel {
			bv := b[bix[lane]]
			if bv == 0 {
				return errFusedBail
			}
			o[lane] = a[aix[lane]] % bv
		}
	default:
		return errFusedBail
	}
	return nil
}

// Generic kernels: per-lane boxing through applyFunItems, but into a
// typed output slot matching the unfused result vector type. Any
// evaluation error bails to the replay, which re-raises it with the
// per-operator context.

func (e *Engine) fusedGenericBool(o *algebra.Op, a, b, c *laneRdr, sel []int32, out []bool) error {
	for _, lane := range sel {
		var bi, ci bat.Item
		if b != nil {
			bi = b.item(lane)
		}
		if c != nil {
			ci = c.item(lane)
		}
		it, err := e.applyFunItems(o, a.item(lane), bi, ci)
		if err != nil {
			return err
		}
		out[lane] = it.B
	}
	return nil
}

func (e *Engine) fusedGenericStr(o *algebra.Op, a, b, c *laneRdr, sel []int32, out []string) error {
	for _, lane := range sel {
		var bi, ci bat.Item
		if b != nil {
			bi = b.item(lane)
		}
		if c != nil {
			ci = c.item(lane)
		}
		it, err := e.applyFunItems(o, a.item(lane), bi, ci)
		if err != nil {
			return err
		}
		out[lane] = it.S
	}
	return nil
}

func (e *Engine) fusedGenericItem(o *algebra.Op, a, b, c *laneRdr, sel []int32, out []bat.Item) error {
	for _, lane := range sel {
		var bi, ci bat.Item
		if b != nil {
			bi = b.item(lane)
		}
		if c != nil {
			ci = c.item(lane)
		}
		it, err := e.applyFunItems(o, a.item(lane), bi, ci)
		if err != nil {
			return err
		}
		out[lane] = it
	}
	return nil
}
