package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

// TestWorkerBudget pins the shared-budget arithmetic: reservations never
// exceed the pool size minus the busy workers, and releases restore the
// spare capacity.
func TestWorkerBudget(t *testing.T) {
	e := &Engine{Workers: 4, sh: &engineShared{}}
	e.sh.working.Add(1) // the host itself
	if got := e.reserveWorkers(8); got != 3 {
		t.Fatalf("reserve(8) with 1 busy of 4 = %d, want 3", got)
	}
	if got := e.reserveWorkers(1); got != 0 {
		t.Fatalf("reserve on exhausted budget = %d, want 0", got)
	}
	e.releaseWorkers(3)
	if got := e.reserveWorkers(2); got != 2 {
		t.Fatalf("reserve(2) after release = %d, want 2", got)
	}
	e.releaseWorkers(2)
	e.sh.working.Add(-1)
	if w := e.sh.working.Load(); w != 0 {
		t.Fatalf("budget leaked: working = %d", w)
	}
}

// TestMorselRunOrderAndError pins the morsel team semantics: per-morsel
// results land in their own slots regardless of which worker ran them,
// and the error of the lowest-indexed failing morsel wins — the error
// the sequential scan would hit first.
func TestMorselRunOrderAndError(t *testing.T) {
	e := &Engine{Workers: 4, sh: &engineShared{}}
	ms := &morsels{e: e, ctx: context.Background(), par: true}
	out := make([]int, 40)
	if err := ms.run(40, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	if ms.n != 40 {
		t.Errorf("recorded morsels = %d, want 40", ms.n)
	}

	err := ms.run(40, func(i int) error {
		if i == 7 || i == 23 {
			return fmt.Errorf("morsel %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "morsel 7 failed" {
		t.Errorf("earliest-morsel error: got %v", err)
	}
	if w := e.sh.working.Load(); w != 0 {
		t.Fatalf("budget leaked after morsel runs: working = %d", w)
	}
}

// Property: the morsel-partitioned location step emits byte-identical
// iter|item rows to the sequential step for every axis, with the morsel
// size forced down so multi-context descendant groups split into seeded
// sub-ranges. The output must also stay sorted and duplicate-free per
// iter — the staircase prune/skip contract the split must not break.
func TestQuickMorselStepMatchesSequential(t *testing.T) {
	axes := []algebra.Axis{
		algebra.Child, algebra.Descendant, algebra.DescendantOrSelf,
		algebra.Parent, algebra.Ancestor, algebra.AncestorOrSelf,
		algebra.Following, algebra.Preceding,
		algebra.FollowingSibling, algebra.PrecedingSibling, algebra.Self,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		store := xenc.NewStore()
		doc, err := store.LoadDocumentString("q.xml", randomTree(r))
		if err != nil {
			return false
		}
		frag := store.Frag(doc.Frag)
		nCtx := r.Intn(24) + 1
		ctx := make(bat.NodeVec, nCtx)
		iter := make(bat.IntVec, nCtx)
		for i := range ctx {
			ctx[i] = bat.NodeRef{Frag: doc.Frag, Pre: int32(r.Intn(frag.NodeCount()))}
			iter[i] = int64(r.Intn(3) + 1)
		}
		in, err := bat.NewTable("iter", iter, "item", ctx)
		if err != nil {
			return false
		}
		e := New(store)
		e.Workers = 4
		e.MorselRows = 2 // force context-range splits on nearly every group
		ms := &morsels{e: e, ctx: context.Background(), par: true}
		for _, axis := range axes {
			test := algebra.KindTest{Kind: algebra.TestNode}
			want, err1 := e.evalStep(in, axis, test)
			got, err2 := e.evalStepMorsel(ms, in, axis, test)
			if err1 != nil || err2 != nil {
				t.Logf("axis %s: %v %v", axis, err1, err2)
				return false
			}
			if want.String() != got.String() {
				t.Logf("axis %s differs on seed %d:\nseq:\n%s\nmorsel:\n%s",
					axis, seed, want.String(), got.String())
				return false
			}
			oi, _ := got.Ints("iter")
			items := got.MustCol("item")
			for i := 1; i < got.Rows(); i++ {
				if oi[i] < oi[i-1] {
					t.Logf("axis %s: iter order broken at %d", axis, i)
					return false
				}
				if oi[i] == oi[i-1] && items.ItemAt(i).N.Pre <= items.ItemAt(i-1).N.Pre {
					t.Logf("axis %s: doc order/dedup broken at %d", axis, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMorselStepManyContexts drives the seeded descendant split over one
// big context group — nested, overlapping contexts covering the whole
// fragment — where a wrong seed boundary would duplicate or drop pres.
func TestMorselStepManyContexts(t *testing.T) {
	store := xenc.NewStore()
	r := rand.New(rand.NewSource(7))
	doc, err := store.LoadDocumentString("big.xml", randomTree(r))
	if err != nil {
		t.Fatal(err)
	}
	frag := store.Frag(doc.Frag)
	n := frag.NodeCount()
	// Every node is a context, twice, out of order: maximal overlap.
	ctx := make(bat.NodeVec, 0, 2*n)
	iter := make(bat.IntVec, 0, 2*n)
	for i := n - 1; i >= 0; i-- {
		ctx = append(ctx, bat.NodeRef{Frag: doc.Frag, Pre: int32(i)},
			bat.NodeRef{Frag: doc.Frag, Pre: int32(i)})
		iter = append(iter, 1, 1)
	}
	in, err := bat.NewTable("iter", iter, "item", ctx)
	if err != nil {
		t.Fatal(err)
	}
	e := New(store)
	e.Workers = 4
	e.MorselRows = 3
	ms := &morsels{e: e, ctx: context.Background(), par: true}
	for _, axis := range []algebra.Axis{algebra.Descendant, algebra.DescendantOrSelf} {
		test := algebra.KindTest{Kind: algebra.TestNode}
		want, err1 := e.evalStep(in, axis, test)
		got, err2 := e.evalStepMorsel(ms, in, axis, test)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", axis, err1, err2)
		}
		if want.String() != got.String() {
			t.Errorf("%s: split output differs\nseq:\n%s\nmorsel:\n%s", axis, want, got)
		}
	}
	if ms.n < 2 {
		t.Errorf("descendant step over %d contexts never split (morsels = %d)", 2*n, ms.n)
	}
}
