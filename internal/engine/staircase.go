// Package engine evaluates Pathfinder's relational algebra plans over
// bat.Table values and the xenc document store. It plays the role of the
// MonetDB back-end in the paper: a main-memory column engine with one
// local extension — the staircase join — that injects tree awareness into
// the otherwise generic relational operators.
package engine

import (
	"sort"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

// stepGroup evaluates one XPath location step for a group of context nodes
// that share an iter value and a fragment, appending the result pre ranks
// (document-ordered, duplicate-free) to out. ctx must be sorted in
// document order. When staircase is false, the evaluation falls back to a
// context-at-a-time region query without pruning or skipping — the
// "tree-unaware RDBMS" behaviour the staircase join improves upon — with a
// final sort/dedup pass.
func (e *Engine) stepGroup(f *xenc.Fragment, ctx []int32, axis algebra.Axis, out []int32) []int32 {
	if e.Staircase {
		return stepStaircase(f, ctx, axis, out)
	}
	return stepNaive(f, ctx, axis, out)
}

// stepStaircase implements the staircase join of [7]: context pruning,
// result skipping, and single-pass range scans keep the output sorted and
// duplicate-free without a separate δ.
func stepStaircase(f *xenc.Fragment, ctx []int32, axis algebra.Axis, out []int32) []int32 {
	switch axis {
	case algebra.Descendant, algebra.DescendantOrSelf:
		return stepDescSeeded(f, ctx, axis, -1, out)

	case algebra.Child:
		// Sibling jumps: O(children) per context. Nested contexts can
		// interleave results, so sort+dedup afterwards.
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			end := v + f.Size[v]
			for c := v + 1; c <= end; c += f.Size[c] + 1 {
				out = append(out, c)
			}
		}
		return sortDedup(out)

	case algebra.Parent:
		for _, v := range ctx {
			if v >= xenc.AttrBase {
				out = append(out, f.AttrOwner[v-xenc.AttrBase])
				continue
			}
			if p := f.Parent[v]; p >= 0 {
				out = append(out, p)
			}
		}
		return sortDedup(out)

	case algebra.Ancestor, algebra.AncestorOrSelf:
		// Ancestor chains of document-ordered contexts overlap heavily;
		// stop each walk at the first already-seen node (its ancestors are
		// in the result already) — the staircase pruning for reverse axes.
		seen := make(map[int32]bool, len(ctx)*2)
		for _, v := range ctx {
			p := v
			if v >= xenc.AttrBase {
				p = f.AttrOwner[v-xenc.AttrBase]
				if axis == algebra.Ancestor {
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
					p = f.Parent[p]
				}
			} else if axis == algebra.Ancestor {
				p = f.Parent[v]
			}
			for p >= 0 && !seen[p] {
				seen[p] = true
				out = append(out, p)
				p = f.Parent[p]
			}
		}
		return sortDedup(out)

	case algebra.Following:
		// following(v) = { w : pre(w) > pre(v)+size(v) }; the union over
		// the context is a single scan from the smallest boundary — the
		// staircase skip for forward axes.
		if len(ctx) == 0 {
			return out
		}
		boundary := int32(-1)
		first := true
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			if b := v + f.Size[v]; first || b < boundary {
				boundary, first = b, false
			}
		}
		if first {
			return out
		}
		for p := boundary + 1; p < int32(f.NodeCount()); p++ {
			out = append(out, p)
		}
		return out

	case algebra.Preceding:
		// preceding(v) = { w : pre(w)+size(w) < pre(v) }; union over the
		// context is governed by the largest context pre.
		var maxPre int32 = -1
		for _, v := range ctx {
			v = elemContext(f, v)
			if v > maxPre {
				maxPre = v
			}
		}
		for p := int32(0); p < maxPre; p++ {
			if p+f.Size[p] < maxPre {
				out = append(out, p)
			}
		}
		return out

	case algebra.FollowingSibling, algebra.PrecedingSibling:
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			par := f.Parent[v]
			if par < 0 {
				continue
			}
			end := par + f.Size[par]
			for c := par + 1; c <= end; c += f.Size[c] + 1 {
				if axis == algebra.FollowingSibling && c > v {
					out = append(out, c)
				}
				if axis == algebra.PrecedingSibling && c < v {
					out = append(out, c)
				}
			}
		}
		return sortDedup(out)

	case algebra.Self:
		out = append(out, ctx...)
		return sortDedup(out)

	case algebra.Attribute:
		for _, v := range ctx {
			if v >= xenc.AttrBase || f.Kind[v] != xenc.KindElem {
				continue
			}
			lo, hi := f.Attrs(v)
			for i := lo; i < hi; i++ {
				out = append(out, xenc.AttrBase+i)
			}
		}
		return sortDedup(out)
	}
	return out
}

// stepDescSeeded is the descendant/descendant-or-self staircase scan
// with an explicit starting boundary: prune covered contexts, emit each
// (pre, pre+size] range, skip overlap with what has been emitted
// already. emittedTo = -1 is the whole-context scan; a morsel over a
// context sub-range seeds it with the prefix maximum of v+size(v) over
// all earlier contexts — exactly the boundary the sequential scan
// carries at that point, so per-morsel outputs concatenate into the
// identical pre sequence and the prune/skip guarantees (sorted,
// duplicate-free, each node visited once) survive the split.
func stepDescSeeded(f *xenc.Fragment, ctx []int32, axis algebra.Axis, emittedTo int32, out []int32) []int32 {
	for _, v := range ctx {
		v = elemContext(f, v)
		if v < 0 {
			continue
		}
		lo, hi := v+1, v+f.Size[v]
		if axis == algebra.DescendantOrSelf {
			lo = v
		}
		if lo <= emittedTo {
			lo = emittedTo + 1 // skip: already produced by a prior context
		}
		for p := lo; p <= hi; p++ {
			out = append(out, p)
		}
		if hi > emittedTo {
			emittedTo = hi
		}
	}
	return out
}

// stepNaive is the tree-unaware fallback: each context node issues an
// independent region query over the fragment (binary-searched start, no
// pruning), and duplicates across contexts are eliminated afterwards. This
// is the plan shape a generic RDBMS would run for the XPath Accelerator
// region predicates, and the ablation baseline for BenchmarkStaircase*.
func stepNaive(f *xenc.Fragment, ctx []int32, axis algebra.Axis, out []int32) []int32 {
	switch axis {
	case algebra.Descendant, algebra.DescendantOrSelf:
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			lo := v + 1
			if axis == algebra.DescendantOrSelf {
				lo = v
			}
			for p := lo; p <= v+f.Size[v]; p++ {
				out = append(out, p)
			}
		}
		return sortDedup(out)
	case algebra.Following:
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			for p := v + f.Size[v] + 1; p < int32(f.NodeCount()); p++ {
				out = append(out, p)
			}
		}
		return sortDedup(out)
	case algebra.Preceding:
		for _, v := range ctx {
			v = elemContext(f, v)
			for p := int32(0); p < v; p++ {
				if p+f.Size[p] < v {
					out = append(out, p)
				}
			}
		}
		return sortDedup(out)
	case algebra.Ancestor, algebra.AncestorOrSelf:
		// Region predicate scan: w is an ancestor of v iff
		// pre(w) < pre(v) ∧ pre(v) ≤ pre(w)+size(w).
		for _, v := range ctx {
			p := v
			if v >= xenc.AttrBase {
				// The owner element is an ancestor of its attributes.
				p = f.AttrOwner[v-xenc.AttrBase]
				out = append(out, p)
			}
			for w := int32(0); w <= p; w++ {
				if w < p && p <= w+f.Size[w] || (w == p && axis == algebra.AncestorOrSelf && v < xenc.AttrBase) {
					out = append(out, w)
				}
			}
		}
		return sortDedup(out)
	default:
		// The remaining axes have no interesting naive/staircase split.
		return stepStaircase(f, ctx, axis, out)
	}
}

// elemContext normalizes a context pre for subtree axes: attribute refs
// have no descendants/children/following, signalled by -1.
func elemContext(f *xenc.Fragment, v int32) int32 {
	if v >= xenc.AttrBase {
		return -1
	}
	return v
}

func sortDedup(pres []int32) []int32 {
	if len(pres) < 2 {
		return pres
	}
	sorted := true
	for i := 1; i < len(pres); i++ {
		if pres[i] <= pres[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return pres
	}
	sort.Slice(pres, func(i, j int) bool { return pres[i] < pres[j] })
	w := 1
	for i := 1; i < len(pres); i++ {
		if pres[i] != pres[i-1] {
			pres[w] = pres[i]
			w++
		}
	}
	return pres[:w]
}

// matchTest reports whether node pre of fragment f satisfies the node
// test; tagID/attrID are the pre-resolved surrogates for name tests
// (-1 = name unknown in the store, matches nothing).
func matchTest(s *xenc.Store, f *xenc.Fragment, pre int32, test algebra.KindTest, tagID, attrID int32) bool {
	if pre >= xenc.AttrBase {
		if test.Kind == algebra.TestAttr {
			return test.Name == "" || f.AttrName[pre-xenc.AttrBase] == attrID
		}
		return test.Kind == algebra.TestNode
	}
	switch test.Kind {
	case algebra.TestElem:
		if f.Kind[pre] != xenc.KindElem {
			return false
		}
		return test.Name == "" || f.Prop[pre] == tagID
	case algebra.TestText:
		return f.Kind[pre] == xenc.KindText
	case algebra.TestComment:
		return f.Kind[pre] == xenc.KindComment
	case algebra.TestNode:
		return true
	case algebra.TestAttr:
		return false
	}
	return false
}

// stepKey identifies one context group of a location step: the contexts
// of a single iteration living in a single fragment.
type stepKey struct {
	iter int64
	frag int32
}

// stepGroups groups the input context pairs by (iter, fragment) and
// returns the groups plus the keys sorted by (iter, frag) — the emission
// order of the step.
func stepGroups(in *bat.Table) (map[stepKey][]int32, []stepKey, error) {
	iters, err := in.Ints("iter")
	if err != nil {
		return nil, nil, err
	}
	itemsVec, err := in.Col("item")
	if err != nil {
		return nil, nil, err
	}
	groups := make(map[stepKey][]int32)
	var order []stepKey
	for i := 0; i < in.Rows(); i++ {
		it := itemsVec.ItemAt(i)
		k := stepKey{iter: iters[i], frag: it.N.Frag}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], it.N.Pre)
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].iter != order[b].iter {
			return order[a].iter < order[b].iter
		}
		return order[a].frag < order[b].frag
	})
	return groups, order, nil
}

// stepTestIDs pre-resolves the node-test surrogates.
func (e *Engine) stepTestIDs(test algebra.KindTest) (tagID, attrID int32) {
	tagID, attrID = -1, -1
	if test.Kind == algebra.TestElem && test.Name != "" {
		tagID = e.Store.TagID(test.Name)
	}
	if test.Kind == algebra.TestAttr && test.Name != "" {
		attrID = e.Store.AttrNameID(test.Name)
	}
	return tagID, attrID
}

// evalStep runs a full location step: it groups the input context pairs by
// (iter, fragment), document-orders each group, runs the (staircase) join,
// filters by the node test, and emits iter|item rows sorted by iter and
// document order — duplicate-free per iter, which is exactly the
// fs:distinct-doc-order contract XPath steps must satisfy.
func (e *Engine) evalStep(in *bat.Table, axis algebra.Axis, test algebra.KindTest) (*bat.Table, error) {
	groups, order, err := stepGroups(in)
	if err != nil {
		return nil, err
	}
	tagID, attrID := e.stepTestIDs(test)
	outIter := bat.IntVec{}
	outItem := bat.NodeVec{}
	var scratch []int32
	for _, k := range order {
		ctx := sortDedup(groups[k])
		f := e.Store.Frag(k.frag)
		scratch = e.stepGroup(f, ctx, axis, scratch[:0])
		for _, p := range scratch {
			if matchTest(e.Store, f, p, test, tagID, attrID) {
				outIter = append(outIter, k.iter)
				outItem = append(outItem, bat.NodeRef{Frag: k.frag, Pre: p})
			}
		}
	}
	return bat.NewTable("iter", outIter, "item", outItem)
}

// evalStepMorsel is evalStep with morsel-level parallelism. The work
// units are the (iter, fragment) context groups — each unit filters into
// a private iter|item buffer and the buffers concatenate in group order,
// reproducing the sequential emission exactly. One refinement keeps a
// single huge group (the common //descendant step over one document)
// from serializing the whole operator: for the descendant axes under the
// staircase join, a group whose context exceeds the morsel size splits
// into context sub-ranges, each seeded with the prefix maximum of
// v+size(v) over the contexts before it — the exact skip boundary the
// sequential staircase scan carries at that point — so the sub-range
// outputs are disjoint, ascending, and concatenate into the identical
// pre sequence (see stepDescSeeded).
func (e *Engine) evalStepMorsel(ms *morsels, in *bat.Table, axis algebra.Axis, test algebra.KindTest) (*bat.Table, error) {
	size := e.morselRows()
	if !ms.par || size <= 0 {
		return e.evalStep(in, axis, test)
	}
	groups, order, err := stepGroups(in)
	if err != nil {
		return nil, err
	}
	tagID, attrID := e.stepTestIDs(test)

	type unit struct {
		key  stepKey
		ctx  []int32
		seed int32 // initial emittedTo for split descendant units
		desc bool  // seeded descendant scan instead of the whole-group join
	}
	var units []unit
	for _, k := range order {
		ctx := sortDedup(groups[k])
		if e.Staircase && len(ctx) > size &&
			(axis == algebra.Descendant || axis == algebra.DescendantOrSelf) {
			f := e.Store.Frag(k.frag)
			emitted := int32(-1)
			for _, rg := range bat.SplitRows(len(ctx), size) {
				sub := ctx[rg.Lo:rg.Hi]
				units = append(units, unit{key: k, ctx: sub, seed: emitted, desc: true})
				for _, v := range sub {
					if v = elemContext(f, v); v < 0 {
						continue
					}
					if hi := v + f.Size[v]; hi > emitted {
						emitted = hi
					}
				}
			}
		} else {
			units = append(units, unit{key: k, ctx: ctx})
		}
	}

	type part struct {
		iter bat.IntVec
		item bat.NodeVec
	}
	parts := make([]part, len(units))
	if err := ms.run(len(units), func(u int) error {
		un := units[u]
		f := e.Store.Frag(un.key.frag)
		var scratch []int32
		if un.desc {
			scratch = stepDescSeeded(f, un.ctx, axis, un.seed, scratch)
		} else {
			scratch = e.stepGroup(f, un.ctx, axis, scratch)
		}
		var p part
		for _, pre := range scratch {
			if matchTest(e.Store, f, pre, test, tagID, attrID) {
				p.iter = append(p.iter, un.key.iter)
				p.item = append(p.item, bat.NodeRef{Frag: un.key.frag, Pre: pre})
			}
		}
		parts[u] = p
		return nil
	}); err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p.iter)
	}
	outIter := make(bat.IntVec, 0, total)
	outItem := make(bat.NodeVec, 0, total)
	for _, p := range parts {
		outIter = append(outIter, p.iter...)
		outItem = append(outItem, p.item...)
	}
	return bat.NewTable("iter", outIter, "item", outItem)
}
