// Package engine evaluates Pathfinder's relational algebra plans over
// bat.Table values and the xenc document store. It plays the role of the
// MonetDB back-end in the paper: a main-memory column engine with one
// local extension — the staircase join — that injects tree awareness into
// the otherwise generic relational operators.
package engine

import (
	"sort"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

// stepGroup evaluates one XPath location step for a group of context nodes
// that share an iter value and a fragment, appending the result pre ranks
// (document-ordered, duplicate-free) to out. ctx must be sorted in
// document order. When staircase is false, the evaluation falls back to a
// context-at-a-time region query without pruning or skipping — the
// "tree-unaware RDBMS" behaviour the staircase join improves upon — with a
// final sort/dedup pass.
func (e *Engine) stepGroup(f *xenc.Fragment, ctx []int32, axis algebra.Axis, out []int32) []int32 {
	if e.Staircase {
		return stepStaircase(f, ctx, axis, out)
	}
	return stepNaive(f, ctx, axis, out)
}

// stepStaircase implements the staircase join of [7]: context pruning,
// result skipping, and single-pass range scans keep the output sorted and
// duplicate-free without a separate δ.
func stepStaircase(f *xenc.Fragment, ctx []int32, axis algebra.Axis, out []int32) []int32 {
	switch axis {
	case algebra.Descendant, algebra.DescendantOrSelf:
		// Prune covered contexts, then emit each (pre, pre+size] range,
		// skipping overlap with what has been emitted already.
		emittedTo := int32(-1) // highest pre emitted so far
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			lo, hi := v+1, v+f.Size[v]
			if axis == algebra.DescendantOrSelf {
				lo = v
			}
			if lo <= emittedTo {
				lo = emittedTo + 1 // skip: already produced by a prior context
			}
			for p := lo; p <= hi; p++ {
				out = append(out, p)
			}
			if hi > emittedTo {
				emittedTo = hi
			}
		}
		return out

	case algebra.Child:
		// Sibling jumps: O(children) per context. Nested contexts can
		// interleave results, so sort+dedup afterwards.
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			end := v + f.Size[v]
			for c := v + 1; c <= end; c += f.Size[c] + 1 {
				out = append(out, c)
			}
		}
		return sortDedup(out)

	case algebra.Parent:
		for _, v := range ctx {
			if v >= xenc.AttrBase {
				out = append(out, f.AttrOwner[v-xenc.AttrBase])
				continue
			}
			if p := f.Parent[v]; p >= 0 {
				out = append(out, p)
			}
		}
		return sortDedup(out)

	case algebra.Ancestor, algebra.AncestorOrSelf:
		// Ancestor chains of document-ordered contexts overlap heavily;
		// stop each walk at the first already-seen node (its ancestors are
		// in the result already) — the staircase pruning for reverse axes.
		seen := make(map[int32]bool, len(ctx)*2)
		for _, v := range ctx {
			p := v
			if v >= xenc.AttrBase {
				p = f.AttrOwner[v-xenc.AttrBase]
				if axis == algebra.Ancestor {
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
					p = f.Parent[p]
				}
			} else if axis == algebra.Ancestor {
				p = f.Parent[v]
			}
			for p >= 0 && !seen[p] {
				seen[p] = true
				out = append(out, p)
				p = f.Parent[p]
			}
		}
		return sortDedup(out)

	case algebra.Following:
		// following(v) = { w : pre(w) > pre(v)+size(v) }; the union over
		// the context is a single scan from the smallest boundary — the
		// staircase skip for forward axes.
		if len(ctx) == 0 {
			return out
		}
		boundary := int32(-1)
		first := true
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			if b := v + f.Size[v]; first || b < boundary {
				boundary, first = b, false
			}
		}
		if first {
			return out
		}
		for p := boundary + 1; p < int32(f.NodeCount()); p++ {
			out = append(out, p)
		}
		return out

	case algebra.Preceding:
		// preceding(v) = { w : pre(w)+size(w) < pre(v) }; union over the
		// context is governed by the largest context pre.
		var maxPre int32 = -1
		for _, v := range ctx {
			v = elemContext(f, v)
			if v > maxPre {
				maxPre = v
			}
		}
		for p := int32(0); p < maxPre; p++ {
			if p+f.Size[p] < maxPre {
				out = append(out, p)
			}
		}
		return out

	case algebra.FollowingSibling, algebra.PrecedingSibling:
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			par := f.Parent[v]
			if par < 0 {
				continue
			}
			end := par + f.Size[par]
			for c := par + 1; c <= end; c += f.Size[c] + 1 {
				if axis == algebra.FollowingSibling && c > v {
					out = append(out, c)
				}
				if axis == algebra.PrecedingSibling && c < v {
					out = append(out, c)
				}
			}
		}
		return sortDedup(out)

	case algebra.Self:
		out = append(out, ctx...)
		return sortDedup(out)

	case algebra.Attribute:
		for _, v := range ctx {
			if v >= xenc.AttrBase || f.Kind[v] != xenc.KindElem {
				continue
			}
			lo, hi := f.Attrs(v)
			for i := lo; i < hi; i++ {
				out = append(out, xenc.AttrBase+i)
			}
		}
		return sortDedup(out)
	}
	return out
}

// stepNaive is the tree-unaware fallback: each context node issues an
// independent region query over the fragment (binary-searched start, no
// pruning), and duplicates across contexts are eliminated afterwards. This
// is the plan shape a generic RDBMS would run for the XPath Accelerator
// region predicates, and the ablation baseline for BenchmarkStaircase*.
func stepNaive(f *xenc.Fragment, ctx []int32, axis algebra.Axis, out []int32) []int32 {
	switch axis {
	case algebra.Descendant, algebra.DescendantOrSelf:
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			lo := v + 1
			if axis == algebra.DescendantOrSelf {
				lo = v
			}
			for p := lo; p <= v+f.Size[v]; p++ {
				out = append(out, p)
			}
		}
		return sortDedup(out)
	case algebra.Following:
		for _, v := range ctx {
			v = elemContext(f, v)
			if v < 0 {
				continue
			}
			for p := v + f.Size[v] + 1; p < int32(f.NodeCount()); p++ {
				out = append(out, p)
			}
		}
		return sortDedup(out)
	case algebra.Preceding:
		for _, v := range ctx {
			v = elemContext(f, v)
			for p := int32(0); p < v; p++ {
				if p+f.Size[p] < v {
					out = append(out, p)
				}
			}
		}
		return sortDedup(out)
	case algebra.Ancestor, algebra.AncestorOrSelf:
		// Region predicate scan: w is an ancestor of v iff
		// pre(w) < pre(v) ∧ pre(v) ≤ pre(w)+size(w).
		for _, v := range ctx {
			p := v
			if v >= xenc.AttrBase {
				// The owner element is an ancestor of its attributes.
				p = f.AttrOwner[v-xenc.AttrBase]
				out = append(out, p)
			}
			for w := int32(0); w <= p; w++ {
				if w < p && p <= w+f.Size[w] || (w == p && axis == algebra.AncestorOrSelf && v < xenc.AttrBase) {
					out = append(out, w)
				}
			}
		}
		return sortDedup(out)
	default:
		// The remaining axes have no interesting naive/staircase split.
		return stepStaircase(f, ctx, axis, out)
	}
}

// elemContext normalizes a context pre for subtree axes: attribute refs
// have no descendants/children/following, signalled by -1.
func elemContext(f *xenc.Fragment, v int32) int32 {
	if v >= xenc.AttrBase {
		return -1
	}
	return v
}

func sortDedup(pres []int32) []int32 {
	if len(pres) < 2 {
		return pres
	}
	sorted := true
	for i := 1; i < len(pres); i++ {
		if pres[i] <= pres[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return pres
	}
	sort.Slice(pres, func(i, j int) bool { return pres[i] < pres[j] })
	w := 1
	for i := 1; i < len(pres); i++ {
		if pres[i] != pres[i-1] {
			pres[w] = pres[i]
			w++
		}
	}
	return pres[:w]
}

// matchTest reports whether node pre of fragment f satisfies the node
// test; tagID/attrID are the pre-resolved surrogates for name tests
// (-1 = name unknown in the store, matches nothing).
func matchTest(s *xenc.Store, f *xenc.Fragment, pre int32, test algebra.KindTest, tagID, attrID int32) bool {
	if pre >= xenc.AttrBase {
		if test.Kind == algebra.TestAttr {
			return test.Name == "" || f.AttrName[pre-xenc.AttrBase] == attrID
		}
		return test.Kind == algebra.TestNode
	}
	switch test.Kind {
	case algebra.TestElem:
		if f.Kind[pre] != xenc.KindElem {
			return false
		}
		return test.Name == "" || f.Prop[pre] == tagID
	case algebra.TestText:
		return f.Kind[pre] == xenc.KindText
	case algebra.TestComment:
		return f.Kind[pre] == xenc.KindComment
	case algebra.TestNode:
		return true
	case algebra.TestAttr:
		return false
	}
	return false
}

// evalStep runs a full location step: it groups the input context pairs by
// (iter, fragment), document-orders each group, runs the (staircase) join,
// filters by the node test, and emits iter|item rows sorted by iter and
// document order — duplicate-free per iter, which is exactly the
// fs:distinct-doc-order contract XPath steps must satisfy.
func (e *Engine) evalStep(in *bat.Table, axis algebra.Axis, test algebra.KindTest) (*bat.Table, error) {
	iters, err := in.Ints("iter")
	if err != nil {
		return nil, err
	}
	itemsVec, err := in.Col("item")
	if err != nil {
		return nil, err
	}

	type key struct {
		iter int64
		frag int32
	}
	groups := make(map[key][]int32)
	var order []key
	for i := 0; i < in.Rows(); i++ {
		it := itemsVec.ItemAt(i)
		k := key{iter: iters[i], frag: it.N.Frag}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], it.N.Pre)
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].iter != order[b].iter {
			return order[a].iter < order[b].iter
		}
		return order[a].frag < order[b].frag
	})

	tagID, attrID := int32(-1), int32(-1)
	if test.Kind == algebra.TestElem && test.Name != "" {
		tagID = e.Store.TagID(test.Name)
	}
	if test.Kind == algebra.TestAttr && test.Name != "" {
		attrID = e.Store.AttrNameID(test.Name)
	}

	outIter := bat.IntVec{}
	outItem := bat.NodeVec{}
	var scratch []int32
	for _, k := range order {
		ctx := sortDedup(groups[k])
		f := e.Store.Frag(k.frag)
		scratch = e.stepGroup(f, ctx, axis, scratch[:0])
		for _, p := range scratch {
			if matchTest(e.Store, f, p, test, tagID, attrID) {
				outIter = append(outIter, k.iter)
				outItem = append(outItem, bat.NodeRef{Frag: k.frag, Pre: p})
			}
		}
	}
	return bat.NewTable("iter", outIter, "item", outItem)
}
