package engine

// Stress and unit tests for the parallel DAG scheduler: exactly-once
// memoization over shared subplans (via the onApply hook), wide fan-out
// plans across worker pool sizes, error propagation out of a failing
// branch, and mid-operator cancellation of the row loops.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

// fanOutPlan builds a plan with one shared leaf feeding width independent
// branches that a union chain folds back together — the widest antichain
// the scheduler can exploit, with every branch consuming the same subplan.
func fanOutPlan(t *testing.T, width int) *algebra.Op {
	t.Helper()
	shared := must(algebra.RowID(algebra.Lit(bat.MustTable(
		"item", bat.ItemVec{bat.Int(1), bat.Int(2), bat.Int(3), bat.Int(4)},
	)), "iter"))
	var root *algebra.Op
	for i := 0; i < width; i++ {
		c := algebra.Lit(bat.MustTable("c", bat.ItemVec{bat.Int(int64(i))}))
		branch := must(algebra.Project(
			must(algebra.Fun(must(algebra.Cross(shared, c)), "v", algebra.FunAdd, "item", "c")),
			"iter", "v"))
		if root == nil {
			root = branch
		} else {
			root = must(algebra.Union(root, branch))
		}
	}
	return root
}

func sumCol(t *testing.T, tb *bat.Table, col string) int64 {
	t.Helper()
	v, err := tb.Col(col)
	if err != nil {
		t.Fatal(err)
	}
	var s int64
	for i := 0; i < v.Len(); i++ {
		s += v.ItemAt(i).I
	}
	return s
}

// TestMemoizationExactlyOnce proves each operator of a DAG with shared
// subplans is applied exactly once per evaluation, on both evaluators.
func TestMemoizationExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			root := fanOutPlan(t, 16)
			n := algebra.CountOps(root)

			e := NewWithConfig(xenc.NewStore(), Config{Workers: workers, SeqThreshold: -1})
			var counts sync.Map // *algebra.Op → *atomic.Int64
			e.onApply = func(o *algebra.Op) {
				c, _ := counts.LoadOrStore(o, new(atomic.Int64))
				c.(*atomic.Int64).Add(1)
			}
			if _, err := e.Eval(root); err != nil {
				t.Fatal(err)
			}
			applied := 0
			counts.Range(func(_, v any) bool {
				applied++
				if got := v.(*atomic.Int64).Load(); got != 1 {
					t.Errorf("operator applied %d times, want exactly 1", got)
				}
				return true
			})
			if applied != n {
				t.Errorf("applied %d distinct operators, plan has %d", applied, n)
			}
		})
	}
}

// TestFanOutAcrossPoolSizes checks the wide plan computes the same result
// for pool sizes 1, 2, and 8.
func TestFanOutAcrossPoolSizes(t *testing.T) {
	root := fanOutPlan(t, 32)
	var want int64
	for _, workers := range []int{1, 2, 8} {
		e := NewWithConfig(xenc.NewStore(), Config{Workers: workers, SeqThreshold: -1})
		out, err := e.Eval(root)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// 32 branches × 4 rows; Σ(item) = 10 per branch, Σ(c) = 0+..+31.
		if out.Rows() != 32*4 {
			t.Fatalf("workers=%d: %d rows, want %d", workers, out.Rows(), 32*4)
		}
		got := sumCol(t, out, "v")
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d: Σv = %d, sequential said %d", workers, got, want)
		}
	}
}

// TestSchedulerErrorPropagation plants a failing operator (σ over a
// non-boolean column) inside a wide plan and requires the scheduler to
// surface the error promptly instead of hanging or panicking.
func TestSchedulerErrorPropagation(t *testing.T) {
	good := fanOutPlan(t, 16)
	bad := must(algebra.Project(
		must(algebra.Select(
			must(algebra.RowID(algebra.Lit(bat.MustTable("v", bat.ItemVec{bat.Int(1)})), "iter")),
			"v")),
		"iter", "v"))
	root := must(algebra.Union(good, bad))

	e := NewWithConfig(xenc.NewStore(), Config{Workers: 8, SeqThreshold: -1})
	done := make(chan error, 1)
	go func() {
		_, err := e.Eval(root)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("failing branch produced no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scheduler hung on a failing operator")
	}
}

// TestCancellationMidOperator builds a cross product large enough that a
// sequential between-operators check would only fire after the full 25M
// rows materialize, then cancels mid-flight: the row-loop stride checks
// must observe the context and abandon the operator.
func TestCancellationMidOperator(t *testing.T) {
	big := func() *algebra.Op {
		items := make(bat.ItemVec, 5000)
		for i := range items {
			items[i] = bat.Int(int64(i))
		}
		return algebra.Lit(bat.MustTable("x", items))
	}
	cross := must(algebra.Cross(big(), must(algebra.Project(big(), "y:x"))))

	for _, workers := range []int{1, 8} {
		e := NewWithConfig(xenc.NewStore(), Config{Workers: workers, SeqThreshold: -1})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, err := e.EvalContext(ctx, cross)
			done <- err
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
			// Generous bound: materializing all 25M rows takes far longer.
			if d := time.Since(start); d > 5*time.Second {
				t.Errorf("workers=%d: cancellation took %v", workers, d)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: cancellation never observed", workers)
		}
	}
}

// TestDeadlineExceededSurfaces checks an already-expired deadline aborts
// evaluation with context.DeadlineExceeded on both evaluators (the
// engine's legacy Deadline field routes through the same context now).
func TestDeadlineExceededSurfaces(t *testing.T) {
	root := fanOutPlan(t, 8)
	for _, workers := range []int{1, 8} {
		e := NewWithConfig(xenc.NewStore(), Config{Workers: workers, SeqThreshold: -1})
		e.Deadline = time.Now().Add(-time.Second)
		if _, err := e.Eval(root); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("workers=%d: err = %v, want context.DeadlineExceeded", workers, err)
		}
	}
}

// TestSeqThresholdFallback pins the dispatch decision: small plans run
// sequentially (worker 0), unless the threshold is disabled.
func TestSeqThresholdFallback(t *testing.T) {
	small := fanOutPlan(t, 1) // 5 operators, well under DefaultSeqThreshold
	e := NewWithConfig(xenc.NewStore(), Config{Workers: 8})
	_, tr, err := e.EvalTrace(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	for o, st := range tr.Stats {
		if st.Worker != 0 {
			t.Errorf("%v ran on worker %d; small plans should fall back to the sequential path", o, st.Worker)
		}
	}

	e = NewWithConfig(xenc.NewStore(), Config{Workers: 8, SeqThreshold: -1})
	_, tr, err = e.EvalTrace(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	parallelRan := false
	for _, st := range tr.Stats {
		if st.Worker > 0 {
			parallelRan = true
		}
	}
	if !parallelRan {
		t.Error("SeqThreshold=-1 did not force the parallel scheduler")
	}
}

// TestTraceStats checks EvalTrace records one stat per operator with
// plausible row counts.
func TestTraceStats(t *testing.T) {
	root := fanOutPlan(t, 4)
	e := NewWithConfig(xenc.NewStore(), Config{Workers: 8, SeqThreshold: -1})
	out, tr, err := e.EvalTrace(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Stats), algebra.CountOps(root); got != want {
		t.Errorf("recorded %d stats, plan has %d operators", got, want)
	}
	st, ok := tr.Stats[root]
	if !ok {
		t.Fatal("no stat recorded for the root operator")
	}
	if st.RowsOut != out.Rows() {
		t.Errorf("root RowsOut = %d, result has %d rows", st.RowsOut, out.Rows())
	}
}
