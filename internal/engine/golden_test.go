package engine_test

// Golden-output tests: the serialized result of every XMark query at a
// fixed scale factor is pinned under testdata/golden/. Any byte of drift —
// from the scheduler, the optimizer, the serializer, or the generator —
// fails the suite. Regenerate intentionally with:
//
//	go test ./internal/engine -run TestXMarkGolden -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenSF fixes the instance: the generator is deterministic in the scale
// factor, so this pins the document and therefore every query result.
const goldenSF = 0.002

func goldenPath(n int) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("q%02d.xml", n))
}

func TestXMarkGolden(t *testing.T) {
	doc := xmark.GenerateString(goldenSF)
	par := parEngine(t, "xmark.xml", doc)
	opts := xqcore.Options{ContextDoc: "xmark.xml"}

	for n := 1; n <= xmark.NumQueries; n++ {
		plan, _, err := core.CompileQuery(xmark.Query(n), opts)
		if err != nil {
			t.Fatalf("Q%d: compile: %v", n, err)
		}
		if plan, err = opt.Optimize(plan); err != nil {
			t.Fatalf("Q%d: optimize: %v", n, err)
		}
		res, err := par.Eval(plan)
		if err != nil {
			t.Fatalf("Q%d: execute: %v", n, err)
		}
		got, err := serialize.Result(par.Store, res)
		if err != nil {
			t.Fatalf("Q%d: serialize: %v", n, err)
		}
		got += "\n"

		path := goldenPath(n)
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("Q%d: %v (run with -update to create the golden files)", n, err)
		}
		if got != string(want) {
			t.Errorf("Q%d: output differs from %s (run with -update after an intentional change)\n got  = %.400q\n want = %.400q",
				n, path, got, string(want))
		}
	}
}
