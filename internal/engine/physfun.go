package engine

import (
	"math"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/physical"
)

// Typed ⊛ kernels for the physical executor. The legacy interpreter
// evaluates every map row through applyFun: box both operands into
// Items, re-dispatch on the function kind, and re-examine the operand
// kinds. Here the dispatch happens once per column batch: when the
// argument vectors are typed (IntVec, StrVec, BoolVec, ...) the kernel
// runs a monomorphic loop over the raw slices, and even the polymorphic
// fallbacks hoist the function-kind switch out of the row loop. Each
// typed path reproduces the boxed semantics exactly — including the
// float64 promotion of integer comparisons and the error messages — so
// the physical plan stays byte-identical to the reference interpreter.

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpToBool(fun algebra.FunKind, c int) bool {
	switch fun {
	case algebra.FunEq:
		return c == 0
	case algebra.FunNe:
		return c != 0
	case algebra.FunLt:
		return c < 0
	case algebra.FunLe:
		return c <= 0
	case algebra.FunGt:
		return c > 0
	default: // FunGe
		return c >= 0
	}
}

// physFun executes one map node, choosing the tightest kernel the
// argument vector types allow and reporting it (":int", ":str", ...)
// through the trace. The typed kernels are embarrassingly
// morsel-parallel: every morsel runs the same kernel over slices of the
// argument vectors (the dispatch depends only on the vector types, which
// slicing preserves) and the per-morsel result vectors concatenate in
// morsel order. The boxed per-row fallback stays sequential — it is the
// cold path for functions no typed kernel covers.
func (e *Engine) physFun(ms *morsels, nd *physical.Node, v *bat.View) (physOut, error) {
	o := nd.Op
	t, m := matCount(v)
	args := make([]bat.Vec, len(o.Args))
	for i, a := range o.Args {
		c, err := t.Col(a)
		if err != nil {
			return physOut{}, err
		}
		args[i] = c
	}
	n := t.Rows()
	ranges := ms.split(n)
	if len(ranges) > 1 {
		// Zero-row probe: resolves which kernel (if any) the argument
		// types select, without doing any row work.
		probe := make([]bat.Vec, len(args))
		for i := range args {
			probe[i] = args[i].Slice(0, 0)
		}
		if out, _, err := e.funKernel(o, probe, 0); err == nil && out != nil {
			parts := make([]bat.Vec, len(ranges))
			tags := make([]string, len(ranges))
			if err := ms.run(len(ranges), func(mi int) error {
				r := ranges[mi]
				sub := make([]bat.Vec, len(args))
				for i := range args {
					sub[i] = args[i].Slice(r.Lo, r.Hi)
				}
				res, tag, err := e.funKernel(o, sub, r.Len())
				if err != nil {
					return err
				}
				parts[mi], tags[mi] = res, tag
				return nil
			}); err != nil {
				return physOut{}, err
			}
			nt := t.Slice(0, n)
			if err := nt.AddCol(o.Col, concatVecs(parts)); err != nil {
				return physOut{}, err
			}
			return physOut{view: bat.ViewOf(nt), kernel: nd.Kernel + tags[0], mat: m}, nil
		}
	}
	out, tag, err := e.funKernel(o, args, n)
	if err != nil {
		return physOut{}, err
	}
	if out == nil {
		// No specialized kernel for this function — the boxed per-row path.
		nt, err := e.evalFun(t, o)
		if err != nil {
			return physOut{}, err
		}
		return physOut{view: bat.ViewOf(nt), kernel: nd.Kernel, mat: m}, nil
	}
	nt := t.Slice(0, n)
	if err := nt.AddCol(o.Col, out); err != nil {
		return physOut{}, err
	}
	return physOut{view: bat.ViewOf(nt), kernel: nd.Kernel + tag, mat: m}, nil
}

// funKernel returns the result vector of a specialized kernel, or nil
// when the function/operand combination has none and the caller should
// take the boxed path.
func (e *Engine) funKernel(o *algebra.Op, args []bat.Vec, n int) (bat.Vec, string, error) {
	switch o.Fun {
	case algebra.FunEq, algebra.FunNe, algebra.FunLt, algebra.FunLe,
		algebra.FunGt, algebra.FunGe:
		return compareKernel(o.Fun, args[0], args[1], n)
	case algebra.FunAnd, algebra.FunOr:
		a, aok := args[0].(bat.BoolVec)
		b, bok := args[1].(bat.BoolVec)
		if !aok || !bok {
			return nil, "", nil
		}
		res := make(bat.BoolVec, n)
		if o.Fun == algebra.FunAnd {
			for i := 0; i < n; i++ {
				res[i] = a[i] && b[i]
			}
		} else {
			for i := 0; i < n; i++ {
				res[i] = a[i] || b[i]
			}
		}
		return res, ":bool", nil
	case algebra.FunNot:
		a, ok := args[0].(bat.BoolVec)
		if !ok {
			return nil, "", nil
		}
		res := make(bat.BoolVec, n)
		for i := 0; i < n; i++ {
			res[i] = !a[i]
		}
		return res, ":bool", nil
	case algebra.FunBoolWrap:
		a, ok := args[0].(bat.BoolVec)
		if !ok {
			return nil, "", nil
		}
		res := make(bat.BoolVec, n)
		copy(res, a)
		return res, ":bool", nil
	case algebra.FunEbvItem:
		return ebvKernel(args[0], n)
	case algebra.FunAdd, algebra.FunSub, algebra.FunMul, algebra.FunDiv,
		algebra.FunIDiv, algebra.FunMod:
		return arithKernel(o.Fun, args[0], args[1], n)
	case algebra.FunString:
		if a, ok := args[0].(bat.StrVec); ok {
			res := make(bat.StrVec, n)
			copy(res, a)
			return res, ":str", nil
		}
		return nil, "", nil
	case algebra.FunAtomize:
		switch a := args[0].(type) {
		case bat.NodeVec:
			res := make(bat.ItemVec, n)
			for i := 0; i < n; i++ {
				res[i] = e.Store.Atomize(a[i])
			}
			return res, ":node", nil
		case bat.IntVec, bat.FloatVec, bat.StrVec, bat.BoolVec:
			// Atomizing an already-atomic typed column is the identity.
			return a.Slice(0, n), ":id", nil
		}
		return nil, "", nil
	}
	return nil, "", nil
}

// compareKernel evaluates a general comparison column pair. Int×int
// pairs compare through the same float64 promotion the boxed
// bat.Compare applies; float operands keep its NaN diagnostics; string
// pairs compare lexically. Polymorphic operands still hoist the
// function-kind dispatch out of the loop and call bat.Compare directly.
func compareKernel(fun algebra.FunKind, av, bv bat.Vec, n int) (bat.Vec, string, error) {
	res := make(bat.BoolVec, n)
	switch a := av.(type) {
	case bat.IntVec:
		switch b := bv.(type) {
		case bat.IntVec:
			for i := 0; i < n; i++ {
				res[i] = cmpToBool(fun, cmpF(float64(a[i]), float64(b[i])))
			}
			return res, ":int", nil
		case bat.FloatVec:
			for i := 0; i < n; i++ {
				if math.IsNaN(b[i]) {
					_, err := bat.Compare(bat.Int(a[i]), bat.Float(b[i]))
					return nil, "", err
				}
				res[i] = cmpToBool(fun, cmpF(float64(a[i]), b[i]))
			}
			return res, ":num", nil
		}
	case bat.FloatVec:
		switch b := bv.(type) {
		case bat.IntVec:
			for i := 0; i < n; i++ {
				if math.IsNaN(a[i]) {
					_, err := bat.Compare(bat.Float(a[i]), bat.Int(b[i]))
					return nil, "", err
				}
				res[i] = cmpToBool(fun, cmpF(a[i], float64(b[i])))
			}
			return res, ":num", nil
		case bat.FloatVec:
			for i := 0; i < n; i++ {
				if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
					_, err := bat.Compare(bat.Float(a[i]), bat.Float(b[i]))
					return nil, "", err
				}
				res[i] = cmpToBool(fun, cmpF(a[i], b[i]))
			}
			return res, ":num", nil
		}
	case bat.StrVec:
		if b, ok := bv.(bat.StrVec); ok {
			for i := 0; i < n; i++ {
				res[i] = cmpToBool(fun, strings.Compare(a[i], b[i]))
			}
			return res, ":str", nil
		}
	}
	for i := 0; i < n; i++ {
		c, err := bat.Compare(av.ItemAt(i), bv.ItemAt(i))
		if err != nil {
			return nil, "", err
		}
		res[i] = cmpToBool(fun, c)
	}
	return res, "", nil
}

// ebvKernel is the effective-boolean-value map over a typed column;
// every branch mirrors applyFun's per-kind rule.
func ebvKernel(av bat.Vec, n int) (bat.Vec, string, error) {
	res := make(bat.BoolVec, n)
	switch a := av.(type) {
	case bat.BoolVec:
		copy(res, a)
		return res, ":bool", nil
	case bat.NodeVec:
		for i := range res {
			res[i] = true
		}
		return res, ":node", nil
	case bat.IntVec:
		for i := 0; i < n; i++ {
			res[i] = a[i] != 0
		}
		return res, ":int", nil
	case bat.FloatVec:
		for i := 0; i < n; i++ {
			res[i] = a[i] != 0 && a[i] == a[i]
		}
		return res, ":num", nil
	case bat.StrVec:
		for i := 0; i < n; i++ {
			res[i] = a[i] != ""
		}
		return res, ":str", nil
	}
	return nil, "", nil
}

// arithKernel runs int×int arithmetic on the raw slices. Division (and
// the division-by-zero diagnostics, and xs:integer division's float
// round trip) reproduce the boxed arith() exactly.
func arithKernel(fun algebra.FunKind, av, bv bat.Vec, n int) (bat.Vec, string, error) {
	a, aok := av.(bat.IntVec)
	b, bok := bv.(bat.IntVec)
	if !aok || !bok {
		// Polymorphic operands: per-row boxing stays, but the
		// function-kind dispatch is hoisted out of the loop.
		res := make(bat.ItemVec, n)
		for i := 0; i < n; i++ {
			it, err := arith(fun, av.ItemAt(i), bv.ItemAt(i))
			if err != nil {
				return nil, "", err
			}
			res[i] = it
		}
		return res, "", nil
	}
	switch fun {
	case algebra.FunAdd:
		res := make(bat.IntVec, n)
		for i := 0; i < n; i++ {
			res[i] = a[i] + b[i]
		}
		return res, ":int", nil
	case algebra.FunSub:
		res := make(bat.IntVec, n)
		for i := 0; i < n; i++ {
			res[i] = a[i] - b[i]
		}
		return res, ":int", nil
	case algebra.FunMul:
		res := make(bat.IntVec, n)
		for i := 0; i < n; i++ {
			res[i] = a[i] * b[i]
		}
		return res, ":int", nil
	case algebra.FunDiv:
		res := make(bat.FloatVec, n)
		for i := 0; i < n; i++ {
			if b[i] == 0 {
				_, err := arith(fun, bat.Int(a[i]), bat.Int(b[i]))
				return nil, "", err
			}
			res[i] = float64(a[i]) / float64(b[i])
		}
		return res, ":int", nil
	case algebra.FunIDiv:
		res := make(bat.IntVec, n)
		for i := 0; i < n; i++ {
			if b[i] == 0 {
				_, err := arith(fun, bat.Int(a[i]), bat.Int(b[i]))
				return nil, "", err
			}
			res[i] = int64(float64(a[i]) / float64(b[i]))
		}
		return res, ":int", nil
	case algebra.FunMod:
		res := make(bat.IntVec, n)
		for i := 0; i < n; i++ {
			if b[i] == 0 {
				_, err := arith(fun, bat.Int(a[i]), bat.Int(b[i]))
				return nil, "", err
			}
			res[i] = a[i] % b[i]
		}
		return res, ":int", nil
	}
	return nil, "", nil
}
