package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

// axisDoc is a small document with enough shape to exercise every axis:
//
//	doc(0) a(1) [ b(2) [ c(3) "t1"(4) ] b(5) [ c(6) ] "t2"(7) d(8) ]
const axisDoc = `<a><b><c>t1</c></b><b><c/></b>t2<d/></a>`

func loadAxisDoc(t *testing.T) (*Engine, bat.NodeRef) {
	t.Helper()
	e := New(xenc.NewStore())
	doc, err := e.Store.LoadDocumentString("axis.xml", axisDoc)
	if err != nil {
		t.Fatal(err)
	}
	return e, doc
}

func stepFrom(t *testing.T, e *Engine, ctx []bat.NodeRef, axis algebra.Axis, test algebra.KindTest) []int32 {
	t.Helper()
	iter := make(bat.IntVec, len(ctx))
	for i := range iter {
		iter[i] = 1
	}
	in := algebra.Lit(bat.MustTable("iter", iter, "item", bat.NodeVec(ctx)))
	out := evalOn(t, e, must(algebra.Step(in, axis, test)))
	items := out.MustCol("item")
	pres := make([]int32, out.Rows())
	for i := range pres {
		pres[i] = items.ItemAt(i).N.Pre
	}
	return pres
}

func eq32(a []int32, b ...int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAxesOnFixedDoc(t *testing.T) {
	e, doc := loadAxisDoc(t)
	n := func(pre int32) bat.NodeRef { return bat.NodeRef{Frag: doc.Frag, Pre: pre} }
	anyElem := algebra.KindTest{Kind: algebra.TestElem}
	anyNode := algebra.KindTest{Kind: algebra.TestNode}

	cases := []struct {
		name string
		ctx  []bat.NodeRef
		axis algebra.Axis
		test algebra.KindTest
		want []int32
	}{
		{"child of a", []bat.NodeRef{n(1)}, algebra.Child, anyNode, []int32{2, 5, 7, 8}},
		{"child elem of a", []bat.NodeRef{n(1)}, algebra.Child, anyElem, []int32{2, 5, 8}},
		{"child named b", []bat.NodeRef{n(1)}, algebra.Child, algebra.KindTest{Kind: algebra.TestElem, Name: "b"}, []int32{2, 5}},
		{"desc of a", []bat.NodeRef{n(1)}, algebra.Descendant, anyNode, []int32{2, 3, 4, 5, 6, 7, 8}},
		{"desc text", []bat.NodeRef{n(1)}, algebra.Descendant, algebra.KindTest{Kind: algebra.TestText}, []int32{4, 7}},
		{"desc-or-self c", []bat.NodeRef{n(3)}, algebra.DescendantOrSelf, anyNode, []int32{3, 4}},
		{"parent of c(3)", []bat.NodeRef{n(3)}, algebra.Parent, anyNode, []int32{2}},
		{"ancestor of t1", []bat.NodeRef{n(4)}, algebra.Ancestor, anyNode, []int32{0, 1, 2, 3}},
		{"anc-or-self of c(6)", []bat.NodeRef{n(6)}, algebra.AncestorOrSelf, anyElem, []int32{1, 5, 6}},
		{"following of b(2)", []bat.NodeRef{n(2)}, algebra.Following, anyNode, []int32{5, 6, 7, 8}},
		{"preceding of d", []bat.NodeRef{n(8)}, algebra.Preceding, anyNode, []int32{2, 3, 4, 5, 6, 7}},
		{"following-sibling of b(2)", []bat.NodeRef{n(2)}, algebra.FollowingSibling, anyNode, []int32{5, 7, 8}},
		{"preceding-sibling of d", []bat.NodeRef{n(8)}, algebra.PrecedingSibling, anyElem, []int32{2, 5}},
		{"self elem on text", []bat.NodeRef{n(4)}, algebra.Self, anyElem, nil},
		{"self node on text", []bat.NodeRef{n(4)}, algebra.Self, anyNode, []int32{4}},
		// Multi-context with nesting: desc of {a, b(2)} prunes b(2).
		{"desc multi nested", []bat.NodeRef{n(1), n(2)}, algebra.Descendant, anyNode, []int32{2, 3, 4, 5, 6, 7, 8}},
		// Multi-context following: staircase boundary is min(end(b2), end(b5)).
		{"following multi", []bat.NodeRef{n(2), n(5)}, algebra.Following, anyNode, []int32{5, 6, 7, 8}},
		{"child multi", []bat.NodeRef{n(2), n(5)}, algebra.Child, anyNode, []int32{3, 6}},
	}
	for _, c := range cases {
		got := stepFrom(t, e, c.ctx, c.axis, c.test)
		if !eq32(got, c.want...) {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
}

func TestAttributeAxis(t *testing.T) {
	e := New(xenc.NewStore())
	doc, err := e.Store.LoadDocumentString("a.xml", `<r id="1" class="x"><s id="2"/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	r := bat.NodeRef{Frag: doc.Frag, Pre: 1}
	got := stepFrom(t, e, []bat.NodeRef{r}, algebra.Attribute, algebra.KindTest{Kind: algebra.TestAttr})
	if len(got) != 2 {
		t.Fatalf("attr count = %d", len(got))
	}
	byName := stepFrom(t, e, []bat.NodeRef{r}, algebra.Attribute,
		algebra.KindTest{Kind: algebra.TestAttr, Name: "id"})
	if len(byName) != 1 {
		t.Fatalf("@id count = %d", len(byName))
	}
	ref := bat.NodeRef{Frag: doc.Frag, Pre: byName[0]}
	if e.Store.StringValue(ref) != "1" {
		t.Errorf("@id value = %q", e.Store.StringValue(ref))
	}
	// Parent of the attribute is <r>.
	par := stepFrom(t, e, []bat.NodeRef{ref}, algebra.Parent, algebra.KindTest{Kind: algebra.TestNode})
	if !eq32(par, 1) {
		t.Errorf("attr parent = %v", par)
	}
}

func TestUnknownNameTestMatchesNothing(t *testing.T) {
	e, doc := loadAxisDoc(t)
	got := stepFrom(t, e, []bat.NodeRef{doc}, algebra.Descendant,
		algebra.KindTest{Kind: algebra.TestElem, Name: "nosuchtag"})
	if len(got) != 0 {
		t.Errorf("unknown tag matched %v", got)
	}
}

func TestStepGroupsByIter(t *testing.T) {
	e, doc := loadAxisDoc(t)
	in := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{2, 1},
		"item", bat.NodeVec{{Frag: doc.Frag, Pre: 2}, {Frag: doc.Frag, Pre: 5}},
	))
	out := evalOn(t, e, must(algebra.Step(in, algebra.Child, algebra.KindTest{Kind: algebra.TestNode})))
	iters := ints(t, out, "iter")
	if !eqInts(iters, 1, 2) {
		t.Errorf("iter order = %v", iters)
	}
	items := out.MustCol("item")
	if items.ItemAt(0).N.Pre != 6 || items.ItemAt(1).N.Pre != 3 {
		t.Error("per-iter results wrong")
	}
}

func TestStepDuplicateContextsDeduped(t *testing.T) {
	e, doc := loadAxisDoc(t)
	a := bat.NodeRef{Frag: doc.Frag, Pre: 1}
	got := stepFrom(t, e, []bat.NodeRef{a, a, a}, algebra.Child, algebra.KindTest{Kind: algebra.TestNode})
	if !eq32(got, 2, 5, 7, 8) {
		t.Errorf("dup contexts = %v", got)
	}
}

// randomTree builds a random document string and returns it.
func randomTree(r *rand.Rand) string {
	var sb strings.Builder
	tags := []string{"a", "b", "c"}
	var emit func(d int)
	emit = func(d int) {
		tag := tags[r.Intn(len(tags))]
		sb.WriteString("<" + tag + ">")
		n := r.Intn(4)
		for i := 0; i < n && d < 5; i++ {
			if r.Intn(3) == 0 {
				fmt.Fprintf(&sb, "x%d", r.Intn(5))
			} else {
				emit(d + 1)
			}
		}
		sb.WriteString("</" + tag + ">")
	}
	emit(0)
	return sb.String()
}

// Property: for every axis, the staircase join and the naive region-query
// evaluation agree on random documents and random context sets.
func TestQuickStaircaseEquivalentToNaive(t *testing.T) {
	axes := []algebra.Axis{
		algebra.Child, algebra.Descendant, algebra.DescendantOrSelf,
		algebra.Parent, algebra.Ancestor, algebra.AncestorOrSelf,
		algebra.Following, algebra.Preceding,
		algebra.FollowingSibling, algebra.PrecedingSibling, algebra.Self,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		store := xenc.NewStore()
		doc, err := store.LoadDocumentString("q.xml", randomTree(r))
		if err != nil {
			return false
		}
		frag := store.Frag(doc.Frag)
		nNodes := frag.NodeCount()
		nCtx := r.Intn(4) + 1
		ctx := make([]bat.NodeRef, nCtx)
		iter := make(bat.IntVec, nCtx)
		for i := range ctx {
			ctx[i] = bat.NodeRef{Frag: doc.Frag, Pre: int32(r.Intn(nNodes))}
			iter[i] = 1
		}
		in := algebra.Lit(bat.MustTable("iter", iter, "item", bat.NodeVec(ctx)))
		for _, axis := range axes {
			st := New(store)
			st.Staircase = true
			nv := New(store)
			nv.Staircase = false
			plan := must(algebra.Step(in, axis, algebra.KindTest{Kind: algebra.TestNode}))
			a, err1 := st.Eval(plan)
			b, err2 := nv.Eval(plan)
			if err1 != nil || err2 != nil {
				t.Logf("axis %s: %v %v", axis, err1, err2)
				return false
			}
			if a.String() != b.String() {
				t.Logf("axis %s differs on seed %d:\nstaircase:\n%s\nnaive:\n%s",
					axis, seed, a.String(), b.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: descendant results are strictly document-ordered and
// duplicate-free per iter, for random context sets (the
// fs:distinct-doc-order contract of the step operator).
func TestQuickStepResultOrderedDistinct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		store := xenc.NewStore()
		doc, err := store.LoadDocumentString("q.xml", randomTree(r))
		if err != nil {
			return false
		}
		frag := store.Frag(doc.Frag)
		nCtx := r.Intn(5) + 1
		ctx := make(bat.NodeVec, nCtx)
		iter := make(bat.IntVec, nCtx)
		for i := range ctx {
			ctx[i] = bat.NodeRef{Frag: doc.Frag, Pre: int32(r.Intn(frag.NodeCount()))}
			iter[i] = int64(r.Intn(2) + 1)
		}
		e := New(store)
		in := algebra.Lit(bat.MustTable("iter", iter, "item", ctx))
		for _, axis := range []algebra.Axis{algebra.Descendant, algebra.Ancestor, algebra.Following, algebra.Preceding} {
			out, err := e.Eval(must(algebra.Step(in, axis, algebra.KindTest{Kind: algebra.TestNode})))
			if err != nil {
				return false
			}
			oi, _ := out.Ints("iter")
			items := out.MustCol("item")
			for i := 1; i < out.Rows(); i++ {
				if oi[i] < oi[i-1] {
					return false
				}
				if oi[i] == oi[i-1] && items.ItemAt(i).N.Pre <= items.ItemAt(i-1).N.Pre {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStepAcrossFragments(t *testing.T) {
	e := New(xenc.NewStore())
	d1, err := e.Store.LoadDocumentString("one.xml", "<a><x/></a>")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.Store.LoadDocumentString("two.xml", "<b><x/><x/></b>")
	if err != nil {
		t.Fatal(err)
	}
	in := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1},
		"item", bat.NodeVec{d2, d1}, // out of doc order on purpose
	))
	out := evalOn(t, e, must(algebra.Step(in, algebra.Descendant,
		algebra.KindTest{Kind: algebra.TestElem, Name: "x"})))
	if out.Rows() != 3 {
		t.Fatalf("rows = %d", out.Rows())
	}
	items := out.MustCol("item")
	// Fragment order: d1's x first, then d2's two x's.
	if items.ItemAt(0).N.Frag != d1.Frag || items.ItemAt(1).N.Frag != d2.Frag {
		t.Error("fragment order in result")
	}
}
