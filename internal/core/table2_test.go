package core

import "testing"

// TestTable2DialectCoverage runs one query per construct of Table 2 in the
// paper ("XQuery dialect supported by Pathfinder") through the complete
// relational pipeline, pinning the full dialect surface.
func TestTable2DialectCoverage(t *testing.T) {
	eng := newEng(t)
	constructs := []struct {
		construct string
		query     string
		want      string
	}{
		{"atomic literals", `42`, "42"},
		{"sequences (e1, e2)", `(1, 2)`, "1 2"},
		{"variables ($v)", `let $v := 7 return $v`, "7"},
		{"let $v := e1 return e2", `let $v := 3 return $v * $v`, "9"},
		{"for $v in e1 return e2", `for $v in (1,2) return $v + 1`, "2 3"},
		{"if e1 then e2 else e3", `if (1 < 2) then "a" else "b"`, "a"},
		{"typeswitch clauses",
			`typeswitch (1.5) case xs:integer return "i" case xs:double return "d" default return "?"`, "d"},
		{"element { e1 } { e2 }", `element {"x"} {"y"}`, "<x>y</x>"},
		{"text { e }", `text {"z"}`, "z"},
		{"e1 order by e2,...,en",
			`for $x in (3,1,2) order by $x return $x`, "1 2 3"},
		{"XPath (e/α::ν)", `count(/site/child::people/descendant::name)`, "3"},
		{"document order (e1 << e2)", `(//person)[1] << (//person)[2]`, "true"},
		{"node identity (e1 is e2)", `(//person)[1] is (//person)[1]`, "true"},
		{"arithmetics (+, -, ...)", `1 + 2 * 3 - 4`, "3"},
		{"comparisons (eq, lt, ...)", `2 lt 3`, "true"},
		{"Boolean operators (and, or, ...)", `1 = 1 and not(2 = 3)`, "true"},
		{"fn:doc(e)", `count(doc("auction.xml"))`, "1"},
		{"fn:root(e)", `count(root((//name)[1]))`, "1"},
		{"fn:data(e)", `data((//income)[1]) + 0`, "50000"},
		{"fs:distinct-doc-order(e)", `count(fs:distinct-doc-order((//person, //person)))`, "3"},
		{"fn:count(e)", `count(//person)`, "3"},
		{"fn:sum(e)", `sum((1, 2, 3))`, "6"},
		{"fn:empty(e)", `empty(())`, "true"},
		{"fn:position()", `for $x in ("a","b") return position()`, "1 2"},
		{"fn:last()", `for $x in ("a","b") return last()`, "2 2"},
		{"user defined functions",
			`declare function local:sq($x) { $x * $x }; local:sq(5)`, "25"},
	}
	for _, c := range constructs {
		got := run(t, eng, c.query)
		if got != c.want {
			t.Errorf("Table 2 construct %q: %s = %q, want %q",
				c.construct, c.query, got, c.want)
		}
	}
}

// TestExtendedDialect pins the constructs beyond Table 2 that the XMark
// workload (and common XPath use) requires.
func TestExtendedDialect(t *testing.T) {
	eng := newEng(t)
	constructs := map[string]string{
		`for $i in 1 to 4 return $i`:                   "1 2 3 4",
		`count(//person | //price)`:                    "6",
		`count((//person, //price) intersect //price)`: "3",
		`count((//person, //price) except //price)`:    "3",
		`distinct-values((3, 1, 3, 2, 1))`:             "3 1 2",
		`substring("motor car", 6)`:                    " car",
		`substring("metadata", 4, 3)`:                  "ada",
		`name((//person)[1])`:                          "person",
		`name((//person)[1]/@id)`:                      "id",
		`some $x in (1,2) satisfies $x = 2`:            "true",
		`every $x in (1,2) satisfies $x = 2`:           "false",
		`string-join(("a","b","c"), "+")`:              "a+b+c",
		`(//person)[2]/name/text()`:                    "Bob",
		`//person[@id = "p3"]/name/text()`:             "Carol",
		`for $x at $i in ("a","b") return $i`:          "1 2",
	}
	for q, want := range constructs {
		if got := run(t, eng, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}
