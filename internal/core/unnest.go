package core

import (
	"pathfinder/internal/algebra"
	"pathfinder/internal/xqcore"
)

// tryUnnest implements the compiler's join recognition ([3], §1 "A join
// recognition logic in our compiler"). It fires on the Core pattern
//
//	for $v in E return if (A cmp B) then T else ()
//
// (the normalization of `for $v in E where A cmp B return T`) when
//
//   - E is loop-invariant (no free variables — e.g. a path rooted in
//     fn:doc), and
//   - one comparison side depends on $v only, the other not on $v at all.
//
// Instead of lifting E into the enclosing loop (materializing |loop|·|E|
// rows before filtering), the $v-dependent side is evaluated once in E's
// own iteration space, the other side in the enclosing scope, and the two
// are joined on the comparison: an equi-join (hash) when the comparison is
// `=` over hash-compatible types, a theta-join (× + σ) otherwise — the
// Q11/Q12 quadratic case the paper discusses. The surviving (inner, outer)
// pairs become the restricted iteration space for T.
func (c *Compiler) tryUnnest(f *xqcore.For, s *scope) (*algebra.Op, bool) {
	if f.PosVar != "" || len(f.Order) > 0 {
		return nil, false
	}
	// Peel let bindings between the for and its where-condition; they can
	// commute past the condition when it does not reference them, turning
	// `for $v in E return let $w := X return if (C) then T else ()` into
	// the canonical unnesting shape with `let $w := X return T` as body.
	var lets []*xqcore.Let
	body := f.Body
	for {
		l, isLet := body.(*xqcore.Let)
		if !isLet {
			break
		}
		lets = append(lets, l)
		body = l.Body
	}
	iff, ok := body.(*xqcore.If)
	if !ok {
		return nil, false
	}
	if _, ok := iff.Else.(*xqcore.Empty); !ok {
		return nil, false
	}
	condFree := xqcore.FreeVars(iff.Cond)
	for _, l := range lets {
		if condFree[l.Var] {
			return nil, false
		}
	}
	if len(lets) > 0 {
		then := iff.Then
		for i := len(lets) - 1; i >= 0; i-- {
			then = xqcore.NewLet(lets[i].Var, lets[i].Bound, then)
		}
		iff = &xqcore.If{Cond: iff.Cond, Then: then, Else: iff.Else}
	}
	if len(xqcore.FreeVars(f.In)) != 0 {
		return nil, false
	}
	if xqcore.UsesPositionOrLast(f.In) || xqcore.UsesPositionOrLast(iff.Cond) ||
		xqcore.UsesPositionOrLast(iff.Then) {
		return nil, false
	}

	// The condition may be a conjunction; pick one separable comparison
	// as the join predicate and push the remaining conjuncts into the
	// then-branch as residual filters (evaluated in the restricted
	// post-join scope).
	conjuncts := flattenAnd(iff.Cond)
	var op string
	var vSide, oSide xqcore.Expr
	joinIdx := -1
	for i, cj := range conjuncts {
		cop, l, r, okCmp := comparisonParts(cj)
		if !okCmp {
			continue
		}
		lf, rf := xqcore.FreeVars(l), xqcore.FreeVars(r)
		switch {
		case onlyVar(lf, f.Var) && !rf[f.Var]:
			vSide, oSide, op, joinIdx = l, r, cop, i
		case onlyVar(rf, f.Var) && !lf[f.Var]:
			vSide, oSide, op, joinIdx = r, l, swapCmp(cop), i
		default:
			continue
		}
		// Prefer an equi-join conjunct over a theta one.
		if op == "=" {
			break
		}
	}
	if joinIdx < 0 {
		return nil, false
	}
	if usesImplicitContext(oSide) {
		return nil, false
	}
	// Residual conjuncts wrap the then-branch in nested conditionals.
	then := iff.Then
	for i := len(conjuncts) - 1; i >= 0; i-- {
		if i == joinIdx {
			continue
		}
		then = &xqcore.If{Cond: conjuncts[i], Then: then, Else: xqcore.NewEmpty()}
	}
	iff = &xqcore.If{Cond: iff.Cond, Then: then, Else: iff.Else}

	// Inner space: E compiled once in the top-level scope.
	sTop := &scope{loop: topLoop(), env: map[string]binding{}}
	q1 := c.comp(f.In, sTop)
	qv := c.must(algebra.RowNum(q1, "inner",
		[]algebra.OrderSpec{{Col: "iter"}, {Col: "pos"}}, ""))
	innerLoop := c.must(algebra.Project(qv, "iter:inner"))
	sInner := &scope{loop: innerLoop, env: map[string]binding{}}
	sInner.env[f.Var] = binding{plan: c.singletonFrom(qv, "inner", "item"), loop: innerLoop}

	qA := c.comp(vSide, sInner) // |E|-space
	qB := c.comp(oSide, s)      // enclosing-loop space

	a := c.must(algebra.Project(qA, "ai:iter", "aitem:item"))
	b := c.must(algebra.Project(qB, "bi:iter", "bitem:item"))
	var pairs *algebra.Op
	if op == "=" && hashCompatible(vSide.Ty(), oSide.Ty()) {
		pairs = c.must(algebra.Join(a, b, []string{"aitem"}, []string{"bitem"}))
		c.stats.EquiJoins++
	} else {
		crossed := c.must(algebra.Cross(a, b))
		cmp := c.must(algebra.Fun(crossed, "cres", genFun[op], "aitem", "bitem"))
		pairs = c.must(algebra.Select(cmp, "cres"))
		c.stats.ThetaJoins++
	}
	// The comparison is existential per (inner, outer) pair.
	dpairs := algebra.Distinct(c.must(algebra.Project(pairs, "ai", "bi")))

	// Restricted s2 space: one iteration per surviving pair, numbered in
	// (outer, binding) order.
	rn := c.must(algebra.RowNum(dpairs, "s2",
		[]algebra.OrderSpec{{Col: "bi"}, {Col: "ai"}}, ""))
	loop2 := c.must(algebra.Project(rn, "iter:s2"))

	s2 := &scope{loop: loop2, env: map[string]binding{}}
	// $v in s2: fetch the binding item through the inner space.
	vv := c.must(algebra.Project(qv, "vin:inner", "vitem:item"))
	vj := c.must(algebra.Join(rn, vv, []string{"ai"}, []string{"vin"}))
	s2.env[f.Var] = binding{plan: c.singletonFrom(vj, "s2", "vitem"), loop: loop2}

	// Outer variables lift through the pair relation on the outer side.
	for w := range xqcore.FreeVars(iff.Then) {
		if w == f.Var {
			continue
		}
		if _, ok := s.env[w]; !ok {
			continue
		}
		renamed := c.must(algebra.Project(c.lookup(s, w),
			"witer:iter", "wpos:pos", "witem:item"))
		j := c.must(algebra.Join(renamed, rn, []string{"witer"}, []string{"bi"}))
		lifted := c.must(algebra.Project(j, "iter:s2", "pos:wpos", "item:witem"))
		s2.env[w] = binding{plan: lifted, loop: loop2}
	}

	qT := c.comp(iff.Then, s2)
	backMap := c.must(algebra.Project(rn, "s2b:s2", "aio:ai", "bio:bi"))
	back := c.must(algebra.Join(qT, backMap, []string{"iter"}, []string{"s2b"}))
	rn2 := c.must(algebra.RowNum(back, "pos1",
		[]algebra.OrderSpec{{Col: "aio"}, {Col: "pos"}}, "bio"))
	return c.must(algebra.Project(rn2, "iter:bio", "pos:pos1", "item")), true
}

// flattenAnd splits a right/left-nested `and` chain into its conjuncts.
func flattenAnd(e xqcore.Expr) []xqcore.Expr {
	if b, ok := e.(*xqcore.BinOp); ok && b.Op == "and" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []xqcore.Expr{e}
}

// comparisonParts extracts the operator and operands of a general or value
// comparison condition, mapping value comparisons onto their general
// counterparts (both compile to the same row functions).
func comparisonParts(cond xqcore.Expr) (op string, l, r xqcore.Expr, ok bool) {
	switch x := cond.(type) {
	case *xqcore.GenCmp:
		return x.Op, x.L, x.R, true
	case *xqcore.BinOp:
		m := map[string]string{"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
		if g, found := m[x.Op]; found {
			return g, x.L, x.R, true
		}
	}
	return "", nil, nil, false
}

func onlyVar(free map[string]bool, v string) bool {
	if !free[v] {
		return false
	}
	for w := range free {
		if w != v {
			return false
		}
	}
	return true
}

func swapCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and != are symmetric
}

// hashCompatible reports whether hash-key equality coincides with the
// XQuery general-= semantics for the two static types: both string-ish
// (untyped/untyped compares as strings) or both numeric. Mixed or unknown
// classes fall back to the theta path, which applies full comparison
// semantics row by row.
func hashCompatible(a, b xqcore.Type) bool {
	strish := func(c xqcore.ItemClass) bool {
		return c == xqcore.IStr || c == xqcore.IUntyped
	}
	numish := func(c xqcore.ItemClass) bool {
		return c == xqcore.IInt || c == xqcore.IDbl || c == xqcore.INum
	}
	return strish(a.Item) && strish(b.Item) || numish(a.Item) && numish(b.Item)
}

// usesImplicitContext reports whether e references the implicit for
// context (position()/last()), which the unnested form cannot supply.
func usesImplicitContext(e xqcore.Expr) bool {
	return xqcore.UsesPositionOrLast(e)
}
