package core_test

import (
	"fmt"
	"log"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

// The complete pipeline: load a document, compile and run a query.
func ExampleRun() {
	eng := engine.New(xenc.NewStore())
	if _, err := eng.Store.LoadDocumentString("cities.xml",
		`<cities><city pop="900">Amsterdam</city><city pop="3700">Berlin</city></cities>`); err != nil {
		log.Fatal(err)
	}
	out, err := core.Run(
		`for $c in /cities/city where $c/@pop > 1000 return $c/text()`,
		eng, xqcore.Options{ContextDoc: "cities.xml"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output: Berlin
}

// Compiling without executing: inspect the loop-lifted plan.
func ExampleCompileQuery() {
	plan, _, err := core.CompileQuery(`for $v in (10,20) return $v + 100`, xqcore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Schema())
	fmt.Println(algebra.CountOps(plan) > 10)
	// Output:
	// [iter pos item]
	// true
}
