package core

import (
	"pathfinder/internal/engine"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xqcore"
)

// Run compiles and executes a query string against an engine (whose store
// holds the loaded documents) and returns the serialized result — the full
// Pathfinder pipeline: parse → normalize → loop-lift → evaluate →
// post-process.
func Run(src string, eng *engine.Engine, opt xqcore.Options) (string, error) {
	plan, _, err := CompileQuery(src, opt)
	if err != nil {
		return "", err
	}
	res, err := eng.Eval(plan)
	if err != nil {
		return "", err
	}
	return serialize.Result(eng.Store, res)
}
