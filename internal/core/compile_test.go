package core

import (
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/engine"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

// auctionDoc is a miniature XMark-shaped document used across the
// compiler tests.
const auctionDoc = `<site>
 <people>
  <person id="p1"><name>Alice</name><income>50000</income></person>
  <person id="p2"><name>Bob</name></person>
  <person id="p3"><name>Carol</name><income>90000</income></person>
 </people>
 <open_auctions>
  <open_auction id="a1"><seller person="p1"/><bidder><increase>5</increase></bidder><bidder><increase>20</increase></bidder><current>25</current></open_auction>
  <open_auction id="a2"><seller person="p3"/><current>7</current></open_auction>
 </open_auctions>
 <closed_auctions>
  <closed_auction><buyer person="p1"/><price>40</price></closed_auction>
  <closed_auction><buyer person="p1"/><price>60</price></closed_auction>
  <closed_auction><buyer person="p2"/><price>10</price></closed_auction>
 </closed_auctions>
</site>`

func newEng(t *testing.T) *engine.Engine {
	t.Helper()
	eng := engine.New(xenc.NewStore())
	if _, err := eng.Store.LoadDocumentString("auction.xml", auctionDoc); err != nil {
		t.Fatal(err)
	}
	return eng
}

func run(t *testing.T, eng *engine.Engine, src string) string {
	t.Helper()
	out, err := Run(src, eng, xqcore.Options{ContextDoc: "auction.xml"})
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return out
}

func runErr(t *testing.T, eng *engine.Engine, src string) error {
	t.Helper()
	_, err := Run(src, eng, xqcore.Options{ContextDoc: "auction.xml"})
	if err == nil {
		t.Fatalf("run %q: expected error", src)
	}
	return err
}

func TestLiteralAndSequence(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`42`:              "42",
		`"hello"`:         "hello",
		`3.5`:             "3.5",
		`(1, 2, 3)`:       "1 2 3",
		`()`:              "",
		`(1, (2, 3), ())`: "1 2 3",
		`(5, "x", "x")`:   "5 x x",
		`true()`:          "true",
		`false()`:         "false",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`1 + 2`:      "3",
		`10 - 2 * 3`: "4",
		`7 div 2`:    "3.5",
		`7 idiv 2`:   "3",
		`7 mod 2`:    "1",
		`-5 + 2`:     "-3",
		`1 + 2.5`:    "3.5",
		`() + 1`:     "",
		`1 + ()`:     "",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestFigure3ForLoop(t *testing.T) {
	eng := newEng(t)
	// The paper's running example, Figure 3.
	got := run(t, eng, `for $v in (10,20), $w in (100,200) return $v + $w`)
	if got != "110 210 120 220" {
		t.Errorf("figure 3 result = %q, want %q", got, "110 210 120 220")
	}
	// And Figure 5's query.
	if got := run(t, eng, `for $v in (10,20) return $v + 100`); got != "110 120" {
		t.Errorf("figure 5 result = %q", got)
	}
}

func TestLetAndShadowing(t *testing.T) {
	eng := newEng(t)
	if got := run(t, eng, `let $x := (1,2) return ($x, $x)`); got != "1 2 1 2" {
		t.Errorf("let = %q", got)
	}
	if got := run(t, eng, `for $x in (1,2) return let $x := $x + 10 return $x`); got != "11 12" {
		t.Errorf("shadowing = %q", got)
	}
}

func TestConditionals(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`if (1 = 1) then "yes" else "no"`:                             "yes",
		`if (1 = 2) then "yes" else "no"`:                             "no",
		`if (()) then "yes" else "no"`:                                "no",
		`if ((1)) then "yes" else "no"`:                               "yes",
		`if ("") then "yes" else "no"`:                                "no",
		`if (0) then "yes" else "no"`:                                 "no",
		`for $x in (1,2,3) return if ($x mod 2 = 1) then $x else ()`:  "1 3",
		`for $x in (1,2,3) return if ($x mod 2 = 1) then $x else -$x`: "1 -2 3",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestBranchRestrictionOnVariables(t *testing.T) {
	eng := newEng(t)
	// $v must only appear in iterations where the branch is live.
	got := run(t, eng, `for $v in (1,2,3,4) return if ($v > 2) then $v else "no"`)
	if got != "no no 3 4" {
		t.Errorf("restricted branches = %q", got)
	}
}

func TestComparisons(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`1 < 2`:          "true",
		`2 <= 1`:         "false",
		`(1,2,3) = 2`:    "true",
		`(1,2,3) = 9`:    "false",
		`(1,2) != (1,2)`: "true", // existential: 1 != 2
		`(1,1) != (1,1)`: "false",
		`() = 1`:         "false",
		`1 eq 1`:         "true",
		`"a" lt "b"`:     "true",
		`2 ge 3`:         "false",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`1 = 1 and 2 = 2`:   "true",
		`1 = 1 and 2 = 3`:   "false",
		`1 = 2 or 2 = 2`:    "true",
		`not(1 = 2)`:        "true",
		`empty(())`:         "true",
		`empty((1))`:        "false",
		`exists(//person)`:  "true",
		`exists(//nothing)`: "false",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestPathsAndSteps(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`count(/site/people/person)`:                 "3",
		`count(//person)`:                            "3",
		`count(//person/@id)`:                        "3",
		`/site/people/person[1]/name/text()`:         "Alice",
		`/site/people/person[last()]/name/text()`:    "Carol",
		`count(//person/name/..)`:                    "3",
		`count(/site/*)`:                             "3",
		`count(//node())`:                            "43",
		`(//person)[2]/name/text()`:                  "Bob",
		`count(//person[income])`:                    "2",
		`//person[@id = "p2"]/name/text()`:           "Bob",
		`count(//increase/ancestor::open_auction)`:   "1",
		`//increase/ancestor::open_auction/@id`:      `id="a1"`,
		`count(//bidder/following-sibling::*)`:       "2",
		`count(//person/descendant-or-self::node())`: "13",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestStepsDeduplicateAcrossContexts(t *testing.T) {
	eng := newEng(t)
	// Two paths to the same ancestors: ddo semantics must deduplicate.
	got := run(t, eng, `count(//text()/ancestor::site)`)
	if got != "1" {
		t.Errorf("ancestor dedup = %q", got)
	}
}

func TestAtomizationAndData(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`data(//person[@id="p1"]/income)`:  "50000",
		`//person[@id="p1"]/income + 1`:    "50001",
		`string(//person[1]/name)`:         "Alice",
		`string(())`:                       "",
		`number("4.5") * 2`:                "9",
		`string-length("hello")`:           "5",
		`string-length(())`:                "0",
		`concat("a", "b", "c")`:            "abc",
		`contains("gold ring", "gold")`:    "true",
		`starts-with("gold ring", "ring")`: "false",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestAggregatesEndToEnd(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`count(//closed_auction)`: "3",
		`sum(//price)`:            "110",
		`sum(())`:                 "0",
		`count(())`:               "0",
		`max(//price)`:            "60",
		`min(//price)`:            "10",
		`avg((2, 4))`:             "3",
		// Aggregates inside loops get per-iteration defaults.
		`for $p in //person return count($p/income)`: "1 0 1",
		`for $p in //person return sum($p/income)`:   "50000 0 90000",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestQuantifiers(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`some $x in (1,2,3) satisfies $x > 2`:             "true",
		`some $x in (1,2,3) satisfies $x > 5`:             "false",
		`every $x in (1,2,3) satisfies $x > 0`:            "true",
		`every $x in (1,2,3) satisfies $x > 1`:            "false",
		`some $x in () satisfies $x > 0`:                  "false",
		`every $x in () satisfies $x > 0`:                 "true",
		`some $p in //person satisfies $p/income > 80000`: "true",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestNodeComparisons(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`(//person)[1] << (//person)[2]`: "true",
		`(//person)[2] << (//person)[1]`: "false",
		`(//person)[1] >> (//person)[2]`: "false",
		`(//person)[1] is (//person)[1]`: "true",
		`(//person)[1] is (//person)[2]`: "false",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestConstructors(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`<a/>`:                                  `<a/>`,
		`<a x="1">t</a>`:                        `<a x="1">t</a>`,
		`<a>{1 + 1}</a>`:                        `<a>2</a>`,
		`<a>{(1,2)}</a>`:                        `<a>1 2</a>`,
		`<a>x{1}y</a>`:                          `<a>x1y</a>`,
		`<out>{//person[1]/name}</out>`:         `<out><name>Alice</name></out>`,
		`element foo {"bar"}`:                   `<foo>bar</foo>`,
		`element {concat("a","b")} {1}`:         `<ab>1</ab>`,
		`text {"hi"}`:                           `hi`,
		`text {()}`:                             ``,
		`<e>{attribute n {42}}</e>`:             `<e n="42"/>`,
		`<p name="{//person[1]/name/text()}"/>`: `<p name="Alice"/>`,
		`<w>{//person[2]}</w>`:                  `<w><person id="p2"><name>Bob</name></person></w>`,
		`for $i in (1,2) return <n v="{$i}"/>`:  `<n v="1"/><n v="2"/>`,
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestConstructedNodesAreCopies(t *testing.T) {
	eng := newEng(t)
	// The copied subtree has a new identity: parent of copy is the new element.
	got := run(t, eng, `count((<w>{//person[1]/name}</w>)/name/ancestor::w)`)
	if got != "1" {
		t.Errorf("navigating constructed tree = %q", got)
	}
	got2 := run(t, eng, `(<w>{//person[1]/name}</w>)/name is (//person)[1]/name`)
	if got2 != "false" {
		t.Errorf("copy identity = %q", got2)
	}
}

func TestDocAndRoot(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`count(doc("auction.xml")/site)`:          "1",
		`count(root((//name)[1])/site)`:           "1",
		`root((//name)[1]) is doc("auction.xml")`: "true",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestOrderBy(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`for $x in (3,1,2) order by $x return $x`:                                    "1 2 3",
		`for $x in (3,1,2) order by $x descending return $x`:                         "3 2 1",
		`for $p in //person order by $p/name/text() descending return data($p/name)`: "Carol Bob Alice",
		// Empty keys sort first (empty least).
		`for $p in //person order by $p/income return string($p/@id)`: "p2 p1 p3",
		// Multiple keys.
		`for $x in (3,1,2,1) order by $x mod 2, $x return $x`: "2 1 1 3",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestPositionAndLast(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`for $x in ("a","b","c") return position()`:                            "1 2 3",
		`for $x in ("a","b","c") return last()`:                                "3 3 3",
		`for $x at $i in ("a","b") return ($i, $x)`:                            "1 a 2 b",
		`for $x in (10,20,30) return if (position() = last()) then $x else ()`: "30",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestTypeswitchEndToEnd(t *testing.T) {
	eng := newEng(t)
	cases := map[string]string{
		`typeswitch (1) case xs:integer return "int" default return "other"`:                                "int",
		`typeswitch ("s") case xs:integer return "int" case xs:string return "str" default return "other"`:  "str",
		`typeswitch (//person[1]) case element(person) return "p" default return "o"`:                       "p",
		`typeswitch (//person[1]) case element(item) return "i" default return "o"`:                         "o",
		`typeswitch ((1,2)) case xs:integer return "one" case xs:integer+ return "many" default return "o"`: "many",
		`typeswitch (()) case xs:integer? return "opt" default return "o"`:                                  "opt",
		`typeswitch (1.5) case $d as xs:double return $d * 2 default return 0`:                              "3",
	}
	for src, want := range cases {
		if got := run(t, eng, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestWhereClause(t *testing.T) {
	eng := newEng(t)
	got := run(t, eng, `for $p in //person where $p/income > 60000 return $p/name/text()`)
	if got != "Carol" {
		t.Errorf("where = %q", got)
	}
	got2 := run(t, eng, `for $p in //person where empty($p/income) return string($p/@id)`)
	if got2 != "p2" {
		t.Errorf("where empty = %q", got2)
	}
}

func TestUDFConvert(t *testing.T) {
	eng := newEng(t)
	got := run(t, eng, `
		declare function local:double($v) { 2 * $v };
		for $p in //price return local:double($p)`)
	if got != "80 120 20" {
		t.Errorf("udf = %q", got)
	}
}

// Join recognition ------------------------------------------------------------------

func q8Query() string {
	return `for $p in doc("auction.xml")/site/people/person
	 let $a := for $t in doc("auction.xml")/site/closed_auctions/closed_auction
	           where $t/buyer/@person = $p/@id
	           return $t
	 return <item person="{$p/name/text()}">{count($a)}</item>`
}

func TestQ8ShapeJoinRecognition(t *testing.T) {
	eng := newEng(t)
	got := run(t, eng, q8Query())
	want := `<item person="Alice">2</item><item person="Bob">1</item><item person="Carol">0</item>`
	if got != want {
		t.Errorf("Q8 = %q, want %q", got, want)
	}
	// The compiler's join recognition must turn the nested FLWOR into a
	// value equi-join (the paper's [3]).
	coreExpr, err := xqcore.NormalizeExpr(q8Query(), xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := CompileWithStats(coreExpr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EquiJoins != 1 || stats.ThetaJoins != 0 {
		t.Errorf("join recognition stats = %+v, want one equi-join", stats)
	}
}

func TestThetaJoinShape(t *testing.T) {
	eng := newEng(t)
	// Q11-style theta join: income > 5000 * increase.
	got := run(t, eng, `
	 for $p in doc("auction.xml")/site/people/person
	 let $l := for $i in doc("auction.xml")/site/open_auctions/open_auction/bidder/increase
	           where $p/income > 5000 * $i
	           return $i
	 return <r n="{$p/name/text()}">{count($l)}</r>`)
	// incomes: Alice 50000 (5000*5=25000 yes, 5000*20=100000 no → 1),
	// Bob none (comparison false → 0), Carol 90000 (25000 yes, 100000 no → 1).
	want := `<r n="Alice">1</r><r n="Bob">0</r><r n="Carol">1</r>`
	if got != want {
		t.Errorf("theta join = %q, want %q", got, want)
	}
}

func TestUnnestPreservesOrderAndDuplicates(t *testing.T) {
	eng := newEng(t)
	// Multiple matches per outer binding: both closed auctions of p1, in
	// document order.
	got := run(t, eng, `
	 for $p in //person
	 return for $t in doc("auction.xml")/site/closed_auctions/closed_auction
	        where $t/buyer/@person = $p/@id
	        return data($t/price)`)
	if got != "40 60 10" {
		t.Errorf("unnested result order = %q", got)
	}
}

func TestConjunctiveJoinRecognition(t *testing.T) {
	eng := newEng(t)
	// A conjunction: the equi-comparison becomes the join predicate, the
	// price filter a residual condition in the post-join scope.
	q := `for $p in //person
	 return count(for $t in doc("auction.xml")/site/closed_auctions/closed_auction
	        where $t/buyer/@person = $p/@id and $t/price > 50
	        return $t)`
	got := run(t, eng, q)
	if got != "1 0 0" {
		t.Errorf("conjunctive where = %q", got)
	}
	coreExpr, err := xqcore.NormalizeExpr(q, xqcore.Options{ContextDoc: "auction.xml"})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := CompileWithStats(coreExpr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EquiJoins != 1 {
		t.Errorf("conjunctive condition must still unnest: %+v", stats)
	}
}

func TestUnnestFallbacksStillCorrect(t *testing.T) {
	eng := newEng(t)
	// Both variables appear on one comparison side → not separable → the
	// generic lifted plan runs, and must still be correct.
	q := `for $p in //person
	 return count(for $t in doc("auction.xml")/site/closed_auctions/closed_auction
	        where (if ($t/buyer/@person = $p/@id) then 1 else ()) = 1
	        return $t)`
	got := run(t, eng, q)
	if got != "2 1 0" {
		t.Errorf("fallback nested loop = %q", got)
	}
	coreExpr, err := xqcore.NormalizeExpr(q, xqcore.Options{ContextDoc: "auction.xml"})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := CompileWithStats(coreExpr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EquiJoins != 0 || stats.ThetaJoins != 0 {
		t.Errorf("non-separable condition must not unnest: %+v", stats)
	}
}

func TestErrorsPropagate(t *testing.T) {
	eng := newEng(t)
	runErr(t, eng, `"a" < 1`)
	runErr(t, eng, `sum(//name)`) // non-numeric strings
	runErr(t, eng, `doc("missing.xml")`)
	runErr(t, eng, `$unbound`)
	runErr(t, eng, `position()`)
	runErr(t, eng, `1 div 0`)
}

func TestCompileQueryPlanArtifacts(t *testing.T) {
	plan, coreExpr, err := CompileQuery(`for $v in (10,20) return $v + 100`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := algebra.Validate(plan); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if got := strings.Join(plan.Schema(), "|"); got != "iter|pos|item" {
		t.Errorf("plan schema = %s", got)
	}
	if n := algebra.CountOps(plan); n < 10 {
		t.Errorf("figure-5 query plan has %d ops; expected a nontrivial DAG", n)
	}
	if xqcore.Print(coreExpr) == "" {
		t.Error("core printing")
	}
	dot := algebra.Dot(plan)
	if !strings.Contains(dot, "ϱ") || !strings.Contains(dot, "⋈") {
		t.Error("plan dot output must show ϱ and ⋈ (figure 5 shape)")
	}
}

func TestPlanSizeQuote(t *testing.T) {
	// The paper quotes ~120 operators for XMark Q8 before optimization;
	// our Q8-shaped query should land in the same order of magnitude.
	plan, _, err := CompileQuery(q8Query(), xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := algebra.CountOps(plan)
	if n < 40 || n > 400 {
		t.Errorf("Q8 plan has %d operators; expected the paper's order of magnitude (~120)", n)
	}
}

// TestFigure2SequenceEncoding checks the paper's Figure 2: the sequence
// (5, "x", <a/>, "x") is encoded as a pos|item table with positions 1–4
// and a polymorphic item column.
func TestFigure2SequenceEncoding(t *testing.T) {
	eng := newEng(t)
	plan, _, err := CompileQuery(`(5, "x", <a/>, "x")`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := res.SortBy("iter", "pos")
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", sorted.Rows())
	}
	pos, _ := sorted.Ints("pos")
	for i, p := range pos {
		if p != int64(i+1) {
			t.Errorf("pos[%d] = %d", i, p)
		}
	}
	items := sorted.MustCol("item")
	if items.ItemAt(0).I != 5 || items.ItemAt(1).S != "x" ||
		items.ItemAt(2).Kind != bat.KNode || items.ItemAt(3).S != "x" {
		t.Errorf("figure 2 items wrong: %v", sorted)
	}
	if eng.Store.NameOf(items.ItemAt(2).N) != "a" {
		t.Error("constructed node name")
	}
}

func TestDistinctDocOrderFunction(t *testing.T) {
	eng := newEng(t)
	got := run(t, eng, `count(fs:distinct-doc-order((//person, //person)))`)
	if got != "3" {
		t.Errorf("ddo = %q", got)
	}
}

func TestStringJoinAndAttrValueSpacing(t *testing.T) {
	eng := newEng(t)
	got := run(t, eng, `<e a="{(1,2,3)}"/>`)
	if got != `<e a="1 2 3"/>` {
		t.Errorf("attr value spacing = %q", got)
	}
	got2 := run(t, eng, `string-join(("a","b","c"), "-")`)
	if got2 != "a-b-c" {
		t.Errorf("string-join = %q", got2)
	}
}
