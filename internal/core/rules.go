package core

import (
	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xqcore"
)

// compFor is the loop-lifting rule of Figure 3: the binding sequence's
// rows become the iterations of a new scope, connected to the enclosing
// scope by the map relation; free variables are lifted through the map;
// the body's result is mapped back and renumbered.
func (c *Compiler) compFor(f *xqcore.For, s *scope) *algebra.Op {
	if plan, ok := c.tryUnnest(f, s); ok {
		return plan
	}
	q1 := c.comp(f.In, s)
	// ϱ inner:(iter,pos): one fresh iteration per binding — Figure 3(b).
	qv := c.must(algebra.RowNum(q1, "inner",
		[]algebra.OrderSpec{{Col: "iter"}, {Col: "pos"}}, ""))
	mapRel := c.must(algebra.Project(qv, "inner", "outer:iter")) // Figure 3(f)
	loop2 := c.must(algebra.Project(qv, "iter:inner"))
	return c.forBody(f, s, qv, mapRel, loop2, q1)
}

// forBody compiles the loop body under the new scope and back-maps the
// result. qv must provide inner|item (the variable binding per new
// iteration) plus the source pos column; mapRel is inner|outer.
func (c *Compiler) forBody(f *xqcore.For, s *scope, qv, mapRel, loop2, q1 *algebra.Op) *algebra.Op {
	s2 := &scope{loop: loop2, env: map[string]binding{}}

	vPlan := c.singletonFrom(qv, "inner", "item")
	s2.env[f.Var] = binding{plan: vPlan, loop: loop2}
	if f.PosVar != "" {
		s2.env[f.PosVar] = binding{plan: c.singletonFrom(qv, "inner", "pos"), loop: loop2}
	}

	// Lift the free variables of the body (and order keys) through map.
	free := xqcore.FreeVars(f.Body)
	for _, k := range f.Order {
		for v := range xqcore.FreeVars(k.Key) {
			free[v] = true
		}
	}
	delete(free, f.Var)
	if f.PosVar != "" {
		delete(free, f.PosVar)
	}
	for w := range free {
		if _, ok := s.env[w]; !ok {
			continue // let compilation of the body report the unbound variable
		}
		s2.env[w] = binding{plan: c.liftThroughMap(c.lookup(s, w), mapRel), loop: loop2}
	}

	// Implicit position()/last() context.
	if xqcore.UsesPositionOrLast(f.Body) {
		s2.env["fs:position"] = binding{plan: c.singletonFrom(qv, "inner", "pos"), loop: loop2}
		cnt := c.must(algebra.Aggr(q1, "cnt", algebra.AggCount, "", "iter"))
		cntR := c.must(algebra.Project(cnt, "citer:iter", "cnt"))
		withCnt := c.must(algebra.Join(qv, cntR, []string{"iter"}, []string{"citer"}))
		s2.env["fs:last"] = binding{plan: c.singletonFrom(withCnt, "inner", "cnt"), loop: loop2}
	}

	qb := c.comp(f.Body, s2)

	// Back-map: join the body result with map, renumber positions per
	// outer iteration — Figure 3(g).
	back := c.must(algebra.Join(qb, mapRel, []string{"iter"}, []string{"inner"}))
	order := []algebra.OrderSpec{}
	for i, k := range f.Order {
		kq := c.comp(k.Key, s2)
		keyCol := c.freshCol("key")
		kiter := c.freshCol("kiter")
		kII := c.must(algebra.Project(kq, kiter+":iter", keyCol+":item"))
		// Bindings with an empty key sort first (empty least).
		present := algebra.Distinct(c.must(algebra.Project(kII, "piter:"+kiter)))
		missing := c.must(algebra.Diff(loop2, present, []string{"iter"}, []string{"piter"}))
		defRows := c.must(algebra.Project(
			c.must(algebra.Cross(missing,
				algebra.Lit(bat.MustTable(keyCol, bat.StrVec{""})))),
			kiter+":iter", keyCol))
		filled := c.must(algebra.Union(kII, defRows))
		back = c.must(algebra.Join(back, filled, []string{"inner"}, []string{kiter}))
		order = append(order, algebra.OrderSpec{Col: keyCol, Desc: f.Order[i].Desc})
	}
	order = append(order, algebra.OrderSpec{Col: "inner"}, algebra.OrderSpec{Col: "pos"})
	rn := c.must(algebra.RowNum(back, "pos1", order, "outer"))
	return c.must(algebra.Project(rn, "iter:outer", "pos:pos1", "item"))
}

// singletonFrom builds iter|pos|item with pos = 1 from a plan, renaming
// iterCol to iter and valCol to item.
func (c *Compiler) singletonFrom(q *algebra.Op, iterCol, valCol string) *algebra.Op {
	p := c.must(algebra.Project(q, "iter:"+iterCol, "item:"+valCol))
	w := c.must(algebra.Cross(p, algebra.Lit(bat.MustTable("pos", bat.IntVec{1}))))
	return c.must(algebra.Project(w, "iter", "pos", "item"))
}

// liftThroughMap lifts an outer-scope sequence encoding into the inner
// scope: env(w) ⋈_{iter=outer} map, re-keyed on inner.
func (c *Compiler) liftThroughMap(plan, mapRel *algebra.Op) *algebra.Op {
	renamed := c.must(algebra.Project(plan, "witer:iter", "wpos:pos", "witem:item"))
	j := c.must(algebra.Join(renamed, mapRel, []string{"witer"}, []string{"outer"}))
	return c.must(algebra.Project(j, "iter:inner", "pos:wpos", "item:witem"))
}

// Constructors --------------------------------------------------------------------

func (c *Compiler) compElemC(x *xqcore.ElemC, s *scope) *algebra.Op {
	qn := c.comp(x.Name, s)
	names := c.stringPerRow(qn)
	namesII := c.must(algebra.Project(names, "iter", "item"))
	qc := c.comp(x.Content, s)
	e := c.must(algebra.Elem(namesII, qc))
	return c.singletonFrom(e, "iter", "item")
}

func (c *Compiler) compAttrC(x *xqcore.AttrC, s *scope) *algebra.Op {
	qn := c.comp(x.Name, s)
	names := c.must(algebra.Project(c.stringPerRow(qn), "iter", "item"))
	vals := c.stringJoinPerIter(c.comp(x.Value, s), s.loop, " ")
	a := c.must(algebra.AttrC(names, vals))
	return c.singletonFrom(a, "iter", "item")
}

func (c *Compiler) compTextC(x *xqcore.TextC, s *scope) *algebra.Op {
	qc := c.comp(x.Content, s)
	// text{()} constructs no node: no default fill, absent iterations
	// simply produce no row.
	sv := c.stringPerRow(qc)
	joined := c.must(algebra.StrJoin(sv, "sv", "item", "iter", " "))
	tII := c.must(algebra.Project(joined, "iter", "item:sv"))
	t := c.must(algebra.Text(tII))
	return c.singletonFrom(t, "iter", "item")
}

// stringPerRow replaces item with its string value (row-wise fn:string).
func (c *Compiler) stringPerRow(q *algebra.Op) *algebra.Op {
	f := c.must(algebra.Fun(q, "s", algebra.FunString, "item"))
	specs := []string{}
	for _, col := range q.Schema() {
		if col == "item" {
			specs = append(specs, "item:s")
		} else {
			specs = append(specs, col)
		}
	}
	return c.must(algebra.Project(f, specs...))
}

// stringJoinPerIter builds iter|item with the sep-joined string values per
// iteration, defaulting to "" for iterations with no rows.
func (c *Compiler) stringJoinPerIter(q, loop *algebra.Op, sep string) *algebra.Op {
	sv := c.stringPerRow(q)
	joined := c.must(algebra.StrJoin(sv, "sv", "item", "iter", sep))
	jII := c.must(algebra.Project(joined, "iter", "item:sv"))
	present := algebra.Distinct(c.must(algebra.Project(jII, "piter:iter")))
	missing := c.must(algebra.Diff(loop, present, []string{"iter"}, []string{"piter"}))
	defaults := c.must(algebra.Cross(missing,
		algebra.Lit(bat.MustTable("item", bat.StrVec{""}))))
	return c.must(algebra.Union(jII, defaults))
}

// Type tests ----------------------------------------------------------------------

func (c *Compiler) compInstanceOf(x *xqcore.InstanceOf, s *scope) *algebra.Op {
	q := c.comp(x.X, s)
	// Iterations with an item failing the item-type test.
	tt := c.must(algebra.TypeTest(q, "ok", x.Of, x.OfName, "item"))
	nok := c.must(algebra.Fun(tt, "bad", algebra.FunNot, "ok"))
	badIters := algebra.Distinct(c.must(algebra.Project(
		c.must(algebra.Select(nok, "bad")), "biter:iter")))

	// Cardinality per iteration (0 for absent ones).
	cnt := c.must(algebra.Aggr(q, "cnt", algebra.AggCount, "", "iter"))
	present := algebra.Distinct(c.must(algebra.Project(cnt, "piter:iter")))
	missing := c.must(algebra.Diff(s.loop, present, []string{"iter"}, []string{"piter"}))
	zeros := c.must(algebra.Cross(missing, algebra.Lit(bat.MustTable("cnt", bat.IntVec{0}))))
	counts := c.must(algebra.Union(cnt, zeros))

	lo, hi := int64(1), int64(1)
	switch x.Occ {
	case '?':
		lo, hi = 0, 1
	case '*':
		lo, hi = 0, -1
	case '+':
		lo, hi = 1, -1
	}
	bounds := c.must(algebra.Cross(counts, algebra.Lit(bat.MustTable("lo", bat.IntVec{lo}))))
	ok := c.must(algebra.Fun(bounds, "geok", algebra.FunGe, "cnt", "lo"))
	okCol := "geok"
	if hi >= 0 {
		withHi := c.must(algebra.Cross(ok, algebra.Lit(bat.MustTable("hi", bat.IntVec{hi}))))
		leok := c.must(algebra.Fun(withHi, "leok", algebra.FunLe, "cnt", "hi"))
		ok = c.must(algebra.Fun(leok, "bok", algebra.FunAnd, "geok", "leok"))
		okCol = "bok"
	}
	cardOK := c.must(algebra.Project(c.must(algebra.Select(ok, okCol)), "titer:iter"))
	trueIters := c.must(algebra.Diff(cardOK, badIters, []string{"titer"}, []string{"biter"}))
	return c.boolForIters(trueIters, s.loop)
}

// Built-in calls -------------------------------------------------------------------

func (c *Compiler) compCall(x *xqcore.Call, s *scope) *algebra.Op {
	switch x.Name {
	case "count":
		q := c.comp(x.Args[0], s)
		a := c.must(algebra.Aggr(q, "cnt", algebra.AggCount, "", "iter"))
		filled := c.fillAggDefault(a, "cnt", s.loop, bat.Int(0))
		return c.singletonFrom(filled, "iter", "cnt")
	case "sum":
		q := c.comp(x.Args[0], s)
		a := c.must(algebra.Aggr(q, "agg", algebra.AggSum, "item", "iter"))
		filled := c.fillAggDefault(a, "agg", s.loop, bat.Int(0))
		return c.singletonFrom(filled, "iter", "agg")
	case "avg", "min", "max":
		kind := map[string]algebra.AggKind{
			"avg": algebra.AggAvg, "min": algebra.AggMin, "max": algebra.AggMax,
		}[x.Name]
		q := c.comp(x.Args[0], s)
		a := c.must(algebra.Aggr(q, "agg", kind, "item", "iter"))
		return c.singletonFrom(a, "iter", "agg")
	case "empty", "exists":
		q := c.comp(x.Args[0], s)
		present := algebra.Distinct(c.must(algebra.Project(q, "titer:iter")))
		if x.Name == "exists" {
			return c.boolForIters(present, s.loop)
		}
		absent := c.must(algebra.Project(
			c.must(algebra.Diff(s.loop, present, []string{"iter"}, []string{"titer"})),
			"titer:iter"))
		return c.boolForIters(absent, s.loop)
	case "not", "boolean":
		q := c.comp(x.Args[0], s) // operand is ebv'd: one boolean per iter
		if x.Name == "boolean" {
			return q
		}
		f := c.must(algebra.Fun(q, "res", algebra.FunNot, "item"))
		return c.singleton(f, "res")
	case "string":
		q := c.comp(x.Args[0], s)
		sv := c.stringPerRow(q)
		return c.fillDefault(sv, s.loop, bat.Str(""))
	case "number":
		q := c.comp(x.Args[0], s)
		f := c.must(algebra.Fun(q, "n", algebra.FunNumber, "item"))
		p := c.must(algebra.Project(f, "iter", "pos", "item:n"))
		return c.fillDefault(p, s.loop, bat.Float(nan()))
	case "string-length":
		q := c.fillDefault(c.stringPerRow(c.comp(x.Args[0], s)), s.loop, bat.Str(""))
		f := c.must(algebra.Fun(q, "n", algebra.FunStringLength, "item"))
		return c.singleton(f, "n")
	case "contains", "starts-with", "concat":
		fun := map[string]algebra.FunKind{
			"contains": algebra.FunContains, "starts-with": algebra.FunStartsWith,
			"concat": algebra.FunConcat,
		}[x.Name]
		ql := c.fillDefault(c.stringPerRow(c.comp(x.Args[0], s)), s.loop, bat.Str(""))
		qr := c.fillDefault(c.stringPerRow(c.comp(x.Args[1], s)), s.loop, bat.Str(""))
		r := c.must(algebra.Project(qr, "iter1:iter", "item1:item"))
		j := c.must(algebra.Join(ql, r, []string{"iter"}, []string{"iter1"}))
		f := c.must(algebra.Fun(j, "res", fun, "item", "item1"))
		return c.singleton(f, "res")
	case "string-join":
		sep, ok := x.Args[1].(*xqcore.Lit)
		if !ok {
			return c.fail("string-join separator must be a string literal")
		}
		vals := c.stringJoinPerIter(c.comp(x.Args[0], s), s.loop, sep.Val.StringValue())
		return c.singletonFrom(vals, "iter", "item")
	case "zero-or-one", "exactly-one":
		// Cardinality assertions pass through; violations surface as
		// ordinary dynamic behaviour downstream (documented deviation).
		return c.comp(x.Args[0], s)
	case "position":
		if _, ok := s.env["fs:position"]; ok {
			return c.lookup(s, "fs:position")
		}
		return c.fail("position() outside of a for loop")
	case "last":
		if _, ok := s.env["fs:last"]; ok {
			return c.lookup(s, "fs:last")
		}
		return c.fail("last() outside of a for loop")
	case "to":
		ql := c.comp(x.Args[0], s)
		qr := c.comp(x.Args[1], s)
		lo := c.must(algebra.Project(ql, "iter", "lo:item"))
		hi := c.must(algebra.Project(qr, "hiter:iter", "hi:item"))
		j := c.must(algebra.Join(lo, hi, []string{"iter"}, []string{"hiter"}))
		return c.must(algebra.Range(j, "lo", "hi"))
	case "intersect", "except":
		ql := c.must(algebra.Project(c.comp(x.Args[0], s), "iter", "item"))
		qr := c.must(algebra.Project(c.comp(x.Args[1], s), "riter:iter", "ritem:item"))
		keysL, keysR := []string{"iter", "item"}, []string{"riter", "ritem"}
		var filtered *algebra.Op
		if x.Name == "intersect" {
			filtered = c.must(algebra.SemiJoin(ql, qr, keysL, keysR))
		} else {
			filtered = c.must(algebra.Diff(ql, qr, keysL, keysR))
		}
		return c.docOrder(filtered)
	case "distinct-values":
		// Values compare by eq semantics (the hash keys of δ); the order
		// of survivors is first occurrence in sequence order, which both
		// engines share.
		q := c.comp(x.Args[0], s)
		rn := c.must(algebra.RowNum(q, "seqord",
			[]algebra.OrderSpec{{Col: "pos"}}, "iter"))
		d := algebra.Distinct(c.must(algebra.Project(rn, "iter", "item")))
		rn2 := c.must(algebra.RowNum(d, "pos", nil, "iter"))
		return c.must(algebra.Project(rn2, "iter", "pos", "item"))
	case "substring":
		str := c.fillDefault(c.stringPerRow(c.comp(x.Args[0], s)), s.loop, bat.Str(""))
		start := c.must(algebra.Project(c.comp(x.Args[1], s), "siter:iter", "start:item"))
		j := c.must(algebra.Join(str, start, []string{"iter"}, []string{"siter"}))
		if len(x.Args) == 3 {
			ln := c.must(algebra.Project(c.comp(x.Args[2], s), "liter:iter", "len:item"))
			j = c.must(algebra.Join(j, ln, []string{"iter"}, []string{"liter"}))
			f := c.must(algebra.Fun(j, "res", algebra.FunSubstring3, "item", "start", "len"))
			return c.singleton(f, "res")
		}
		f := c.must(algebra.Fun(j, "res", algebra.FunSubstring, "item", "start"))
		return c.singleton(f, "res")
	case "name":
		q := c.comp(x.Args[0], s)
		f := c.must(algebra.Fun(q, "nm", algebra.FunNameOf, "item"))
		p := c.must(algebra.Project(f, "iter", "pos", "item:nm"))
		return c.fillDefault(p, s.loop, bat.Str(""))
	}
	return c.fail("unsupported built-in %s", x.Name)
}

func nan() float64 {
	f := 0.0
	return f / f
}

// fillAggDefault unions default aggregate values for loop iterations
// absent from the aggregate table (schema iter|valCol).
func (c *Compiler) fillAggDefault(a *algebra.Op, valCol string, loop *algebra.Op, def bat.Item) *algebra.Op {
	present := algebra.Distinct(c.must(algebra.Project(a, "piter:iter")))
	missing := c.must(algebra.Diff(loop, present, []string{"iter"}, []string{"piter"}))
	defs := c.must(algebra.Cross(missing,
		algebra.Lit(bat.MustTable(valCol, bat.ItemVec{def}))))
	return c.must(algebra.Union(a, defs))
}

// Positional filters ----------------------------------------------------------------

func (c *Compiler) compPosFilter(x *xqcore.PosFilter, s *scope) *algebra.Op {
	q := c.comp(x.In, s)
	if x.Last {
		cnt := c.must(algebra.Aggr(q, "cnt", algebra.AggCount, "", "iter"))
		cntR := c.must(algebra.Project(cnt, "citer:iter", "cnt"))
		j := c.must(algebra.Join(q, cntR, []string{"iter"}, []string{"citer"}))
		f := c.must(algebra.Fun(j, "hit", algebra.FunEq, "pos", "cnt"))
		sel := c.must(algebra.Select(f, "hit"))
		return c.singletonFrom(sel, "iter", "item")
	}
	n := c.must(algebra.Cross(q, algebra.Lit(bat.MustTable("n", bat.IntVec{x.Nth}))))
	f := c.must(algebra.Fun(n, "hit", algebra.FunEq, "pos", "n"))
	sel := c.must(algebra.Select(f, "hit"))
	return c.singletonFrom(sel, "iter", "item")
}
