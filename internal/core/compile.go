// Package core implements the paper's primary contribution: the
// loop-lifting compilation of XQuery Core into Pathfinder's relational
// algebra (§2, "Loop lifting" and Figure 3). Every expression compiles to
// a plan producing the sequence encoding iter|pos|item relative to the
// live loop relation of its scope; FLWOR iteration becomes bulk table
// manipulation through ϱ-generated iteration numbers and map relations
// connecting adjacent scopes.
//
// The compiler also houses Pathfinder's join recognition logic ([3]):
// nested FLWORs whose where-clause compares a quantity derived from the
// inner loop variable against one derived from the outer scopes compile
// into (equi- or theta-) join plans instead of naively lifted
// cross-products — the transformation that makes XMark Q8–Q12 feasible.
package core

import (
	"fmt"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xqcore"
	"pathfinder/internal/xquery"
)

// Stats reports what the join recognition logic did during compilation.
type Stats struct {
	EquiJoins  int // nested FLWORs unnested into hash equi-joins
	ThetaJoins int // nested FLWORs unnested into ×+σ theta-joins
}

// Compile translates a Core expression into an algebra plan with schema
// iter|pos|item, evaluated in the top-level scope s0 (a single iteration
// with iter = 1).
func Compile(e xqcore.Expr) (*algebra.Op, error) {
	plan, _, err := CompileWithStats(e)
	return plan, err
}

// CompileWithStats is Compile plus join-recognition statistics.
func CompileWithStats(e xqcore.Expr) (plan *algebra.Op, stats Stats, err error) {
	c := &Compiler{}
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileErr); ok {
				plan, stats, err = nil, c.stats, ce.error
				return
			}
			panic(r)
		}
	}()
	s := &scope{loop: topLoop(), env: map[string]binding{}}
	return c.comp(e, s), c.stats, nil
}

// CompileQuery parses, normalizes, and compiles a query string.
func CompileQuery(src string, opt xqcore.Options) (*algebra.Op, xqcore.Expr, error) {
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	coreExpr, err := xqcore.Normalize(q, opt)
	if err != nil {
		return nil, nil, err
	}
	plan, err := Compile(coreExpr)
	if err != nil {
		return nil, nil, err
	}
	return plan, coreExpr, nil
}

// Compiler carries a counter for fresh column names and the
// join-recognition statistics; a zero Compiler is ready to use.
type Compiler struct {
	fresh int
	stats Stats
}

type compileErr struct{ error }

func (c *Compiler) fail(format string, args ...any) *algebra.Op {
	panic(compileErr{fmt.Errorf("compile: %s", fmt.Sprintf(format, args...))})
}

// must unwraps algebra constructor results; a failure indicates a bug in a
// compilation rule, reported as a compile error with context.
func (c *Compiler) must(o *algebra.Op, err error) *algebra.Op {
	if err != nil {
		panic(compileErr{fmt.Errorf("compile: internal plan construction: %w", err)})
	}
	return o
}

func (c *Compiler) freshCol(hint string) string {
	c.fresh++
	return fmt.Sprintf("%s%d", hint, c.fresh)
}

// scope is a compilation context: the live loop relation (schema [iter])
// and the variable environment. Special entries fs:position and fs:last
// carry the implicit context of the innermost for.
type scope struct {
	loop *algebra.Op
	env  map[string]binding
}

// binding is a variable's iter|pos|item plan, tagged with the loop it is
// aligned to. A lookup under a narrower loop (an if/typeswitch branch)
// re-restricts the plan with a semijoin.
type binding struct {
	plan *algebra.Op
	loop *algebra.Op
}

func (s *scope) child(loop *algebra.Op) *scope {
	env := make(map[string]binding, len(s.env))
	for k, v := range s.env {
		env[k] = v
	}
	return &scope{loop: loop, env: env}
}

func (c *Compiler) lookup(s *scope, name string) *algebra.Op {
	b, ok := s.env[name]
	if !ok {
		c.fail("unbound variable $%s (compiler)", name)
	}
	if b.loop == s.loop {
		return b.plan
	}
	// The plan was built for a wider loop (the scope has since been
	// restricted by a conditional); narrow it to the live iterations.
	return c.must(algebra.SemiJoin(b.plan, s.loop, []string{"iter"}, []string{"iter"}))
}

// topLoop is the paper's s0: a single iteration with iter = 1.
func topLoop() *algebra.Op {
	return algebra.Lit(bat.MustTable("iter", bat.IntVec{1}))
}

// comp compiles e under scope s into an iter|pos|item plan.
func (c *Compiler) comp(e xqcore.Expr, s *scope) *algebra.Op {
	switch x := e.(type) {
	case *xqcore.Lit:
		return c.constSeq(s, x.Val)
	case *xqcore.Empty:
		return emptyPlan()
	case *xqcore.Var:
		return c.lookup(s, x.Name)
	case *xqcore.Seq:
		return c.compSeq(x, s)
	case *xqcore.Let:
		qb := c.comp(x.Bound, s)
		s2 := s.child(s.loop)
		s2.env[x.Var] = binding{plan: qb, loop: s.loop}
		return c.comp(x.Body, s2)
	case *xqcore.For:
		return c.compFor(x, s)
	case *xqcore.If:
		return c.compIf(x, s)
	case *xqcore.BinOp:
		return c.compBinOp(x, s)
	case *xqcore.GenCmp:
		return c.compGenCmp(x, s)
	case *xqcore.NodeCmp:
		return c.compNodeCmp(x, s)
	case *xqcore.Ebv:
		return c.compEbv(x, s)
	case *xqcore.StepEx:
		return c.compStep(x, s)
	case *xqcore.DDO:
		return c.docOrder(c.comp(x.X, s))
	case *xqcore.Doc:
		return c.must(algebra.DocOp(c.comp(x.X, s)))
	case *xqcore.Coll:
		return c.must(algebra.CollOp(c.comp(x.X, s)))
	case *xqcore.Root:
		return c.must(algebra.Roots(c.comp(x.X, s)))
	case *xqcore.Data:
		q := c.comp(x.X, s)
		f := c.must(algebra.Fun(q, "a", algebra.FunAtomize, "item"))
		return c.must(algebra.Project(f, "iter", "pos", "item:a"))
	case *xqcore.ElemC:
		return c.compElemC(x, s)
	case *xqcore.AttrC:
		return c.compAttrC(x, s)
	case *xqcore.TextC:
		return c.compTextC(x, s)
	case *xqcore.InstanceOf:
		return c.compInstanceOf(x, s)
	case *xqcore.Call:
		return c.compCall(x, s)
	case *xqcore.PosFilter:
		return c.compPosFilter(x, s)
	}
	return c.fail("unsupported core node %T", e)
}

// constSeq lifts a constant into the current loop: loop × {(1, v)} — the
// compilation of Figure 3(a).
func (c *Compiler) constSeq(s *scope, v bat.Item) *algebra.Op {
	lit := algebra.Lit(bat.MustTable("pos", bat.IntVec{1}, "item", bat.ItemVec{v}))
	return c.must(algebra.Cross(s.loop, lit))
}

func emptyPlan() *algebra.Op {
	return algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{}, "pos", bat.IntVec{}, "item", bat.ItemVec{}))
}

// compSeq concatenates two sequence encodings, renumbering pos per iter
// with an order tag to keep left items before right items.
func (c *Compiler) compSeq(x *xqcore.Seq, s *scope) *algebra.Op {
	ql := c.comp(x.L, s)
	qr := c.comp(x.R, s)
	lt := c.must(algebra.Cross(ql, algebra.Lit(bat.MustTable("ord", bat.IntVec{1}))))
	rt := c.must(algebra.Cross(qr, algebra.Lit(bat.MustTable("ord", bat.IntVec{2}))))
	u := c.must(algebra.Union(lt, rt))
	rn := c.must(algebra.RowNum(u, "pos1",
		[]algebra.OrderSpec{{Col: "ord"}, {Col: "pos"}}, "iter"))
	return c.must(algebra.Project(rn, "iter", "pos:pos1", "item"))
}

// compIf compiles conditionals with restricted loops: the then-branch
// runs only in iterations where the condition holds, the else-branch in
// the rest, and the disjoint union reassembles the result (§2).
func (c *Compiler) compIf(x *xqcore.If, s *scope) *algebra.Op {
	qc := c.comp(x.Cond, s)
	thenLoop := c.must(algebra.Project(c.must(algebra.Select(qc, "item")), "iter"))
	neg := c.must(algebra.Fun(qc, "nitem", algebra.FunNot, "item"))
	elseLoop := c.must(algebra.Project(c.must(algebra.Select(neg, "nitem")), "iter"))

	qt := c.comp(x.Then, s.child(thenLoop))
	qe := c.comp(x.Else, s.child(elseLoop))
	return c.must(algebra.Union(qt, qe))
}

var binFun = map[string]algebra.FunKind{
	"+": algebra.FunAdd, "-": algebra.FunSub, "*": algebra.FunMul,
	"div": algebra.FunDiv, "idiv": algebra.FunIDiv, "mod": algebra.FunMod,
	"eq": algebra.FunEq, "ne": algebra.FunNe, "lt": algebra.FunLt,
	"le": algebra.FunLe, "gt": algebra.FunGt, "ge": algebra.FunGe,
	"and": algebra.FunAnd, "or": algebra.FunOr,
}

var genFun = map[string]algebra.FunKind{
	"=": algebra.FunEq, "!=": algebra.FunNe, "<": algebra.FunLt,
	"<=": algebra.FunLe, ">": algebra.FunGt, ">=": algebra.FunGe,
}

// compBinOp joins the two singleton encodings on iter and applies the row
// function ⊛ — Figure 3(e)'s $v + $w.
func (c *Compiler) compBinOp(x *xqcore.BinOp, s *scope) *algebra.Op {
	fun, ok := binFun[x.Op]
	if !ok {
		return c.fail("unknown operator %q", x.Op)
	}
	ql := c.comp(x.L, s)
	qr := c.comp(x.R, s)
	r := c.must(algebra.Project(qr, "iter1:iter", "item1:item"))
	j := c.must(algebra.Join(ql, r, []string{"iter"}, []string{"iter1"}))
	f := c.must(algebra.Fun(j, "res", fun, "item", "item1"))
	return c.singleton(f, "res")
}

// singleton turns a plan with iter and a result column into a canonical
// iter|pos|item encoding with pos = 1.
func (c *Compiler) singleton(q *algebra.Op, resCol string) *algebra.Op {
	p := c.must(algebra.Project(q, "iter", "item:"+resCol))
	w := c.must(algebra.Cross(p, algebra.Lit(bat.MustTable("pos", bat.IntVec{1}))))
	return c.must(algebra.Project(w, "iter", "pos", "item"))
}

// boolForIters builds the boolean singleton encoding that is true exactly
// for the iterations listed in trueIters (schema [titer]) and false for
// the rest of the loop.
func (c *Compiler) boolForIters(trueIters, loop *algebra.Op) *algebra.Op {
	tRows := c.must(algebra.Cross(
		c.must(algebra.Project(trueIters, "iter:titer")),
		algebra.Lit(bat.MustTable("pos", bat.IntVec{1}, "item", bat.ItemVec{bat.Bool(true)}))))
	falseIters := c.must(algebra.Diff(loop, trueIters, []string{"iter"}, []string{"titer"}))
	fRows := c.must(algebra.Cross(falseIters,
		algebra.Lit(bat.MustTable("pos", bat.IntVec{1}, "item", bat.ItemVec{bat.Bool(false)}))))
	return c.must(algebra.Union(tRows, fRows))
}

// compGenCmp: existential general comparison — join both sides on iter,
// keep pairs satisfying the comparison, and map surviving iterations to
// true.
func (c *Compiler) compGenCmp(x *xqcore.GenCmp, s *scope) *algebra.Op {
	fun, ok := genFun[x.Op]
	if !ok {
		return c.fail("unknown comparison %q", x.Op)
	}
	ql := c.comp(x.L, s)
	qr := c.comp(x.R, s)
	r := c.must(algebra.Project(qr, "iter1:iter", "item1:item"))
	j := c.must(algebra.Join(ql, r, []string{"iter"}, []string{"iter1"}))
	f := c.must(algebra.Fun(j, "res", fun, "item", "item1"))
	sel := c.must(algebra.Select(f, "res"))
	ti := algebra.Distinct(c.must(algebra.Project(sel, "titer:iter")))
	return c.boolForIters(ti, s.loop)
}

func (c *Compiler) compNodeCmp(x *xqcore.NodeCmp, s *scope) *algebra.Op {
	ql := c.comp(x.L, s)
	qr := c.comp(x.R, s)
	if x.Op == ">>" {
		ql, qr = qr, ql
	}
	fun := algebra.FunDocBefore
	if x.Op == "is" {
		fun = algebra.FunNodeIs
	}
	r := c.must(algebra.Project(qr, "iter1:iter", "item1:item"))
	j := c.must(algebra.Join(ql, r, []string{"iter"}, []string{"iter1"}))
	f := c.must(algebra.Fun(j, "res", fun, "item", "item1"))
	return c.singleton(f, "res")
}

// compEbv: effective boolean value — true for iterations with at least
// one item whose single-item ebv holds.
func (c *Compiler) compEbv(x *xqcore.Ebv, s *scope) *algebra.Op {
	q := c.comp(x.X, s)
	if t := x.X.Ty(); t.Item == xqcore.IBool && t.Card == xqcore.COne {
		return q
	}
	f := c.must(algebra.Fun(q, "b", algebra.FunEbvItem, "item"))
	sel := c.must(algebra.Select(f, "b"))
	ti := algebra.Distinct(c.must(algebra.Project(sel, "titer:iter")))
	return c.boolForIters(ti, s.loop)
}

// compStep: the staircase join, followed by per-iter position numbering in
// document order.
func (c *Compiler) compStep(x *xqcore.StepEx, s *scope) *algebra.Op {
	qi := c.comp(x.In, s)
	ctxNodes := c.must(algebra.Project(qi, "iter", "item"))
	st := c.must(algebra.Step(ctxNodes, x.Axis, x.Test))
	return c.numberDocOrder(st)
}

// docOrder implements fs:distinct-doc-order.
func (c *Compiler) docOrder(q *algebra.Op) *algebra.Op {
	d := algebra.Distinct(c.must(algebra.Project(q, "iter", "item")))
	return c.numberDocOrder(d)
}

// numberDocOrder adds pos = the per-iter document-order rank of the node
// items of an iter|item plan.
func (c *Compiler) numberDocOrder(q *algebra.Op) *algebra.Op {
	rn := c.must(algebra.RowNum(q, "pos", []algebra.OrderSpec{{Col: "item"}}, "iter"))
	return c.must(algebra.Project(rn, "iter", "pos", "item"))
}

// fillDefault unions in (pos 1, item def) rows for loop iterations missing
// from q — the compilation of functions with non-empty results on empty
// input (fn:string, fn:count, ...).
func (c *Compiler) fillDefault(q, loop *algebra.Op, def bat.Item) *algebra.Op {
	present := algebra.Distinct(c.must(algebra.Project(q, "piter:iter")))
	missing := c.must(algebra.Diff(loop, present, []string{"iter"}, []string{"piter"}))
	rows := c.must(algebra.Cross(missing,
		algebra.Lit(bat.MustTable("pos", bat.IntVec{1}, "item", bat.ItemVec{def}))))
	return c.must(algebra.Union(q, rows))
}
