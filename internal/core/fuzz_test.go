package core

import (
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/opt"
	"pathfinder/internal/xqcore"
	"pathfinder/internal/xquery"
)

// FuzzCompile drives the full front end — parse, normalize, loop-lift,
// optimize — over arbitrary input: whatever compiles must validate as a
// well-formed plan with the iter|pos|item root schema, and the optimizer
// must accept it; nothing may panic.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		`for $v in (10,20), $w in (100,200) return $v + $w`,
		`for $p in //person
		 let $a := for $t in doc("ctx.xml")/a/b where $t/@x = $p/@y return $t
		 return count($a)`,
		`//a[1]/b[last()]/@c`,
		`typeswitch (//a) case element(b)* return 1 default return 2`,
		`<e a="{1 to 3}">{distinct-values((1,1))}</e>`,
		`for $x in (3,1) order by substring(string($x), 1) descending return $x`,
		`some $x in //a satisfies $x is (//b)[1]`,
		`sum(for $i in 1 to 5 return $i * $i)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := xquery.Parse(src)
		if err != nil {
			return
		}
		coreExpr, err := xqcore.Normalize(q, xqcore.Options{ContextDoc: "ctx.xml"})
		if err != nil {
			return
		}
		plan, err := Compile(coreExpr)
		if err != nil {
			return
		}
		if err := algebra.Validate(plan); err != nil {
			t.Fatalf("compiled plan invalid: %v", err)
		}
		if got := strings.Join(plan.Schema(), "|"); got != "iter|pos|item" {
			t.Fatalf("root schema = %s", got)
		}
		oplan, err := opt.Optimize(plan)
		if err != nil {
			t.Fatalf("optimizer rejected a compiled plan: %v", err)
		}
		if algebra.CountOps(oplan) > algebra.CountOps(plan) {
			t.Fatal("optimizer grew the plan")
		}
	})
}
