package xquery

import "testing"

// FuzzLex drives the lexer alone, beneath the parser's error recovery:
// whatever the input, scanning must terminate, never panic, always make
// forward progress, and report token spans inside the source. The parser
// fuzzer reaches the lexer only through grammatical prefixes; this one
// hits the token scanners directly.
func FuzzLex(f *testing.F) {
	seeds := []string{
		``, ` `, "\t\r\n",
		`for $v in (10,20) return $v idiv 2`,
		`"str" 'str' "a""b" 'c''d'`,
		`1 1.5 .5 1e3 1.5E-2 10000000000000000000000`,
		`<a b="c">{1}</a> </ <= << >= >> != := (: :) (: (: :) :)`,
		`//child::a/@b[. = 3]`,
		`&lt; &amp; &#65; &#x41; &bad &#; &#x;`,
		`(: unterminated`, `"unterminated`, `'unterminated`,
		"a\x00b", "\xff\xfe", `$var ... @*:x`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lx := newLexer(src)
		// A scan can legitimately yield an empty token only at EOF, so
		// len(src)+1 successful scans means the lexer stopped advancing.
		for i := 0; i <= len(src)+1; i++ {
			tok, err := lx.scan()
			if err != nil {
				return
			}
			if tok.kind == tEOF {
				return
			}
			if tok.start < 0 || tok.end < tok.start || tok.end > len(src) {
				t.Fatalf("token %v has span [%d,%d) outside source of %d bytes",
					tok.kind, tok.start, tok.end, len(src))
			}
		}
		t.Fatalf("lexer failed to reach EOF after %d tokens", len(src)+2)
	})
}
