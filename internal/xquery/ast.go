// Package xquery implements the front end of the Pathfinder compiler: a
// lexer and recursive-descent parser for the XQuery dialect of Table 2 in
// the paper (literals, sequences, variables, let/for/where/order by,
// conditionals, typeswitch, quantifiers, node constructors, XPath location
// steps with predicates, the built-in function library, and user-defined
// functions).
package xquery

import (
	"fmt"

	"pathfinder/internal/bat"
)

// Pos is a byte offset with line/column information for diagnostics.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Expr is an XQuery expression AST node.
type Expr interface {
	Pos() Pos
}

type base struct{ At Pos }

func (b base) Pos() Pos { return b.At }

// Lit is an atomic literal (integer, double, or string).
type Lit struct {
	base
	Val bat.Item
}

// EmptySeq is the literal empty sequence ().
type EmptySeq struct{ base }

// Seq is a comma sequence (e1, e2, ...).
type Seq struct {
	base
	Items []Expr
}

// Var is a variable reference $name.
type Var struct {
	base
	Name string
}

// ContextItem is the path context ".".
type ContextItem struct{ base }

// ForClause is one `for $v [at $p] in e` binding.
type ForClause struct {
	Var    string
	PosVar string // "" when no `at` clause
	In     Expr
}

// LetClause is one `let $v := e` binding.
type LetClause struct {
	Var string
	In  Expr
}

// OrderKey is one `order by` key.
type OrderKey struct {
	Key  Expr
	Desc bool
}

// FLWOR is a full for/let/where/order by/return clause. Fors and Lets
// appear in source order (Clauses entries are ForClause or LetClause).
type FLWOR struct {
	base
	Clauses []any // ForClause | LetClause
	Where   Expr  // nil if absent
	Order   []OrderKey
	Return  Expr
}

// Quantified is `some|every $v in e satisfies p`.
type Quantified struct {
	base
	Every bool
	Var   string
	In    Expr
	Sat   Expr
}

// If is `if (c) then t else e`.
type If struct {
	base
	Cond, Then, Else Expr
}

// TypeSwitchCase is one case of a typeswitch.
type TypeSwitchCase struct {
	Var  string // "" when no binding
	Type SeqType
	Ret  Expr
}

// TypeSwitch is `typeswitch (op) case ... default ...`.
type TypeSwitch struct {
	base
	Operand    Expr
	Cases      []TypeSwitchCase
	DefaultVar string
	Default    Expr
}

// Binary is a binary operator expression. Op is the source operator:
// or, and, =, !=, <, <=, >, >=, eq, ne, lt, le, gt, ge, is, <<, >>,
// +, -, *, div, idiv, mod, to.
type Binary struct {
	base
	Op   string
	L, R Expr
}

// Unary is unary minus/plus.
type Unary struct {
	base
	Op string
	X  Expr
}

// Step is one location step axis::test with optional predicates.
type Step struct {
	Axis  string // canonical axis name
	Test  NodeTest
	Preds []Expr
}

// NodeTest is the ν of a step.
type NodeTest struct {
	Kind string // "elem", "text", "node", "comment", "attr"
	Name string // "" = wildcard
}

// Path is a (possibly absolute) path expression: Root/Steps... Root == nil
// means the path is relative (starts at the context item); a Path with
// Root != nil and no steps wraps an expression that receives further
// steps or predicates.
type Path struct {
	base
	Root     Expr // nil: relative; otherwise the e in e/α::ν
	Absolute bool // true for `/...` and `//...`: root from fn:root(.)
	Steps    []Step
}

// Filter applies postfix predicates to a non-step expression, e.g.
// (e1, e2)[2] or $seq[3].
type Filter struct {
	base
	Base  Expr
	Preds []Expr
}

// FunCall is a (built-in or user-defined) function call.
type FunCall struct {
	base
	Name string
	Args []Expr
}

// DirAttr is an attribute inside a direct element constructor; its value
// alternates string fragments and enclosed expressions.
type DirAttr struct {
	Name  string
	Parts []Expr // Lit strings and enclosed expressions, in order
}

// DirElem is a direct element constructor <tag a="v">content</tag>.
// Content entries are Lit text fragments, enclosed expressions, or nested
// DirElem constructors.
type DirElem struct {
	base
	Tag     string
	Attrs   []DirAttr
	Content []Expr
}

// CompElem is `element {name} {content}` or `element name {content}`.
type CompElem struct {
	base
	Name    Expr // a Lit string for the fixed-name form
	Content Expr // nil for empty content
}

// CompAttr is `attribute {name} {value}` or `attribute name {value}`.
type CompAttr struct {
	base
	Name  Expr
	Value Expr
}

// CompText is `text {e}`.
type CompText struct {
	base
	Content Expr
}

// SeqType is a parsed sequence type: an item type name plus an occurrence
// indicator.
type SeqType struct {
	Name string // e.g. "xs:integer", "element", "node", "item", "empty-sequence"
	Elem string // element(foo) name restriction
	Occ  byte   // 0 (exactly one), '?', '*', '+'
}

func (t SeqType) String() string {
	s := t.Name
	if t.Name == "element" || t.Name == "attribute" {
		if t.Elem != "" {
			s += "(" + t.Elem + ")"
		} else {
			s += "()"
		}
	} else if t.Name == "text" || t.Name == "node" || t.Name == "item" ||
		t.Name == "comment" || t.Name == "document-node" {
		s += "()"
	}
	if t.Occ != 0 {
		s += string(t.Occ)
	}
	return s
}

// Param is a declared function parameter.
type Param struct {
	Name string
	Type *SeqType // nil when undeclared
}

// FuncDecl is a user-defined function from the prolog.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    *SeqType
	Body   Expr
}

// Query is a parsed module: prolog function declarations plus the body.
type Query struct {
	Funcs map[string]*FuncDecl
	Body  Expr
}

// Error is a positioned syntax error.
type Error struct {
	At  Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("syntax error at %s: %s", e.At, e.Msg) }
