package xquery

import "testing"

// FuzzParse asserts the parser never panics and either returns a valid AST
// or a positioned error, whatever the input. The seed corpus covers every
// syntactic corner; `go test` runs the seeds, `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`42`,
		`"str"`,
		`for $v in (10,20) return $v + 100`,
		`let $x := 1 return $x`,
		`if (1) then 2 else 3`,
		`typeswitch (1) case xs:integer return 1 default return 2`,
		`some $x in (1,2) satisfies $x = 2`,
		`/site/people/person[@id = "p1"]/name/text()`,
		`//a//b/@c/..`,
		`<a x="{1}">t{2}<b/></a>`,
		`element {"n"} {attribute a {1}, text {"t"}}`,
		`declare function local:f($x as xs:integer?) as xs:integer { $x }; local:f(1)`,
		`1 to 5`, `//a | //b`, `//a intersect //b except //c`,
		`(: comment (: nested :) :) 1`,
		`"escaped "" quote"`, `'&lt;&amp;&#65;'`,
		`$`, `<`, `<a`, `<a>`, `{`, `}`, `((((`, `1 +`, `for`, `for $`,
		`child::`, `@`, `../..`, `.`, `*`, `a:b:c`, `&bad;`, `"unterminated`,
		`<a>{{}}</a>`, `<a b="{{"/>`, `0x10`, `1e`, `1.2.3`,
		"for $x in (1,2)\nwhere $x > 1\norder by $x descending\nreturn $x",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatal("nil query without error")
		}
		if err != nil {
			if _, ok := err.(*Error); !ok {
				t.Fatalf("non-positioned error type %T: %v", err, err)
			}
		}
	})
}
