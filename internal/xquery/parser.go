package xquery

import (
	"fmt"
	"strings"

	"pathfinder/internal/bat"
)

// Parser is a recursive-descent parser with one token of lookahead plus a
// raw character mode for direct element constructors.
type Parser struct {
	lx      *lexer
	cur     token
	prevEnd int
}

// Parse parses a complete query (prolog + body).
func Parse(src string) (q *Query, err error) {
	p := &Parser{lx: newLexer(src)}
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*Error); ok {
				q, err = nil, pe
				return
			}
			panic(r)
		}
	}()
	p.advance()
	q = p.parseQuery()
	return q, nil
}

// ParseExpr parses a single expression (no prolog); used by tests.
func ParseExpr(src string) (Expr, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return q.Body, nil
}

func (p *Parser) fail(format string, args ...any) {
	panic(&Error{At: p.pos(), Msg: fmt.Sprintf(format, args...)})
}

func (p *Parser) failAt(off int, format string, args ...any) {
	panic(&Error{At: p.lx.posAt(off), Msg: fmt.Sprintf(format, args...)})
}

func (p *Parser) pos() Pos { return p.lx.posAt(p.cur.start) }

func (p *Parser) advance() {
	p.prevEnd = p.cur.end
	tok, err := p.lx.scan()
	if err != nil {
		panic(err)
	}
	p.cur = tok
}

// peek returns the token after the current one without consuming it.
func (p *Parser) peek() token {
	save := p.lx.off
	tok, err := p.lx.scan()
	p.lx.resetTo(save)
	if err != nil {
		return token{kind: tEOF}
	}
	return tok
}

// peek2 returns the second token after the current one.
func (p *Parser) peek2() token {
	save := p.lx.off
	_, err1 := p.lx.scan()
	tok, err2 := p.lx.scan()
	p.lx.resetTo(save)
	if err1 != nil || err2 != nil {
		return token{kind: tEOF}
	}
	return tok
}

func (p *Parser) isSym(s string) bool  { return p.cur.kind == tSym && p.cur.text == s }
func (p *Parser) isName(s string) bool { return p.cur.kind == tName && p.cur.text == s }

func (p *Parser) expectSym(s string) {
	if !p.isSym(s) {
		p.fail("expected %q, found %s %q", s, p.cur.kind, p.cur.text)
	}
	p.advance()
}

func (p *Parser) expectName(s string) {
	if !p.isName(s) {
		p.fail("expected %q, found %s %q", s, p.cur.kind, p.cur.text)
	}
	p.advance()
}

func (p *Parser) expectQName() string {
	if p.cur.kind != tName {
		p.fail("expected a name, found %s %q", p.cur.kind, p.cur.text)
	}
	name := p.cur.text
	p.advance()
	return name
}

func (p *Parser) expectVar() string {
	if p.cur.kind != tVar {
		p.fail("expected a variable, found %s %q", p.cur.kind, p.cur.text)
	}
	name := p.cur.text
	p.advance()
	return name
}

// Prolog ----------------------------------------------------------------------

func (p *Parser) parseQuery() *Query {
	q := &Query{Funcs: make(map[string]*FuncDecl)}
	for p.isName("declare") {
		p.advance()
		switch {
		case p.isName("function"):
			p.advance()
			fd := p.parseFuncDecl()
			if _, dup := q.Funcs[fd.Name]; dup {
				p.fail("function %s declared twice", fd.Name)
			}
			q.Funcs[fd.Name] = fd
		case p.isName("boundary-space") || p.isName("ordering") || p.isName("default"):
			// Accepted and ignored: these prolog declarations select the
			// defaults Pathfinder implements anyway.
			for !p.isSym(";") && p.cur.kind != tEOF {
				p.advance()
			}
			p.expectSym(";")
		default:
			p.fail("unsupported prolog declaration %q", p.cur.text)
		}
	}
	q.Body = p.parseExpr()
	if p.cur.kind != tEOF {
		p.fail("unexpected %s %q after query body", p.cur.kind, p.cur.text)
	}
	return q
}

func (p *Parser) parseFuncDecl() *FuncDecl {
	fd := &FuncDecl{Name: p.expectQName()}
	p.expectSym("(")
	for !p.isSym(")") {
		prm := Param{Name: p.expectVar()}
		if p.isName("as") {
			p.advance()
			t := p.parseSeqType()
			prm.Type = &t
		}
		fd.Params = append(fd.Params, prm)
		if p.isSym(",") {
			p.advance()
		} else {
			break
		}
	}
	p.expectSym(")")
	if p.isName("as") {
		p.advance()
		t := p.parseSeqType()
		fd.Ret = &t
	}
	p.expectSym("{")
	fd.Body = p.parseExpr()
	p.expectSym("}")
	p.expectSym(";")
	return fd
}

func (p *Parser) parseSeqType() SeqType {
	var t SeqType
	if p.isSym("(") { // empty-sequence() written as ()
		p.advance()
		p.expectSym(")")
		t.Name = "empty-sequence"
		return t
	}
	t.Name = p.expectQName()
	if p.isSym("(") {
		p.advance()
		if p.cur.kind == tName {
			t.Elem = p.cur.text
			p.advance()
		}
		p.expectSym(")")
	}
	if p.isSym("?") || p.isSym("*") || p.isSym("+") {
		t.Occ = p.cur.text[0]
		p.advance()
	}
	return t
}

// Expressions -------------------------------------------------------------------

func (p *Parser) parseExpr() Expr {
	at := p.pos()
	first := p.parseExprSingle()
	if !p.isSym(",") {
		return first
	}
	items := []Expr{first}
	for p.isSym(",") {
		p.advance()
		items = append(items, p.parseExprSingle())
	}
	return &Seq{base: base{at}, Items: items}
}

func (p *Parser) parseExprSingle() Expr {
	if p.cur.kind == tName {
		switch p.cur.text {
		case "for", "let":
			if p.peek().kind == tVar {
				return p.parseFLWOR()
			}
		case "some", "every":
			if p.peek().kind == tVar {
				return p.parseQuantified()
			}
		case "if":
			if nt := p.peek(); nt.kind == tSym && nt.text == "(" {
				return p.parseIf()
			}
		case "typeswitch":
			if nt := p.peek(); nt.kind == tSym && nt.text == "(" {
				return p.parseTypeSwitch()
			}
		}
	}
	return p.parseOr()
}

func (p *Parser) parseFLWOR() Expr {
	at := p.pos()
	fl := &FLWOR{base: base{at}}
	for {
		if p.isName("for") && p.peek().kind == tVar {
			p.advance()
			for {
				c := ForClause{Var: p.expectVar()}
				if p.isName("at") {
					p.advance()
					c.PosVar = p.expectVar()
				}
				p.expectName("in")
				c.In = p.parseExprSingle()
				fl.Clauses = append(fl.Clauses, c)
				if p.isSym(",") {
					p.advance()
					continue
				}
				break
			}
			continue
		}
		if p.isName("let") && p.peek().kind == tVar {
			p.advance()
			for {
				c := LetClause{Var: p.expectVar()}
				p.expectSym(":=")
				c.In = p.parseExprSingle()
				fl.Clauses = append(fl.Clauses, c)
				if p.isSym(",") {
					p.advance()
					continue
				}
				break
			}
			continue
		}
		break
	}
	if len(fl.Clauses) == 0 {
		p.fail("FLWOR without for/let clauses")
	}
	if p.isName("where") {
		p.advance()
		fl.Where = p.parseExprSingle()
	}
	if p.isName("stable") {
		p.advance()
	}
	if p.isName("order") {
		p.advance()
		p.expectName("by")
		for {
			k := OrderKey{Key: p.parseExprSingle()}
			if p.isName("ascending") {
				p.advance()
			} else if p.isName("descending") {
				k.Desc = true
				p.advance()
			}
			if p.isName("empty") { // `empty greatest|least`: accepted, least assumed
				p.advance()
				if p.isName("greatest") || p.isName("least") {
					p.advance()
				}
			}
			fl.Order = append(fl.Order, k)
			if p.isSym(",") {
				p.advance()
				continue
			}
			break
		}
	}
	p.expectName("return")
	fl.Return = p.parseExprSingle()
	return fl
}

func (p *Parser) parseQuantified() Expr {
	at := p.pos()
	every := p.isName("every")
	p.advance()
	type binding struct {
		v  string
		in Expr
	}
	var bs []binding
	for {
		v := p.expectVar()
		p.expectName("in")
		bs = append(bs, binding{v: v, in: p.parseExprSingle()})
		if p.isSym(",") {
			p.advance()
			continue
		}
		break
	}
	p.expectName("satisfies")
	sat := p.parseExprSingle()
	// Nest multi-variable quantifiers innermost-first.
	for i := len(bs) - 1; i >= 0; i-- {
		sat = &Quantified{base: base{at}, Every: every, Var: bs[i].v, In: bs[i].in, Sat: sat}
	}
	return sat
}

func (p *Parser) parseIf() Expr {
	at := p.pos()
	p.expectName("if")
	p.expectSym("(")
	cond := p.parseExpr()
	p.expectSym(")")
	p.expectName("then")
	then := p.parseExprSingle()
	p.expectName("else")
	els := p.parseExprSingle()
	return &If{base: base{at}, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseTypeSwitch() Expr {
	at := p.pos()
	p.expectName("typeswitch")
	p.expectSym("(")
	op := p.parseExpr()
	p.expectSym(")")
	ts := &TypeSwitch{base: base{at}, Operand: op}
	for p.isName("case") {
		p.advance()
		var c TypeSwitchCase
		if p.cur.kind == tVar {
			c.Var = p.expectVar()
			p.expectName("as")
		}
		c.Type = p.parseSeqType()
		p.expectName("return")
		c.Ret = p.parseExprSingle()
		ts.Cases = append(ts.Cases, c)
	}
	if len(ts.Cases) == 0 {
		p.fail("typeswitch needs at least one case")
	}
	p.expectName("default")
	if p.cur.kind == tVar {
		ts.DefaultVar = p.expectVar()
	}
	p.expectName("return")
	ts.Default = p.parseExprSingle()
	return ts
}

func (p *Parser) parseOr() Expr {
	at := p.pos()
	l := p.parseAnd()
	for p.isName("or") {
		p.advance()
		l = &Binary{base: base{at}, Op: "or", L: l, R: p.parseAnd()}
	}
	return l
}

func (p *Parser) parseAnd() Expr {
	at := p.pos()
	l := p.parseComparison()
	for p.isName("and") {
		p.advance()
		l = &Binary{base: base{at}, Op: "and", L: l, R: p.parseComparison()}
	}
	return l
}

var valueCmps = map[string]bool{
	"eq": true, "ne": true, "lt": true, "le": true, "gt": true, "ge": true, "is": true,
}

func (p *Parser) parseComparison() Expr {
	at := p.pos()
	l := p.parseRange()
	var op string
	switch {
	case p.cur.kind == tSym && (p.cur.text == "=" || p.cur.text == "!=" ||
		p.cur.text == "<" || p.cur.text == "<=" || p.cur.text == ">" ||
		p.cur.text == ">=" || p.cur.text == "<<" || p.cur.text == ">>"):
		op = p.cur.text
	case p.cur.kind == tName && valueCmps[p.cur.text]:
		op = p.cur.text
	default:
		return l
	}
	p.advance()
	return &Binary{base: base{at}, Op: op, L: l, R: p.parseRange()}
}

func (p *Parser) parseRange() Expr {
	at := p.pos()
	l := p.parseAdditive()
	if p.isName("to") {
		p.advance()
		return &Binary{base: base{at}, Op: "to", L: l, R: p.parseAdditive()}
	}
	return l
}

func (p *Parser) parseAdditive() Expr {
	at := p.pos()
	l := p.parseMultiplicative()
	for p.isSym("+") || p.isSym("-") {
		op := p.cur.text
		p.advance()
		l = &Binary{base: base{at}, Op: op, L: l, R: p.parseMultiplicative()}
	}
	return l
}

func (p *Parser) parseMultiplicative() Expr {
	at := p.pos()
	l := p.parseUnion()
	for {
		var op string
		switch {
		case p.isSym("*"):
			op = "*"
		case p.isName("div"), p.isName("idiv"), p.isName("mod"):
			op = p.cur.text
		default:
			return l
		}
		p.advance()
		l = &Binary{base: base{at}, Op: op, L: l, R: p.parseUnion()}
	}
}

func (p *Parser) parseUnion() Expr {
	at := p.pos()
	l := p.parseIntersectExcept()
	for p.isSym("|") || p.isName("union") {
		p.advance()
		l = &Binary{base: base{at}, Op: "|", L: l, R: p.parseIntersectExcept()}
	}
	return l
}

func (p *Parser) parseIntersectExcept() Expr {
	at := p.pos()
	l := p.parseUnary()
	for p.isName("intersect") || p.isName("except") {
		op := p.cur.text
		p.advance()
		l = &Binary{base: base{at}, Op: op, L: l, R: p.parseUnary()}
	}
	return l
}

func (p *Parser) parseUnary() Expr {
	at := p.pos()
	if p.isSym("-") || p.isSym("+") {
		op := p.cur.text
		p.advance()
		return &Unary{base: base{at}, Op: op, X: p.parseUnary()}
	}
	return p.parsePath()
}

// Paths -------------------------------------------------------------------------

func descOrSelfStep() Step {
	return Step{Axis: "descendant-or-self", Test: NodeTest{Kind: "node"}}
}

// startsStep reports whether the current token can begin a location step.
func (p *Parser) startsStep() bool {
	switch {
	case p.cur.kind == tName:
		return true
	case p.cur.kind == tSym:
		switch p.cur.text {
		case "@", "*", ".", "..":
			return true
		}
	}
	return false
}

func (p *Parser) parsePath() Expr {
	at := p.pos()
	path := &Path{base: base{at}}
	switch {
	case p.isSym("/"):
		p.advance()
		path.Absolute = true
		if !p.startsStep() {
			return path // lone "/": the root node
		}
		step, _ := p.parseStepOrPrimary()
		if step == nil {
			p.fail("expected a location step after /")
		}
		path.Steps = append(path.Steps, *step)
	case p.isSym("//"):
		p.advance()
		path.Absolute = true
		path.Steps = append(path.Steps, descOrSelfStep())
		if !p.startsStep() {
			p.fail("expected a step after //")
		}
		step, _ := p.parseStepOrPrimary()
		if step == nil {
			p.fail("expected a location step after //")
		}
		path.Steps = append(path.Steps, *step)
	default:
		// First segment: a step or a primary expression.
		step, expr := p.parseStepOrPrimary()
		if step != nil {
			path.Steps = append(path.Steps, *step)
		} else {
			if !p.isSym("/") && !p.isSym("//") {
				return expr // plain primary, not a path
			}
			path.Root = expr
		}
	}
	for p.isSym("/") || p.isSym("//") {
		if p.isSym("//") {
			path.Steps = append(path.Steps, descOrSelfStep())
		}
		p.advance()
		step, expr := p.parseStepOrPrimary()
		if step == nil {
			_ = expr
			p.fail("expected a location step")
		}
		path.Steps = append(path.Steps, *step)
	}
	if path.Root != nil || path.Absolute || len(path.Steps) > 0 {
		if path.Root != nil && !path.Absolute && len(path.Steps) == 0 {
			return path.Root
		}
		return path
	}
	p.fail("malformed path")
	return nil
}

// parseStepOrPrimary parses either an axis step (returned as step) or a
// primary expression with optional postfix predicates (returned as expr).
func (p *Parser) parseStepOrPrimary() (*Step, Expr) {
	switch {
	case p.isSym("."):
		at := p.pos()
		p.advance()
		e := Expr(&ContextItem{base: base{at}})
		return nil, p.parsePostfix(e)
	case p.isSym(".."):
		p.advance()
		s := Step{Axis: "parent", Test: NodeTest{Kind: "node"}}
		s.Preds = p.parsePreds()
		return &s, nil
	case p.isSym("@"):
		p.advance()
		s := Step{Axis: "attribute", Test: NodeTest{Kind: "attr"}}
		if p.isSym("*") {
			p.advance()
		} else {
			s.Test.Name = p.expectQName()
		}
		s.Preds = p.parsePreds()
		return &s, nil
	case p.isSym("*"):
		p.advance()
		s := Step{Axis: "child", Test: NodeTest{Kind: "elem"}}
		s.Preds = p.parsePreds()
		return &s, nil
	case p.cur.kind == tName:
		name := p.cur.text
		nt := p.peek()
		// axis::test
		if nt.kind == tSym && nt.text == "::" {
			p.advance()
			p.advance()
			s := Step{Axis: name}
			s.Test = p.parseNodeTest(name == "attribute")
			s.Preds = p.parsePreds()
			return &s, nil
		}
		// Kind tests text(), node(), comment() as child steps.
		if (name == "text" || name == "node" || name == "comment") &&
			nt.kind == tSym && nt.text == "(" {
			p.advance()
			p.advance()
			p.expectSym(")")
			s := Step{Axis: "child", Test: NodeTest{Kind: name}}
			s.Preds = p.parsePreds()
			return &s, nil
		}
		// Computed constructors.
		if name == "element" || name == "attribute" {
			if nt.kind == tSym && nt.text == "{" {
				return nil, p.parsePostfix(p.parseCompConstructor(name, ""))
			}
			if nt.kind == tName {
				if n2 := p.peek2(); n2.kind == tSym && n2.text == "{" {
					p.advance()
					fixed := p.expectQName()
					return nil, p.parsePostfix(p.parseCompConstructor(name, fixed))
				}
			}
		}
		if name == "text" && nt.kind == tSym && nt.text == "{" {
			return nil, p.parsePostfix(p.parseCompConstructor(name, ""))
		}
		// Function call.
		if nt.kind == tSym && nt.text == "(" {
			return nil, p.parsePostfix(p.parseFunCall())
		}
		// Plain name test: child::name.
		p.advance()
		s := Step{Axis: "child", Test: NodeTest{Kind: "elem", Name: name}}
		s.Preds = p.parsePreds()
		return &s, nil
	default:
		return nil, p.parsePostfix(p.parsePrimary())
	}
}

func (p *Parser) parseNodeTest(attrAxis bool) NodeTest {
	kind := "elem"
	if attrAxis {
		kind = "attr"
	}
	if p.isSym("*") {
		p.advance()
		return NodeTest{Kind: kind}
	}
	name := p.expectQName()
	if (name == "text" || name == "node" || name == "comment") && p.isSym("(") {
		p.advance()
		p.expectSym(")")
		return NodeTest{Kind: name}
	}
	return NodeTest{Kind: kind, Name: name}
}

func (p *Parser) parsePreds() []Expr {
	var preds []Expr
	for p.isSym("[") {
		p.advance()
		preds = append(preds, p.parseExpr())
		p.expectSym("]")
	}
	return preds
}

func (p *Parser) parsePostfix(e Expr) Expr {
	preds := p.parsePreds()
	if len(preds) == 0 {
		return e
	}
	return &Filter{base: base{e.Pos()}, Base: e, Preds: preds}
}

// Primaries ---------------------------------------------------------------------

func (p *Parser) parsePrimary() Expr {
	at := p.pos()
	switch p.cur.kind {
	case tInt, tDouble:
		v := p.cur.num
		p.advance()
		return &Lit{base: base{at}, Val: v}
	case tString:
		v := bat.Str(p.cur.text)
		p.advance()
		return &Lit{base: base{at}, Val: v}
	case tVar:
		name := p.cur.text
		p.advance()
		return &Var{base: base{at}, Name: name}
	case tSym:
		switch p.cur.text {
		case "(":
			p.advance()
			if p.isSym(")") {
				p.advance()
				return &EmptySeq{base: base{at}}
			}
			e := p.parseExpr()
			p.expectSym(")")
			return e
		case "<":
			return p.parseDirElem()
		}
	}
	p.fail("unexpected %s %q in expression", p.cur.kind, p.cur.text)
	return nil
}

func (p *Parser) parseFunCall() Expr {
	at := p.pos()
	name := p.expectQName()
	p.expectSym("(")
	var args []Expr
	if !p.isSym(")") {
		for {
			args = append(args, p.parseExprSingle())
			if p.isSym(",") {
				p.advance()
				continue
			}
			break
		}
	}
	p.expectSym(")")
	return &FunCall{base: base{at}, Name: name, Args: args}
}

// parseCompConstructor parses `element {n} {c}`, `element n {c}`,
// `attribute {n} {v}`, `attribute n {v}`, `text {c}`. The leading keyword
// is already known; fixed is the fixed name ("" for the computed-name
// form). On entry cur is the keyword (computed-name) or the `{` after the
// fixed name.
func (p *Parser) parseCompConstructor(kind, fixed string) Expr {
	at := p.pos()
	if fixed == "" {
		p.advance() // keyword
	}
	var nameExpr Expr
	if fixed != "" {
		nameExpr = &Lit{base: base{at}, Val: bat.Str(fixed)}
	} else if kind != "text" {
		p.expectSym("{")
		nameExpr = p.parseExpr()
		p.expectSym("}")
	}
	p.expectSym("{")
	var content Expr
	if !p.isSym("}") {
		content = p.parseExpr()
	}
	p.expectSym("}")
	switch kind {
	case "element":
		return &CompElem{base: base{at}, Name: nameExpr, Content: content}
	case "attribute":
		if content == nil {
			content = &EmptySeq{base: base{at}}
		}
		return &CompAttr{base: base{at}, Name: nameExpr, Value: content}
	default:
		if content == nil {
			content = &EmptySeq{base: base{at}}
		}
		return &CompText{base: base{at}, Content: content}
	}
}

// Direct constructors (raw character mode) ---------------------------------------

func (p *Parser) parseDirElem() Expr {
	e, off := p.dirElemAt(p.cur.start)
	p.lx.resetTo(off)
	p.advance()
	return p.parsePostfix(e)
}

// dirElemAt parses a direct element constructor starting at byte offset i
// (which must hold '<') and returns the node plus the offset just past the
// constructor.
func (p *Parser) dirElemAt(i int) (*DirElem, int) {
	src := p.lx.src
	at := p.lx.posAt(i)
	if i >= len(src) || src[i] != '<' {
		p.failAt(i, "expected direct constructor")
	}
	i++
	tag, i2 := rawQName(src, i)
	if tag == "" {
		p.failAt(i, "expected element name in constructor")
	}
	i = i2
	el := &DirElem{base: base{at}, Tag: tag}
	// Attributes.
	for {
		i = rawSkipSpace(src, i)
		if i >= len(src) {
			p.failAt(i, "unterminated constructor <%s", tag)
		}
		if src[i] == '/' || src[i] == '>' {
			break
		}
		aname, j := rawQName(src, i)
		if aname == "" {
			p.failAt(i, "expected attribute name in <%s>", tag)
		}
		i = rawSkipSpace(src, j)
		if i >= len(src) || src[i] != '=' {
			p.failAt(i, "expected = after attribute %s", aname)
		}
		i = rawSkipSpace(src, i+1)
		if i >= len(src) || src[i] != '"' && src[i] != '\'' {
			p.failAt(i, "expected quoted value for attribute %s", aname)
		}
		quote := src[i]
		i++
		attr := DirAttr{Name: aname}
		var text strings.Builder
		flush := func(off int) {
			if text.Len() > 0 {
				attr.Parts = append(attr.Parts,
					&Lit{base: base{p.lx.posAt(off)}, Val: bat.Str(text.String())})
				text.Reset()
			}
		}
		for {
			if i >= len(src) {
				p.failAt(i, "unterminated attribute value for %s", aname)
			}
			c := src[i]
			switch {
			case c == quote:
				if i+1 < len(src) && src[i+1] == quote {
					text.WriteByte(quote)
					i += 2
					continue
				}
				flush(i)
				i++
			case c == '{':
				if i+1 < len(src) && src[i+1] == '{' {
					text.WriteByte('{')
					i += 2
					continue
				}
				flush(i)
				expr, j := p.enclosedAt(i)
				attr.Parts = append(attr.Parts, expr)
				i = j
				continue
			case c == '}':
				if i+1 < len(src) && src[i+1] == '}' {
					text.WriteByte('}')
					i += 2
					continue
				}
				p.failAt(i, "unescaped } in attribute value")
			case c == '&':
				rep, n, err := decodeEntity(src[i:])
				if err != nil {
					p.failAt(i, "%s", err.Error())
				}
				text.WriteString(rep)
				i += n
				continue
			case c == '<':
				p.failAt(i, "< not allowed in attribute value")
			default:
				text.WriteByte(c)
				i++
				continue
			}
			break
		}
		el.Attrs = append(el.Attrs, attr)
	}
	if src[i] == '/' {
		if i+1 >= len(src) || src[i+1] != '>' {
			p.failAt(i, "expected /> in <%s>", tag)
		}
		return el, i + 2
	}
	i++ // '>'
	// Content.
	var text strings.Builder
	textStart := i
	flushText := func() {
		if text.Len() > 0 {
			raw := text.String()
			if strings.TrimSpace(raw) != "" { // boundary-space strip
				el.Content = append(el.Content,
					&Lit{base: base{p.lx.posAt(textStart)}, Val: bat.Str(raw)})
			}
			text.Reset()
		}
	}
	for {
		if i >= len(src) {
			p.failAt(i, "unterminated content of <%s>", tag)
		}
		c := src[i]
		switch {
		case c == '<' && i+1 < len(src) && src[i+1] == '/':
			flushText()
			i += 2
			closing, j := rawQName(src, i)
			if closing != tag {
				p.failAt(i, "mismatched </%s>, expected </%s>", closing, tag)
			}
			i = rawSkipSpace(src, j)
			if i >= len(src) || src[i] != '>' {
				p.failAt(i, "expected > after </%s", tag)
			}
			return el, i + 1
		case c == '<' && i+3 < len(src) && src[i+1] == '!' && src[i+2] == '-' && src[i+3] == '-':
			flushText()
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				p.failAt(i, "unterminated comment in constructor")
			}
			i += 4 + end + 3
			textStart = i
		case c == '<':
			flushText()
			child, j := p.dirElemAt(i)
			el.Content = append(el.Content, child)
			i = j
			textStart = i
		case c == '{':
			if i+1 < len(src) && src[i+1] == '{' {
				text.WriteByte('{')
				i += 2
				continue
			}
			flushText()
			expr, j := p.enclosedAt(i)
			el.Content = append(el.Content, expr)
			i = j
			textStart = i
		case c == '}':
			if i+1 < len(src) && src[i+1] == '}' {
				text.WriteByte('}')
				i += 2
				continue
			}
			p.failAt(i, "unescaped } in element content")
		case c == '&':
			rep, n, err := decodeEntity(src[i:])
			if err != nil {
				p.failAt(i, "%s", err.Error())
			}
			text.WriteString(rep)
			i += n
		default:
			text.WriteByte(c)
			i++
		}
	}
}

// enclosedAt parses a `{ Expr }` enclosed expression starting at offset i
// (at the '{') using the token parser, returning the expression and the
// offset just past the closing '}'.
func (p *Parser) enclosedAt(i int) (Expr, int) {
	p.lx.resetTo(i)
	p.advance()
	if !p.isSym("{") {
		p.failAt(i, "expected { for enclosed expression")
	}
	p.advance()
	e := p.parseExpr()
	if !p.isSym("}") {
		p.fail("expected } to close enclosed expression, found %q", p.cur.text)
	}
	return e, p.cur.end
}

func rawSkipSpace(src string, i int) int {
	for i < len(src) && isSpace(src[i]) {
		i++
	}
	return i
}

// rawQName scans a QName at offset i, returning it and the offset after.
func rawQName(src string, i int) (string, int) {
	s := i
	if i >= len(src) || !isNameStart(src[i]) {
		return "", i
	}
	for i < len(src) && isNameChar(src[i]) {
		i++
	}
	if i+1 < len(src) && src[i] == ':' && isNameStart(src[i+1]) {
		i++
		for i < len(src) && isNameChar(src[i]) {
			i++
		}
	}
	return src[s:i], i
}
