package xquery

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pathfinder/internal/bat"
)

type tokKind uint8

const (
	tEOF    tokKind = iota
	tName           // QName (possibly prefixed)
	tVar            // $name
	tInt            // integer literal
	tDouble         // decimal/double literal
	tString         // string literal
	tSym            // operator/punctuation, text carries the symbol
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of query"
	case tName:
		return "name"
	case tVar:
		return "variable"
	case tInt, tDouble:
		return "number"
	case tString:
		return "string"
	case tSym:
		return "symbol"
	}
	return "?"
}

type token struct {
	kind       tokKind
	text       string
	num        bat.Item
	start, end int // byte offsets in src
}

// lexer produces tokens over src. Direct constructors are parsed in raw
// character mode by the parser, which rewinds the lexer with resetTo.
type lexer struct {
	src       string
	off       int
	lineStart []int // byte offset of each line start, for Pos
}

func newLexer(src string) *lexer {
	lx := &lexer{src: src}
	lx.lineStart = append(lx.lineStart, 0)
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			lx.lineStart = append(lx.lineStart, i+1)
		}
	}
	return lx
}

// posAt converts a byte offset to a line/column Pos.
func (lx *lexer) posAt(off int) Pos {
	line := sort.Search(len(lx.lineStart), func(i int) bool { return lx.lineStart[i] > off }) - 1
	return Pos{Offset: off, Line: line + 1, Col: off - lx.lineStart[line] + 1}
}

// resetTo rewinds scanning to an absolute byte offset.
func (lx *lexer) resetTo(off int) { lx.off = off }

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || c >= '0' && c <= '9'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// skipTrivia advances over whitespace and (nested) (: comments :).
func (lx *lexer) skipTrivia() error {
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		if isSpace(c) {
			lx.off++
			continue
		}
		if c == '(' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == ':' {
			depth := 1
			i := lx.off + 2
			for i < len(lx.src) && depth > 0 {
				if lx.src[i] == '(' && i+1 < len(lx.src) && lx.src[i+1] == ':' {
					depth++
					i += 2
				} else if lx.src[i] == ':' && i+1 < len(lx.src) && lx.src[i+1] == ')' {
					depth--
					i += 2
				} else {
					i++
				}
			}
			if depth > 0 {
				return &Error{At: lx.posAt(lx.off), Msg: "unterminated comment"}
			}
			lx.off = i
			continue
		}
		return nil
	}
	return nil
}

// scan returns the next token.
func (lx *lexer) scan() (token, error) {
	if err := lx.skipTrivia(); err != nil {
		return token{}, err
	}
	start := lx.off
	if lx.off >= len(lx.src) {
		return token{kind: tEOF, start: start, end: start}, nil
	}
	c := lx.src[lx.off]

	switch {
	case isNameStart(c):
		return lx.scanName(start), nil
	case isDigit(c):
		return lx.scanNumber(start)
	case c == '.' && lx.off+1 < len(lx.src) && isDigit(lx.src[lx.off+1]):
		return lx.scanNumber(start)
	case c == '"' || c == '\'':
		return lx.scanString(start, c)
	case c == '$':
		lx.off++
		if lx.off >= len(lx.src) || !isNameStart(lx.src[lx.off]) {
			return token{}, &Error{At: lx.posAt(start), Msg: "expected variable name after $"}
		}
		name := lx.scanQName()
		return token{kind: tVar, text: name, start: start, end: lx.off}, nil
	}

	// Multi-char symbols first.
	two := ""
	if lx.off+1 < len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	switch two {
	case ":=", "!=", "<=", ">=", "<<", ">>", "//", "::", "..":
		lx.off += 2
		return token{kind: tSym, text: two, start: start, end: lx.off}, nil
	}
	switch c {
	case '(', ')', '[', ']', '{', '}', ',', ';', '=', '<', '>', '+', '-',
		'*', '/', '@', '.', '?', '|':
		lx.off++
		return token{kind: tSym, text: string(c), start: start, end: lx.off}, nil
	}
	return token{}, &Error{At: lx.posAt(start), Msg: fmt.Sprintf("unexpected character %q", c)}
}

// scanQName consumes NCName(:NCName)? at the current offset, avoiding the
// axis separator "::".
func (lx *lexer) scanQName() string {
	s := lx.off
	for lx.off < len(lx.src) && isNameChar(lx.src[lx.off]) {
		lx.off++
	}
	if lx.off+1 < len(lx.src) && lx.src[lx.off] == ':' &&
		lx.src[lx.off+1] != ':' && isNameStart(lx.src[lx.off+1]) {
		lx.off++
		for lx.off < len(lx.src) && isNameChar(lx.src[lx.off]) {
			lx.off++
		}
	}
	return lx.src[s:lx.off]
}

func (lx *lexer) scanName(start int) token {
	name := lx.scanQName()
	return token{kind: tName, text: name, start: start, end: lx.off}
}

func (lx *lexer) scanNumber(start int) (token, error) {
	i := lx.off
	for i < len(lx.src) && isDigit(lx.src[i]) {
		i++
	}
	isFloat := false
	if i < len(lx.src) && lx.src[i] == '.' && i+1 < len(lx.src) && isDigit(lx.src[i+1]) {
		isFloat = true
		i++
		for i < len(lx.src) && isDigit(lx.src[i]) {
			i++
		}
	}
	if i < len(lx.src) && (lx.src[i] == 'e' || lx.src[i] == 'E') {
		j := i + 1
		if j < len(lx.src) && (lx.src[j] == '+' || lx.src[j] == '-') {
			j++
		}
		if j < len(lx.src) && isDigit(lx.src[j]) {
			isFloat = true
			i = j
			for i < len(lx.src) && isDigit(lx.src[i]) {
				i++
			}
		}
	}
	text := lx.src[lx.off:i]
	lx.off = i
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, &Error{At: lx.posAt(start), Msg: "malformed number " + text}
		}
		return token{kind: tDouble, text: text, num: bat.Float(f), start: start, end: i}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, &Error{At: lx.posAt(start), Msg: "integer literal overflow: " + text}
	}
	return token{kind: tInt, text: text, num: bat.Int(n), start: start, end: i}, nil
}

func (lx *lexer) scanString(start int, quote byte) (token, error) {
	var sb strings.Builder
	i := lx.off + 1
	for i < len(lx.src) {
		c := lx.src[i]
		if c == quote {
			if i+1 < len(lx.src) && lx.src[i+1] == quote {
				sb.WriteByte(quote) // doubled quote escape
				i += 2
				continue
			}
			lx.off = i + 1
			return token{kind: tString, text: sb.String(), start: start, end: lx.off}, nil
		}
		if c == '&' {
			rep, n, err := decodeEntity(lx.src[i:])
			if err != nil {
				return token{}, &Error{At: lx.posAt(i), Msg: err.Error()}
			}
			sb.WriteString(rep)
			i += n
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return token{}, &Error{At: lx.posAt(start), Msg: "unterminated string literal"}
}

// decodeEntity decodes a leading entity reference and returns the
// replacement plus consumed byte count.
func decodeEntity(s string) (string, int, error) {
	end := strings.IndexByte(s, ';')
	if end < 0 || end > 12 {
		return "", 0, fmt.Errorf("malformed entity reference")
	}
	switch s[:end+1] {
	case "&lt;":
		return "<", end + 1, nil
	case "&gt;":
		return ">", end + 1, nil
	case "&amp;":
		return "&", end + 1, nil
	case "&quot;":
		return `"`, end + 1, nil
	case "&apos;":
		return "'", end + 1, nil
	}
	if strings.HasPrefix(s, "&#") {
		body := s[2:end]
		base := 10
		if strings.HasPrefix(body, "x") || strings.HasPrefix(body, "X") {
			base, body = 16, body[1:]
		}
		n, err := strconv.ParseInt(body, base, 32)
		if err != nil {
			return "", 0, fmt.Errorf("malformed character reference %q", s[:end+1])
		}
		return string(rune(n)), end + 1, nil
	}
	return "", 0, fmt.Errorf("unknown entity %q", s[:end+1])
}
