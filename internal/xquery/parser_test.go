package xquery

import (
	"strings"
	"testing"

	"pathfinder/internal/bat"
)

func parseOK(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func parseFail(t *testing.T, src string) {
	t.Helper()
	if _, err := ParseExpr(src); err == nil {
		t.Errorf("parse %q: expected error", src)
	}
}

func TestLiterals(t *testing.T) {
	if l := parseOK(t, "42").(*Lit); l.Val.Kind != bat.KInt || l.Val.I != 42 {
		t.Errorf("int literal: %+v", l.Val)
	}
	if l := parseOK(t, "3.25").(*Lit); l.Val.Kind != bat.KFloat || l.Val.F != 3.25 {
		t.Errorf("decimal literal: %+v", l.Val)
	}
	if l := parseOK(t, "1e3").(*Lit); l.Val.Kind != bat.KFloat || l.Val.F != 1000 {
		t.Errorf("double literal: %+v", l.Val)
	}
	if l := parseOK(t, `"he said ""hi"""`).(*Lit); l.Val.S != `he said "hi"` {
		t.Errorf("string literal: %q", l.Val.S)
	}
	if l := parseOK(t, `"a &lt; b &#65;"`).(*Lit); l.Val.S != "a < b A" {
		t.Errorf("entities: %q", l.Val.S)
	}
	if l := parseOK(t, "'single'").(*Lit); l.Val.S != "single" {
		t.Errorf("single quotes: %q", l.Val.S)
	}
}

func TestSequencesAndEmpty(t *testing.T) {
	s := parseOK(t, "(1, 2, 3)").(*Seq)
	if len(s.Items) != 3 {
		t.Errorf("seq items = %d", len(s.Items))
	}
	if _, ok := parseOK(t, "()").(*EmptySeq); !ok {
		t.Error("() must be EmptySeq")
	}
	if _, ok := parseOK(t, "(1)").(*Lit); !ok {
		t.Error("(1) must unwrap to the literal")
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	e := parseOK(t, "1 + 2 * 3").(*Binary)
	if e.Op != "+" {
		t.Fatalf("root op = %s", e.Op)
	}
	if r := e.R.(*Binary); r.Op != "*" {
		t.Errorf("* must bind tighter")
	}
	e2 := parseOK(t, "1 < 2 + 3").(*Binary)
	if e2.Op != "<" {
		t.Errorf("comparison must be outermost, got %s", e2.Op)
	}
	e3 := parseOK(t, "$a = 1 and $b = 2 or $c = 3").(*Binary)
	if e3.Op != "or" {
		t.Errorf("or outermost, got %s", e3.Op)
	}
	if l := e3.L.(*Binary); l.Op != "and" {
		t.Errorf("and inside or")
	}
	u := parseOK(t, "-5").(*Unary)
	if u.Op != "-" {
		t.Error("unary minus")
	}
	d := parseOK(t, "7 idiv 2").(*Binary)
	if d.Op != "idiv" {
		t.Error("idiv")
	}
}

func TestRangeAndSetOperators(t *testing.T) {
	r := parseOK(t, "1 to 5").(*Binary)
	if r.Op != "to" {
		t.Errorf("range op = %s", r.Op)
	}
	// `to` binds looser than additive: 1 to 2+3 is 1 to (5).
	r2 := parseOK(t, "1 to 2 + 3").(*Binary)
	if r2.Op != "to" {
		t.Fatalf("root = %s", r2.Op)
	}
	if inner := r2.R.(*Binary); inner.Op != "+" {
		t.Error("additive inside range")
	}
	u := parseOK(t, "//a | //b").(*Binary)
	if u.Op != "|" {
		t.Errorf("union op = %s", u.Op)
	}
	if parseOK(t, "//a union //b").(*Binary).Op != "|" {
		t.Error("union keyword")
	}
	ie := parseOK(t, "//a intersect //b except //c").(*Binary)
	if ie.Op != "except" {
		t.Fatalf("left-assoc set ops: %s", ie.Op)
	}
	if ie.L.(*Binary).Op != "intersect" {
		t.Error("intersect nested")
	}
	// union binds tighter than intersect per the chain.
	m := parseOK(t, "2 * //a | //b").(*Binary)
	if m.Op != "*" {
		t.Errorf("* outermost over |, got %s", m.Op)
	}
}

func TestValueAndNodeComparisons(t *testing.T) {
	for _, op := range []string{"eq", "ne", "lt", "le", "gt", "ge", "=", "!=", "<", "<=", ">", ">=", "<<", ">>", "is"} {
		e := parseOK(t, "$a "+op+" $b").(*Binary)
		if e.Op != op {
			t.Errorf("op %s parsed as %s", op, e.Op)
		}
	}
}

func TestFLWORSingleFor(t *testing.T) {
	e := parseOK(t, `for $v in (10,20) return $v + 100`).(*FLWOR)
	if len(e.Clauses) != 1 {
		t.Fatalf("clauses = %d", len(e.Clauses))
	}
	fc := e.Clauses[0].(ForClause)
	if fc.Var != "v" || fc.PosVar != "" {
		t.Errorf("for clause: %+v", fc)
	}
	if e.Where != nil || len(e.Order) != 0 {
		t.Error("no where/order expected")
	}
}

func TestFLWORFull(t *testing.T) {
	e := parseOK(t, `
		for $a at $i in //one, $b in //two
		let $c := $a + $b, $d := 5
		where $c > $d
		order by $a descending, $b
		return ($a, $b)`).(*FLWOR)
	if len(e.Clauses) != 4 {
		t.Fatalf("clauses = %d", len(e.Clauses))
	}
	if fc := e.Clauses[0].(ForClause); fc.PosVar != "i" {
		t.Error("positional var")
	}
	if _, ok := e.Clauses[2].(LetClause); !ok {
		t.Error("third clause must be let")
	}
	if e.Where == nil {
		t.Error("where clause lost")
	}
	if len(e.Order) != 2 || !e.Order[0].Desc || e.Order[1].Desc {
		t.Errorf("order keys: %+v", e.Order)
	}
}

func TestQuantifiedNesting(t *testing.T) {
	q := parseOK(t, `some $x in (1,2), $y in (3,4) satisfies $x = $y`).(*Quantified)
	if q.Every || q.Var != "x" {
		t.Errorf("outer quantifier: %+v", q)
	}
	inner := q.Sat.(*Quantified)
	if inner.Var != "y" {
		t.Error("inner quantifier")
	}
	ev := parseOK(t, `every $x in //a satisfies $x > 0`).(*Quantified)
	if !ev.Every {
		t.Error("every flag")
	}
}

func TestIfTypeswitch(t *testing.T) {
	i := parseOK(t, `if ($a) then 1 else 2`).(*If)
	if i.Cond == nil || i.Then == nil || i.Else == nil {
		t.Error("if parts")
	}
	ts := parseOK(t, `typeswitch ($x)
		case $e as element(foo) return 1
		case xs:integer return 2
		default $d return 3`).(*TypeSwitch)
	if len(ts.Cases) != 2 {
		t.Fatalf("cases = %d", len(ts.Cases))
	}
	if ts.Cases[0].Var != "e" || ts.Cases[0].Type.Name != "element" || ts.Cases[0].Type.Elem != "foo" {
		t.Errorf("case 0: %+v", ts.Cases[0])
	}
	if ts.Cases[1].Type.Name != "xs:integer" {
		t.Errorf("case 1: %+v", ts.Cases[1])
	}
	if ts.DefaultVar != "d" {
		t.Error("default var")
	}
}

func TestPaths(t *testing.T) {
	p := parseOK(t, `/site/people/person`).(*Path)
	if !p.Absolute || len(p.Steps) != 3 || p.Steps[2].Test.Name != "person" {
		t.Errorf("absolute path: %+v", p)
	}
	p2 := parseOK(t, `//item`).(*Path)
	if !p2.Absolute || len(p2.Steps) != 2 || p2.Steps[0].Axis != "descendant-or-self" {
		t.Errorf("// expansion: %+v", p2)
	}
	p3 := parseOK(t, `$a/b//c/@id/..`).(*Path)
	if p3.Root == nil || p3.Absolute {
		t.Error("rooted relative path")
	}
	wantAxes := []string{"child", "descendant-or-self", "child", "attribute", "parent"}
	if len(p3.Steps) != len(wantAxes) {
		t.Fatalf("steps = %d", len(p3.Steps))
	}
	for i, ax := range wantAxes {
		if p3.Steps[i].Axis != ax {
			t.Errorf("step %d axis = %s, want %s", i, p3.Steps[i].Axis, ax)
		}
	}
	p4 := parseOK(t, `child::a/descendant::text()/following-sibling::*`).(*Path)
	if p4.Steps[1].Axis != "descendant" || p4.Steps[1].Test.Kind != "text" {
		t.Errorf("explicit axes: %+v", p4.Steps)
	}
	if p4.Steps[2].Test.Kind != "elem" || p4.Steps[2].Test.Name != "" {
		t.Error("wildcard test")
	}
}

func TestPathPredicates(t *testing.T) {
	p := parseOK(t, `$b/bidder[1]/increase`).(*Path)
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if len(p.Steps[0].Preds) != 1 {
		t.Fatal("bidder predicate lost")
	}
	if l, ok := p.Steps[0].Preds[0].(*Lit); !ok || l.Val.I != 1 {
		t.Error("positional predicate")
	}
	f := parseOK(t, `(1, 2, 3)[2]`).(*Filter)
	if len(f.Preds) != 1 {
		t.Error("filter on parenthesized expr")
	}
	p2 := parseOK(t, `person[@id = "x"][name]`).(*Path)
	if len(p2.Steps[0].Preds) != 2 {
		t.Error("stacked predicates")
	}
}

func TestLoneSlashAndRootedPaths(t *testing.T) {
	p := parseOK(t, `/`).(*Path)
	if !p.Absolute || len(p.Steps) != 0 {
		t.Error("lone slash")
	}
	parseFail(t, `//`)
}

func TestFunctionCalls(t *testing.T) {
	c := parseOK(t, `fn:count(//item)`).(*FunCall)
	if c.Name != "fn:count" || len(c.Args) != 1 {
		t.Errorf("call: %+v", c)
	}
	c2 := parseOK(t, `count()`).(*FunCall)
	if len(c2.Args) != 0 {
		t.Error("empty args")
	}
	c3 := parseOK(t, `concat("a", "b", "c")`).(*FunCall)
	if len(c3.Args) != 3 {
		t.Error("multi args")
	}
	// A call can root a path.
	p := parseOK(t, `doc("x.xml")/site`).(*Path)
	if _, ok := p.Root.(*FunCall); !ok {
		t.Error("call-rooted path")
	}
}

func TestDirectConstructors(t *testing.T) {
	e := parseOK(t, `<result/>`).(*DirElem)
	if e.Tag != "result" || len(e.Content) != 0 {
		t.Errorf("empty elem: %+v", e)
	}
	e2 := parseOK(t, `<a x="1" y="{$v}">text {$w} more<b/></a>`).(*DirElem)
	if len(e2.Attrs) != 2 {
		t.Fatalf("attrs = %d", len(e2.Attrs))
	}
	if lit, ok := e2.Attrs[0].Parts[0].(*Lit); !ok || lit.Val.S != "1" {
		t.Error("attr literal part")
	}
	if _, ok := e2.Attrs[1].Parts[0].(*Var); !ok {
		t.Error("attr enclosed expr")
	}
	if len(e2.Content) != 4 { // "text ", {$w}, " more", <b/>
		t.Fatalf("content = %d items", len(e2.Content))
	}
	if lit := e2.Content[0].(*Lit); lit.Val.S != "text " {
		t.Errorf("content text = %q", lit.Val.S)
	}
	if _, ok := e2.Content[3].(*DirElem); !ok {
		t.Error("nested constructor")
	}
}

func TestDirectConstructorBoundarySpace(t *testing.T) {
	e := parseOK(t, "<a>\n  <b/>\n  <c/>\n</a>").(*DirElem)
	if len(e.Content) != 2 {
		t.Errorf("boundary whitespace must be stripped, content = %d", len(e.Content))
	}
}

func TestDirectConstructorEscapes(t *testing.T) {
	e := parseOK(t, `<a>x {{not expr}} &amp; y</a>`).(*DirElem)
	if len(e.Content) != 1 {
		t.Fatalf("content = %d", len(e.Content))
	}
	got := e.Content[0].(*Lit).Val.S
	if got != "x {not expr} & y" {
		t.Errorf("content = %q", got)
	}
}

func TestDirectConstructorEnclosedSequence(t *testing.T) {
	e := parseOK(t, `<a>{ $x, $y }</a>`).(*DirElem)
	if len(e.Content) != 1 {
		t.Fatalf("content = %d", len(e.Content))
	}
	if s, ok := e.Content[0].(*Seq); !ok || len(s.Items) != 2 {
		t.Error("enclosed comma sequence")
	}
}

func TestComputedConstructors(t *testing.T) {
	ce := parseOK(t, `element {"n"} {1, 2}`).(*CompElem)
	if ce.Name == nil || ce.Content == nil {
		t.Error("computed element")
	}
	ce2 := parseOK(t, `element results { () }`).(*CompElem)
	if lit, ok := ce2.Name.(*Lit); !ok || lit.Val.S != "results" {
		t.Error("fixed-name computed element")
	}
	ca := parseOK(t, `attribute id {$v}`).(*CompAttr)
	if ca.Name == nil || ca.Value == nil {
		t.Error("computed attribute")
	}
	ct := parseOK(t, `text {"hello"}`).(*CompText)
	if ct.Content == nil {
		t.Error("computed text")
	}
	// `element` used as a name test must still parse.
	p := parseOK(t, `$a/element`).(*Path)
	if p.Steps[0].Test.Name != "element" {
		t.Error("element as name test")
	}
}

func TestFunctionDeclarations(t *testing.T) {
	q, err := Parse(`
		declare function local:convert($v as xs:double?) as xs:double {
			2.20371 * $v
		};
		local:convert(100)`)
	if err != nil {
		t.Fatal(err)
	}
	fd := q.Funcs["local:convert"]
	if fd == nil {
		t.Fatal("function not declared")
	}
	if len(fd.Params) != 1 || fd.Params[0].Name != "v" || fd.Params[0].Type.Occ != '?' {
		t.Errorf("params: %+v", fd.Params)
	}
	if fd.Ret == nil || fd.Ret.Name != "xs:double" {
		t.Error("return type")
	}
	if _, ok := q.Body.(*FunCall); !ok {
		t.Error("body")
	}
}

func TestDuplicateFunctionRejected(t *testing.T) {
	_, err := Parse(`
		declare function local:f() { 1 };
		declare function local:f() { 2 };
		local:f()`)
	if err == nil {
		t.Error("duplicate declaration must fail")
	}
}

func TestComments(t *testing.T) {
	e := parseOK(t, `(: outer (: nested :) still :) 42`).(*Lit)
	if e.Val.I != 42 {
		t.Error("comment skipping")
	}
	parseFail(t, `(: unterminated`)
}

func TestSyntaxErrorsHavePositions(t *testing.T) {
	_, err := ParseExpr("for $x in (1,2) retrun $x")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.At.Line != 1 || perr.At.Col == 0 {
		t.Errorf("position: %+v", perr.At)
	}
	if !strings.Contains(perr.Error(), "syntax error") {
		t.Error("message")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`for in x return 1`,
		`let $x = 1 return $x`,             // := required
		`if ($a) then 1`,                   // missing else
		`<a><b></a>`,                       // mismatched constructor
		`<a x=5/>`,                         // unquoted attribute
		`<a>}</a>`,                         // unescaped }
		`$`,                                // dangling $
		`1 +`,                              // missing operand
		`(1, 2`,                            // unbalanced paren
		`typeswitch ($x) default return 1`, // no cases
		`"unterminated`,
		`&bogus;`,
	} {
		parseFail(t, src)
	}
}

func TestXMarkStyleQueryParses(t *testing.T) {
	src := `
	for $b in doc("auction.xml")/site/open_auctions/open_auction
	where zero-or-one($b/bidder[1]/increase/text()) * 2
	      <= $b/bidder[last()]/increase/text()
	return <increase first="{$b/bidder[1]/increase/text()}"
	                 last="{$b/bidder[last()]/increase/text()}"/>`
	e := parseOK(t, src).(*FLWOR)
	if e.Where == nil {
		t.Error("where")
	}
	de := e.Return.(*DirElem)
	if de.Tag != "increase" || len(de.Attrs) != 2 {
		t.Errorf("constructor: %+v", de)
	}
}

func TestLastCallInPredicate(t *testing.T) {
	p := parseOK(t, `$b/bidder[last()]`).(*Path)
	if c, ok := p.Steps[0].Preds[0].(*FunCall); !ok || c.Name != "last" {
		t.Error("last() predicate")
	}
}

func TestSeqTypeStrings(t *testing.T) {
	cases := map[string]string{
		"xs:integer":     "xs:integer",
		"element(a)?":    "element(a)?",
		"node()*":        "node()*",
		"item()+":        "item()+",
		"text()":         "text()",
		"empty-sequence": "empty-sequence",
	}
	for src, want := range cases {
		q, err := Parse(`declare function local:f($x as ` + src + `) { $x }; 1`)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		got := q.Funcs["local:f"].Params[0].Type.String()
		if got != want {
			t.Errorf("%s: got %s", src, got)
		}
	}
}
