package navdom

import (
	"fmt"
	"math/rand"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

// runOptimized runs the relational pipeline with the peephole optimizer in
// the loop, for three-way differential checks.
func runOptimized(src string, eng *engine.Engine, opts xqcore.Options) (string, error) {
	plan, _, err := core.CompileQuery(src, opts)
	if err != nil {
		return "", err
	}
	if plan, err = opt.Optimize(plan); err != nil {
		return "", err
	}
	res, err := eng.Eval(plan)
	if err != nil {
		return "", err
	}
	return serialize.Result(eng.Store, res)
}

const testDoc = `<site>
 <people>
  <person id="p1"><name>Alice</name><income>50000</income></person>
  <person id="p2"><name>Bob</name></person>
  <person id="p3"><name>Carol</name><income>90000</income></person>
 </people>
 <open_auctions>
  <open_auction id="a1"><seller person="p1"/><bidder><increase>5</increase></bidder><bidder><increase>20</increase></bidder><current>25</current></open_auction>
  <open_auction id="a2"><seller person="p3"/><current>7</current></open_auction>
 </open_auctions>
 <closed_auctions>
  <closed_auction><buyer person="p1"/><price>40</price></closed_auction>
  <closed_auction><buyer person="p1"/><price>60</price></closed_auction>
  <closed_auction><buyer person="p2"/><price>10</price></closed_auction>
 </closed_auctions>
</site>`

func newDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.LoadString("auction.xml", testDoc); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadAndSerializeRoundTrip(t *testing.T) {
	db := NewDB()
	src := `<a x="1"><b>hi</b><c/>tail</a>`
	doc, err := db.LoadString("r.xml", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := Serialize(doc); got != src {
		t.Errorf("round trip: %q", got)
	}
}

func TestDocumentOrderAndRoot(t *testing.T) {
	db := newDB(t)
	doc, _ := db.Doc("auction.xml")
	site := doc.Children[0]
	people := site.Children[0]
	if !site.Before(people) {
		t.Error("parent before child")
	}
	deep := people.Children[0].Children[0] // <name>
	if deep.Root() != doc {
		t.Error("root walk")
	}
	if got := people.Children[0].StringValue(); got != "Alice50000" {
		t.Errorf("string value = %q", got)
	}
}

func TestDuplicateLoadAndMissingDoc(t *testing.T) {
	db := newDB(t)
	if _, err := db.LoadString("auction.xml", "<x/>"); err == nil {
		t.Error("duplicate load must fail")
	}
	if _, err := db.Doc("nope.xml"); err == nil {
		t.Error("missing doc must fail")
	}
}

func runNav(t *testing.T, db *DB, src string) string {
	t.Helper()
	ip := NewInterp(db)
	out, err := ip.Run(src, xqcore.Options{ContextDoc: "auction.xml"})
	if err != nil {
		t.Fatalf("navdom run %q: %v", src, err)
	}
	return out
}

func TestInterpSmoke(t *testing.T) {
	db := newDB(t)
	cases := map[string]string{
		`1 + 2`:                             "3",
		`(1, 2, 3)`:                         "1 2 3",
		`for $v in (10,20) return $v + 100`: "110 120",
		`count(//person)`:                   "3",
		`//person[@id = "p2"]/name/text()`:  "Bob",
		`<a x="{1+1}">{"t"}</a>`:            `<a x="2">t</a>`,
		`sum(//price)`:                      "110",
		`some $p in //person satisfies $p/income > 80000`: "true",
	}
	for src, want := range cases {
		if got := runNav(t, db, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

// differentialQueries is the shared battery both engines must agree on.
var differentialQueries = []string{
	// literals, sequences, arithmetic
	`42`, `(1, 2, 3)`, `()`, `1 + 2 * 3`, `7 div 2`, `7 idiv 2`, `-(4) + 1`,
	`() + 1`, `1.5 * 2`,
	// comparisons and logic
	`1 < 2`, `(1,2,3) = 2`, `(1,2) != (1,2)`, `() = 1`, `1 eq 1`,
	`1 = 1 and 2 = 3`, `not(1 = 2)`, `"abc" lt "abd"`,
	// FLWOR
	`for $v in (10,20), $w in (100,200) return $v + $w`,
	`for $x in (1,2,3) return if ($x mod 2 = 1) then $x else ()`,
	`let $x := (1,2) return ($x, $x)`,
	`for $x in (3,1,2) order by $x return $x`,
	`for $x in (3,1,2) order by $x descending return $x`,
	`for $x at $i in ("a","b") return ($i, $x)`,
	`for $x in ("a","b","c") return position()`,
	`for $x in ("a","b","c") return last()`,
	// paths
	`count(//person)`, `count(//person/@id)`, `count(//node())`,
	`/site/people/person[1]/name/text()`,
	`/site/people/person[last()]/name/text()`,
	`count(//person[income])`,
	`//person[@id = "p2"]/name/text()`,
	`count(//increase/ancestor::open_auction)`,
	`count(//bidder/following-sibling::*)`,
	`count(//price/preceding::price)`,
	`count(//current/parent::open_auction)`,
	`count(//person/descendant-or-self::node())`,
	`count(//text()/ancestor::site)`,
	`data(//person[@id="p1"]/income)`,
	// functions
	`string(//person[1]/name)`, `string(())`, `string-length("hello")`,
	`concat("a","b","c")`, `contains("gold ring", "gold")`,
	`sum(//price)`, `max(//price)`, `min(//price)`, `avg((2,4))`,
	`count(())`, `sum(())`, `empty(())`, `exists(//person)`,
	`string-join(("a","b"), "-")`,
	// aggregates in loops (defaults)
	`for $p in //person return count($p/income)`,
	`for $p in //person return sum($p/income)`,
	// quantifiers
	`some $x in (1,2,3) satisfies $x > 2`,
	`every $x in (1,2,3) satisfies $x > 1`,
	`some $p in //person satisfies $p/income > 80000`,
	// node comparisons
	`(//person)[1] << (//person)[2]`,
	`(//person)[1] is (//person)[1]`,
	// constructors
	`<a/>`, `<a x="1">t</a>`, `<a>{1 + 1}</a>`, `<a>{(1,2)}</a>`,
	`<out>{//person[1]/name}</out>`,
	`element foo {"bar"}`, `text {"hi"}`, `text {()}`,
	`<e>{attribute n {42}}</e>`,
	`<p name="{//person[1]/name/text()}"/>`,
	`for $i in (1,2) return <n v="{$i}"/>`,
	// typeswitch
	`typeswitch (1) case xs:integer return "int" default return "other"`,
	`typeswitch (//person[1]) case element(person) return "p" default return "o"`,
	`typeswitch ((1,2)) case xs:integer return "one" case xs:integer+ return "many" default return "o"`,
	// where and joins
	`for $p in //person where $p/income > 60000 return $p/name/text()`,
	`for $p in //person where empty($p/income) return string($p/@id)`,
	`for $p in //person
	 return count(for $t in doc("auction.xml")/site/closed_auctions/closed_auction
	        where $t/buyer/@person = $p/@id return $t)`,
	`for $p in //person
	 return count(for $i in doc("auction.xml")/site/open_auctions/open_auction/bidder/increase
	        where $p/income > 5000 * $i return $i)`,
	// order by over nodes with empty keys
	`for $p in //person order by $p/income return string($p/@id)`,
	// order by referencing a let variable (substituted at normalization)
	`for $a in //open_auction
	 let $n := count($a/bidder)
	 order by $n descending, $a/@id
	 return <x b="{$n}"/>`,
	// UDF
	`declare function local:double($v) { 2 * $v };
	 for $p in //price return local:double($p)`,
	// document order / ddo
	`count(fs:distinct-doc-order((//person, //person)))`,
	`root((//name)[1]) is doc("auction.xml")`,
	// extended dialect: ranges, set operators, distinct-values, strings
	`1 to 5`,
	`for $i in 1 to 3 return $i * 10`,
	`count(2 to 1)`,
	`sum(for $p in //person return count(1 to count($p/income)))`,
	`count(//person | //price)`,
	`count(//person union //person)`,
	`count((//person, //price) intersect //person)`,
	`count((//person, //price) except //person)`,
	`//name | //name[1]`,
	`distinct-values((1, 2, 1, 3, 2))`,
	`distinct-values(//closed_auction/type)`,
	`count(distinct-values(//buyer/@person))`,
	`substring("motor car", 6)`,
	`substring("metadata", 4, 3)`,
	`substring("12345", 1.5, 2.6)`,
	`substring((), 2)`,
	`name((//person)[1])`,
	`name((//person)[1]/@id)`,
	`for $n in //person/name order by name($n) return 1`,
	// conjunctive join predicate (compiler unnests on the equi-conjunct)
	`for $p in //person
	 return count(for $t in doc("auction.xml")/site/closed_auctions/closed_auction
	        where $t/buyer/@person = $p/@id and $t/price > 50
	        return $t)`,
}

// TestDifferentialEngines runs every battery query through both the
// relational pipeline (parse → normalize → loop-lift → column engine) and
// the navigational interpreter, and requires byte-identical serialized
// results — the strongest cross-check between the paper's system and its
// baseline.
func TestDifferentialEngines(t *testing.T) {
	db := newDB(t)
	eng := engine.New(xenc.NewStore())
	if _, err := eng.Store.LoadDocumentString("auction.xml", testDoc); err != nil {
		t.Fatal(err)
	}
	opts := xqcore.Options{ContextDoc: "auction.xml"}
	for _, src := range differentialQueries {
		rel, errR := core.Run(src, eng, opts)
		nav, errN := NewInterp(db).Run(src, opts)
		if (errR == nil) != (errN == nil) {
			t.Errorf("%s: error mismatch: relational=%v navigational=%v", src, errR, errN)
			continue
		}
		if errR != nil {
			continue
		}
		if rel != nav {
			t.Errorf("%s:\n relational   = %q\n navigational = %q", src, rel, nav)
			continue
		}
		// Three-way: the peephole optimizer must not change results.
		optd, errO := runOptimized(src, eng, opts)
		if errO != nil {
			t.Errorf("%s: optimized pipeline error: %v", src, errO)
			continue
		}
		if optd != rel {
			t.Errorf("%s:\n plain     = %q\n optimized = %q", src, rel, optd)
		}
	}
}

func TestCommentsAcrossEngines(t *testing.T) {
	const doc = `<r><!--first--><a/><!--second--><b><!--third--></b></r>`
	db := NewDB()
	if _, err := db.LoadString("c.xml", doc); err != nil {
		t.Fatal(err)
	}
	eng := engine.New(xenc.NewStore())
	if _, err := eng.Store.LoadDocumentString("c.xml", doc); err != nil {
		t.Fatal(err)
	}
	opts := xqcore.Options{ContextDoc: "c.xml"}
	for q, want := range map[string]string{
		`count(//comment())`:              "3",
		`count(/r/comment())`:             "2",
		`/r/b/comment()`:                  "<!--third-->",
		`count(//a/following::comment())`: "2",
	} {
		rel, err1 := core.Run(q, eng, opts)
		nav, err2 := NewInterp(db).Run(q, opts)
		if err1 != nil || err2 != nil {
			t.Errorf("%s: rel err=%v nav err=%v", q, err1, err2)
			continue
		}
		if rel != want || nav != want {
			t.Errorf("%s: rel=%q nav=%q want=%q", q, rel, nav, want)
		}
	}
}

func TestValueIndexFastPath(t *testing.T) {
	db := newDB(t)
	q := `for $p in //person
	      return count(for $t in doc("auction.xml")/site/closed_auctions/closed_auction
	             where $t/buyer/@person = $p/@id return $t)`
	plain := runNav(t, db, q)

	db2 := newDB(t)
	db2.AddValueIndex("buyer", "person")
	if !db2.HasIndex("buyer", "person") {
		t.Fatal("index not registered")
	}
	indexed := runNav(t, db2, q)
	if plain != indexed {
		t.Errorf("index fast path changed results: %q vs %q", plain, indexed)
	}
	if plain != "2 1 0" {
		t.Errorf("Q8-shape result = %q", plain)
	}
}

func TestIndexLookup(t *testing.T) {
	db := newDB(t)
	db.AddValueIndex("buyer", "person")
	hits, ok := db.lookupIndex("buyer", "person", "p1")
	if !ok || len(hits) != 2 {
		t.Errorf("index hits = %d, ok=%v", len(hits), ok)
	}
	if _, ok := db.lookupIndex("seller", "person", "p1"); ok {
		t.Error("unindexed path must report !ok")
	}
}

// randQuery emits a random query from a small grammar where both engines
// have identical semantics.
func randQuery(r *rand.Rand) string {
	paths := []string{"//person", "//price", "//name", "//open_auction", "//bidder"}
	atoms := []string{"1", "2", "40", `"x"`, "(1,2)", "()"}
	nums := []string{"1", "2", "40", "3.5"}
	// num yields a numeric singleton — arithmetic over longer sequences is
	// a type error that only the navigational engine detects.
	num := func() string {
		if r.Intn(3) == 0 {
			return fmt.Sprintf("count(%s)", paths[r.Intn(len(paths))])
		}
		return nums[r.Intn(len(nums))]
	}
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth > 2 {
			return atoms[r.Intn(len(atoms))]
		}
		switch r.Intn(12) {
		case 0:
			return fmt.Sprintf("count(%s)", paths[r.Intn(len(paths))])
		case 1:
			return fmt.Sprintf("(%s + %s)", num(), num())
		case 2:
			return fmt.Sprintf("for $v%d in (%s, %s) return ($v%d, %s)",
				depth, gen(depth+1), gen(depth+1), depth, gen(depth+1))
		case 3:
			return fmt.Sprintf("if (%s = %s) then %s else %s",
				gen(depth+1), gen(depth+1), gen(depth+1), gen(depth+1))
		case 4:
			return fmt.Sprintf("sum(for $s%d in %s return 1)", depth, paths[r.Intn(len(paths))])
		case 5:
			return fmt.Sprintf("<w>{%s}</w>", gen(depth+1))
		case 6:
			return fmt.Sprintf("string(%s)", atoms[r.Intn(len(atoms))])
		case 7:
			return fmt.Sprintf("(%s to %s)", num(), num())
		case 8:
			return fmt.Sprintf("count(%s | %s)",
				paths[r.Intn(len(paths))], paths[r.Intn(len(paths))])
		case 9:
			return fmt.Sprintf("count(%s except %s)",
				paths[r.Intn(len(paths))], paths[r.Intn(len(paths))])
		case 10:
			return fmt.Sprintf("distinct-values((%s, %s))", gen(depth+1), gen(depth+1))
		case 11:
			// substring's first argument must be a singleton string.
			return fmt.Sprintf("substring(string(%s), %s)", num(), num())
		default:
			return fmt.Sprintf("(%s)[1]", paths[r.Intn(len(paths))])
		}
	}
	return gen(0)
}

// TestQuickRandomDifferential cross-checks randomly generated queries.
func TestQuickRandomDifferential(t *testing.T) {
	db := newDB(t)
	eng := engine.New(xenc.NewStore())
	if _, err := eng.Store.LoadDocumentString("auction.xml", testDoc); err != nil {
		t.Fatal(err)
	}
	opts := xqcore.Options{ContextDoc: "auction.xml"}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		src := randQuery(r)
		rel, errR := core.Run(src, eng, opts)
		nav, errN := NewInterp(db).Run(src, opts)
		if (errR == nil) != (errN == nil) {
			t.Fatalf("query %d %s: error mismatch rel=%v nav=%v", i, src, errR, errN)
		}
		if errR != nil {
			continue
		}
		if rel != nav {
			t.Fatalf("query %d %s:\n rel = %q\n nav = %q", i, src, rel, nav)
		}
		optd, errO := runOptimized(src, eng, opts)
		if errO != nil || optd != rel {
			t.Fatalf("query %d %s: optimizer divergence: %q vs %q (err %v)",
				i, src, rel, optd, errO)
		}
	}
}
