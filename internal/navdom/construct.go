package navdom

import (
	"fmt"
	"strings"

	"pathfinder/internal/xqcore"
)

// constructor support: built trees get a fresh DocID so node identity and
// document order behave like the relational engine's fresh fragments.

type builder struct {
	docID int
	ord   int
}

func (b *builder) node(kind NodeKind) *Node {
	b.ord++
	return &Node{Kind: kind, DocID: b.docID, Ord: b.ord}
}

// copyNode deep-copies a subtree into the builder's tree space.
func (b *builder) copyNode(src *Node) *Node {
	n := b.node(src.Kind)
	n.Name, n.Text = src.Name, src.Text
	for _, a := range src.Attrs {
		ca := b.node(Attr)
		ca.Name, ca.Text = a.Name, a.Text
		ca.Parent = n
		n.Attrs = append(n.Attrs, ca)
	}
	for _, c := range src.Children {
		cc := b.copyNode(c)
		cc.Parent = n
		n.Children = append(n.Children, cc)
	}
	return n
}

func (ip *Interp) evalElemC(x *xqcore.ElemC, en *env) ([]Item, error) {
	names, err := ip.Eval(x.Name, en)
	if err != nil {
		return nil, err
	}
	if len(names) != 1 {
		return nil, fmt.Errorf("element constructor name is not a singleton")
	}
	name := names[0].stringValue()
	if name == "" {
		return nil, fmt.Errorf("empty element name")
	}
	content, err := ip.Eval(x.Content, en)
	if err != nil {
		return nil, err
	}
	b := &builder{docID: ip.DB.nextDocID()}
	el := b.node(Elem)
	el.Name = name
	var pendingText strings.Builder
	pendingAny := false
	flush := func() {
		if pendingAny {
			// Empty accumulated text constructs no node, matching the
			// relational fragment builder.
			if s := pendingText.String(); s != "" {
				t := b.node(Text)
				t.Text = s
				t.Parent = el
				el.Children = append(el.Children, t)
			}
			pendingText.Reset()
			pendingAny = false
		}
	}
	for _, it := range content {
		if it.Node != nil {
			flush()
			switch it.Node.Kind {
			case Attr:
				if len(el.Children) > 0 {
					return nil, fmt.Errorf("attribute after element content")
				}
				a := b.node(Attr)
				a.Name, a.Text = it.Node.Name, it.Node.Text
				a.Parent = el
				el.Attrs = append(el.Attrs, a)
			case Doc:
				for _, c := range it.Node.Children {
					cc := b.copyNode(c)
					cc.Parent = el
					el.Children = append(el.Children, cc)
				}
			default:
				cc := b.copyNode(it.Node)
				cc.Parent = el
				el.Children = append(el.Children, cc)
			}
			continue
		}
		if pendingAny {
			pendingText.WriteByte(' ')
		}
		pendingText.WriteString(it.Atom.StringValue())
		pendingAny = true
	}
	flush()
	// Merge adjacent text children (copied text nodes next to constructed
	// ones) the way serialization expects? Serialization concatenates
	// naturally; identity-wise they stay separate nodes, as in Pathfinder.
	return []Item{{Node: el}}, nil
}

func (ip *Interp) evalAttrC(x *xqcore.AttrC, en *env) ([]Item, error) {
	names, err := ip.Eval(x.Name, en)
	if err != nil {
		return nil, err
	}
	if len(names) != 1 {
		return nil, fmt.Errorf("attribute constructor name is not a singleton")
	}
	name := names[0].stringValue()
	if name == "" {
		return nil, fmt.Errorf("empty attribute name")
	}
	vals, err := ip.Eval(x.Value, en)
	if err != nil {
		return nil, err
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.atomize().StringValue()
	}
	b := &builder{docID: ip.DB.nextDocID()}
	a := b.node(Attr)
	a.Name = name
	a.Text = strings.Join(parts, " ")
	return []Item{{Node: a}}, nil
}

func (ip *Interp) evalTextC(x *xqcore.TextC, en *env) ([]Item, error) {
	content, err := ip.Eval(x.Content, en)
	if err != nil {
		return nil, err
	}
	if len(content) == 0 {
		return nil, nil
	}
	parts := make([]string, len(content))
	for i, v := range content {
		parts[i] = v.atomize().StringValue()
	}
	s := strings.Join(parts, " ")
	if s == "" {
		return nil, nil
	}
	b := &builder{docID: ip.DB.nextDocID()}
	t := b.node(Text)
	t.Text = s
	return []Item{{Node: t}}, nil
}
