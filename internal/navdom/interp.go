package navdom

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xqcore"
)

// Item is one navigational value: an atomic (Node == nil) or a DOM node.
type Item struct {
	Atom bat.Item
	Node *Node
}

func atomic(v bat.Item) Item { return Item{Atom: v} }

// atomize returns the typed value of the item (untyped for nodes).
func (it Item) atomize() bat.Item {
	if it.Node != nil {
		return bat.Untyped(it.Node.StringValue())
	}
	return it.Atom
}

func (it Item) stringValue() string {
	if it.Node != nil {
		return it.Node.StringValue()
	}
	return it.Atom.StringValue()
}

// env is a chained variable environment.
type env struct {
	name   string
	val    []Item
	parent *env
}

func (e *env) bind(name string, val []Item) *env {
	return &env{name: name, val: val, parent: e}
}

func (e *env) lookup(name string) ([]Item, bool) {
	for x := e; x != nil; x = x.parent {
		if x.name == name {
			return x.val, true
		}
	}
	return nil, false
}

// Interp evaluates XQuery Core recursively over the DOM — the
// node-at-a-time, nested-loop processing model the paper ascribes to
// navigational engines. Variable-free subexpressions (document paths) are
// cached per query, the one "database-style" courtesy extended to the
// baseline so value indices can pay off the way they did for the paper's
// tuned X-Hive install.
type Interp struct {
	DB *DB

	// Deadline, when non-zero, aborts evaluation once exceeded (checked
	// on every loop iteration) — the benchmark harness's DNF mechanism
	// for the baseline, whose join queries genuinely do not finish at
	// larger scale factors (Table 3's DNF entries).
	Deadline time.Time

	memo    map[xqcore.Expr][]Item
	varFree map[xqcore.Expr]bool
}

// NewInterp returns an interpreter over db.
func NewInterp(db *DB) *Interp {
	return &Interp{
		DB:      db,
		memo:    make(map[xqcore.Expr][]Item),
		varFree: make(map[xqcore.Expr]bool),
	}
}

// Run parses, normalizes, and evaluates a query, returning the serialized
// result (comparable byte-for-byte with the relational pipeline's output).
func (ip *Interp) Run(src string, opt xqcore.Options) (string, error) {
	core, err := xqcore.NormalizeExpr(src, opt)
	if err != nil {
		return "", err
	}
	items, err := ip.Eval(core, nil)
	if err != nil {
		return "", err
	}
	return SerializeItems(items), nil
}

// SerializeItems renders an item sequence using the XQuery serialization
// rules (adjacent atomics space-separated, nodes as XML).
func SerializeItems(items []Item) string {
	var sb strings.Builder
	prevAtomic := false
	for _, it := range items {
		if it.Node != nil {
			serializeTo(&sb, it.Node)
			prevAtomic = false
			continue
		}
		if prevAtomic {
			sb.WriteByte(' ')
		}
		sb.WriteString(it.Atom.StringValue())
		prevAtomic = true
	}
	return sb.String()
}

func (ip *Interp) isVarFree(e xqcore.Expr) bool {
	if v, ok := ip.varFree[e]; ok {
		return v
	}
	// position()/last() depend on the implicit loop context even though no
	// variable occurs free, so they must not be cached either.
	v := len(xqcore.FreeVars(e)) == 0 && !xqcore.UsesPositionOrLast(e)
	ip.varFree[e] = v
	return v
}

// Eval evaluates e under en.
func (ip *Interp) Eval(e xqcore.Expr, en *env) ([]Item, error) {
	if ip.isVarFree(e) {
		if cached, ok := ip.memo[e]; ok {
			return cached, nil
		}
		out, err := ip.eval(e, en)
		if err != nil {
			return nil, err
		}
		ip.memo[e] = out
		return out, nil
	}
	return ip.eval(e, en)
}

func (ip *Interp) eval(e xqcore.Expr, en *env) ([]Item, error) {
	switch x := e.(type) {
	case *xqcore.Lit:
		return []Item{atomic(x.Val)}, nil
	case *xqcore.Empty:
		return nil, nil
	case *xqcore.Seq:
		l, err := ip.Eval(x.L, en)
		if err != nil {
			return nil, err
		}
		r, err := ip.Eval(x.R, en)
		if err != nil {
			return nil, err
		}
		return append(append([]Item{}, l...), r...), nil
	case *xqcore.Var:
		v, ok := en.lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("unbound variable $%s", x.Name)
		}
		return v, nil
	case *xqcore.Let:
		bound, err := ip.Eval(x.Bound, en)
		if err != nil {
			return nil, err
		}
		return ip.Eval(x.Body, en.bind(x.Var, bound))
	case *xqcore.For:
		return ip.evalFor(x, en)
	case *xqcore.If:
		c, err := ip.evalEbv(x.Cond, en)
		if err != nil {
			return nil, err
		}
		if c {
			return ip.Eval(x.Then, en)
		}
		return ip.Eval(x.Else, en)
	case *xqcore.BinOp:
		return ip.evalBinOp(x, en)
	case *xqcore.GenCmp:
		b, err := ip.evalGenCmp(x, en)
		if err != nil {
			return nil, err
		}
		return []Item{atomic(bat.Bool(b))}, nil
	case *xqcore.NodeCmp:
		return ip.evalNodeCmp(x, en)
	case *xqcore.Ebv:
		b, err := ip.evalEbv(x.X, en)
		if err != nil {
			return nil, err
		}
		return []Item{atomic(bat.Bool(b))}, nil
	case *xqcore.StepEx:
		in, err := ip.Eval(x.In, en)
		if err != nil {
			return nil, err
		}
		return ip.step(in, x.Axis, x.Test)
	case *xqcore.DDO:
		in, err := ip.Eval(x.X, en)
		if err != nil {
			return nil, err
		}
		nodes := make([]*Node, 0, len(in))
		for _, it := range in {
			if it.Node == nil {
				return nil, fmt.Errorf("fs:distinct-doc-order over atomic items")
			}
			nodes = append(nodes, it.Node)
		}
		return nodeItems(sortDedup(nodes)), nil
	case *xqcore.Doc:
		return ip.evalDoc(x, en)
	case *xqcore.Coll:
		// The DOM database is one collection: fn:collection yields every
		// loaded document in load order, whatever the name argument (the
		// relational engine enforces name binding; the baseline only has
		// to agree on the result).
		if _, err := ip.Eval(x.X, en); err != nil {
			return nil, err
		}
		out := []Item{}
		for _, d := range ip.DB.DocsInOrder() {
			out = append(out, Item{Node: d})
		}
		return out, nil
	case *xqcore.Root:
		in, err := ip.Eval(x.X, en)
		if err != nil {
			return nil, err
		}
		out := make([]Item, len(in))
		for i, it := range in {
			if it.Node == nil {
				return nil, fmt.Errorf("fn:root over atomic item")
			}
			n := it.Node
			if n.Kind == Attr {
				n = n.Parent
			}
			out[i] = Item{Node: n.Root()}
		}
		return out, nil
	case *xqcore.Data:
		in, err := ip.Eval(x.X, en)
		if err != nil {
			return nil, err
		}
		out := make([]Item, len(in))
		for i, it := range in {
			out[i] = atomic(it.atomize())
		}
		return out, nil
	case *xqcore.ElemC:
		return ip.evalElemC(x, en)
	case *xqcore.AttrC:
		return ip.evalAttrC(x, en)
	case *xqcore.TextC:
		return ip.evalTextC(x, en)
	case *xqcore.InstanceOf:
		return ip.evalInstanceOf(x, en)
	case *xqcore.Call:
		return ip.evalCall(x, en)
	case *xqcore.PosFilter:
		in, err := ip.Eval(x.In, en)
		if err != nil {
			return nil, err
		}
		idx := x.Nth
		if x.Last {
			idx = int64(len(in))
		}
		if idx < 1 || idx > int64(len(in)) {
			return nil, nil
		}
		return in[idx-1 : idx], nil
	}
	return nil, fmt.Errorf("unsupported core node %T", e)
}

func nodeItems(nodes []*Node) []Item {
	out := make([]Item, len(nodes))
	for i, n := range nodes {
		out[i] = Item{Node: n}
	}
	return out
}

func sortDedup(nodes []*Node) []*Node {
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].Before(nodes[j]) })
	w := 0
	for i, n := range nodes {
		if i == 0 || nodes[w-1] != n {
			nodes[w] = n
			w++
		}
	}
	return nodes[:w]
}

func (ip *Interp) evalDoc(x *xqcore.Doc, en *env) ([]Item, error) {
	uris, err := ip.Eval(x.X, en)
	if err != nil {
		return nil, err
	}
	out := make([]Item, len(uris))
	for i, u := range uris {
		d, err := ip.DB.Doc(u.stringValue())
		if err != nil {
			return nil, err
		}
		out[i] = Item{Node: d}
	}
	return out, nil
}

// evalEbv computes the effective boolean value of an expression.
func (ip *Interp) evalEbv(e xqcore.Expr, en *env) (bool, error) {
	items, err := ip.Eval(e, en)
	if err != nil {
		return false, err
	}
	for _, it := range items {
		if it.Node != nil {
			return true, nil
		}
		a := it.Atom
		switch a.Kind {
		case bat.KBool:
			if a.B {
				return true, nil
			}
		case bat.KInt:
			if a.I != 0 {
				return true, nil
			}
		case bat.KFloat:
			if a.F != 0 && !math.IsNaN(a.F) {
				return true, nil
			}
		default:
			if a.S != "" {
				return true, nil
			}
		}
	}
	return false, nil
}

func (ip *Interp) evalBinOp(x *xqcore.BinOp, en *env) ([]Item, error) {
	l, err := ip.Eval(x.L, en)
	if err != nil {
		return nil, err
	}
	r, err := ip.Eval(x.R, en)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "and", "or":
		if len(l) != 1 || len(r) != 1 {
			return nil, fmt.Errorf("%s over non-singleton booleans", x.Op)
		}
		a, b := l[0].Atom, r[0].Atom
		if a.Kind != bat.KBool || b.Kind != bat.KBool {
			return nil, fmt.Errorf("%s over non-booleans", x.Op)
		}
		if x.Op == "and" {
			return []Item{atomic(bat.Bool(a.B && b.B))}, nil
		}
		return []Item{atomic(bat.Bool(a.B || b.B))}, nil
	case "+", "-", "*", "div", "idiv", "mod":
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		if len(l) > 1 || len(r) > 1 {
			return nil, fmt.Errorf("arithmetic over a sequence of %d items", max(len(l), len(r)))
		}
		v, err := arith(x.Op, l[0].atomize(), r[0].atomize())
		if err != nil {
			return nil, err
		}
		return []Item{atomic(v)}, nil
	case "eq", "ne", "lt", "le", "gt", "ge":
		// Value comparisons: empty operand yields empty; otherwise the
		// pairwise comparison (existential over sequences, matching the
		// relational engine's iter-join semantics).
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		opMap := map[string]string{"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
		b, err := cmpExistential(opMap[x.Op], l, r)
		if err != nil {
			return nil, err
		}
		return []Item{atomic(bat.Bool(b))}, nil
	}
	return nil, fmt.Errorf("unsupported operator %q", x.Op)
}

func (ip *Interp) evalGenCmp(x *xqcore.GenCmp, en *env) (bool, error) {
	l, err := ip.Eval(x.L, en)
	if err != nil {
		return false, err
	}
	r, err := ip.Eval(x.R, en)
	if err != nil {
		return false, err
	}
	return cmpExistential(x.Op, l, r)
}

func cmpExistential(op string, l, r []Item) (bool, error) {
	for _, a := range l {
		for _, b := range r {
			c, err := bat.Compare(a.atomize(), b.atomize())
			if err != nil {
				return false, err
			}
			hit := false
			switch op {
			case "=":
				hit = c == 0
			case "!=":
				hit = c != 0
			case "<":
				hit = c < 0
			case "<=":
				hit = c <= 0
			case ">":
				hit = c > 0
			case ">=":
				hit = c >= 0
			}
			if hit {
				return true, nil
			}
		}
	}
	return false, nil
}

func (ip *Interp) evalNodeCmp(x *xqcore.NodeCmp, en *env) ([]Item, error) {
	l, err := ip.Eval(x.L, en)
	if err != nil {
		return nil, err
	}
	r, err := ip.Eval(x.R, en)
	if err != nil {
		return nil, err
	}
	if len(l) == 0 || len(r) == 0 {
		return nil, nil
	}
	if len(l) > 1 || len(r) > 1 || l[0].Node == nil || r[0].Node == nil {
		return nil, fmt.Errorf("node comparison needs single nodes")
	}
	a, b := l[0].Node, r[0].Node
	var res bool
	switch x.Op {
	case "is":
		res = a == b
	case "<<":
		res = a.Before(b)
	case ">>":
		res = b.Before(a)
	}
	return []Item{atomic(bat.Bool(res))}, nil
}

// arith mirrors the relational engine's numeric promotion rules.
func arith(op string, a, b bat.Item) (bat.Item, error) {
	af, bf := a.AsFloat(), b.AsFloat()
	if math.IsNaN(af) || math.IsNaN(bf) {
		return bat.Item{}, fmt.Errorf("arithmetic on non-numeric operand (%s, %s)",
			a.StringValue(), b.StringValue())
	}
	bothInt := a.Kind == bat.KInt && b.Kind == bat.KInt
	switch op {
	case "+":
		if bothInt {
			return bat.Int(a.I + b.I), nil
		}
		return bat.Float(af + bf), nil
	case "-":
		if bothInt {
			return bat.Int(a.I - b.I), nil
		}
		return bat.Float(af - bf), nil
	case "*":
		if bothInt {
			return bat.Int(a.I * b.I), nil
		}
		return bat.Float(af * bf), nil
	case "div":
		if bf == 0 && bothInt {
			return bat.Item{}, fmt.Errorf("division by zero")
		}
		return bat.Float(af / bf), nil
	case "idiv":
		if bf == 0 {
			return bat.Item{}, fmt.Errorf("integer division by zero")
		}
		return bat.Int(int64(af / bf)), nil
	case "mod":
		if bothInt {
			if b.I == 0 {
				return bat.Item{}, fmt.Errorf("modulo by zero")
			}
			return bat.Int(a.I % b.I), nil
		}
		return bat.Float(math.Mod(af, bf)), nil
	}
	return bat.Item{}, fmt.Errorf("unknown arithmetic operator %q", op)
}

func (ip *Interp) evalInstanceOf(x *xqcore.InstanceOf, en *env) ([]Item, error) {
	items, err := ip.Eval(x.X, en)
	if err != nil {
		return nil, err
	}
	lo, hi := 1, 1
	switch x.Occ {
	case '?':
		lo, hi = 0, 1
	case '*':
		lo, hi = 0, -1
	case '+':
		lo, hi = 1, -1
	}
	ok := len(items) >= lo && (hi < 0 || len(items) <= hi)
	if ok {
		for _, it := range items {
			if !itemMatchesType(it, x.Of, x.OfName) {
				ok = false
				break
			}
		}
	}
	return []Item{atomic(bat.Bool(ok))}, nil
}

func itemMatchesType(it Item, ty algebra.SeqType, name string) bool {
	if it.Node != nil {
		switch ty {
		case algebra.TyItem, algebra.TyNode:
			return true
		case algebra.TyElem:
			return it.Node.Kind == Elem && (name == "" || it.Node.Name == name)
		case algebra.TyText:
			return it.Node.Kind == Text
		case algebra.TyAttr:
			return it.Node.Kind == Attr && (name == "" || it.Node.Name == name)
		case algebra.TyDocNode:
			return it.Node.Kind == Doc
		}
		return false
	}
	switch ty {
	case algebra.TyItem, algebra.TyAtomic:
		return true
	case algebra.TyInteger:
		return it.Atom.Kind == bat.KInt
	case algebra.TyDouble:
		return it.Atom.Kind == bat.KFloat
	case algebra.TyNumeric:
		return it.Atom.Kind == bat.KInt || it.Atom.Kind == bat.KFloat
	case algebra.TyString:
		return it.Atom.Kind == bat.KStr
	case algebra.TyBoolean:
		return it.Atom.Kind == bat.KBool
	case algebra.TyUntyped:
		return it.Atom.Kind == bat.KUntyped
	}
	return false
}
