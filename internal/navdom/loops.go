package navdom

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xqcore"
)

// evalFor is the nested-loop FLWOR evaluation of a navigational engine:
// the binding sequence is materialized, then the body is re-evaluated once
// per binding — "in a sense only ... nested loop, i.e., recursive,
// processing" (§2 of the paper). A value-index fast path mirrors the
// X-Hive tuning: equality where-clauses over indexed element/@attribute
// paths resolve candidates through the index instead of filtering the full
// binding sequence.
func (ip *Interp) evalFor(f *xqcore.For, en *env) ([]Item, error) {
	in, err := ip.Eval(f.In, en)
	if err != nil {
		return nil, err
	}
	if out, ok, err := ip.tryIndexedWhere(f, in, en); err != nil {
		return nil, err
	} else if ok {
		return out, nil
	}

	type bindingRow struct {
		item Item
		pos  int64
		keys []bat.Item // order-by keys; nil entry = empty key (sorts first)
	}
	rows := make([]bindingRow, len(in))
	for i, it := range in {
		rows[i] = bindingRow{item: it, pos: int64(i + 1)}
	}
	if len(f.Order) > 0 {
		for i := range rows {
			be := ip.bindLoop(f, en, rows[i].item, rows[i].pos, int64(len(in)))
			for _, k := range f.Order {
				kv, err := ip.Eval(k.Key, be)
				if err != nil {
					return nil, err
				}
				var key bat.Item
				switch len(kv) {
				case 0:
					key = bat.Str("") // empty least
				case 1:
					key = kv[0].atomize()
				default:
					return nil, fmt.Errorf("order by key is not a singleton")
				}
				rows[i].keys = append(rows[i].keys, key)
			}
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for ki := range f.Order {
				c := bat.CompareTotal(rows[a].keys[ki], rows[b].keys[ki])
				if f.Order[ki].Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	var out []Item
	for i, row := range rows {
		if !ip.Deadline.IsZero() && i%64 == 0 && time.Now().After(ip.Deadline) {
			return nil, fmt.Errorf("deadline exceeded in for loop")
		}
		be := ip.bindLoop(f, en, row.item, row.pos, int64(len(in)))
		r, err := ip.Eval(f.Body, be)
		if err != nil {
			return nil, err
		}
		out = append(out, r...)
	}
	return out, nil
}

func (ip *Interp) bindLoop(f *xqcore.For, en *env, item Item, pos, last int64) *env {
	be := en.bind(f.Var, []Item{item})
	if f.PosVar != "" {
		be = be.bind(f.PosVar, []Item{atomic(bat.Int(pos))})
	}
	be = be.bind("fs:position", []Item{atomic(bat.Int(pos))})
	be = be.bind("fs:last", []Item{atomic(bat.Int(last))})
	return be
}

// tryIndexedWhere applies the value-index fast path to
// `for $v in E return if (data($v/e/@a) = B) then T else ()`.
func (ip *Interp) tryIndexedWhere(f *xqcore.For, in []Item, en *env) ([]Item, bool, error) {
	if f.PosVar != "" || len(f.Order) > 0 {
		return nil, false, nil
	}
	iff, ok := f.Body.(*xqcore.If)
	if !ok {
		return nil, false, nil
	}
	if _, isEmpty := iff.Else.(*xqcore.Empty); !isEmpty {
		return nil, false, nil
	}
	cmp, ok := iff.Cond.(*xqcore.GenCmp)
	if !ok || cmp.Op != "=" {
		return nil, false, nil
	}
	elemName, attrName, okPath := attrPathOverVar(cmp.L, f.Var)
	other := cmp.R
	if !okPath {
		elemName, attrName, okPath = attrPathOverVar(cmp.R, f.Var)
		other = cmp.L
	}
	if !okPath || !ip.DB.HasIndex(elemName, attrName) {
		return nil, false, nil
	}
	if xqcore.FreeVars(other)[f.Var] || xqcore.UsesPositionOrLast(f.Body) {
		return nil, false, nil
	}

	inSet := make(map[*Node]bool, len(in))
	for _, it := range in {
		if it.Node == nil {
			return nil, false, nil
		}
		inSet[it.Node] = true
	}
	vals, err := ip.Eval(other, en)
	if err != nil {
		return nil, false, err
	}
	var candidates []*Node
	for _, v := range vals {
		hits, _ := ip.DB.lookupIndex(elemName, attrName, v.stringValue())
		for _, h := range hits {
			for n := h; n != nil; n = n.Parent {
				if inSet[n] {
					candidates = append(candidates, n)
					break
				}
			}
		}
	}
	candidates = sortDedup(candidates)
	var out []Item
	for i, n := range candidates {
		be := ip.bindLoop(f, en, Item{Node: n}, int64(i+1), int64(len(candidates)))
		r, err := ip.Eval(iff.Then, be)
		if err != nil {
			return nil, false, err
		}
		out = append(out, r...)
	}
	return out, true, nil
}

// attrPathOverVar matches (possibly Data-wrapped) $v/child::E/attribute::A
// and returns E and A.
func attrPathOverVar(e xqcore.Expr, v string) (elem, attr string, ok bool) {
	if d, isData := e.(*xqcore.Data); isData {
		e = d.X
	}
	attrStep, isStep := e.(*xqcore.StepEx)
	if !isStep || attrStep.Axis != algebra.Attribute || attrStep.Test.Name == "" {
		return "", "", false
	}
	childStep, isStep := attrStep.In.(*xqcore.StepEx)
	if !isStep || childStep.Axis != algebra.Child ||
		childStep.Test.Kind != algebra.TestElem || childStep.Test.Name == "" {
		return "", "", false
	}
	vr, isVar := childStep.In.(*xqcore.Var)
	if !isVar || vr.Name != v {
		return "", "", false
	}
	return childStep.Test.Name, attrStep.Test.Name, true
}

// step evaluates one location step navigationally: pointer chasing per
// context node, then distinct-doc-order.
func (ip *Interp) step(in []Item, axis algebra.Axis, test algebra.KindTest) ([]Item, error) {
	var out []*Node
	emit := func(n *Node) {
		if matchTest(n, test) {
			out = append(out, n)
		}
	}
	for _, it := range in {
		if it.Node == nil {
			return nil, fmt.Errorf("location step over atomic item")
		}
		n := it.Node
		switch axis {
		case algebra.Child:
			for _, c := range n.Children {
				emit(c)
			}
		case algebra.Descendant, algebra.DescendantOrSelf:
			if axis == algebra.DescendantOrSelf {
				emit(n)
			}
			var walk func(*Node)
			walk = func(x *Node) {
				for _, c := range x.Children {
					emit(c)
					walk(c)
				}
			}
			walk(n)
		case algebra.Parent:
			if n.Parent != nil {
				emit(n.Parent)
			}
		case algebra.Ancestor, algebra.AncestorOrSelf:
			if axis == algebra.AncestorOrSelf && n.Kind != Attr {
				emit(n)
			}
			for p := n.Parent; p != nil; p = p.Parent {
				emit(p)
			}
		case algebra.Following:
			// Walk the whole tree in document order; emit every node
			// after n, skipping n's own subtree.
			if n.Kind == Attr {
				n = n.Parent
			}
			after := false
			var walk func(*Node)
			walk = func(x *Node) {
				if after && x != n {
					emit(x)
				}
				if x == n {
					after = true
					return // following excludes descendants
				}
				for _, c := range x.Children {
					walk(c)
				}
			}
			walk(n.Root())
		case algebra.Preceding:
			if n.Kind == Attr {
				n = n.Parent
			}
			anc := map[*Node]bool{}
			for p := n.Parent; p != nil; p = p.Parent {
				anc[p] = true
			}
			var walk func(*Node) bool
			walk = func(x *Node) bool {
				if x == n {
					return false
				}
				if !anc[x] && x.Kind != Doc {
					emit(x)
				}
				for _, c := range x.Children {
					if !walk(c) {
						return false
					}
				}
				return true
			}
			walk(n.Root())
		case algebra.FollowingSibling, algebra.PrecedingSibling:
			if n.Parent == nil || n.Kind == Attr {
				break
			}
			seen := false
			for _, sib := range n.Parent.Children {
				if sib == n {
					seen = true
					continue
				}
				if axis == algebra.FollowingSibling && seen {
					emit(sib)
				}
				if axis == algebra.PrecedingSibling && !seen {
					emit(sib)
				}
			}
		case algebra.Self:
			emit(n)
		case algebra.Attribute:
			for _, a := range n.Attrs {
				emit(a)
			}
		}
	}
	return nodeItems(sortDedup(out)), nil
}

func matchTest(n *Node, test algebra.KindTest) bool {
	switch test.Kind {
	case algebra.TestElem:
		return n.Kind == Elem && (test.Name == "" || n.Name == test.Name)
	case algebra.TestText:
		return n.Kind == Text
	case algebra.TestComment:
		return n.Kind == Comment
	case algebra.TestAttr:
		return n.Kind == Attr && (test.Name == "" || n.Name == test.Name)
	case algebra.TestNode:
		return true
	}
	return false
}

// Built-in calls --------------------------------------------------------------------

func (ip *Interp) evalCall(x *xqcore.Call, en *env) ([]Item, error) {
	argN := func(i int) ([]Item, error) { return ip.Eval(x.Args[i], en) }
	switch x.Name {
	case "count":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		return []Item{atomic(bat.Int(int64(len(a))))}, nil
	case "sum", "avg", "min", "max":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		return aggregate(x.Name, a)
	case "empty", "exists":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		b := len(a) == 0
		if x.Name == "exists" {
			b = !b
		}
		return []Item{atomic(bat.Bool(b))}, nil
	case "not", "boolean":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		if len(a) != 1 || a[0].Atom.Kind != bat.KBool {
			return nil, fmt.Errorf("%s over non-boolean", x.Name)
		}
		b := a[0].Atom.B
		if x.Name == "not" {
			b = !b
		}
		return []Item{atomic(bat.Bool(b))}, nil
	case "string":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		if len(a) == 0 {
			return []Item{atomic(bat.Str(""))}, nil
		}
		out := make([]Item, len(a))
		for i, it := range a {
			out[i] = atomic(bat.Str(it.stringValue()))
		}
		return out, nil
	case "number":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		if len(a) == 0 {
			return []Item{atomic(bat.Float(nan()))}, nil
		}
		out := make([]Item, len(a))
		for i, it := range a {
			out[i] = atomic(bat.Float(it.atomize().AsFloat()))
		}
		return out, nil
	case "string-length":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		s := ""
		if len(a) > 0 {
			s = a[0].stringValue()
		}
		return []Item{atomic(bat.Int(int64(len([]rune(s)))))}, nil
	case "contains", "starts-with", "concat":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		b, err := argN(1)
		if err != nil {
			return nil, err
		}
		sa, sb := "", ""
		if len(a) > 0 {
			sa = a[0].stringValue()
		}
		if len(b) > 0 {
			sb = b[0].stringValue()
		}
		switch x.Name {
		case "contains":
			return []Item{atomic(bat.Bool(strings.Contains(sa, sb)))}, nil
		case "starts-with":
			return []Item{atomic(bat.Bool(strings.HasPrefix(sa, sb)))}, nil
		default:
			return []Item{atomic(bat.Str(sa + sb))}, nil
		}
	case "string-join":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		sepIt, err := argN(1)
		if err != nil {
			return nil, err
		}
		sep := ""
		if len(sepIt) > 0 {
			sep = sepIt[0].stringValue()
		}
		parts := make([]string, len(a))
		for i, it := range a {
			parts[i] = it.atomize().StringValue()
		}
		return []Item{atomic(bat.Str(strings.Join(parts, sep)))}, nil
	case "zero-or-one", "exactly-one":
		return argN(0)
	case "position":
		if v, ok := en.lookup("fs:position"); ok {
			return v, nil
		}
		return nil, fmt.Errorf("position() outside of a for loop")
	case "last":
		if v, ok := en.lookup("fs:last"); ok {
			return v, nil
		}
		return nil, fmt.Errorf("last() outside of a for loop")
	case "to":
		l, err := argN(0)
		if err != nil {
			return nil, err
		}
		r, err := argN(1)
		if err != nil {
			return nil, err
		}
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		lo, err1 := l[0].atomize().AsInt()
		hi, err2 := r[0].atomize().AsInt()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("range over non-integer bounds")
		}
		var out []Item
		for k := lo; k <= hi; k++ {
			out = append(out, atomic(bat.Int(k)))
		}
		return out, nil
	case "intersect", "except":
		l, err := argN(0)
		if err != nil {
			return nil, err
		}
		r, err := argN(1)
		if err != nil {
			return nil, err
		}
		rset := make(map[*Node]bool, len(r))
		for _, it := range r {
			if it.Node == nil {
				return nil, fmt.Errorf("%s over atomic items", x.Name)
			}
			rset[it.Node] = true
		}
		var keep []*Node
		for _, it := range l {
			if it.Node == nil {
				return nil, fmt.Errorf("%s over atomic items", x.Name)
			}
			if rset[it.Node] == (x.Name == "intersect") {
				keep = append(keep, it.Node)
			}
		}
		return nodeItems(sortDedup(keep)), nil
	case "distinct-values":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		seen := make(map[bat.Key]bool, len(a))
		var out []Item
		for _, it := range a {
			v := it.atomize()
			if k := v.Key(); !seen[k] {
				seen[k] = true
				out = append(out, atomic(v))
			}
		}
		return out, nil
	case "substring":
		s, err := argN(0)
		if err != nil {
			return nil, err
		}
		startArg, err := argN(1)
		if err != nil {
			return nil, err
		}
		str := ""
		if len(s) > 0 {
			str = s[0].stringValue()
		}
		if len(startArg) == 0 {
			return []Item{atomic(bat.Str(""))}, nil
		}
		start := startArg[0].atomize().AsFloat()
		ln := -1.0
		if len(x.Args) == 3 {
			lnArg, err := argN(2)
			if err != nil {
				return nil, err
			}
			if len(lnArg) > 0 {
				ln = lnArg[0].atomize().AsFloat()
			}
		}
		return []Item{atomic(bat.Str(substringRunes(str, start, ln)))}, nil
	case "name":
		a, err := argN(0)
		if err != nil {
			return nil, err
		}
		if len(a) == 0 {
			return []Item{atomic(bat.Str(""))}, nil
		}
		if a[0].Node == nil {
			return nil, fmt.Errorf("fn:name on non-node item")
		}
		return []Item{atomic(bat.Str(a[0].Node.Name))}, nil
	}
	return nil, fmt.Errorf("unsupported built-in %s", x.Name)
}

// substringRunes mirrors the relational engine's fn:substring rounding
// semantics; ln < 0 means "to the end".
func substringRunes(s string, start, ln float64) string {
	runes := []rune(s)
	from := int(math.Round(start))
	to := len(runes) + 1
	if ln >= 0 {
		to = from + int(math.Round(ln))
	}
	if from < 1 {
		from = 1
	}
	if to > len(runes)+1 {
		to = len(runes) + 1
	}
	if from >= to {
		return ""
	}
	return string(runes[from-1 : to-1])
}

func nan() float64 { f := 0.0; return f / f }

func aggregate(name string, items []Item) ([]Item, error) {
	if len(items) == 0 {
		if name == "sum" {
			return []Item{atomic(bat.Int(0))}, nil
		}
		return nil, nil
	}
	allInt := true
	var sumI int64
	var sumF float64
	minIt := items[0].atomize()
	maxIt := minIt
	for _, it := range items {
		a := it.atomize()
		f := a.AsFloat()
		if f != f {
			return nil, fmt.Errorf("%s: %q is not numeric", name, a.StringValue())
		}
		if a.Kind != bat.KInt {
			allInt = false
		}
		sumI += a.I
		sumF += f
		if bat.CompareTotal(a, minIt) < 0 {
			minIt = a
		}
		if bat.CompareTotal(a, maxIt) > 0 {
			maxIt = a
		}
	}
	switch name {
	case "sum":
		if allInt {
			return []Item{atomic(bat.Int(sumI))}, nil
		}
		return []Item{atomic(bat.Float(sumF))}, nil
	case "avg":
		return []Item{atomic(bat.Float(sumF / float64(len(items))))}, nil
	case "min":
		return []Item{atomic(minIt)}, nil
	case "max":
		return []Item{atomic(maxIt)}, nil
	}
	return nil, fmt.Errorf("unknown aggregate %s", name)
}
