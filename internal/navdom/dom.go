// Package navdom is the reproduction's stand-in for X-Hive/DB, the
// navigational XML database Pathfinder is compared against in Table 3 of
// the paper. It evaluates the same XQuery Core as the relational engine,
// but the way the paper characterizes navigational engines: node-at-a-time
// pointer chasing over a DOM, FLWORs as recursive nested loops, no bulk
// algebra. Like the paper's tuned X-Hive installation, it supports value
// indices on element/attribute paths, which its interpreter uses for
// equality-where clauses over indexed attributes.
package navdom

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// NodeKind classifies DOM nodes.
type NodeKind uint8

// Node kinds.
const (
	Doc NodeKind = iota
	Elem
	Text
	Comment
	Attr
)

// Node is one DOM node. Document order is the Ord field, assigned in
// construction order; nodes from different trees order by DocID first.
type Node struct {
	Kind     NodeKind
	Name     string // tag (Elem), attribute name (Attr)
	Text     string // content (Text/Comment), value (Attr)
	Parent   *Node
	Children []*Node
	Attrs    []*Node

	DocID int
	Ord   int
}

// Before reports document order between any two nodes.
func (n *Node) Before(m *Node) bool {
	if n.DocID != m.DocID {
		return n.DocID < m.DocID
	}
	return n.Ord < m.Ord
}

// Root walks to the tree root.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// StringValue is the XPath string value.
func (n *Node) StringValue() string {
	switch n.Kind {
	case Text, Comment, Attr:
		return n.Text
	default:
		var sb strings.Builder
		var walk func(*Node)
		walk = func(x *Node) {
			if x.Kind == Text {
				sb.WriteString(x.Text)
			}
			for _, c := range x.Children {
				walk(c)
			}
		}
		walk(n)
		return sb.String()
	}
}

// DB holds loaded documents and value indices.
type DB struct {
	docs    map[string]*Node
	nextDoc int
	indices map[string]map[string][]*Node // "elem/@attr" → value → elements
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{docs: make(map[string]*Node), indices: make(map[string]map[string][]*Node)}
}

// Doc returns a loaded document root.
func (db *DB) Doc(uri string) (*Node, error) {
	d, ok := db.docs[uri]
	if !ok {
		return nil, fmt.Errorf("fn:doc: document %q not loaded", uri)
	}
	return d, nil
}

// DocsInOrder returns the loaded document roots in load order (ascending
// DocID) — the DOM-side mirror of the store's shard manifest order, used
// by fn:collection.
func (db *DB) DocsInOrder() []*Node {
	out := make([]*Node, 0, len(db.docs))
	for _, d := range db.docs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out
}

// nextDocID hands out tree identifiers (loaded documents and constructed
// trees alike).
func (db *DB) nextDocID() int {
	db.nextDoc++
	return db.nextDoc
}

// Load parses a document into the DOM, mirroring the shredder's
// conventions (whitespace-only text dropped, namespace declarations
// skipped).
func (db *DB) Load(uri string, r io.Reader) (*Node, error) {
	if _, ok := db.docs[uri]; ok {
		return nil, fmt.Errorf("document %q already loaded", uri)
	}
	docID := db.nextDocID()
	ord := 0
	doc := &Node{Kind: Doc, DocID: docID, Ord: ord}
	cur := doc
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.RawToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", uri, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			ord++
			el := &Node{Kind: Elem, Name: qname(t.Name), Parent: cur, DocID: docID, Ord: ord}
			for _, a := range t.Attr {
				if strings.HasPrefix(qname(a.Name), "xmlns") {
					continue
				}
				ord++
				el.Attrs = append(el.Attrs, &Node{
					Kind: Attr, Name: qname(a.Name), Text: a.Value,
					Parent: el, DocID: docID, Ord: ord,
				})
			}
			cur.Children = append(cur.Children, el)
			cur = el
		case xml.EndElement:
			if cur.Parent == nil {
				return nil, fmt.Errorf("parse %q: unbalanced document", uri)
			}
			cur = cur.Parent
		case xml.CharData:
			txt := string(t)
			if strings.TrimSpace(txt) == "" {
				continue
			}
			ord++
			cur.Children = append(cur.Children, &Node{
				Kind: Text, Text: txt, Parent: cur, DocID: docID, Ord: ord,
			})
		case xml.Comment:
			ord++
			cur.Children = append(cur.Children, &Node{
				Kind: Comment, Text: string(t), Parent: cur, DocID: docID, Ord: ord,
			})
		}
	}
	if cur != doc {
		return nil, fmt.Errorf("parse %q: dangling open elements", uri)
	}
	db.docs[uri] = doc
	return doc, nil
}

// LoadString is Load over a string.
func (db *DB) LoadString(uri, doc string) (*Node, error) {
	return db.Load(uri, strings.NewReader(doc))
}

func qname(n xml.Name) string {
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}

// AddValueIndex builds a value index over elem/@attr paths — the
// counterpart of the X-Hive tuning described in §3.2 of the paper.
func (db *DB) AddValueIndex(elem, attr string) {
	key := elem + "/@" + attr
	idx := make(map[string][]*Node)
	for _, doc := range db.docs {
		var walk func(*Node)
		walk = func(n *Node) {
			if n.Kind == Elem && n.Name == elem {
				for _, a := range n.Attrs {
					if a.Name == attr {
						idx[a.Text] = append(idx[a.Text], n)
					}
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(doc)
	}
	db.indices[key] = idx
}

// lookupIndex returns indexed elements with the given attribute value, and
// whether the index exists.
func (db *DB) lookupIndex(elem, attr, value string) ([]*Node, bool) {
	idx, ok := db.indices[elem+"/@"+attr]
	if !ok {
		return nil, false
	}
	return idx[value], true
}

// HasIndex reports whether a value index exists for elem/@attr.
func (db *DB) HasIndex(elem, attr string) bool {
	_, ok := db.indices[elem+"/@"+attr]
	return ok
}

// Serialize renders a node as XML text with the same escaping rules as the
// relational post-processor (so differential tests can compare strings).
func Serialize(n *Node) string {
	var sb strings.Builder
	serializeTo(&sb, n)
	return sb.String()
}

func serializeTo(sb *strings.Builder, n *Node) {
	switch n.Kind {
	case Doc:
		for _, c := range n.Children {
			serializeTo(sb, c)
		}
	case Elem:
		sb.WriteByte('<')
		sb.WriteString(n.Name)
		for _, a := range n.Attrs {
			sb.WriteByte(' ')
			sb.WriteString(a.Name)
			sb.WriteString(`="`)
			escapeAttr(sb, a.Text)
			sb.WriteByte('"')
		}
		if len(n.Children) == 0 {
			sb.WriteString("/>")
			return
		}
		sb.WriteByte('>')
		for _, c := range n.Children {
			serializeTo(sb, c)
		}
		sb.WriteString("</")
		sb.WriteString(n.Name)
		sb.WriteByte('>')
	case Text:
		escapeText(sb, n.Text)
	case Comment:
		sb.WriteString("<!--")
		sb.WriteString(n.Text)
		sb.WriteString("-->")
	case Attr:
		sb.WriteString(n.Name)
		sb.WriteString(`="`)
		escapeAttr(sb, n.Text)
		sb.WriteByte('"')
	}
}

func escapeText(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		default:
			sb.WriteRune(r)
		}
	}
}

func escapeAttr(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '"':
			sb.WriteString("&quot;")
		default:
			sb.WriteRune(r)
		}
	}
}
