// Package serialize implements the post-processor of the Pathfinder stack:
// it maps a relational query result — the iter|pos|item encoding of an
// item sequence — back to the XQuery data model and renders it as text
// (§2, "A simple post-processor then serializes the relational result").
package serialize

import (
	"fmt"
	"strings"

	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

// Result renders a query result table (schema iter|pos|item) as the
// serialized item sequence. Items are emitted in (iter, pos) order; nodes
// serialize as XML subtrees, atomics by their string value, adjacent
// atomic items separated by a single space per the XQuery serialization
// rules.
func Result(store *xenc.Store, t *bat.Table) (string, error) {
	sorted, err := t.SortBy("iter", "pos")
	if err != nil {
		return "", fmt.Errorf("serialize: %w", err)
	}
	items, err := sorted.Col("item")
	if err != nil {
		return "", fmt.Errorf("serialize: %w", err)
	}
	var sb strings.Builder
	prevAtomic := false
	for i := 0; i < sorted.Rows(); i++ {
		it := items.ItemAt(i)
		if it.Kind == bat.KNode {
			store.SerializeTo(&sb, it.N)
			prevAtomic = false
			continue
		}
		if prevAtomic {
			sb.WriteByte(' ')
		}
		sb.WriteString(it.StringValue())
		prevAtomic = true
	}
	return sb.String(), nil
}

// Items returns the result sequence as a flat item slice in (iter, pos)
// order; used by tests that inspect values rather than serialized text.
func Items(t *bat.Table) ([]bat.Item, error) {
	sorted, err := t.SortBy("iter", "pos")
	if err != nil {
		return nil, err
	}
	col, err := sorted.Col("item")
	if err != nil {
		return nil, err
	}
	out := make([]bat.Item, sorted.Rows())
	for i := range out {
		out[i] = col.ItemAt(i)
	}
	return out, nil
}
