package serialize

import (
	"testing"

	"pathfinder/internal/bat"
	"pathfinder/internal/xenc"
)

func TestResultOrdersAndSpaces(t *testing.T) {
	store := xenc.NewStore()
	tbl := bat.MustTable(
		"iter", bat.IntVec{1, 1, 1},
		"pos", bat.IntVec{3, 1, 2}, // deliberately out of order
		"item", bat.ItemVec{bat.Str("c"), bat.Str("a"), bat.Int(5)},
	)
	out, err := Result(store, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if out != "a 5 c" {
		t.Errorf("result = %q, want %q", out, "a 5 c")
	}
}

func TestResultMixesNodesAndAtomics(t *testing.T) {
	store := xenc.NewStore()
	doc, err := store.LoadDocumentString("d.xml", "<a>x</a>")
	if err != nil {
		t.Fatal(err)
	}
	tbl := bat.MustTable(
		"iter", bat.IntVec{1, 1, 1, 1},
		"pos", bat.IntVec{1, 2, 3, 4},
		"item", bat.ItemVec{
			bat.Int(1), bat.Int(2), bat.Node(bat.NodeRef{Frag: doc.Frag, Pre: 1}), bat.Int(3),
		},
	)
	out, err := Result(store, tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Space between adjacent atomics, none around nodes.
	if out != "1 2<a>x</a>3" {
		t.Errorf("result = %q", out)
	}
}

func TestResultRequiresSchema(t *testing.T) {
	store := xenc.NewStore()
	bad := bat.MustTable("x", bat.IntVec{1})
	if _, err := Result(store, bad); err == nil {
		t.Error("missing iter|pos|item must fail")
	}
}

func TestItems(t *testing.T) {
	tbl := bat.MustTable(
		"iter", bat.IntVec{2, 1},
		"pos", bat.IntVec{1, 1},
		"item", bat.ItemVec{bat.Str("second"), bat.Str("first")},
	)
	items, err := Items(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].S != "first" || items[1].S != "second" {
		t.Errorf("items = %v", items)
	}
}

func TestEmptyResult(t *testing.T) {
	store := xenc.NewStore()
	tbl := bat.MustTable("iter", bat.IntVec{}, "pos", bat.IntVec{}, "item", bat.ItemVec{})
	out, err := Result(store, tbl)
	if err != nil || out != "" {
		t.Errorf("empty result: %q, %v", out, err)
	}
}
