package opt

import (
	"pathfinder/internal/algebra"
)

// Demand analysis: which output columns of each operator are consumed
// anywhere downstream. The map is the shared input of the normalize pass
// (projection pruning) and the isolation pass (a numbering operator whose
// numbering column nobody demands is scaffolding — the only value it adds
// to the plan is row order).
func demandMap(root *algebra.Op) map[*algebra.Op]map[string]bool {
	needed := make(map[*algebra.Op]map[string]bool)
	demand := func(o *algebra.Op, cols ...string) {
		m := needed[o]
		if m == nil {
			m = make(map[string]bool)
			needed[o] = m
		}
		for _, c := range cols {
			m[c] = true
		}
	}
	// Seed: the root's full schema is demanded.
	demand(root, root.Schema()...)

	// Propagate demands in topological order (parents before children).
	order := algebra.TopoDown(root)
	for _, o := range order {
		need := needed[o]
		switch o.Kind {
		case algebra.OpProject:
			for _, p := range o.Proj {
				if need[p.New] {
					demand(o.In[0], p.Old)
				}
			}
		case algebra.OpSelect:
			demand(o.In[0], keys(need)...)
			demand(o.In[0], o.Col)
		case algebra.OpUnion:
			demand(o.In[0], keys(need)...)
			demand(o.In[1], keys(need)...)
		case algebra.OpDiff, algebra.OpSemiJoin:
			demand(o.In[0], keys(need)...)
			demand(o.In[0], o.KeyL...)
			demand(o.In[1], o.KeyR...)
		case algebra.OpJoin:
			splitDemand(o.In[0], o.In[1], need, demand)
			demand(o.In[0], o.KeyL...)
			demand(o.In[1], o.KeyR...)
		case algebra.OpCross:
			splitDemand(o.In[0], o.In[1], need, demand)
		case algebra.OpDistinct:
			// δ is defined over the full schema; every column matters.
			demand(o.In[0], o.In[0].Schema()...)
		case algebra.OpRowNum:
			for _, c := range keys(need) {
				if c != o.Col {
					demand(o.In[0], c)
				}
			}
			for _, s := range o.Order {
				demand(o.In[0], s.Col)
			}
			if o.Part != "" {
				demand(o.In[0], o.Part)
			}
		case algebra.OpRowID:
			for _, c := range keys(need) {
				if c != o.Col {
					demand(o.In[0], c)
				}
			}
		case algebra.OpFun:
			for _, c := range keys(need) {
				if c != o.Col {
					demand(o.In[0], c)
				}
			}
			demand(o.In[0], o.Args...)
		case algebra.OpAggr:
			if o.Part != "" {
				demand(o.In[0], o.Part)
			}
			demand(o.In[0], o.Args...)
		case algebra.OpStep:
			demand(o.In[0], "iter", "item")
		case algebra.OpDoc, algebra.OpRoots, algebra.OpText:
			demand(o.In[0], keys(need)...)
			demand(o.In[0], "iter", "item")
		case algebra.OpElem:
			demand(o.In[0], "iter", "item")
			demand(o.In[1], "iter", "pos", "item")
		case algebra.OpAttrC:
			demand(o.In[0], "iter", "item")
			demand(o.In[1], "iter", "item")
		case algebra.OpRange:
			demand(o.In[0], "iter")
			demand(o.In[0], o.KeyL...)
		case algebra.OpColl:
			demand(o.In[0], "iter", "item")
		}
	}
	return needed
}

func splitDemand(l, r *algebra.Op, need map[string]bool, demand func(*algebra.Op, ...string)) {
	for _, c := range keys(need) {
		if l.HasCol(c) {
			demand(l, c)
		} else if r.HasCol(c) {
			demand(r, c)
		}
	}
}
