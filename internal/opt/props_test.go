package opt

import (
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/core"
	"pathfinder/internal/xqcore"
)

func TestLitSortedPrefix(t *testing.T) {
	p := newProps()
	sorted := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1, 2},
		"pos", bat.IntVec{1, 2, 1},
		"item", bat.ItemVec{bat.Str("b"), bat.Str("a"), bat.Str("c")},
	))
	// (iter, pos) orders the rows strictly, so the lexicographic prefix
	// extends across every column.
	got := p.sortedPrefix(sorted)
	if len(got) < 2 || got[0] != "iter" || got[1] != "pos" {
		t.Errorf("sorted prefix = %v", got)
	}
	if !p.orderingOf(sorted).strict {
		t.Error("key-ordered literal must be strict")
	}
	unsorted := algebra.Lit(bat.MustTable("x", bat.IntVec{2, 1}))
	if got := p.sortedPrefix(unsorted); len(got) != 0 {
		t.Errorf("unsorted lit prefix = %v", got)
	}
}

func TestSortednessPropagation(t *testing.T) {
	p := newProps()
	lit := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1, 2},
		"pos", bat.IntVec{1, 2, 1},
	))
	// Projection renames carry the prefix.
	proj := mustOp(algebra.Project(lit, "outer:iter", "p:pos"))
	if got := p.sortedPrefix(proj); len(got) != 2 || got[0] != "outer" {
		t.Errorf("projected prefix = %v", got)
	}
	// Dropping the leading column kills the guarantee.
	drop := mustOp(algebra.Project(lit, "pos"))
	if got := p.sortedPrefix(drop); len(got) != 0 {
		t.Errorf("dropped-column prefix = %v", got)
	}
	// Selection preserves.
	f := mustOp(algebra.Fun(lit, "b", algebra.FunEq, "iter", "pos"))
	sel := mustOp(algebra.Select(f, "b"))
	if got := p.sortedPrefix(sel); len(got) < 2 {
		t.Errorf("select prefix = %v", got)
	}
	// RowNum output sortedness: the canonical (part, numbering) key.
	rn := mustOp(algebra.RowNum(lit, "n", []algebra.OrderSpec{{Col: "pos"}}, "iter"))
	if got := p.sortedPrefix(rn); len(got) != 2 || got[0] != "iter" || got[1] != "n" {
		t.Errorf("rownum prefix = %v", got)
	}
	if !p.orderingOf(rn).strict {
		t.Error("(part, numbering) is a key")
	}
	// Union gives nothing.
	u := mustOp(algebra.Union(lit, lit))
	if got := p.sortedPrefix(u); got != nil {
		t.Errorf("union prefix = %v", got)
	}
}

// The ϱ → mark rewrite: a compiled query whose ϱ inputs are sorted must
// end up with fewer rownum and more rowid operators after optimization.
func TestRowNumBecomesMark(t *testing.T) {
	plan, _, err := core.CompileQuery(
		`for $v in (10,20,30) return $v + 1`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := algebra.OpHistogram(plan)
	oplan, err := Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	after := algebra.OpHistogram(oplan)
	if after["rownum"] >= before["rownum"] {
		t.Errorf("no ϱ became mark: before %s, after %s",
			algebra.HistString(before), algebra.HistString(after))
	}
	if after["rowid"] == 0 {
		t.Error("expected mark operators in the optimized plan")
	}
}

func TestDistinctEliminatedOnKeyedInput(t *testing.T) {
	// δ over a staircase-join output (iter, doc-order key) is a no-op.
	lit := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1},
		"item", bat.NodeVec{{Frag: 0, Pre: 0}},
	))
	st := mustOp(algebra.Step(lit, algebra.Descendant, algebra.KindTest{Kind: algebra.TestNode}))
	d := algebra.Distinct(st)
	o, err := Optimize(d)
	if err != nil {
		t.Fatal(err)
	}
	if algebra.OpHistogram(o)["distinct"] != 0 {
		t.Errorf("δ over a keyed step output must vanish:\n%s", algebra.TreeString(o))
	}
	// ... but δ over a union must stay.
	u := mustOp(algebra.Union(lit, lit))
	d2 := algebra.Distinct(u)
	o2, err := Optimize(d2)
	if err != nil {
		t.Fatal(err)
	}
	if algebra.OpHistogram(o2)["distinct"] != 1 {
		t.Error("δ over a union must be kept")
	}
}

func TestHasPrefix(t *testing.T) {
	if !hasPrefix([]string{"a", "b", "c"}, []string{"a", "b"}) {
		t.Error("prefix")
	}
	if hasPrefix([]string{"a"}, []string{"a", "b"}) {
		t.Error("longer want")
	}
	if hasPrefix([]string{"a", "b"}, []string{"b"}) {
		t.Error("mismatch")
	}
	if !hasPrefix([]string{"a"}, nil) {
		t.Error("empty want is always a prefix")
	}
}
