package opt

import (
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

func mustOp(o *algebra.Op, err error) *algebra.Op {
	if err != nil {
		panic(err)
	}
	return o
}

func TestLitSortedPrefix(t *testing.T) {
	p := newProps()
	sorted := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1, 2},
		"pos", bat.IntVec{1, 2, 1},
		"item", bat.ItemVec{bat.Str("b"), bat.Str("a"), bat.Str("c")},
	))
	// (iter, pos) orders the rows strictly, so the lexicographic prefix
	// extends across every column.
	got := p.sortedPrefix(sorted)
	if len(got) < 2 || got[0] != "iter" || got[1] != "pos" {
		t.Errorf("sorted prefix = %v", got)
	}
	if !p.orderingOf(sorted).strict {
		t.Error("key-ordered literal must be strict")
	}
	unsorted := algebra.Lit(bat.MustTable("x", bat.IntVec{2, 1}))
	if got := p.sortedPrefix(unsorted); len(got) != 0 {
		t.Errorf("unsorted lit prefix = %v", got)
	}
}

func TestSortednessPropagation(t *testing.T) {
	p := newProps()
	lit := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1, 2},
		"pos", bat.IntVec{1, 2, 1},
	))
	// Projection renames carry the prefix.
	proj := mustOp(algebra.Project(lit, "outer:iter", "p:pos"))
	if got := p.sortedPrefix(proj); len(got) != 2 || got[0] != "outer" {
		t.Errorf("projected prefix = %v", got)
	}
	// Dropping the leading column kills the guarantee.
	drop := mustOp(algebra.Project(lit, "pos"))
	if got := p.sortedPrefix(drop); len(got) != 0 {
		t.Errorf("dropped-column prefix = %v", got)
	}
	// Selection preserves.
	f := mustOp(algebra.Fun(lit, "b", algebra.FunEq, "iter", "pos"))
	sel := mustOp(algebra.Select(f, "b"))
	if got := p.sortedPrefix(sel); len(got) < 2 {
		t.Errorf("select prefix = %v", got)
	}
	// RowNum output sortedness: the canonical (part, numbering) key.
	rn := mustOp(algebra.RowNum(lit, "n", []algebra.OrderSpec{{Col: "pos"}}, "iter"))
	if got := p.sortedPrefix(rn); len(got) != 2 || got[0] != "iter" || got[1] != "n" {
		t.Errorf("rownum prefix = %v", got)
	}
	if !p.orderingOf(rn).strict {
		t.Error("(part, numbering) is a key")
	}
	// Union gives nothing.
	u := mustOp(algebra.Union(lit, lit))
	if got := p.sortedPrefix(u); got != nil {
		t.Errorf("union prefix = %v", got)
	}
}

func TestHasPrefix(t *testing.T) {
	if !hasPrefix([]string{"a", "b", "c"}, []string{"a", "b"}) {
		t.Error("prefix")
	}
	if hasPrefix([]string{"a"}, []string{"a", "b"}) {
		t.Error("longer want")
	}
	if hasPrefix([]string{"a", "b"}, []string{"b"}) {
		t.Error("mismatch")
	}
	if !hasPrefix([]string{"a"}, nil) {
		t.Error("empty want is always a prefix")
	}
}

func TestCSESharesIdenticalSubplans(t *testing.T) {
	// Two structurally identical (but distinct) subtrees must collapse.
	mk := func() *algebra.Op {
		lit := algebra.Lit(bat.MustTable("iter", bat.IntVec{1, 2}))
		return mustOp(algebra.Project(lit, "x:iter"))
	}
	shared := algebra.Lit(bat.MustTable("iter", bat.IntVec{1, 2}))
	a := mustOp(algebra.Project(shared, "x:iter"))
	b := mustOp(algebra.Project(shared, "y:iter"))
	j := mustOp(algebra.Join(a, b, []string{"x"}, []string{"y"}))
	before := algebra.CountOps(j)
	after := algebra.CountOps(cse(j))
	if after != before {
		t.Errorf("no duplicates to remove, yet %d -> %d", before, after)
	}
	// Now with duplicated literals: mk() twice builds equal Projects over
	// *different* Lit tables — those must NOT merge (literal identity is
	// by table pointer).
	x, y := mk(), mk()
	u := mustOp(algebra.Union(x, mustOp(algebra.Project(y, "x"))))
	_ = u
	// Same lit, duplicated projection expression: must merge.
	p1 := mustOp(algebra.Project(shared, "z:iter"))
	p2 := mustOp(algebra.Project(shared, "z:iter"))
	u2 := mustOp(algebra.Union(p1, p2))
	if got := algebra.CountOps(cse(u2)); got != 3 {
		t.Errorf("cse kept %d ops, want 3 (union, one project, lit)", got)
	}
}
