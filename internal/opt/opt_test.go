package opt_test

import (
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

func mustOp(o *algebra.Op, err error) *algebra.Op {
	if err != nil {
		panic(err)
	}
	return o
}

func TestProjectionFusionAndIdentity(t *testing.T) {
	lit := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "pos", bat.IntVec{1}, "item", bat.ItemVec{bat.Int(5)}))
	p1 := mustOp(algebra.Project(lit, "a:iter", "b:pos", "item"))
	p2 := mustOp(algebra.Project(p1, "iter:a", "pos:b", "item"))
	o, err := opt.Optimize(p2)
	if err != nil {
		t.Fatal(err)
	}
	// π∘π fuses into an identity projection over the literal, which then
	// disappears entirely.
	if o != lit {
		t.Errorf("expected the literal back, got %s", algebra.TreeString(o))
	}
}

func TestDeadColumnPruning(t *testing.T) {
	lit := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "pos", bat.IntVec{1},
		"item", bat.ItemVec{bat.Int(5)}, "junk", bat.StrVec{"x"}))
	wide := mustOp(algebra.Project(lit, "iter", "pos", "item", "junk"))
	narrow := mustOp(algebra.Project(wide, "iter", "item"))
	o, err := opt.Optimize(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(o.Schema(), "|"); got != "iter|item" {
		t.Errorf("schema = %s", got)
	}
	hist := algebra.OpHistogram(o)
	if hist["project"] > 1 {
		t.Errorf("projections not fused: %s", algebra.HistString(hist))
	}
}

func TestOptimizeReducesXMarkPlanSizes(t *testing.T) {
	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	totalBefore, totalAfter := 0, 0
	for n := 1; n <= xmark.NumQueries; n++ {
		plan, _, err := core.CompileQuery(xmark.Query(n), opts)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		before := algebra.CountOps(plan)
		oplan, err := opt.Optimize(plan)
		if err != nil {
			t.Fatalf("Q%d: optimize: %v", n, err)
		}
		after := algebra.CountOps(oplan)
		if after > before {
			t.Errorf("Q%d: optimizer grew the plan %d -> %d", n, before, after)
		}
		totalBefore += before
		totalAfter += after
	}
	if totalAfter >= totalBefore {
		t.Errorf("optimizer had no effect: %d -> %d operators", totalBefore, totalAfter)
	}
	t.Logf("total plan size across Q1-Q20: %d -> %d operators", totalBefore, totalAfter)
}

// TestOptimizePreservesResults runs every XMark query optimized and
// unoptimized and requires identical serialized results.
func TestOptimizePreservesResults(t *testing.T) {
	doc := xmark.GenerateString(0.002)
	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for n := 1; n <= xmark.NumQueries; n++ {
		// Fresh stores per run: constructors append fragments, so plans
		// must not share a store to keep results comparable.
		runPlan := func(optimize bool) (string, error) {
			eng := engine.New(xenc.NewStore())
			if _, err := eng.Store.LoadDocumentString("xmark.xml", doc); err != nil {
				return "", err
			}
			plan, _, err := core.CompileQuery(xmark.Query(n), opts)
			if err != nil {
				return "", err
			}
			if optimize {
				if plan, err = opt.Optimize(plan); err != nil {
					return "", err
				}
			}
			res, err := eng.Eval(plan)
			if err != nil {
				return "", err
			}
			return serialize.Result(eng.Store, res)
		}
		plain, err1 := runPlan(false)
		optimized, err2 := runPlan(true)
		if err1 != nil || err2 != nil {
			t.Fatalf("Q%d: plain err=%v optimized err=%v", n, err1, err2)
		}
		if plain != optimized {
			a, b := plain, optimized
			if len(a) > 300 {
				a = a[:300]
			}
			if len(b) > 300 {
				b = b[:300]
			}
			t.Errorf("Q%d: optimizer changed the result:\n plain = %q\n opt   = %q", n, a, b)
		}
	}
}

func TestOptimizeValidates(t *testing.T) {
	plan, _, err := core.CompileQuery(
		`for $v in (10,20) return $v + 100`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := opt.Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := algebra.Validate(o); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(o.Schema(), "|"); got != "iter|pos|item" {
		t.Errorf("root schema = %s", got)
	}
}

// The ϱ → mark rewrite: a compiled query whose ϱ inputs are sorted must
// end up with fewer rownum and more rowid operators after optimization.
func TestRowNumBecomesMark(t *testing.T) {
	plan, _, err := core.CompileQuery(
		`for $v in (10,20,30) return $v + 1`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := algebra.OpHistogram(plan)
	oplan, err := opt.Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	after := algebra.OpHistogram(oplan)
	if after["rownum"] >= before["rownum"] {
		t.Errorf("no ϱ became mark: before %s, after %s",
			algebra.HistString(before), algebra.HistString(after))
	}
	if after["rowid"] == 0 {
		t.Error("expected mark operators in the optimized plan")
	}
}

func TestDistinctEliminatedOnKeyedInput(t *testing.T) {
	// δ over a staircase-join output (iter, doc-order key) is a no-op.
	lit := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1},
		"item", bat.NodeVec{{Frag: 0, Pre: 0}},
	))
	st := mustOp(algebra.Step(lit, algebra.Descendant, algebra.KindTest{Kind: algebra.TestNode}))
	d := algebra.Distinct(st)
	o, err := opt.Optimize(d)
	if err != nil {
		t.Fatal(err)
	}
	if algebra.OpHistogram(o)["distinct"] != 0 {
		t.Errorf("δ over a keyed step output must vanish:\n%s", algebra.TreeString(o))
	}
	// ... but δ over a union must stay.
	u := mustOp(algebra.Union(lit, lit))
	d2 := algebra.Distinct(u)
	o2, err := opt.Optimize(d2)
	if err != nil {
		t.Fatal(err)
	}
	if algebra.OpHistogram(o2)["distinct"] != 1 {
		t.Error("δ over a union must be kept")
	}
}
