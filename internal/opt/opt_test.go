package opt

import (
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

func mustOp(o *algebra.Op, err error) *algebra.Op {
	if err != nil {
		panic(err)
	}
	return o
}

func TestCSESharesIdenticalSubplans(t *testing.T) {
	// Two structurally identical (but distinct) subtrees must collapse.
	mk := func() *algebra.Op {
		lit := algebra.Lit(bat.MustTable("iter", bat.IntVec{1, 2}))
		return mustOp(algebra.Project(lit, "x:iter"))
	}
	shared := algebra.Lit(bat.MustTable("iter", bat.IntVec{1, 2}))
	a := mustOp(algebra.Project(shared, "x:iter"))
	b := mustOp(algebra.Project(shared, "y:iter"))
	j := mustOp(algebra.Join(a, b, []string{"x"}, []string{"y"}))
	before := algebra.CountOps(j)
	after := algebra.CountOps(cse(j))
	if after != before {
		t.Errorf("no duplicates to remove, yet %d -> %d", before, after)
	}
	// Now with duplicated literals: mk() twice builds equal Projects over
	// *different* Lit tables — those must NOT merge (literal identity is
	// by table pointer).
	x, y := mk(), mk()
	u := mustOp(algebra.Union(x, mustOp(algebra.Project(y, "x"))))
	_ = u
	// Same lit, duplicated projection expression: must merge.
	p1 := mustOp(algebra.Project(shared, "z:iter"))
	p2 := mustOp(algebra.Project(shared, "z:iter"))
	u2 := mustOp(algebra.Union(p1, p2))
	if got := algebra.CountOps(cse(u2)); got != 3 {
		t.Errorf("cse kept %d ops, want 3 (union, one project, lit)", got)
	}
}

func TestProjectionFusionAndIdentity(t *testing.T) {
	lit := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "pos", bat.IntVec{1}, "item", bat.ItemVec{bat.Int(5)}))
	p1 := mustOp(algebra.Project(lit, "a:iter", "b:pos", "item"))
	p2 := mustOp(algebra.Project(p1, "iter:a", "pos:b", "item"))
	o, err := Optimize(p2)
	if err != nil {
		t.Fatal(err)
	}
	// π∘π fuses into an identity projection over the literal, which then
	// disappears entirely.
	if o != lit {
		t.Errorf("expected the literal back, got %s", algebra.TreeString(o))
	}
}

func TestDeadColumnPruning(t *testing.T) {
	lit := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "pos", bat.IntVec{1},
		"item", bat.ItemVec{bat.Int(5)}, "junk", bat.StrVec{"x"}))
	wide := mustOp(algebra.Project(lit, "iter", "pos", "item", "junk"))
	narrow := mustOp(algebra.Project(wide, "iter", "item"))
	o, err := Optimize(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(o.Schema(), "|"); got != "iter|item" {
		t.Errorf("schema = %s", got)
	}
	hist := algebra.OpHistogram(o)
	if hist["project"] > 1 {
		t.Errorf("projections not fused: %s", algebra.HistString(hist))
	}
}

func TestOptimizeReducesXMarkPlanSizes(t *testing.T) {
	opt := xqcore.Options{ContextDoc: "xmark.xml"}
	totalBefore, totalAfter := 0, 0
	for n := 1; n <= xmark.NumQueries; n++ {
		plan, _, err := core.CompileQuery(xmark.Query(n), opt)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		before := algebra.CountOps(plan)
		oplan, err := Optimize(plan)
		if err != nil {
			t.Fatalf("Q%d: optimize: %v", n, err)
		}
		after := algebra.CountOps(oplan)
		if after > before {
			t.Errorf("Q%d: optimizer grew the plan %d -> %d", n, before, after)
		}
		totalBefore += before
		totalAfter += after
	}
	if totalAfter >= totalBefore {
		t.Errorf("optimizer had no effect: %d -> %d operators", totalBefore, totalAfter)
	}
	t.Logf("total plan size across Q1-Q20: %d -> %d operators", totalBefore, totalAfter)
}

// TestOptimizePreservesResults runs every XMark query optimized and
// unoptimized and requires identical serialized results.
func TestOptimizePreservesResults(t *testing.T) {
	doc := xmark.GenerateString(0.002)
	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for n := 1; n <= xmark.NumQueries; n++ {
		// Fresh stores per run: constructors append fragments, so plans
		// must not share a store to keep results comparable.
		runPlan := func(optimize bool) (string, error) {
			eng := engine.New(xenc.NewStore())
			if _, err := eng.Store.LoadDocumentString("xmark.xml", doc); err != nil {
				return "", err
			}
			plan, _, err := core.CompileQuery(xmark.Query(n), opts)
			if err != nil {
				return "", err
			}
			if optimize {
				if plan, err = Optimize(plan); err != nil {
					return "", err
				}
			}
			res, err := eng.Eval(plan)
			if err != nil {
				return "", err
			}
			return serialize.Result(eng.Store, res)
		}
		plain, err1 := runPlan(false)
		optimized, err2 := runPlan(true)
		if err1 != nil || err2 != nil {
			t.Fatalf("Q%d: plain err=%v optimized err=%v", n, err1, err2)
		}
		if plain != optimized {
			a, b := plain, optimized
			if len(a) > 300 {
				a = a[:300]
			}
			if len(b) > 300 {
				b = b[:300]
			}
			t.Errorf("Q%d: optimizer changed the result:\n plain = %q\n opt   = %q", n, a, b)
		}
	}
}

func TestOptimizeValidates(t *testing.T) {
	plan, _, err := core.CompileQuery(
		`for $v in (10,20) return $v + 100`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := algebra.Validate(o); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(o.Schema(), "|"); got != "iter|pos|item" {
		t.Errorf("root schema = %s", got)
	}
}
