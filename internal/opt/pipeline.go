package opt

import (
	"fmt"
	"strings"

	"pathfinder/internal/algebra"
)

// The staged rewrite pipeline: an explicit multi-pass driver replacing
// the old single-shot optimizer. Each round runs
//
//	normalize  — CSE + projection fusion/pruning + local order rewrites
//	analyze    — join-graph classification (trace only, no rewrites)
//	isolate    — join graph isolation (in-place order-proof splices)
//
// until a round changes nothing (or maxRounds, a safety net — real plans
// converge in two or three rounds because isolation only ever removes
// numbering operators). Then two final passes run once:
//
//	properties — full re-derivation of order/denseness/key annotations
//	             on the converged plan (what physical lowering consumes)
//	cleanup    — final CSE, the global size guard, and validation
//
// Every pass appends a PassStat; `pf -show opt` prints the trace so the
// collapse is observable per pass, not just in the output plan.

// maxRounds bounds the fixed-point loop. Isolation strictly removes
// operators and normalization never grows the plan (size guard), so the
// loop terminates on its own; the bound is a backstop against a rewrite
// bug turning into an infinite loop.
const maxRounds = 8

// PassStat records one pass execution for the trace.
type PassStat struct {
	// Round is the fixed-point iteration (1-based); 0 marks the final
	// passes that run once after convergence.
	Round int
	// Pass is the pass name: normalize, analyze, isolate, properties,
	// cleanup.
	Pass string
	// OpsIn and OpsOut are the plan's operator counts before and after
	// the pass.
	OpsIn, OpsOut int
	// Rewrites counts the rewrites the pass applied (0 for analysis-only
	// passes).
	Rewrites int
	// Note carries pass-specific detail (the join-graph census, the
	// property count, guard decisions).
	Note string
}

// Result is a pipeline run: the rewritten plan plus the per-pass trace.
type Result struct {
	Plan  *algebra.Op
	Trace []PassStat
}

// TraceString renders the per-pass trace, one line per pass.
func (r Result) TraceString() string {
	var sb strings.Builder
	for _, s := range r.Trace {
		round := "final"
		if s.Round > 0 {
			round = fmt.Sprintf("%d", s.Round)
		}
		fmt.Fprintf(&sb, "round %-5s %-10s %4d → %4d ops", round, s.Pass, s.OpsIn, s.OpsOut)
		if s.Rewrites > 0 {
			fmt.Fprintf(&sb, "  (%d rewrites)", s.Rewrites)
		}
		if s.Note != "" {
			fmt.Fprintf(&sb, "  %s", s.Note)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Pipeline runs the staged pipeline on the DAG rooted at root and
// returns the rewritten plan with its trace. The input DAG is not
// mutated (the isolation pass works on a private clone), and the result
// never has more operators than the CSE-shared input.
func Pipeline(root *algebra.Op) (Result, error) {
	// Baseline for the global size guard; shares nodes with the input.
	initial := cse(root)
	// The isolation pass splices edges in place, and cse/normalize can
	// hand back original input nodes — clone before any in-place work so
	// the caller's DAG stays untouched.
	work := clonePlan(initial)

	var trace []PassStat
	for round := 1; round <= maxRounds; round++ {
		opsIn := algebra.CountOps(work)
		n, err := normalize(work)
		if err != nil {
			return Result{}, err
		}
		work = n
		opsNorm := algebra.CountOps(work)
		trace = append(trace, PassStat{
			Round: round, Pass: "normalize",
			OpsIn: opsIn, OpsOut: opsNorm, Rewrites: opsIn - opsNorm,
		})

		e := NewPropertyEngine()
		g := analyzeJoinGraph(work, e)
		trace = append(trace, PassStat{
			Round: round, Pass: "analyze",
			OpsIn: opsNorm, OpsOut: opsNorm, Note: g.note(),
		})

		iso := isolate(work, e)
		opsIso := algebra.CountOps(work)
		trace = append(trace, PassStat{
			Round: round, Pass: "isolate",
			OpsIn: opsNorm, OpsOut: opsIso, Rewrites: iso,
		})

		if iso == 0 && opsNorm == opsIn {
			break
		}
	}

	// Property re-derivation on the converged plan: a fresh engine, so no
	// claim memoized during rewriting survives into what lowering sees.
	opsConv := algebra.CountOps(work)
	snap := NewPropertyEngine().Snapshot(work)
	trace = append(trace, PassStat{
		Pass: "properties", OpsIn: opsConv, OpsOut: opsConv,
		Note: fmt.Sprintf("%d operators annotated", len(snap)),
	})

	// Cleanup: final CSE across everything isolation exposed, then the
	// global size guard against the CSE-only input.
	final := cse(work)
	note := ""
	if algebra.CountOps(final) > algebra.CountOps(initial) {
		final = initial
		note = "size guard: kept CSE-only plan"
	}
	if err := algebra.Validate(final); err != nil {
		return Result{}, fmt.Errorf("optimizer pipeline produced an invalid plan: %w", err)
	}
	trace = append(trace, PassStat{
		Pass: "cleanup", OpsIn: opsConv, OpsOut: algebra.CountOps(final),
		Rewrites: opsConv - algebra.CountOps(final), Note: note,
	})
	return Result{Plan: final, Trace: trace}, nil
}

// normalize is one CSE + prune/fuse sweep with the per-round size guard
// (identical rewrites to the legacy Peephole, minus final validation —
// the pipeline validates once at the end).
func normalize(root *algebra.Op) (*algebra.Op, error) {
	shared := cse(root)
	r, err := pruneAndFuse(shared)
	if err != nil {
		return nil, err
	}
	r = cse(r)
	if algebra.CountOps(r) > algebra.CountOps(shared) {
		r = shared
	}
	return r, nil
}

// clonePlan deep-copies the DAG's interior (preserving sharing) so
// in-place passes cannot mutate the caller's plan. Leaves are shared:
// the only in-place mutation anywhere in the pipeline is rewiring an
// operator's In edges, and leaves have none. (Keeping leaves intact also
// preserves the long-standing contract that optimizing a plan that
// reduces to a single literal returns that literal itself.)
func clonePlan(root *algebra.Op) *algebra.Op {
	memo := make(map[*algebra.Op]*algebra.Op)
	var walk func(o *algebra.Op) *algebra.Op
	walk = func(o *algebra.Op) *algebra.Op {
		if len(o.In) == 0 {
			return o
		}
		if c, ok := memo[o]; ok {
			return c
		}
		cp := *o
		cp.In = make([]*algebra.Op, len(o.In))
		for i, in := range o.In {
			cp.In[i] = walk(in)
		}
		memo[o] = &cp
		return &cp
	}
	return walk(root)
}
