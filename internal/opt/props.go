package opt

import (
	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Order-property inference ([3], "a careful consideration of order
// properties of relational operators"): for every operator we derive the
// column sequence by which its output is guaranteed sorted (ascending,
// lexicographically), plus whether that ordering is strict (no two rows
// equal on the prefix — a key). Strictness is what lets orderings compose
// across × and ⋈. The payoff is the paper's "% [is] a no-cost operator"
// observation: a ϱ whose input is already in its (partition, order) order
// degenerates to MonetDB's mark — our OpRowID.
type ordering struct {
	cols   []string
	strict bool
}

type props struct {
	memo map[*algebra.Op]ordering
	den  *denseProps
}

func newProps() *props {
	return &props{
		memo: make(map[*algebra.Op]ordering),
		den:  &denseProps{memo: make(map[*algebra.Op][]string)},
	}
}

// sortedOn reports whether o's output is guaranteed sorted with cols as
// a prefix — either via the ordering inference or, for a single column,
// via denseness (a 1..n column is sorted by construction).
func (p *props) sortedOn(o *algebra.Op, cols []string) bool {
	if hasPrefix(p.orderingOf(o).cols, cols) {
		return true
	}
	if len(cols) == 1 {
		for _, c := range p.den.denseOf(o) {
			if c == cols[0] {
				return true
			}
		}
	}
	return false
}

// rightKeyUnique reports whether the join key is a key of o's right
// input — i.e. the join is N:1 and every left row matches at most once.
// Two sufficient proofs: a dense column among the right key columns
// (1..n values are duplicate-free), or a strict right ordering whose
// column set is covered by the key columns.
func (p *props) rightKeyUnique(o *algebra.Op) bool {
	r := o.In[1]
	for _, k := range o.KeyR {
		for _, c := range p.den.denseOf(r) {
			if c == k {
				return true
			}
		}
	}
	ord := p.orderingOf(r)
	if !ord.strict || len(ord.cols) == 0 {
		return false
	}
	keySet := make(map[string]bool, len(o.KeyR))
	for _, k := range o.KeyR {
		keySet[k] = true
	}
	for _, c := range ord.cols {
		if !keySet[c] {
			return false
		}
	}
	return true
}

// sortedPrefix returns the columns o's output is sorted by; nil means no
// guarantee.
func (p *props) sortedPrefix(o *algebra.Op) []string { return p.orderingOf(o).cols }

func (p *props) orderingOf(o *algebra.Op) ordering {
	if s, ok := p.memo[o]; ok {
		return s
	}
	s := p.compute(o)
	p.memo[o] = s
	return s
}

func (p *props) compute(o *algebra.Op) ordering {
	switch o.Kind {
	case algebra.OpLit:
		return litSorted(o.Lit)
	case algebra.OpProject:
		// Renaming: map the child's sorted prefix through the projection;
		// the prefix survives as long as each column is kept.
		child := p.orderingOf(o.In[0])
		rename := map[string]string{} // old → new (first alias wins)
		for _, pr := range o.Proj {
			if _, dup := rename[pr.Old]; !dup {
				rename[pr.Old] = pr.New
			}
		}
		var out []string
		for _, c := range child.cols {
			n, ok := rename[c]
			if !ok {
				// Truncated: strictness over the shorter prefix is lost.
				return ordering{cols: out}
			}
			out = append(out, n)
		}
		return ordering{cols: out, strict: child.strict}
	case algebra.OpSelect, algebra.OpDistinct, algebra.OpFun,
		algebra.OpDoc, algebra.OpRoots:
		// Row filters and per-row extensions preserve input order (and
		// removing rows cannot break strictness).
		return p.orderingOf(o.In[0])
	case algebra.OpRowID:
		// mark appends a strictly increasing column in input order.
		child := p.orderingOf(o.In[0])
		return ordering{cols: append(append([]string{}, child.cols...), o.Col), strict: true}
	case algebra.OpSemiJoin, algebra.OpDiff:
		return p.orderingOf(o.In[0])
	case algebra.OpJoin:
		// The engine streams the left side in order. If the join key is a
		// key of the right input (N:1 — provable via a dense key column or
		// a strict right ordering covered by the key), no left row is
		// duplicated and the left ordering survives intact, strictness
		// included. Otherwise multiple matches duplicate left rows and
		// only the non-strict prefix survives. (Denseness never survives:
		// unmatched left rows may drop, breaking 1..n.)
		l := p.orderingOf(o.In[0])
		if p.rightKeyUnique(o) {
			return ordering{cols: l.cols, strict: l.strict}
		}
		return ordering{cols: l.cols}
	case algebra.OpCross:
		// Left-major: groups of identical left rows, right table order
		// within each. If the left prefix is strict (groups are distinct),
		// the right ordering composes.
		l := p.orderingOf(o.In[0])
		if !l.strict {
			return ordering{cols: l.cols}
		}
		r := p.orderingOf(o.In[1])
		return ordering{
			cols:   append(append([]string{}, l.cols...), r.cols...),
			strict: r.strict,
		}
	case algebra.OpRowNum:
		// Output is materialized in (partition, order...) order with the
		// numbering column increasing strictly within each partition —
		// so (partition, numbering) is the canonical strict ordering; it
		// subsumes the order keys and survives projections that drop them.
		var out []string
		if o.Part != "" {
			out = append(out, o.Part)
		}
		return ordering{cols: append(out, o.Col), strict: true}
	case algebra.OpStep:
		// Staircase join output is (iter, document order), duplicate-free.
		return ordering{cols: []string{"iter", "item"}, strict: true}
	case algebra.OpAggr:
		if o.Part != "" {
			child := p.orderingOf(o.In[0])
			if len(child.cols) > 0 && child.cols[0] == o.Part {
				return ordering{cols: []string{o.Part}, strict: true}
			}
		}
		return ordering{}
	case algebra.OpElem:
		return ordering{cols: []string{"iter"}, strict: true}
	case algebra.OpText, algebra.OpAttrC, algebra.OpRange, algebra.OpColl:
		child := p.orderingOf(o.In[0])
		if len(child.cols) > 0 && child.cols[0] == "iter" {
			return ordering{cols: []string{"iter"}}
		}
		return ordering{}
	case algebra.OpUnion:
		return ordering{} // concatenation gives no global guarantee
	}
	return ordering{}
}

// litSorted scans a literal table once (optimization time, tiny tables) to
// find its longest sorted column prefix and whether it is strict.
func litSorted(t *bat.Table) ordering {
	var out []string
	for _, col := range t.Cols() {
		out = append(out, col)
		if !sortedBy(t, out) {
			out = out[:len(out)-1]
			return ordering{cols: append([]string{}, out...)}
		}
	}
	return ordering{cols: out, strict: strictBy(t, out)}
}

func sortedBy(t *bat.Table, cols []string) bool {
	vecs := make([]bat.Vec, len(cols))
	for i, c := range cols {
		vecs[i] = t.MustCol(c)
	}
	for r := 1; r < t.Rows(); r++ {
		for _, v := range vecs {
			c := bat.CompareTotal(v.ItemAt(r-1), v.ItemAt(r))
			if c < 0 {
				break
			}
			if c > 0 {
				return false
			}
		}
	}
	return true
}

// strictBy reports whether consecutive rows always differ on the columns
// (assuming sortedBy already holds).
func strictBy(t *bat.Table, cols []string) bool {
	vecs := make([]bat.Vec, len(cols))
	for i, c := range cols {
		vecs[i] = t.MustCol(c)
	}
	for r := 1; r < t.Rows(); r++ {
		equal := true
		for _, v := range vecs {
			if bat.CompareTotal(v.ItemAt(r-1), v.ItemAt(r)) != 0 {
				equal = false
				break
			}
		}
		if equal {
			return false
		}
	}
	return true
}

// hasPrefix reports whether want is a prefix of have.
func hasPrefix(have, want []string) bool {
	if len(want) > len(have) {
		return false
	}
	for i, c := range want {
		if have[i] != c {
			return false
		}
	}
	return true
}
