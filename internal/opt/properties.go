package opt

import (
	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Props is the exported face of the optimizer's per-operator property
// inference, consumed by the physical lowering pass (internal/physical)
// to choose kernels: merge join needs both inputs Sorted on the key,
// the rownum mark fast path needs a Dense partition or presorted input.
type Props struct {
	// Sorted is the column prefix the output is guaranteed sorted by
	// (ascending, lexicographic); nil means no guarantee.
	Sorted []string
	// Strict reports the Sorted prefix is duplicate-free (a key), which
	// is what lets orderings compose across × and survive ⋈.
	Strict bool
	// Dense lists columns guaranteed to hold exactly 1..n in row order —
	// mark/rowid outputs and ramp literals. A dense column is trivially
	// Sorted and Strict, and numbering over it is the identity.
	Dense []string
}

// SortedOn reports whether the output is guaranteed sorted with the given
// columns as a prefix of its sort order.
func (p Props) SortedOn(cols ...string) bool {
	if hasPrefix(p.Sorted, cols) {
		return true
	}
	// A single dense column is sorted by construction.
	return len(cols) == 1 && p.DenseOn(cols[0])
}

// DenseOn reports whether col is one of the dense columns.
func (p Props) DenseOn(col string) bool {
	for _, c := range p.Dense {
		if c == col {
			return true
		}
	}
	return false
}

// Properties computes order/denseness properties for every operator of
// the plan DAG rooted at root. The map is keyed by operator identity, so
// shared subplans get a single entry.
func Properties(root *algebra.Op) map[*algebra.Op]Props {
	return NewPropertyEngine().Snapshot(root)
}

// PropertyEngine is the invalidation-aware home of the property memos.
// Property derivation memoizes per operator; a rewrite that swaps an
// operator's input silently invalidates the memoized claims of every
// ancestor. Passes that mutate the DAG in place (the isolation pass)
// must call Invalidate with the changed operators before trusting any
// further PropsOf/Snapshot answers — otherwise stale order or denseness
// claims leak into lowering, where internal/check rejects them.
type PropertyEngine struct {
	p *props
}

// NewPropertyEngine returns an engine with empty memos.
func NewPropertyEngine() *PropertyEngine { return &PropertyEngine{p: newProps()} }

// PropsOf derives (and memoizes) the properties of a single operator.
func (e *PropertyEngine) PropsOf(o *algebra.Op) Props {
	ord := e.p.orderingOf(o)
	return Props{Sorted: ord.cols, Strict: ord.strict, Dense: e.p.den.denseOf(o)}
}

// Snapshot derives properties for every operator of the DAG rooted at
// root. The snapshot is a plain map: it does NOT track later mutations —
// after an in-place rewrite, call Invalidate and re-Snapshot.
func (e *PropertyEngine) Snapshot(root *algebra.Op) map[*algebra.Op]Props {
	out := make(map[*algebra.Op]Props)
	for _, o := range algebra.Topo(root) {
		out[o] = e.PropsOf(o)
	}
	return out
}

// Invalidate drops the memoized properties of every changed operator and
// of every operator reachable from root that lies above one — their
// derivations may have depended on the old inputs. Operators are visited
// in Topo order (children first), so an ancestor is tainted exactly when
// any of its inputs is.
func (e *PropertyEngine) Invalidate(root *algebra.Op, changed ...*algebra.Op) {
	taint := make(map[*algebra.Op]bool, len(changed))
	for _, o := range changed {
		taint[o] = true
	}
	for _, o := range algebra.Topo(root) {
		if !taint[o] {
			for _, in := range o.In {
				if taint[in] {
					taint[o] = true
					break
				}
			}
		}
		if taint[o] {
			delete(e.p.memo, o)
			delete(e.p.den.memo, o)
		}
	}
}

// denseProps infers which columns hold exactly 1..n in row order.
type denseProps struct {
	memo map[*algebra.Op][]string
}

func (d *denseProps) denseOf(o *algebra.Op) []string {
	if cols, ok := d.memo[o]; ok {
		return cols
	}
	cols := d.compute(o)
	d.memo[o] = cols
	return cols
}

func (d *denseProps) compute(o *algebra.Op) []string {
	switch o.Kind {
	case algebra.OpLit:
		return litDense(o.Lit)
	case algebra.OpRowID:
		// mark emits 1..n by definition; the child's dense columns keep
		// their values and their row count, so they stay dense too.
		return append(append([]string{}, d.denseOf(o.In[0])...), o.Col)
	case algebra.OpRowNum:
		// Without partitioning, ϱ numbers the whole relation 1..n.
		if o.Part == "" {
			return []string{o.Col}
		}
		return nil
	case algebra.OpProject:
		// Rename dense columns through the projection (first alias wins,
		// duplicates of a dense column are each dense).
		child := d.denseOf(o.In[0])
		var out []string
		for _, pr := range o.Proj {
			for _, c := range child {
				if pr.Old == c {
					out = append(out, pr.New)
					break
				}
			}
		}
		return out
	case algebra.OpFun, algebra.OpDoc, algebra.OpRoots:
		// Per-row extensions keep every row, so density survives.
		return d.denseOf(o.In[0])
	}
	// σ, δ, joins, ∪, etc. drop or duplicate rows: 1..n breaks.
	return nil
}

// litDense scans a literal table (optimization time, tiny tables) for
// int columns holding exactly 1..n.
func litDense(t *bat.Table) []string {
	var out []string
	for _, name := range t.Cols() {
		v := t.MustCol(name)
		iv, ok := v.(bat.IntVec)
		if !ok {
			continue
		}
		dense := true
		for i, x := range iv {
			if x != int64(i)+1 {
				dense = false
				break
			}
		}
		if dense {
			out = append(out, name)
		}
	}
	return out
}
