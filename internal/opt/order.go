package opt

import (
	"pathfinder/internal/algebra"
)

// Order-sensitivity analysis: for each operator, does the *physical row
// order* of its output influence the query result? This is the safety
// side of join graph isolation — a numbering operator may be removed only
// where order provably does not matter.
//
// The analysis is top-down over the DAG (algebra.TopoDown: parents before
// children) and OR-accumulates across shared parents. Three kinds of
// facts feed it:
//
//   - The serializer sorts by (iter, pos); if the root rows are
//     duplicate-free on a subset of those columns (a strict derived
//     ordering), the serialized bytes are independent of row order, and
//     sensitivity at the root is off.
//   - Order *barriers*: operators whose output is fully value-determined
//     regardless of input order — the staircase join (groups, sorts, and
//     dedups internally) and a tie-free ϱ (sorting by a key of the input
//     leaves no ties for the physical order to break).
//   - Order *sinks*: operators whose output VALUES depend on input row
//     order no matter what downstream does — mark numbering, tie-broken
//     ϱ numbering, node constructors that assign pre-order ids in row
//     order (text, attribute, element content with possible ties), and
//     sequence-sensitive aggregates (string-join; sum/avg accumulate
//     floats in row order).
//
// orderMatters computes the sensitivity map for the DAG rooted at root,
// consulting pr for derived orderings and denseness. matters[o] == false
// is a proof that reordering o's output rows cannot change the query
// result (nor any constructed node identity).
func orderMatters(root *algebra.Op, pr *props) map[*algebra.Op]bool {
	m := make(map[*algebra.Op]bool, 64)
	mark := func(o *algebra.Op, v bool) {
		if v {
			m[o] = true
		} else if _, ok := m[o]; !ok {
			m[o] = false
		}
	}
	mark(root, !valueDetermined(root, pr))
	for _, o := range algebra.TopoDown(root) {
		mv := m[o]
		switch o.Kind {
		case algebra.OpLit:
			// no inputs
		case algebra.OpProject, algebra.OpSelect, algebra.OpFun,
			algebra.OpDoc, algebra.OpRoots, algebra.OpColl,
			algebra.OpRange, algebra.OpDistinct:
			// Order-preserving row maps/filters (δ keeps first
			// occurrences): input order shows through exactly when the
			// output's order is observed.
			mark(o.In[0], mv)
		case algebra.OpUnion:
			mark(o.In[0], mv)
			mark(o.In[1], mv)
		case algebra.OpDiff, algebra.OpSemiJoin:
			// Right side is a filter set — only membership matters.
			mark(o.In[0], mv)
			mark(o.In[1], false)
		case algebra.OpJoin, algebra.OpCross:
			// Left-streaming kernels: output order interleaves left order
			// with right physical match order.
			mark(o.In[0], mv)
			mark(o.In[1], mv)
		case algebra.OpRowNum:
			// ϱ sorts by (partition, order) with ties broken by input
			// order. Tie-free (the sort key is a key of the input) ⇒ both
			// the numbering values and the output row order are fully
			// determined: a barrier. Otherwise the input order leaks into
			// the numbering values themselves: a sink.
			mark(o.In[0], !rowNumTieFree(o, pr))
		case algebra.OpRowID:
			// mark numbers rows in input order — values are the order.
			mark(o.In[0], true)
		case algebra.OpAggr:
			sensitive := o.Agg == algebra.AggStrJoin ||
				o.Agg == algebra.AggSum || o.Agg == algebra.AggAvg
			if o.Part == "" {
				mark(o.In[0], sensitive)
			} else {
				// Partitioned groups surface in first-occurrence order.
				mark(o.In[0], mv || sensitive)
			}
		case algebra.OpStep:
			// The staircase join groups by (iter, fragment), sorts group
			// keys, and sort-dedups context nodes: a full barrier.
			mark(o.In[0], false)
		case algebra.OpElem:
			// Qnames are sorted by iter (duplicates are an error); content
			// is sorted by (iter, pos) before node construction, so its
			// order is only observable through ties on (iter, pos).
			mark(o.In[0], false)
			mark(o.In[1], !valueDetermined(o.In[1], pr))
		case algebra.OpText:
			// Constructed text nodes get pre-order ids in input row order.
			mark(o.In[0], true)
		case algebra.OpAttrC:
			// Attribute construction numbers nodes in name-row order; the
			// value side is consulted by iter lookup only.
			mark(o.In[0], true)
			mark(o.In[1], false)
		default:
			for _, in := range o.In {
				mark(in, true)
			}
		}
	}
	return m
}

// valueDetermined reports that sorting o's rows by (iter, pos) — what the
// serializer and the element constructor do — yields a sequence
// independent of the incoming row order: the derived ordering is strict
// over columns drawn from {iter, pos}, so no two rows tie on the sort key.
func valueDetermined(o *algebra.Op, pr *props) bool {
	ord := pr.orderingOf(o)
	if !ord.strict || len(ord.cols) == 0 {
		return false
	}
	for _, c := range ord.cols {
		if c != "iter" && c != "pos" {
			return false
		}
	}
	return true
}

// rowNumTieFree proves ϱ's sort key (partition + order columns) is a key
// of its input: either the input's strict derived ordering uses only
// those columns, or one of them is dense (1..n never repeats).
func rowNumTieFree(o *algebra.Op, pr *props) bool {
	keySet := make(map[string]bool, len(o.Order)+1)
	if o.Part != "" {
		keySet[o.Part] = true
	}
	for _, s := range o.Order {
		keySet[s.Col] = true
	}
	for _, c := range pr.den.denseOf(o.In[0]) {
		if keySet[c] {
			return true
		}
	}
	ord := pr.orderingOf(o.In[0])
	if !ord.strict || len(ord.cols) == 0 {
		return false
	}
	for _, c := range ord.cols {
		if !keySet[c] {
			return false
		}
	}
	return true
}
