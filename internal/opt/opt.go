// Package opt implements Pathfinder's plan rewriting: the "assembly
// style" plans emitted by the loop-lifting compiler are large (the paper
// quotes ~120 operators for XMark Q8) but highly redundant, and the
// restrictions of the algebra (π never removes duplicates, all unions
// disjoint, all joins equi-joins) make rewrites safe to verify locally.
//
// The optimizer is organized as a staged pipeline (pipeline.go): an
// explicit multi-pass driver runs
//
//	normalize → analyze → isolate
//
// to a fixed point, then re-derives properties and cleans up. The passes:
//
//   - normalize: common subexpression elimination over the DAG (MIL
//     variable sharing), projection fusion (π ∘ π → π), identity-
//     projection removal, and dead column pruning guided by the demand
//     analysis (demand.go) — plus the local order-property rewrites
//     (ϱ → mark over presorted input, δ elimination on keyed input).
//   - analyze: the join-graph analysis (joingraph.go) — which equi-joins
//     connect real value columns and which only thread loop-lifting
//     scaffolding, and which numbering towers are dead.
//   - isolate: join graph isolation (isolate.go) — removal of numbering
//     operators that only maintain an order nothing downstream observes,
//     proven via the derived order/denseness/key properties.
//
// Order-property exploitation at runtime — recognizing that a ϱ input is
// already in (partition, order) order and skipping the sort — lives in
// the engine's ϱ implementation, where the property is checked with one
// linear scan.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"pathfinder/internal/algebra"
)

// Optimize rewrites the plan DAG through the staged pipeline and returns
// the (possibly new) root. The input DAG is not mutated, and the result
// never has more operators than the input: on tiny plans, where the
// union-alignment projections of the pruning pass can outweigh its
// savings, the CSE-only plan is returned instead.
func Optimize(root *algebra.Op) (*algebra.Op, error) {
	res, err := Pipeline(root)
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// Peephole is the pre-pipeline optimizer — one CSE + prune/fuse sweep
// with no join graph isolation. It is kept as the `-no-opt-pipeline`
// escape hatch on pf and pfserver, and as the baseline the plan
// benchmark (internal/bench) measures the pipeline against.
func Peephole(root *algebra.Op) (*algebra.Op, error) {
	shared := cse(root)
	r, err := pruneAndFuse(shared)
	if err != nil {
		return nil, err
	}
	r = cse(r)
	if algebra.CountOps(r) > algebra.CountOps(shared) {
		r = shared
	}
	if err := algebra.Validate(r); err != nil {
		return nil, fmt.Errorf("optimizer produced an invalid plan: %w", err)
	}
	return r, nil
}

// cse shares structurally identical subplans — the rewriting MonetDB gets
// for free from MIL variable reuse.
func cse(root *algebra.Op) *algebra.Op {
	canon := make(map[string]*algebra.Op)
	memo := make(map[*algebra.Op]*algebra.Op)
	var walk func(o *algebra.Op) *algebra.Op
	walk = func(o *algebra.Op) *algebra.Op {
		if c, ok := memo[o]; ok {
			return c
		}
		children := make([]*algebra.Op, len(o.In))
		changed := false
		for i, in := range o.In {
			children[i] = walk(in)
			if children[i] != in {
				changed = true
			}
		}
		cur := o
		if changed {
			cp := *o
			cp.In = children
			cur = &cp
		}
		sig := signature(cur)
		if c, ok := canon[sig]; ok {
			memo[o] = c
			return c
		}
		canon[sig] = cur
		memo[o] = cur
		return cur
	}
	return walk(root)
}

// signature renders an operator's identity: kind, parameters, and child
// object identities (children are canonical already when called bottom-up).
func signature(o *algebra.Op) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", o.Kind)
	for _, in := range o.In {
		fmt.Fprintf(&sb, " c%p", in)
	}
	switch o.Kind {
	case algebra.OpLit:
		fmt.Fprintf(&sb, " t%p", o.Lit)
	case algebra.OpProject:
		for _, p := range o.Proj {
			fmt.Fprintf(&sb, " %s:%s", p.New, p.Old)
		}
	case algebra.OpSelect, algebra.OpRowID:
		sb.WriteString(" " + o.Col)
	case algebra.OpJoin, algebra.OpSemiJoin, algebra.OpDiff, algebra.OpRange:
		fmt.Fprintf(&sb, " %v=%v", o.KeyL, o.KeyR)
	case algebra.OpRowNum:
		fmt.Fprintf(&sb, " %s %v %s", o.Col, o.Order, o.Part)
	case algebra.OpFun:
		fmt.Fprintf(&sb, " %s %d %v %d %s", o.Col, o.Fun, o.Args, o.Type, o.TypeName)
	case algebra.OpAggr:
		fmt.Fprintf(&sb, " %s %d %v %s %q", o.Col, o.Agg, o.Args, o.Part, o.Sep)
	case algebra.OpStep:
		fmt.Fprintf(&sb, " %d %d %s", o.Axis, o.Test.Kind, o.Test.Name)
	}
	return sb.String()
}

// pruneAndFuse runs the demand analysis and rebuilds the DAG with pruned
// and fused projections.
func pruneAndFuse(root *algebra.Op) (*algebra.Op, error) {
	needed := demandMap(root)

	// Rebuild bottom-up with pruned projections, fused π∘π chains, and
	// order-property rewrites.
	memo := make(map[*algebra.Op]*algebra.Op)
	pr := newProps()
	var rebuild func(o *algebra.Op) (*algebra.Op, error)
	rebuild = func(o *algebra.Op) (*algebra.Op, error) {
		if c, ok := memo[o]; ok {
			return c, nil
		}
		children := make([]*algebra.Op, len(o.In))
		for i, in := range o.In {
			c, err := rebuild(in)
			if err != nil {
				return nil, err
			}
			children[i] = c
		}
		out, err := rebuildOp(o, children, needed[o], pr)
		if err != nil {
			return nil, err
		}
		memo[o] = out
		return out, nil
	}
	return rebuild(root)
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	//pfvet:allow maporder -- keys is the sorted-iteration helper itself
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func rebuildOp(o *algebra.Op, in []*algebra.Op, need map[string]bool, pr *props) (*algebra.Op, error) {
	switch o.Kind {
	case algebra.OpLit:
		return o, nil
	case algebra.OpProject:
		// Prune unneeded output columns (keep at least one column: a
		// zero-column relation has no row representation in the engine).
		specs := make([]string, 0, len(o.Proj))
		for _, p := range o.Proj {
			if need == nil || need[p.New] {
				specs = append(specs, p.New+":"+p.Old)
			}
		}
		if len(specs) == 0 {
			specs = append(specs, o.Proj[0].New+":"+o.Proj[0].Old)
		}
		// Fuse with a child projection.
		child := in[0]
		if child.Kind == algebra.OpProject {
			lookup := make(map[string]string, len(child.Proj))
			for _, p := range child.Proj {
				lookup[p.New] = p.Old
			}
			fused := make([]string, len(specs))
			for i, s := range specs {
				nw, old, _ := strings.Cut(s, ":")
				fused[i] = nw + ":" + lookup[old]
			}
			specs = fused
			child = child.In[0]
		}
		// Identity projection: same names, same order, full schema.
		if identityProjection(specs, child.Schema()) {
			return child, nil
		}
		return algebra.Project(child, specs...)
	case algebra.OpSelect:
		return algebra.Select(in[0], o.Col)
	case algebra.OpUnion:
		l, r := in[0], in[1]
		// Pruning may have left the sides with different schemas; align
		// them on the intersection demanded from the union.
		if !sameCols(l.Schema(), r.Schema()) {
			shared := intersect(l.Schema(), r.Schema())
			if len(shared) == 0 {
				return nil, fmt.Errorf("union sides lost all shared columns")
			}
			var err error
			if len(shared) != len(l.Schema()) {
				if l, err = algebra.Project(l, shared...); err != nil {
					return nil, err
				}
			}
			if len(shared) != len(r.Schema()) {
				if r, err = algebra.Project(r, shared...); err != nil {
					return nil, err
				}
			}
		}
		return algebra.Union(l, r)
	case algebra.OpDiff:
		return algebra.Diff(in[0], in[1], o.KeyL, o.KeyR)
	case algebra.OpDistinct:
		// Key-property rewrite: a strict ordering is a key, and sorted
		// inputs keep duplicates adjacent — so a keyed input has no
		// duplicate rows and δ is the identity.
		if pr.orderingOf(in[0]).strict {
			return in[0], nil
		}
		return algebra.Distinct(in[0]), nil
	case algebra.OpJoin:
		return algebra.Join(in[0], in[1], o.KeyL, o.KeyR)
	case algebra.OpSemiJoin:
		return algebra.SemiJoin(in[0], in[1], o.KeyL, o.KeyR)
	case algebra.OpCross:
		return algebra.Cross(in[0], in[1])
	case algebra.OpRowNum:
		// Order-property rewrite ([3]): a global ϱ whose input is already
		// sorted by its order columns is MonetDB's no-cost mark operator.
		if o.Part == "" {
			ascending := true
			cols := make([]string, 0, len(o.Order))
			for _, s := range o.Order {
				if s.Desc {
					ascending = false
					break
				}
				cols = append(cols, s.Col)
			}
			if ascending && hasPrefix(pr.sortedPrefix(in[0]), cols) {
				return algebra.RowID(in[0], o.Col)
			}
		}
		return algebra.RowNum(in[0], o.Col, o.Order, o.Part)
	case algebra.OpRowID:
		return algebra.RowID(in[0], o.Col)
	case algebra.OpFun:
		f, err := algebra.Fun(in[0], o.Col, o.Fun, o.Args...)
		if err != nil {
			return nil, err
		}
		f.Type, f.TypeName = o.Type, o.TypeName
		return f, nil
	case algebra.OpAggr:
		arg := ""
		if len(o.Args) > 0 {
			arg = o.Args[0]
		}
		a, err := algebra.Aggr(in[0], o.Col, o.Agg, arg, o.Part)
		if err != nil {
			return nil, err
		}
		a.Sep = o.Sep
		return a, nil
	case algebra.OpStep:
		return algebra.Step(in[0], o.Axis, o.Test)
	case algebra.OpDoc:
		return algebra.DocOp(in[0])
	case algebra.OpRoots:
		return algebra.Roots(in[0])
	case algebra.OpElem:
		return algebra.Elem(in[0], in[1])
	case algebra.OpText:
		return algebra.Text(in[0])
	case algebra.OpAttrC:
		return algebra.AttrC(in[0], in[1])
	case algebra.OpRange:
		return algebra.Range(in[0], o.KeyL[0], o.KeyL[1])
	case algebra.OpColl:
		return algebra.CollOp(in[0])
	}
	return nil, fmt.Errorf("unknown operator %s", o.Kind)
}

func identityProjection(specs, schema []string) bool {
	if len(specs) != len(schema) {
		return false
	}
	for i, s := range specs {
		nw, old, _ := strings.Cut(s, ":")
		if nw != old || nw != schema[i] {
			return false
		}
	}
	return true
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, c := range a {
		set[c] = true
	}
	for _, c := range b {
		if !set[c] {
			return false
		}
	}
	return true
}

func intersect(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, c := range b {
		set[c] = true
	}
	var out []string
	for _, c := range a {
		if set[c] {
			out = append(out, c)
		}
	}
	return out
}
