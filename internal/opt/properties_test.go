package opt

import (
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Dense analysis: which operators guarantee a column holds exactly 1..n.
func TestDenseProperties(t *testing.T) {
	ramp := algebra.Lit(bat.MustTable(
		"pos", bat.IntVec{1, 2, 3},
		"item", bat.IntVec{9, 9, 9},
	))
	props := Properties(ramp)
	if !props[ramp].DenseOn("pos") {
		t.Error("ramp literal column must be dense")
	}
	if props[ramp].DenseOn("item") {
		t.Error("constant column is not dense")
	}

	// mark appends a dense column and keeps the child's.
	marked := mustOp(algebra.RowID(ramp, "m"))
	props = Properties(marked)
	if !props[marked].DenseOn("m") || !props[marked].DenseOn("pos") {
		t.Errorf("mark density = %v", props[marked].Dense)
	}

	// Unpartitioned ϱ numbers the whole relation 1..n.
	rn := mustOp(algebra.RowNum(ramp, "n", []algebra.OrderSpec{{Col: "item"}}, ""))
	props = Properties(rn)
	if !props[rn].DenseOn("n") {
		t.Error("unpartitioned rownum output must be dense")
	}

	// Projection renames density; selection destroys it.
	proj := mustOp(algebra.Project(marked, "q:m"))
	props = Properties(proj)
	if !props[proj].DenseOn("q") || props[proj].DenseOn("m") {
		t.Errorf("projected density = %v", props[proj].Dense)
	}
	f := mustOp(algebra.Fun(marked, "b", algebra.FunEq, "m", "m"))
	sel := mustOp(algebra.Select(f, "b"))
	props = Properties(sel)
	if len(props[sel].Dense) != 0 {
		t.Errorf("selection output kept density: %v", props[sel].Dense)
	}
}

func TestPropsSortedOn(t *testing.T) {
	p := Props{Sorted: []string{"iter", "pos"}}
	if !p.SortedOn("iter") || !p.SortedOn("iter", "pos") {
		t.Error("sorted prefix not recognized")
	}
	if p.SortedOn("pos") {
		t.Error("non-prefix column accepted")
	}
	// A dense column is sorted by construction even without an ordering.
	d := Props{Dense: []string{"m"}}
	if !d.SortedOn("m") {
		t.Error("dense column must count as sorted")
	}
	if d.SortedOn("m", "x") {
		t.Error("dense column only covers single-column orders")
	}
}

// Properties must assign one entry per distinct operator, shared subplans
// included.
func TestPropertiesCoversDAG(t *testing.T) {
	shared := algebra.Lit(bat.MustTable("k", bat.IntVec{1, 2}))
	a := mustOp(algebra.Project(shared, "x:k"))
	b := mustOp(algebra.Project(shared, "y:k"))
	j := mustOp(algebra.Join(a, b, []string{"x"}, []string{"y"}))
	props := Properties(j)
	if len(props) != algebra.CountOps(j) {
		t.Fatalf("%d property entries for %d ops", len(props), algebra.CountOps(j))
	}
	if !props[shared].SortedOn("k") {
		t.Error("shared literal lost its sortedness")
	}
}
