package opt

import (
	"pathfinder/internal/algebra"
)

// Join graph isolation ("XQuery Join Graph Isolation", Grust, Mayr,
// Rittinger): remove the numbering operators that only maintain an order
// nothing can observe. The loop-lifting compiler threads sequence order
// through ϱ/mark towers defensively — at every step result, every
// back-map — but once the serializer's (iter, pos) sort and the derived
// key properties are taken into account, most of those towers contribute
// nothing except the order of rows that are about to be re-sorted or
// never compared. What remains after isolation is the query's actual
// join graph on iter, plus the single order-restoring numbering the
// result really needs.
//
// The rewrite is deliberately narrow and proof-carrying. We only splice
// out a numbering operator c under a projection parent π where:
//
//   - π does not reference c's numbering column (the column is dead on
//     this edge — all c contributes to π is row order), and
//   - one of three order proofs holds:
//     (1) c is a mark (ϱ with no sort): removing it cannot change row
//     order at all;
//     (2) c is a ϱ whose input is already sorted by its (partition,
//     order) columns — the stable sort is the identity, so again row
//     order is untouched;
//     (3) the order-sensitivity analysis (order.go) proves π's output
//     order is unobservable — reordering is semantically invisible.
//
// Splicing only the π edge keeps the rewrite DAG-safe: other parents of
// c (which may demand the numbering column, or its order) are untouched,
// and π's schema cannot break because it never mentioned c's column.
// After every splice the property memos above π are invalidated and the
// sensitivity analysis is recomputed — an order proof derived on the old
// shape must not justify the next splice.
//
// The spliced-out towers typically leave identity projections and newly
// shareable subgraphs behind; the next normalize round of the pipeline
// collapses those (projection fusion + cross-operator CSE), which is how
// whole rownum/map towers disappear rather than single operators.
func isolate(root *algebra.Op, e *PropertyEngine) int {
	rewrites := 0
	for {
		om := orderMatters(root, e.p)
		spliced := false
		for _, o := range algebra.Topo(root) {
			if o.Kind != algebra.OpProject {
				continue
			}
			c := o.In[0]
			if c.Kind != algebra.OpRowNum && c.Kind != algebra.OpRowID {
				continue
			}
			referenced := false
			for _, p := range o.Proj {
				if p.Old == c.Col {
					referenced = true
					break
				}
			}
			if referenced {
				continue
			}
			safe := false
			switch c.Kind {
			case algebra.OpRowID:
				safe = true
			case algebra.OpRowNum:
				safe = rowNumNoop(c, e.p) || !om[o]
			}
			if !safe {
				continue
			}
			o.In[0] = c.In[0]
			e.Invalidate(root, o)
			rewrites++
			spliced = true
			break
		}
		if !spliced {
			return rewrites
		}
	}
}

// rowNumNoop proves ϱ's stable sort is the identity on its input: every
// order key ascending and the input already sorted by the (partition,
// order) column sequence (or dense in the single-column case).
func rowNumNoop(o *algebra.Op, pr *props) bool {
	cols := make([]string, 0, len(o.Order)+1)
	if o.Part != "" {
		cols = append(cols, o.Part)
	}
	for _, s := range o.Order {
		if s.Desc {
			return false
		}
		cols = append(cols, s.Col)
	}
	return pr.sortedOn(o.In[0], cols)
}
