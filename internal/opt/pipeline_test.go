package opt_test

import (
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/check"
	"pathfinder/internal/core"
	"pathfinder/internal/opt"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// TestPipelineBeatsPeephole pins the tentpole claim: on the join-heavy
// XMark queries the staged pipeline (join graph isolation) removes
// operators the single-shot peephole cannot see, and never does worse on
// any query.
func TestPipelineBeatsPeephole(t *testing.T) {
	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	improved := 0
	for n := 1; n <= xmark.NumQueries; n++ {
		plan, _, err := core.CompileQuery(xmark.Query(n), opts)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		peep, err := opt.Peephole(plan)
		if err != nil {
			t.Fatalf("Q%d: peephole: %v", n, err)
		}
		res, err := opt.Pipeline(plan)
		if err != nil {
			t.Fatalf("Q%d: pipeline: %v", n, err)
		}
		p, q := algebra.CountOps(peep), algebra.CountOps(res.Plan)
		if q > p {
			t.Errorf("Q%d: pipeline grew the plan over peephole: %d -> %d", n, p, q)
		}
		if q < p {
			improved++
		}
	}
	// The join-heavy queries (q08–q12) must all collapse; in practice the
	// isolation pass fires on every XMark query.
	if improved < 5 {
		t.Errorf("pipeline improved only %d/20 queries over peephole", improved)
	}
}

// TestPipelineTrace asserts the per-pass trace names every pass and
// reports consistent operator counts.
func TestPipelineTrace(t *testing.T) {
	plan, _, err := core.CompileQuery(xmark.Query(8), xqcore.Options{ContextDoc: "xmark.xml"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Pipeline(plan)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range res.Trace {
		seen[s.Pass] = true
		if s.OpsOut > s.OpsIn {
			t.Errorf("pass %s (round %d) grew the plan %d -> %d", s.Pass, s.Round, s.OpsIn, s.OpsOut)
		}
	}
	for _, pass := range []string{"normalize", "analyze", "isolate", "properties", "cleanup"} {
		if !seen[pass] {
			t.Errorf("trace has no %q pass", pass)
		}
	}
	ts := res.TraceString()
	if !strings.Contains(ts, "isolate") || !strings.Contains(ts, "round final") {
		t.Errorf("TraceString missing expected lines:\n%s", ts)
	}
	if last := res.Trace[len(res.Trace)-1]; last.OpsOut != algebra.CountOps(res.Plan) {
		t.Errorf("final trace entry reports %d ops, plan has %d", last.OpsOut, algebra.CountOps(res.Plan))
	}
}

// TestPipelineDoesNotMutateInput pins the Optimize contract on the
// in-place isolation pass: the caller's DAG must render identically
// before and after a pipeline run.
func TestPipelineDoesNotMutateInput(t *testing.T) {
	plan, _, err := core.CompileQuery(xmark.Query(8), xqcore.Options{ContextDoc: "xmark.xml"})
	if err != nil {
		t.Fatal(err)
	}
	before := algebra.TreeString(plan)
	if _, err := opt.Pipeline(plan); err != nil {
		t.Fatal(err)
	}
	if after := algebra.TreeString(plan); after != before {
		t.Fatal("pipeline mutated its input plan")
	}
}

// TestPipelinePlansCheckClean runs every XMark query through the
// pipeline and has internal/check independently re-validate the result
// at every layer — the acceptance bar for each isolation rewrite.
func TestPipelinePlansCheckClean(t *testing.T) {
	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for n := 1; n <= xmark.NumQueries; n++ {
		plan, _, err := core.CompileQuery(xmark.Query(n), opts)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		res, err := opt.Pipeline(plan)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if diags := check.Plan(res.Plan); len(diags) > 0 {
			t.Errorf("Q%d: pipeline plan has findings:\n%s", n, check.Render(diags))
		}
	}
}

// TestPropertyEngineInvalidation is the regression test for stale
// property claims leaking into lowering: property derivation memoizes
// per operator, so an in-place rewrite that swaps an input must
// invalidate the ancestors' memo entries — otherwise the engine keeps
// certifying an ordering the rewritten plan no longer has, and
// internal/check is what catches the lie.
func TestPropertyEngineInvalidation(t *testing.T) {
	sorted := algebra.Lit(bat.MustTable("iter", bat.IntVec{1, 2, 3}))
	unsorted := algebra.Lit(bat.MustTable("iter", bat.IntVec{2, 1, 3}))
	root := algebra.Distinct(sorted)

	e := opt.NewPropertyEngine()
	if p := e.PropsOf(root); !p.Strict || len(p.Sorted) == 0 {
		t.Fatalf("pre-rewrite δ should derive a strict ordering, got %+v", p)
	}

	// The in-place rewrite an isolation-style pass performs: swap the
	// input out from under the memoized operator.
	root.In[0] = unsorted

	// Without invalidation the memo still serves the pre-rewrite claim —
	// and the independent validator rejects it.
	stale := e.Snapshot(root)
	if !stale[root].Strict {
		t.Fatal("memo unexpectedly forgot the stale claim; test premise broken")
	}
	diags := check.Properties(root, stale)
	if len(diags) == 0 {
		t.Fatal("stale strict-ordering claim validated clean")
	}

	// Invalidating the changed operator (and everything above it) forces
	// re-derivation on the new shape; the claims verify again.
	e.Invalidate(root, root)
	fresh := e.Snapshot(root)
	if fresh[root].Strict || len(fresh[root].Sorted) != 0 {
		t.Fatalf("post-invalidation δ props should be empty, got %+v", fresh[root])
	}
	if diags := check.Properties(root, fresh); len(diags) > 0 {
		t.Fatalf("re-derived props still rejected:\n%s", check.Render(diags))
	}
}
