package opt

import (
	"fmt"

	"pathfinder/internal/algebra"
)

// Join-graph analysis: classify the plan's equi-joins and numbering
// operators so the trace shows what the isolation pass has to work with.
// The loop-lifting compiler encodes the query's real join graph behind
// iter-scaffolding — equi-joins whose keys are loop-membership numbers
// (iter columns, ϱ/mark outputs) rather than document values, plus
// numbering towers whose only surviving contribution is row order. The
// provenance annotation in internal/algebra is what lets us tell the two
// kinds of join key apart.
type joinGraph struct {
	// joins counts every equi-join in the DAG.
	joins int
	// scaffolding counts joins whose key columns all trace back to
	// loop-lifting bookkeeping (iter/pos threads or numbering operators)
	// — the back-maps and loop connectors of the lifted plan.
	scaffolding int
	// n1 counts joins whose right key is provably unique, i.e. the joins
	// the property inference knows preserve the left row set 1:1.
	n1 int
	// deadTowers counts numbering operators (ϱ, mark) whose numbering
	// column nothing downstream demands: isolation candidates.
	deadTowers int
}

func (g joinGraph) note() string {
	return fmt.Sprintf("%d joins (%d scaffolding, %d n:1), %d dead numbering ops",
		g.joins, g.scaffolding, g.n1, g.deadTowers)
}

// analyzeJoinGraph walks the DAG once, classifying joins by key
// provenance and uniqueness and numbering operators by demand.
func analyzeJoinGraph(root *algebra.Op, e *PropertyEngine) joinGraph {
	prov := algebra.Provenance(root)
	need := demandMap(root)
	var g joinGraph
	for _, o := range algebra.Topo(root) {
		switch o.Kind {
		case algebra.OpJoin:
			g.joins++
			scaff := len(o.KeyL) > 0
			for i := range o.KeyL {
				if !scaffoldingOrigin(prov[o.In[0]][o.KeyL[i]]) ||
					!scaffoldingOrigin(prov[o.In[1]][o.KeyR[i]]) {
					scaff = false
					break
				}
			}
			if scaff {
				g.scaffolding++
			}
			if e.p.rightKeyUnique(o) {
				g.n1++
			}
		case algebra.OpRowNum, algebra.OpRowID:
			if !need[o][o.Col] {
				g.deadTowers++
			}
		}
	}
	return g
}

// scaffoldingOrigin reports whether a join key column is loop-lifting
// bookkeeping: it threads an iter/pos column, or its values are produced
// by a numbering operator (ϱ/mark) rather than drawn from a document.
func scaffoldingOrigin(org algebra.Origin) bool {
	if org.Col == "iter" || org.Col == "pos" {
		return true
	}
	if org.Op == nil {
		return false
	}
	return org.Op.Kind == algebra.OpRowNum || org.Op.Kind == algebra.OpRowID
}
