package opt_test

// Logical-plan golden snapshots: the optimized plan text of every XMark
// query — the same rendering `pf -show opt` prints (per-pass pipeline
// trace, plan tree, operator count) — pinned under testdata/plans/. A
// future optimizer change then diffs at the plan level, not just at the
// query-output level: a pass that stops firing, fires twice, or reorders
// operators shows up as a readable plan diff even when the results stay
// byte-identical.
//
// Regenerate after an intentional optimizer change with
//
//	go test ./internal/opt -run TestPlanGoldens -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/opt"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

var update = flag.Bool("update", false, "rewrite the golden plan snapshots")

func renderPlanSnapshot(res opt.Result) string {
	return res.TraceString() + "\n" + algebra.TreeString(res.Plan) +
		fmt.Sprintf("(%d operators)\n", algebra.CountOps(res.Plan))
}

func TestPlanGoldens(t *testing.T) {
	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for n := 1; n <= xmark.NumQueries; n++ {
		t.Run(fmt.Sprintf("q%02d", n), func(t *testing.T) {
			plan, _, err := core.CompileQuery(xmark.Query(n), opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Pipeline(plan)
			if err != nil {
				t.Fatal(err)
			}
			got := renderPlanSnapshot(res)
			path := filepath.Join("testdata", "plans", fmt.Sprintf("q%02d.plan", n))
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("optimized plan drifted from %s; rerun with -update if intentional\ngot:\n%s", path, got)
			}
		})
	}
}

// TestPlanGoldensDeterministic catches map-iteration-order leaks in the
// pipeline the cheap way: two independent runs over the same query must
// render to the same bytes, trace included.
func TestPlanGoldensDeterministic(t *testing.T) {
	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	for _, n := range []int{8, 10} {
		var first string
		for run := 0; run < 3; run++ {
			plan, _, err := core.CompileQuery(xmark.Query(n), opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Pipeline(plan)
			if err != nil {
				t.Fatal(err)
			}
			got := renderPlanSnapshot(res)
			if run == 0 {
				first = got
			} else if got != first {
				t.Fatalf("Q%d: pipeline output differs between runs", n)
			}
		}
	}
}
