package bat

import "fmt"

// ColType enumerates the physical column types the engine stores.
type ColType uint8

// Column types. TInt backs the dense iter/pos columns the loop-lifting
// encoding relies on; TItem is the polymorphic item column of Figure 2.
const (
	TInt ColType = iota
	TFloat
	TStr
	TBool
	TNode
	TItem
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "dbl"
	case TStr:
		return "str"
	case TBool:
		return "bit"
	case TNode:
		return "node"
	case TItem:
		return "item"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Vec is one column vector. Implementations are typed slices; Item-level
// access goes through ItemAt/AppendItem so generic operators can stay
// oblivious to the physical type while typed fast paths (Ints, Items)
// remain available.
type Vec interface {
	Len() int
	Type() ColType
	ItemAt(i int) Item
	// Gather builds a new vector containing rows idx[0], idx[1], ... .
	Gather(idx []int32) Vec
	// Slice returns the half-open row range [lo, hi).
	Slice(lo, hi int) Vec
	// New returns an empty vector of the same physical type with capacity
	// hint n.
	New(n int) Builder
}

// Builder accumulates rows for a new vector.
type Builder interface {
	AppendItem(it Item)
	// AppendFrom appends row i of src, which must have the same physical
	// type as the builder (or be item-compatible).
	AppendFrom(src Vec, i int)
	Build() Vec
}

// IntVec is a dense integer column (iter, pos, pre, size, level, ...).
type IntVec []int64

func (v IntVec) Len() int          { return len(v) }
func (v IntVec) Type() ColType     { return TInt }
func (v IntVec) ItemAt(i int) Item { return Int(v[i]) }
func (v IntVec) Gather(idx []int32) Vec {
	out := make(IntVec, len(idx))
	for j, i := range idx {
		out[j] = v[i]
	}
	return out
}
func (v IntVec) Slice(lo, hi int) Vec { return v[lo:hi] }
func (v IntVec) New(n int) Builder    { b := make(IntVec, 0, n); return &intBuilder{b} }

type intBuilder struct{ v IntVec }

func (b *intBuilder) AppendItem(it Item) { b.v = append(b.v, it.I) }
func (b *intBuilder) AppendFrom(src Vec, i int) {
	if s, ok := src.(IntVec); ok {
		b.v = append(b.v, s[i])
		return
	}
	b.v = append(b.v, src.ItemAt(i).I)
}
func (b *intBuilder) Build() Vec { return b.v }

// FloatVec is a column of xs:double values.
type FloatVec []float64

func (v FloatVec) Len() int          { return len(v) }
func (v FloatVec) Type() ColType     { return TFloat }
func (v FloatVec) ItemAt(i int) Item { return Float(v[i]) }
func (v FloatVec) Gather(idx []int32) Vec {
	out := make(FloatVec, len(idx))
	for j, i := range idx {
		out[j] = v[i]
	}
	return out
}
func (v FloatVec) Slice(lo, hi int) Vec { return v[lo:hi] }
func (v FloatVec) New(n int) Builder    { b := make(FloatVec, 0, n); return &floatBuilder{b} }

type floatBuilder struct{ v FloatVec }

func (b *floatBuilder) AppendItem(it Item) { b.v = append(b.v, it.AsFloat()) }
func (b *floatBuilder) AppendFrom(src Vec, i int) {
	if s, ok := src.(FloatVec); ok {
		b.v = append(b.v, s[i])
		return
	}
	b.v = append(b.v, src.ItemAt(i).AsFloat())
}
func (b *floatBuilder) Build() Vec { return b.v }

// StrVec is a column of strings.
type StrVec []string

func (v StrVec) Len() int          { return len(v) }
func (v StrVec) Type() ColType     { return TStr }
func (v StrVec) ItemAt(i int) Item { return Str(v[i]) }
func (v StrVec) Gather(idx []int32) Vec {
	out := make(StrVec, len(idx))
	for j, i := range idx {
		out[j] = v[i]
	}
	return out
}
func (v StrVec) Slice(lo, hi int) Vec { return v[lo:hi] }
func (v StrVec) New(n int) Builder    { b := make(StrVec, 0, n); return &strBuilder{b} }

type strBuilder struct{ v StrVec }

func (b *strBuilder) AppendItem(it Item) { b.v = append(b.v, it.S) }
func (b *strBuilder) AppendFrom(src Vec, i int) {
	if s, ok := src.(StrVec); ok {
		b.v = append(b.v, s[i])
		return
	}
	b.v = append(b.v, src.ItemAt(i).StringValue())
}
func (b *strBuilder) Build() Vec { return b.v }

// BoolVec is a column of booleans (σ selects on these).
type BoolVec []bool

func (v BoolVec) Len() int          { return len(v) }
func (v BoolVec) Type() ColType     { return TBool }
func (v BoolVec) ItemAt(i int) Item { return Bool(v[i]) }
func (v BoolVec) Gather(idx []int32) Vec {
	out := make(BoolVec, len(idx))
	for j, i := range idx {
		out[j] = v[i]
	}
	return out
}
func (v BoolVec) Slice(lo, hi int) Vec { return v[lo:hi] }
func (v BoolVec) New(n int) Builder    { b := make(BoolVec, 0, n); return &boolBuilder{b} }

type boolBuilder struct{ v BoolVec }

func (b *boolBuilder) AppendItem(it Item) { b.v = append(b.v, it.B) }
func (b *boolBuilder) AppendFrom(src Vec, i int) {
	if s, ok := src.(BoolVec); ok {
		b.v = append(b.v, s[i])
		return
	}
	b.v = append(b.v, src.ItemAt(i).B)
}
func (b *boolBuilder) Build() Vec { return b.v }

// NodeVec is a column of node references (context nodes feeding the
// staircase join).
type NodeVec []NodeRef

func (v NodeVec) Len() int          { return len(v) }
func (v NodeVec) Type() ColType     { return TNode }
func (v NodeVec) ItemAt(i int) Item { return Node(v[i]) }
func (v NodeVec) Gather(idx []int32) Vec {
	out := make(NodeVec, len(idx))
	for j, i := range idx {
		out[j] = v[i]
	}
	return out
}
func (v NodeVec) Slice(lo, hi int) Vec { return v[lo:hi] }
func (v NodeVec) New(n int) Builder    { b := make(NodeVec, 0, n); return &nodeBuilder{b} }

type nodeBuilder struct{ v NodeVec }

func (b *nodeBuilder) AppendItem(it Item) { b.v = append(b.v, it.N) }
func (b *nodeBuilder) AppendFrom(src Vec, i int) {
	if s, ok := src.(NodeVec); ok {
		b.v = append(b.v, s[i])
		return
	}
	b.v = append(b.v, src.ItemAt(i).N)
}
func (b *nodeBuilder) Build() Vec { return b.v }

// ItemVec is the polymorphic item column of the sequence encoding
// (Figure 2 in the paper).
type ItemVec []Item

func (v ItemVec) Len() int          { return len(v) }
func (v ItemVec) Type() ColType     { return TItem }
func (v ItemVec) ItemAt(i int) Item { return v[i] }
func (v ItemVec) Gather(idx []int32) Vec {
	out := make(ItemVec, len(idx))
	for j, i := range idx {
		out[j] = v[i]
	}
	return out
}
func (v ItemVec) Slice(lo, hi int) Vec { return v[lo:hi] }
func (v ItemVec) New(n int) Builder    { b := make(ItemVec, 0, n); return &itemBuilder{b} }

type itemBuilder struct{ v ItemVec }

func (b *itemBuilder) AppendItem(it Item)        { b.v = append(b.v, it) }
func (b *itemBuilder) AppendFrom(src Vec, i int) { b.v = append(b.v, src.ItemAt(i)) }
func (b *itemBuilder) Build() Vec                { return b.v }

// NewVec returns an empty builder for the given physical type.
func NewVec(t ColType, n int) Builder {
	switch t {
	case TInt:
		return IntVec(nil).New(n)
	case TFloat:
		return FloatVec(nil).New(n)
	case TStr:
		return StrVec(nil).New(n)
	case TBool:
		return BoolVec(nil).New(n)
	case TNode:
		return NodeVec(nil).New(n)
	default:
		return ItemVec(nil).New(n)
	}
}

// ConstInt returns an integer vector of n copies of v — the paper's
// constant iter column for top-level scope s0 is built this way.
func ConstInt(v int64, n int) IntVec {
	out := make(IntVec, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Ramp returns the dense sequence base, base+1, ... of length n. MonetDB
// realizes these as virtual (void) columns; materializing keeps the engine
// simple while the optimizer still recognizes ramp-ness via properties.
func Ramp(base int64, n int) IntVec {
	out := make(IntVec, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
