package bat

import (
	"sync"
	"sync/atomic"
)

// View is a late-materialized relation: a base Table plus an optional
// selection vector of base-row indices. It is the unit of exchange between
// physical operators — pipeline operators (σ, π, ⋉, \) narrow the
// selection or the column set without copying any row data, and only
// pipeline breakers (join outputs, δ, ϱ, ∪, the plan root) pay for a
// Gather. A nil selection means "all rows of the base, in base order".
//
// Views are shared between the consumers of a plan-DAG node, possibly
// across scheduler workers; Materialize is concurrency-safe and performs
// the gather exactly once.
type View struct {
	base *Table
	sel  []int32 // nil = identity

	once  sync.Once
	mat   *Table
	madeM atomic.Bool
}

// ViewOf wraps a whole table as a view; materialization is free.
func ViewOf(t *Table) *View {
	v := &View{base: t, mat: t}
	v.madeM.Store(true)
	return v
}

// NewView builds a view of the given base rows, in sel order. The indices
// must be valid rows of t; callers building selections from filters keep
// them ascending, which preserves any sortedness property of the base.
func NewView(t *Table, sel []int32) *View {
	return &View{base: t, sel: sel}
}

// Rows returns the number of selected rows.
func (v *View) Rows() int {
	if v.sel == nil {
		return v.base.Rows()
	}
	return len(v.sel)
}

// Base returns the underlying table. Kernels combine it with Sel to read
// rows without materializing.
func (v *View) Base() *Table { return v.base }

// Sel returns the selection vector (nil = all base rows). Callers must not
// mutate it.
func (v *View) Sel() []int32 { return v.sel }

// Index maps a view row to its base row.
func (v *View) Index(i int) int {
	if v.sel == nil {
		return i
	}
	return int(v.sel[i])
}

// Materialized reports whether the gather has already happened (or was
// never needed). Used by the executor's rows-materialized accounting.
func (v *View) Materialized() bool { return v.madeM.Load() }

// Materialize gathers the selected rows into a standalone table, exactly
// once; concurrent callers share the result. Identity views return the
// base without copying.
func (v *View) Materialize() *Table {
	v.once.Do(func() {
		if v.mat == nil {
			if v.sel == nil {
				v.mat = v.base
			} else {
				v.mat = v.base.Gather(v.sel)
			}
		}
		v.madeM.Store(true)
	})
	return v.mat
}

// Project returns a view over the projected base columns (zero row
// copies — Table.Project shares column vectors), keeping the selection.
func (v *View) Project(spec ...string) (*View, error) {
	p, err := v.base.Project(spec...)
	if err != nil {
		return nil, err
	}
	return NewView(p, v.sel), nil
}

// Range is a half-open run [Lo, Hi) of view rows — the unit of
// morsel-driven intra-operator parallelism. A Range addresses positions
// in the view (selection order), not base rows; kernels map through
// Index/Sel as usual.
type Range struct {
	Lo, Hi int
}

// Len returns the number of rows in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// SplitRows carves [0, n) into contiguous ranges of at most size rows
// each, in order; the last range carries the remainder. n <= 0 yields no
// ranges, size <= 0 yields a single range covering everything.
func SplitRows(n, size int) []Range {
	if n <= 0 {
		return nil
	}
	if size <= 0 || size >= n {
		return []Range{{0, n}}
	}
	out := make([]Range, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Range{lo, hi})
	}
	return out
}

// SplitRanges carves the view's selected rows into morsels of at most
// size rows. The concatenation of the ranges, in order, is exactly
// [0, v.Rows()) — a kernel that processes each morsel independently and
// stitches the per-morsel outputs in range order reproduces the
// sequential scan byte for byte.
func (v *View) SplitRanges(size int) []Range {
	return SplitRows(v.Rows(), size)
}
