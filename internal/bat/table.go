package bat

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a relation: an ordered list of named column vectors of equal
// length. Row order is significant — the loop-lifting encoding relies on
// tables being materialized in (iter, pos) order, and the optimizer
// reasons about that order explicitly.
type Table struct {
	names []string
	cols  []Vec
	n     int
}

// NewTable builds a table from alternating name/vector pairs.
func NewTable(pairs ...any) (*Table, error) {
	if len(pairs)%2 != 0 {
		return nil, fmt.Errorf("NewTable: odd argument count")
	}
	t := &Table{}
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			return nil, fmt.Errorf("NewTable: argument %d is not a column name", i)
		}
		vec, ok := pairs[i+1].(Vec)
		if !ok {
			return nil, fmt.Errorf("NewTable: column %q is not a Vec", name)
		}
		if err := t.AddCol(name, vec); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustTable is NewTable that panics on malformed construction; intended for
// tests and literal plans only.
func MustTable(pairs ...any) *Table {
	t, err := NewTable(pairs...)
	if err != nil {
		panic(err)
	}
	return t
}

// AddCol appends a column. All columns must share the same length.
func (t *Table) AddCol(name string, v Vec) error {
	if len(t.cols) > 0 && v.Len() != t.n {
		return fmt.Errorf("column %q has %d rows, table has %d", name, v.Len(), t.n)
	}
	if t.HasCol(name) {
		return fmt.Errorf("duplicate column %q", name)
	}
	if len(t.cols) == 0 {
		t.n = v.Len()
	}
	t.names = append(t.names, name)
	t.cols = append(t.cols, v)
	return nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.n }

// Cols returns the column names in schema order.
func (t *Table) Cols() []string { return append([]string(nil), t.names...) }

// HasCol reports whether the table has a column with the given name.
func (t *Table) HasCol(name string) bool {
	for _, n := range t.names {
		if n == name {
			return true
		}
	}
	return false
}

// Col returns the named column vector.
func (t *Table) Col(name string) (Vec, error) {
	for i, n := range t.names {
		if n == name {
			return t.cols[i], nil
		}
	}
	return nil, fmt.Errorf("unknown column %q (have %s)", name, strings.Join(t.names, "|"))
}

// MustCol is Col that panics; for engine-internal access where the plan
// validator has already guaranteed the schema.
func (t *Table) MustCol(name string) Vec {
	v, err := t.Col(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Ints returns the named column as an IntVec, failing if it has another
// physical type.
func (t *Table) Ints(name string) (IntVec, error) {
	v, err := t.Col(name)
	if err != nil {
		return nil, err
	}
	iv, ok := v.(IntVec)
	if !ok {
		return nil, fmt.Errorf("column %q is %s, want int", name, v.Type())
	}
	return iv, nil
}

// Gather builds a new table containing the given rows of t, in idx order.
func (t *Table) Gather(idx []int32) *Table {
	out := &Table{n: len(idx)}
	out.names = append([]string(nil), t.names...)
	out.cols = make([]Vec, len(t.cols))
	for i, c := range t.cols {
		out.cols[i] = c.Gather(idx)
	}
	return out
}

// Slice returns rows [lo, hi) of t without copying column data.
func (t *Table) Slice(lo, hi int) *Table {
	out := &Table{n: hi - lo}
	out.names = append([]string(nil), t.names...)
	out.cols = make([]Vec, len(t.cols))
	for i, c := range t.cols {
		out.cols[i] = c.Slice(lo, hi)
	}
	return out
}

// Project returns a table with the requested columns; spec entries are
// either "name" (keep) or "new:old" (rename old to new). A source column
// may appear several times — π in the paper's algebra duplicates columns
// freely and never eliminates duplicates.
func (t *Table) Project(spec ...string) (*Table, error) {
	out := &Table{n: t.n}
	for _, s := range spec {
		newName, oldName := s, s
		if i := strings.IndexByte(s, ':'); i >= 0 {
			newName, oldName = s[:i], s[i+1:]
		}
		v, err := t.Col(oldName)
		if err != nil {
			return nil, fmt.Errorf("project: %w", err)
		}
		if out.HasCol(newName) {
			return nil, fmt.Errorf("project: duplicate output column %q", newName)
		}
		out.names = append(out.names, newName)
		out.cols = append(out.cols, v)
	}
	return out, nil
}

// Row returns row i as items in schema order; primarily for tests and the
// plan tracer demo hook.
func (t *Table) Row(i int) []Item {
	out := make([]Item, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.ItemAt(i)
	}
	return out
}

// SortBy stably sorts the table by the named columns ascending and returns
// the permuted table. Node columns sort in document order; mixed item
// columns sort by kind then value, which is only used for duplicate
// grouping, never for user-visible ordering.
func (t *Table) SortBy(cols ...string) (*Table, error) {
	vecs := make([]Vec, len(cols))
	for i, c := range cols {
		v, err := t.Col(c)
		if err != nil {
			return nil, fmt.Errorf("sort: %w", err)
		}
		vecs[i] = v
	}
	idx := make([]int32, t.n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for _, v := range vecs {
			c := CompareTotal(v.ItemAt(int(ia)), v.ItemAt(int(ib)))
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return t.Gather(idx), nil
}

// CompareTotal imposes a total order over items: by kind class first, then
// value. Used for sorting and duplicate elimination, not for XQuery value
// comparison (see Compare).
func CompareTotal(a, b Item) int {
	ca, cb := kindClass(a.Kind), kindClass(b.Kind)
	if ca != cb {
		return int(ca) - int(cb)
	}
	switch ca {
	case 0: // numeric
		return cmpFloat(a.AsFloat(), b.AsFloat())
	case 1: // string-ish
		return strings.Compare(a.S, b.S)
	case 2: // bool
		return int(boolInt(a.B)) - int(boolInt(b.B))
	default: // node: document order
		if a.N.Frag != b.N.Frag {
			return int(a.N.Frag) - int(b.N.Frag)
		}
		return int(a.N.Pre) - int(b.N.Pre)
	}
}

func kindClass(k Kind) uint8 {
	switch k {
	case KInt, KFloat:
		return 0
	case KStr, KUntyped:
		return 1
	case KBool:
		return 2
	default:
		return 3
	}
}

func boolInt(b bool) int8 {
	if b {
		return 1
	}
	return 0
}

// String renders the table like the paper's figures (iter|pos|item boxes);
// for debugging and the demo hooks.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.names, "|"))
	sb.WriteByte('\n')
	limit := t.n
	const maxRows = 50
	truncated := false
	if limit > maxRows {
		limit, truncated = maxRows, true
	}
	for i := 0; i < limit; i++ {
		parts := make([]string, len(t.cols))
		for j, c := range t.cols {
			parts[j] = c.ItemAt(i).StringValue()
		}
		sb.WriteString(strings.Join(parts, "|"))
		sb.WriteByte('\n')
	}
	if truncated {
		fmt.Fprintf(&sb, "... (%d rows total)\n", t.n)
	}
	return sb.String()
}

// Empty returns a zero-row table with the same schema as t.
func (t *Table) Empty() *Table {
	return t.Slice(0, 0)
}
