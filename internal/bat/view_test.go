package bat

import (
	"sync"
	"testing"
)

func viewFixture() *Table {
	return MustTable(
		"iter", IntVec{1, 2, 3, 4},
		"item", StrVec{"a", "b", "c", "d"},
	)
}

func TestViewIdentity(t *testing.T) {
	base := viewFixture()
	v := NewView(base, nil)
	if v.Rows() != 4 || v.Index(2) != 2 {
		t.Fatalf("identity view rows=%d index(2)=%d", v.Rows(), v.Index(2))
	}
	if v.Materialized() {
		t.Error("unmaterialized view reports Materialized")
	}
	if got := v.Materialize(); got != base {
		t.Error("identity view must materialize to its base, no copy")
	}
	if !v.Materialized() {
		t.Error("Materialized must flip after Materialize")
	}
}

func TestViewSelection(t *testing.T) {
	base := viewFixture()
	v := NewView(base, []int32{3, 1})
	if v.Rows() != 2 || v.Index(0) != 3 || v.Index(1) != 1 {
		t.Fatalf("selection view rows=%d", v.Rows())
	}
	m := v.Materialize()
	if m.Rows() != 2 {
		t.Fatalf("materialized rows = %d", m.Rows())
	}
	if got := m.MustCol("item").ItemAt(0).S; got != "d" {
		t.Errorf("row 0 item = %q, want d", got)
	}
	if v.Materialize() != m {
		t.Error("Materialize must cache its result")
	}
	// An empty (but non-nil) selection is zero rows — nil means all rows.
	empty := NewView(base, []int32{})
	if empty.Rows() != 0 || empty.Materialize().Rows() != 0 {
		t.Error("empty selection must have zero rows")
	}
}

func TestViewOf(t *testing.T) {
	base := viewFixture()
	v := ViewOf(base)
	if !v.Materialized() || v.Materialize() != base || v.Rows() != 4 {
		t.Error("ViewOf must be a pre-materialized identity view")
	}
}

func TestViewProject(t *testing.T) {
	base := viewFixture()
	v := NewView(base, []int32{2, 0})
	p, err := v.Project("x:item")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows() != 2 {
		t.Fatalf("projected rows = %d", p.Rows())
	}
	m := p.Materialize()
	if got := m.MustCol("x").ItemAt(0).S; got != "c" {
		t.Errorf("projected row 0 = %q, want c", got)
	}
	if _, err := v.Project("missing"); err == nil {
		t.Error("projecting a missing column must fail")
	}
}

func TestSplitRanges(t *testing.T) {
	base := viewFixture()

	// Empty views (zero-row selection, and an empty base) split to nothing.
	if got := NewView(base, []int32{}).SplitRanges(2); got != nil {
		t.Errorf("empty selection: SplitRanges = %v, want nil", got)
	}
	if got := ViewOf(base.Empty()).SplitRanges(2); got != nil {
		t.Errorf("empty base: SplitRanges = %v, want nil", got)
	}

	// Dense (identity) view: ranges cover [0, Rows()) exactly.
	dense := NewView(base, nil)
	if got := dense.SplitRanges(3); len(got) != 2 ||
		got[0] != (Range{0, 3}) || got[1] != (Range{3, 4}) {
		t.Errorf("dense split(3) = %v", got)
	}

	// Selection view: ranges address view rows, remainder in the last.
	v := NewView(base, []int32{3, 1, 0})
	if got := v.SplitRanges(2); len(got) != 2 ||
		got[0] != (Range{0, 2}) || got[1] != (Range{2, 3}) {
		t.Errorf("selection split(2) = %v", got)
	}

	// Morsel size at least the row count: one range, no split.
	if got := v.SplitRanges(3); len(got) != 1 || got[0] != (Range{0, 3}) {
		t.Errorf("split(rows) = %v, want one full range", got)
	}
	if got := v.SplitRanges(100); len(got) != 1 || got[0] != (Range{0, 3}) {
		t.Errorf("split(100) = %v, want one full range", got)
	}

	// Non-positive morsel size degrades to a single covering range.
	if got := v.SplitRanges(0); len(got) != 1 || got[0] != (Range{0, 3}) {
		t.Errorf("split(0) = %v, want one full range", got)
	}

	// Exact multiple: no remainder morsel.
	if got := dense.SplitRanges(2); len(got) != 2 ||
		got[0] != (Range{0, 2}) || got[1] != (Range{2, 4}) {
		t.Errorf("dense split(2) = %v", got)
	}

	// The concatenation of ranges must re-cover every view row in order.
	for _, size := range []int{1, 2, 3, 4, 5} {
		next := 0
		for _, r := range dense.SplitRanges(size) {
			if r.Lo != next || r.Hi <= r.Lo || r.Len() > size {
				t.Fatalf("split(%d): bad range %v at offset %d", size, r, next)
			}
			next = r.Hi
		}
		if next != dense.Rows() {
			t.Fatalf("split(%d): ranges cover %d of %d rows", size, next, dense.Rows())
		}
	}
}

func TestViewMaterializeConcurrent(t *testing.T) {
	base := viewFixture()
	v := NewView(base, []int32{0, 2})
	var wg sync.WaitGroup
	got := make([]*Table, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = v.Materialize()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Materialize produced distinct tables")
		}
	}
}
