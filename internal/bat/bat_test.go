package bat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestItemConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		it   Item
		kind Kind
		str  string
	}{
		{Int(42), KInt, "42"},
		{Float(2.5), KFloat, "2.5"},
		{Float(3), KFloat, "3"},
		{Str("hi"), KStr, "hi"},
		{Bool(true), KBool, "true"},
		{Bool(false), KBool, "false"},
		{Untyped("7"), KUntyped, "7"},
		{Node(NodeRef{1, 9}), KNode, "#1.9"},
	}
	for _, c := range cases {
		if c.it.Kind != c.kind {
			t.Errorf("kind of %v: got %v want %v", c.it, c.it.Kind, c.kind)
		}
		if got := c.it.StringValue(); got != c.str {
			t.Errorf("StringValue(%v) = %q, want %q", c.it, got, c.str)
		}
	}
}

func TestItemAsFloat(t *testing.T) {
	if Int(3).AsFloat() != 3 {
		t.Error("Int(3).AsFloat() != 3")
	}
	if Untyped(" 4.5 ").AsFloat() != 4.5 {
		t.Error("untyped ' 4.5 ' should parse to 4.5")
	}
	if !math.IsNaN(Str("abc").AsFloat()) {
		t.Error("non-numeric string should convert to NaN")
	}
	if Bool(true).AsFloat() != 1 {
		t.Error("true should convert to 1")
	}
}

func TestItemAsInt(t *testing.T) {
	for _, c := range []struct {
		it   Item
		want int64
	}{
		{Int(7), 7}, {Float(7.9), 7}, {Untyped("12"), 12}, {Str("3.5"), 3},
	} {
		got, err := c.it.AsInt()
		if err != nil || got != c.want {
			t.Errorf("AsInt(%v) = %d, %v; want %d", c.it, got, err, c.want)
		}
	}
	if _, err := Str("xyz").AsInt(); err == nil {
		t.Error("AsInt on non-numeric string should error")
	}
}

func TestCompareNumericPromotion(t *testing.T) {
	// 5 eq 5.0 across int/double.
	if c, err := Compare(Int(5), Float(5)); err != nil || c != 0 {
		t.Errorf("Compare(5, 5.0) = %d, %v", c, err)
	}
	// Untyped vs numeric promotes to double (the XMark price comparisons).
	if c, err := Compare(Untyped("40.5"), Int(40)); err != nil || c != 1 {
		t.Errorf("Compare(uA 40.5, 40) = %d, %v", c, err)
	}
	// Untyped vs untyped with both numeric compares numerically.
	if c, err := Compare(Untyped("9"), Untyped("10")); err != nil || c != -1 {
		t.Errorf("Compare(uA 9, uA 10) = %d, %v; want -1 (numeric)", c, err)
	}
	// Untyped vs string compares as strings.
	if c, err := Compare(Untyped("9"), Str("10")); err != nil || c != 1 {
		t.Errorf("Compare(uA 9, '10') = %d, %v; want 1 (string order)", c, err)
	}
	if _, err := Compare(Str("x"), Int(1)); err == nil {
		t.Error("string vs int must be incomparable")
	}
	if _, err := Compare(Node(NodeRef{}), Int(1)); err == nil {
		t.Error("node operands must be rejected")
	}
}

func TestKeyUnifiesNumerics(t *testing.T) {
	if Int(5).Key() != Float(5).Key() {
		t.Error("5 and 5.0 must share a hash key")
	}
	if Int(5).Key() == Str("5").Key() {
		t.Error("5 and '5' must not share a hash key")
	}
	if Node(NodeRef{1, 2}).Key() == Node(NodeRef{2, 1}).Key() {
		t.Error("distinct nodes must not collide structurally")
	}
	if Untyped("a").Key() != Str("a").Key() {
		t.Error("untyped and string of same text should join")
	}
}

func TestNodeRefOrder(t *testing.T) {
	a, b := NodeRef{0, 5}, NodeRef{1, 0}
	if !a.Less(b) || b.Less(a) {
		t.Error("fragment order must dominate")
	}
	c := NodeRef{0, 6}
	if !a.Less(c) {
		t.Error("pre order within fragment")
	}
}

func TestVecGatherSliceRoundTrip(t *testing.T) {
	vecs := []Vec{
		IntVec{10, 20, 30, 40},
		FloatVec{1.5, 2.5, 3.5, 4.5},
		StrVec{"a", "b", "c", "d"},
		BoolVec{true, false, true, false},
		NodeVec{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
		ItemVec{Int(1), Str("x"), Bool(true), Node(NodeRef{2, 3})},
	}
	for _, v := range vecs {
		g := v.Gather([]int32{3, 1})
		if g.Len() != 2 {
			t.Fatalf("%s: gather len %d", v.Type(), g.Len())
		}
		if !DeepEqual(g.ItemAt(0), v.ItemAt(3)) || !DeepEqual(g.ItemAt(1), v.ItemAt(1)) {
			t.Errorf("%s: gather content mismatch", v.Type())
		}
		s := v.Slice(1, 3)
		if s.Len() != 2 || !DeepEqual(s.ItemAt(0), v.ItemAt(1)) {
			t.Errorf("%s: slice content mismatch", v.Type())
		}
		b := v.New(2)
		b.AppendFrom(v, 2)
		b.AppendItem(v.ItemAt(0))
		built := b.Build()
		if built.Len() != 2 || !DeepEqual(built.ItemAt(0), v.ItemAt(2)) || !DeepEqual(built.ItemAt(1), v.ItemAt(0)) {
			t.Errorf("%s: builder mismatch", v.Type())
		}
	}
}

func TestBuilderCrossTypeAppendFrom(t *testing.T) {
	// Builders must accept rows from item-typed sources.
	src := ItemVec{Int(7)}
	b := IntVec(nil).New(1)
	b.AppendFrom(src, 0)
	if got := b.Build().(IntVec)[0]; got != 7 {
		t.Errorf("cross-type AppendFrom: got %d", got)
	}
}

func TestTableBasics(t *testing.T) {
	tb := MustTable("iter", IntVec{1, 1, 2}, "pos", IntVec{1, 2, 1}, "item", ItemVec{Int(10), Int(20), Int(30)})
	if tb.Rows() != 3 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	if !tb.HasCol("pos") || tb.HasCol("nope") {
		t.Error("HasCol misbehaves")
	}
	if _, err := tb.Col("nope"); err == nil {
		t.Error("Col on missing column should error")
	}
	iv, err := tb.Ints("iter")
	if err != nil || iv[2] != 2 {
		t.Errorf("Ints: %v %v", iv, err)
	}
	if _, err := tb.Ints("item"); err == nil {
		t.Error("Ints on item column should error")
	}
}

func TestTableAddColValidation(t *testing.T) {
	tb := MustTable("a", IntVec{1, 2})
	if err := tb.AddCol("b", IntVec{1}); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if err := tb.AddCol("a", IntVec{3, 4}); err == nil {
		t.Error("duplicate column must be rejected")
	}
	if _, err := NewTable("x"); err == nil {
		t.Error("odd pair count must be rejected")
	}
	if _, err := NewTable(1, IntVec{1}); err == nil {
		t.Error("non-string name must be rejected")
	}
	if _, err := NewTable("x", "not a vec"); err == nil {
		t.Error("non-vec column must be rejected")
	}
}

func TestTableProjectRename(t *testing.T) {
	tb := MustTable("iter", IntVec{1, 2}, "item", ItemVec{Str("a"), Str("b")})
	p, err := tb.Project("outer:iter", "item", "copy:item")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cols(); len(got) != 3 || got[0] != "outer" || got[2] != "copy" {
		t.Errorf("cols = %v", got)
	}
	if p.MustCol("copy").ItemAt(1).S != "b" {
		t.Error("rename duplicated column content wrong")
	}
	if _, err := tb.Project("x:nope"); err == nil {
		t.Error("projecting a missing column should error")
	}
	if _, err := tb.Project("iter", "iter"); err == nil {
		t.Error("duplicate output column should error")
	}
}

func TestTableGatherAndSlice(t *testing.T) {
	tb := MustTable("a", IntVec{1, 2, 3, 4}, "b", StrVec{"w", "x", "y", "z"})
	g := tb.Gather([]int32{2, 0})
	if g.Rows() != 2 || g.MustCol("b").ItemAt(0).S != "y" {
		t.Error("gather mismatch")
	}
	s := tb.Slice(1, 3)
	if s.Rows() != 2 || s.MustCol("a").(IntVec)[0] != 2 {
		t.Error("slice mismatch")
	}
	if e := tb.Empty(); e.Rows() != 0 || len(e.Cols()) != 2 {
		t.Error("empty mismatch")
	}
}

func TestTableSortBy(t *testing.T) {
	tb := MustTable(
		"iter", IntVec{2, 1, 2, 1},
		"pos", IntVec{1, 2, 2, 1},
		"item", ItemVec{Str("c"), Str("b"), Str("d"), Str("a")},
	)
	s, err := tb.SortBy("iter", "pos")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	for i, w := range want {
		if got := s.MustCol("item").ItemAt(i).S; got != w {
			t.Errorf("row %d: got %q want %q", i, got, w)
		}
	}
	if _, err := tb.SortBy("nope"); err == nil {
		t.Error("sort by missing column should error")
	}
}

func TestSortByIsStable(t *testing.T) {
	tb := MustTable("k", IntVec{1, 1, 1}, "v", StrVec{"first", "second", "third"})
	s, err := tb.SortBy("k")
	if err != nil {
		t.Fatal(err)
	}
	if s.MustCol("v").ItemAt(0).S != "first" || s.MustCol("v").ItemAt(2).S != "third" {
		t.Error("equal keys must keep input order")
	}
}

func TestCompareTotalNodesDocumentOrder(t *testing.T) {
	a, b := Node(NodeRef{0, 3}), Node(NodeRef{1, 0})
	if CompareTotal(a, b) >= 0 {
		t.Error("fragment 0 before fragment 1")
	}
	if CompareTotal(Node(NodeRef{0, 1}), Node(NodeRef{0, 2})) >= 0 {
		t.Error("pre order within fragment")
	}
}

func TestRampAndConstInt(t *testing.T) {
	r := Ramp(5, 4)
	for i, v := range r {
		if v != int64(5+i) {
			t.Fatalf("ramp[%d] = %d", i, v)
		}
	}
	c := ConstInt(9, 3)
	for _, v := range c {
		if v != 9 {
			t.Fatal("const mismatch")
		}
	}
}

// Property: total comparison is antisymmetric and consistent for random
// numeric items, and Key equality coincides with CompareTotal == 0 for
// numerics.
func TestQuickCompareTotalConsistency(t *testing.T) {
	f := func(a, b int32, fa, fb float64) bool {
		items := []Item{Int(int64(a)), Int(int64(b)), Float(fa), Float(fb)}
		for _, x := range items {
			for _, y := range items {
				cxy, cyx := CompareTotal(x, y), CompareTotal(y, x)
				if sign(cxy) != -sign(cyx) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// Property: Gather then ItemAt equals direct ItemAt for random int vectors.
func TestQuickGatherFidelity(t *testing.T) {
	f := func(vals []int64, picks []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		v := IntVec(vals)
		idx := make([]int32, len(picks))
		for i, p := range picks {
			idx[i] = int32(int(p) % len(vals))
		}
		g := v.Gather(idx)
		for i, ix := range idx {
			if g.ItemAt(i).I != vals[ix] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableStringTruncates(t *testing.T) {
	big := make(IntVec, 100)
	tb := MustTable("x", big)
	s := tb.String()
	if len(s) == 0 || !contains(s, "100 rows total") {
		t.Errorf("String should mention truncation, got %q", s[:min(len(s), 80)])
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
