// Package bat implements the columnar storage substrate of the Pathfinder
// reproduction: typed column vectors and tables of named columns, in the
// spirit of MonetDB's Binary Association Tables (BATs).
//
// The relational algebra produced by the loop-lifting compiler
// (internal/core) is evaluated over bat.Table values by internal/engine.
// Sequence encodings follow the paper: an iter|pos|item schema where iter
// and pos are dense integer columns and item is a polymorphic column of
// XQuery items.
package bat

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the runtime type of an Item. It mirrors the dynamic
// types of the XQuery data model subset supported by Pathfinder:
// xs:integer, xs:double, xs:string, xs:boolean, xs:untypedAtomic, and
// nodes (identified by fragment and preorder rank).
type Kind uint8

// Item kinds.
const (
	KInt Kind = iota
	KFloat
	KStr
	KBool
	KUntyped // xs:untypedAtomic: carries a string payload, compares numerically against numbers
	KNode
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "dbl"
	case KStr:
		return "str"
	case KBool:
		return "bool"
	case KUntyped:
		return "uA"
	case KNode:
		return "node"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NodeRef identifies a node: the fragment it lives in (loaded documents and
// constructor results each occupy one fragment) and its preorder rank
// within that fragment. Document order is (Frag, Pre) lexicographic.
type NodeRef struct {
	Frag int32
	Pre  int32
}

func (n NodeRef) String() string { return fmt.Sprintf("#%d.%d", n.Frag, n.Pre) }

// Less reports whether n precedes m in document order.
func (n NodeRef) Less(m NodeRef) bool {
	if n.Frag != m.Frag {
		return n.Frag < m.Frag
	}
	return n.Pre < m.Pre
}

// Item is a single XQuery item: one atomic value or one node reference.
// It is a tagged union; the fields used depend on Kind:
//
//	KInt      → I
//	KFloat    → F
//	KStr      → S
//	KBool     → B
//	KUntyped  → S
//	KNode     → N
type Item struct {
	Kind Kind
	I    int64
	F    float64
	B    bool
	S    string
	N    NodeRef
}

// Convenience constructors.

func Int(v int64) Item      { return Item{Kind: KInt, I: v} }
func Float(v float64) Item  { return Item{Kind: KFloat, F: v} }
func Str(v string) Item     { return Item{Kind: KStr, S: v} }
func Bool(v bool) Item      { return Item{Kind: KBool, B: v} }
func Untyped(v string) Item { return Item{Kind: KUntyped, S: v} }
func Node(n NodeRef) Item   { return Item{Kind: KNode, N: n} }
func True() Item            { return Bool(true) }
func False() Item           { return Bool(false) }

// IsNumeric reports whether the item is xs:integer or xs:double.
func (it Item) IsNumeric() bool { return it.Kind == KInt || it.Kind == KFloat }

// AsFloat converts a numeric or untyped item to float64. Untyped atomics
// are cast following XQuery's number() semantics; a failed cast yields NaN.
func (it Item) AsFloat() float64 {
	switch it.Kind {
	case KInt:
		return float64(it.I)
	case KFloat:
		return it.F
	case KBool:
		if it.B {
			return 1
		}
		return 0
	case KStr, KUntyped:
		f, err := strconv.ParseFloat(strings.TrimSpace(it.S), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
	return math.NaN()
}

// AsInt converts the item to an int64, truncating doubles.
func (it Item) AsInt() (int64, error) {
	switch it.Kind {
	case KInt:
		return it.I, nil
	case KFloat:
		return int64(it.F), nil
	case KUntyped, KStr:
		s := strings.TrimSpace(it.S)
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("cannot cast %q to xs:integer", it.S)
		}
		return int64(f), nil
	}
	return 0, fmt.Errorf("cannot cast %s to xs:integer", it.Kind)
}

// StringValue renders atomic items the way fn:string does. Node items
// cannot be stringified here (their string value lives in the document
// store); callers must atomize nodes before calling StringValue.
func (it Item) StringValue() string {
	switch it.Kind {
	case KInt:
		return strconv.FormatInt(it.I, 10)
	case KFloat:
		return formatFloat(it.F)
	case KStr, KUntyped:
		return it.S
	case KBool:
		if it.B {
			return "true"
		}
		return "false"
	case KNode:
		return it.N.String()
	}
	return ""
}

// formatFloat renders a double using XQuery's canonical-ish form: integral
// doubles print without a trailing ".0" fraction marker mess, matching what
// the paper's serializer would emit for computed numeric content.
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Key is a comparable projection of an Item, usable as a Go map key for
// hash joins and duplicate elimination. Numeric items of equal value map
// to the same key (5 and 5.0e0 join), matching XQuery's eq semantics.
type Key struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Key returns the hash key of the item.
func (it Item) Key() Key {
	switch it.Kind {
	case KInt:
		// Normalize integral values across int/float so eq-joins across
		// numeric types meet in the same hash bucket.
		return Key{Kind: KFloat, F: float64(it.I)}
	case KFloat:
		return Key{Kind: KFloat, F: it.F}
	case KStr, KUntyped:
		return Key{Kind: KStr, S: it.S}
	case KBool:
		if it.B {
			return Key{Kind: KBool, I: 1}
		}
		return Key{Kind: KBool}
	case KNode:
		return Key{Kind: KNode, I: int64(it.N.Frag)<<32 | int64(uint32(it.N.Pre))}
	}
	return Key{Kind: it.Kind}
}

// Compare performs an XQuery value comparison between two atomic items.
// It returns -1, 0, or +1, and an error when the items are incomparable.
// Untyped atomics are promoted to double when compared against numbers and
// compared as strings against strings, per the XQuery general-comparison
// rules the paper's dialect relies on.
func Compare(a, b Item) (int, error) {
	if a.Kind == KNode || b.Kind == KNode {
		return 0, fmt.Errorf("value comparison on node item (atomize first)")
	}
	// Promote untyped against numeric.
	an, bn := a.IsNumeric(), b.IsNumeric()
	switch {
	case an && bn, an && b.Kind == KUntyped, bn && a.Kind == KUntyped,
		a.Kind == KUntyped && b.Kind == KUntyped && bothNumeric(a.S, b.S):
		af, bf := a.AsFloat(), b.AsFloat()
		if math.IsNaN(af) || math.IsNaN(bf) {
			return 0, fmt.Errorf("cannot compare %q numerically", pickNaN(a, b))
		}
		return cmpFloat(af, bf), nil
	case a.Kind == KBool || b.Kind == KBool:
		if a.Kind != KBool || b.Kind != KBool {
			return 0, fmt.Errorf("cannot compare %s with %s", a.Kind, b.Kind)
		}
		return cmpFloat(a.AsFloat(), b.AsFloat()), nil
	default:
		// String-ish comparison; both operands must be strings or untyped.
		if (a.Kind == KStr || a.Kind == KUntyped) && (b.Kind == KStr || b.Kind == KUntyped) {
			return strings.Compare(a.StringValue(), b.StringValue()), nil
		}
		return 0, fmt.Errorf("cannot compare %s with %s", a.Kind, b.Kind)
	}
}

func bothNumeric(a, b string) bool {
	_, e1 := strconv.ParseFloat(strings.TrimSpace(a), 64)
	_, e2 := strconv.ParseFloat(strings.TrimSpace(b), 64)
	return e1 == nil && e2 == nil
}

func pickNaN(a, b Item) string {
	if math.IsNaN(a.AsFloat()) {
		return a.StringValue()
	}
	return b.StringValue()
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// DeepEqual reports exact equality of two items including node identity.
func DeepEqual(a, b Item) bool { return a.Key() == b.Key() }
