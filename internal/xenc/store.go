package xenc

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"pathfinder/internal/bat"
)

// Store holds every fragment known to a query session: loaded documents
// plus fragments produced by node constructors. String properties are
// interned in store-wide pools so surrogates are comparable across
// fragments.
//
// A Store is safe for concurrent use: fragments are immutable once
// registered, the fragment registry and document table are guarded by mu,
// and the pools carry their own locks. Constructor operators running on
// parallel scheduler workers therefore append fragments while other
// workers resolve nodes.
type Store struct {
	mu    sync.RWMutex
	frags []*Fragment
	docs  map[string]int32

	tags      *pool // element tag names
	attrNames *pool // attribute names
	texts     *pool // text node content (duplicate-free, per §3.1)
	attrVals  *pool // attribute values (duplicate-free)
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		docs:      make(map[string]int32),
		tags:      newPool(),
		attrNames: newPool(),
		texts:     newPool(),
		attrVals:  newPool(),
	}
}

// Frag returns the fragment with the given id.
func (s *Store) Frag(id int32) *Fragment {
	s.mu.RLock()
	f := s.frags[id]
	s.mu.RUnlock()
	return f
}

// FragCount returns the number of fragments in the store.
func (s *Store) FragCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.frags)
}

// addFrag registers a fragment and returns its id.
func (s *Store) addFrag(f *Fragment) int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := int32(len(s.frags))
	s.frags = append(s.frags, f)
	return id
}

// registerDoc registers a loaded document fragment under its URI,
// atomically with the duplicate check.
func (s *Store) registerDoc(uri string, f *Fragment) (int32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[uri]; ok {
		return 0, fmt.Errorf("document %q already loaded", uri)
	}
	id := int32(len(s.frags))
	s.frags = append(s.frags, f)
	s.docs[uri] = id
	return id, nil
}

// Doc returns the document node of a previously loaded document.
func (s *Store) Doc(uri string) (bat.NodeRef, error) {
	s.mu.RLock()
	id, ok := s.docs[uri]
	s.mu.RUnlock()
	if !ok {
		return bat.NodeRef{}, fmt.Errorf("fn:doc: document %q not loaded", uri)
	}
	return bat.NodeRef{Frag: id, Pre: 0}, nil
}

// DocURIs lists loaded documents, for the demo shell.
func (s *Store) DocURIs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for u := range s.docs {
		out = append(out, u)
	}
	return out
}

// DocsInOrder lists loaded documents in load order (ascending fragment
// id) together with their document-node refs — the shard manifest order
// fn:collection expands a multi-document collection in.
func (s *Store) DocsInOrder() []DocEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]DocEntry, 0, len(s.docs))
	for u, id := range s.docs {
		out = append(out, DocEntry{URI: u, Root: bat.NodeRef{Frag: id, Pre: 0}})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Root.Frag < out[j].Root.Frag })
	return out
}

// DocEntry is one loaded document: its URI and its document node.
type DocEntry struct {
	URI  string
	Root bat.NodeRef
}

// ReplaceDocument rebinds uri to a freshly shredded copy of the document,
// whether or not the name is already taken — the explicit-replace
// counterpart of LoadDocument's duplicate error. The old fragment stays in
// the store (live node refs keep resolving) but is no longer reachable
// through the document registry.
func (s *Store) ReplaceDocument(uri string, r io.Reader) (bat.NodeRef, error) {
	f, err := s.shred(uri, r)
	if err != nil {
		return bat.NodeRef{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := int32(len(s.frags))
	s.frags = append(s.frags, f)
	s.docs[uri] = id
	return bat.NodeRef{Frag: id, Pre: 0}, nil
}

// Surrogate lookups used by the compiler to turn name tests into integer
// comparisons. A return of -1 means "never matches".

// TagID returns the surrogate of an element tag name, -1 if unknown.
func (s *Store) TagID(tag string) int32 { return s.tags.Lookup(tag) }

// AttrNameID returns the surrogate of an attribute name, -1 if unknown.
func (s *Store) AttrNameID(name string) int32 { return s.attrNames.Lookup(name) }

// TagName resolves a tag surrogate.
func (s *Store) TagName(id int32) string { return s.tags.Get(id) }

// AttrNameOf resolves an attribute-name surrogate.
func (s *Store) AttrNameOf(id int32) string { return s.attrNames.Get(id) }

// Text resolves a text surrogate.
func (s *Store) Text(id int32) string { return s.texts.Get(id) }

// AttrVal resolves an attribute-value surrogate.
func (s *Store) AttrVal(id int32) string { return s.attrVals.Get(id) }

// Node accessors -------------------------------------------------------------

// KindOf returns the kind of the referenced node.
func (s *Store) KindOf(n bat.NodeRef) NodeKind { return s.Frag(n.Frag).KindOf(n.Pre) }

// NameOf returns the node's name: tag for elements, attribute name for
// attribute nodes, "" otherwise.
func (s *Store) NameOf(n bat.NodeRef) string {
	f := s.Frag(n.Frag)
	if n.Pre >= AttrBase {
		return s.attrNames.Get(f.AttrName[n.Pre-AttrBase])
	}
	if f.Kind[n.Pre] == KindElem {
		return s.tags.Get(f.Prop[n.Pre])
	}
	return ""
}

// Parent returns the parent node of n and whether one exists. The parent
// of an attribute node is its owner element.
func (s *Store) Parent(n bat.NodeRef) (bat.NodeRef, bool) {
	f := s.Frag(n.Frag)
	if n.Pre >= AttrBase {
		return bat.NodeRef{Frag: n.Frag, Pre: f.AttrOwner[n.Pre-AttrBase]}, true
	}
	p := f.Parent[n.Pre]
	if p < 0 {
		return bat.NodeRef{}, false
	}
	return bat.NodeRef{Frag: n.Frag, Pre: p}, true
}

// Root returns the root of n's tree (fn:root semantics).
func (s *Store) Root(n bat.NodeRef) bat.NodeRef {
	f := s.Frag(n.Frag)
	pre := n.Pre
	if pre >= AttrBase {
		pre = f.AttrOwner[pre-AttrBase]
	}
	return bat.NodeRef{Frag: n.Frag, Pre: f.RootOf(pre)}
}

// StringValue computes the XPath string value: concatenated descendant
// text for documents and elements, content for text nodes, value for
// attributes.
func (s *Store) StringValue(n bat.NodeRef) string {
	f := s.Frag(n.Frag)
	if n.Pre >= AttrBase {
		return s.attrVals.Get(f.AttrVal[n.Pre-AttrBase])
	}
	switch f.Kind[n.Pre] {
	case KindText, KindComment:
		return s.texts.Get(f.Prop[n.Pre])
	case KindElem, KindDoc:
		var sb strings.Builder
		end := n.Pre + f.Size[n.Pre]
		for p := n.Pre + 1; p <= end; p++ {
			if f.Kind[p] == KindText {
				sb.WriteString(s.texts.Get(f.Prop[p]))
			}
		}
		return sb.String()
	}
	return ""
}

// Atomize returns the typed value of a node as an item: an untyped atomic
// carrying the string value, per the XQuery data model for untyped trees.
func (s *Store) Atomize(n bat.NodeRef) bat.Item {
	return bat.Untyped(s.StringValue(n))
}

// AttrValueOf returns the value of the named attribute on element n, with
// ok=false when the attribute is absent.
func (s *Store) AttrValueOf(n bat.NodeRef, name string) (string, bool) {
	f := s.Frag(n.Frag)
	if n.Pre >= AttrBase || f.Kind[n.Pre] != KindElem {
		return "", false
	}
	nid := s.attrNames.Lookup(name)
	if nid < 0 {
		return "", false
	}
	lo, hi := f.Attrs(n.Pre)
	for i := lo; i < hi; i++ {
		if f.AttrName[i] == nid {
			return s.attrVals.Get(f.AttrVal[i]), true
		}
	}
	return "", false
}

// Persistence ------------------------------------------------------------------

// snapshot is the gob-encoded on-disk form of a store — the moral
// equivalent of MonetDB's persisted BATs: load once, shred never again.
type snapshot struct {
	Frags []fragSnapshot
	Docs  map[string]int32
	Pools [4][]string // tags, attrNames, texts, attrVals
}

type fragSnapshot struct {
	Name      string
	Size      []int32
	Level     []int32
	Kind      []NodeKind
	Prop      []int32
	Parent    []int32
	AttrOwner []int32
	AttrName  []int32
	AttrVal   []int32
}

// WriteSnapshot serializes the whole store (fragments, document registry,
// surrogate pools).
func (s *Store) WriteSnapshot(w io.Writer) error {
	snap := snapshot{
		Pools: [4][]string{s.tags.snapshot(), s.attrNames.snapshot(), s.texts.snapshot(), s.attrVals.snapshot()},
	}
	s.mu.RLock()
	snap.Docs = make(map[string]int32, len(s.docs))
	for u, id := range s.docs {
		snap.Docs[u] = id
	}
	frags := append([]*Fragment(nil), s.frags...)
	s.mu.RUnlock()
	for _, f := range frags {
		snap.Frags = append(snap.Frags, fragSnapshot{
			Name: f.Name, Size: f.Size, Level: f.Level, Kind: f.Kind,
			Prop: f.Prop, Parent: f.Parent,
			AttrOwner: f.AttrOwner, AttrName: f.AttrName, AttrVal: f.AttrVal,
		})
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// ReadSnapshot restores a store previously written with WriteSnapshot.
// The receiving store must be empty.
func (s *Store) ReadSnapshot(r io.Reader) error {
	if len(s.frags) != 0 || len(s.docs) != 0 {
		return fmt.Errorf("ReadSnapshot: store is not empty")
	}
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("ReadSnapshot: %w", err)
	}
	restorePool := func(p *pool, strs []string) {
		for _, str := range strs {
			p.Put(str)
		}
	}
	restorePool(s.tags, snap.Pools[0])
	restorePool(s.attrNames, snap.Pools[1])
	restorePool(s.texts, snap.Pools[2])
	restorePool(s.attrVals, snap.Pools[3])
	for _, fs := range snap.Frags {
		f := &Fragment{
			Name: fs.Name, Size: fs.Size, Level: fs.Level, Kind: fs.Kind,
			Prop: fs.Prop, Parent: fs.Parent,
			AttrOwner: fs.AttrOwner, AttrName: fs.AttrName, AttrVal: fs.AttrVal,
		}
		f.sealAttrs()
		if err := f.Validate(); err != nil {
			return fmt.Errorf("ReadSnapshot: fragment %q: %w", fs.Name, err)
		}
		s.addFrag(f)
	}
	if snap.Docs != nil {
		s.docs = snap.Docs
	}
	return nil
}

// Columnar exchange (internal/pfstore) ----------------------------------------

// Parts is the raw columnar content of a store: the fragments with their
// fixed-width columns, the document registry, and the four string pools in
// surrogate order. It is the exchange format between the in-memory store
// and the persistent columnar layer (internal/pfstore), which lays the
// same arrays out as file sections.
type Parts struct {
	Frags []*Fragment
	Docs  map[string]int32
	Pools [4][]string // tags, attrNames, texts, attrVals
}

// Parts snapshots the store's columnar content. Fragment column slices are
// shared, not copied — fragments are immutable once registered, so callers
// may read them freely but must not mutate.
func (s *Store) Parts() Parts {
	s.mu.RLock()
	frags := append([]*Fragment(nil), s.frags...)
	docs := make(map[string]int32, len(s.docs))
	for u, id := range s.docs {
		docs[u] = id
	}
	s.mu.RUnlock()
	return Parts{
		Frags: frags,
		Docs:  docs,
		Pools: [4][]string{s.tags.snapshot(), s.attrNames.snapshot(), s.texts.snapshot(), s.attrVals.snapshot()},
	}
}

// NewStoreFromParts builds a store around existing columnar content —
// the fast path the persistent store's Open uses: column slices are
// adopted as-is (they may alias a read-only file buffer), pools skip
// index construction until first content lookup, and only the cheap
// structural seal (attribute offsets) is recomputed. Callers are
// responsible for having verified the columns (pfstore checks section
// checksums and bounds before handing them over).
func NewStoreFromParts(p Parts) (*Store, error) {
	s := &Store{
		docs:      make(map[string]int32, len(p.Docs)),
		tags:      newPoolFromStrings(p.Pools[0]),
		attrNames: newPoolFromStrings(p.Pools[1]),
		texts:     newPoolFromStrings(p.Pools[2]),
		attrVals:  newPoolFromStrings(p.Pools[3]),
	}
	for _, f := range p.Frags {
		n := len(f.Size)
		if len(f.Level) != n || len(f.Kind) != n || len(f.Prop) != n || len(f.Parent) != n {
			return nil, fmt.Errorf("fragment %q: column lengths disagree", f.Name)
		}
		if len(f.AttrName) != len(f.AttrOwner) || len(f.AttrVal) != len(f.AttrOwner) {
			return nil, fmt.Errorf("fragment %q: attribute column lengths disagree", f.Name)
		}
		// Seal only fresh fragments (pfstore.Open hands over bare columns).
		// Fragments adopted from a live store are already sealed and may be
		// concurrently read by in-flight queries — resealing would refill
		// the shared attrOfs slice under their feet.
		if len(f.attrOfs) != n+1 {
			f.sealAttrs()
		}
		s.frags = append(s.frags, f)
	}
	for u, id := range p.Docs {
		if id < 0 || int(id) >= len(s.frags) {
			return nil, fmt.Errorf("document %q: fragment id %d out of range", u, id)
		}
		s.docs[u] = id
	}
	return s, nil
}

// Storage accounting (§3.1) ---------------------------------------------------

// StorageReport breaks down the encoded size of the store.
type StorageReport struct {
	StructuralBytes int64 // pre|size|level|kind|prop + attribute tables
	TagPoolBytes    int64
	TextPoolBytes   int64
	AttrPoolBytes   int64 // names + values
	Nodes           int64
	Attrs           int64
}

// Total returns the total encoded bytes.
func (r StorageReport) Total() int64 {
	return r.StructuralBytes + r.TagPoolBytes + r.TextPoolBytes + r.AttrPoolBytes
}

// Report computes the storage footprint of all fragments plus pools.
func (s *Store) Report() StorageReport {
	var r StorageReport
	s.mu.RLock()
	frags := append([]*Fragment(nil), s.frags...)
	s.mu.RUnlock()
	for _, f := range frags {
		r.StructuralBytes += f.EncodedBytes()
		r.Nodes += int64(f.NodeCount())
		r.Attrs += int64(f.AttrCount())
	}
	r.TagPoolBytes = s.tags.bytes() + s.attrNames.bytes()
	r.TextPoolBytes = s.texts.bytes()
	r.AttrPoolBytes = s.attrVals.bytes()
	return r
}
