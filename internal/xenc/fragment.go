package xenc

import (
	"fmt"

	"pathfinder/internal/bat"
)

// NodeKind classifies a stored node.
type NodeKind uint8

// Node kinds. Attributes are not part of the pre|size|level table; they
// live in a side table per fragment (as in Pathfinder's storage layout)
// and are addressed with pre ranks offset by AttrBase.
const (
	KindDoc NodeKind = iota
	KindElem
	KindText
	KindComment
	KindAttr // only appears in NodeRef-space, never in Fragment.Kind
)

func (k NodeKind) String() string {
	switch k {
	case KindDoc:
		return "doc"
	case KindElem:
		return "elem"
	case KindText:
		return "text"
	case KindComment:
		return "comment"
	case KindAttr:
		return "attr"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AttrBase offsets attribute indices into the pre-rank space of a fragment
// so a bat.NodeRef can address attribute nodes: Pre >= AttrBase refers to
// the attribute at index Pre-AttrBase in the fragment's attribute table.
// The attribute table is materialized in document order (owner pre
// ascending), so sorting refs by (Frag, Pre) keeps attribute nodes of a
// fragment in document order relative to each other.
const AttrBase int32 = 1 << 30

// Fragment is one shredded tree (a loaded document) or a forest of
// constructed trees (the result of one constructor execution). Arrays are
// indexed by pre rank.
type Fragment struct {
	Name string // document URI for loaded docs, "" for constructed fragments

	Size   []int32    // number of nodes in the subtree below each node
	Level  []int32    // distance from the fragment root(s)
	Kind   []NodeKind // node kind
	Prop   []int32    // surrogate: tag id (elem), text id (text/comment), 0 (doc)
	Parent []int32    // parent pre rank, -1 for roots (derived, not part of the paper's schema — used by the parent axis)

	// Attribute side table, sorted by owner pre; attrOfs[p]..attrOfs[p+1]
	// delimit the attributes of node p.
	AttrOwner []int32
	AttrName  []int32
	AttrVal   []int32
	attrOfs   []int32
}

// NodeCount returns the number of tree nodes (attributes excluded).
func (f *Fragment) NodeCount() int { return len(f.Size) }

// AttrCount returns the number of attribute nodes.
func (f *Fragment) AttrCount() int { return len(f.AttrOwner) }

// Attrs returns the index range [lo, hi) into the attribute table holding
// the attributes of node pre.
func (f *Fragment) Attrs(pre int32) (lo, hi int32) {
	return f.attrOfs[pre], f.attrOfs[pre+1]
}

// sealAttrs builds the attrOfs offsets; must be called once all nodes and
// attributes are in place and AttrOwner is sorted ascending.
func (f *Fragment) sealAttrs() {
	//pfvet:allow colown -- callers gate on len(attrOfs) == 0: only never-published fragments are sealed (NewStoreFromParts skips fragments whose offsets exist, PR 7 reseal-race fix)
	f.attrOfs = make([]int32, len(f.Size)+1)
	j := 0
	for p := 0; p < len(f.Size); p++ {
		f.attrOfs[p] = int32(j)
		for j < len(f.AttrOwner) && f.AttrOwner[j] == int32(p) {
			j++
		}
	}
	f.attrOfs[len(f.Size)] = int32(j)
}

// EncodedBytes reports the storage footprint of the structural encoding:
// size|level|kind|prop plus the attribute table. The pre column itself is
// virtual (MonetDB void column), costing nothing — one of the properties
// the paper exploits.
func (f *Fragment) EncodedBytes() int64 {
	n := int64(len(f.Size))
	a := int64(len(f.AttrOwner))
	// size:4 level:4 kind:1 prop:4 per node; owner/name/val 4+4+4 per attr.
	return n*13 + a*12
}

// IsRoot reports whether pre is a root of the fragment (level 0 for
// constructed forests, the doc node for loaded documents).
func (f *Fragment) IsRoot(pre int32) bool { return f.Parent[pre] < 0 }

// RootOf walks to the topmost ancestor of pre within the fragment — the
// fn:root semantics for both document and constructed nodes.
func (f *Fragment) RootOf(pre int32) int32 {
	for f.Parent[pre] >= 0 {
		pre = f.Parent[pre]
	}
	return pre
}

// Validate checks the structural invariants of the encoding; used by tests
// and the property-based shredder checks.
func (f *Fragment) Validate() error {
	n := int32(len(f.Size))
	if int32(len(f.Level)) != n || int32(len(f.Kind)) != n || int32(len(f.Prop)) != n || int32(len(f.Parent)) != n {
		return fmt.Errorf("column lengths disagree")
	}
	for p := int32(0); p < n; p++ {
		if f.Size[p] < 0 || p+f.Size[p] > n-1 {
			return fmt.Errorf("node %d: size %d overflows fragment", p, f.Size[p])
		}
		par := f.Parent[p]
		if par >= 0 {
			// v' is a descendant of v iff pre(v) < pre(v') ≤ pre(v)+size(v).
			if !(par < p && p <= par+f.Size[par]) {
				return fmt.Errorf("node %d: parent %d does not contain it", p, par)
			}
			if f.Level[p] != f.Level[par]+1 {
				return fmt.Errorf("node %d: level %d, parent level %d", p, f.Level[p], f.Level[par])
			}
		} else if f.Level[p] != 0 {
			return fmt.Errorf("root %d has level %d", p, f.Level[p])
		}
		// Children subtrees tile the parent's size exactly.
		if f.Kind[p] == KindText && f.Size[p] != 0 {
			return fmt.Errorf("text node %d has size %d", p, f.Size[p])
		}
	}
	for p := int32(0); p < n; p++ {
		var sum int32
		c := p + 1
		for c <= p+f.Size[p] {
			sum += f.Size[c] + 1
			c += f.Size[c] + 1
		}
		if sum != f.Size[p] {
			return fmt.Errorf("node %d: children sizes sum to %d, size is %d", p, sum, f.Size[p])
		}
	}
	for i := 1; i < len(f.AttrOwner); i++ {
		if f.AttrOwner[i] < f.AttrOwner[i-1] {
			return fmt.Errorf("attribute table not sorted by owner at %d", i)
		}
	}
	return nil
}

// KindOf returns the node kind for a (possibly attribute) pre rank.
func (f *Fragment) KindOf(pre int32) NodeKind {
	if pre >= AttrBase {
		return KindAttr
	}
	return f.Kind[pre]
}

// Doc order helpers ---------------------------------------------------------

// Before reports whether a precedes b in document order within this
// fragment, treating attributes as located at their owner element
// (immediately after it, before its children).
func (f *Fragment) Before(a, b int32) bool {
	pa, pb := ownerPre(f, a), ownerPre(f, b)
	if pa != pb {
		return pa < pb
	}
	// Same owner position: element before its attributes, attributes in
	// table order.
	aa, ab := a >= AttrBase, b >= AttrBase
	switch {
	case !aa && ab:
		return true
	case aa && !ab:
		return false
	case aa && ab:
		return a < b
	default:
		return false
	}
}

func ownerPre(f *Fragment, p int32) int32 {
	if p >= AttrBase {
		return f.AttrOwner[p-AttrBase]
	}
	return p
}

// RefBefore orders two node refs globally: fragment id first, then
// fragment-local document order.
func (s *Store) RefBefore(a, b bat.NodeRef) bool {
	if a.Frag != b.Frag {
		return a.Frag < b.Frag
	}
	return s.Frag(a.Frag).Before(a.Pre, b.Pre)
}
