package xenc

import (
	"strings"

	"pathfinder/internal/bat"
)

// Serialize renders the subtree rooted at n as XML text — the
// post-processor step that maps the relational result encoding back to the
// XQuery data model (§2, "MonetDB" paragraph).
func (s *Store) Serialize(n bat.NodeRef) string {
	var sb strings.Builder
	s.SerializeTo(&sb, n)
	return sb.String()
}

// SerializeTo writes the serialization of n to sb.
func (s *Store) SerializeTo(sb *strings.Builder, n bat.NodeRef) {
	f := s.Frag(n.Frag)
	if n.Pre >= AttrBase {
		// A top-level attribute serializes as name="value" (useful in the
		// demo tracer; standard serialization would reject it).
		i := n.Pre - AttrBase
		sb.WriteString(s.attrNames.Get(f.AttrName[i]))
		sb.WriteString("=\"")
		escapeAttr(sb, s.attrVals.Get(f.AttrVal[i]))
		sb.WriteString("\"")
		return
	}
	s.serializeRange(sb, f, n.Pre)
}

func (s *Store) serializeRange(sb *strings.Builder, f *Fragment, root int32) {
	end := root + f.Size[root]
	var openTags []int32 // pre ranks of open elements
	closeUntil := func(p int32) {
		for len(openTags) > 0 {
			top := openTags[len(openTags)-1]
			if p <= top+f.Size[top] {
				return
			}
			sb.WriteString("</")
			sb.WriteString(s.tags.Get(f.Prop[top]))
			sb.WriteByte('>')
			openTags = openTags[:len(openTags)-1]
		}
	}
	for p := root; p <= end; p++ {
		closeUntil(p)
		switch f.Kind[p] {
		case KindDoc:
			// Document node: serialize children only.
		case KindElem:
			sb.WriteByte('<')
			sb.WriteString(s.tags.Get(f.Prop[p]))
			lo, hi := f.Attrs(p)
			for i := lo; i < hi; i++ {
				sb.WriteByte(' ')
				sb.WriteString(s.attrNames.Get(f.AttrName[i]))
				sb.WriteString("=\"")
				escapeAttr(sb, s.attrVals.Get(f.AttrVal[i]))
				sb.WriteByte('"')
			}
			if f.Size[p] == 0 {
				sb.WriteString("/>")
			} else {
				sb.WriteByte('>')
				openTags = append(openTags, p)
			}
		case KindText:
			escapeText(sb, s.texts.Get(f.Prop[p]))
		case KindComment:
			sb.WriteString("<!--")
			sb.WriteString(s.texts.Get(f.Prop[p]))
			sb.WriteString("-->")
		}
	}
	for i := len(openTags) - 1; i >= 0; i-- {
		sb.WriteString("</")
		sb.WriteString(s.tags.Get(f.Prop[openTags[i]]))
		sb.WriteByte('>')
	}
}

func escapeText(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		default:
			sb.WriteRune(r)
		}
	}
}

func escapeAttr(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '"':
			sb.WriteString("&quot;")
		default:
			sb.WriteRune(r)
		}
	}
}
