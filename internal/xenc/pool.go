// Package xenc implements Pathfinder's relational XML storage: documents
// are shredded into the XPath Accelerator encoding — one row per node with
// schema pre|size|level|kind|prop — with node properties (tag names, text
// content, attribute names and values) replaced by integer surrogates into
// shared, duplicate-free string pools, exactly as described in §3.1 of the
// paper. The same store also hosts fragments created at query time by
// element and text constructors (the ε and τ operators).
package xenc

import "sync"

// pool interns strings and hands out stable integer surrogates. Nodes with
// identical properties share the same surrogate, which both avoids string
// comparisons at query time and reduces storage (the paper's "surrogate
// sharing").
//
// Pools are store-wide and the parallel plan scheduler runs constructor
// operators (which intern new strings) concurrently with operators that
// resolve surrogates, so every access goes through the pool's RWMutex.
// Reads vastly outnumber writes at query time, keeping the read-lock cost
// in the noise.
//
// A pool restored from the persistent columnar store (internal/pfstore)
// starts without its lookup map: surrogate→string resolution needs only
// the slice, and the map is rebuilt lazily on the first Put or Lookup.
// Reopening a saved store therefore costs no per-string map inserts until
// a query actually interns or looks up by content.
type pool struct {
	mu    sync.RWMutex
	strs  []string
	index map[string]int32 // nil until first content lookup on a restored pool
}

func newPool() *pool {
	return &pool{index: make(map[string]int32)}
}

// newPoolFromStrings adopts an already-deduplicated surrogate-ordered
// string slice (the persistent store's pool section) without building the
// lookup index.
func newPoolFromStrings(strs []string) *pool {
	return &pool{strs: strs}
}

// ensureIndexLocked builds the lookup map; callers hold the write lock.
func (p *pool) ensureIndexLocked() {
	if p.index != nil {
		return
	}
	p.index = make(map[string]int32, len(p.strs))
	for i, s := range p.strs {
		p.index[s] = int32(i)
	}
}

// Put interns s and returns its surrogate.
func (p *pool) Put(s string) int32 {
	p.mu.RLock()
	if p.index != nil {
		if id, ok := p.index[s]; ok {
			p.mu.RUnlock()
			return id
		}
	}
	lazy := p.index == nil
	p.mu.RUnlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if lazy {
		p.ensureIndexLocked()
	}
	if id, ok := p.index[s]; ok {
		return id
	}
	id := int32(len(p.strs))
	p.strs = append(p.strs, s)
	p.index[s] = id
	return id
}

// Lookup returns the surrogate for s, or -1 if s was never interned. Query
// compilation uses this to turn name tests into integer comparisons; a
// miss means the name test can never match.
func (p *pool) Lookup(s string) int32 {
	p.mu.RLock()
	if p.index != nil {
		id, ok := p.index[s]
		p.mu.RUnlock()
		if ok {
			return id
		}
		return -1
	}
	p.mu.RUnlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureIndexLocked()
	if id, ok := p.index[s]; ok {
		return id
	}
	return -1
}

// Get returns the string behind a surrogate.
func (p *pool) Get(id int32) string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.strs[id]
}

// Len returns the number of distinct strings interned.
func (p *pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.strs)
}

// snapshot copies the interned strings in surrogate order.
func (p *pool) snapshot() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]string(nil), p.strs...)
}

// bytes reports the heap footprint attributable to the pooled strings —
// used by the §3.1 storage-overhead report. Only payload bytes plus the
// per-entry slice header are charged; the lookup map is a load-time-only
// structure MonetDB would not persist.
func (p *pool) bytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var n int64
	for _, s := range p.strs {
		n += int64(len(s)) + 16 // string header
	}
	return n
}
