package xenc_test

import (
	"fmt"
	"log"

	"pathfinder/internal/xenc"
)

// Shredding a document into the XPath Accelerator encoding and reading the
// pre|size|level rows back.
func ExampleStore_LoadDocumentString() {
	store := xenc.NewStore()
	doc, err := store.LoadDocumentString("ex.xml", `<a><b>hi</b><c/></a>`)
	if err != nil {
		log.Fatal(err)
	}
	f := store.Frag(doc.Frag)
	for pre := int32(0); pre < int32(f.NodeCount()); pre++ {
		fmt.Printf("pre=%d size=%d level=%d kind=%s\n",
			pre, f.Size[pre], f.Level[pre], f.Kind[pre])
	}
	fmt.Println(store.Serialize(doc))
	// Output:
	// pre=0 size=4 level=0 kind=doc
	// pre=1 size=3 level=1 kind=elem
	// pre=2 size=1 level=2 kind=elem
	// pre=3 size=0 level=3 kind=text
	// pre=4 size=0 level=2 kind=elem
	// <a><b>hi</b><c/></a>
}
