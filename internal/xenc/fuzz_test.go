package xenc_test

import (
	"strings"
	"testing"

	"pathfinder/internal/xenc"
)

// FuzzLoadDocument shreds arbitrary bytes through the document loader:
// it must either reject the input with an error or produce a fragment
// whose serialization round-trips through a second load — and never
// panic. The loader sits on the trust boundary between user-supplied
// XML and the pre|size|level arrays every axis step indexes blindly.
func FuzzLoadDocument(f *testing.F) {
	seeds := []string{
		``,
		`<a/>`,
		`<a b="c"><d>text</d><!--comment--></a>`,
		`<site><people><person id="p1"><name>A</name></person></people></site>`,
		`<a xmlns:x="u"><x:b x:c="v"/></a>`,
		`<?xml version="1.0"?><a/>`,
		`<!DOCTYPE a><a/>`,
		`<a>`, `</a>`, `<a></b>`, `<a><b></a></b>`, `text only`,
		`<a b="unterminated`, `<a b=c/>`, `<<a/>`, `<a/><b/>`,
		`<a>&lt;&amp;&#65;</a>`, `<a>&undefined;</a>`,
		"<a>\x00</a>", "\xff\xfe<a/>",
		`<a>` + strings.Repeat("<b>", 40) + strings.Repeat("</b>", 40) + `</a>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		store := xenc.NewStore()
		ref, err := store.LoadDocumentString("fuzz.xml", doc)
		if err != nil {
			return
		}
		out := store.Serialize(ref)
		// A loaded document must serialize to XML the loader accepts back.
		if _, err := xenc.NewStore().LoadDocumentString("fuzz.xml", out); err != nil {
			t.Fatalf("serialization does not round-trip: %v\ninput:  %q\noutput: %q", err, doc, out)
		}
	})
}
