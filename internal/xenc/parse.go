package xenc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"pathfinder/internal/bat"
)

// LoadDocument shreds an XML document into the pre|size|level encoding and
// registers it in the store under the given URI. It returns the document
// node. Whitespace-only text between elements is dropped (boundary-space
// strip), matching the load behaviour the paper's storage numbers assume.
func (s *Store) LoadDocument(uri string, r io.Reader) (bat.NodeRef, error) {
	if _, err := s.Doc(uri); err == nil {
		return bat.NodeRef{}, fmt.Errorf("document %q already loaded", uri)
	}
	f, err := s.shred(uri, r)
	if err != nil {
		return bat.NodeRef{}, err
	}
	id, err := s.registerDoc(uri, f)
	if err != nil {
		return bat.NodeRef{}, err
	}
	return bat.NodeRef{Frag: id, Pre: 0}, nil
}

// shred parses one XML document into a sealed fragment without touching
// the document registry; LoadDocument and ReplaceDocument wrap it with
// their respective registration policies.
func (s *Store) shred(uri string, r io.Reader) (*Fragment, error) {
	f := &Fragment{Name: uri}
	b := shredder{store: s, frag: f}
	b.openNode(KindDoc, 0)

	dec := xml.NewDecoder(r)
	// The XMark generator and tests produce plain, entity-free XML; the
	// default strict decoder is what we want.
	depth := 0
	for {
		tok, err := dec.RawToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", uri, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			pre := b.openNode(KindElem, s.tags.Put(qname(t.Name)))
			for _, a := range t.Attr {
				if strings.HasPrefix(qname(a.Name), "xmlns") {
					continue
				}
				b.addAttr(pre, s.attrNames.Put(qname(a.Name)), s.attrVals.Put(a.Value))
			}
			depth++
		case xml.EndElement:
			// RawToken does not pair tags; a stray end tag here would pop
			// the document node and underflow the shredder's open stack.
			if depth == 0 {
				return nil, fmt.Errorf("parse %q: unexpected end tag </%s>", uri, qname(t.Name))
			}
			b.closeNode()
			depth--
		case xml.CharData:
			txt := string(t)
			if strings.TrimSpace(txt) == "" {
				continue
			}
			b.openNode(KindText, s.texts.Put(txt))
			b.closeNode()
		case xml.Comment:
			b.openNode(KindComment, s.texts.Put(string(t)))
			b.closeNode()
		case xml.ProcInst, xml.Directive:
			// skipped: not part of the supported data model subset
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("parse %q: unbalanced document", uri)
	}
	b.closeNode() // document node
	if len(b.open) != 0 {
		return nil, fmt.Errorf("parse %q: dangling open elements", uri)
	}
	f.sealAttrs()
	return f, nil
}

// LoadDocumentString is LoadDocument over a string, for tests and examples.
// Like LoadDocument it refuses a URI that is already registered — the
// catalog layer depends on name uniqueness; use ReplaceDocument(String) to
// rebind a name explicitly.
func (s *Store) LoadDocumentString(uri, doc string) (bat.NodeRef, error) {
	return s.LoadDocument(uri, strings.NewReader(doc))
}

// ReplaceDocumentString is ReplaceDocument over a string.
func (s *Store) ReplaceDocumentString(uri, doc string) (bat.NodeRef, error) {
	return s.ReplaceDocument(uri, strings.NewReader(doc))
}

func qname(n xml.Name) string {
	// Namespace prefixes are kept as written (RawToken does not resolve
	// them); the supported dialect treats QNames as opaque strings.
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}

// shredder appends nodes to a fragment maintaining the pre/size/level
// invariants with an open-node stack.
type shredder struct {
	store *Store
	frag  *Fragment
	open  []int32 // stack of pre ranks of currently open nodes
}

// openNode appends a node of the given kind/prop at the current position
// and pushes it onto the open stack. Its size is fixed by closeNode.
func (b *shredder) openNode(kind NodeKind, prop int32) int32 {
	f := b.frag
	pre := int32(len(f.Size))
	parent := int32(-1)
	level := int32(0)
	if len(b.open) > 0 {
		parent = b.open[len(b.open)-1]
		level = f.Level[parent] + 1
	}
	f.Size = append(f.Size, 0)
	f.Level = append(f.Level, level)
	f.Kind = append(f.Kind, kind)
	f.Prop = append(f.Prop, prop)
	f.Parent = append(f.Parent, parent)
	b.open = append(b.open, pre)
	return pre
}

// closeNode pops the innermost open node and fixes its size.
func (b *shredder) closeNode() {
	pre := b.open[len(b.open)-1]
	b.open = b.open[:len(b.open)-1]
	b.frag.Size[pre] = int32(len(b.frag.Size)) - pre - 1
}

// addAttr records an attribute for the (still open) element pre.
func (b *shredder) addAttr(pre, nameID, valID int32) {
	f := b.frag
	f.AttrOwner = append(f.AttrOwner, pre)
	f.AttrName = append(f.AttrName, nameID)
	f.AttrVal = append(f.AttrVal, valID)
}
