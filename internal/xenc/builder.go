package xenc

import (
	"fmt"

	"pathfinder/internal/bat"
)

// FragBuilder assembles a new fragment at query time — the runtime of the
// ε (element construction) and τ (text construction) operators. One
// builder execution produces one fragment that may contain several root
// trees (one per iteration of the constructing loop); roots sit at level 0
// and fn:root resolves to the constructed tree's top, not the fragment.
type FragBuilder struct {
	store *Store
	sh    shredder
}

// NewFragBuilder starts a fresh constructed fragment in the store.
func NewFragBuilder(s *Store) *FragBuilder {
	f := &Fragment{}
	return &FragBuilder{store: s, sh: shredder{store: s, frag: f}}
}

// StartElem opens a new element with the given tag and returns its pre
// rank within the fragment under construction.
func (b *FragBuilder) StartElem(tag string) int32 {
	return b.sh.openNode(KindElem, b.store.tags.Put(tag))
}

// EndElem closes the innermost open element.
func (b *FragBuilder) EndElem() { b.sh.closeNode() }

// AddText appends a text node. Empty strings produce no node, per the
// XQuery constructor semantics.
func (b *FragBuilder) AddText(text string) {
	if text == "" {
		return
	}
	b.sh.openNode(KindText, b.store.texts.Put(text))
	b.sh.closeNode()
}

// AddAttr attaches an attribute to the innermost open element. It must be
// called before any content is added to that element.
func (b *FragBuilder) AddAttr(name, val string) error {
	if len(b.sh.open) == 0 {
		return fmt.Errorf("attribute %q constructed outside an element", name)
	}
	owner := b.sh.open[len(b.sh.open)-1]
	if int32(len(b.sh.frag.Size))-1 != owner {
		return fmt.Errorf("attribute %q follows element content", name)
	}
	n := len(b.sh.frag.AttrOwner)
	if n > 0 && b.sh.frag.AttrOwner[n-1] > owner {
		return fmt.Errorf("attribute %q out of document order", name)
	}
	b.sh.addAttr(owner, b.store.attrNames.Put(name), b.store.attrVals.Put(val))
	return nil
}

// CopyNode deep-copies the subtree rooted at src (from any fragment in the
// store) into the fragment under construction — the node-copy semantics of
// enclosed constructor content. Attribute refs copy as attributes of the
// innermost open element; document nodes copy their children.
func (b *FragBuilder) CopyNode(src bat.NodeRef) error {
	sf := b.store.Frag(src.Frag)
	if src.Pre >= AttrBase {
		i := src.Pre - AttrBase
		return b.AddAttr(b.store.attrNames.Get(sf.AttrName[i]), b.store.attrVals.Get(sf.AttrVal[i]))
	}
	switch sf.Kind[src.Pre] {
	case KindDoc:
		// Copying a document node copies its children.
		end := src.Pre + sf.Size[src.Pre]
		c := src.Pre + 1
		for c <= end {
			if err := b.copySubtree(sf, c); err != nil {
				return err
			}
			c += sf.Size[c] + 1
		}
		return nil
	default:
		return b.copySubtree(sf, src.Pre)
	}
}

func (b *FragBuilder) copySubtree(sf *Fragment, root int32) error {
	// Pools are store-wide, so surrogates carry over unchanged: copying is
	// a structural array copy with re-levelled nodes — the cheap fragment
	// copy MonetDB/XQuery performs for constructors.
	end := root + sf.Size[root]
	type openEnd struct{ until int32 }
	var opens []openEnd
	for p := root; p <= end; p++ {
		// Close finished ancestors.
		for len(opens) > 0 && p > opens[len(opens)-1].until {
			b.sh.closeNode()
			opens = opens[:len(opens)-1]
		}
		switch sf.Kind[p] {
		case KindElem:
			b.sh.openNode(KindElem, sf.Prop[p])
			lo, hi := sf.Attrs(p)
			for i := lo; i < hi; i++ {
				b.sh.addAttr(b.sh.open[len(b.sh.open)-1], sf.AttrName[i], sf.AttrVal[i])
			}
			opens = append(opens, openEnd{until: p + sf.Size[p]})
		case KindText, KindComment:
			b.sh.openNode(sf.Kind[p], sf.Prop[p])
			b.sh.closeNode()
		case KindDoc:
			return fmt.Errorf("nested document node at pre %d", p)
		}
	}
	for range opens {
		b.sh.closeNode()
	}
	return nil
}

// OpenCount returns the number of currently open elements (0 at a root
// boundary).
func (b *FragBuilder) OpenCount() int { return len(b.sh.open) }

// NextPre returns the pre rank the next node will receive.
func (b *FragBuilder) NextPre() int32 { return int32(len(b.sh.frag.Size)) }

// Finish validates, registers the fragment and returns its id. A builder
// must not be used after Finish.
func (b *FragBuilder) Finish() (int32, error) {
	if len(b.sh.open) != 0 {
		return 0, fmt.Errorf("fragment finished with %d open elements", len(b.sh.open))
	}
	b.sh.frag.sealAttrs()
	return b.store.addFrag(b.sh.frag), nil
}
